//! Fused forward/backward kernels for the GCN hot loop.
//!
//! Three families live here:
//!
//! * **Fixed-width lane reductions** ([`lane_max`], [`lane_sum`]): row
//!   reductions that accumulate into a fixed array of [`LANES`] partial
//!   accumulators and fold the lanes pairwise at the end. The trip count and
//!   accumulation order depend only on the slice length, never on thread
//!   count or data, so results are deterministic — and the fixed-width inner
//!   loop is the shape LLVM's autovectorizer turns into SIMD without any
//!   intrinsics (this crate is `forbid(unsafe_code)`).
//! * **Softmax + cross-entropy** ([`softmax_rows_into`], [`softmax_ce_loss`],
//!   [`softmax_ce_grad_into`]): the loss head, shared by the batched fast
//!   path *and* the tape [`reference
//!   mode`](crate::GcnConfig::reference_mode) so the two training paths stay
//!   bitwise identical by construction.
//! * **Fused matmul(+bias)+ReLU** ([`matmul_bias_relu_into`],
//!   [`relu_backward_mask`]): the per-layer `ReLU(Â H W + b)` computed in one
//!   pass over the output block — the bias add and clamp happen while the
//!   freshly accumulated block is still in cache, inside the same parallel
//!   region. The backward mask is read off the *outputs* (`out > 0`), which
//!   for ReLU is equivalent to the pre-activation test `x > 0`, so the
//!   pre-activation buffer never needs to be kept.

use crate::matrix::{exec_for, Matrix};

/// Number of independent accumulator lanes in the row reductions.
pub const LANES: usize = 8;

/// Maximum of a slice via [`LANES`] parallel accumulator lanes folded at the
/// end. Deterministic for a fixed slice length; `NEG_INFINITY` on empty
/// input. NaN entries are absorbed by `f32::max` (it returns the non-NaN
/// operand), matching the scalar fold it replaces.
pub fn lane_max(xs: &[f32]) -> f32 {
    let mut lanes = [f32::NEG_INFINITY; LANES];
    let mut chunks = xs.chunks_exact(LANES);
    for ch in chunks.by_ref() {
        for (l, &x) in lanes.iter_mut().zip(ch) {
            *l = l.max(x);
        }
    }
    let mut m = f32::NEG_INFINITY;
    for &l in &lanes {
        m = m.max(l);
    }
    for &x in chunks.remainder() {
        m = m.max(x);
    }
    m
}

/// Sum of a slice via [`LANES`] parallel accumulator lanes folded at the
/// end. The lane count is a compile-time constant, so the reduction order —
/// and therefore every output bit — depends only on the slice length.
pub fn lane_sum(xs: &[f32]) -> f32 {
    let mut lanes = [0.0f32; LANES];
    let mut chunks = xs.chunks_exact(LANES);
    for ch in chunks.by_ref() {
        for (l, &x) in lanes.iter_mut().zip(ch) {
            *l += x;
        }
    }
    let mut s = 0.0f32;
    for &l in &lanes {
        s += l;
    }
    for &x in chunks.remainder() {
        s += x;
    }
    s
}

/// Row-wise softmax of `z` into `out` (resized in place, reusing its
/// allocation). Row maxima and exponent sums use the lane reductions above.
pub fn softmax_rows_into(z: &Matrix, out: &mut Matrix) {
    out.reset(z.rows(), z.cols());
    for r in 0..z.rows() {
        let row = z.row(r);
        let max = lane_max(row);
        let dst = out.row_mut(r);
        for (d, &v) in dst.iter_mut().zip(row) {
            *d = (v - max).exp();
        }
        let sum = lane_sum(dst);
        for d in dst.iter_mut() {
            *d /= sum;
        }
    }
}

/// Mean softmax-cross-entropy of `logits` against `labels`, accumulated in
/// `f64` across rows (fixed row order → deterministic).
///
/// # Panics
///
/// Panics if `labels.len()` differs from the number of logit rows.
pub fn softmax_ce_loss(logits: &Matrix, labels: &[u32]) -> f32 {
    assert_eq!(labels.len(), logits.rows(), "one label per row");
    let mut loss = 0.0f64;
    for (r, &y) in labels.iter().enumerate() {
        let row = logits.row(r);
        let max = lane_max(row);
        let mut lanes = [0.0f32; LANES];
        let mut chunks = row.chunks_exact(LANES);
        for ch in chunks.by_ref() {
            for (l, &v) in lanes.iter_mut().zip(ch) {
                *l += (v - max).exp();
            }
        }
        let mut sum = 0.0f32;
        for &l in &lanes {
            sum += l;
        }
        for &v in chunks.remainder() {
            sum += (v - max).exp();
        }
        let lse = sum.ln() + max;
        loss += f64::from(lse - row[y as usize]);
    }
    (loss / labels.len() as f64) as f32
}

/// Turns a softmax-probability matrix into the cross-entropy logits gradient
/// in place: subtract the one-hot target, then scale every element by
/// `scale` (the upstream gradient divided by the batch size).
///
/// # Panics
///
/// Panics if `labels.len()` differs from the number of rows.
pub fn softmax_ce_grad_into(probs: &mut Matrix, labels: &[u32], scale: f32) {
    assert_eq!(labels.len(), probs.rows(), "one label per row");
    for (r, &y) in labels.iter().enumerate() {
        let v = probs.get(r, y as usize) - 1.0;
        probs.set(r, y as usize, v);
    }
    probs.scale(scale);
}

/// Fused `ReLU(a @ b + bias)` into `out` (resized in place): the matmul
/// block kernel runs first, then bias add and clamp sweep the same block
/// while it is cache-hot, inside the same parallel region. Pass `None` for a
/// bias-free layer (the paper's GCN). Bitwise identical to
/// `a.matmul(b)` + bias add + [`Matrix::relu`] run separately.
///
/// # Panics
///
/// Panics on inner-dimension mismatch, or if `bias` is present with a length
/// other than `b.cols()`.
pub fn matmul_bias_relu_into(a: &Matrix, b: &Matrix, bias: Option<&[f32]>, out: &mut Matrix) {
    if let Some(bias) = bias {
        assert_eq!(bias.len(), b.cols(), "bias length mismatch");
    }
    let work = a.rows() * a.cols() * b.cols();
    let exec = exec_for(work);
    a.fused_matmul_post(b, out, &exec, |row| {
        if let Some(bias) = bias {
            for (o, &bi) in row.iter_mut().zip(bias) {
                *o = (*o + bi).max(0.0);
            }
        } else {
            for o in row.iter_mut() {
                *o = o.max(0.0);
            }
        }
    });
}

/// The fused backward half of [`matmul_bias_relu_into`]: zeroes `grad`
/// wherever the forward activation was clamped (`act == 0`). Because
/// activations are ReLU outputs, `act > 0` holds exactly where the
/// pre-activation was positive, so this reproduces the tape's
/// pre-activation mask bit for bit.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn relu_backward_mask(act: &Matrix, grad: &mut Matrix) {
    assert_eq!((act.rows(), act.cols()), (grad.rows(), grad.cols()), "relu mask shape mismatch");
    for (g, &a) in grad.as_mut_slice().iter_mut().zip(act.as_slice()) {
        if a <= 0.0 {
            *g = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lane_reductions_agree_with_scalar() {
        let xs: Vec<f32> = (0..37).map(|i| ((i * 7919) % 23) as f32 - 11.0).collect();
        let smax = xs.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        assert_eq!(lane_max(&xs), smax);
        let ssum: f64 = xs.iter().map(|&x| f64::from(x)).sum();
        assert!((f64::from(lane_sum(&xs)) - ssum).abs() < 1e-3);
        assert_eq!(lane_max(&[]), f32::NEG_INFINITY);
        assert_eq!(lane_sum(&[]), 0.0);
    }

    #[test]
    fn lane_reductions_are_length_deterministic() {
        let xs: Vec<f32> = (0..100).map(|i| (i as f32 * 0.73).sin()).collect();
        assert_eq!(lane_sum(&xs).to_bits(), lane_sum(&xs.clone()).to_bits());
        assert_eq!(lane_max(&xs).to_bits(), lane_max(&xs.clone()).to_bits());
    }

    #[test]
    fn softmax_rows_sum_to_one_and_loss_matches_naive() {
        let z = Matrix::from_rows(&[&[1.0, 2.0, 3.0, -1.0], &[0.0, 0.0, 0.0, 0.0]]);
        let mut p = Matrix::zeros(0, 0);
        softmax_rows_into(&z, &mut p);
        for r in 0..2 {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        let labels = [2u32, 0];
        let loss = softmax_ce_loss(&z, &labels);
        // Naive reference.
        let mut want = 0.0f64;
        for (r, &y) in labels.iter().enumerate() {
            want -= f64::from(p.get(r, y as usize)).ln();
        }
        let want = (want / 2.0) as f32;
        assert!((loss - want).abs() < 1e-5, "loss {loss} vs naive {want}");
    }

    #[test]
    fn ce_grad_is_softmax_minus_onehot_scaled() {
        let z = Matrix::from_rows(&[&[0.3, -0.7, 1.1]]);
        let mut p = Matrix::zeros(0, 0);
        softmax_rows_into(&z, &mut p);
        let p0 = p.clone();
        softmax_ce_grad_into(&mut p, &[2], 0.5);
        for c in 0..3 {
            let want = (p0.get(0, c) - if c == 2 { 1.0 } else { 0.0 }) * 0.5;
            assert_eq!(p.get(0, c), want);
        }
    }

    #[test]
    fn fused_matmul_bias_relu_matches_unfused() {
        let mut rng = StdRng::seed_from_u64(21);
        let a = Matrix::xavier(70, 33, &mut rng);
        let b = Matrix::xavier(33, 12, &mut rng);
        let bias: Vec<f32> = (0..12).map(|i| (i as f32 - 6.0) * 0.1).collect();
        let mut fused = Matrix::zeros(0, 0);
        matmul_bias_relu_into(&a, &b, Some(&bias), &mut fused);
        let mut want = a.matmul(&b);
        for r in 0..want.rows() {
            for (c, &bc) in bias.iter().enumerate() {
                want.set(r, c, (want.get(r, c) + bc).max(0.0));
            }
        }
        assert_eq!(fused, want);
        // Bias-free path equals matmul + relu exactly.
        matmul_bias_relu_into(&a, &b, None, &mut fused);
        assert_eq!(fused, a.matmul(&b).relu());
    }

    #[test]
    fn relu_backward_mask_matches_preactivation_mask() {
        let pre = Matrix::from_rows(&[&[-1.0, 0.0, 2.0], &[0.5, -0.0, -3.0]]);
        let act = pre.relu();
        let mut grad = Matrix::from_rows(&[&[1.0, 1.0, 1.0], &[1.0, 1.0, 1.0]]);
        relu_backward_mask(&act, &mut grad);
        for r in 0..2 {
            for c in 0..3 {
                let want = if pre.get(r, c) <= 0.0 { 0.0 } else { 1.0 };
                assert_eq!(grad.get(r, c), want, "({r},{c})");
            }
        }
    }
}
