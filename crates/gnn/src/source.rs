//! Borrowed weight storage: traits a [`crate::Matrix`] /
//! [`crate::QuantizedMatrix`] can read its elements from without owning
//! them.
//!
//! `tiara-container` implements these over 8-byte-aligned mapped file
//! bytes, which is how model weights load zero-copy: the matrix holds an
//! `Arc<dyn F32Source>` plus a range instead of a `Vec<f32>`, and any
//! mutation first materializes an owned copy (copy-on-write).

/// A provider of an `f32` slice that outlives the matrices borrowing it.
pub trait F32Source: Send + Sync {
    /// The full backing slice; views index a sub-range of it.
    fn f32s(&self) -> &[f32];
}

/// A provider of an `i8` slice that outlives the matrices borrowing it.
pub trait I8Source: Send + Sync {
    /// The full backing slice; views index a sub-range of it.
    fn i8s(&self) -> &[i8];
}

impl F32Source for Vec<f32> {
    fn f32s(&self) -> &[f32] {
        self
    }
}

impl I8Source for Vec<i8> {
    fn i8s(&self) -> &[i8] {
        self
    }
}
