//! The Adam optimizer (Kingma & Ba), the paper's training algorithm.

use crate::matrix::Matrix;
use crate::tape::ParamId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Adam optimizer state.
///
/// # Examples
///
/// ```
/// use tiara_gnn::{Adam, Matrix, ParamId};
///
/// let mut opt = Adam::new(0.1);
/// let mut w = Matrix::from_rows(&[&[1.0]]);
/// let g = Matrix::from_rows(&[&[1.0]]);
/// let before = w.get(0, 0);
/// opt.step(&mut [(ParamId(0), &mut w)], &[(ParamId(0), g)]);
/// assert!(w.get(0, 0) < before, "gradient descent moves against the gradient");
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate (the paper uses `0.001`).
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    t: u64,
    m: HashMap<usize, Matrix>,
    v: HashMap<usize, Matrix>,
}

impl Adam {
    /// Creates an Adam optimizer with the standard `β1 = 0.9`, `β2 = 0.999`.
    pub fn new(lr: f32) -> Adam {
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: HashMap::new(), v: HashMap::new() }
    }

    /// Applies one update step.
    ///
    /// `params` are `(id, value)` pairs; `grads` are the `(id, gradient)`
    /// pairs returned by [`crate::Tape::backward`]. Parameters without a
    /// gradient are left untouched.
    pub fn step(&mut self, params: &mut [(ParamId, &mut Matrix)], grads: &[(ParamId, Matrix)]) {
        self.begin_step();
        for (id, w) in params.iter_mut() {
            let Some((_, g)) = grads.iter().find(|(gid, _)| gid == id) else {
                continue;
            };
            self.step_param(*id, w, g);
        }
    }

    /// Advances the step counter. Call once per minibatch, then apply
    /// [`Adam::step_param`] to each parameter. `step` is exactly
    /// `begin_step` + one `step_param` per matched pair, so the two APIs
    /// produce bit-identical updates; this split lets the batched trainer
    /// update parameters straight from its gradient arena without building
    /// per-batch `(ParamId, Matrix)` vectors.
    pub fn begin_step(&mut self) {
        self.t += 1;
    }

    /// Applies the Adam update for one parameter using the step count set by
    /// the enclosing [`Adam::begin_step`].
    ///
    /// # Panics
    ///
    /// Panics if called before any `begin_step`, or if `g` has a different
    /// element count than `w`.
    pub fn step_param(&mut self, id: ParamId, w: &mut Matrix, g: &Matrix) {
        assert!(self.t > 0, "step_param called before begin_step");
        assert_eq!(w.rows() * w.cols(), g.rows() * g.cols(), "gradient shape mismatch");
        let t = self.t as i32;
        let bc1 = 1.0 - self.beta1.powi(t);
        let bc2 = 1.0 - self.beta2.powi(t);
        let m = self.m.entry(id.0).or_insert_with(|| Matrix::zeros(w.rows(), w.cols()));
        let v = self.v.entry(id.0).or_insert_with(|| Matrix::zeros(w.rows(), w.cols()));
        let (mw, vw, ww) = (m.as_mut_slice(), v.as_mut_slice(), w.as_mut_slice());
        for ((wi, (mi, vi)), gi) in
            ww.iter_mut().zip(mw.iter_mut().zip(vw.iter_mut())).zip(g.as_slice())
        {
            *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
            *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
            let mhat = *mi / bc1;
            let vhat = *vi / bc2;
            *wi -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Adam minimizes a simple quadratic `f(w) = (w - 3)^2`.
    #[test]
    fn converges_on_a_quadratic() {
        let mut opt = Adam::new(0.1);
        let mut w = Matrix::from_rows(&[&[0.0]]);
        for _ in 0..300 {
            let g = Matrix::from_rows(&[&[2.0 * (w.get(0, 0) - 3.0)]]);
            opt.step(&mut [(ParamId(0), &mut w)], &[(ParamId(0), g)]);
        }
        assert!((w.get(0, 0) - 3.0).abs() < 0.05, "w = {}", w.get(0, 0));
        assert_eq!(opt.steps(), 300);
    }

    #[test]
    fn params_without_grads_are_untouched() {
        let mut opt = Adam::new(0.1);
        let mut w = Matrix::from_rows(&[&[5.0]]);
        opt.step(&mut [(ParamId(1), &mut w)], &[]);
        assert_eq!(w.get(0, 0), 5.0);
    }

    #[test]
    fn separate_params_have_separate_moments() {
        let mut opt = Adam::new(0.1);
        let mut a = Matrix::from_rows(&[&[0.0]]);
        let mut b = Matrix::from_rows(&[&[0.0]]);
        // Only `a` gets gradients; `b` must stay exactly 0.
        for _ in 0..10 {
            let g = Matrix::from_rows(&[&[1.0]]);
            opt.step(&mut [(ParamId(0), &mut a), (ParamId(1), &mut b)], &[(ParamId(0), g)]);
        }
        assert!(a.get(0, 0) < 0.0);
        assert_eq!(b.get(0, 0), 0.0);
    }

    /// `begin_step` + `step_param` must be bitwise identical to `step`.
    #[test]
    fn split_api_matches_step_bitwise() {
        let mut whole = Adam::new(0.01);
        let mut split = Adam::new(0.01);
        let mut wa = Matrix::from_rows(&[&[0.3, -0.2], &[1.5, 0.0]]);
        let mut wb = wa.clone();
        for i in 0..25 {
            let g = Matrix::from_rows(&[
                &[(i as f32 * 0.37).sin(), 0.5],
                &[-0.25, (i as f32 * 0.11).cos()],
            ]);
            whole.step(&mut [(ParamId(0), &mut wa)], &[(ParamId(0), g.clone())]);
            split.begin_step();
            split.step_param(ParamId(0), &mut wb, &g);
        }
        let a: Vec<u32> = wa.as_slice().iter().map(|v| v.to_bits()).collect();
        let b: Vec<u32> = wb.as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b);
        assert_eq!(whole.steps(), split.steps());
    }
}
