//! The Adam optimizer (Kingma & Ba), the paper's training algorithm.

use crate::matrix::Matrix;
use crate::tape::ParamId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Adam optimizer state.
///
/// # Examples
///
/// ```
/// use tiara_gnn::{Adam, Matrix, ParamId};
///
/// let mut opt = Adam::new(0.1);
/// let mut w = Matrix::from_rows(&[&[1.0]]);
/// let g = Matrix::from_rows(&[&[1.0]]);
/// let before = w.get(0, 0);
/// opt.step(&mut [(ParamId(0), &mut w)], &[(ParamId(0), g)]);
/// assert!(w.get(0, 0) < before, "gradient descent moves against the gradient");
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate (the paper uses `0.001`).
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    t: u64,
    m: HashMap<usize, Matrix>,
    v: HashMap<usize, Matrix>,
}

impl Adam {
    /// Creates an Adam optimizer with the standard `β1 = 0.9`, `β2 = 0.999`.
    pub fn new(lr: f32) -> Adam {
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: HashMap::new(), v: HashMap::new() }
    }

    /// Applies one update step.
    ///
    /// `params` are `(id, value)` pairs; `grads` are the `(id, gradient)`
    /// pairs returned by [`crate::Tape::backward`]. Parameters without a
    /// gradient are left untouched.
    pub fn step(&mut self, params: &mut [(ParamId, &mut Matrix)], grads: &[(ParamId, Matrix)]) {
        self.t += 1;
        let t = self.t as i32;
        let bc1 = 1.0 - self.beta1.powi(t);
        let bc2 = 1.0 - self.beta2.powi(t);
        for (id, w) in params.iter_mut() {
            let Some((_, g)) = grads.iter().find(|(gid, _)| gid == id) else {
                continue;
            };
            let m = self.m.entry(id.0).or_insert_with(|| Matrix::zeros(w.rows(), w.cols()));
            let v = self.v.entry(id.0).or_insert_with(|| Matrix::zeros(w.rows(), w.cols()));
            let (mw, vw, ww) = (m.as_mut_slice(), v.as_mut_slice(), w.as_mut_slice());
            for ((wi, (mi, vi)), gi) in
                ww.iter_mut().zip(mw.iter_mut().zip(vw.iter_mut())).zip(g.as_slice())
            {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
                let mhat = *mi / bc1;
                let vhat = *vi / bc2;
                *wi -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Adam minimizes a simple quadratic `f(w) = (w - 3)^2`.
    #[test]
    fn converges_on_a_quadratic() {
        let mut opt = Adam::new(0.1);
        let mut w = Matrix::from_rows(&[&[0.0]]);
        for _ in 0..300 {
            let g = Matrix::from_rows(&[&[2.0 * (w.get(0, 0) - 3.0)]]);
            opt.step(&mut [(ParamId(0), &mut w)], &[(ParamId(0), g)]);
        }
        assert!((w.get(0, 0) - 3.0).abs() < 0.05, "w = {}", w.get(0, 0));
        assert_eq!(opt.steps(), 300);
    }

    #[test]
    fn params_without_grads_are_untouched() {
        let mut opt = Adam::new(0.1);
        let mut w = Matrix::from_rows(&[&[5.0]]);
        opt.step(&mut [(ParamId(1), &mut w)], &[]);
        assert_eq!(w.get(0, 0), 5.0);
    }

    #[test]
    fn separate_params_have_separate_moments() {
        let mut opt = Adam::new(0.1);
        let mut a = Matrix::from_rows(&[&[0.0]]);
        let mut b = Matrix::from_rows(&[&[0.0]]);
        // Only `a` gets gradients; `b` must stay exactly 0.
        for _ in 0..10 {
            let g = Matrix::from_rows(&[&[1.0]]);
            opt.step(&mut [(ParamId(0), &mut a), (ParamId(1), &mut b)], &[(ParamId(0), g)]);
        }
        assert!(a.get(0, 0) < 0.0);
        assert_eq!(b.get(0, 0), 0.0);
    }
}
