//! A small reverse-mode autodiff tape over dense matrices, with exactly the
//! operations the paper's GCN needs: dense/sparse matrix products, ReLU,
//! segment-sum readout (eq. 5), and a fused softmax + cross-entropy loss.

use crate::csr::Csr;
use crate::fused;
use crate::matrix::Matrix;
use std::sync::Arc;

/// A handle to a tape node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

/// Identifies a trainable parameter across tape rebuilds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub usize);

#[derive(Debug)]
enum Op {
    /// A constant input (features).
    Input,
    /// A trainable parameter (its gradient is collected after backward).
    Param(ParamId),
    /// `a @ b`.
    MatMul(usize, usize),
    /// `sparse @ a`.
    Spmm(Arc<Csr>, usize),
    /// Element-wise ReLU of `a`.
    Relu(usize),
    /// Row-segment sum of `a` (the readout): output row `g` is the sum of
    /// input rows `r` with `segments[r] == g`.
    SegmentSum(usize, Arc<Vec<u32>>),
    /// Fused mean softmax-cross-entropy of logits `a` against labels.
    SoftmaxCrossEntropy(usize, Arc<Vec<u32>>),
}

#[derive(Debug)]
struct Node {
    op: Op,
    value: Matrix,
    grad: Option<Matrix>,
}

/// The autodiff tape: build a forward expression, call
/// [`Tape::backward`], then read gradients.
#[derive(Debug, Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Tape {
        Tape::default()
    }

    fn push(&mut self, op: Op, value: Matrix) -> Var {
        self.nodes.push(Node { op, value, grad: None });
        Var(self.nodes.len() - 1)
    }

    /// Registers a constant input.
    pub fn input(&mut self, value: Matrix) -> Var {
        self.push(Op::Input, value)
    }

    /// Registers a trainable parameter (a snapshot of its current value).
    pub fn param(&mut self, id: ParamId, value: Matrix) -> Var {
        self.push(Op::Param(id), value)
    }

    /// The current value of a node.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// Dense product `a @ b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let value = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        self.push(Op::MatMul(a.0, b.0), value)
    }

    /// Sparse product `sparse @ a`.
    pub fn spmm(&mut self, sparse: Arc<Csr>, a: Var) -> Var {
        let value = sparse.spmm(&self.nodes[a.0].value);
        self.push(Op::Spmm(sparse, a.0), value)
    }

    /// Element-wise ReLU.
    pub fn relu(&mut self, a: Var) -> Var {
        let value = self.nodes[a.0].value.relu();
        self.push(Op::Relu(a.0), value)
    }

    /// Segment sum over rows: the readout `h_G = Σ_v h_v` of eq. (5),
    /// batched over `num_segments` graphs.
    ///
    /// # Panics
    ///
    /// Panics if `segments.len()` differs from the number of rows of `a`,
    /// or a segment id is out of range.
    pub fn segment_sum(&mut self, a: Var, segments: Arc<Vec<u32>>, num_segments: usize) -> Var {
        let x = &self.nodes[a.0].value;
        assert_eq!(segments.len(), x.rows(), "one segment id per row");
        let mut out = Matrix::zeros(num_segments, x.cols());
        for (r, &g) in segments.iter().enumerate() {
            assert!((g as usize) < num_segments, "segment id out of range");
            let src = x.row(r);
            let dst = out.row_mut(g as usize);
            for (d, s) in dst.iter_mut().zip(src) {
                *d += s;
            }
        }
        self.push(Op::SegmentSum(a.0, segments), out)
    }

    /// Fused mean softmax-cross-entropy loss: returns a `1×1` node.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len()` differs from the number of logit rows.
    pub fn softmax_cross_entropy(&mut self, logits: Var, labels: Arc<Vec<u32>>) -> Var {
        let z = &self.nodes[logits.0].value;
        let mean = fused::softmax_ce_loss(z, &labels);
        self.push(Op::SoftmaxCrossEntropy(logits.0, labels), Matrix::from_vec(1, 1, vec![mean]))
    }

    /// Softmax probabilities of a logits node (inference helper; not
    /// differentiated). Delegates to the shared
    /// [`fused::softmax_rows_into`] kernel so tape-mode probabilities carry
    /// the same bits as the batched fast path.
    pub fn softmax(&self, logits: Var) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        fused::softmax_rows_into(&self.nodes[logits.0].value, &mut out);
        out
    }

    /// Runs the backward pass from a scalar loss node and returns the
    /// gradients of all parameters touched, as `(ParamId, grad)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not `1×1`.
    pub fn backward(&mut self, loss: Var) -> Vec<(ParamId, Matrix)> {
        {
            let l = &self.nodes[loss.0].value;
            assert_eq!((l.rows(), l.cols()), (1, 1), "loss must be scalar");
        }
        self.nodes[loss.0].grad = Some(Matrix::from_vec(1, 1, vec![1.0]));

        enum Step {
            Leaf,
            MatMul(usize, usize),
            Spmm(Arc<Csr>, usize),
            Relu(usize),
            SegmentSum(usize, Arc<Vec<u32>>),
            SoftmaxCe(usize, Arc<Vec<u32>>),
        }

        for i in (0..=loss.0).rev() {
            let Some(g) = self.nodes[i].grad.take() else {
                continue;
            };
            let step = match &self.nodes[i].op {
                Op::Input | Op::Param(_) => Step::Leaf,
                Op::MatMul(a, b) => Step::MatMul(*a, *b),
                Op::Spmm(s, a) => Step::Spmm(s.clone(), *a),
                Op::Relu(a) => Step::Relu(*a),
                Op::SegmentSum(a, segments) => Step::SegmentSum(*a, segments.clone()),
                Op::SoftmaxCrossEntropy(a, labels) => Step::SoftmaxCe(*a, labels.clone()),
            };
            match step {
                Step::Leaf => {}
                Step::MatMul(a, b) => {
                    let ga = g.matmul_t(&self.nodes[b].value);
                    let gb = self.nodes[a].value.t_matmul(&g);
                    accumulate(&mut self.nodes[a].grad, ga);
                    accumulate(&mut self.nodes[b].grad, gb);
                }
                Step::Spmm(s, a) => {
                    let ga = s.t_spmm(&g);
                    accumulate(&mut self.nodes[a].grad, ga);
                }
                Step::Relu(a) => {
                    let mut ga = g.clone();
                    let x = &self.nodes[a].value;
                    for r in 0..ga.rows() {
                        for c in 0..ga.cols() {
                            if x.get(r, c) <= 0.0 {
                                ga.set(r, c, 0.0);
                            }
                        }
                    }
                    accumulate(&mut self.nodes[a].grad, ga);
                }
                Step::SegmentSum(a, segments) => {
                    let rows = self.nodes[a].value.rows();
                    let mut ga = Matrix::zeros(rows, g.cols());
                    for (r, &seg) in segments.iter().enumerate() {
                        ga.row_mut(r).copy_from_slice(g.row(seg as usize));
                    }
                    accumulate(&mut self.nodes[a].grad, ga);
                }
                Step::SoftmaxCe(a, labels) => {
                    let scale = g.get(0, 0) / labels.len() as f32;
                    let mut ga = self.softmax(Var(a));
                    fused::softmax_ce_grad_into(&mut ga, &labels, scale);
                    accumulate(&mut self.nodes[a].grad, ga);
                }
            }
            self.nodes[i].grad = Some(g);
        }

        let mut out = Vec::new();
        for node in &self.nodes {
            if let (Op::Param(id), Some(grad)) = (&node.op, &node.grad) {
                out.push((*id, grad.clone()));
            }
        }
        out
    }

    /// The gradient of any node after [`Tape::backward`] (testing aid).
    pub fn grad(&self, v: Var) -> Option<&Matrix> {
        self.nodes[v.0].grad.as_ref()
    }
}

fn accumulate(slot: &mut Option<Matrix>, g: Matrix) {
    match slot {
        Some(existing) => existing.add_assign(&g),
        None => *slot = Some(g),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numerically checks d(loss)/d(param) for a tiny GCN-shaped graph.
    #[test]
    fn gradients_match_finite_differences() {
        // Values chosen so no pre-activation lands exactly on the ReLU
        // boundary (finite differences are meaningless there).
        let adj = Arc::new(Csr::mean_pool_adjacency(3, &[(0, 1), (1, 2)]));
        let x = Matrix::from_rows(&[&[1.1, 0.53], &[0.07, 1.02], &[2.3, -0.91]]);
        let w0 = Matrix::from_rows(&[&[0.31, -0.23, 0.52], &[0.11, 0.43, -0.61]]);
        let labels = Arc::new(vec![1u32]);
        let segs = Arc::new(vec![0u32, 0, 0]);

        let loss_at = |w: &Matrix| -> f32 {
            let mut t = Tape::new();
            let xi = t.input(x.clone());
            let wi = t.param(ParamId(0), w.clone());
            let agg = t.spmm(adj.clone(), xi);
            let h = t.matmul(agg, wi);
            let h = t.relu(h);
            let hg = t.segment_sum(h, segs.clone(), 1);
            let l = t.softmax_cross_entropy(hg, labels.clone());
            t.value(l).get(0, 0)
        };

        // Analytic gradient.
        let mut t = Tape::new();
        let xi = t.input(x.clone());
        let wi = t.param(ParamId(0), w0.clone());
        let agg = t.spmm(adj.clone(), xi);
        let h = t.matmul(agg, wi);
        let h = t.relu(h);
        let hg = t.segment_sum(h, segs.clone(), 1);
        let l = t.softmax_cross_entropy(hg, labels.clone());
        let grads = t.backward(l);
        assert_eq!(grads.len(), 1);
        let (id, g) = &grads[0];
        assert_eq!(*id, ParamId(0));

        // Finite differences.
        let eps = 1e-3f32;
        for r in 0..w0.rows() {
            for c in 0..w0.cols() {
                let mut wp = w0.clone();
                wp.set(r, c, w0.get(r, c) + eps);
                let mut wm = w0.clone();
                wm.set(r, c, w0.get(r, c) - eps);
                let num = (loss_at(&wp) - loss_at(&wm)) / (2.0 * eps);
                let ana = g.get(r, c);
                assert!((num - ana).abs() < 3e-3, "dW[{r}][{c}]: numeric {num} vs analytic {ana}");
            }
        }
    }

    #[test]
    fn segment_sum_groups_rows() {
        let mut t = Tape::new();
        let x = t.input(Matrix::from_rows(&[&[1.0], &[2.0], &[4.0]]));
        let s = t.segment_sum(x, Arc::new(vec![0, 1, 0]), 2);
        assert_eq!(t.value(s).get(0, 0), 5.0);
        assert_eq!(t.value(s).get(1, 0), 2.0);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut t = Tape::new();
        let z = t.input(Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[0.0, 0.0, 0.0]]));
        let p = t.softmax(z);
        for r in 0..2 {
            let s: f32 = (0..3).map(|c| p.get(r, c)).sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        assert!(p.get(0, 2) > p.get(0, 0));
    }

    #[test]
    fn cross_entropy_of_perfect_prediction_is_small() {
        let mut t = Tape::new();
        let z = t.input(Matrix::from_rows(&[&[10.0, -10.0]]));
        let l = t.softmax_cross_entropy(z, Arc::new(vec![0]));
        assert!(t.value(l).get(0, 0) < 1e-3);
        let l2 = {
            let mut t2 = Tape::new();
            let z2 = t2.input(Matrix::from_rows(&[&[10.0, -10.0]]));
            let l2 = t2.softmax_cross_entropy(z2, Arc::new(vec![1]));
            t2.value(l2).get(0, 0)
        };
        assert!(l2 > 10.0, "confidently wrong prediction has high loss");
    }

    #[test]
    fn relu_blocks_gradient_through_negatives() {
        let mut t = Tape::new();
        let x = t.input(Matrix::from_rows(&[&[-5.0, 5.0]]));
        let w = t.param(ParamId(7), Matrix::eye(2));
        let h = t.matmul(x, w);
        let r = t.relu(h);
        let l = t.softmax_cross_entropy(r, Arc::new(vec![1]));
        let grads = t.backward(l);
        let g = &grads[0].1;
        // Column 0 of W only feeds the negative (clamped) activation.
        assert_eq!(g.get(0, 0), 0.0);
        assert_eq!(g.get(1, 0), 0.0);
        assert!(g.get(1, 1).abs() > 0.0);
    }
}
