//! The GCN classifier of Section III-B2:
//!
//! * `h_v^0 = X_v`                                       (eq. 3)
//! * `h_v^k = ReLU(W^k · mean_{u ∈ N(v) ∪ {v}} h_u^{k-1})` (eq. 4)
//! * `h_G   = Σ_v h_v`                                   (eq. 5)
//! * `ŷ_G   = argmax softmax(W_L · h_G)`                 (eq. 6)
//!
//! with two graph-convolution layers of size 64, trained with Adam
//! (lr = 0.001) and cross-entropy loss, as in the paper.

use crate::adam::Adam;
use crate::batch::{sample_adjacency, TrainStats, Workspace};
use crate::csr::Csr;
use crate::fused;
use crate::matrix::Matrix;
use crate::tape::{ParamId, Tape, Var};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// One graph sample: node features, the directed edge list, and the label.
/// The normalized adjacency is built at batch time according to the model's
/// [`Aggregation`] configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GraphSample {
    /// `n × input_dim` node features.
    pub features: Matrix,
    /// Directed edges `(from, to)` over `0..n`.
    pub edges: Vec<(u32, u32)>,
    /// Class label.
    pub label: u32,
}

impl GraphSample {
    /// Builds a sample from raw features and an edge list.
    ///
    /// # Panics
    ///
    /// Panics if an edge endpoint is out of range.
    pub fn new(features: Matrix, edges: &[(u32, u32)], label: u32) -> GraphSample {
        let n = features.rows() as u32;
        for &(u, v) in edges {
            assert!(u < n && v < n, "edge ({u}, {v}) out of range for {n} nodes");
        }
        GraphSample { features, edges: edges.to_vec(), label }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.features.rows()
    }
}

/// How node representations are pooled over the in-neighborhood.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Aggregation {
    /// Element-wise mean over `N(v) ∪ {v}` — the paper's eq. (4)
    /// (Kipf & Welling style).
    Mean,
    /// Element-wise sum over `N(v) ∪ {v}` — GIN style (Xu et al., the
    /// paper's reference \[24\]); provided for the aggregation ablation.
    Sum,
}

/// Hyper-parameters of the GCN (paper defaults).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GcnConfig {
    /// Input feature dimension (42 in the paper).
    pub input_dim: usize,
    /// Hidden width of the graph-convolution layers (64).
    pub hidden_dim: usize,
    /// Number of graph-convolution layers (2 in the paper).
    pub num_layers: usize,
    /// Neighborhood pooling (the paper uses mean).
    pub aggregation: Aggregation,
    /// Number of classes (4).
    pub num_classes: usize,
    /// Adam learning rate (0.001).
    pub learning_rate: f32,
    /// Training epochs (the paper uses 300; the eval harness typically runs
    /// fewer on CPU — see EXPERIMENTS.md).
    pub epochs: usize,
    /// Mini-batch size (graphs per step).
    pub batch_size: usize,
    /// RNG seed for initialization and shuffling.
    pub seed: u64,
    /// Train and predict through the original per-batch autodiff tape
    /// instead of the batched block-diagonal engine. The two paths are
    /// bitwise identical (same kernels, same batch composition, same
    /// reduction orders — pinned by the differential suite); the tape path
    /// is kept as the readable reference and digest oracle.
    #[serde(default)]
    pub reference_mode: bool,
}

impl Default for GcnConfig {
    fn default() -> GcnConfig {
        GcnConfig {
            input_dim: 42,
            hidden_dim: 64,
            num_layers: 2,
            aggregation: Aggregation::Mean,
            num_classes: 4,
            learning_rate: 1e-3,
            epochs: 300,
            batch_size: 32,
            seed: 0xC60,
            reference_mode: false,
        }
    }
}

/// The trained model: the convolution weights plus the linear head.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Gcn {
    config: GcnConfig,
    convs: Vec<Matrix>,
    head: Matrix,
    /// Perf counters of the most recent training run (not persisted).
    #[serde(skip)]
    stats: TrainStats,
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss.
    pub loss: f32,
    /// Training accuracy.
    pub accuracy: f32,
}

impl Gcn {
    /// Initializes an untrained model.
    ///
    /// # Panics
    ///
    /// Panics if `config.num_layers` is zero.
    pub fn new(config: GcnConfig) -> Gcn {
        assert!(config.num_layers >= 1, "at least one convolution layer");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut convs = Vec::with_capacity(config.num_layers);
        let mut dim_in = config.input_dim;
        for _ in 0..config.num_layers {
            convs.push(Matrix::xavier(dim_in, config.hidden_dim, &mut rng));
            dim_in = config.hidden_dim;
        }
        let head = Matrix::xavier(config.hidden_dim, config.num_classes, &mut rng);
        Gcn { config, convs, head, stats: TrainStats::default() }
    }

    /// Rebuilds a trained model from its weights (container loading; the
    /// matrices may borrow mapped bytes zero-copy).
    ///
    /// # Panics
    ///
    /// Panics if the layer chain does not match the configuration.
    pub fn from_parts(config: GcnConfig, convs: Vec<Matrix>, head: Matrix) -> Gcn {
        assert_eq!(convs.len(), config.num_layers, "layer count mismatch");
        let mut dim_in = config.input_dim;
        for (k, w) in convs.iter().enumerate() {
            assert_eq!((w.rows(), w.cols()), (dim_in, config.hidden_dim), "conv {k} shape");
            dim_in = config.hidden_dim;
        }
        assert_eq!((head.rows(), head.cols()), (config.hidden_dim, config.num_classes), "head");
        Gcn { config, convs, head, stats: TrainStats::default() }
    }

    /// The convolution weight matrices, in layer order.
    pub fn conv_weights(&self) -> &[Matrix] {
        &self.convs
    }

    /// The classification-head weight matrix.
    pub fn head_weights(&self) -> &Matrix {
        &self.head
    }

    /// Total bytes the weights borrow zero-copy from mapped storage
    /// (0 for a fully owned model) — the "reused-bytes" stat of the
    /// zero-copy acceptance check.
    pub fn mapped_weight_bytes(&self) -> usize {
        self.convs.iter().map(Matrix::shared_bytes).sum::<usize>() + self.head.shared_bytes()
    }

    /// Copies any borrowed weights into owned storage (a no-op on an
    /// already-owned model). JSON serialization calls this on a clone so
    /// the legacy bundle always carries the element data.
    pub fn materialize_weights(&mut self) {
        for w in &mut self.convs {
            w.materialize();
        }
        self.head.materialize();
    }

    /// The model configuration.
    pub fn config(&self) -> &GcnConfig {
        &self.config
    }

    /// Builds the batched forward pass on a tape and returns the logits node.
    fn forward(&self, tape: &mut Tape, batch: &[&GraphSample]) -> Var {
        let total_nodes: usize = batch.iter().map(|g| g.num_nodes()).sum();
        let mut features = Matrix::zeros(total_nodes, self.config.input_dim);
        let mut segments = Vec::with_capacity(total_nodes);
        let mut edges: Vec<(u32, u32)> = Vec::new();
        let mut row = 0usize;
        for (gi, g) in batch.iter().enumerate() {
            let base = row as u32;
            edges.extend(g.edges.iter().map(|&(u, v)| (u + base, v + base)));
            for r in 0..g.num_nodes() {
                features.row_mut(row).copy_from_slice(g.features.row(r));
                segments.push(gi as u32);
                row += 1;
            }
        }
        let adj = Arc::new(match self.config.aggregation {
            Aggregation::Mean => Csr::mean_pool_adjacency(total_nodes, &edges),
            Aggregation::Sum => Csr::sum_adjacency(total_nodes, &edges),
        });
        let segments = Arc::new(segments);

        // Each layer: h <- ReLU(Â h W) (eq. 4), then sum readout (eq. 5)
        // and the linear head (eq. 6).
        let mut h = tape.input(features);
        for (k, w) in self.convs.iter().enumerate() {
            let wk = tape.param(ParamId(k), w.clone());
            let agg = tape.spmm(adj.clone(), h);
            let hw = tape.matmul(agg, wk);
            h = tape.relu(hw);
        }
        let head = tape.param(ParamId(self.convs.len()), self.head.clone());
        let hg = tape.segment_sum(h, segments, batch.len());
        tape.matmul(hg, head)
    }

    /// Trains on the samples, returning per-epoch statistics.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or a sample's feature width differs from
    /// the configured `input_dim`.
    pub fn train(&mut self, samples: &[GraphSample]) -> Vec<EpochStats> {
        self.train_with_progress(samples, |_| {})
    }

    /// Trains with a per-epoch callback.
    ///
    /// Runs the batched block-diagonal engine unless
    /// [`GcnConfig::reference_mode`] selects the original tape path; the two
    /// produce bitwise-identical models.
    ///
    /// # Panics
    ///
    /// See [`Gcn::train`].
    pub fn train_with_progress(
        &mut self,
        samples: &[GraphSample],
        mut progress: impl FnMut(&EpochStats),
    ) -> Vec<EpochStats> {
        assert!(!samples.is_empty(), "no training samples");
        for s in samples {
            assert_eq!(s.features.cols(), self.config.input_dim, "feature width mismatch");
        }
        if self.config.reference_mode {
            self.train_reference(samples, &mut progress)
        } else {
            self.train_batched(samples, None, &mut progress).0
        }
    }

    /// The original per-batch tape loop, kept as the digest oracle.
    fn train_reference(
        &mut self,
        samples: &[GraphSample],
        progress: &mut impl FnMut(&EpochStats),
    ) -> Vec<EpochStats> {
        let n_convs = self.convs.len();
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0xADA);
        let mut opt = Adam::new(self.config.learning_rate);
        let mut order: Vec<usize> = (0..samples.len()).collect();
        let mut stats = Vec::with_capacity(self.config.epochs);
        let mut tstats = TrainStats::default();

        for epoch in 0..self.config.epochs {
            order.shuffle(&mut rng);
            let mut loss_sum = 0.0f64;
            let mut correct = 0usize;
            for chunk in order.chunks(self.config.batch_size) {
                let batch: Vec<&GraphSample> = chunk.iter().map(|&i| &samples[i]).collect();
                let labels: Arc<Vec<u32>> = Arc::new(batch.iter().map(|g| g.label).collect());

                let t0 = Instant::now();
                let mut tape = Tape::new();
                let logits = self.forward(&mut tape, &batch);
                let loss = tape.softmax_cross_entropy(logits, labels.clone());
                loss_sum += f64::from(tape.value(loss).get(0, 0)) * batch.len() as f64;
                let probs = tape.softmax(logits);
                for (r, &y) in labels.iter().enumerate() {
                    if probs.argmax_row(r) == y as usize {
                        correct += 1;
                    }
                }

                let t1 = Instant::now();
                let grads = tape.backward(loss);
                let t2 = Instant::now();
                let mut params: Vec<(ParamId, &mut Matrix)> =
                    self.convs.iter_mut().enumerate().map(|(k, w)| (ParamId(k), w)).collect();
                params.push((ParamId(n_convs), &mut self.head));
                opt.step(&mut params, &grads);
                tstats.forward_secs += (t1 - t0).as_secs_f64();
                tstats.backward_secs += (t2 - t1).as_secs_f64();
                tstats.optimizer_secs += t2.elapsed().as_secs_f64();
                tstats.batches += 1;
            }
            let s = EpochStats {
                epoch,
                loss: (loss_sum / samples.len() as f64) as f32,
                accuracy: correct as f32 / samples.len() as f32,
            };
            progress(&s);
            stats.push(s);
        }
        self.stats = tstats;
        stats
    }

    /// The batched block-diagonal training loop (see [`crate::batch`]):
    /// per-sample adjacencies are normalized once, every minibatch is packed
    /// into one block-diagonal spmm + fused matmul+ReLU pipeline, and all
    /// intermediates live in a workspace arena reused across epochs.
    ///
    /// With `validation` present, also tracks the best-validation-accuracy
    /// parameters and restores them at the end (the second tuple element is
    /// that best accuracy; `-1.0` when no validation set was given).
    fn train_batched(
        &mut self,
        samples: &[GraphSample],
        validation: Option<&[GraphSample]>,
        progress: &mut impl FnMut(&EpochStats),
    ) -> (Vec<EpochStats>, f32) {
        let n_convs = self.convs.len();
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0xADA);
        let mut opt = Adam::new(self.config.learning_rate);
        let mut order: Vec<usize> = (0..samples.len()).collect();
        let mut stats = Vec::with_capacity(self.config.epochs);
        let mut tstats = TrainStats::default();
        let mut best_acc = -1.0f32;
        let mut best: Option<(Vec<Matrix>, Matrix)> = None;

        // The cacheable half of every batch adjacency: per-sample
        // normalization happens once, not once per batch per epoch.
        let adjs: Vec<Csr> =
            samples.iter().map(|s| sample_adjacency(s, self.config.aggregation)).collect();
        let mut ws = Workspace::default();
        let mut batch_refs: Vec<&GraphSample> = Vec::with_capacity(self.config.batch_size);
        let mut adj_refs: Vec<&Csr> = Vec::with_capacity(self.config.batch_size);

        for epoch in 0..self.config.epochs {
            order.shuffle(&mut rng);
            let mut loss_sum = 0.0f64;
            let mut correct = 0usize;
            for chunk in order.chunks(self.config.batch_size) {
                batch_refs.clear();
                adj_refs.clear();
                for &i in chunk {
                    batch_refs.push(&samples[i]);
                    adj_refs.push(&adjs[i]);
                }

                let t0 = Instant::now();
                ws.pack(&batch_refs, &adj_refs, self.config.input_dim);
                ws.forward(&self.convs, &self.head, chunk.len());
                let loss = fused::softmax_ce_loss(&ws.logits, &ws.labels);
                ws.fused_calls += 1;
                loss_sum += f64::from(loss) * chunk.len() as f64;
                fused::softmax_rows_into(&ws.logits, &mut ws.probs);
                for (r, &y) in ws.labels.iter().enumerate() {
                    if ws.probs.argmax_row(r) == y as usize {
                        correct += 1;
                    }
                }

                let t1 = Instant::now();
                fused::softmax_ce_grad_into(&mut ws.probs, &ws.labels, 1.0 / chunk.len() as f32);
                ws.fused_calls += 1;
                ws.backward(&self.convs, &self.head);

                let t2 = Instant::now();
                opt.begin_step();
                for (k, w) in self.convs.iter_mut().enumerate() {
                    opt.step_param(ParamId(k), w, &ws.grads[k]);
                }
                opt.step_param(ParamId(n_convs), &mut self.head, &ws.grads[n_convs]);
                tstats.forward_secs += (t1 - t0).as_secs_f64();
                tstats.backward_secs += (t2 - t1).as_secs_f64();
                tstats.optimizer_secs += t2.elapsed().as_secs_f64();
                tstats.batches += 1;
            }
            let s = EpochStats {
                epoch,
                loss: (loss_sum / samples.len() as f64) as f32,
                accuracy: correct as f32 / samples.len() as f32,
            };
            progress(&s);
            stats.push(s);

            if let Some(val) = validation {
                let preds = self.predict_batch(val);
                let v_correct = preds.iter().zip(val).filter(|(p, g)| **p == g.label).count();
                let acc = v_correct as f32 / val.len() as f32;
                if acc > best_acc {
                    best_acc = acc;
                    best = Some((self.convs.clone(), self.head.clone()));
                }
            }
        }
        if let Some((convs, head)) = best {
            self.convs = convs;
            self.head = head;
        }
        tstats.fused_kernel_calls = ws.fused_calls;
        tstats.bytes_reused = ws.bytes_reused;
        self.stats = tstats;
        (stats, best_acc)
    }

    /// Perf counters of the most recent [`Gcn::train`] call (zeroed until a
    /// model has been trained in this process; not persisted with the
    /// model).
    pub fn train_stats(&self) -> TrainStats {
        self.stats
    }

    /// Trains with a held-out validation set, keeping the parameters of the
    /// epoch with the best validation accuracy (simple model selection;
    /// useful when the caller can spare a validation split).
    ///
    /// Returns the per-epoch stats and the best validation accuracy.
    ///
    /// # Panics
    ///
    /// Panics if either sample set is empty.
    pub fn train_with_validation(
        &mut self,
        train: &[GraphSample],
        validation: &[GraphSample],
    ) -> (Vec<EpochStats>, f32) {
        assert!(!train.is_empty(), "no training samples");
        assert!(!validation.is_empty(), "no validation samples");
        if !self.config.reference_mode {
            return self.train_batched(train, Some(validation), &mut |_| {});
        }
        let n_convs = self.convs.len();
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0xADA);
        let mut opt = Adam::new(self.config.learning_rate);
        let mut order: Vec<usize> = (0..train.len()).collect();
        let mut stats = Vec::with_capacity(self.config.epochs);
        let mut best_acc = -1.0f32;
        let mut best: Option<(Vec<Matrix>, Matrix)> = None;

        for epoch in 0..self.config.epochs {
            order.shuffle(&mut rng);
            let mut loss_sum = 0.0f64;
            let mut correct = 0usize;
            for chunk in order.chunks(self.config.batch_size) {
                let batch: Vec<&GraphSample> = chunk.iter().map(|&i| &train[i]).collect();
                let labels: Arc<Vec<u32>> = Arc::new(batch.iter().map(|g| g.label).collect());
                let mut tape = Tape::new();
                let logits = self.forward(&mut tape, &batch);
                let loss = tape.softmax_cross_entropy(logits, labels.clone());
                loss_sum += f64::from(tape.value(loss).get(0, 0)) * batch.len() as f64;
                let probs = tape.softmax(logits);
                for (r, &y) in labels.iter().enumerate() {
                    if probs.argmax_row(r) == y as usize {
                        correct += 1;
                    }
                }
                let grads = tape.backward(loss);
                let mut params: Vec<(ParamId, &mut Matrix)> =
                    self.convs.iter_mut().enumerate().map(|(k, w)| (ParamId(k), w)).collect();
                params.push((ParamId(n_convs), &mut self.head));
                opt.step(&mut params, &grads);
            }
            stats.push(EpochStats {
                epoch,
                loss: (loss_sum / train.len() as f64) as f32,
                accuracy: correct as f32 / train.len() as f32,
            });

            // Validation checkpoint.
            let preds = self.predict_batch(validation);
            let v_correct = preds.iter().zip(validation).filter(|(p, g)| **p == g.label).count();
            let acc = v_correct as f32 / validation.len() as f32;
            if acc > best_acc {
                best_acc = acc;
                best = Some((self.convs.clone(), self.head.clone()));
            }
        }
        if let Some((convs, head)) = best {
            self.convs = convs;
            self.head = head;
        }
        (stats, best_acc)
    }

    /// Predicts the class of one graph.
    pub fn predict(&self, sample: &GraphSample) -> u32 {
        self.predict_batch(std::slice::from_ref(sample))[0]
    }

    /// Predicts the classes of a batch of graphs.
    pub fn predict_batch(&self, samples: &[GraphSample]) -> Vec<u32> {
        let mut out = Vec::with_capacity(samples.len());
        self.infer_chunks(samples, |probs, rows| {
            for r in 0..rows {
                out.push(probs.argmax_row(r) as u32);
            }
        });
        out
    }

    /// Class probabilities for one graph.
    pub fn predict_proba(&self, sample: &GraphSample) -> Vec<f32> {
        self.predict_proba_batch(std::slice::from_ref(sample)).pop().expect("one sample in")
    }

    /// Class probabilities for a batch of graphs, one forward pass per
    /// `batch_size` chunk. Row `i` is bitwise identical to
    /// `predict_proba(&samples[i])` — every kernel is row-local with a fixed
    /// reduction order, so batch composition cannot change any bit.
    pub fn predict_proba_batch(&self, samples: &[GraphSample]) -> Vec<Vec<f32>> {
        let mut out = Vec::with_capacity(samples.len());
        self.infer_chunks(samples, |probs, rows| {
            for r in 0..rows {
                out.push(probs.row(r).to_vec());
            }
        });
        out
    }

    /// Runs the forward pass chunk by chunk, handing each chunk's softmax
    /// probabilities (and its row count) to `sink`. Dispatches to the
    /// batched engine or, in reference mode, the tape.
    fn infer_chunks(&self, samples: &[GraphSample], mut sink: impl FnMut(&Matrix, usize)) {
        if samples.is_empty() {
            return;
        }
        let chunk_size = self.config.batch_size.max(1);
        if self.config.reference_mode {
            for chunk in samples.chunks(chunk_size) {
                let batch: Vec<&GraphSample> = chunk.iter().collect();
                let mut tape = Tape::new();
                let logits = self.forward(&mut tape, &batch);
                sink(&tape.softmax(logits), chunk.len());
            }
            return;
        }
        let mut ws = Workspace::default();
        let mut probs = Matrix::zeros(0, 0);
        let mut adjs: Vec<Csr> = Vec::new();
        for chunk in samples.chunks(chunk_size) {
            adjs.clear();
            adjs.extend(chunk.iter().map(|g| sample_adjacency(g, self.config.aggregation)));
            let batch_refs: Vec<&GraphSample> = chunk.iter().collect();
            let adj_refs: Vec<&Csr> = adjs.iter().collect();
            ws.pack(&batch_refs, &adj_refs, self.config.input_dim);
            ws.forward(&self.convs, &self.head, chunk.len());
            fused::softmax_rows_into(&ws.logits, &mut probs);
            sink(&probs, chunk.len());
        }
    }

    /// Serializes the model to JSON.
    ///
    /// # Errors
    ///
    /// Returns any serializer error.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        if self.mapped_weight_bytes() > 0 {
            let mut owned = self.clone();
            owned.materialize_weights();
            return serde_json::to_string(&owned);
        }
        serde_json::to_string(self)
    }

    /// Deserializes a model from JSON.
    ///
    /// # Errors
    ///
    /// Returns any deserializer error.
    pub fn from_json(s: &str) -> Result<Gcn, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two easily separable synthetic graph families:
    /// class 0 = a 3-chain with feature pattern A, class 1 = a 4-star with
    /// feature pattern B.
    fn toy_dataset(n_per_class: usize) -> Vec<GraphSample> {
        let mut out = Vec::new();
        for k in 0..n_per_class {
            let bump = (k % 3) as f32 * 0.1;
            let mut fa = Matrix::zeros(3, 4);
            for r in 0..3 {
                fa.set(r, 0, 1.0 + bump);
                fa.set(r, 1, 0.1);
            }
            out.push(GraphSample::new(fa, &[(0, 1), (1, 2)], 0));
            let mut fb = Matrix::zeros(4, 4);
            for r in 0..4 {
                fb.set(r, 2, 1.0 + bump);
                fb.set(r, 3, 0.2);
            }
            out.push(GraphSample::new(fb, &[(0, 1), (0, 2), (0, 3)], 1));
        }
        out
    }

    fn toy_config(epochs: usize) -> GcnConfig {
        GcnConfig {
            input_dim: 4,
            hidden_dim: 8,
            num_layers: 2,
            aggregation: Aggregation::Mean,
            num_classes: 2,
            learning_rate: 0.01,
            epochs,
            batch_size: 4,
            seed: 3,
            reference_mode: false,
        }
    }

    #[test]
    fn learns_a_separable_toy_problem() {
        let data = toy_dataset(8);
        let mut gcn = Gcn::new(toy_config(60));
        let stats = gcn.train(&data);
        let last = stats.last().unwrap();
        assert!(last.accuracy > 0.95, "final accuracy {}", last.accuracy);
        assert!(last.loss < stats[0].loss, "loss decreased");
        // Held-out-ish check: fresh samples from the same generator.
        let test = toy_dataset(2);
        let preds = gcn.predict_batch(&test);
        let correct = preds.iter().zip(test.iter()).filter(|(p, s)| **p == s.label).count();
        assert!(correct >= 3, "correct {correct}/4");
    }

    #[test]
    fn probabilities_sum_to_one() {
        let data = toy_dataset(1);
        let gcn = Gcn::new(toy_config(1));
        let p = gcn.predict_proba(&data[0]);
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn serialization_round_trips() {
        let data = toy_dataset(2);
        let mut gcn = Gcn::new(toy_config(5));
        gcn.train(&data);
        let Ok(json) = gcn.to_json() else {
            return; // serde stubbed out (offline build); covered in CI
        };
        let Ok(back) = Gcn::from_json(&json) else {
            return; // serde stubbed out (offline build); covered in CI
        };
        assert_eq!(gcn.predict_batch(&data), back.predict_batch(&data));
    }

    #[test]
    fn from_parts_rebuilds_an_identical_model() {
        let data = toy_dataset(2);
        let mut gcn = Gcn::new(toy_config(5));
        gcn.train(&data);
        let back = Gcn::from_parts(
            gcn.config().clone(),
            gcn.conv_weights().to_vec(),
            gcn.head_weights().clone(),
        );
        assert_eq!(gcn.predict_batch(&data), back.predict_batch(&data));
        assert_eq!(gcn.mapped_weight_bytes(), 0, "trained weights are owned");
    }

    #[test]
    #[should_panic(expected = "layer count mismatch")]
    fn from_parts_rejects_wrong_layer_count() {
        let gcn = Gcn::new(toy_config(1));
        let _ = Gcn::from_parts(gcn.config().clone(), Vec::new(), gcn.head_weights().clone());
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let data = toy_dataset(3);
        let mut a = Gcn::new(toy_config(5));
        let mut b = Gcn::new(toy_config(5));
        let sa = a.train(&data);
        let sb = b.train(&data);
        assert_eq!(sa, sb);
        assert_eq!(a.predict_batch(&data), b.predict_batch(&data));
    }

    #[test]
    fn validation_training_keeps_the_best_model() {
        let train = toy_dataset(6);
        let val = toy_dataset(2);
        let mut gcn = Gcn::new(toy_config(40));
        let (stats, best_acc) = gcn.train_with_validation(&train, &val);
        assert_eq!(stats.len(), 40);
        assert!(best_acc > 0.9, "best validation accuracy {best_acc}");
        // The restored weights actually achieve the reported accuracy.
        let preds = gcn.predict_batch(&val);
        let correct = preds.iter().zip(&val).filter(|(p, g)| **p == g.label).count();
        assert_eq!(correct as f32 / val.len() as f32, best_acc);
    }

    #[test]
    fn sum_aggregation_also_learns() {
        let data = toy_dataset(8);
        let cfg = GcnConfig { aggregation: Aggregation::Sum, ..toy_config(60) };
        let mut gcn = Gcn::new(cfg);
        let stats = gcn.train(&data);
        assert!(stats.last().unwrap().accuracy > 0.9, "sum-pooling accuracy");
    }

    #[test]
    fn layer_count_is_configurable() {
        let data = toy_dataset(4);
        for layers in [1usize, 3] {
            let cfg = GcnConfig { num_layers: layers, ..toy_config(20) };
            let mut gcn = Gcn::new(cfg);
            let stats = gcn.train(&data);
            assert!(
                stats.last().unwrap().accuracy > 0.7,
                "{layers}-layer model accuracy {}",
                stats.last().unwrap().accuracy
            );
            assert!(gcn.predict(&data[0]) < 2);
        }
    }

    #[test]
    #[should_panic(expected = "at least one convolution layer")]
    fn zero_layers_is_rejected() {
        let _ = Gcn::new(GcnConfig { num_layers: 0, ..toy_config(1) });
    }

    #[test]
    fn single_node_graph_is_handled() {
        let f = Matrix::from_rows(&[&[1.0, 0.0, 0.0, 0.0]]);
        let g = GraphSample::new(f, &[], 0);
        let gcn = Gcn::new(toy_config(1));
        let p = gcn.predict(&g);
        assert!(p < 2);
    }

    /// Every observable bit of a model's predictions, for differential
    /// comparisons.
    fn proba_bits(gcn: &Gcn, data: &[GraphSample]) -> Vec<u32> {
        data.iter().flat_map(|s| gcn.predict_proba(s).into_iter().map(f32::to_bits)).collect()
    }

    #[test]
    fn batched_training_is_bitwise_identical_to_reference_mode() {
        let data = toy_dataset(7);
        for batch_size in [1usize, 3, 4, 32] {
            let cfg = GcnConfig { batch_size, ..toy_config(8) };
            let mut fast = Gcn::new(cfg.clone());
            let mut refr = Gcn::new(GcnConfig { reference_mode: true, ..cfg });
            let sf = fast.train(&data);
            let sr = refr.train(&data);
            assert_eq!(sf, sr, "epoch stats diverged at batch_size {batch_size}");
            assert_eq!(
                proba_bits(&fast, &data),
                proba_bits(&refr, &data),
                "probabilities diverged at batch_size {batch_size}"
            );
            assert_eq!(fast.convs.len(), refr.convs.len());
            for (a, b) in fast.convs.iter().zip(&refr.convs) {
                assert_eq!(a, b, "conv weights diverged at batch_size {batch_size}");
            }
            assert_eq!(fast.head, refr.head, "head diverged at batch_size {batch_size}");
        }
    }

    #[test]
    fn batched_validation_training_matches_reference_mode() {
        let train = toy_dataset(6);
        let val = toy_dataset(2);
        let mut fast = Gcn::new(toy_config(12));
        let mut refr = Gcn::new(GcnConfig { reference_mode: true, ..toy_config(12) });
        let (sf, af) = fast.train_with_validation(&train, &val);
        let (sr, ar) = refr.train_with_validation(&train, &val);
        assert_eq!(sf, sr);
        assert_eq!(af, ar);
        assert_eq!(proba_bits(&fast, &train), proba_bits(&refr, &train));
    }

    #[test]
    fn train_stats_counters_are_populated() {
        let data = toy_dataset(4);
        let mut gcn = Gcn::new(toy_config(3));
        gcn.train(&data);
        let ts = gcn.train_stats();
        assert_eq!(ts.batches, 3 * 2, "8 samples / batch 4 = 2 batches × 3 epochs");
        assert!(ts.fused_kernel_calls > 0);
        assert!(ts.bytes_reused > 0, "arena must warm up after the first batch");
        // Reference mode counts batches but no fused-kernel activity.
        let mut refr = Gcn::new(GcnConfig { reference_mode: true, ..toy_config(3) });
        refr.train(&data);
        assert_eq!(refr.train_stats().batches, 6);
        assert_eq!(refr.train_stats().fused_kernel_calls, 0);
    }

    #[test]
    fn predict_proba_batch_rows_match_single_sample_calls() {
        let data = toy_dataset(5);
        let mut gcn = Gcn::new(toy_config(6));
        gcn.train(&data);
        let batched = gcn.predict_proba_batch(&data);
        for (s, row) in data.iter().zip(&batched) {
            let single = gcn.predict_proba(s);
            let a: Vec<u32> = single.iter().map(|v| v.to_bits()).collect();
            let b: Vec<u32> = row.iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b, "batched row differs from single-sample predict_proba");
        }
    }

    #[test]
    fn old_model_json_without_reference_mode_still_loads() {
        let mut gcn = Gcn::new(toy_config(2));
        gcn.train(&toy_dataset(2));
        let Ok(json) = gcn.to_json() else {
            return; // serde stubbed out (offline build); covered in CI
        };
        // Strip the new field to simulate a pre-PR8 model file.
        let stripped = json.replace(",\"reference_mode\":false", "");
        if json == stripped {
            return; // serde stubbed to a placeholder (offline build)
        }
        let Ok(back) = Gcn::from_json(&stripped) else {
            return; // serde stubbed out (offline build); covered in CI
        };
        assert!(!back.config().reference_mode);
        assert_eq!(gcn.predict_batch(&toy_dataset(2)), back.predict_batch(&toy_dataset(2)));
    }
}
