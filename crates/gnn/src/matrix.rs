//! Dense row-major `f32` matrices: the tensor type of the GCN stack.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f32`.
///
/// # Examples
///
/// ```
/// use tiara_gnn::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::eye(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// An all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// The identity matrix.
    pub fn eye(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Matrix {
        let r = rows.len();
        let c = rows.first().map_or(0, |x| x.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix { rows: r, cols: c, data }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Xavier/Glorot-uniform initialization.
    pub fn xavier(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
        let bound = (6.0f32 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols).map(|_| rng.random_range(-bound..bound)).collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// A view of one row.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A mutable view of one row.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The flat data slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The flat mutable data slice.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Matrix product `self @ other` (ikj loop order).
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for (k, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                let o_row = out.row_mut(i);
                for (j, &bkj) in b_row.iter().enumerate() {
                    o_row[j] += aik * bkj;
                }
            }
        }
        out
    }

    /// Matrix product `self^T @ other` without materializing the transpose.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            let a_row = self.row(r);
            let b_row = other.row(r);
            for (i, &ari) in a_row.iter().enumerate() {
                if ari == 0.0 {
                    continue;
                }
                let o_row = out.row_mut(i);
                for (j, &brj) in b_row.iter().enumerate() {
                    o_row[j] += ari * brj;
                }
            }
        }
        out
    }

    /// Matrix product `self @ other^T` without materializing the transpose.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                let mut acc = 0.0f32;
                for k in 0..self.cols {
                    acc += a_row[k] * b_row[k];
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    /// Adds `other` element-wise, in place.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "add shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Scales every element, in place.
    pub fn scale(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Element-wise ReLU.
    pub fn relu(&self) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| x.max(0.0)).collect(),
        }
    }

    /// The Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Index of the maximum element in a row.
    pub fn argmax_row(&self, r: usize) -> usize {
        let row = self.row(r);
        row.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn transposed_products_agree_with_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = Matrix::xavier(4, 3, &mut rng);
        let b = Matrix::xavier(4, 5, &mut rng);
        // a^T @ b via t_matmul vs. manual.
        let t = a.t_matmul(&b);
        for i in 0..3 {
            for j in 0..5 {
                let manual: f32 = (0..4).map(|k| a.get(k, i) * b.get(k, j)).sum();
                assert!((t.get(i, j) - manual).abs() < 1e-5);
            }
        }
        let c = Matrix::xavier(6, 3, &mut rng);
        let d = Matrix::xavier(7, 3, &mut rng);
        let p = c.matmul_t(&d);
        for i in 0..6 {
            for j in 0..7 {
                let manual: f32 = (0..3).map(|k| c.get(i, k) * d.get(j, k)).sum();
                assert!((p.get(i, j) - manual).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn relu_and_argmax() {
        let a = Matrix::from_rows(&[&[-1.0, 2.0, 0.5]]);
        assert_eq!(a.relu(), Matrix::from_rows(&[&[0.0, 2.0, 0.5]]));
        assert_eq!(a.argmax_row(0), 1);
    }

    #[test]
    fn xavier_is_bounded_and_deterministic() {
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        let a = Matrix::xavier(10, 10, &mut r1);
        let b = Matrix::xavier(10, 10, &mut r2);
        assert_eq!(a, b);
        let bound = (6.0f32 / 20.0).sqrt();
        assert!(a.as_slice().iter().all(|&x| x.abs() <= bound));
        assert!(a.norm() > 0.0);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
