//! Dense row-major `f32` matrices: the tensor type of the GCN stack.

use crate::source::F32Source;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use tiara_par::Executor;

/// `k`-tile width of the blocked dense kernels: the inner dimension is walked
/// in tiles of this many rows of the right-hand operand so they stay hot in
/// L1/L2 across a block of output rows. Tiles are visited in ascending order,
/// so per-element accumulation order — and therefore every output bit — is
/// identical to the untiled loop.
const TILE_K: usize = 64;

/// Output rows per parallel work block. Workers steal whole row blocks, so
/// each output row is written by exactly one thread.
const BLOCK_ROWS: usize = 64;

/// Multiply-accumulate count below which the dense and sparse kernels run
/// inline on the calling thread instead of entering the work-stealing
/// executor.
///
/// The executor spawns scoped OS threads per parallel region, which costs
/// tens of microseconds — more than a small matmul takes outright. BENCH_PR5
/// measured `epoch_speedup = 0.892` (parallel training *slower* than
/// sequential) because every per-batch GCN op was just above the executor's
/// generic [`tiara_par::MIN_PARALLEL_WORK`] floor. This kernel-specific
/// threshold is 4× higher; the sequential path is bitwise identical, so
/// flipping it never changes results, only where the time goes.
pub const KERNEL_INLINE_WORK: usize = 1 << 21;

/// The executor the GCN kernels dispatch to for a region of `work`
/// multiply-accumulates: inline below [`KERNEL_INLINE_WORK`], the global
/// executor (itself floor-gated) above.
pub(crate) fn exec_for(work: usize) -> tiara_par::Executor {
    if work < KERNEL_INLINE_WORK {
        Executor::sequential()
    } else {
        tiara_par::global().for_work(work)
    }
}

/// Borrowed backing storage: a range of an [`F32Source`] (e.g. mapped
/// container bytes). Cloning clones the `Arc`, not the elements.
#[derive(Clone)]
struct Shared {
    src: Arc<dyn F32Source>,
    start: usize,
    len: usize,
}

impl Shared {
    fn as_slice(&self) -> &[f32] {
        &self.src.f32s()[self.start..self.start + self.len]
    }
}

/// A dense row-major matrix of `f32`.
///
/// Storage is either owned (`Vec<f32>`) or borrowed zero-copy from a shared
/// [`F32Source`] (mapped container bytes); reads are uniform through
/// [`Matrix::as_slice`], and the first mutation of a borrowed matrix
/// materializes an owned copy.
///
/// # Examples
///
/// ```
/// use tiara_gnn::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::eye(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Clone, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
    /// When set, elements live in the shared source and `data` is empty;
    /// any mutation first copies them out (copy-on-write). Skipped by
    /// serde: JSON bundles always carry owned `data`.
    #[serde(skip)]
    shared: Option<Shared>,
}

impl std::fmt::Debug for Matrix {
    // Renders the *logical* contents (identical for owned and shared
    // storage), in the exact shape the former derived impl produced.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Matrix")
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .field("data", &self.as_slice())
            .finish()
    }
}

impl PartialEq for Matrix {
    fn eq(&self, other: &Matrix) -> bool {
        self.rows == other.rows && self.cols == other.cols && self.as_slice() == other.as_slice()
    }
}

impl Default for Matrix {
    /// The empty `0×0` matrix (a workspace placeholder; any `*_into` kernel
    /// resizes it in place).
    fn default() -> Matrix {
        Matrix::zeros(0, 0)
    }
}

impl Matrix {
    /// An all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix { rows, cols, data: vec![0.0; rows * cols], shared: None }
    }

    /// The identity matrix.
    pub fn eye(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Matrix {
        let r = rows.len();
        let c = rows.first().map_or(0, |x| x.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix { rows: r, cols: c, data, shared: None }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Matrix { rows, cols, data, shared: None }
    }

    /// Xavier/Glorot-uniform initialization.
    pub fn xavier(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
        let bound = (6.0f32 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols).map(|_| rng.random_range(-bound..bound)).collect();
        Matrix { rows, cols, data, shared: None }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// A matrix borrowing `rows * cols` elements zero-copy from a shared
    /// source, starting at element `start` of [`F32Source::f32s`].
    ///
    /// # Panics
    ///
    /// Panics if the range does not fit in the source.
    pub fn from_shared(rows: usize, cols: usize, src: Arc<dyn F32Source>, start: usize) -> Matrix {
        let len = rows * cols;
        assert!(
            start.checked_add(len).is_some_and(|end| end <= src.f32s().len()),
            "shared range out of bounds"
        );
        Matrix { rows, cols, data: Vec::new(), shared: Some(Shared { src, start, len }) }
    }

    /// Returns `true` while the elements are still borrowed from a shared
    /// source (no owned copy has been made).
    pub fn is_shared(&self) -> bool {
        self.shared.is_some()
    }

    /// Bytes borrowed from a shared source (0 once owned) — the
    /// "reused-bytes" stat the zero-copy acceptance check reads.
    pub fn shared_bytes(&self) -> usize {
        self.shared.as_ref().map_or(0, |s| s.len * std::mem::size_of::<f32>())
    }

    /// Copies borrowed elements into owned storage; a no-op when already
    /// owned. Every mutating accessor calls this first (copy-on-write).
    pub fn materialize(&mut self) {
        if let Some(s) = self.shared.take() {
            self.data.clear();
            self.data.extend_from_slice(s.as_slice());
        }
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.as_slice()[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        let i = r * self.cols + c;
        self.materialize();
        self.data[i] = v;
    }

    /// A view of one row.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.as_slice()[r * self.cols..(r + 1) * self.cols]
    }

    /// A mutable view of one row.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        let range = r * self.cols..(r + 1) * self.cols;
        self.materialize();
        &mut self.data[range]
    }

    /// The flat data slice.
    pub fn as_slice(&self) -> &[f32] {
        match &self.shared {
            Some(s) => s.as_slice(),
            None => &self.data,
        }
    }

    /// The flat mutable data slice (materializes borrowed storage).
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        self.materialize();
        &mut self.data
    }

    /// Allocated element capacity of the backing buffer (workspace-reuse
    /// accounting aid: a [`Matrix::reset`] within capacity allocates
    /// nothing).
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Reshapes to `rows × cols` with every element zeroed, reusing the
    /// backing allocation when capacity allows. Drops any shared borrow —
    /// the result is always owned.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.shared = None;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Matrix product `self @ other`, cache-blocked and parallelized over
    /// output-row blocks on the global executor (regions below
    /// [`KERNEL_INLINE_WORK`] multiply-accumulates run inline on the calling
    /// thread).
    ///
    /// Each output row is reduced by exactly one thread with the inner
    /// dimension walked in ascending order, so the result is bitwise
    /// identical at any thread count.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let work = self.rows * self.cols * other.cols;
        self.matmul_with(other, &exec_for(work))
    }

    /// [`Matrix::matmul`] writing into a caller-owned output matrix (resized
    /// and zeroed in place, reusing its allocation), on the same
    /// executor-dispatch policy as [`Matrix::matmul`]. Bitwise identical to
    /// the allocating version.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        let work = self.rows * self.cols * other.cols;
        self.matmul_into_with(other, out, &exec_for(work));
    }

    fn matmul_into_with(&self, other: &Matrix, out: &mut Matrix, exec: &Executor) {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        out.reset(self.rows, other.cols);
        let n = other.cols.max(1);
        exec.par_blocks_mut(&mut out.data, BLOCK_ROWS * n, |off, block| {
            matmul_block(self, other, off / n, block);
        });
    }

    /// [`Matrix::matmul`] on an explicit executor, bypassing the size
    /// threshold.
    pub fn matmul_with(&self, other: &Matrix, exec: &Executor) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_into_with(other, &mut out, exec);
        out
    }

    /// `self @ other` into `out` with a per-output-row epilogue applied
    /// inside the same parallel region, while the freshly written block is
    /// still cache-hot (the fusion point of [`crate::fused`]).
    pub(crate) fn fused_matmul_post(
        &self,
        other: &Matrix,
        out: &mut Matrix,
        exec: &Executor,
        post: impl Fn(&mut [f32]) + Sync,
    ) {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        out.reset(self.rows, other.cols);
        let n = other.cols.max(1);
        exec.par_blocks_mut(&mut out.data, BLOCK_ROWS * n, |off, block| {
            matmul_block(self, other, off / n, block);
            if other.cols > 0 {
                for row in block.chunks_mut(other.cols) {
                    post(row);
                }
            }
        });
    }

    /// Matrix product `self^T @ other` without materializing the transpose.
    ///
    /// Parallelized over blocks of *output* rows (columns of `self`): every
    /// worker scans all rows of `self` but only gathers into its own output
    /// block, preserving the sequential accumulation order bit for bit.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        let work = self.rows * self.cols * other.cols;
        self.t_matmul_with(other, &exec_for(work))
    }

    /// [`Matrix::t_matmul`] writing into a caller-owned output matrix
    /// (allocation-reusing; bitwise identical to the allocating version).
    pub fn t_matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        let work = self.rows * self.cols * other.cols;
        self.t_matmul_into_with(other, out, &exec_for(work));
    }

    fn t_matmul_into_with(&self, other: &Matrix, out: &mut Matrix, exec: &Executor) {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        out.reset(self.cols, other.cols);
        let n = other.cols.max(1);
        exec.par_blocks_mut(&mut out.data, BLOCK_ROWS * n, |off, block| {
            t_matmul_block(self, other, off / n, block);
        });
    }

    /// [`Matrix::t_matmul`] on an explicit executor, bypassing the size
    /// threshold.
    pub fn t_matmul_with(&self, other: &Matrix, exec: &Executor) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.t_matmul_into_with(other, &mut out, exec);
        out
    }

    /// Matrix product `self @ other^T` without materializing the transpose.
    ///
    /// Each output element is an independent dot product, so row-block
    /// parallelism is trivially bitwise deterministic.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        let work = self.rows * other.rows * self.cols;
        self.matmul_t_with(other, &exec_for(work))
    }

    /// [`Matrix::matmul_t`] writing into a caller-owned output matrix
    /// (allocation-reusing; bitwise identical to the allocating version).
    pub fn matmul_t_into(&self, other: &Matrix, out: &mut Matrix) {
        let work = self.rows * other.rows * self.cols;
        self.matmul_t_into_with(other, out, &exec_for(work));
    }

    fn matmul_t_into_with(&self, other: &Matrix, out: &mut Matrix, exec: &Executor) {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        out.reset(self.rows, other.rows);
        let n = other.rows.max(1);
        exec.par_blocks_mut(&mut out.data, BLOCK_ROWS * n, |off, block| {
            matmul_t_block(self, other, off / n, block);
        });
    }

    /// [`Matrix::matmul_t`] on an explicit executor, bypassing the size
    /// threshold.
    pub fn matmul_t_with(&self, other: &Matrix, exec: &Executor) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_t_into_with(other, &mut out, exec);
        out
    }

    /// Adds `other` element-wise, in place.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "add shape mismatch");
        self.materialize();
        for (a, b) in self.data.iter_mut().zip(other.as_slice()) {
            *a += b;
        }
    }

    /// Scales every element, in place.
    pub fn scale(&mut self, s: f32) {
        self.materialize();
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Element-wise ReLU.
    pub fn relu(&self) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.as_slice().iter().map(|&x| x.max(0.0)).collect(),
            shared: None,
        }
    }

    /// The Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.as_slice().iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Index of the maximum element in a row (see [`argmax_slice`]).
    pub fn argmax_row(&self, r: usize) -> usize {
        argmax_slice(self.row(r))
    }
}

/// Index of the maximum element of a slice.
///
/// NaN entries are skipped entirely, so the result is deterministic
/// regardless of where NaNs appear. Ties keep the *first* (lowest) index of
/// the maximum. An empty or all-NaN slice yields 0. This is the one argmax
/// used everywhere a class label is read off a probability row, so every
/// consumer breaks ties identically.
pub fn argmax_slice(xs: &[f32]) -> usize {
    let mut best: Option<(usize, f32)> = None;
    for (i, &x) in xs.iter().enumerate() {
        if x.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if x <= bv => {}
            _ => best = Some((i, x)),
        }
    }
    best.map_or(0, |(i, _)| i)
}

/// Blocked `A @ B` over output rows `row_off..row_off + block.len() / B.cols`.
///
/// The `k` dimension is tiled so `TILE_K` rows of `B` stay cache-hot across
/// the whole row block; tiles ascend, so each `out[i][j]` accumulates its
/// terms in exactly the order of the plain ikj loop.
// `k` indexes both `a_row` and `b.row(k)`; an enumerate-skip-take chain
// would obscure the tiling bounds.
#[allow(clippy::needless_range_loop)]
fn matmul_block(a: &Matrix, b: &Matrix, row_off: usize, block: &mut [f32]) {
    let n = b.cols;
    if n == 0 || block.is_empty() {
        return;
    }
    let rows = block.len() / n;
    for kt in (0..a.cols).step_by(TILE_K) {
        let kend = (kt + TILE_K).min(a.cols);
        for bi in 0..rows {
            let a_row = a.row(row_off + bi);
            let o_row = &mut block[bi * n..(bi + 1) * n];
            for k in kt..kend {
                let aik = a_row[k];
                if aik == 0.0 {
                    continue;
                }
                for (o, &bkj) in o_row.iter_mut().zip(b.row(k)) {
                    *o += aik * bkj;
                }
            }
        }
    }
}

/// Blocked `A^T @ B` over output rows `col_off..col_off + block.len() / B.cols`
/// (output rows are columns of `A`). Gathers instead of scattering: the `r`
/// scan order matches the sequential kernel, so accumulation order per output
/// element is unchanged.
fn t_matmul_block(a: &Matrix, b: &Matrix, col_off: usize, block: &mut [f32]) {
    let n = b.cols;
    if n == 0 || block.is_empty() {
        return;
    }
    let out_rows = block.len() / n;
    for r in 0..a.rows {
        let a_row = a.row(r);
        let b_row = b.row(r);
        for bi in 0..out_rows {
            let ari = a_row[col_off + bi];
            if ari == 0.0 {
                continue;
            }
            let o_row = &mut block[bi * n..(bi + 1) * n];
            for (o, &brj) in o_row.iter_mut().zip(b_row) {
                *o += ari * brj;
            }
        }
    }
}

/// Blocked `A @ B^T` over output rows `row_off..row_off + block.len() / B.rows`.
/// Pure dot products; no cross-thread accumulation at all.
fn matmul_t_block(a: &Matrix, b: &Matrix, row_off: usize, block: &mut [f32]) {
    let n = b.rows;
    if n == 0 || block.is_empty() {
        return;
    }
    let rows = block.len() / n;
    for bi in 0..rows {
        let a_row = a.row(row_off + bi);
        for j in 0..n {
            let b_row = b.row(j);
            let mut acc = 0.0f32;
            for k in 0..a.cols {
                acc += a_row[k] * b_row[k];
            }
            block[bi * n + j] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn transposed_products_agree_with_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = Matrix::xavier(4, 3, &mut rng);
        let b = Matrix::xavier(4, 5, &mut rng);
        // a^T @ b via t_matmul vs. manual.
        let t = a.t_matmul(&b);
        for i in 0..3 {
            for j in 0..5 {
                let manual: f32 = (0..4).map(|k| a.get(k, i) * b.get(k, j)).sum();
                assert!((t.get(i, j) - manual).abs() < 1e-5);
            }
        }
        let c = Matrix::xavier(6, 3, &mut rng);
        let d = Matrix::xavier(7, 3, &mut rng);
        let p = c.matmul_t(&d);
        for i in 0..6 {
            for j in 0..7 {
                let manual: f32 = (0..3).map(|k| c.get(i, k) * d.get(j, k)).sum();
                assert!((p.get(i, j) - manual).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn relu_and_argmax() {
        let a = Matrix::from_rows(&[&[-1.0, 2.0, 0.5]]);
        assert_eq!(a.relu(), Matrix::from_rows(&[&[0.0, 2.0, 0.5]]));
        assert_eq!(a.argmax_row(0), 1);
    }

    #[test]
    fn xavier_is_bounded_and_deterministic() {
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        let a = Matrix::xavier(10, 10, &mut r1);
        let b = Matrix::xavier(10, 10, &mut r2);
        assert_eq!(a, b);
        let bound = (6.0f32 / 20.0).sqrt();
        assert!(a.as_slice().iter().all(|&x| x.abs() <= bound));
        assert!(a.norm() > 0.0);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn parallel_kernels_are_bitwise_equal_to_sequential() {
        use tiara_par::Executor;
        let mut rng = StdRng::seed_from_u64(42);
        // Odd sizes straddling the 64-row block and 64-wide k-tile edges.
        let a = Matrix::xavier(131, 70, &mut rng);
        let b = Matrix::xavier(70, 9, &mut rng);
        let c = Matrix::xavier(131, 9, &mut rng);
        let seq = Executor::sequential();
        for par in [Executor::new(2), Executor::new(4), Executor::new(7)] {
            assert_eq!(a.matmul_with(&b, &seq), a.matmul_with(&b, &par));
            assert_eq!(a.t_matmul_with(&c, &seq), a.t_matmul_with(&c, &par));
            assert_eq!(c.matmul_t_with(&c, &seq), c.matmul_t_with(&c, &par));
        }
    }

    #[test]
    fn degenerate_shapes_multiply() {
        let exec = tiara_par::Executor::new(4);
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 5);
        assert_eq!(a.matmul_with(&b, &exec), Matrix::zeros(3, 5));
        let c = Matrix::zeros(3, 4);
        let d = Matrix::zeros(4, 0);
        assert_eq!(c.matmul_with(&d, &exec), Matrix::zeros(3, 0));
    }

    #[test]
    fn into_variants_match_allocating_versions_and_reuse_capacity() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = Matrix::xavier(37, 19, &mut rng);
        let b = Matrix::xavier(19, 8, &mut rng);
        let c = Matrix::xavier(37, 8, &mut rng);
        // Seed the output with stale large contents so reuse is exercised.
        let mut out = Matrix::zeros(64, 64);
        let cap = out.capacity();
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
        assert_eq!(out.capacity(), cap, "matmul_into reallocated");
        a.t_matmul_into(&c, &mut out);
        assert_eq!(out, a.t_matmul(&c));
        c.matmul_t_into(&c, &mut out);
        assert_eq!(out, c.matmul_t(&c));
        assert_eq!(out.capacity(), cap, "in-place products must reuse the buffer");
    }

    #[test]
    fn reset_zeroes_and_reshapes_in_place() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let cap = m.capacity();
        m.reset(1, 3);
        assert_eq!((m.rows(), m.cols()), (1, 3));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
        assert_eq!(m.capacity(), cap);
    }

    #[test]
    fn argmax_skips_nan_and_keeps_first_max() {
        let a = Matrix::from_rows(&[
            &[f32::NAN, 2.0, 1.0],
            &[1.0, f32::NAN, 3.0],
            &[f32::NAN, f32::NAN, f32::NAN],
            &[2.0, 2.0, 1.0],
        ]);
        assert_eq!(a.argmax_row(0), 1);
        assert_eq!(a.argmax_row(1), 2);
        assert_eq!(a.argmax_row(2), 0, "all-NaN row falls back to 0");
        assert_eq!(a.argmax_row(3), 0, "ties keep the first index");
    }

    #[test]
    fn shared_matrices_read_zero_copy_and_copy_on_write() {
        let src: Arc<dyn F32Source> = Arc::new(vec![0.0f32, 1.0, 2.0, 3.0, 4.0, 5.0]);
        let m = Matrix::from_shared(2, 2, Arc::clone(&src), 1);
        assert!(m.is_shared());
        assert_eq!(m.shared_bytes(), 16);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m, Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]), "logical equality");
        assert_eq!(m.as_slice().as_ptr(), src.f32s()[1..].as_ptr(), "no copy on read");
        let clone = m.clone();
        assert!(clone.is_shared(), "clones keep borrowing");
        assert_eq!(m.matmul(&Matrix::eye(2)), m, "kernels read borrowed storage");
        let mut w = m.clone();
        w.set(0, 0, 9.0);
        assert!(!w.is_shared(), "first write materializes");
        assert_eq!(w.get(0, 0), 9.0);
        assert_eq!(m.get(0, 0), 1.0, "source and sibling views unchanged");
        let mut z = m.clone();
        z.reset(1, 1);
        assert!(!z.is_shared(), "reset always yields owned storage");
    }

    #[test]
    #[should_panic(expected = "shared range out of bounds")]
    fn oversized_shared_range_panics() {
        let src: Arc<dyn F32Source> = Arc::new(vec![0.0f32; 3]);
        let _ = Matrix::from_shared(2, 2, src, 0);
    }
}
