//! A bag-of-instructions MLP baseline: mean-pools the node features of a
//! graph (discarding all edges) and classifies with a two-layer perceptron.
//!
//! This is the natural "no graph structure" ablation of the paper's GCN:
//! identical features, identical optimizer and loss, but the slice CFG's
//! topology is thrown away. The gap between the two quantifies how much the
//! classifier actually uses the control-flow structure.

use crate::adam::Adam;
use crate::gcn::{EpochStats, GraphSample};
use crate::matrix::Matrix;
use crate::tape::{ParamId, Tape};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Hyper-parameters of the MLP baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpConfig {
    /// Input feature dimension.
    pub input_dim: usize,
    /// Hidden width of the two dense layers.
    pub hidden_dim: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> MlpConfig {
        MlpConfig {
            input_dim: 42,
            hidden_dim: 64,
            num_classes: 4,
            learning_rate: 1e-3,
            epochs: 300,
            batch_size: 32,
            seed: 0x0A11,
        }
    }
}

/// The MLP baseline model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    config: MlpConfig,
    w1: Matrix,
    w2: Matrix,
    head: Matrix,
}

impl Mlp {
    /// Initializes an untrained model.
    pub fn new(config: MlpConfig) -> Mlp {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let w1 = Matrix::xavier(config.input_dim, config.hidden_dim, &mut rng);
        let w2 = Matrix::xavier(config.hidden_dim, config.hidden_dim, &mut rng);
        let head = Matrix::xavier(config.hidden_dim, config.num_classes, &mut rng);
        Mlp { config, w1, w2, head }
    }

    /// Rebuilds a trained model from its weights (container loading; the
    /// matrices may borrow mapped bytes zero-copy).
    ///
    /// # Panics
    ///
    /// Panics if a weight shape does not match the configuration.
    pub fn from_parts(config: MlpConfig, w1: Matrix, w2: Matrix, head: Matrix) -> Mlp {
        assert_eq!((w1.rows(), w1.cols()), (config.input_dim, config.hidden_dim), "w1 shape");
        assert_eq!((w2.rows(), w2.cols()), (config.hidden_dim, config.hidden_dim), "w2 shape");
        assert_eq!((head.rows(), head.cols()), (config.hidden_dim, config.num_classes), "head");
        Mlp { config, w1, w2, head }
    }

    /// The weight matrices `(w1, w2, head)`.
    pub fn weights(&self) -> (&Matrix, &Matrix, &Matrix) {
        (&self.w1, &self.w2, &self.head)
    }

    /// Total bytes the weights borrow zero-copy from mapped storage
    /// (0 for a fully owned model).
    pub fn mapped_weight_bytes(&self) -> usize {
        self.w1.shared_bytes() + self.w2.shared_bytes() + self.head.shared_bytes()
    }

    /// Copies any borrowed weights into owned storage (see
    /// [`crate::Gcn::materialize_weights`]).
    pub fn materialize_weights(&mut self) {
        self.w1.materialize();
        self.w2.materialize();
        self.head.materialize();
    }

    /// The configuration.
    pub fn config(&self) -> &MlpConfig {
        &self.config
    }

    /// Mean-pools each graph's node features into one row per graph.
    fn pool(&self, batch: &[&GraphSample]) -> Matrix {
        let mut pooled = Matrix::zeros(batch.len(), self.config.input_dim);
        for (g, sample) in batch.iter().enumerate() {
            let n = sample.num_nodes().max(1);
            let row = pooled.row_mut(g);
            for r in 0..sample.num_nodes() {
                for (d, s) in row.iter_mut().zip(sample.features.row(r)) {
                    *d += s;
                }
            }
            for d in row.iter_mut() {
                *d /= n as f32;
            }
        }
        pooled
    }

    fn forward(&self, tape: &mut Tape, batch: &[&GraphSample]) -> crate::tape::Var {
        let x = tape.input(self.pool(batch));
        let w1 = tape.param(ParamId(0), self.w1.clone());
        let w2 = tape.param(ParamId(1), self.w2.clone());
        let head = tape.param(ParamId(2), self.head.clone());
        let h = tape.matmul(x, w1);
        let h = tape.relu(h);
        let h = tape.matmul(h, w2);
        let h = tape.relu(h);
        tape.matmul(h, head)
    }

    /// Trains on the samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or feature widths mismatch the config.
    pub fn train(&mut self, samples: &[GraphSample]) -> Vec<EpochStats> {
        assert!(!samples.is_empty(), "no training samples");
        for s in samples {
            assert_eq!(s.features.cols(), self.config.input_dim, "feature width mismatch");
        }
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0xADA);
        let mut opt = Adam::new(self.config.learning_rate);
        let mut order: Vec<usize> = (0..samples.len()).collect();
        let mut stats = Vec::with_capacity(self.config.epochs);
        for epoch in 0..self.config.epochs {
            order.shuffle(&mut rng);
            let mut loss_sum = 0.0f64;
            let mut correct = 0usize;
            for chunk in order.chunks(self.config.batch_size) {
                let batch: Vec<&GraphSample> = chunk.iter().map(|&i| &samples[i]).collect();
                let labels: Arc<Vec<u32>> = Arc::new(batch.iter().map(|g| g.label).collect());
                let mut tape = Tape::new();
                let logits = self.forward(&mut tape, &batch);
                let loss = tape.softmax_cross_entropy(logits, labels.clone());
                loss_sum += f64::from(tape.value(loss).get(0, 0)) * batch.len() as f64;
                let probs = tape.softmax(logits);
                for (r, &y) in labels.iter().enumerate() {
                    if probs.argmax_row(r) == y as usize {
                        correct += 1;
                    }
                }
                let grads = tape.backward(loss);
                opt.step(
                    &mut [
                        (ParamId(0), &mut self.w1),
                        (ParamId(1), &mut self.w2),
                        (ParamId(2), &mut self.head),
                    ],
                    &grads,
                );
            }
            stats.push(EpochStats {
                epoch,
                loss: (loss_sum / samples.len() as f64) as f32,
                accuracy: correct as f32 / samples.len() as f32,
            });
        }
        stats
    }

    /// Predicts the class of one graph.
    pub fn predict(&self, sample: &GraphSample) -> u32 {
        self.predict_batch(std::slice::from_ref(sample))[0]
    }

    /// Predicts the classes of a batch of graphs.
    pub fn predict_batch(&self, samples: &[GraphSample]) -> Vec<u32> {
        if samples.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(samples.len());
        for chunk in samples.chunks(self.config.batch_size.max(1)) {
            let batch: Vec<&GraphSample> = chunk.iter().collect();
            let mut tape = Tape::new();
            let logits = self.forward(&mut tape, &batch);
            let probs = tape.softmax(logits);
            for r in 0..batch.len() {
                out.push(probs.argmax_row(r) as u32);
            }
        }
        out
    }

    /// Class probabilities for one graph.
    pub fn predict_proba(&self, sample: &GraphSample) -> Vec<f32> {
        let mut tape = Tape::new();
        let logits = self.forward(&mut tape, &[sample]);
        tape.softmax(logits).row(0).to_vec()
    }

    /// Class probabilities for a batch of graphs, one forward pass per
    /// `batch_size` chunk. The forward kernels are row-local with fixed
    /// reduction orders, so row `i` is bitwise identical to
    /// `predict_proba(&samples[i])`.
    pub fn predict_proba_batch(&self, samples: &[GraphSample]) -> Vec<Vec<f32>> {
        let mut out = Vec::with_capacity(samples.len());
        for chunk in samples.chunks(self.config.batch_size.max(1)) {
            let batch: Vec<&GraphSample> = chunk.iter().collect();
            let mut tape = Tape::new();
            let logits = self.forward(&mut tape, &batch);
            let probs = tape.softmax(logits);
            for r in 0..batch.len() {
                out.push(probs.row(r).to_vec());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two classes separable by mean features alone.
    fn feature_separable(n: usize) -> Vec<GraphSample> {
        let mut out = Vec::new();
        for k in 0..n {
            let bump = (k % 3) as f32 * 0.05;
            let mut fa = Matrix::zeros(3, 4);
            for r in 0..3 {
                fa.set(r, 0, 1.0 + bump);
            }
            out.push(GraphSample::new(fa, &[(0, 1)], 0));
            let mut fb = Matrix::zeros(2, 4);
            for r in 0..2 {
                fb.set(r, 2, 1.0 + bump);
            }
            out.push(GraphSample::new(fb, &[], 1));
        }
        out
    }

    fn cfg(epochs: usize) -> MlpConfig {
        MlpConfig {
            input_dim: 4,
            hidden_dim: 8,
            num_classes: 2,
            learning_rate: 0.01,
            epochs,
            batch_size: 4,
            seed: 5,
        }
    }

    #[test]
    fn learns_feature_separable_classes() {
        let data = feature_separable(8);
        let mut mlp = Mlp::new(cfg(60));
        let stats = mlp.train(&data);
        assert!(stats.last().unwrap().accuracy > 0.95);
    }

    #[test]
    fn is_blind_to_graph_structure() {
        // Same mean features, different topology: the MLP cannot tell the
        // two classes apart even after training.
        let feats = || {
            let mut f = Matrix::zeros(3, 4);
            for r in 0..3 {
                f.set(r, 0, 1.0);
            }
            f
        };
        let mut data = Vec::new();
        for _ in 0..6 {
            data.push(GraphSample::new(feats(), &[(0, 1), (1, 2)], 0)); // chain
            data.push(GraphSample::new(feats(), &[(0, 1), (0, 2)], 1)); // star
        }
        let mut mlp = Mlp::new(cfg(60));
        let stats = mlp.train(&data);
        let acc = stats.last().unwrap().accuracy;
        assert!((acc - 0.5).abs() < 0.17, "an edge-blind model must hover at chance, got {acc}");
    }

    #[test]
    fn probabilities_sum_to_one() {
        let data = feature_separable(1);
        let mlp = Mlp::new(cfg(1));
        let p = mlp.predict_proba(&data[0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!(mlp.predict(&data[0]) < 2);
    }

    #[test]
    fn serde_round_trip() {
        let data = feature_separable(2);
        let mut mlp = Mlp::new(cfg(3));
        mlp.train(&data);
        let Ok(json) = serde_json::to_string(&mlp) else {
            return; // serde stubbed out (offline build); covered in CI
        };
        let Ok(back) = serde_json::from_str::<Mlp>(&json) else {
            return; // serde stubbed out (offline build); covered in CI
        };
        assert_eq!(mlp.predict_batch(&data), back.predict_batch(&data));
    }

    #[test]
    fn from_parts_rebuilds_an_identical_model() {
        let data = feature_separable(2);
        let mut mlp = Mlp::new(cfg(3));
        mlp.train(&data);
        let (w1, w2, head) = mlp.weights();
        let back = Mlp::from_parts(mlp.config().clone(), w1.clone(), w2.clone(), head.clone());
        assert_eq!(mlp.predict_batch(&data), back.predict_batch(&data));
        assert_eq!(mlp.mapped_weight_bytes(), 0, "trained weights are owned");
    }
}
