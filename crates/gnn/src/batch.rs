//! The batched block-diagonal training engine: the GCN hot loop without the
//! tape.
//!
//! One minibatch of graphs becomes *one* block-diagonal adjacency
//! ([`Csr::block_diag_into`]) over a vertically stacked feature matrix, so an
//! epoch is a handful of large `spmm` / fused `matmul+ReLU` / `segment_sum`
//! calls instead of hundreds of small tape nodes. All buffers live in a
//! [`Workspace`] arena reused across batches and epochs — after the first
//! (largest) batch of the first epoch, steady-state training allocates
//! nothing, which the [`TrainStats::bytes_reused`] counter makes observable.
//!
//! **Determinism / digest-identity argument.** The engine reuses the exact
//! kernels of the tape path (`matmul_block`, `spmm_rows`, the shared
//! softmax+CE of [`crate::fused`]), composed in the same order the tape
//! replays them, over the same batch composition (the seeded shuffle is
//! taken identically). Block-diagonal stacking of per-sample normalized
//! adjacencies equals the tape's `mean_pool_adjacency` over the
//! offset-merged edge list entry for entry: blocks are disjoint, per-node
//! predecessor sets are sorted/deduped per sample, and the `1/|N∪{v}|`
//! weights are computed from the same counts. Hence a model trained here is
//! bitwise identical to one trained in
//! [`reference mode`](crate::GcnConfig::reference_mode) — a property pinned
//! by the differential suite rather than assumed.

use crate::csr::Csr;
use crate::fused::{matmul_bias_relu_into, relu_backward_mask};
use crate::gcn::{Aggregation, GraphSample};
use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Performance counters of one training run, the training-side sibling of
/// the slicer's `SliceStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TrainStats {
    /// Seconds spent in batch packing + the forward pass.
    pub forward_secs: f64,
    /// Seconds spent in the backward pass.
    pub backward_secs: f64,
    /// Seconds spent in the optimizer step.
    pub optimizer_secs: f64,
    /// Minibatches processed (across all epochs).
    pub batches: u64,
    /// Fused-kernel invocations (matmul+ReLU forward, ReLU backward mask,
    /// fused softmax+CE loss/grad).
    pub fused_kernel_calls: u64,
    /// Workspace bytes served from an already-allocated buffer instead of a
    /// fresh allocation. Grows every batch once the arena has warmed up.
    pub bytes_reused: u64,
}

impl TrainStats {
    /// Merges counters from another run (summing).
    pub fn merge(&mut self, other: &TrainStats) {
        self.forward_secs += other.forward_secs;
        self.backward_secs += other.backward_secs;
        self.optimizer_secs += other.optimizer_secs;
        self.batches += other.batches;
        self.fused_kernel_calls += other.fused_kernel_calls;
        self.bytes_reused += other.bytes_reused;
    }
}

/// The per-sample normalized adjacency under the model's aggregation — the
/// cacheable unit of the batched path. Bitwise equal to the block the tape
/// path would have produced for this sample inside any batch.
pub(crate) fn sample_adjacency(s: &GraphSample, agg: Aggregation) -> Csr {
    match agg {
        Aggregation::Mean => Csr::mean_pool_adjacency(s.num_nodes(), &s.edges),
        Aggregation::Sum => Csr::sum_adjacency(s.num_nodes(), &s.edges),
    }
}

/// The reusable buffer arena of the batched engine. Everything the forward
/// and backward passes write lives here; buffers are resized in place and
/// their backing allocations persist across batches and epochs.
#[derive(Debug, Default)]
pub(crate) struct Workspace {
    /// Block-diagonal batch adjacency.
    adj: Csr,
    /// Transpose cache for the parallel backward `t_spmm`.
    adj_t: Csr,
    /// Vertically stacked node features of the batch.
    feats: Matrix,
    /// Graph id per stacked node row.
    segments: Vec<u32>,
    /// Label per graph of the batch.
    pub(crate) labels: Vec<u32>,
    /// Per-layer aggregated inputs `Â h` (kept for the backward pass).
    aggs: Vec<Matrix>,
    /// Per-layer activations `ReLU(Â h W)` (kept for the ReLU mask).
    acts: Vec<Matrix>,
    /// Sum-pooled graph representations.
    hg: Matrix,
    /// Head logits.
    pub(crate) logits: Matrix,
    /// Softmax probabilities; the backward pass turns them into the logits
    /// gradient in place.
    pub(crate) probs: Matrix,
    /// Gradient w.r.t. the pooled representations.
    d_hg: Matrix,
    /// Gradient w.r.t. per-node activations (ping-ponged across layers).
    d_act: Matrix,
    /// Gradient w.r.t. per-node aggregated inputs.
    d_agg: Matrix,
    /// Parameter gradients, indexed by `ParamId` order (convs then head).
    pub(crate) grads: Vec<Matrix>,
    /// Fused-kernel call counter.
    pub(crate) fused_calls: u64,
    /// Reused-byte counter (see [`TrainStats::bytes_reused`]).
    pub(crate) bytes_reused: u64,
}

/// Counts a matrix resize that will be served from existing capacity.
fn count_mat_reuse(counter: &mut u64, m: &Matrix, rows: usize, cols: usize) {
    if m.capacity() >= rows * cols {
        *counter += (rows * cols * 4) as u64;
    }
}

/// Counts a `Vec<u32>` resize served from existing capacity.
fn count_vec_reuse(counter: &mut u64, cap: usize, need: usize) {
    if cap >= need {
        *counter += (need * 4) as u64;
    }
}

impl Workspace {
    /// Packs a batch: stacks features, builds segment ids and labels, and
    /// assembles the block-diagonal adjacency from the per-sample cache.
    pub(crate) fn pack(&mut self, batch: &[&GraphSample], adjs: &[&Csr], input_dim: usize) {
        let total_nodes: usize = batch.iter().map(|g| g.num_nodes()).sum();
        count_mat_reuse(&mut self.bytes_reused, &self.feats, total_nodes, input_dim);
        count_vec_reuse(&mut self.bytes_reused, self.segments.capacity(), total_nodes);
        count_vec_reuse(&mut self.bytes_reused, self.labels.capacity(), batch.len());
        self.feats.reset(total_nodes, input_dim);
        self.segments.clear();
        self.labels.clear();
        let mut row = 0usize;
        for (gi, g) in batch.iter().enumerate() {
            self.labels.push(g.label);
            for r in 0..g.num_nodes() {
                self.feats.row_mut(row).copy_from_slice(g.features.row(r));
                self.segments.push(gi as u32);
                row += 1;
            }
        }
        self.bytes_reused += Csr::block_diag_into(adjs, &mut self.adj) as u64;
    }

    /// The forward pass over the packed batch: per layer
    /// `h ← ReLU(Â h W)` (fused), then the segment-sum readout and the
    /// linear head into [`Workspace::logits`].
    pub(crate) fn forward(&mut self, convs: &[Matrix], head: &Matrix, num_graphs: usize) {
        let hidden = convs.last().map_or(0, Matrix::cols);
        if self.aggs.len() != convs.len() {
            self.aggs.resize_with(convs.len(), || Matrix::zeros(0, 0));
            self.acts.resize_with(convs.len(), || Matrix::zeros(0, 0));
        }
        let Workspace {
            adj,
            feats,
            segments,
            aggs,
            acts,
            hg,
            logits,
            fused_calls,
            bytes_reused,
            ..
        } = self;
        let n = feats.rows();
        for (k, w) in convs.iter().enumerate() {
            let h: &Matrix = if k == 0 { feats } else { &acts[k - 1] };
            count_mat_reuse(bytes_reused, &aggs[k], n, h.cols());
            adj.spmm_into(h, &mut aggs[k]);
            count_mat_reuse(bytes_reused, &acts[k], n, w.cols());
            matmul_bias_relu_into(&aggs[k], w, None, &mut acts[k]);
            *fused_calls += 1;
        }
        count_mat_reuse(bytes_reused, hg, num_graphs, hidden);
        hg.reset(num_graphs, hidden);
        let last = acts.last().expect("at least one layer");
        for (r, &g) in segments.iter().enumerate() {
            let src = last.row(r);
            let dst = hg.row_mut(g as usize);
            for (d, s) in dst.iter_mut().zip(src) {
                *d += s;
            }
        }
        count_mat_reuse(bytes_reused, logits, num_graphs, head.cols());
        hg.matmul_into(head, logits);
    }

    /// The backward pass. Expects [`Workspace::probs`] to already hold the
    /// logits gradient (see [`crate::fused::softmax_ce_grad_into`]); fills
    /// [`Workspace::grads`] with the parameter gradients in `ParamId` order.
    ///
    /// Mirrors the tape replay step for step, skipping only the gradients
    /// the tape computes for the (constant) input features.
    pub(crate) fn backward(&mut self, convs: &[Matrix], head: &Matrix) {
        let n_params = convs.len() + 1;
        if self.grads.len() != n_params {
            self.grads.resize_with(n_params, || Matrix::zeros(0, 0));
        }
        let Workspace {
            adj,
            adj_t,
            feats,
            segments,
            aggs,
            acts,
            hg,
            probs,
            d_hg,
            d_act,
            d_agg,
            grads,
            fused_calls,
            bytes_reused,
            ..
        } = self;
        let n = feats.rows();
        // Head: d_head = hg^T @ d_logits, d_hg = d_logits @ head^T.
        count_mat_reuse(bytes_reused, &grads[convs.len()], head.rows(), head.cols());
        hg.t_matmul_into(probs, &mut grads[convs.len()]);
        count_mat_reuse(bytes_reused, d_hg, hg.rows(), head.rows());
        probs.matmul_t_into(head, d_hg);
        // Segment-sum backward: broadcast each graph's gradient row to its
        // node rows.
        count_mat_reuse(bytes_reused, d_act, n, d_hg.cols());
        d_act.reset(n, d_hg.cols());
        for (r, &g) in segments.iter().enumerate() {
            d_act.row_mut(r).copy_from_slice(d_hg.row(g as usize));
        }
        for k in (0..convs.len()).rev() {
            relu_backward_mask(&acts[k], d_act);
            *fused_calls += 1;
            count_mat_reuse(bytes_reused, &grads[k], convs[k].rows(), convs[k].cols());
            aggs[k].t_matmul_into(d_act, &mut grads[k]);
            if k > 0 {
                count_mat_reuse(bytes_reused, d_agg, n, convs[k].rows());
                d_act.matmul_t_into(&convs[k], d_agg);
                count_mat_reuse(bytes_reused, d_act, n, convs[k].rows());
                adj.t_spmm_into(d_agg, d_act, adj_t);
            }
        }
    }
}
