//! Compressed sparse row matrices for graph adjacency.
//!
//! The GCN aggregation of eq. (4) multiplies node features by the normalized
//! predecessor adjacency `Â`, where row `v` holds `1 / |N(v) ∪ {v}|` at the
//! columns of `v`'s predecessors and of `v` itself.

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// A sparse matrix in CSR form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Csr {
    rows: usize,
    cols: usize,
    indptr: Vec<u32>,
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl Csr {
    /// Builds a CSR matrix from `(row, col, value)` triplets.
    ///
    /// Duplicate coordinates are summed.
    ///
    /// # Panics
    ///
    /// Panics if a coordinate is out of bounds.
    pub fn from_triplets(rows: usize, cols: usize, mut triplets: Vec<(u32, u32, f32)>) -> Csr {
        for &(r, c, _) in &triplets {
            assert!((r as usize) < rows && (c as usize) < cols, "triplet out of bounds");
        }
        triplets.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices: Vec<u32> = Vec::with_capacity(triplets.len());
        let mut values: Vec<f32> = Vec::with_capacity(triplets.len());
        indptr.push(0u32);
        let mut cur_row = 0usize;
        for (r, c, v) in triplets {
            while cur_row < r as usize {
                indptr.push(indices.len() as u32);
                cur_row += 1;
            }
            if indices.len() > *indptr.last().expect("nonempty") as usize
                && indices.last() == Some(&c)
            {
                // Duplicate coordinate within the current row: accumulate.
                *values.last_mut().expect("values nonempty") += v;
            } else {
                indices.push(c);
                values.push(v);
            }
        }
        while cur_row < rows {
            indptr.push(indices.len() as u32);
            cur_row += 1;
        }
        Csr { rows, cols, indptr, indices, values }
    }

    /// The normalized predecessor adjacency `Â` of eq. (4): entry `(v, u)`
    /// is `1 / |N(v) ∪ {v}|` for each predecessor `u` of `v` plus `v`
    /// itself (mean pooling over the in-neighborhood).
    pub fn mean_pool_adjacency(n: usize, edges: &[(u32, u32)]) -> Csr {
        let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(u, v) in edges {
            assert!((u as usize) < n && (v as usize) < n, "edge out of bounds");
            preds[v as usize].push(u);
        }
        let mut indptr = Vec::with_capacity(n + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0u32);
        for (v, p) in preds.iter_mut().enumerate() {
            p.push(v as u32); // self loop
            p.sort_unstable();
            p.dedup();
            let w = 1.0 / p.len() as f32;
            for &u in p.iter() {
                indices.push(u);
                values.push(w);
            }
            indptr.push(indices.len() as u32);
        }
        Csr { rows: n, cols: n, indptr, indices, values }
    }

    /// The unnormalized predecessor adjacency with self-loops: entry
    /// `(v, u)` is 1 for each `u ∈ N(v) ∪ {v}` (GIN-style sum pooling).
    pub fn sum_adjacency(n: usize, edges: &[(u32, u32)]) -> Csr {
        let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(u, v) in edges {
            assert!((u as usize) < n && (v as usize) < n, "edge out of bounds");
            preds[v as usize].push(u);
        }
        let mut indptr = Vec::with_capacity(n + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0u32);
        for (v, p) in preds.iter_mut().enumerate() {
            p.push(v as u32);
            p.sort_unstable();
            p.dedup();
            for &u in p.iter() {
                indices.push(u);
                values.push(1.0);
            }
            indptr.push(indices.len() as u32);
        }
        Csr { rows: n, cols: n, indptr, indices, values }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Sparse × dense product `self @ dense`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn spmm(&self, dense: &Matrix) -> Matrix {
        assert_eq!(self.cols, dense.rows(), "spmm shape mismatch");
        let mut out = Matrix::zeros(self.rows, dense.cols());
        for r in 0..self.rows {
            let lo = self.indptr[r] as usize;
            let hi = self.indptr[r + 1] as usize;
            for k in lo..hi {
                let c = self.indices[k] as usize;
                let w = self.values[k];
                let src = dense.row(c);
                let dst = out.row_mut(r);
                for (d, s) in dst.iter_mut().zip(src) {
                    *d += w * s;
                }
            }
        }
        out
    }

    /// Transposed sparse × dense product `self^T @ dense` (used by the
    /// backward pass) without materializing the transpose.
    pub fn t_spmm(&self, dense: &Matrix) -> Matrix {
        assert_eq!(self.rows, dense.rows(), "t_spmm shape mismatch");
        let mut out = Matrix::zeros(self.cols, dense.cols());
        for r in 0..self.rows {
            let lo = self.indptr[r] as usize;
            let hi = self.indptr[r + 1] as usize;
            let src = dense.row(r).to_vec();
            for k in lo..hi {
                let c = self.indices[k] as usize;
                let w = self.values[k];
                let dst = out.row_mut(c);
                for (d, s) in dst.iter_mut().zip(&src) {
                    *d += w * s;
                }
            }
        }
        out
    }

    /// The dense equivalent (testing aid).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for k in self.indptr[r] as usize..self.indptr[r + 1] as usize {
                m.set(r, self.indices[k] as usize, self.values[k]);
            }
        }
        m
    }

    /// Block-diagonal stacking of several CSR matrices (graph batching).
    pub fn block_diag(blocks: &[&Csr]) -> Csr {
        let rows: usize = blocks.iter().map(|b| b.rows).sum();
        let cols: usize = blocks.iter().map(|b| b.cols).sum();
        let nnz: usize = blocks.iter().map(|b| b.nnz()).sum();
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        indptr.push(0u32);
        let mut col_off = 0u32;
        for b in blocks {
            for r in 0..b.rows {
                for k in b.indptr[r] as usize..b.indptr[r + 1] as usize {
                    indices.push(b.indices[k] + col_off);
                    values.push(b.values[k]);
                }
                indptr.push(indices.len() as u32);
            }
            col_off += b.cols as u32;
        }
        Csr { rows, cols, indptr, indices, values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_pool_rows_sum_to_one() {
        // 0 -> 1 -> 2, 0 -> 2.
        let a = Csr::mean_pool_adjacency(3, &[(0, 1), (1, 2), (0, 2)]);
        let d = a.to_dense();
        for r in 0..3 {
            let sum: f32 = (0..3).map(|c| d.get(r, c)).sum();
            assert!((sum - 1.0).abs() < 1e-6, "row {r} sums to {sum}");
        }
        // Node 2 has preds {0, 1} plus itself: weight 1/3 each.
        assert!((d.get(2, 0) - 1.0 / 3.0).abs() < 1e-6);
        assert!((d.get(2, 2) - 1.0 / 3.0).abs() < 1e-6);
        // Node 0 has no preds: self loop only.
        assert!((d.get(0, 0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn duplicate_edges_do_not_double_count() {
        let a = Csr::mean_pool_adjacency(2, &[(0, 1), (0, 1)]);
        let d = a.to_dense();
        assert!((d.get(1, 0) - 0.5).abs() < 1e-6);
        assert!((d.get(1, 1) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn spmm_matches_dense() {
        let a = Csr::mean_pool_adjacency(3, &[(0, 1), (1, 2)]);
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[2.0, 2.0]]);
        let sparse = a.spmm(&x);
        let dense = a.to_dense().matmul(&x);
        for r in 0..3 {
            for c in 0..2 {
                assert!((sparse.get(r, c) - dense.get(r, c)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn t_spmm_matches_dense_transpose() {
        let a = Csr::mean_pool_adjacency(3, &[(0, 1), (1, 2), (0, 2)]);
        let g = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let t = a.t_spmm(&g);
        // Manual: A^T @ g.
        let ad = a.to_dense();
        for c in 0..3 {
            let manual: f32 = (0..3).map(|r| ad.get(r, c) * g.get(r, 0)).sum();
            assert!((t.get(c, 0) - manual).abs() < 1e-6);
        }
    }

    #[test]
    fn from_triplets_sums_duplicates_and_handles_empty_rows() {
        let c = Csr::from_triplets(4, 3, vec![(0, 2, 1.0), (2, 1, 2.0), (2, 1, 0.5), (3, 0, 4.0)]);
        let d = c.to_dense();
        assert_eq!(d.get(0, 2), 1.0);
        assert_eq!(d.get(2, 1), 2.5);
        assert_eq!(d.get(3, 0), 4.0);
        // Row 1 is empty.
        assert!((0..3).all(|j| d.get(1, j) == 0.0));
        assert_eq!(c.nnz(), 3);
    }

    #[test]
    fn block_diag_stacks() {
        let a = Csr::mean_pool_adjacency(2, &[(0, 1)]);
        let b = Csr::mean_pool_adjacency(1, &[]);
        let bd = Csr::block_diag(&[&a, &b]);
        assert_eq!(bd.rows(), 3);
        assert_eq!(bd.cols(), 3);
        let d = bd.to_dense();
        assert!((d.get(1, 0) - 0.5).abs() < 1e-6);
        assert!((d.get(2, 2) - 1.0).abs() < 1e-6);
        assert_eq!(d.get(2, 0), 0.0);
    }
}
