//! Compressed sparse row matrices for graph adjacency.
//!
//! The GCN aggregation of eq. (4) multiplies node features by the normalized
//! predecessor adjacency `Â`, where row `v` holds `1 / |N(v) ∪ {v}|` at the
//! columns of `v`'s predecessors and of `v` itself.

use crate::matrix::{exec_for, Matrix};
use serde::{Deserialize, Serialize};
use tiara_par::Executor;

/// A sparse matrix in CSR form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Csr {
    rows: usize,
    cols: usize,
    indptr: Vec<u32>,
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl Default for Csr {
    /// The empty `0×0` matrix (see [`Csr::empty`]).
    fn default() -> Csr {
        Csr::empty()
    }
}

impl Csr {
    /// Builds a CSR matrix from `(row, col, value)` triplets.
    ///
    /// Duplicate coordinates are summed.
    ///
    /// # Panics
    ///
    /// Panics if a coordinate is out of bounds.
    pub fn from_triplets(rows: usize, cols: usize, mut triplets: Vec<(u32, u32, f32)>) -> Csr {
        for &(r, c, _) in &triplets {
            assert!((r as usize) < rows && (c as usize) < cols, "triplet out of bounds");
        }
        triplets.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices: Vec<u32> = Vec::with_capacity(triplets.len());
        let mut values: Vec<f32> = Vec::with_capacity(triplets.len());
        indptr.push(0u32);
        let mut cur_row = 0usize;
        for (r, c, v) in triplets {
            while cur_row < r as usize {
                indptr.push(indices.len() as u32);
                cur_row += 1;
            }
            if indices.len() > *indptr.last().expect("nonempty") as usize
                && indices.last() == Some(&c)
            {
                // Duplicate coordinate within the current row: accumulate.
                *values.last_mut().expect("values nonempty") += v;
            } else {
                indices.push(c);
                values.push(v);
            }
        }
        while cur_row < rows {
            indptr.push(indices.len() as u32);
            cur_row += 1;
        }
        Csr { rows, cols, indptr, indices, values }
    }

    /// The normalized predecessor adjacency `Â` of eq. (4): entry `(v, u)`
    /// is `1 / |N(v) ∪ {v}|` for each predecessor `u` of `v` plus `v`
    /// itself (mean pooling over the in-neighborhood).
    pub fn mean_pool_adjacency(n: usize, edges: &[(u32, u32)]) -> Csr {
        let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(u, v) in edges {
            assert!((u as usize) < n && (v as usize) < n, "edge out of bounds");
            preds[v as usize].push(u);
        }
        let mut indptr = Vec::with_capacity(n + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0u32);
        for (v, p) in preds.iter_mut().enumerate() {
            p.push(v as u32); // self loop
            p.sort_unstable();
            p.dedup();
            let w = 1.0 / p.len() as f32;
            for &u in p.iter() {
                indices.push(u);
                values.push(w);
            }
            indptr.push(indices.len() as u32);
        }
        Csr { rows: n, cols: n, indptr, indices, values }
    }

    /// The unnormalized predecessor adjacency with self-loops: entry
    /// `(v, u)` is 1 for each `u ∈ N(v) ∪ {v}` (GIN-style sum pooling).
    pub fn sum_adjacency(n: usize, edges: &[(u32, u32)]) -> Csr {
        let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(u, v) in edges {
            assert!((u as usize) < n && (v as usize) < n, "edge out of bounds");
            preds[v as usize].push(u);
        }
        let mut indptr = Vec::with_capacity(n + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0u32);
        for (v, p) in preds.iter_mut().enumerate() {
            p.push(v as u32);
            p.sort_unstable();
            p.dedup();
            for &u in p.iter() {
                indices.push(u);
                values.push(1.0);
            }
            indptr.push(indices.len() as u32);
        }
        Csr { rows: n, cols: n, indptr, indices, values }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// The explicit transpose.
    ///
    /// Built by counting sort, which is *stable*: row `c` of the transpose
    /// lists the source rows `r` in ascending order (and preserves the
    /// within-row entry order for repeated coordinates). [`Csr::t_spmm`]
    /// relies on this to keep its parallel gather bitwise identical to the
    /// sequential scatter.
    pub fn transpose(&self) -> Csr {
        let mut out = Csr::empty();
        self.transpose_into(&mut out);
        out
    }

    /// [`Csr::transpose`] into a caller-owned matrix, reusing its
    /// allocations (workspace pattern; no scratch allocation at steady
    /// state). Produces the identical stable counting sort.
    pub fn transpose_into(&self, out: &mut Csr) {
        let nnz = self.nnz();
        out.rows = self.cols;
        out.cols = self.rows;
        out.indptr.clear();
        out.indptr.resize(self.cols + 1, 0);
        for &c in &self.indices {
            out.indptr[c as usize + 1] += 1;
        }
        for i in 1..=self.cols {
            out.indptr[i] += out.indptr[i - 1];
        }
        out.indices.clear();
        out.indices.resize(nnz, 0);
        out.values.clear();
        out.values.resize(nnz, 0.0);
        // `indptr[c]` doubles as the placement cursor of row `c`; after the
        // scan it holds row ends, which one right-shift turns back into row
        // starts.
        for r in 0..self.rows {
            for k in self.indptr[r] as usize..self.indptr[r + 1] as usize {
                let c = self.indices[k] as usize;
                let pos = out.indptr[c] as usize;
                out.indptr[c] += 1;
                out.indices[pos] = r as u32;
                out.values[pos] = self.values[k];
            }
        }
        for i in (1..=self.cols).rev() {
            out.indptr[i] = out.indptr[i - 1];
        }
        out.indptr[0] = 0;
    }

    /// A 0×0 matrix with no entries (workspace seed for the `_into` APIs).
    pub fn empty() -> Csr {
        Csr { rows: 0, cols: 0, indptr: vec![0], indices: Vec::new(), values: Vec::new() }
    }

    /// Row boundaries splitting the stored entries into roughly `parts` runs
    /// of equal nonzero count, for load-balanced row partitioning.
    fn nnz_balanced_row_cuts(&self, parts: usize) -> Vec<usize> {
        let nnz = self.nnz();
        if parts <= 1 || nnz == 0 || self.rows <= 1 {
            return Vec::new();
        }
        let target = nnz.div_ceil(parts);
        let mut cuts = Vec::new();
        let mut next = target;
        for r in 1..self.rows {
            if self.indptr[r] as usize >= next {
                cuts.push(r);
                next = self.indptr[r] as usize + target;
            }
        }
        cuts
    }

    /// Sparse × dense product `self @ dense`, parallelized over nnz-balanced
    /// row runs on the global executor (sequential below the
    /// [`tiara_par::MIN_PARALLEL_WORK`] threshold).
    ///
    /// Each output row is reduced by exactly one thread in stored-entry
    /// order, so the result is bitwise identical at any thread count.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn spmm(&self, dense: &Matrix) -> Matrix {
        let work = self.nnz() * dense.cols();
        self.spmm_with(dense, &exec_for(work))
    }

    /// [`Csr::spmm`] writing into a caller-owned output matrix (resized and
    /// zeroed in place, reusing its allocation), on the same
    /// executor-dispatch policy. Bitwise identical to the allocating version.
    pub fn spmm_into(&self, dense: &Matrix, out: &mut Matrix) {
        let work = self.nnz() * dense.cols();
        self.spmm_into_with(dense, out, &exec_for(work));
    }

    fn spmm_into_with(&self, dense: &Matrix, out: &mut Matrix, exec: &Executor) {
        assert_eq!(self.cols, dense.rows(), "spmm shape mismatch");
        out.reset(self.rows, dense.cols());
        let n = dense.cols();
        if n == 0 {
            return;
        }
        // Over-partition 4× the thread count so stealing can smooth out any
        // residual nnz imbalance between runs.
        let cuts: Vec<usize> =
            self.nnz_balanced_row_cuts(exec.threads() * 4).into_iter().map(|r| r * n).collect();
        exec.par_partitions(out.as_mut_slice(), &cuts, |off, block| {
            self.spmm_rows(dense, off / n, block);
        });
    }

    /// [`Csr::spmm`] on an explicit executor, bypassing the size threshold.
    pub fn spmm_with(&self, dense: &Matrix, exec: &Executor) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.spmm_into_with(dense, &mut out, exec);
        out
    }

    /// The per-row-run spmm kernel: rows `row_off..` of the output, one run.
    fn spmm_rows(&self, dense: &Matrix, row_off: usize, block: &mut [f32]) {
        let n = dense.cols();
        let rows = block.len() / n;
        for bi in 0..rows {
            let r = row_off + bi;
            let dst = &mut block[bi * n..(bi + 1) * n];
            for k in self.indptr[r] as usize..self.indptr[r + 1] as usize {
                let c = self.indices[k] as usize;
                let w = self.values[k];
                for (d, s) in dst.iter_mut().zip(dense.row(c)) {
                    *d += w * s;
                }
            }
        }
    }

    /// Transposed sparse × dense product `self^T @ dense` (used by the
    /// backward pass), parallel via the global executor.
    ///
    /// The sequential path scatters without materializing the transpose; the
    /// parallel path gathers through [`Csr::transpose`], whose stable
    /// counting sort reproduces the scatter's accumulation order exactly —
    /// the two paths are bitwise identical.
    pub fn t_spmm(&self, dense: &Matrix) -> Matrix {
        let work = self.nnz() * dense.cols();
        self.t_spmm_with(dense, &exec_for(work))
    }

    /// [`Csr::t_spmm`] writing into a caller-owned output matrix, with an
    /// optional caller-owned transpose cache: when the region is large enough
    /// to parallelize, the explicit transpose is (re)built into `t_cache`
    /// instead of a fresh allocation. Bitwise identical to [`Csr::t_spmm`].
    pub fn t_spmm_into(&self, dense: &Matrix, out: &mut Matrix, t_cache: &mut Csr) {
        let work = self.nnz() * dense.cols();
        let exec = exec_for(work);
        if exec.threads() <= 1 || dense.cols() == 0 {
            self.t_spmm_scatter_into(dense, out);
        } else {
            self.transpose_into(t_cache);
            t_cache.spmm_into_with(dense, out, &exec);
        }
    }

    /// [`Csr::t_spmm`] on an explicit executor, bypassing the size threshold.
    pub fn t_spmm_with(&self, dense: &Matrix, exec: &Executor) -> Matrix {
        assert_eq!(self.rows, dense.rows(), "t_spmm shape mismatch");
        if exec.threads() <= 1 || dense.cols() == 0 {
            let mut out = Matrix::zeros(0, 0);
            self.t_spmm_scatter_into(dense, &mut out);
            return out;
        }
        self.transpose().spmm_with(dense, exec)
    }

    /// The sequential scatter kernel for `self^T @ dense`.
    fn t_spmm_scatter_into(&self, dense: &Matrix, out: &mut Matrix) {
        assert_eq!(self.rows, dense.rows(), "t_spmm shape mismatch");
        out.reset(self.cols, dense.cols());
        for r in 0..self.rows {
            let src = dense.row(r);
            for k in self.indptr[r] as usize..self.indptr[r + 1] as usize {
                let c = self.indices[k] as usize;
                let w = self.values[k];
                let dst = out.row_mut(c);
                for (d, s) in dst.iter_mut().zip(src) {
                    *d += w * s;
                }
            }
        }
    }

    /// The dense equivalent (testing aid).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for k in self.indptr[r] as usize..self.indptr[r + 1] as usize {
                m.set(r, self.indices[k] as usize, self.values[k]);
            }
        }
        m
    }

    /// Block-diagonal stacking of several CSR matrices (graph batching).
    pub fn block_diag(blocks: &[&Csr]) -> Csr {
        let mut out = Csr::empty();
        Csr::block_diag_into(blocks, &mut out);
        out
    }

    /// [`Csr::block_diag`] into a caller-owned matrix, reusing its
    /// allocations. Returns the number of buffer bytes that were reused
    /// (i.e. needed no fresh allocation), for workspace accounting.
    pub fn block_diag_into(blocks: &[&Csr], out: &mut Csr) -> usize {
        let rows: usize = blocks.iter().map(|b| b.rows).sum();
        let cols: usize = blocks.iter().map(|b| b.cols).sum();
        let nnz: usize = blocks.iter().map(|b| b.nnz()).sum();
        let mut reused = 0usize;
        if out.indptr.capacity() > rows {
            reused += (rows + 1) * 4;
        }
        if out.indices.capacity() >= nnz {
            reused += nnz * 4;
        }
        if out.values.capacity() >= nnz {
            reused += nnz * 4;
        }
        out.rows = rows;
        out.cols = cols;
        out.indptr.clear();
        out.indices.clear();
        out.values.clear();
        out.indptr.reserve(rows + 1);
        out.indices.reserve(nnz);
        out.values.reserve(nnz);
        out.indptr.push(0u32);
        let mut col_off = 0u32;
        for b in blocks {
            for r in 0..b.rows {
                for k in b.indptr[r] as usize..b.indptr[r + 1] as usize {
                    out.indices.push(b.indices[k] + col_off);
                    out.values.push(b.values[k]);
                }
                out.indptr.push(out.indices.len() as u32);
            }
            col_off += b.cols as u32;
        }
        reused
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_pool_rows_sum_to_one() {
        // 0 -> 1 -> 2, 0 -> 2.
        let a = Csr::mean_pool_adjacency(3, &[(0, 1), (1, 2), (0, 2)]);
        let d = a.to_dense();
        for r in 0..3 {
            let sum: f32 = (0..3).map(|c| d.get(r, c)).sum();
            assert!((sum - 1.0).abs() < 1e-6, "row {r} sums to {sum}");
        }
        // Node 2 has preds {0, 1} plus itself: weight 1/3 each.
        assert!((d.get(2, 0) - 1.0 / 3.0).abs() < 1e-6);
        assert!((d.get(2, 2) - 1.0 / 3.0).abs() < 1e-6);
        // Node 0 has no preds: self loop only.
        assert!((d.get(0, 0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn duplicate_edges_do_not_double_count() {
        let a = Csr::mean_pool_adjacency(2, &[(0, 1), (0, 1)]);
        let d = a.to_dense();
        assert!((d.get(1, 0) - 0.5).abs() < 1e-6);
        assert!((d.get(1, 1) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn spmm_matches_dense() {
        let a = Csr::mean_pool_adjacency(3, &[(0, 1), (1, 2)]);
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[2.0, 2.0]]);
        let sparse = a.spmm(&x);
        let dense = a.to_dense().matmul(&x);
        for r in 0..3 {
            for c in 0..2 {
                assert!((sparse.get(r, c) - dense.get(r, c)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn t_spmm_matches_dense_transpose() {
        let a = Csr::mean_pool_adjacency(3, &[(0, 1), (1, 2), (0, 2)]);
        let g = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let t = a.t_spmm(&g);
        // Manual: A^T @ g.
        let ad = a.to_dense();
        for c in 0..3 {
            let manual: f32 = (0..3).map(|r| ad.get(r, c) * g.get(r, 0)).sum();
            assert!((t.get(c, 0) - manual).abs() < 1e-6);
        }
    }

    #[test]
    fn from_triplets_sums_duplicates_and_handles_empty_rows() {
        let c = Csr::from_triplets(4, 3, vec![(0, 2, 1.0), (2, 1, 2.0), (2, 1, 0.5), (3, 0, 4.0)]);
        let d = c.to_dense();
        assert_eq!(d.get(0, 2), 1.0);
        assert_eq!(d.get(2, 1), 2.5);
        assert_eq!(d.get(3, 0), 4.0);
        // Row 1 is empty.
        assert!((0..3).all(|j| d.get(1, j) == 0.0));
        assert_eq!(c.nnz(), 3);
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let c = Csr::from_triplets(
            3,
            4,
            vec![(0, 3, 1.0), (0, 0, 2.0), (1, 1, -1.5), (2, 0, 0.5), (2, 3, 7.0)],
        );
        let t = c.transpose();
        assert_eq!(t.rows(), 4);
        assert_eq!(t.cols(), 3);
        let d = c.to_dense();
        let td = t.to_dense();
        for r in 0..3 {
            for col in 0..4 {
                assert_eq!(d.get(r, col), td.get(col, r));
            }
        }
        // Round trip.
        assert_eq!(t.transpose(), c);
    }

    #[test]
    fn parallel_spmm_is_bitwise_equal_to_sequential() {
        use tiara_par::Executor;
        // A ring with chords: enough structure for uneven row nnz.
        let n = 97u32;
        let mut edges = Vec::new();
        for v in 0..n {
            edges.push((v, (v + 1) % n));
            if v % 3 == 0 {
                edges.push((v, (v + 7) % n));
                edges.push(((v + 13) % n, v));
            }
        }
        let a = Csr::mean_pool_adjacency(n as usize, &edges);
        let x = Matrix::from_vec(
            n as usize,
            5,
            (0..n as usize * 5).map(|i| (i as f32 * 0.37).sin()).collect(),
        );
        let g = Matrix::from_vec(
            n as usize,
            5,
            (0..n as usize * 5).map(|i| (i as f32 * 0.11).cos()).collect(),
        );
        let seq = Executor::sequential();
        for par in [Executor::new(2), Executor::new(4), Executor::new(9)] {
            assert_eq!(a.spmm_with(&x, &seq), a.spmm_with(&x, &par));
            assert_eq!(a.t_spmm_with(&g, &seq), a.t_spmm_with(&g, &par));
        }
    }

    #[test]
    fn into_variants_match_allocating_versions() {
        let a = Csr::mean_pool_adjacency(5, &[(0, 1), (1, 2), (3, 4), (0, 4)]);
        let x = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0], &[4.0], &[5.0]]);
        let mut out = Matrix::zeros(16, 16);
        a.spmm_into(&x, &mut out);
        assert_eq!(out, a.spmm(&x));
        let mut t = Csr::empty();
        a.transpose_into(&mut t);
        assert_eq!(t, a.transpose());
        let mut tout = Matrix::zeros(0, 0);
        let mut cache = Csr::empty();
        a.t_spmm_into(&x, &mut tout, &mut cache);
        assert_eq!(tout, a.t_spmm(&x));
        let b = Csr::mean_pool_adjacency(2, &[(0, 1)]);
        let mut bd = Csr::empty();
        let first = Csr::block_diag_into(&[&a, &b], &mut bd);
        assert_eq!(bd, Csr::block_diag(&[&a, &b]));
        // A second pack into the same workspace reuses every buffer.
        let again = Csr::block_diag_into(&[&a, &b], &mut bd);
        assert!(again > first, "second block_diag_into should report reuse ({again} vs {first})");
    }

    #[test]
    fn block_diag_stacks() {
        let a = Csr::mean_pool_adjacency(2, &[(0, 1)]);
        let b = Csr::mean_pool_adjacency(1, &[]);
        let bd = Csr::block_diag(&[&a, &b]);
        assert_eq!(bd.rows(), 3);
        assert_eq!(bd.cols(), 3);
        let d = bd.to_dense();
        assert!((d.get(1, 0) - 0.5).abs() < 1e-6);
        assert!((d.get(2, 2) - 1.0).abs() < 1e-6);
        assert_eq!(d.get(2, 0), 0.0);
    }
}
