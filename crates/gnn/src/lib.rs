//! # tiara-gnn
//!
//! A from-scratch graph neural network stack for the TIARA reproduction:
//! dense/sparse matrices, a reverse-mode autodiff tape, the paper's
//! 2×64 mean-pooling GCN (Section III-B2, eqs. 3–6), and the Adam optimizer.
//!
//! The paper implements this stage on DGL + PyTorch with a Tesla P100; the
//! graph-ML ecosystem being thin in Rust, this crate provides the minimal
//! equivalent executor with the identical architecture and hyper-parameters
//! (see DESIGN.md).
//!
//! ## Example
//!
//! ```
//! use tiara_gnn::{Gcn, GcnConfig, GraphSample, Matrix};
//!
//! let cfg = GcnConfig { input_dim: 4, hidden_dim: 8, num_classes: 2,
//!                       epochs: 30, batch_size: 2, ..GcnConfig::default() };
//! let a = GraphSample::new(Matrix::from_rows(&[&[1.0, 0.0, 0.0, 0.0]]), &[], 0);
//! let b = GraphSample::new(Matrix::from_rows(&[&[0.0, 0.0, 1.0, 0.0]]), &[], 1);
//! let mut gcn = Gcn::new(cfg);
//! gcn.train(&[a.clone(), b.clone()]);
//! assert_eq!(gcn.predict(&a), 0);
//! assert_eq!(gcn.predict(&b), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod adam;
mod batch;
mod csr;
pub mod fused;
mod gcn;
mod matrix;
mod mlp;
mod quant;
mod source;
mod tape;

pub use adam::Adam;
pub use batch::TrainStats;
pub use csr::Csr;
pub use gcn::{Aggregation, EpochStats, Gcn, GcnConfig, GraphSample};
pub use matrix::{argmax_slice, Matrix, KERNEL_INLINE_WORK};
pub use mlp::{Mlp, MlpConfig};
pub use quant::{QuantizedGcn, QuantizedMatrix};
pub use source::{F32Source, I8Source};
pub use tape::{ParamId, Tape, Var};
