//! Quantized int8×f32 inference for the serve hot loop.
//!
//! Weights are quantized once, offline, to `i8` with **per-column symmetric
//! scales** (`scale[j] = max|W[:, j]| / 127`), activations dynamically per
//! row at inference time (`scale[r] = max|x[r, :]| / 127`). The inner matmul
//! accumulates `i8 × i8` products in `i32` — an *exact* integer sum, so the
//! result is independent of accumulation order and trivially deterministic —
//! and rescales to `f32` with one multiply per output element.
//!
//! Only the convolution-layer products — where the multiply-accumulate work
//! lives, one `nodes × dim × hidden` matmul per layer — run in int8. The
//! graph aggregation (`Â h`) stays in `f32`: it is sparse, touches each edge
//! once, and its weights (`1/|N∪{v}|`) are data-dependent. The
//! classification head also stays in `f32`: it is a tiny
//! `graphs × hidden × classes` product, so quantizing it would save nothing
//! while injecting rounding error directly at the decision boundary.
//!
//! This path is *approximate*: probabilities differ from the `f32` model in
//! the low bits. The contract, enforced by the differential suite, is
//! **label parity**: `argmax` agrees with the `f32` model on the evaluation
//! scenarios. It is strictly an opt-in inference accelerator — training and
//! model persistence never touch it.

use crate::batch::sample_adjacency;
use crate::csr::Csr;
use crate::fused;
use crate::gcn::{Gcn, GcnConfig, GraphSample};
use crate::matrix::Matrix;
use crate::source::I8Source;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Borrowed int8 weight storage (e.g. a mapped container section).
#[derive(Clone)]
struct SharedI8 {
    src: Arc<dyn I8Source>,
    start: usize,
    len: usize,
}

impl SharedI8 {
    fn as_slice(&self) -> &[i8] {
        &self.src.i8s()[self.start..self.start + self.len]
    }
}

/// An `i8` row-major matrix with per-column symmetric dequantization scales.
///
/// Like [`Matrix`], the int8 block is either owned or borrowed zero-copy
/// from a shared [`I8Source`]; the (tiny) per-column scale vector is always
/// owned.
#[derive(Clone, Serialize, Deserialize)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    q: Vec<i8>,
    /// Per-column scale: `q[r][c] * scales[c] ≈ w[r][c]`.
    scales: Vec<f32>,
    /// When set, the int8 elements live in the shared source and `q` is
    /// empty. Skipped by serde: JSON bundles always carry owned `q`.
    #[serde(skip)]
    shared_q: Option<SharedI8>,
}

impl std::fmt::Debug for QuantizedMatrix {
    // Logical contents, in the shape the former derived impl produced.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuantizedMatrix")
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .field("q", &self.q_slice())
            .field("scales", &self.scales)
            .finish()
    }
}

impl PartialEq for QuantizedMatrix {
    fn eq(&self, other: &QuantizedMatrix) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self.q_slice() == other.q_slice()
            && self.scales == other.scales
    }
}

impl QuantizedMatrix {
    /// Quantizes a dense `f32` matrix column by column.
    pub fn quantize(w: &Matrix) -> QuantizedMatrix {
        let (rows, cols) = (w.rows(), w.cols());
        let mut scales = vec![0.0f32; cols];
        for (c, scale) in scales.iter_mut().enumerate() {
            let mut amax = 0.0f32;
            for r in 0..rows {
                amax = amax.max(w.get(r, c).abs());
            }
            *scale = if amax > 0.0 { amax / 127.0 } else { 1.0 };
        }
        let mut q = vec![0i8; rows * cols];
        for r in 0..rows {
            for (c, (qv, &wv)) in q[r * cols..(r + 1) * cols].iter_mut().zip(w.row(r)).enumerate() {
                *qv = (wv / scales[c]).round().clamp(-127.0, 127.0) as i8;
            }
        }
        QuantizedMatrix { rows, cols, q, scales, shared_q: None }
    }

    /// Rebuilds a quantized matrix from owned parts (container loading).
    ///
    /// # Panics
    ///
    /// Panics if `q.len() != rows * cols` or `scales.len() != cols`.
    pub fn from_parts(rows: usize, cols: usize, q: Vec<i8>, scales: Vec<f32>) -> QuantizedMatrix {
        assert_eq!(q.len(), rows * cols, "quantized shape mismatch");
        assert_eq!(scales.len(), cols, "one scale per column");
        QuantizedMatrix { rows, cols, q, scales, shared_q: None }
    }

    /// A quantized matrix borrowing its int8 block zero-copy from a shared
    /// source, starting at element `start` of [`I8Source::i8s`].
    ///
    /// # Panics
    ///
    /// Panics if the range does not fit in the source or
    /// `scales.len() != cols`.
    pub fn from_shared(
        rows: usize,
        cols: usize,
        src: Arc<dyn I8Source>,
        start: usize,
        scales: Vec<f32>,
    ) -> QuantizedMatrix {
        let len = rows * cols;
        assert!(
            start.checked_add(len).is_some_and(|end| end <= src.i8s().len()),
            "shared range out of bounds"
        );
        assert_eq!(scales.len(), cols, "one scale per column");
        QuantizedMatrix {
            rows,
            cols,
            q: Vec::new(),
            scales,
            shared_q: Some(SharedI8 { src, start, len }),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The flat int8 block (row-major).
    pub fn q_slice(&self) -> &[i8] {
        match &self.shared_q {
            Some(s) => s.as_slice(),
            None => &self.q,
        }
    }

    /// The per-column dequantization scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Returns `true` while the int8 block is borrowed from a shared source.
    pub fn is_shared(&self) -> bool {
        self.shared_q.is_some()
    }

    /// Bytes borrowed from a shared source (0 once owned).
    pub fn shared_bytes(&self) -> usize {
        self.shared_q.as_ref().map_or(0, |s| s.len)
    }

    /// Dequantizes back to `f32` (testing aid; round-trip error is bounded
    /// by half a quantization step per element).
    pub fn dequantize(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        let q = self.q_slice();
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(r, c, f32::from(q[r * self.cols + c]) * self.scales[c]);
            }
        }
        out
    }

    /// `out = a @ self` with `a` quantized dynamically per row, `i32`
    /// accumulation, and an optional fused ReLU on the way out. `qa` is a
    /// caller-provided scratch buffer for the quantized activation row
    /// (reused across calls to keep the hot loop allocation-free).
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul_dyn_into(&self, a: &Matrix, out: &mut Matrix, relu: bool, qa: &mut Vec<i8>) {
        assert_eq!(a.cols(), self.rows, "matmul shape mismatch");
        out.reset(a.rows(), self.cols);
        let qm = self.q_slice();
        qa.clear();
        qa.resize(self.rows, 0);
        for r in 0..a.rows() {
            let row = a.row(r);
            let mut amax = 0.0f32;
            for &v in row {
                amax = amax.max(v.abs());
            }
            let dst = out.row_mut(r);
            if amax == 0.0 {
                // Row of zeros quantizes to zeros; output row stays zero.
                continue;
            }
            let a_scale = amax / 127.0;
            for (qv, &v) in qa.iter_mut().zip(row) {
                *qv = (v / a_scale).round().clamp(-127.0, 127.0) as i8;
            }
            for (c, d) in dst.iter_mut().enumerate() {
                let mut acc = 0i32;
                for (k, &qv) in qa.iter().enumerate() {
                    acc += i32::from(qv) * i32::from(qm[k * self.cols + c]);
                }
                let v = acc as f32 * a_scale * self.scales[c];
                *d = if relu { v.max(0.0) } else { v };
            }
        }
    }
}

/// A GCN with int8-quantized dense weights, for fast approximate inference.
/// Built from a trained [`Gcn`] via [`Gcn::quantize`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuantizedGcn {
    config: GcnConfig,
    convs: Vec<QuantizedMatrix>,
    /// Kept in f32 — see the module docs.
    head: Matrix,
}

/// Reusable inference scratch (mirrors the f32 `Workspace`, minus backward).
#[derive(Debug, Default)]
struct QuantWorkspace {
    adj: Csr,
    feats: Matrix,
    segments: Vec<u32>,
    agg: Matrix,
    act: Matrix,
    hg: Matrix,
    logits: Matrix,
    probs: Matrix,
    qa: Vec<i8>,
}

impl QuantizedGcn {
    pub(crate) fn from_parts(config: GcnConfig, convs: &[Matrix], head: &Matrix) -> QuantizedGcn {
        QuantizedGcn {
            config,
            convs: convs.iter().map(QuantizedMatrix::quantize).collect(),
            head: head.clone(),
        }
    }

    /// Rebuilds a quantized model from already-quantized parts (container
    /// loading: the int8 tables come straight off the mapped bytes instead
    /// of being re-derived from the f32 weights).
    ///
    /// # Panics
    ///
    /// Panics if the layer chain is empty or dimensions do not line up.
    pub fn from_quantized_parts(
        config: GcnConfig,
        convs: Vec<QuantizedMatrix>,
        head: Matrix,
    ) -> QuantizedGcn {
        assert!(!convs.is_empty(), "at least one conv layer");
        assert_eq!(convs[0].rows(), config.input_dim, "first layer input dim");
        assert_eq!(head.rows(), config.hidden_dim, "head input dim");
        assert_eq!(head.cols(), config.num_classes, "head output dim");
        QuantizedGcn { config, convs, head }
    }

    /// The model configuration (shared with the source [`Gcn`]).
    pub fn config(&self) -> &GcnConfig {
        &self.config
    }

    /// The int8 convolution weights, in layer order.
    pub fn convs(&self) -> &[QuantizedMatrix] {
        &self.convs
    }

    /// The f32 classification head.
    pub fn head(&self) -> &Matrix {
        &self.head
    }

    /// Total bytes the weights borrow zero-copy from mapped storage
    /// (0 for a fully owned model).
    pub fn mapped_weight_bytes(&self) -> usize {
        self.convs.iter().map(QuantizedMatrix::shared_bytes).sum::<usize>()
            + self.head.shared_bytes()
    }

    /// Predicts the class of one graph.
    pub fn predict(&self, sample: &GraphSample) -> u32 {
        self.predict_batch(std::slice::from_ref(sample))[0]
    }

    /// Predicts the classes of a batch of graphs.
    pub fn predict_batch(&self, samples: &[GraphSample]) -> Vec<u32> {
        let mut out = Vec::with_capacity(samples.len());
        self.infer_chunks(samples, |probs, rows| {
            for r in 0..rows {
                out.push(probs.argmax_row(r) as u32);
            }
        });
        out
    }

    /// Class probabilities for one graph.
    pub fn predict_proba(&self, sample: &GraphSample) -> Vec<f32> {
        self.predict_proba_batch(std::slice::from_ref(sample)).pop().expect("one sample in")
    }

    /// Class probabilities for a batch of graphs.
    pub fn predict_proba_batch(&self, samples: &[GraphSample]) -> Vec<Vec<f32>> {
        let mut out = Vec::with_capacity(samples.len());
        self.infer_chunks(samples, |probs, rows| {
            for r in 0..rows {
                out.push(probs.row(r).to_vec());
            }
        });
        out
    }

    /// Batched forward over `batch_size` chunks: f32 spmm, int8 dense
    /// layers, f32 readout and softmax.
    fn infer_chunks(&self, samples: &[GraphSample], mut sink: impl FnMut(&Matrix, usize)) {
        if samples.is_empty() {
            return;
        }
        let chunk_size = self.config.batch_size.max(1);
        let mut ws = QuantWorkspace::default();
        let mut adjs: Vec<Csr> = Vec::new();
        for chunk in samples.chunks(chunk_size) {
            adjs.clear();
            adjs.extend(chunk.iter().map(|g| sample_adjacency(g, self.config.aggregation)));
            let adj_refs: Vec<&Csr> = adjs.iter().collect();
            Csr::block_diag_into(&adj_refs, &mut ws.adj);
            let total_nodes: usize = chunk.iter().map(GraphSample::num_nodes).sum();
            ws.feats.reset(total_nodes, self.config.input_dim);
            ws.segments.clear();
            let mut row = 0usize;
            for (gi, g) in chunk.iter().enumerate() {
                for r in 0..g.num_nodes() {
                    ws.feats.row_mut(row).copy_from_slice(g.features.row(r));
                    ws.segments.push(gi as u32);
                    row += 1;
                }
            }
            for (k, w) in self.convs.iter().enumerate() {
                let h = if k == 0 { &ws.feats } else { &ws.act };
                ws.adj.spmm_into(h, &mut ws.agg);
                w.matmul_dyn_into(&ws.agg, &mut ws.act, true, &mut ws.qa);
            }
            let hidden = self.convs.last().map_or(0, QuantizedMatrix::cols);
            ws.hg.reset(chunk.len(), hidden);
            for (r, &g) in ws.segments.iter().enumerate() {
                let src = ws.act.row(r);
                let dst = ws.hg.row_mut(g as usize);
                for (d, s) in dst.iter_mut().zip(src) {
                    *d += s;
                }
            }
            ws.hg.matmul_into(&self.head, &mut ws.logits);
            fused::softmax_rows_into(&ws.logits, &mut ws.probs);
            sink(&ws.probs, chunk.len());
        }
    }
}

impl Gcn {
    /// Quantizes the trained model's dense weights to int8 for the fast
    /// approximate inference path (see [`QuantizedGcn`]). The `f32` model is
    /// left untouched.
    pub fn quantize(&self) -> QuantizedGcn {
        QuantizedGcn::from_parts(self.config().clone(), self.conv_weights(), self.head_weights())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gcn::Aggregation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn quantize_round_trip_error_is_bounded() {
        let mut rng = StdRng::seed_from_u64(11);
        let w = Matrix::xavier(40, 17, &mut rng);
        let q = QuantizedMatrix::quantize(&w);
        let back = q.dequantize();
        for c in 0..w.cols() {
            let mut amax = 0.0f32;
            for r in 0..w.rows() {
                amax = amax.max(w.get(r, c).abs());
            }
            let step = amax / 127.0;
            for r in 0..w.rows() {
                let err = (w.get(r, c) - back.get(r, c)).abs();
                assert!(err <= step * 0.5 + 1e-6, "({r},{c}) err {err} > step/2 {}", step * 0.5);
            }
        }
    }

    #[test]
    fn quantized_matmul_approximates_f32() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = Matrix::xavier(9, 24, &mut rng);
        let w = Matrix::xavier(24, 13, &mut rng);
        let q = QuantizedMatrix::quantize(&w);
        let want = a.matmul(&w);
        let mut got = Matrix::zeros(0, 0);
        let mut qa = Vec::new();
        q.matmul_dyn_into(&a, &mut got, false, &mut qa);
        // Magnitude-relative tolerance: two rounds of int8 rounding.
        let mut scale = 0.0f32;
        for &v in want.as_slice() {
            scale = scale.max(v.abs());
        }
        for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((g - w).abs() <= scale * 0.05 + 1e-3, "got {g} want {w}");
        }
    }

    #[test]
    fn zero_rows_stay_zero_and_relu_clamps() {
        let a = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, -2.0]]);
        let w = Matrix::from_rows(&[&[1.0, -1.0], &[1.0, 1.0]]);
        let q = QuantizedMatrix::quantize(&w);
        let mut out = Matrix::zeros(0, 0);
        let mut qa = Vec::new();
        q.matmul_dyn_into(&a, &mut out, true, &mut qa);
        assert_eq!(out.row(0), &[0.0, 0.0]);
        // Row 1: [1-2, -1-2] = [-1, -3] → ReLU → [0, 0].
        assert_eq!(out.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn quantized_gcn_matches_f32_labels_on_separable_data() {
        // Mirrors the gcn.rs toy problem: two separable graph families.
        let mut data = Vec::new();
        for i in 0..12u32 {
            let (a, b) = if i % 2 == 0 { (1.0, 0.0) } else { (0.0, 1.0) };
            let f = Matrix::from_rows(&[
                &[a, b, 0.1 * i as f32 % 0.5, 0.0],
                &[a, b, 0.0, 0.3],
                &[a * 0.5, b * 0.5, 0.2, 0.1],
            ]);
            data.push(GraphSample::new(f, &[(0, 1), (1, 2)], i % 2));
        }
        let mut gcn = Gcn::new(GcnConfig {
            input_dim: 4,
            hidden_dim: 8,
            num_layers: 2,
            aggregation: Aggregation::Mean,
            num_classes: 2,
            learning_rate: 0.01,
            epochs: 25,
            batch_size: 4,
            seed: 9,
            reference_mode: false,
        });
        gcn.train(&data);
        let qg = gcn.quantize();
        assert_eq!(gcn.predict_batch(&data), qg.predict_batch(&data), "label parity");
        // Probabilities are close, though not bitwise equal.
        for (s, qp) in data.iter().zip(qg.predict_proba_batch(&data)) {
            let fp = gcn.predict_proba(s);
            for (a, b) in fp.iter().zip(&qp) {
                assert!((a - b).abs() < 0.15, "proba drift too large: {a} vs {b}");
            }
        }
        // Serde round-trip keeps bits (skipped when serde is stubbed out in
        // offline builds; covered in CI).
        if let Ok(json) = serde_json::to_string(&qg) {
            if let Ok(back) = serde_json::from_str::<QuantizedGcn>(&json) {
                assert_eq!(qg.predict_batch(&data), back.predict_batch(&data));
            }
        }
    }
}
