//! Determinism suite: the parallel kernels must be *bitwise* equal to their
//! sequential counterparts on arbitrary shapes and contents, and CSR
//! construction must merge duplicate coordinates exactly.
//!
//! Bitwise equality (not tolerance) is the contract that keeps seeded
//! training reproducible at any `--threads` setting.

use proptest::prelude::*;
use tiara_gnn::{Csr, Matrix};
use tiara_par::Executor;

/// Strategy: a dense matrix of the given shape with bounded entries,
/// including exact zeros so the kernels' zero-skip paths are exercised.
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(prop_oneof![3 => -3.0f32..3.0, 1 => Just(0.0f32)], rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

/// Strategy: raw CSR triplets over an `rows x cols` grid, duplicates likely.
fn triplets(rows: u32, cols: u32, max: usize) -> impl Strategy<Value = Vec<(u32, u32, f32)>> {
    prop::collection::vec((0..rows, 0..cols, -2.0f32..2.0), 0..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Parallel dense kernels are bitwise equal to sequential on random
    /// shapes straddling the 64-element block/tile boundaries.
    #[test]
    fn dense_kernels_bitwise_match(
        m in 1usize..100,
        k in 1usize..70,
        n in 1usize..10,
        threads in 2usize..9,
        seed_a in 0u64..1000,
    ) {
        let a = deterministic_matrix(m, k, seed_a);
        let b = deterministic_matrix(k, n, seed_a ^ 0x5bd1e995);
        let c = deterministic_matrix(m, n, seed_a ^ 0x9e3779b9);
        let seq = Executor::sequential();
        let par = Executor::new(threads);
        prop_assert_eq!(a.matmul_with(&b, &seq), a.matmul_with(&b, &par));
        prop_assert_eq!(a.t_matmul_with(&c, &seq), a.t_matmul_with(&c, &par));
        prop_assert_eq!(a.matmul_t_with(&a, &seq), a.matmul_t_with(&a, &par));
    }

    /// Parallel sparse kernels are bitwise equal to sequential for arbitrary
    /// sparsity patterns, including duplicate-heavy triplet soups.
    #[test]
    fn sparse_kernels_bitwise_match(
        ts in triplets(40, 40, 160),
        x in matrix(40, 6),
        threads in 2usize..9,
    ) {
        let a = Csr::from_triplets(40, 40, ts);
        let seq = Executor::sequential();
        let par = Executor::new(threads);
        prop_assert_eq!(a.spmm_with(&x, &seq), a.spmm_with(&x, &par));
        prop_assert_eq!(a.t_spmm_with(&x, &seq), a.t_spmm_with(&x, &par));
    }

    /// `from_triplets` merges duplicate coordinates by summation: its dense
    /// form equals naive accumulation into a dense matrix, and no coordinate
    /// is stored twice.
    #[test]
    fn from_triplets_merges_duplicates(ts in triplets(7, 5, 60)) {
        let csr = Csr::from_triplets(7, 5, ts.clone());
        let mut naive = Matrix::zeros(7, 5);
        for &(r, c, v) in &ts {
            let cur = naive.get(r as usize, c as usize);
            naive.set(r as usize, c as usize, cur + v);
        }
        let dense = csr.to_dense();
        for r in 0..7 {
            for c in 0..5 {
                // Summation order differs (sorted vs input order), so allow
                // float tolerance — the merge itself is what's under test.
                prop_assert!((dense.get(r, c) - naive.get(r, c)).abs() < 1e-4);
            }
        }
        let distinct: std::collections::HashSet<(u32, u32)> =
            ts.iter().map(|&(r, c, _)| (r, c)).collect();
        prop_assert_eq!(csr.nnz(), distinct.len());
    }

    /// The transpose is an involution and agrees with the dense transpose.
    #[test]
    fn transpose_involution(ts in triplets(9, 6, 40)) {
        let a = Csr::from_triplets(9, 6, ts);
        let t = a.transpose();
        let ad = a.to_dense();
        let td = t.to_dense();
        for r in 0..9 {
            for c in 0..6 {
                prop_assert_eq!(ad.get(r, c), td.get(c, r));
            }
        }
        prop_assert_eq!(t.transpose(), a);
    }
}

/// A pseudo-random matrix from a splitmix-style hash: proptest shrinking
/// stays effective on the (shape, seed) tuple while entries remain varied.
fn deterministic_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    let data = (0..rows * cols)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // Map to [-2, 2] with some exact zeros.
            if state.is_multiple_of(7) {
                0.0
            } else {
                ((state >> 40) as f32 / (1u64 << 24) as f32) * 4.0 - 2.0
            }
        })
        .collect();
    Matrix::from_vec(rows, cols, data)
}
