//! Property-based tests for the tensor/autodiff/GCN stack.

use proptest::prelude::*;
use std::sync::Arc;
use tiara_gnn::{Csr, Gcn, GcnConfig, GraphSample, Matrix, ParamId, Tape};

/// Strategy: a dense matrix with bounded entries.
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-3.0f32..3.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

/// Strategy: a random edge list over `n` nodes.
fn edges(n: u32, max_edges: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..n, 0..n), 0..max_edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (A·B)·C == A·(B·C) within float tolerance.
    #[test]
    fn matmul_is_associative(a in matrix(3, 4), b in matrix(4, 2), c in matrix(2, 5)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// Identity is a two-sided unit for matmul.
    #[test]
    fn identity_is_a_unit(a in matrix(4, 4)) {
        let i = Matrix::eye(4);
        prop_assert_eq!(a.matmul(&i), a.clone());
        prop_assert_eq!(i.matmul(&a), a);
    }

    /// The implicit-transpose products agree with explicit computation.
    #[test]
    fn transpose_products_agree(a in matrix(3, 4), b in matrix(3, 5)) {
        let t = a.t_matmul(&b); // a^T @ b, 4x5
        for i in 0..4 {
            for j in 0..5 {
                let manual: f32 = (0..3).map(|k| a.get(k, i) * b.get(k, j)).sum();
                prop_assert!((t.get(i, j) - manual).abs() < 1e-3);
            }
        }
    }

    /// Every row of the mean-pooling adjacency sums to exactly 1 (it is a
    /// stochastic matrix), for arbitrary edge lists with duplicates.
    #[test]
    fn mean_pool_rows_are_stochastic(es in edges(6, 20)) {
        let a = Csr::mean_pool_adjacency(6, &es);
        let d = a.to_dense();
        for r in 0..6 {
            let sum: f32 = (0..6).map(|c| d.get(r, c)).sum();
            prop_assert!((sum - 1.0).abs() < 1e-5, "row {r} sums to {sum}");
        }
    }

    /// spmm against a CSR equals dense matmul against its densification.
    #[test]
    fn spmm_matches_dense(es in edges(5, 12), x in matrix(5, 3)) {
        let a = Csr::mean_pool_adjacency(5, &es);
        let sparse = a.spmm(&x);
        let dense = a.to_dense().matmul(&x);
        for (s, d) in sparse.as_slice().iter().zip(dense.as_slice()) {
            prop_assert!((s - d).abs() < 1e-4);
        }
    }

    /// Softmax rows are probability distributions for arbitrary logits.
    #[test]
    fn softmax_rows_are_distributions(z in matrix(4, 6)) {
        let mut t = Tape::new();
        let v = t.input(z);
        let p = t.softmax(v);
        for r in 0..4 {
            let sum: f32 = (0..6).map(|c| p.get(r, c)).sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!((0..6).all(|c| p.get(r, c) >= 0.0));
        }
    }

    /// The cross-entropy loss is non-negative and finite.
    #[test]
    fn cross_entropy_is_nonnegative(z in matrix(3, 4), labels in prop::collection::vec(0u32..4, 3)) {
        let mut t = Tape::new();
        let v = t.input(z);
        let l = t.softmax_cross_entropy(v, Arc::new(labels));
        let loss = t.value(l).get(0, 0);
        prop_assert!(loss.is_finite());
        prop_assert!(loss >= -1e-6, "loss {loss}");
    }

    /// Gradients are finite for arbitrary inputs (no NaN blowups).
    #[test]
    fn gradients_are_finite(x in matrix(4, 3), w in matrix(3, 2)) {
        let mut t = Tape::new();
        let xi = t.input(x);
        let wi = t.param(ParamId(0), w);
        let h = t.matmul(xi, wi);
        let h = t.relu(h);
        let l = t.softmax_cross_entropy(h, Arc::new(vec![0, 1, 0, 1]));
        let grads = t.backward(l);
        prop_assert_eq!(grads.len(), 1);
        prop_assert!(grads[0].1.as_slice().iter().all(|g| g.is_finite()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// GCN prediction never panics and returns a valid class for arbitrary
    /// graph shapes, including edgeless and single-node graphs.
    #[test]
    fn gcn_prediction_is_total(
        n in 1usize..12,
        es in edges(12, 24),
        label in 0u32..3,
    ) {
        let feats = Matrix::zeros(n, 5);
        let es: Vec<(u32, u32)> = es
            .into_iter()
            .filter(|&(u, v)| (u as usize) < n && (v as usize) < n)
            .collect();
        let g = GraphSample::new(feats, &es, label);
        let gcn = Gcn::new(GcnConfig {
            input_dim: 5,
            hidden_dim: 6,
            num_classes: 3,
            epochs: 1,
            batch_size: 2,
            ..GcnConfig::default()
        });
        let pred = gcn.predict(&g);
        prop_assert!(pred < 3);
        let proba = gcn.predict_proba(&g);
        prop_assert!((proba.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }
}
