//! Unrelated instruction noise: the code surrounding container operations in
//! a real binary (other statements, address computations, spilled
//! temporaries). Noise chunks never touch the labeled variables' address
//! ranges, so they are exactly what TSLICE must prune.

use crate::chunk::Chunk;
use rand::rngs::StdRng;
use rand::Rng;
use tiara_ir::{Opcode, Operand, Reg};

/// The global range noise loads/stores use; disjoint from the labeled
/// variable allocator (see `project.rs`).
pub const NOISE_GLOBAL_BASE: u64 = 0x7D000;

/// Generates one unrelated noise chunk.
pub fn noise_chunk(rng: &mut StdRng) -> Chunk {
    let mut c = Chunk::new();
    let g = NOISE_GLOBAL_BASE + (rng.random_range(0..128u64) << 4);
    let r = [Reg::Eax, Reg::Ecx, Reg::Edx][rng.random_range(0..3)];
    match rng.random_range(0..5) {
        0 => {
            // Load-modify-store on an unrelated global.
            c.mov(Operand::reg(r), Operand::mem_abs(g, 0));
            c.add(Operand::reg(r), Operand::imm(rng.random_range(1..64)));
            c.mov(Operand::mem_abs(g, 0), Operand::reg(r));
            c.mark_scratch(r);
        }
        1 => {
            // Scratch arithmetic.
            c.mov(Operand::reg(r), Operand::imm(rng.random_range(0..1024)));
            c.op(
                Opcode::Shl,
                tiara_ir::BinOp::Shl,
                Operand::reg(r),
                Operand::imm(rng.random_range(1..4)),
            );
            c.mark_scratch(r);
        }
        2 => {
            // Flag computation and a short forward branch.
            let skip = c.label();
            c.mov(Operand::reg(r), Operand::mem_abs(g, 0));
            c.test(Operand::reg(r), Operand::reg(r));
            c.jump(Opcode::Je, skip);
            c.inc(Operand::reg(r));
            c.bind(skip);
            c.mark_scratch(r);
        }
        3 => {
            // An opaque external call (logging, etc.).
            c.push(Operand::imm(rng.random_range(0..256)));
            c.call_extern(tiara_ir::ExternKind::Other);
            c.clean_args(1);
        }
        _ => {
            // A store of a constant.
            c.mov(Operand::mem_abs(g, 0), Operand::imm(rng.random_range(0..99)));
        }
    }
    c
}

/// Generates `⌊density⌋ + Bernoulli(frac(density))` noise chunks.
pub fn noise_chunks(rng: &mut StdRng, density: f64) -> Vec<Chunk> {
    let mut n = density.floor() as usize;
    if rng.random_bool(density.fract().clamp(0.0, 1.0)) {
        n += 1;
    }
    (0..n).map(|_| noise_chunk(rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn noise_is_nonempty_and_varied() {
        let mut rng = StdRng::seed_from_u64(3);
        let lens: Vec<usize> = (0..20).map(|_| noise_chunk(&mut rng).len()).collect();
        assert!(lens.iter().all(|&l| l >= 1));
        assert!(lens.iter().any(|&l| l != lens[0]), "variants appear");
    }

    #[test]
    fn density_controls_expected_count() {
        let mut rng = StdRng::seed_from_u64(4);
        let total: usize = (0..200).map(|_| noise_chunks(&mut rng, 0.5).len()).sum();
        // E[total] = 100; allow generous slack.
        assert!((40..=160).contains(&total), "total {total}");
        assert_eq!(noise_chunks(&mut rng, 0.0).len(), 0);
        assert!(noise_chunks(&mut rng, 2.0).len() >= 2);
    }
}
