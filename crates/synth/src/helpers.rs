//! Shared out-of-line STL helper functions emitted once per binary.
//!
//! These are the routines MSVC keeps out of line even at `/O2` (they appear
//! as named calls in the paper's Figure 1, e.g.
//! `std::_List_buy<int>::_Buynode<int>`): node allocators, the vector growth
//! path, and the red-black rebalance. Their bodies are where `malloc`/`free`
//! reachability (features `F5`/`F6`) comes from.

use crate::style::Style;
use crate::templates::{list, map, vector};
use tiara_ir::{BinOp, ExternKind, InstKind, Opcode, Operand, ProgramBuilder, Reg};

/// Per-style register roles inside helper bodies: which caller-save register
/// ferries loaded arguments and which holds copies. Real builds differ here
/// by compiler version and surrounding register pressure.
#[derive(Debug, Clone, Copy)]
struct HelperRegs {
    a: Reg,
    b: Reg,
}

fn helper_regs(style: &Style) -> HelperRegs {
    if style.seed.is_multiple_of(2) {
        HelperRegs { a: Reg::Ecx, b: Reg::Edx }
    } else {
        HelperRegs { a: Reg::Edx, b: Reg::Ecx }
    }
}

fn prologue(b: &mut ProgramBuilder, style: &Style) {
    b.inst(Opcode::Push, InstKind::Push { src: Operand::reg(Reg::Ebp) });
    b.inst(Opcode::Mov, InstKind::Mov { dst: Operand::reg(Reg::Ebp), src: Operand::reg(Reg::Esp) });
    if style.seed.is_multiple_of(3) {
        // Some builds reserve scratch space even in small helpers.
        b.inst(
            Opcode::Sub,
            InstKind::Op { op: BinOp::Sub, dst: Operand::reg(Reg::Esp), src: Operand::imm(8) },
        );
    }
}

fn epilogue(b: &mut ProgramBuilder, style: &Style) {
    b.inst(
        if style.use_leave_epilogue { Opcode::Leave } else { Opcode::Mov },
        InstKind::Mov { dst: Operand::reg(Reg::Esp), src: Operand::reg(Reg::Ebp) },
    );
    b.inst(Opcode::Pop, InstKind::Pop { dst: Operand::reg(Reg::Ebp) });
    b.ret();
}

fn mov(b: &mut ProgramBuilder, dst: Operand, src: Operand) {
    b.inst(Opcode::Mov, InstKind::Mov { dst, src });
}

fn add(b: &mut ProgramBuilder, dst: Operand, src: Operand) {
    b.inst(Opcode::Add, InstKind::Op { op: BinOp::Add, dst, src });
}

/// Emits `std::_List_buynode(_Next, _Prev, _Val)`: malloc a 12-byte node and
/// fill in the links and payload. Returns the node in `eax`.
pub fn emit_list_buynode(b: &mut ProgramBuilder, style: &Style) {
    let r = helper_regs(style);
    b.begin_func(list::BUYNODE);
    prologue(b, style);
    b.inst(Opcode::Push, InstKind::Push { src: Operand::imm(12) });
    b.call_extern(ExternKind::Malloc);
    add(b, Operand::reg(Reg::Esp), Operand::imm(4));
    // node->_Next = arg1; node->_Prev = arg2; node->_Myval = arg3.
    mov(b, Operand::reg(r.a), Operand::mem_reg(Reg::Ebp, 8));
    mov(b, Operand::mem_reg(Reg::Eax, 0), Operand::reg(r.a));
    mov(b, Operand::reg(r.b), Operand::mem_reg(Reg::Ebp, 12));
    mov(b, Operand::mem_reg(Reg::Eax, 4), Operand::reg(r.b));
    mov(b, Operand::reg(r.a), Operand::mem_reg(Reg::Ebp, 16));
    mov(b, Operand::mem_reg(Reg::Eax, 8), Operand::reg(r.a));
    epilogue(b, style);
    b.end_func();
}

/// Emits `std::vector::_Emplace_realloc(vec*, val)`: malloc a bigger buffer,
/// copy the elements, free the old buffer, append the value, update the
/// header. The only template routine reaching *both* `malloc` and `free` —
/// the paper's key discriminator between `std::vector` and `std::list`.
pub fn emit_vector_emplace_realloc(b: &mut ProgramBuilder, style: &Style) {
    b.begin_func(vector::EMPLACE_REALLOC);
    prologue(b, style);
    // edi = malloc(new_cap)
    b.inst(Opcode::Push, InstKind::Push { src: Operand::imm(64) });
    b.call_extern(ExternKind::Malloc);
    add(b, Operand::reg(Reg::Esp), Operand::imm(4));
    mov(b, Operand::reg(Reg::Edi), Operand::reg(Reg::Eax));
    // ecx = &v; esi = v->_Myfirst
    mov(b, Operand::reg(Reg::Ecx), Operand::mem_reg(Reg::Ebp, 8));
    mov(b, Operand::reg(Reg::Esi), Operand::mem_reg(Reg::Ecx, 0));
    // copy loop: while (esi != v->_Mylast) *edi++ = *esi++;
    let top = b.new_label();
    let done = b.new_label();
    b.bind_label(top);
    b.inst(
        Opcode::Cmp,
        InstKind::Use { oprs: vec![Operand::reg(Reg::Esi), Operand::mem_reg(Reg::Ecx, 4)] },
    );
    b.jump(Opcode::Jae, done);
    mov(b, Operand::reg(Reg::Edx), Operand::mem_reg(Reg::Esi, 0));
    mov(b, Operand::mem_reg(Reg::Edi, 0), Operand::reg(Reg::Edx));
    add(b, Operand::reg(Reg::Esi), Operand::imm(4));
    add(b, Operand::reg(Reg::Edi), Operand::imm(4));
    b.jump(Opcode::Jmp, top);
    b.bind_label(done);
    // free(v->_Myfirst)
    b.inst(Opcode::Push, InstKind::Push { src: Operand::mem_reg(Reg::Ecx, 0) });
    b.call_extern(ExternKind::Free);
    add(b, Operand::reg(Reg::Esp), Operand::imm(4));
    // append the value and rewrite the header
    mov(b, Operand::reg(Reg::Edx), Operand::mem_reg(Reg::Ebp, 12));
    mov(b, Operand::mem_reg(Reg::Edi, 0), Operand::reg(Reg::Edx));
    add(b, Operand::reg(Reg::Edi), Operand::imm(4));
    mov(b, Operand::mem_reg(Reg::Ecx, 4), Operand::reg(Reg::Edi)); // _Mylast
                                                                   // _Myfirst = new buffer (still spilled in eax? reload pattern instead)
    mov(b, Operand::reg(Reg::Edx), Operand::reg(Reg::Edi));
    add(b, Operand::reg(Reg::Edx), Operand::imm(60));
    mov(b, Operand::mem_reg(Reg::Ecx, 8), Operand::reg(Reg::Edx)); // _Myend
    epilogue(b, style);
    b.end_func();
}

/// Emits `std::_Tree_buynode(attach, key, val)`: malloc a 24-byte red-black
/// node and initialize parent/key/value/color.
pub fn emit_tree_buynode(b: &mut ProgramBuilder, style: &Style) {
    let r = helper_regs(style);
    b.begin_func(map::TREE_BUYNODE);
    prologue(b, style);
    b.inst(Opcode::Push, InstKind::Push { src: Operand::imm(24) });
    b.call_extern(ExternKind::Malloc);
    add(b, Operand::reg(Reg::Esp), Operand::imm(4));
    mov(b, Operand::reg(r.a), Operand::mem_reg(Reg::Ebp, 8));
    mov(b, Operand::mem_reg(Reg::Eax, 4), Operand::reg(r.a)); // _Parent
    mov(b, Operand::reg(r.b), Operand::mem_reg(Reg::Ebp, 12));
    mov(b, Operand::mem_reg(Reg::Eax, 16), Operand::reg(r.b)); // _Key
    mov(b, Operand::reg(r.a), Operand::mem_reg(Reg::Ebp, 16));
    mov(b, Operand::mem_reg(Reg::Eax, 20), Operand::reg(r.a)); // _Val
    mov(b, Operand::mem_reg(Reg::Eax, 12), Operand::imm(0)); // red
    epilogue(b, style);
    b.end_func();
}

/// Emits `std::_Tree_rebalance(head, node)`: the recolor/rotate walk up the
/// tree. Pointer chasing and stores, no heap traffic.
pub fn emit_tree_rebalance(b: &mut ProgramBuilder, style: &Style) {
    b.begin_func(map::TREE_REBALANCE);
    prologue(b, style);
    mov(b, Operand::reg(Reg::Ecx), Operand::mem_reg(Reg::Ebp, 12)); // node
    mov(b, Operand::reg(Reg::Edx), Operand::mem_reg(Reg::Ebp, 8)); // head
    let top = b.new_label();
    let done = b.new_label();
    b.bind_label(top);
    b.inst(
        Opcode::Cmp,
        InstKind::Use { oprs: vec![Operand::mem_reg(Reg::Ecx, 12), Operand::imm(0)] },
    );
    b.jump(Opcode::Jne, done);
    mov(b, Operand::reg(Reg::Eax), Operand::mem_reg(Reg::Ecx, 4)); // parent
    b.inst(
        Opcode::Cmp,
        InstKind::Use { oprs: vec![Operand::reg(Reg::Eax), Operand::reg(Reg::Edx)] },
    );
    b.jump(Opcode::Je, done);
    mov(b, Operand::reg(Reg::Esi), Operand::mem_reg(Reg::Eax, 4)); // grandparent
    mov(b, Operand::mem_reg(Reg::Esi, 0), Operand::reg(Reg::Ecx)); // rotate link
    mov(b, Operand::mem_reg(Reg::Eax, 12), Operand::imm(1)); // recolor black
    mov(b, Operand::reg(Reg::Ecx), Operand::reg(Reg::Eax)); // ascend
    b.jump(Opcode::Jmp, top);
    b.bind_label(done);
    epilogue(b, style);
    b.end_func();
}

/// Emits `std::_Tree_buynode_set(key)`: malloc a 20-byte key-only node —
/// the value-less sibling of the map allocator.
pub fn emit_set_buynode(b: &mut ProgramBuilder, style: &Style) {
    let r = helper_regs(style);
    b.begin_func(crate::templates::set::SET_BUYNODE);
    prologue(b, style);
    b.inst(Opcode::Push, InstKind::Push { src: Operand::imm(20) });
    b.call_extern(ExternKind::Malloc);
    add(b, Operand::reg(Reg::Esp), Operand::imm(4));
    mov(b, Operand::reg(r.a), Operand::mem_reg(Reg::Ebp, 8));
    mov(b, Operand::mem_reg(Reg::Eax, 16), Operand::reg(r.a)); // _Key
    mov(b, Operand::mem_reg(Reg::Eax, 12), Operand::imm(0)); // red
    epilogue(b, style);
    b.end_func();
}

/// Emits `std::deque::_Growmap(deque*)`: malloc a bigger block-pointer map,
/// copy the pointers, free the old map — heap churn over *pointers*, not
/// elements (the deque's growth signature).
pub fn emit_deque_growmap(b: &mut ProgramBuilder, style: &Style) {
    b.begin_func(crate::templates::deque::GROWMAP);
    prologue(b, style);
    b.inst(Opcode::Push, InstKind::Push { src: Operand::imm(128) });
    b.call_extern(ExternKind::Malloc);
    add(b, Operand::reg(Reg::Esp), Operand::imm(4));
    mov(b, Operand::reg(Reg::Edi), Operand::reg(Reg::Eax)); // new map
    mov(b, Operand::reg(Reg::Ecx), Operand::mem_reg(Reg::Ebp, 8)); // deque*
    mov(b, Operand::reg(Reg::Esi), Operand::mem_reg(Reg::Ecx, 0)); // old map
    mov(b, Operand::reg(Reg::Edx), Operand::mem_reg(Reg::Ecx, 4)); // _Mapsize
                                                                   // Copy the block pointers.
    let top = b.new_label();
    let done = b.new_label();
    b.bind_label(top);
    b.inst(
        Opcode::Test,
        InstKind::Use { oprs: vec![Operand::reg(Reg::Edx), Operand::reg(Reg::Edx)] },
    );
    b.jump(Opcode::Je, done);
    mov(b, Operand::reg(Reg::Eax), Operand::mem_reg(Reg::Esi, 0));
    mov(b, Operand::mem_reg(Reg::Edi, 0), Operand::reg(Reg::Eax));
    add(b, Operand::reg(Reg::Esi), Operand::imm(4));
    add(b, Operand::reg(Reg::Edi), Operand::imm(4));
    b.inst(
        Opcode::Sub,
        InstKind::Op { op: BinOp::Sub, dst: Operand::reg(Reg::Edx), src: Operand::imm(1) },
    );
    b.jump(Opcode::Jmp, top);
    b.bind_label(done);
    // free(old map); install the new one; double _Mapsize.
    b.inst(Opcode::Push, InstKind::Push { src: Operand::mem_reg(Reg::Ecx, 0) });
    b.call_extern(ExternKind::Free);
    add(b, Operand::reg(Reg::Esp), Operand::imm(4));
    mov(b, Operand::reg(Reg::Edx), Operand::mem_reg(Reg::Ecx, 4));
    add(b, Operand::reg(Reg::Edx), Operand::reg(Reg::Edx));
    mov(b, Operand::mem_reg(Reg::Ecx, 4), Operand::reg(Reg::Edx));
    epilogue(b, style);
    b.end_func();
}

/// Emits all shared helpers into the builder, in the build style of the
/// project (register roles, prologue shape, and epilogue idiom differ
/// between real builds).
pub fn emit_all(b: &mut ProgramBuilder, style: &Style) {
    emit_list_buynode(b, style);
    emit_vector_emplace_realloc(b, style);
    emit_tree_buynode(b, style);
    emit_tree_rebalance(b, style);
    emit_set_buynode(b, style);
    emit_deque_growmap(b, style);
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiara_ir::FuncId;

    #[test]
    fn helpers_build_and_reach_heap_routines() {
        let mut b = ProgramBuilder::new();
        emit_all(&mut b, &Style::default());
        let p = b.finish().unwrap();
        let buynode = p.func_by_name(list::BUYNODE).unwrap().id;
        let realloc = p.func_by_name(vector::EMPLACE_REALLOC).unwrap().id;
        let rebalance = p.func_by_name(map::TREE_REBALANCE).unwrap().id;
        assert!(p.func_allocates(buynode));
        assert!(!p.func_frees(buynode), "list never frees on insert");
        assert!(p.func_allocates(realloc));
        assert!(p.func_frees(realloc), "vector growth both allocates and frees");
        assert!(!p.func_allocates(rebalance));
        let _ = FuncId(0);
    }
}
