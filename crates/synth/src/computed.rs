//! Computed-address scenarios: labeled variables the syntactic discovery
//! heuristic cannot see.
//!
//! `discover_variables` only proposes literal `[ebp+c]` slots in
//! frame-pointer functions and absolute global operands. Real MSVC output
//! addresses locals in three other ways — through a `lea`-materialized base
//! register, through `esp` arithmetic, and directly `esp`-relative in
//! frame-pointer-omitted (`/Oy`) functions — and heap objects never have a
//! fixed address at all. Each scenario here emits one function whose single
//! labeled variable is *only* reachable through one of those four shapes
//! (cycled per scenario index), so the heuristic's recall measurably drops
//! on any spec with `TypeCounts::computed > 0` while value-set analysis
//! resolves every access:
//!
//! * variant 0 — frame-pointer-omitted function, `lea` base +
//!   register-offset field accesses;
//! * variant 1 — framed function, base register derived by `esp`
//!   arithmetic (`mov r, esp; add r, k`);
//! * variant 2 — frame-pointer-omitted function, direct `[esp+k]` accesses;
//! * variant 3 — heap: `call malloc`, field accesses through the returned
//!   pointer, recorded as a [`VarAddr::Heap`] allocation-site criterion.
//!
//! Ground-truth offsets follow the discovery conventions: framed functions
//! record `ebp`-relative slots, frame-pointer-omitted functions record
//! entry-`esp`-relative slots (the synthetic frame region VSA anchors at
//! function entry, before the return address is accounted — i.e. `-4 -
//! locals` territory).
//!
//! Every body is a single straight-line basic block so the VSA soundness
//! oracle in tiara-verify can execute it concretely, and every slot is
//! written before it is read. When `count` is zero this module draws
//! nothing from the RNG, keeping pre-existing specs bit-identical.

use crate::style::Style;
use rand::rngs::StdRng;
use rand::Rng;
use tiara_ir::{
    BinOp, ContainerClass, DebugInfo, InstKind, MemAddr, Opcode, Operand, ProgramBuilder, Reg,
    VarAddr,
};

/// Locals bytes every scenario function reserves.
pub const COMPUTED_FRAME_BYTES: i64 = 0x40;

/// The classes scenarios cycle through (one per variant shape).
pub const COMPUTED_CLASSES: [ContainerClass; 4] =
    [ContainerClass::Vector, ContainerClass::List, ContainerClass::Map, ContainerClass::Set];

/// Emits `count` computed-address scenarios (one function each), records
/// their labeled variables in `debug`, and appends the function names to
/// `func_names` so `main` reaches them. Draws from `rng` only when
/// `count > 0`.
pub(crate) fn emit_scenarios(
    b: &mut ProgramBuilder,
    debug: &mut DebugInfo,
    rng: &mut StdRng,
    style: &Style,
    count: usize,
    func_names: &mut Vec<String>,
) {
    for i in 0..count {
        let class = COMPUTED_CLASSES[i % COMPUTED_CLASSES.len()];
        let name = format!("computed_{i:03}");
        match i % 4 {
            0 => emit_fpo_lea(b, debug, rng, style, class, &name),
            1 => emit_framed_esp_arith(b, debug, rng, style, class, &name),
            2 => emit_fpo_esp_direct(b, debug, rng, style, class, &name),
            _ => emit_heap(b, debug, rng, style, class, &name),
        }
        func_names.push(name);
    }
}

/// A small burst of container-header-shaped field traffic through `base`:
/// initialize the first three fields, then read-modify-write the size-like
/// field a few times. Every read follows a write.
fn emit_field_traffic(b: &mut ProgramBuilder, rng: &mut StdRng, style: &Style, base: Operand) {
    let field = |off: i64| match base {
        Operand::Loc(loc) => {
            Operand::Deref(tiara_ir::Loc { base: loc.base, offset: loc.offset + off })
        }
        _ => unreachable!("base is always a Loc"),
    };
    for off in [0, 4, 8] {
        b.inst(
            Opcode::Mov,
            InstKind::Mov { dst: field(off), src: Operand::imm(rng.random_range(1..256)) },
        );
    }
    let bumps = rng.random_range(style.ops_per_var.0..=style.ops_per_var.1).max(1);
    for _ in 0..bumps {
        b.inst(Opcode::Mov, InstKind::Mov { dst: Operand::reg(Reg::Eax), src: field(4) });
        b.inst(
            Opcode::Add,
            InstKind::Op { op: BinOp::Add, dst: Operand::reg(Reg::Eax), src: Operand::imm(1) },
        );
        b.inst(Opcode::Mov, InstKind::Mov { dst: field(4), src: Operand::reg(Reg::Eax) });
    }
}

fn fpo_prologue(b: &mut ProgramBuilder) {
    b.inst(
        Opcode::Sub,
        InstKind::Op {
            op: BinOp::Sub,
            dst: Operand::reg(Reg::Esp),
            src: Operand::imm(COMPUTED_FRAME_BYTES),
        },
    );
}

fn fpo_epilogue(b: &mut ProgramBuilder) {
    b.inst(
        Opcode::Add,
        InstKind::Op {
            op: BinOp::Add,
            dst: Operand::reg(Reg::Esp),
            src: Operand::imm(COMPUTED_FRAME_BYTES),
        },
    );
    b.ret();
}

/// Variant 0: `/Oy` function, base materialized by `lea r, [esp+k]`, all
/// field accesses `[r+off]`.
fn emit_fpo_lea(
    b: &mut ProgramBuilder,
    debug: &mut DebugInfo,
    rng: &mut StdRng,
    style: &Style,
    class: ContainerClass,
    name: &str,
) {
    let func = b.begin_func(name);
    fpo_prologue(b);
    let k = 0x10 + 4 * rng.random_range(0..4i64);
    // Entry-esp-relative offset of the variable.
    debug.record(VarAddr::Stack { func, offset: k - COMPUTED_FRAME_BYTES }, class, 0);
    b.inst(
        Opcode::Lea,
        InstKind::Mov {
            dst: Operand::reg(Reg::Esi),
            src: Operand::Loc(tiara_ir::Loc::with_offset(Reg::Esp, k)),
        },
    );
    emit_field_traffic(b, rng, style, Operand::Loc(tiara_ir::Loc::with_offset(Reg::Esi, 0)));
    fpo_epilogue(b);
    b.end_func();
}

/// Variant 1: framed function whose base register comes from `esp`
/// arithmetic instead of `ebp` — the heuristic never sees an `ebp` operand
/// for this variable.
fn emit_framed_esp_arith(
    b: &mut ProgramBuilder,
    debug: &mut DebugInfo,
    rng: &mut StdRng,
    style: &Style,
    class: ContainerClass,
    name: &str,
) {
    let func = b.begin_func(name);
    b.inst(Opcode::Push, InstKind::Push { src: Operand::reg(Reg::Ebp) });
    b.inst(Opcode::Mov, InstKind::Mov { dst: Operand::reg(Reg::Ebp), src: Operand::reg(Reg::Esp) });
    b.inst(
        Opcode::Sub,
        InstKind::Op {
            op: BinOp::Sub,
            dst: Operand::reg(Reg::Esp),
            src: Operand::imm(COMPUTED_FRAME_BYTES),
        },
    );
    let k = 0x14 + 4 * rng.random_range(0..4i64);
    // esp sits at entry-4-frame; the base is esp + k, which in ebp-relative
    // terms is k - 0x40 (ebp = entry esp - 4).
    debug.record(VarAddr::Stack { func, offset: k - COMPUTED_FRAME_BYTES }, class, 0);
    b.inst(Opcode::Mov, InstKind::Mov { dst: Operand::reg(Reg::Edi), src: Operand::reg(Reg::Esp) });
    b.inst(
        Opcode::Add,
        InstKind::Op { op: BinOp::Add, dst: Operand::reg(Reg::Edi), src: Operand::imm(k) },
    );
    emit_field_traffic(b, rng, style, Operand::Loc(tiara_ir::Loc::with_offset(Reg::Edi, 0)));
    if style.use_leave_epilogue {
        b.inst(
            Opcode::Leave,
            InstKind::Mov { dst: Operand::reg(Reg::Esp), src: Operand::reg(Reg::Ebp) },
        );
    } else {
        b.inst(
            Opcode::Mov,
            InstKind::Mov { dst: Operand::reg(Reg::Esp), src: Operand::reg(Reg::Ebp) },
        );
    }
    b.inst(Opcode::Pop, InstKind::Pop { dst: Operand::reg(Reg::Ebp) });
    b.ret();
    b.end_func();
}

/// Variant 2: `/Oy` function addressing the variable directly `[esp+k]`.
fn emit_fpo_esp_direct(
    b: &mut ProgramBuilder,
    debug: &mut DebugInfo,
    rng: &mut StdRng,
    style: &Style,
    class: ContainerClass,
    name: &str,
) {
    let func = b.begin_func(name);
    fpo_prologue(b);
    let k = 0x18 + 4 * rng.random_range(0..4i64);
    debug.record(VarAddr::Stack { func, offset: k - COMPUTED_FRAME_BYTES }, class, 0);
    emit_field_traffic(b, rng, style, Operand::Loc(tiara_ir::Loc::with_offset(Reg::Esp, k)));
    fpo_epilogue(b);
    b.end_func();
}

/// Variant 3: a heap object — `call malloc`, then field traffic through the
/// returned pointer. The ground-truth criterion is the allocation site.
fn emit_heap(
    b: &mut ProgramBuilder,
    debug: &mut DebugInfo,
    rng: &mut StdRng,
    style: &Style,
    class: ContainerClass,
    name: &str,
) {
    b.begin_func(name);
    b.inst(Opcode::Push, InstKind::Push { src: Operand::reg(Reg::Ebp) });
    b.inst(Opcode::Mov, InstKind::Mov { dst: Operand::reg(Reg::Ebp), src: Operand::reg(Reg::Esp) });
    b.inst(Opcode::Push, InstKind::Push { src: Operand::imm(0x20) });
    let site = b.call_extern(tiara_ir::ExternKind::Malloc);
    debug.record(VarAddr::Heap { site: MemAddr(b.inst_addr(site)) }, class, 0);
    b.inst(
        Opcode::Add,
        InstKind::Op { op: BinOp::Add, dst: Operand::reg(Reg::Esp), src: Operand::imm(4) },
    );
    // The returned pointer moves to a callee-saved register first (the
    // field traffic itself clobbers eax).
    b.inst(Opcode::Mov, InstKind::Mov { dst: Operand::reg(Reg::Esi), src: Operand::reg(Reg::Eax) });
    emit_field_traffic(b, rng, style, Operand::Loc(tiara_ir::Loc::with_offset(Reg::Esi, 0)));
    b.inst(Opcode::Pop, InstKind::Pop { dst: Operand::reg(Reg::Ebp) });
    b.ret();
    b.end_func();
}
