//! Instruction chunks: the unit of code emission and interleaving.
//!
//! A [`Chunk`] is a self-contained sequence of instructions whose branches
//! only target labels inside the same chunk. Container-operation templates
//! produce lists of chunks, and the generator interleaves the chunk streams
//! of adjacent variables — reproducing how an optimizing compiler inlines
//! and schedules `l.push_back(10)` and `v.push_back(20)` into one mixed
//! instruction sequence (the paper's Figure 1).

use rand::Rng;
use tiara_ir::{BinOp, ExternKind, InstKind, Opcode, Operand, ProgramBuilder, Reg};

/// A chunk-local branch label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LocalLabel(usize);

/// One deferred emission.
#[derive(Debug, Clone)]
pub enum Micro {
    /// A plain instruction.
    Plain(Opcode, InstKind),
    /// A branch to a chunk-local label.
    Jump(Opcode, LocalLabel),
    /// Binds a label at this position.
    Bind(LocalLabel),
    /// A direct call to a named function (resolved at program finish).
    CallNamed(String),
    /// A call to an external routine.
    CallExtern(ExternKind),
    /// An indirect call through an operand.
    CallIndirect(Operand),
}

/// A self-contained sequence of instructions.
#[derive(Debug, Clone, Default)]
pub struct Chunk {
    micros: Vec<Micro>,
    labels: usize,
    scratch: Vec<Reg>,
}

impl Chunk {
    /// An empty chunk.
    pub fn new() -> Chunk {
        Chunk::default()
    }

    /// Number of deferred emissions (an upper bound on instructions).
    pub fn len(&self) -> usize {
        self.micros.len()
    }

    /// Returns `true` if the chunk emits nothing.
    pub fn is_empty(&self) -> bool {
        self.micros.is_empty()
    }

    /// Creates a fresh chunk-local label.
    pub fn label(&mut self) -> LocalLabel {
        self.labels += 1;
        LocalLabel(self.labels - 1)
    }

    /// Binds `label` at the current position.
    pub fn bind(&mut self, label: LocalLabel) {
        self.micros.push(Micro::Bind(label));
    }

    /// Emits `mov dst, src`.
    pub fn mov(&mut self, dst: Operand, src: Operand) {
        self.micros.push(Micro::Plain(Opcode::Mov, InstKind::Mov { dst, src }));
    }

    /// Emits `lea dst, src` (an address move).
    pub fn lea(&mut self, dst: Reg, src: Operand) {
        self.micros.push(Micro::Plain(Opcode::Lea, InstKind::Mov { dst: Operand::reg(dst), src }));
    }

    /// Emits a binary arithmetic instruction with an explicit opcode.
    pub fn op(&mut self, opcode: Opcode, op: BinOp, dst: Operand, src: Operand) {
        self.micros.push(Micro::Plain(opcode, InstKind::Op { op, dst, src }));
    }

    /// Emits `add dst, src`.
    pub fn add(&mut self, dst: Operand, src: Operand) {
        self.op(Opcode::Add, BinOp::Add, dst, src);
    }

    /// Emits `sub dst, src`.
    pub fn sub(&mut self, dst: Operand, src: Operand) {
        self.op(Opcode::Sub, BinOp::Sub, dst, src);
    }

    /// Emits `inc dst`.
    pub fn inc(&mut self, dst: Operand) {
        self.op(Opcode::Inc, BinOp::Add, dst, Operand::imm(1));
    }

    /// Emits `dec dst`.
    pub fn dec(&mut self, dst: Operand) {
        self.op(Opcode::Dec, BinOp::Sub, dst, Operand::imm(1));
    }

    /// Emits `xor dst, dst` (the idiomatic zeroing).
    pub fn zero(&mut self, dst: Reg) {
        self.op(Opcode::Xor, BinOp::Xor, Operand::reg(dst), Operand::reg(dst));
    }

    /// Emits `cmp a, b`.
    pub fn cmp(&mut self, a: Operand, b: Operand) {
        self.micros.push(Micro::Plain(Opcode::Cmp, InstKind::Use { oprs: vec![a, b] }));
    }

    /// Emits `test a, b`.
    pub fn test(&mut self, a: Operand, b: Operand) {
        self.micros.push(Micro::Plain(Opcode::Test, InstKind::Use { oprs: vec![a, b] }));
    }

    /// Emits a conditional or unconditional jump to a chunk-local label.
    pub fn jump(&mut self, opcode: Opcode, label: LocalLabel) {
        self.micros.push(Micro::Jump(opcode, label));
    }

    /// Emits `push src`.
    pub fn push(&mut self, src: Operand) {
        self.micros.push(Micro::Plain(Opcode::Push, InstKind::Push { src }));
    }

    /// Emits `pop dst`.
    pub fn pop(&mut self, dst: Operand) {
        self.micros.push(Micro::Plain(Opcode::Pop, InstKind::Pop { dst }));
    }

    /// Emits a call to a named function.
    pub fn call(&mut self, name: &str) {
        self.micros.push(Micro::CallNamed(name.to_owned()));
    }

    /// Emits a call to an external routine.
    pub fn call_extern(&mut self, kind: ExternKind) {
        self.micros.push(Micro::CallExtern(kind));
    }

    /// Emits an indirect call (e.g. `call dword ptr [_Xlength_error]`).
    pub fn call_indirect(&mut self, opr: Operand) {
        self.micros.push(Micro::CallIndirect(opr));
    }

    /// Pops `n * 4` bytes of cdecl arguments after a call (`add esp, 4n`).
    pub fn clean_args(&mut self, n: i64) {
        self.add(Operand::reg(Reg::Esp), Operand::imm(4 * n));
    }

    /// Records that `r` is a scratch register: the chunk clobbers it and its
    /// value must be dead by the time the chunk ends. Noise chunks tag their
    /// scratch registers so the generator's debug self-check can prove, via
    /// liveness, that injected noise never feeds downstream computation.
    pub fn mark_scratch(&mut self, r: Reg) {
        if !self.scratch.contains(&r) {
            self.scratch.push(r);
        }
    }

    /// The registers recorded by [`Chunk::mark_scratch`].
    pub fn scratch_regs(&self) -> &[Reg] {
        &self.scratch
    }

    /// Plays the chunk back into a program builder and returns the emitted
    /// instruction range as raw indices (`[start, end)`).
    pub fn emit(&self, b: &mut ProgramBuilder) -> std::ops::Range<u32> {
        let start = b.next_inst_id().0;
        let labels: Vec<tiara_ir::Label> = (0..self.labels).map(|_| b.new_label()).collect();
        for m in &self.micros {
            match m {
                Micro::Plain(op, kind) => {
                    b.inst(*op, kind.clone());
                }
                Micro::Jump(op, l) => {
                    b.jump(*op, labels[l.0]);
                }
                Micro::Bind(l) => b.bind_label(labels[l.0]),
                Micro::CallNamed(name) => {
                    b.call_named(name);
                }
                Micro::CallExtern(k) => {
                    b.call_extern(*k);
                }
                Micro::CallIndirect(o) => {
                    b.call_indirect(*o);
                }
            }
        }
        start..b.next_inst_id().0
    }
}

/// Randomly merges several chunk streams into one, preserving the order of
/// chunks within each stream — the instruction-level interleaving an
/// optimizing compiler produces for adjacent independent statements.
pub fn interleave<R: Rng>(rng: &mut R, mut streams: Vec<Vec<Chunk>>) -> Vec<Chunk> {
    // Reverse each stream so we can pop from the back cheaply.
    for s in &mut streams {
        s.reverse();
    }
    let total: usize = streams.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    while streams.iter().any(|s| !s.is_empty()) {
        let nonempty: Vec<usize> =
            streams.iter().enumerate().filter(|(_, s)| !s.is_empty()).map(|(k, _)| k).collect();
        let pick = nonempty[rng.random_range(0..nonempty.len())];
        out.push(streams[pick].pop().expect("picked stream is nonempty"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn chunk_emits_into_builder() {
        let mut c = Chunk::new();
        let l = c.label();
        c.mov(Operand::reg(Reg::Eax), Operand::imm(1));
        c.cmp(Operand::reg(Reg::Eax), Operand::imm(0));
        c.jump(Opcode::Je, l);
        c.inc(Operand::reg(Reg::Eax));
        c.bind(l);

        let mut b = ProgramBuilder::new();
        b.begin_func("f");
        let span = c.emit(&mut b);
        b.ret();
        b.end_func();
        let p = b.finish().expect("labels resolve");
        assert_eq!(p.num_insts(), 5);
        assert_eq!(span, 0..4, "binds emit no instruction");
        // The jump's taken edge lands on the ret (label bound at chunk end).
        let jump_succs = p.cfg_succs(tiara_ir::InstId(2));
        assert_eq!(jump_succs.len(), 2);
    }

    #[test]
    fn interleave_preserves_stream_order() {
        let mk = |tag: i64, n: usize| -> Vec<Chunk> {
            (0..n)
                .map(|k| {
                    let mut c = Chunk::new();
                    c.mov(Operand::reg(Reg::Eax), Operand::imm(tag * 100 + k as i64));
                    c
                })
                .collect()
        };
        let mut rng = StdRng::seed_from_u64(1);
        let merged = interleave(&mut rng, vec![mk(1, 5), mk(2, 5)]);
        assert_eq!(merged.len(), 10);
        // Recover per-stream order from the immediates.
        let imms: Vec<i64> = merged
            .iter()
            .map(|c| match &c.micros[0] {
                Micro::Plain(_, InstKind::Mov { src: Operand::Imm(v), .. }) => *v,
                _ => panic!("unexpected micro"),
            })
            .collect();
        let s1: Vec<i64> = imms.iter().copied().filter(|v| *v < 200).collect();
        let s2: Vec<i64> = imms.iter().copied().filter(|v| *v >= 200).collect();
        assert_eq!(s1, vec![100, 101, 102, 103, 104]);
        assert_eq!(s2, vec![200, 201, 202, 203, 204]);
    }

    #[test]
    fn interleave_actually_mixes() {
        // With enough chunks, at least one boundary must alternate streams.
        let mk = |tag: i64| -> Vec<Chunk> {
            (0..20)
                .map(|_| {
                    let mut c = Chunk::new();
                    c.mov(Operand::reg(Reg::Eax), Operand::imm(tag));
                    c
                })
                .collect()
        };
        let mut rng = StdRng::seed_from_u64(7);
        let merged = interleave(&mut rng, vec![mk(0), mk(1)]);
        let tags: Vec<i64> = merged
            .iter()
            .map(|c| match &c.micros[0] {
                Micro::Plain(_, InstKind::Mov { src: Operand::Imm(v), .. }) => *v,
                _ => unreachable!(),
            })
            .collect();
        assert!(tags.windows(2).any(|w| w[0] != w[1]), "streams never mixed");
    }
}
