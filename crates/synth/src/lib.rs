//! # tiara-synth
//!
//! The synthetic binary substrate of the TIARA reproduction: an "MSVC-like"
//! code generator that stands in for the paper's toolchain of Visual C++ 15
//! 2017 `/O2`, IDA Pro disassembly, and DIA SDK ground-truth extraction
//! (none of which are available here — see DESIGN.md for the substitution
//! argument).
//!
//! The generator emits the x86-shaped IR of [`tiara_ir`] directly:
//!
//! * container operation **templates** reproduce the instruction idioms of
//!   the MSVC STL (`std::list::push_back` buying nodes through `_Buynode`,
//!   `std::vector::push_back` growing through a malloc+copy+free helper,
//!   `std::map::insert` walking and rebalancing a red-black tree);
//! * an **interleaver** merges the instruction chunks of adjacent variables,
//!   reproducing the inlining+scheduling mix of the paper's Figure 1;
//! * per-project **styles** vary register use, addressing forms, loop
//!   idioms, noise, and layout, giving the distribution shift RQ2 needs;
//! * every labeled variable is recorded in a synthetic **PDB**
//!   ([`tiara_ir::DebugInfo`]).
//!
//! ## Example
//!
//! ```
//! use tiara_synth::{generate, ProjectSpec, TypeCounts};
//!
//! let spec = ProjectSpec {
//!     name: "demo".into(),
//!     index: 0,
//!     seed: 42,
//!     counts: TypeCounts { list: 2, vector: 2, map: 2, primitive: 5, ..Default::default() },
//! };
//! let binary = generate(&spec);
//! assert_eq!(binary.debug.len(), 11);
//! assert!(binary.program.num_insts() > 100);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod chunk;
pub mod computed;
pub mod escape;
mod helpers;
mod motivating;
mod noise;
mod project;
mod style;
pub mod templates;

pub use chunk::{interleave, Chunk, LocalLabel, Micro};
pub use computed::{COMPUTED_CLASSES, COMPUTED_FRAME_BYTES};
pub use escape::{escape_slot_offset, ESCAPE_CLASSES, ESCAPE_IMPORT_SLOT};
pub use helpers::emit_all as emit_helpers;
pub use motivating::{motivating_example, MotivatingExample, L_ADDR, V_OFFSET};
pub use noise::{noise_chunk, noise_chunks, NOISE_GLOBAL_BASE};
pub use project::{benchmark_suite, extended_suite, generate, Binary, ProjectSpec, TypeCounts};
pub use style::Style;
pub use templates::{VarCtx, VarPlace};
