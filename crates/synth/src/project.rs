//! Whole-project generation: the synthetic equivalent of compiling one of the
//! paper's benchmark projects with MSVC `/O2` and extracting ground truth
//! from its PDB.

use crate::chunk::{interleave, Chunk};
use crate::helpers;
use crate::noise::noise_chunks;
use crate::style::Style;
use crate::templates::{ctor, random_op, VarCtx, VarPlace};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tiara_ir::{
    ContainerClass, DebugInfo, InstKind, MemAddr, Opcode, Operand, Program, ProgramBuilder, Reg,
    VarAddr,
};

/// Base address of the labeled-variable region (disjoint from noise globals,
/// string literals, and import slots).
const VAR_GLOBAL_BASE: u64 = 0x100000;
/// Spacing between labeled globals; must exceed the criterion window.
const VAR_GLOBAL_STRIDE: u64 = 32;

/// Register banks assigned to (possibly interleaved) variable streams.
const BANK_A: [Reg; 3] = [Reg::Esi, Reg::Ebx, Reg::Edi];
const BANK_B: [Reg; 3] = [Reg::Eax, Reg::Ecx, Reg::Edx];

/// Number of variables of each label in a project (the per-project columns
/// of Table I, plus the extension labels which the paper suite leaves at
/// zero).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TypeCounts {
    /// `std::list` variables.
    pub list: usize,
    /// `std::vector` variables.
    pub vector: usize,
    /// `std::map` variables.
    pub map: usize,
    /// Primitive variables.
    pub primitive: usize,
    /// `std::deque` variables (extension label).
    #[serde(default)]
    pub deque: usize,
    /// `std::set` variables (extension label).
    #[serde(default)]
    pub set: usize,
    /// Escape-through-call scenarios (each adds one labeled stack container
    /// whose address crosses a call; see [`crate::escape`]).
    #[serde(default)]
    pub escape: usize,
    /// Computed-address scenarios (each adds one labeled variable that is
    /// only ever addressed through lea-materialized bases, esp arithmetic,
    /// frame-pointer-omitted frames, or heap pointers; see
    /// [`crate::computed`]).
    #[serde(default)]
    pub computed: usize,
}

impl TypeCounts {
    /// Total number of labeled variables (escape and computed scenarios
    /// label one each).
    pub fn total(&self) -> usize {
        self.list
            + self.vector
            + self.map
            + self.deque
            + self.set
            + self.primitive
            + self.escape
            + self.computed
    }

    /// The count for one label.
    pub fn of(&self, class: ContainerClass) -> usize {
        match class {
            ContainerClass::List => self.list,
            ContainerClass::Vector => self.vector,
            ContainerClass::Map => self.map,
            ContainerClass::Deque => self.deque,
            ContainerClass::Set => self.set,
            ContainerClass::Primitive => self.primitive,
        }
    }
}

/// The specification of one synthetic project.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProjectSpec {
    /// Project name (named after the paper's benchmark it stands in for).
    pub name: String,
    /// Index into the style table (drives all style knobs).
    pub index: usize,
    /// Suite-level seed.
    pub seed: u64,
    /// Labeled variable counts.
    pub counts: TypeCounts,
}

/// A generated binary: the program plus its synthetic PDB.
#[derive(Debug, Clone)]
pub struct Binary {
    /// Project name.
    pub name: String,
    /// The binary program.
    pub program: Program,
    /// Ground-truth labels (the synthetic PDB).
    pub debug: DebugInfo,
}

impl Binary {
    /// Iterates over `(address, label)` pairs.
    pub fn labeled_vars(&self) -> impl Iterator<Item = (VarAddr, ContainerClass)> + '_ {
        self.debug.iter().map(|r| (r.addr, r.class))
    }
}

/// The eight benchmark projects of Table I, with variable counts scaled down
/// ~60× (keeping the per-type ratios and the "std::list is rare" property;
/// see DESIGN.md) so that the full evaluation runs on a CPU-only host.
pub fn benchmark_suite(seed: u64) -> Vec<ProjectSpec> {
    let table: [(&str, TypeCounts); 8] = [
        (
            "clang",
            TypeCounts { list: 18, vector: 120, map: 140, primitive: 800, ..Default::default() },
        ),
        (
            "cmake",
            TypeCounts { list: 6, vector: 110, map: 100, primitive: 500, ..Default::default() },
        ),
        (
            "bitcoind",
            TypeCounts { list: 6, vector: 90, map: 95, primitive: 420, ..Default::default() },
        ),
        (
            "spdlog",
            TypeCounts { list: 3, vector: 40, map: 25, primitive: 160, ..Default::default() },
        ),
        ("soci", TypeCounts { list: 0, vector: 45, map: 42, primitive: 150, ..Default::default() }),
        ("re2", TypeCounts { list: 2, vector: 30, map: 35, primitive: 90, ..Default::default() }),
        (
            "arduinojson",
            TypeCounts { list: 0, vector: 20, map: 30, primitive: 100, ..Default::default() },
        ),
        (
            "list_ext",
            TypeCounts { list: 24, vector: 4, map: 0, primitive: 60, ..Default::default() },
        ),
    ];
    table
        .into_iter()
        .enumerate()
        .map(|(index, (name, counts))| ProjectSpec { name: name.to_owned(), index, seed, counts })
        .collect()
}

/// Three extension projects containing all six labels (`std::deque` and
/// `std::set` included) — the paper's suite contains none, so its tables
/// are unaffected; `tiara-eval extended` evaluates the six-class task.
pub fn extended_suite(seed: u64) -> Vec<ProjectSpec> {
    let mk = |name: &str, index: usize, counts: TypeCounts| ProjectSpec {
        name: name.to_owned(),
        index,
        seed,
        counts,
    };
    vec![
        mk(
            "ext_app",
            8,
            TypeCounts {
                list: 10,
                vector: 40,
                map: 35,
                deque: 30,
                set: 30,
                primitive: 200,
                ..Default::default()
            },
        ),
        mk(
            "ext_svc",
            9,
            TypeCounts {
                list: 8,
                vector: 30,
                map: 30,
                deque: 25,
                set: 25,
                primitive: 150,
                ..Default::default()
            },
        ),
        mk(
            "ext_kit",
            10,
            TypeCounts {
                list: 6,
                vector: 20,
                map: 25,
                deque: 20,
                set: 20,
                primitive: 100,
                ..Default::default()
            },
        ),
    ]
}

/// One labeled variable awaiting code generation.
#[derive(Debug, Clone, Copy)]
struct PendingVar {
    class: ContainerClass,
    ptr_level: u8,
    wants_stack: bool,
}

/// Generates a full binary for a project spec.
pub fn generate(spec: &ProjectSpec) -> Binary {
    let style = Style::for_project(spec.index, spec.seed);
    let mut rng = StdRng::seed_from_u64(style.seed);
    let mut debug = DebugInfo::new();

    // Decide every variable up front, shuffled so functions mix types.
    let mut pending: Vec<PendingVar> = Vec::with_capacity(spec.counts.total());
    for class in ContainerClass::ALL {
        for _ in 0..spec.counts.of(class) {
            let ptr_level = u8::from(
                class != ContainerClass::Primitive && rng.random_bool(style.ptr_var_fraction),
            );
            pending.push(PendingVar {
                class,
                ptr_level,
                wants_stack: rng.random_bool(style.stack_var_fraction),
            });
        }
    }
    pending.shuffle(&mut rng);

    let mut b = ProgramBuilder::new();
    let mut next_global = VAR_GLOBAL_BASE;
    let mut func_names: Vec<String> = Vec::new();
    let mut fn_counter = 0usize;
    // Instruction spans of chunks with tagged scratch registers (noise);
    // fed to the debug-build liveness self-check below.
    let mut noise_spans: Vec<(tiara_ir::FuncId, std::ops::Range<u32>, Vec<Reg>)> = Vec::new();

    let mut cursor = 0usize;
    while cursor < pending.len() {
        let k = rng.random_range(1..=style.vars_per_func).min(pending.len() - cursor);
        let group = &pending[cursor..cursor + k];
        cursor += k;

        let name = format!("fn_{fn_counter:04}");
        fn_counter += 1;
        let func = b.begin_func(&name);
        func_names.push(name);

        // Prologue: push ebp; mov ebp, esp; sub esp, frame.
        b.inst(Opcode::Push, InstKind::Push { src: Operand::reg(Reg::Ebp) });
        b.inst(
            Opcode::Mov,
            InstKind::Mov { dst: Operand::reg(Reg::Ebp), src: Operand::reg(Reg::Esp) },
        );
        let frame = 0x20 * (k as i64 + 2);
        b.inst(
            Opcode::Sub,
            InstKind::Op {
                op: tiara_ir::BinOp::Sub,
                dst: Operand::reg(Reg::Esp),
                src: Operand::imm(frame),
            },
        );

        // Assign places and build each variable's chunk stream.
        let mut streams: Vec<Vec<Chunk>> = Vec::with_capacity(k);
        let mut local_slot = 0i64;
        for (vi, pv) in group.iter().enumerate() {
            let place = if pv.wants_stack {
                local_slot += 1;
                let off = if style.negative_locals {
                    -0x20 * local_slot - 0x10
                } else {
                    8 + 0x20 * (local_slot - 1)
                };
                debug.record(VarAddr::Stack { func, offset: off }, pv.class, pv.ptr_level);
                VarPlace::Stack(off)
            } else {
                let base = next_global;
                next_global += VAR_GLOBAL_STRIDE;
                debug.record(VarAddr::Global(MemAddr(base)), pv.class, pv.ptr_level);
                VarPlace::Global(base)
            };
            let ctx = VarCtx {
                place,
                ptr_level: pv.ptr_level,
                bank: if vi % 2 == 0 { BANK_A } else { BANK_B },
                fold_global_offsets: style.fold_global_offsets,
                spill: -4 - 4 * vi as i64,
            };
            let mut stream: Vec<Chunk> = Vec::new();
            if pv.ptr_level >= 1 {
                // `T* p = &obj;` — bind the pointer before any chunk
                // dereferences it. The pointee is an anonymous static block;
                // the variable (and the slice criterion) stays the pointer.
                let pointee = next_global;
                next_global += VAR_GLOBAL_STRIDE;
                let slot = match place {
                    VarPlace::Stack(off) => Operand::mem_reg(Reg::Ebp, off),
                    VarPlace::Global(base) => Operand::mem_abs(base, 0),
                };
                let mut c = Chunk::new();
                c.mov(slot, Operand::addr_of(pointee, 0));
                stream.push(c);
            }
            stream.extend(ctor(pv.class, &ctx, &mut rng, &style));
            let nops = rng.random_range(style.ops_per_var.0..=style.ops_per_var.1);
            for _ in 0..nops {
                stream.extend(random_op(pv.class, &ctx, &mut rng, &style));
                stream.extend(noise_chunks(&mut rng, style.noise_density));
            }
            streams.push(stream);
        }

        // Interleave adjacent variable streams pairwise (the Figure 1 mix).
        let mut merged: Vec<Chunk> = Vec::new();
        let mut it = streams.into_iter().peekable();
        while let Some(first) = it.next() {
            if it.peek().is_some() && rng.random_bool(style.interleave_prob) {
                let second = it.next().expect("peeked");
                merged.extend(interleave(&mut rng, vec![first, second]));
            } else {
                merged.extend(first);
            }
        }
        for chunk in &merged {
            let span = chunk.emit(&mut b);
            if !chunk.scratch_regs().is_empty() && !span.is_empty() {
                noise_spans.push((func, span, chunk.scratch_regs().to_vec()));
            }
        }

        // Epilogue.
        if style.use_leave_epilogue {
            b.inst(
                Opcode::Leave,
                InstKind::Mov { dst: Operand::reg(Reg::Esp), src: Operand::reg(Reg::Ebp) },
            );
            b.inst(Opcode::Pop, InstKind::Pop { dst: Operand::reg(Reg::Ebp) });
        } else {
            b.inst(
                Opcode::Mov,
                InstKind::Mov { dst: Operand::reg(Reg::Esp), src: Operand::reg(Reg::Ebp) },
            );
            b.inst(Opcode::Pop, InstKind::Pop { dst: Operand::reg(Reg::Ebp) });
        }
        b.ret();
        b.end_func();
    }

    // Escape-through-call scenarios (no-op, and no RNG draws, when the
    // spec's `escape` count is zero — existing specs stay bit-identical).
    crate::escape::emit_scenarios(
        &mut b,
        &mut debug,
        &mut rng,
        &style,
        spec.counts.escape,
        &mut func_names,
    );

    // Computed-address scenarios (same prefix property: zero RNG draws when
    // the count is zero).
    crate::computed::emit_scenarios(
        &mut b,
        &mut debug,
        &mut rng,
        &style,
        spec.counts.computed,
        &mut func_names,
    );

    // main: call every generated function.
    b.begin_func("main");
    b.inst(Opcode::Push, InstKind::Push { src: Operand::reg(Reg::Ebp) });
    b.inst(Opcode::Mov, InstKind::Mov { dst: Operand::reg(Reg::Ebp), src: Operand::reg(Reg::Esp) });
    for name in &func_names {
        b.call_named(name);
    }
    b.inst(Opcode::Pop, InstKind::Pop { dst: Operand::reg(Reg::Ebp) });
    b.ret();
    b.end_func();
    b.set_entry("main");

    helpers::emit_all(&mut b, &style);

    let program = b.finish().expect("generated program is well-formed");

    // Debug builds self-validate every generated binary: the verifier's
    // static passes must find no errors (warnings are allowed — projects
    // with zero variables of a class leave that class's helper uncalled).
    #[cfg(debug_assertions)]
    {
        let report = tiara_verify::verify(&program);
        assert!(
            !report.has_errors(),
            "tiara-verify rejected generated project `{}`:\n{}",
            spec.name,
            report.render_human(&program)
        );

        // Injected noise must be provably inert: every scratch register a
        // noise chunk clobbers has to be dead at the chunk's last
        // instruction, otherwise the "noise" feeds real computation and
        // would teach the slicer/GCN to follow it.
        let liveness = tiara_dataflow::Liveness::new();
        let mut cache: Option<(
            tiara_ir::FuncId,
            tiara_dataflow::Solution<tiara_dataflow::RegSet>,
        )> = None;
        for (func, span, regs) in &noise_spans {
            if cache.as_ref().map(|(f, _)| f) != Some(func) {
                cache = Some((*func, tiara_dataflow::solve(&program, *func, &liveness)));
            }
            let sol = &cache.as_ref().expect("cache was just filled").1;
            let last = tiara_ir::InstId(span.end - 1);
            if !sol.reached(last) {
                continue;
            }
            for &r in regs {
                assert!(
                    !sol.after(last).contains(r),
                    "noise scratch {r} is live out of its chunk at {last} in `{}`",
                    spec.name
                );
            }
        }
    }

    Binary { name: spec.name.clone(), program, debug }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> ProjectSpec {
        ProjectSpec {
            name: "test".into(),
            index: 0,
            seed: 11,
            counts: TypeCounts { list: 3, vector: 4, map: 3, primitive: 10, ..Default::default() },
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&small_spec());
        let b = generate(&small_spec());
        assert_eq!(a.program.num_insts(), b.program.num_insts());
        assert_eq!(a.debug, b.debug);
    }

    #[test]
    fn debug_info_matches_counts() {
        let bin = generate(&small_spec());
        assert_eq!(bin.debug.count_of(ContainerClass::List), 3);
        assert_eq!(bin.debug.count_of(ContainerClass::Vector), 4);
        assert_eq!(bin.debug.count_of(ContainerClass::Map), 3);
        assert_eq!(bin.debug.count_of(ContainerClass::Primitive), 10);
        assert_eq!(bin.debug.len(), 20);
    }

    #[test]
    fn entry_is_main_and_helpers_exist() {
        let bin = generate(&small_spec());
        let p = &bin.program;
        assert_eq!(p.func(p.entry_func()).name, "main");
        assert!(p.func_by_name(crate::templates::list::BUYNODE).is_some());
        assert!(p.func_by_name(crate::templates::vector::EMPLACE_REALLOC).is_some());
        assert!(p.func_by_name(crate::templates::map::TREE_BUYNODE).is_some());
    }

    #[test]
    fn labeled_globals_do_not_collide() {
        let bin = generate(&small_spec());
        let mut addrs: Vec<u64> = bin
            .debug
            .iter()
            .filter_map(|r| match r.addr {
                VarAddr::Global(m) => Some(m.value()),
                _ => None,
            })
            .collect();
        addrs.sort_unstable();
        assert!(addrs.windows(2).all(|w| w[1] - w[0] >= VAR_GLOBAL_STRIDE));
    }

    #[test]
    fn stack_vars_do_not_collide_within_function() {
        let bin = generate(&small_spec());
        let mut per_func: std::collections::HashMap<u32, Vec<i64>> = Default::default();
        for r in bin.debug.iter() {
            if let VarAddr::Stack { func, offset } = r.addr {
                per_func.entry(func.0).or_default().push(offset);
            }
        }
        for offsets in per_func.values_mut() {
            offsets.sort_unstable();
            assert!(offsets.windows(2).all(|w| w[1] - w[0] >= 16));
        }
    }

    #[test]
    fn extended_suite_contains_all_six_labels() {
        let specs = extended_suite(9);
        assert_eq!(specs.len(), 3);
        for spec in &specs {
            assert!(spec.counts.deque > 0 && spec.counts.set > 0);
        }
        let bin = generate(&ProjectSpec {
            counts: TypeCounts {
                list: 1,
                vector: 2,
                map: 2,
                deque: 3,
                set: 3,
                primitive: 6,
                ..Default::default()
            },
            ..specs[0].clone()
        });
        assert_eq!(bin.debug.count_of(ContainerClass::Deque), 3);
        assert_eq!(bin.debug.count_of(ContainerClass::Set), 3);
        assert!(bin.program.func_by_name(crate::templates::set::SET_BUYNODE).is_some());
        assert!(bin.program.func_by_name(crate::templates::deque::GROWMAP).is_some());
    }

    #[test]
    fn escape_scenarios_emit_callers_helpers_and_labels() {
        // `generate` self-verifies in debug builds, so constructing this
        // binary already proves the scenarios pass every static check.
        let bin = generate(&ProjectSpec {
            name: "esc".into(),
            index: 1,
            seed: 5,
            counts: TypeCounts { vector: 1, primitive: 2, escape: 4, ..Default::default() },
        });
        let p = &bin.program;
        let main = p.entry_func();
        for i in 0..4 {
            let caller =
                p.func_by_name(&format!("esc_caller_{i:03}")).expect("scenario caller exists").id;
            assert!(p.func_by_name(&format!("esc_helper_{i:03}")).is_some());
            // main must reach every scenario caller directly.
            let called_from_main = (p.func(main).start.0..p.func(main).end.0).any(|raw| {
                matches!(
                    &p.inst(tiara_ir::InstId(raw)).kind,
                    InstKind::Call { target: tiara_ir::CallTarget::Direct(f) } if *f == caller
                )
            });
            assert!(called_from_main, "main does not call esc_caller_{i:03}");
        }
        // One labeled stack variable per scenario, on top of the base counts.
        assert_eq!(bin.debug.len(), 1 + 2 + 4);
        let stack_labels =
            bin.debug.iter().filter(|r| matches!(r.addr, VarAddr::Stack { .. })).count();
        assert!(stack_labels >= 4, "each scenario labels a stack slot");
    }

    #[test]
    fn escape_zero_draws_nothing_from_the_rng() {
        // A spec with escape: 0 must be bit-identical to the same spec
        // before the field existed; in particular no scenario functions.
        let bin = generate(&small_spec());
        assert!(bin.program.func_by_name("esc_caller_000").is_none());
        let with = generate(&ProjectSpec {
            counts: TypeCounts { escape: 3, ..small_spec().counts },
            ..small_spec()
        });
        // Prefix property: the non-escape functions are generated first and
        // identically (same RNG stream), escape code only appends.
        assert!(with.program.num_insts() > bin.program.num_insts());
        for r in bin.debug.iter() {
            assert!(
                with.debug.iter().any(|w| w.addr == r.addr && w.class == r.class),
                "base label {:?} missing from escape-augmented project",
                r.addr
            );
        }
    }

    #[test]
    fn computed_scenarios_emit_all_four_shapes_and_labels() {
        // `generate` self-verifies in debug builds, so constructing this
        // binary already proves the scenarios pass every static check.
        let bin = generate(&ProjectSpec {
            name: "cva".into(),
            index: 2,
            seed: 11,
            counts: TypeCounts { vector: 1, primitive: 2, computed: 8, ..Default::default() },
        });
        let p = &bin.program;
        let main = p.entry_func();
        for i in 0..8 {
            let f = p.func_by_name(&format!("computed_{i:03}")).expect("scenario exists").id;
            let called_from_main = (p.func(main).start.0..p.func(main).end.0).any(|raw| {
                matches!(
                    &p.inst(tiara_ir::InstId(raw)).kind,
                    InstKind::Call { target: tiara_ir::CallTarget::Direct(g) } if *g == f
                )
            });
            assert!(called_from_main, "main does not call computed_{i:03}");
        }
        // One labeled variable per scenario on top of the base counts; the
        // heap variants (i % 4 == 3) record allocation-site criteria.
        assert_eq!(bin.debug.len(), 1 + 2 + 8);
        let heap_labels =
            bin.debug.iter().filter(|r| matches!(r.addr, VarAddr::Heap { .. })).count();
        assert_eq!(heap_labels, 2, "scenarios 3 and 7 are heap-shaped");
        // The frame-pointer-omitted variants really omit the frame pointer.
        for i in [0usize, 2] {
            let f = p.func_by_name(&format!("computed_{i:03}")).unwrap().id;
            assert_eq!(
                tiara_ir::detect_frame_mode(p, f),
                tiara_ir::FrameMode::Omitted,
                "computed_{i:03} must be /Oy"
            );
        }
    }

    #[test]
    fn computed_zero_draws_nothing_from_the_rng() {
        // A spec with computed: 0 must be bit-identical to the same spec
        // before the field existed; in particular no scenario functions.
        let bin = generate(&small_spec());
        assert!(bin.program.func_by_name("computed_000").is_none());
        let with = generate(&ProjectSpec {
            counts: TypeCounts { computed: 4, ..small_spec().counts },
            ..small_spec()
        });
        // Prefix property: the base functions are generated first and
        // identically (same RNG stream), computed code only appends.
        assert!(with.program.num_insts() > bin.program.num_insts());
        for r in bin.debug.iter() {
            assert!(
                with.debug.iter().any(|w| w.addr == r.addr && w.class == r.class),
                "base label {:?} missing from computed-augmented project",
                r.addr
            );
        }
    }

    #[test]
    fn benchmark_suite_has_no_extension_labels() {
        for spec in benchmark_suite(1) {
            assert_eq!(spec.counts.deque, 0, "{}", spec.name);
            assert_eq!(spec.counts.set, 0, "{}", spec.name);
        }
    }

    #[test]
    fn benchmark_suite_matches_table1_shape() {
        let suite = benchmark_suite(42);
        assert_eq!(suite.len(), 8);
        assert_eq!(suite[0].name, "clang");
        assert_eq!(suite[7].name, "list_ext");
        // list_ext is list-heavy; soci and arduinojson have no lists.
        assert!(suite[7].counts.list > suite[7].counts.vector);
        assert_eq!(suite[4].counts.list, 0);
        assert_eq!(suite[6].counts.list, 0);
        // clang is by far the largest.
        assert!(suite[0].counts.total() > suite[1].counts.total());
    }
}
