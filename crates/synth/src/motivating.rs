//! The paper's motivating example (Figures 1 and 2): a `std::list<int> l` at
//! global address `074404h` and a `std::vector<int> v` in the frame at
//! `[ebp+8]`, with `l.push_back(10)` and `v.push_back(20)` inlined and
//! interleaved. Instruction indices `I0`–`I20` match the Figure 2 table.

use crate::templates::{list, vector};
use crate::{helpers, Binary};
use tiara_ir::{
    BinOp, ContainerClass, DebugInfo, InstKind, MemAddr, Opcode, Operand, ProgramBuilder, Reg,
    VarAddr,
};

/// The global address of the list `l` (the paper's `v0`).
pub const L_ADDR: u64 = 0x74404;
/// The frame offset of the vector `v`.
pub const V_OFFSET: i64 = 8;

/// The motivating-example binary plus the two variable addresses.
#[derive(Debug, Clone)]
pub struct MotivatingExample {
    /// The binary (program + synthetic PDB).
    pub binary: Binary,
    /// The address of `std::list<int> l`.
    pub l: VarAddr,
    /// The address of `std::vector<int> v`.
    pub v: VarAddr,
    /// The instruction index of the Figure 2 `I0` (`mov esi, [l]`).
    pub i0: tiara_ir::InstId,
}

/// Builds the motivating example.
pub fn motivating_example() -> MotivatingExample {
    let mut b = ProgramBuilder::new();
    let eax = Operand::reg(Reg::Eax);
    let ebx = Operand::reg(Reg::Ebx);
    let ecx = Operand::reg(Reg::Ecx);
    let edx = Operand::reg(Reg::Edx);
    let esi = Operand::reg(Reg::Esi);

    b.begin_func("main");
    // Prologue.
    b.inst(Opcode::Push, InstKind::Push { src: Operand::reg(Reg::Ebp) });
    b.inst(Opcode::Mov, InstKind::Mov { dst: Operand::reg(Reg::Ebp), src: Operand::reg(Reg::Esp) });
    b.inst(
        Opcode::Sub,
        InstKind::Op { op: BinOp::Sub, dst: Operand::reg(Reg::Esp), src: Operand::imm(0x30) },
    );

    // --- Figure 2 body ---
    // I0: mov esi, dword ptr [l (074404h)]
    let i0 = b.inst(Opcode::Mov, InstKind::Mov { dst: esi, src: Operand::mem_abs(L_ADDR, 0) });
    // I1: lea eax, [argn]  (argn is a local at ebp-20h)
    b.inst(
        Opcode::Lea,
        InstKind::Mov { dst: eax, src: Operand::Loc(tiara_ir::Loc::with_offset(Reg::Ebp, -0x20)) },
    );
    // I2: push eax
    b.inst(Opcode::Push, InstKind::Push { src: eax });
    // I3: mov dword ptr [argn], 0Ah
    b.inst(
        Opcode::Mov,
        InstKind::Mov { dst: Operand::mem_reg(Reg::Ebp, -0x20), src: Operand::imm(0x0A) },
    );
    // I4: push dword ptr [esi+4]
    b.inst(Opcode::Push, InstKind::Push { src: Operand::mem_reg(Reg::Esi, 4) });
    // I5: push esi
    b.inst(Opcode::Push, InstKind::Push { src: esi });
    // I6: call std::_List_buynode
    b.call_named(list::BUYNODE);
    b.inst(
        Opcode::Add,
        InstKind::Op { op: BinOp::Add, dst: Operand::reg(Reg::Esp), src: Operand::imm(12) },
    );
    // I7: mov ecx, dword ptr ds:[v0+4]
    b.inst(Opcode::Mov, InstKind::Mov { dst: ecx, src: Operand::mem_abs(L_ADDR + 4, 0) });
    // I8: mov edx, eax
    b.inst(Opcode::Mov, InstKind::Mov { dst: edx, src: eax });
    // I9: sub ebx, ecx
    b.inst(Opcode::Sub, InstKind::Op { op: BinOp::Sub, dst: ebx, src: ecx });
    // I10: cmp ebx, 1
    b.inst(Opcode::Cmp, InstKind::Use { oprs: vec![ebx, Operand::imm(1)] });
    // I11: jae I14
    let l14 = b.new_label();
    b.jump(Opcode::Jae, l14);
    // I12: push offset string...
    b.inst(Opcode::Push, InstKind::Push { src: Operand::addr_of(0x7A010u64, 0) });
    // I13: call dword ptr [_Xlength_error (073034h)]
    b.call_indirect(Operand::mem_abs(list::XLENGTH_SLOT, 0));
    // I14: inc ecx
    b.bind_label(l14);
    b.inst(Opcode::Inc, InstKind::Op { op: BinOp::Add, dst: ecx, src: Operand::imm(1) });
    // I15: mov dword ptr [ebp+8], 14h   (v.push_back(20) interleaved)
    b.inst(
        Opcode::Mov,
        InstKind::Mov { dst: Operand::mem_reg(Reg::Ebp, V_OFFSET), src: Operand::imm(0x14) },
    );
    // I16: mov dword ptr ds:[v0+4], ecx
    b.inst(Opcode::Mov, InstKind::Mov { dst: Operand::mem_abs(L_ADDR + 4, 0), src: ecx });
    // I17: mov dword ptr [esi+4], edx
    b.inst(Opcode::Mov, InstKind::Mov { dst: Operand::mem_reg(Reg::Esi, 4), src: edx });
    // I18: mov eax, dword ptr [edx+4]
    b.inst(Opcode::Mov, InstKind::Mov { dst: eax, src: Operand::mem_reg(Reg::Edx, 4) });
    // I19: mov dword ptr [eax], edx
    b.inst(Opcode::Mov, InstKind::Mov { dst: Operand::mem_reg(Reg::Eax, 0), src: edx });
    // I20: lea eax, [ebp+8]
    b.inst(
        Opcode::Lea,
        InstKind::Mov {
            dst: eax,
            src: Operand::Loc(tiara_ir::Loc::with_offset(Reg::Ebp, V_OFFSET)),
        },
    );
    // ... the rest of v.push_back(20): capacity test + growth call.
    b.inst(Opcode::Push, InstKind::Push { src: Operand::imm(0x14) });
    b.inst(Opcode::Push, InstKind::Push { src: eax });
    b.call_named(vector::EMPLACE_REALLOC);
    b.inst(
        Opcode::Add,
        InstKind::Op { op: BinOp::Add, dst: Operand::reg(Reg::Esp), src: Operand::imm(8) },
    );

    // Epilogue.
    b.inst(Opcode::Mov, InstKind::Mov { dst: Operand::reg(Reg::Esp), src: Operand::reg(Reg::Ebp) });
    b.inst(Opcode::Pop, InstKind::Pop { dst: Operand::reg(Reg::Ebp) });
    b.ret();
    b.end_func();
    b.set_entry("main");

    helpers::emit_all(&mut b, &crate::Style::default());
    let program = b.finish().expect("motivating example is well-formed");

    let l = VarAddr::Global(MemAddr(L_ADDR));
    let func = program.entry_func();
    let v = VarAddr::Stack { func, offset: V_OFFSET };
    let mut debug = DebugInfo::new();
    debug.record(l, ContainerClass::List, 0);
    debug.record(v, ContainerClass::Vector, 0);

    MotivatingExample { binary: Binary { name: "motivating".into(), program, debug }, l, v, i0 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_labels_both_variables() {
        let ex = motivating_example();
        assert_eq!(ex.binary.debug.class_of(ex.l), Some(ContainerClass::List));
        assert_eq!(ex.binary.debug.class_of(ex.v), Some(ContainerClass::Vector));
        assert!(ex.binary.program.num_insts() > 25);
    }

    #[test]
    fn i0_is_the_first_load_of_l() {
        let ex = motivating_example();
        let inst = ex.binary.program.inst(ex.i0);
        assert_eq!(inst.opcode, Opcode::Mov);
        match &inst.kind {
            InstKind::Mov { src, .. } => {
                assert_eq!(src.deref_mem().map(|(m, _)| m.value()), Some(L_ADDR));
            }
            other => panic!("unexpected kind {other:?}"),
        }
    }
}
