//! Per-project "coding style": the knobs that make two generated binaries
//! differ the way two real projects compiled by the same toolchain differ.
//!
//! RQ2 of the paper (cross-project prediction) depends on such distribution
//! shift existing: "different coding styles and conventions in different
//! projects will lead to different program behaviors in their binaries."

use serde::{Deserialize, Serialize};

/// Style parameters for one generated project.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Style {
    /// Base RNG seed; every generation decision derives from it.
    pub seed: u64,
    /// Probability that two adjacent variables' operation streams are
    /// interleaved at the instruction-chunk level (the paper's Figure 1).
    pub interleave_prob: f64,
    /// Expected number of unrelated noise chunks injected per operation.
    pub noise_density: f64,
    /// Emit global field accesses with the offset folded into the absolute
    /// address (`[74408h]`) instead of symbolic (`[74404h+4]`).
    pub fold_global_offsets: bool,
    /// Use `leave` (`mov esp, ebp; pop ebp`) epilogues instead of explicit
    /// `mov`/`pop` pairs.
    pub use_leave_epilogue: bool,
    /// Place locals below the frame pointer (`[ebp-…]`) rather than above.
    pub negative_locals: bool,
    /// Range of operations performed per variable (inclusive).
    pub ops_per_var: (usize, usize),
    /// Fraction of container variables that are pointers to the container
    /// (`T*` rather than `T`).
    pub ptr_var_fraction: f64,
    /// Fraction of variables living in stack frames rather than globals.
    pub stack_var_fraction: f64,
    /// Count-down loops (`dec; jne`) instead of count-up (`inc; cmp; jb`).
    pub loop_down: bool,
    /// Maximum number of variables placed in one generated function.
    pub vars_per_func: usize,
    /// Inline the STL node allocators at call sites (aggressive LTO-style
    /// builds) instead of calling the shared out-of-line helpers.
    pub inline_allocators: bool,
    /// Seed biasing which container operations this project favors (one
    /// code base is `push_back`-heavy, another lookup-heavy, …).
    pub op_mix_seed: u64,
}

impl Default for Style {
    fn default() -> Style {
        Style {
            seed: 0xC60_2022,
            interleave_prob: 0.55,
            noise_density: 0.6,
            fold_global_offsets: true,
            use_leave_epilogue: false,
            negative_locals: true,
            ops_per_var: (1, 4),
            ptr_var_fraction: 0.2,
            stack_var_fraction: 0.5,
            loop_down: false,
            vars_per_func: 5,
            inline_allocators: false,
            op_mix_seed: 1,
        }
    }
}

impl Style {
    /// Derives a distinct style from a project index, varying every knob so
    /// that projects differ the way real code bases do.
    pub fn for_project(index: usize, seed: u64) -> Style {
        let i = index as u64;
        Style {
            seed: seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i + 1)),
            interleave_prob: 0.35 + 0.08 * ((i % 5) as f64),
            noise_density: 0.5 + 0.2 * ((i % 4) as f64),
            fold_global_offsets: i.is_multiple_of(2),
            use_leave_epilogue: i.is_multiple_of(3),
            negative_locals: i % 2 == 1,
            ops_per_var: if i.is_multiple_of(2) { (2, 6) } else { (3, 7) },
            ptr_var_fraction: 0.1 + 0.05 * ((i % 4) as f64),
            stack_var_fraction: 0.35 + 0.1 * ((i % 4) as f64),
            loop_down: i % 2 == 1,
            vars_per_func: 5 + (i % 4) as usize,
            inline_allocators: i % 3 == 1,
            op_mix_seed: 0xB5_1CE ^ (i.wrapping_mul(0x5851_F42D_4C95_7F2D)),
        }
    }

    /// A deterministic per-project weight in `1..=max` for operation `k` of
    /// a container's operation menu — the project's "coding habits".
    pub fn op_weight(&self, class_tag: u64, k: u64, max: u64) -> u64 {
        let h = self
            .op_mix_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(class_tag.wrapping_mul(0xD1B5_4A32_D192_ED03))
            .wrapping_add(k.wrapping_mul(0x2545_F491_4F6C_DD1D));
        let h = (h ^ (h >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        1 + (h >> 40) % max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn project_styles_differ() {
        let a = Style::for_project(0, 42);
        let b = Style::for_project(1, 42);
        assert_ne!(a.seed, b.seed);
        assert_ne!(a.fold_global_offsets, b.fold_global_offsets);
        assert_ne!(a.negative_locals, b.negative_locals);
    }

    #[test]
    fn same_inputs_same_style() {
        assert_eq!(Style::for_project(3, 7), Style::for_project(3, 7));
    }
}
