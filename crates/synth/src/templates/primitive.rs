//! Primitive-variable templates: plain loads, stores, arithmetic, compares,
//! and argument passing. The paper collapses all primitive types into one
//! label, so the templates cover ints, counters, flags, and plain pointers.

use super::{small_imm, VarCtx};
use crate::chunk::Chunk;
use crate::style::Style;
use rand::rngs::StdRng;
use rand::Rng;
use tiara_ir::{Opcode, Operand, Reg};

/// `int x = k;`
pub fn ctor(ctx: &VarCtx, rng: &mut StdRng, _style: &Style) -> Vec<Chunk> {
    let (r0, _) = ctx.scratch();
    let mut c = Chunk::new();
    let f = ctx.fields(&mut c);
    if rng.random_bool(0.5) {
        c.mov(f.at(0), small_imm(rng));
    } else {
        c.mov(Operand::reg(r0), small_imm(rng));
        c.mov(f.at(0), Operand::reg(r0));
    }
    vec![c]
}

/// `x += k;` (or `-=`, `*=` …) — load, operate, store back.
pub fn arith(ctx: &VarCtx, rng: &mut StdRng) -> Vec<Chunk> {
    let (r0, _) = ctx.scratch();
    let mut c = Chunk::new();
    let f = ctx.fields(&mut c);
    c.mov(Operand::reg(r0), f.at(0));
    match rng.random_range(0..4) {
        0 => c.add(Operand::reg(r0), small_imm(rng)),
        1 => c.sub(Operand::reg(r0), small_imm(rng)),
        2 => c.inc(Operand::reg(r0)),
        _ => c.op(Opcode::Shl, tiara_ir::BinOp::Shl, Operand::reg(r0), Operand::imm(1)),
    }
    c.mov(f.at(0), Operand::reg(r0));
    vec![c]
}

/// `if (x < k) …`
pub fn compare(ctx: &VarCtx, rng: &mut StdRng) -> Vec<Chunk> {
    let (r0, _) = ctx.scratch();
    let mut c = Chunk::new();
    let f = ctx.fields(&mut c);
    let skip = c.label();
    if rng.random_bool(0.5) {
        c.mov(Operand::reg(r0), f.at(0));
        c.cmp(Operand::reg(r0), small_imm(rng));
    } else {
        c.cmp(f.at(0), small_imm(rng));
    }
    c.jump(Opcode::Jge, skip);
    c.mov(Operand::reg(Reg::Eax), small_imm(rng));
    c.bind(skip);
    vec![c]
}

/// `g(x);` — push the value, call something opaque.
pub fn pass_to_func(ctx: &VarCtx, _rng: &mut StdRng) -> Vec<Chunk> {
    let mut c = Chunk::new();
    let f = ctx.fields(&mut c);
    c.push(f.at(0));
    c.call_extern(tiara_ir::ExternKind::Other);
    c.clean_args(1);
    vec![c]
}

/// `y = x;` — copy to an unrelated global.
pub fn copy_out(ctx: &VarCtx, rng: &mut StdRng) -> Vec<Chunk> {
    let (r0, _) = ctx.scratch();
    let sink = 0x7C000u64 + (rng.random_range(0..256u64) << 5);
    let mut c = Chunk::new();
    let f = ctx.fields(&mut c);
    c.mov(Operand::reg(r0), f.at(0));
    c.mov(Operand::mem_abs(sink, 0), Operand::reg(r0));
    vec![c]
}

/// `for (…; x < n; …)` — a counting loop over the variable.
pub fn count_loop(ctx: &VarCtx, rng: &mut StdRng, style: &Style) -> Vec<Chunk> {
    let (r0, _) = ctx.scratch();
    let n = rng.random_range(2..10i64);
    let mut c = Chunk::new();
    let f = ctx.fields(&mut c);
    c.mov(Operand::reg(r0), f.at(0));
    let top = c.label();
    let done = c.label();
    c.bind(top);
    if style.loop_down {
        c.dec(Operand::reg(r0));
        c.test(Operand::reg(r0), Operand::reg(r0));
        c.jump(Opcode::Je, done);
    } else {
        c.inc(Operand::reg(r0));
        c.cmp(Operand::reg(r0), Operand::imm(n));
        c.jump(Opcode::Jae, done);
    }
    c.jump(Opcode::Jmp, top);
    c.bind(done);
    c.mov(f.at(0), Operand::reg(r0));
    vec![c]
}

/// Picks a random primitive operation, biased by the project's habits.
pub fn random_op(ctx: &VarCtx, rng: &mut StdRng, style: &Style) -> Vec<Chunk> {
    let w = super::op_weights(style, 4, &[3, 3, 1, 2, 1]);
    match super::weighted_pick(rng, &w) {
        0 => arith(ctx, rng),
        1 => compare(ctx, rng),
        2 => pass_to_func(ctx, rng),
        3 => copy_out(ctx, rng),
        _ => count_loop(ctx, rng, style),
    }
}
