//! `std::map<K, V>` operation templates.
//!
//! MSVC x86 layout: `{ _Myhead: node* @ +0, _Mysize @ +4 }` with red-black
//! tree nodes `{ _Left @ +0, _Parent @ +4, _Right @ +8, _Color/_Isnil @ +12,
//! _Key @ +16, _Val @ +20 }`. The behavioral signature: insertion *walks*
//! the tree comparing keys before buying a node and rebalancing — far more
//! branching per element than either sequential container.

use super::{small_imm, VarCtx};
use crate::chunk::Chunk;
use crate::style::Style;
use rand::rngs::StdRng;
use rand::Rng;
use tiara_ir::{Opcode, Operand, Reg};

/// The shared out-of-line tree-node allocator.
pub const TREE_BUYNODE: &str = "std::_Tree_buynode";
/// The shared out-of-line rebalancing routine (rotations, recoloring).
pub const TREE_REBALANCE: &str = "std::_Tree_rebalance";

/// `std::map<K,V> m;` — buy the sentinel head, zero the size.
pub fn ctor(ctx: &VarCtx, rng: &mut StdRng, style: &Style) -> Vec<Chunk> {
    let (r0, _) = ctx.scratch();
    let mut c = Chunk::new();
    let f = ctx.fields(&mut c);
    if style.inline_allocators {
        // Inlined head allocation: malloc + mark _Isnil.
        c.push(Operand::imm(24));
        c.call_extern(tiara_ir::ExternKind::Malloc);
        c.clean_args(1);
        c.mov(Operand::mem_reg(Reg::Eax, 12), Operand::imm(1));
        c.mov(Operand::mem_reg(Reg::Eax, 4), Operand::reg(Reg::Eax));
    } else {
        c.push(Operand::imm(1)); // _Isnil = true for the head
        c.push(Operand::imm(0));
        c.call(TREE_BUYNODE);
        c.clean_args(2);
    }
    c.mov(f.at(0), Operand::reg(Reg::Eax));
    if rng.random_bool(0.5) {
        c.zero(r0);
        c.mov(f.at(4), Operand::reg(r0));
    } else {
        c.mov(f.at(4), Operand::imm(0));
    }
    vec![c]
}

/// Emits the key-comparison tree walk shared by `insert`/`find`/`erase`.
/// Leaves the current node in `r1`.
fn tree_walk(c: &mut Chunk, ctx: &VarCtx, key: Operand) -> (Reg, Reg) {
    let (r0, r1) = ctx.scratch();
    let f = ctx.fields(c);
    c.mov(Operand::reg(r0), f.at(0)); // _Myhead            (ref, 0)
    c.mov(Operand::reg(r1), Operand::mem_reg(r0, 4)); // root = head->_Parent
    let top = c.label();
    let left = c.label();
    let done = c.label();
    c.bind(top);
    c.cmp(Operand::mem_reg(r1, 12), Operand::imm(1)); // _Isnil?
    c.jump(Opcode::Je, done);
    c.cmp(Operand::mem_reg(r1, 16), key); // compare keys
    c.jump(Opcode::Jl, left);
    c.mov(Operand::reg(r1), Operand::mem_reg(r1, 0)); // go left
    c.jump(Opcode::Jmp, top);
    c.bind(left);
    c.mov(Operand::reg(r1), Operand::mem_reg(r1, 8)); // go right
    c.jump(Opcode::Jmp, top);
    c.bind(done);
    (r0, r1)
}

/// `m.insert({k, v})` — walk, buy a node, rebalance, bump `_Mysize`.
pub fn insert(ctx: &VarCtx, rng: &mut StdRng, style: &Style) -> Vec<Chunk> {
    let key = small_imm(rng);

    let mut c1 = Chunk::new();
    let (_r0, r1) = tree_walk(&mut c1, ctx, key);
    // The attach point must travel to c2 through memory: the interleaver is
    // free to schedule another stream's chunks between c1 and c2, and those
    // clobber scratch registers.
    c1.mov(ctx.spill_slot(), Operand::reg(r1));

    let mut c2 = Chunk::new();
    if style.inline_allocators {
        c2.push(Operand::imm(24));
        c2.call_extern(tiara_ir::ExternKind::Malloc);
        c2.clean_args(1);
        c2.mov(Operand::reg(r1), ctx.spill_slot()); // reload the attach point
        c2.mov(Operand::mem_reg(Reg::Eax, 4), Operand::reg(r1)); // parent
        c2.mov(Operand::mem_reg(Reg::Eax, 16), key);
        c2.mov(Operand::mem_reg(Reg::Eax, 20), small_imm(rng));
        c2.mov(Operand::mem_reg(Reg::Eax, 12), Operand::imm(0)); // red
    } else {
        c2.push(small_imm(rng)); // value
        c2.push(key);
        c2.push(ctx.spill_slot()); // attach point
        c2.call(TREE_BUYNODE);
        c2.clean_args(3);
    }
    c2.mov(ctx.spill_slot(), Operand::reg(Reg::Eax)); // spill the new node

    let mut c3 = Chunk::new();
    let f3 = ctx.fields(&mut c3);
    c3.push(ctx.spill_slot()); // the new node
    c3.push(f3.at(0)); // _Myhead                        (ref, 0)
    c3.call(TREE_REBALANCE);
    c3.clean_args(2);

    let mut c4 = Chunk::new();
    let f4 = ctx.fields(&mut c4);
    let (r0b, _) = ctx.scratch();
    c4.mov(Operand::reg(r0b), f4.at(4)); // _Mysize        (ref, 4)
    c4.inc(Operand::reg(r0b));
    c4.mov(f4.at(4), Operand::reg(r0b));
    vec![c1, c2, c3, c4]
}

/// `it = m.find(k)` — the walk plus a hit test; no allocation.
pub fn find(ctx: &VarCtx, rng: &mut StdRng) -> Vec<Chunk> {
    let key = small_imm(rng);
    let mut c = Chunk::new();
    let (_r0, r1) = tree_walk(&mut c, ctx, key);
    let miss = c.label();
    c.cmp(Operand::mem_reg(r1, 16), key);
    c.jump(Opcode::Jne, miss);
    c.mov(Operand::reg(Reg::Eax), Operand::mem_reg(r1, 20)); // load the value
    c.bind(miss);
    vec![c]
}

/// `m.erase(k)` — walk, unlink, free, decrement `_Mysize`.
pub fn erase(ctx: &VarCtx, rng: &mut StdRng) -> Vec<Chunk> {
    let key = small_imm(rng);
    let mut c1 = Chunk::new();
    let (_r0, r1) = tree_walk(&mut c1, ctx, key);
    c1.push(Operand::reg(r1));
    c1.call_extern(tiara_ir::ExternKind::Free);
    c1.clean_args(1);

    let mut c2 = Chunk::new();
    let f2 = ctx.fields(&mut c2);
    let (r0b, _) = ctx.scratch();
    c2.mov(Operand::reg(r0b), f2.at(4));
    c2.dec(Operand::reg(r0b));
    c2.mov(f2.at(4), Operand::reg(r0b));
    vec![c1, c2]
}

/// `if (m.size() …)` — a size check.
pub fn size_check(ctx: &VarCtx, rng: &mut StdRng) -> Vec<Chunk> {
    let (r0, _) = ctx.scratch();
    let mut c = Chunk::new();
    let f = ctx.fields(&mut c);
    c.mov(Operand::reg(r0), f.at(4));
    let skip = c.label();
    c.test(Operand::reg(r0), Operand::reg(r0));
    c.jump(Opcode::Je, skip);
    c.mov(Operand::reg(Reg::Eax), Operand::reg(r0));
    c.bind(skip);
    let _ = rng;
    vec![c]
}

/// `for (auto &kv : m)` — leftmost descent then an in-order step.
pub fn iterate(ctx: &VarCtx, style: &Style) -> Vec<Chunk> {
    let (r0, r1) = ctx.scratch();
    let mut c = Chunk::new();
    let f = ctx.fields(&mut c);
    c.mov(Operand::reg(r0), f.at(0)); // _Myhead
    c.mov(Operand::reg(r1), Operand::mem_reg(r0, 4)); // root
    let top = c.label();
    let done = c.label();
    c.bind(top);
    c.cmp(Operand::mem_reg(r1, 12), Operand::imm(1));
    c.jump(Opcode::Je, done);
    c.mov(Operand::reg(Reg::Eax), Operand::mem_reg(r1, 20));
    if style.loop_down {
        c.test(Operand::reg(Reg::Eax), Operand::reg(Reg::Eax));
    } else {
        c.add(Operand::reg(Reg::Eax), Operand::imm(1));
    }
    c.mov(Operand::reg(r1), Operand::mem_reg(r1, 0)); // descend left
    c.jump(Opcode::Jmp, top);
    c.bind(done);
    vec![c]
}

/// Picks a random map operation, weighted towards `insert`/`find`, biased
/// further by the project's habits.
pub fn random_op(ctx: &VarCtx, rng: &mut StdRng, style: &Style) -> Vec<Chunk> {
    let w = super::op_weights(style, 3, &[4, 3, 1, 1, 1]);
    match super::weighted_pick(rng, &w) {
        0 => insert(ctx, rng, style),
        1 => find(ctx, rng),
        2 => erase(ctx, rng),
        3 => size_check(ctx, rng),
        _ => iterate(ctx, style),
    }
}
