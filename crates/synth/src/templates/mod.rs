//! Container operation templates: the x86 instruction sequences MSVC's STL
//! compiles container member functions into.
//!
//! Each template emits the *inlined* form of one source-level operation as a
//! list of [`Chunk`]s, the unit at which the generator interleaves adjacent
//! statements. The shapes are modelled on the paper's own Figure 1/2 listing
//! and the public MSVC STL sources:
//!
//! * `std::list` — header `{_Myhead: node*, _Mysize: size_t}`; `push_back`
//!   calls `_Buynode` (malloc + link), bumps `_Mysize` with an overflow check
//!   that reaches `_Xlength_error` through an import, then relinks.
//! * `std::vector` — header `{_Myfirst, _Mylast, _Myend}`; `push_back` has a
//!   fast path storing through `_Mylast` and a slow path calling a
//!   reallocation helper that both `malloc`s and `free`s.
//! * `std::map` — header `{_Myhead: node*, _Mysize}`; `insert` walks the
//!   red-black tree, buys a node, rebalances, and bumps `_Mysize`.
//! * primitives — direct loads/stores/arithmetic on the variable.

pub mod deque;
pub mod list;
pub mod map;
pub mod primitive;
pub mod set;
pub mod vector;

use crate::chunk::Chunk;
use crate::style::Style;
use rand::rngs::StdRng;
use rand::Rng;
use tiara_ir::{ContainerClass, Operand, Reg};

/// Where a generated variable lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarPlace {
    /// A global at an absolute address.
    Global(u64),
    /// A frame slot at an `ebp`-relative offset.
    Stack(i64),
}

/// Everything a template needs to emit code for one variable.
#[derive(Debug, Clone)]
pub struct VarCtx {
    /// Where the variable lives.
    pub place: VarPlace,
    /// 0 for a `T` variable, 1 for a `T*` variable.
    pub ptr_level: u8,
    /// The scratch registers assigned to this variable's stream. Streams that
    /// get interleaved are assigned disjoint banks.
    pub bank: [Reg; 3],
    /// Emit folded absolute addresses for global field accesses.
    pub fold_global_offsets: bool,
    /// `ebp`-relative spill slot for values that must survive across chunk
    /// boundaries (e.g. a freshly allocated node pointer while interleaved
    /// code runs) — compilers spill exactly these.
    pub spill: i64,
}

/// A resolved way of addressing the variable's fields inside one chunk.
#[derive(Debug, Clone, Copy)]
pub struct FieldAccess {
    base: Option<Reg>,
    place: VarPlace,
    fold: bool,
}

impl FieldAccess {
    /// The operand for the field at byte offset `off`.
    pub fn at(&self, off: i64) -> Operand {
        match self.base {
            Some(r) => Operand::mem_reg(r, off),
            None => match self.place {
                VarPlace::Global(base) => {
                    if self.fold {
                        Operand::mem_abs(base.wrapping_add(off as u64), 0)
                    } else {
                        Operand::mem_abs(base, off)
                    }
                }
                VarPlace::Stack(s) => Operand::mem_reg(Reg::Ebp, s + off),
            },
        }
    }
}

impl VarCtx {
    /// The operand naming the variable's *address* (for `push &v` /
    /// `lea r, v`).
    pub fn addr(&self) -> Operand {
        match self.place {
            VarPlace::Global(base) => Operand::addr_of(base, 0),
            VarPlace::Stack(s) => Operand::Loc(tiara_ir::Loc::with_offset(Reg::Ebp, s)),
        }
    }

    /// Prepares field access in `chunk`: a `T*` variable first loads the
    /// pointer into the third bank register; a `T` variable addresses its
    /// fields directly.
    pub fn fields(&self, chunk: &mut Chunk) -> FieldAccess {
        if self.ptr_level >= 1 {
            let base = self.bank[2];
            chunk.mov(
                Operand::reg(base),
                FieldAccess { base: None, place: self.place, fold: self.fold_global_offsets }.at(0),
            );
            FieldAccess { base: Some(base), place: self.place, fold: self.fold_global_offsets }
        } else {
            FieldAccess { base: None, place: self.place, fold: self.fold_global_offsets }
        }
    }

    /// The two main scratch registers of the bank.
    pub fn scratch(&self) -> (Reg, Reg) {
        (self.bank[0], self.bank[1])
    }

    /// The operand of this variable's spill slot.
    pub fn spill_slot(&self) -> Operand {
        Operand::mem_reg(Reg::Ebp, self.spill)
    }
}

/// Emits the constructor of a variable of the given class.
pub fn ctor(class: ContainerClass, ctx: &VarCtx, rng: &mut StdRng, style: &Style) -> Vec<Chunk> {
    match class {
        ContainerClass::List => list::ctor(ctx, rng, style),
        ContainerClass::Vector => vector::ctor(ctx, rng),
        ContainerClass::Map => map::ctor(ctx, rng, style),
        ContainerClass::Deque => deque::ctor(ctx, rng),
        ContainerClass::Set => set::ctor(ctx, rng, style),
        ContainerClass::Primitive => primitive::ctor(ctx, rng, style),
    }
}

/// Emits one randomly chosen operation on a variable of the given class.
pub fn random_op(
    class: ContainerClass,
    ctx: &VarCtx,
    rng: &mut StdRng,
    style: &Style,
) -> Vec<Chunk> {
    match class {
        ContainerClass::List => list::random_op(ctx, rng, style),
        ContainerClass::Vector => vector::random_op(ctx, rng, style),
        ContainerClass::Map => map::random_op(ctx, rng, style),
        ContainerClass::Deque => deque::random_op(ctx, rng, style),
        ContainerClass::Set => set::random_op(ctx, rng, style),
        ContainerClass::Primitive => primitive::random_op(ctx, rng, style),
    }
}

/// A small random immediate for stored values / keys.
pub(crate) fn small_imm(rng: &mut StdRng) -> Operand {
    Operand::imm(rng.random_range(1..256))
}

/// Picks an index with the given weights (all weights must be positive).
pub(crate) fn weighted_pick(rng: &mut StdRng, weights: &[u64]) -> usize {
    let total: u64 = weights.iter().sum();
    let mut x = rng.random_range(0..total);
    for (i, &w) in weights.iter().enumerate() {
        if x < w {
            return i;
        }
        x -= w;
    }
    weights.len() - 1
}

/// Combines a base operation frequency with the project's habit weight
/// (see [`Style::op_weight`]).
pub(crate) fn op_weights(style: &Style, class_tag: u64, base: &[u64]) -> Vec<u64> {
    base.iter().enumerate().map(|(k, &b)| b * style.op_weight(class_tag, k as u64, 4)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiara_ir::MemAddr;

    fn gctx(fold: bool) -> VarCtx {
        VarCtx {
            place: VarPlace::Global(0x74404),
            ptr_level: 0,
            bank: [Reg::Esi, Reg::Ebx, Reg::Edi],
            fold_global_offsets: fold,
            spill: -4,
        }
    }

    #[test]
    fn folded_global_fields() {
        let mut c = Chunk::new();
        let f = gctx(true).fields(&mut c);
        assert!(c.is_empty(), "level-0 variables need no base load");
        assert_eq!(f.at(4).deref_mem(), Some((MemAddr(0x74408), 0)));
    }

    #[test]
    fn symbolic_global_fields() {
        let mut c = Chunk::new();
        let f = gctx(false).fields(&mut c);
        assert_eq!(f.at(4).deref_mem(), Some((MemAddr(0x74404), 4)));
    }

    #[test]
    fn stack_fields_are_frame_relative() {
        let ctx = VarCtx {
            place: VarPlace::Stack(-0x18),
            ptr_level: 0,
            bank: [Reg::Esi, Reg::Ebx, Reg::Edi],
            fold_global_offsets: true,
            spill: -4,
        };
        let mut c = Chunk::new();
        let f = ctx.fields(&mut c);
        assert_eq!(f.at(4).deref_reg(), Some((Reg::Ebp, -0x14)));
    }

    #[test]
    fn inline_allocator_style_avoids_helper_calls() {
        use crate::chunk::Micro;
        use crate::style::Style;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let ctx = gctx(true);

        let inline_style = Style { inline_allocators: true, ..Style::default() };
        let chunks = super::list::push_back(&ctx, &mut rng, &inline_style);
        let has_named_call = chunks.iter().any(|c| {
            // Inspect through emission: replay into a builder and look for
            // unresolved named calls — simpler: check the chunk debug repr.
            format!("{c:?}").contains("CallNamed")
        });
        assert!(!has_named_call, "inlined push_back must not call _Buynode");
        let mallocs =
            chunks.iter().map(|c| format!("{c:?}").matches("Malloc").count()).sum::<usize>();
        assert!(mallocs >= 1, "the inlined body still allocates");

        let outline_style = Style { inline_allocators: false, ..Style::default() };
        let chunks = super::list::push_back(&ctx, &mut rng, &outline_style);
        assert!(
            chunks.iter().any(|c| format!("{c:?}").contains("CallNamed")),
            "out-of-line push_back calls _Buynode"
        );
        let _ = Micro::Bind(crate::chunk::Chunk::new().label());
    }

    #[test]
    fn new_vector_ops_emit_nonempty_chunks() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let ctx = gctx(false);
        let style = crate::style::Style::default();
        for chunks in [
            super::vector::insert_mid(&ctx, &mut rng, &style),
            super::vector::assign_from(&ctx, &mut rng),
        ] {
            assert!(!chunks.is_empty());
            assert!(chunks.iter().all(|c| !c.is_empty()));
        }
    }

    #[test]
    fn op_weights_are_positive_and_project_dependent() {
        let a = crate::style::Style::for_project(0, 7);
        let b = crate::style::Style::for_project(1, 7);
        let base = [5u64, 1, 2, 1];
        let wa = super::op_weights(&a, 1, &base);
        let wb = super::op_weights(&b, 1, &base);
        assert!(wa.iter().all(|&w| w >= 1));
        assert_ne!(wa, wb, "different projects have different habits");
    }

    #[test]
    fn pointer_variable_loads_base_first() {
        let ctx = VarCtx { ptr_level: 1, ..gctx(true) };
        let mut c = Chunk::new();
        let f = ctx.fields(&mut c);
        assert_eq!(c.len(), 1, "one base load emitted");
        assert_eq!(f.at(8).deref_reg(), Some((Reg::Edi, 8)));
    }
}
