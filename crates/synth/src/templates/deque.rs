//! `std::deque<T>` operation templates (extension label).
//!
//! MSVC x86 layout: `{ _Map: T** @ +0, _Mapsize @ +4, _Myoff @ +8,
//! _Mysize @ +12 }` — a growable array of pointers to fixed-size element
//! blocks. The behavioral signature separating it from `std::vector`:
//! element access goes through a *double* indirection (map → block →
//! element), growth allocates new *blocks* without copying elements, and
//! only the pointer map itself is ever reallocated.

use super::{small_imm, VarCtx};
use crate::chunk::Chunk;
use crate::style::Style;
use rand::rngs::StdRng;
use rand::Rng;
use tiara_ir::{Opcode, Operand, Reg};

/// The shared out-of-line map-growth helper (mallocs a bigger pointer map,
/// copies the block pointers, frees the old map).
pub const GROWMAP: &str = "std::deque::_Growmap";

/// `std::deque<T> d;` — zero the four header fields.
pub fn ctor(ctx: &VarCtx, rng: &mut StdRng) -> Vec<Chunk> {
    let (r0, _) = ctx.scratch();
    let mut c = Chunk::new();
    let f = ctx.fields(&mut c);
    if rng.random_bool(0.6) {
        c.zero(r0);
        for off in [0, 4, 8, 12] {
            c.mov(f.at(off), Operand::reg(r0));
        }
    } else {
        for off in [0, 4, 8, 12] {
            c.mov(f.at(off), Operand::imm(0));
        }
    }
    vec![c]
}

/// `d.push_back(x)` — locate the tail block via the map, allocating a fresh
/// block when the tail is full; store; bump `_Mysize`.
pub fn push_back(ctx: &VarCtx, rng: &mut StdRng) -> Vec<Chunk> {
    let (r0, r1) = ctx.scratch();
    let val = small_imm(rng);
    let mut c = Chunk::new();
    let f = ctx.fields(&mut c);
    let have_block = c.label();
    // r0 = _Myoff + _Mysize (the element index of the new slot).
    c.mov(Operand::reg(r0), f.at(8));
    c.op(Opcode::Add, tiara_ir::BinOp::Add, Operand::reg(r0), f.at(12));
    // r1 = block index = r0 >> 2 (4 elements per block).
    c.mov(Operand::reg(r1), Operand::reg(r0));
    c.op(Opcode::Shr, tiara_ir::BinOp::Shr, Operand::reg(r1), Operand::imm(2));
    // eax = _Map[r1] (first indirection).
    c.mov(Operand::reg(Reg::Eax), f.at(0));
    c.op(Opcode::Shl, tiara_ir::BinOp::Shl, Operand::reg(r1), Operand::imm(2));
    c.op(Opcode::Add, tiara_ir::BinOp::Add, Operand::reg(Reg::Eax), Operand::reg(r1));
    c.mov(Operand::reg(Reg::Edx), Operand::mem_reg(Reg::Eax, 0));
    c.test(Operand::reg(Reg::Edx), Operand::reg(Reg::Edx));
    c.jump(Opcode::Jne, have_block);
    // Allocate a fresh 16-byte block and hang it in the map.
    c.push(Operand::imm(16));
    c.call_extern(tiara_ir::ExternKind::Malloc);
    c.clean_args(1);
    c.mov(Operand::reg(Reg::Edx), Operand::reg(Reg::Eax));
    c.bind(have_block);
    // Store the element (second indirection) and bump _Mysize.
    c.mov(Operand::mem_reg(Reg::Edx, 0), val);
    let mut c2 = Chunk::new();
    let f2 = ctx.fields(&mut c2);
    c2.mov(Operand::reg(r0), f2.at(12));
    c2.inc(Operand::reg(r0));
    c2.mov(f2.at(12), Operand::reg(r0));
    vec![c, c2]
}

/// `d.push_front(x)` — decrement `_Myoff`, store through the head block.
pub fn push_front(ctx: &VarCtx, rng: &mut StdRng) -> Vec<Chunk> {
    let (r0, r1) = ctx.scratch();
    let mut c = Chunk::new();
    let f = ctx.fields(&mut c);
    c.mov(Operand::reg(r0), f.at(8)); // _Myoff
    c.dec(Operand::reg(r0));
    c.mov(f.at(8), Operand::reg(r0));
    c.mov(Operand::reg(r1), f.at(0)); // _Map
    c.mov(Operand::reg(Reg::Eax), Operand::mem_reg(r1, 0)); // head block
    c.mov(Operand::mem_reg(Reg::Eax, 0), small_imm(rng));
    let mut c2 = Chunk::new();
    let f2 = ctx.fields(&mut c2);
    c2.mov(Operand::reg(r0), f2.at(12));
    c2.inc(Operand::reg(r0));
    c2.mov(f2.at(12), Operand::reg(r0));
    vec![c, c2]
}

/// `d.pop_front()` — advance `_Myoff`, shrink `_Mysize`.
pub fn pop_front(ctx: &VarCtx, _rng: &mut StdRng) -> Vec<Chunk> {
    let (r0, r1) = ctx.scratch();
    let mut c = Chunk::new();
    let f = ctx.fields(&mut c);
    c.mov(Operand::reg(r0), f.at(8));
    c.inc(Operand::reg(r0));
    c.mov(f.at(8), Operand::reg(r0));
    c.mov(Operand::reg(r1), f.at(12));
    c.dec(Operand::reg(r1));
    c.mov(f.at(12), Operand::reg(r1));
    vec![c]
}

/// `x = d[i]` — the double indirection: map, then block, then element.
pub fn index_read(ctx: &VarCtx, rng: &mut StdRng) -> Vec<Chunk> {
    let (r0, r1) = ctx.scratch();
    let idx = rng.random_range(0..16i64);
    let mut c = Chunk::new();
    let f = ctx.fields(&mut c);
    c.mov(Operand::reg(r0), f.at(8)); // _Myoff
    c.add(Operand::reg(r0), Operand::imm(idx));
    c.mov(Operand::reg(r1), f.at(0)); // _Map
    c.mov(Operand::reg(Reg::Eax), Operand::mem_reg(r1, (idx / 4) * 4)); // block
    c.mov(Operand::reg(Reg::Edx), Operand::mem_reg(Reg::Eax, (idx % 4) * 4)); // element
    c.add(Operand::reg(Reg::Edx), Operand::imm(1));
    vec![c]
}

/// `if (d.size() …)` — check `_Mysize`.
pub fn size_check(ctx: &VarCtx, rng: &mut StdRng) -> Vec<Chunk> {
    let (r0, _) = ctx.scratch();
    let mut c = Chunk::new();
    let f = ctx.fields(&mut c);
    let skip = c.label();
    c.mov(Operand::reg(r0), f.at(12));
    c.cmp(Operand::reg(r0), small_imm(rng));
    c.jump(Opcode::Jae, skip);
    c.mov(Operand::reg(Reg::Eax), Operand::reg(r0));
    c.bind(skip);
    vec![c]
}

/// Grow the block map via the shared helper (malloc + copy + free, but of
/// *pointers*, not elements).
pub fn grow_map(ctx: &VarCtx, _rng: &mut StdRng) -> Vec<Chunk> {
    let mut c = Chunk::new();
    let f = ctx.fields(&mut c);
    let enough = c.label();
    let (r0, r1) = ctx.scratch();
    c.mov(Operand::reg(r0), f.at(4)); // _Mapsize
    c.mov(Operand::reg(r1), f.at(12)); // _Mysize
    c.op(Opcode::Shr, tiara_ir::BinOp::Shr, Operand::reg(r1), Operand::imm(2));
    c.cmp(Operand::reg(r1), Operand::reg(r0));
    c.jump(Opcode::Jb, enough);
    c.push(ctx.addr());
    c.call(GROWMAP);
    c.clean_args(1);
    c.bind(enough);
    vec![c]
}

/// `for (auto &x : d)` — walk the index range through the map.
pub fn iterate(ctx: &VarCtx, style: &Style) -> Vec<Chunk> {
    let (r0, r1) = ctx.scratch();
    let mut c = Chunk::new();
    let f = ctx.fields(&mut c);
    c.mov(Operand::reg(r0), f.at(8)); // cursor = _Myoff
    c.mov(Operand::reg(r1), f.at(8));
    c.op(Opcode::Add, tiara_ir::BinOp::Add, Operand::reg(r1), f.at(12)); // end
    let top = c.label();
    let done = c.label();
    c.bind(top);
    c.cmp(Operand::reg(r0), Operand::reg(r1));
    c.jump(Opcode::Jae, done);
    c.mov(Operand::reg(Reg::Eax), f.at(0)); // _Map
    c.mov(Operand::reg(Reg::Edx), Operand::mem_reg(Reg::Eax, 0)); // a block
    c.mov(Operand::reg(Reg::Eax), Operand::mem_reg(Reg::Edx, 0)); // an element
    if style.loop_down {
        c.test(Operand::reg(Reg::Eax), Operand::reg(Reg::Eax));
    } else {
        c.add(Operand::reg(Reg::Eax), Operand::imm(1));
    }
    c.inc(Operand::reg(r0));
    c.jump(Opcode::Jmp, top);
    c.bind(done);
    vec![c]
}

/// Picks a random deque operation, weighted towards the push paths.
pub fn random_op(ctx: &VarCtx, rng: &mut StdRng, style: &Style) -> Vec<Chunk> {
    let w = super::op_weights(style, 5, &[4, 2, 1, 2, 1, 1, 1]);
    match super::weighted_pick(rng, &w) {
        0 => push_back(ctx, rng),
        1 => push_front(ctx, rng),
        2 => pop_front(ctx, rng),
        3 => index_read(ctx, rng),
        4 => size_check(ctx, rng),
        5 => grow_map(ctx, rng),
        _ => iterate(ctx, style),
    }
}
