//! `std::set<T>` operation templates (extension label).
//!
//! MSVC implements `std::set` on the same `_Tree` machinery as `std::map`:
//! header `{ _Myhead @ +0, _Mysize @ +4 }`, red-black nodes
//! `{ _Left @ +0, _Parent @ +4, _Right @ +8, _Color/_Isnil @ +12,
//! _Key @ +16 }` — but the node carries *no mapped value* (20-byte nodes vs
//! the map's 24). The separation from `std::map` is therefore subtle by
//! design: same walks, same rebalancing, smaller allocations and no value
//! loads at `+20`.

use super::{small_imm, VarCtx};
use crate::chunk::Chunk;
use crate::style::Style;
use rand::rngs::StdRng;
use rand::Rng;
use tiara_ir::{Opcode, Operand, Reg};

/// The shared out-of-line node allocator for value-less tree nodes.
pub const SET_BUYNODE: &str = "std::_Tree_buynode_set";

/// `std::set<T> s;` — buy the sentinel head, zero the size.
pub fn ctor(ctx: &VarCtx, rng: &mut StdRng, style: &Style) -> Vec<Chunk> {
    let (r0, _) = ctx.scratch();
    let mut c = Chunk::new();
    let f = ctx.fields(&mut c);
    if style.inline_allocators {
        c.push(Operand::imm(20));
        c.call_extern(tiara_ir::ExternKind::Malloc);
        c.clean_args(1);
        c.mov(Operand::mem_reg(Reg::Eax, 12), Operand::imm(1)); // _Isnil
    } else {
        c.push(Operand::imm(0));
        c.call(SET_BUYNODE);
        c.clean_args(1);
    }
    c.mov(f.at(0), Operand::reg(Reg::Eax));
    if rng.random_bool(0.5) {
        c.zero(r0);
        c.mov(f.at(4), Operand::reg(r0));
    } else {
        c.mov(f.at(4), Operand::imm(0));
    }
    vec![c]
}

/// The key-comparison walk; leaves the current node in the second scratch
/// register. Identical shape to the map walk — that is the point.
fn tree_walk(c: &mut Chunk, ctx: &VarCtx, key: Operand) -> (Reg, Reg) {
    let (r0, r1) = ctx.scratch();
    let f = ctx.fields(c);
    c.mov(Operand::reg(r0), f.at(0)); // _Myhead
    c.mov(Operand::reg(r1), Operand::mem_reg(r0, 4)); // root
    let top = c.label();
    let left = c.label();
    let done = c.label();
    c.bind(top);
    c.cmp(Operand::mem_reg(r1, 12), Operand::imm(1)); // _Isnil?
    c.jump(Opcode::Je, done);
    c.cmp(Operand::mem_reg(r1, 16), key);
    c.jump(Opcode::Jl, left);
    c.mov(Operand::reg(r1), Operand::mem_reg(r1, 0));
    c.jump(Opcode::Jmp, top);
    c.bind(left);
    c.mov(Operand::reg(r1), Operand::mem_reg(r1, 8));
    c.jump(Opcode::Jmp, top);
    c.bind(done);
    (r0, r1)
}

/// `s.insert(k)` — walk, buy a 20-byte key-only node, rebalance, bump size.
pub fn insert(ctx: &VarCtx, rng: &mut StdRng, style: &Style) -> Vec<Chunk> {
    let key = small_imm(rng);
    let mut c1 = Chunk::new();
    let (_r0, r1) = tree_walk(&mut c1, ctx, key);
    // The attach point must travel to c2 through memory: the interleaver is
    // free to schedule another stream's chunks between c1 and c2, and those
    // clobber scratch registers.
    c1.mov(ctx.spill_slot(), Operand::reg(r1));

    let mut c2 = Chunk::new();
    if style.inline_allocators {
        c2.push(Operand::imm(20));
        c2.call_extern(tiara_ir::ExternKind::Malloc);
        c2.clean_args(1);
        c2.mov(Operand::reg(r1), ctx.spill_slot()); // reload the attach point
        c2.mov(Operand::mem_reg(Reg::Eax, 4), Operand::reg(r1)); // parent
        c2.mov(Operand::mem_reg(Reg::Eax, 16), key);
        c2.mov(Operand::mem_reg(Reg::Eax, 12), Operand::imm(0)); // red
    } else {
        c2.push(key);
        c2.call(SET_BUYNODE);
        c2.clean_args(1);
        c2.mov(Operand::reg(r1), ctx.spill_slot()); // reload the attach point
        c2.mov(Operand::mem_reg(Reg::Eax, 4), Operand::reg(r1));
    }
    c2.mov(ctx.spill_slot(), Operand::reg(Reg::Eax));

    // Rebalance through the shared tree helper, then bump _Mysize.
    let mut c3 = Chunk::new();
    let f3 = ctx.fields(&mut c3);
    c3.push(ctx.spill_slot());
    c3.push(f3.at(0));
    c3.call(crate::templates::map::TREE_REBALANCE);
    c3.clean_args(2);

    let mut c4 = Chunk::new();
    let f4 = ctx.fields(&mut c4);
    let (r0b, _) = ctx.scratch();
    c4.mov(Operand::reg(r0b), f4.at(4));
    c4.inc(Operand::reg(r0b));
    c4.mov(f4.at(4), Operand::reg(r0b));
    vec![c1, c2, c3, c4]
}

/// `s.contains(k)` — the walk plus a hit test; note there is no value load.
pub fn contains(ctx: &VarCtx, rng: &mut StdRng) -> Vec<Chunk> {
    let key = small_imm(rng);
    let mut c = Chunk::new();
    let (_r0, r1) = tree_walk(&mut c, ctx, key);
    let miss = c.label();
    c.cmp(Operand::mem_reg(r1, 16), key);
    c.jump(Opcode::Jne, miss);
    c.mov(Operand::reg(Reg::Eax), Operand::imm(1));
    c.bind(miss);
    vec![c]
}

/// `s.erase(k)` — walk, free the node, decrement `_Mysize`.
pub fn erase(ctx: &VarCtx, rng: &mut StdRng) -> Vec<Chunk> {
    let key = small_imm(rng);
    let mut c1 = Chunk::new();
    let (_r0, r1) = tree_walk(&mut c1, ctx, key);
    c1.push(Operand::reg(r1));
    c1.call_extern(tiara_ir::ExternKind::Free);
    c1.clean_args(1);

    let mut c2 = Chunk::new();
    let f2 = ctx.fields(&mut c2);
    let (r0b, _) = ctx.scratch();
    c2.mov(Operand::reg(r0b), f2.at(4));
    c2.dec(Operand::reg(r0b));
    c2.mov(f2.at(4), Operand::reg(r0b));
    vec![c1, c2]
}

/// `if (s.size() …)` — a size check.
pub fn size_check(ctx: &VarCtx, _rng: &mut StdRng) -> Vec<Chunk> {
    let (r0, _) = ctx.scratch();
    let mut c = Chunk::new();
    let f = ctx.fields(&mut c);
    let skip = c.label();
    c.mov(Operand::reg(r0), f.at(4));
    c.test(Operand::reg(r0), Operand::reg(r0));
    c.jump(Opcode::Je, skip);
    c.mov(Operand::reg(Reg::Eax), Operand::reg(r0));
    c.bind(skip);
    vec![c]
}

/// `for (auto &k : s)` — leftmost descent touching keys (no `+20` loads).
pub fn iterate(ctx: &VarCtx, style: &Style) -> Vec<Chunk> {
    let (r0, r1) = ctx.scratch();
    let mut c = Chunk::new();
    let f = ctx.fields(&mut c);
    c.mov(Operand::reg(r0), f.at(0));
    c.mov(Operand::reg(r1), Operand::mem_reg(r0, 4));
    let top = c.label();
    let done = c.label();
    c.bind(top);
    c.cmp(Operand::mem_reg(r1, 12), Operand::imm(1));
    c.jump(Opcode::Je, done);
    c.mov(Operand::reg(Reg::Eax), Operand::mem_reg(r1, 16)); // key
    if style.loop_down {
        c.test(Operand::reg(Reg::Eax), Operand::reg(Reg::Eax));
    } else {
        c.add(Operand::reg(Reg::Eax), Operand::imm(1));
    }
    c.mov(Operand::reg(r1), Operand::mem_reg(r1, 0));
    c.jump(Opcode::Jmp, top);
    c.bind(done);
    vec![c]
}

/// Picks a random set operation, weighted towards `insert`/`contains`.
pub fn random_op(ctx: &VarCtx, rng: &mut StdRng, style: &Style) -> Vec<Chunk> {
    let w = super::op_weights(style, 6, &[4, 3, 1, 1, 1]);
    match super::weighted_pick(rng, &w) {
        0 => insert(ctx, rng, style),
        1 => contains(ctx, rng),
        2 => erase(ctx, rng),
        3 => size_check(ctx, rng),
        _ => iterate(ctx, style),
    }
}
