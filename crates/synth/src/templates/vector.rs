//! `std::vector<T>` operation templates.
//!
//! MSVC x86 layout: `{ _Myfirst @ +0, _Mylast @ +4, _Myend @ +8 }`.
//! The behavioral signature the paper highlights: `push_back` *reallocates*
//! on growth — the slow path reaches both `malloc` and `free` (via
//! `_Emplace_realloc`), unlike `std::list` which only allocates.

use super::{small_imm, VarCtx};
use crate::chunk::Chunk;
use crate::style::Style;
use rand::rngs::StdRng;
use rand::Rng;
use tiara_ir::{Opcode, Operand, Reg};

/// The shared out-of-line growth helper (mallocs, copies, frees).
pub const EMPLACE_REALLOC: &str = "std::vector::_Emplace_realloc";

/// `std::vector<T> v;` — zero `_Myfirst`, `_Mylast`, `_Myend`.
pub fn ctor(ctx: &VarCtx, rng: &mut StdRng) -> Vec<Chunk> {
    let (r0, _) = ctx.scratch();
    let mut c = Chunk::new();
    let f = ctx.fields(&mut c);
    if rng.random_bool(0.6) {
        c.zero(r0);
        c.mov(f.at(0), Operand::reg(r0));
        c.mov(f.at(4), Operand::reg(r0));
        c.mov(f.at(8), Operand::reg(r0));
    } else {
        c.mov(f.at(0), Operand::imm(0));
        c.mov(f.at(4), Operand::imm(0));
        c.mov(f.at(8), Operand::imm(0));
    }
    vec![c]
}

/// `v.push_back(x)` — fast path stores through `_Mylast`; slow path calls
/// the reallocation helper.
pub fn push_back(ctx: &VarCtx, rng: &mut StdRng) -> Vec<Chunk> {
    let (r0, r1) = ctx.scratch();
    let val = small_imm(rng);
    let mut c = Chunk::new();
    let f = ctx.fields(&mut c);
    let slow = c.label();
    let done = c.label();
    c.mov(Operand::reg(r0), f.at(4)); // _Mylast        (ref, 4)
    c.mov(Operand::reg(r1), f.at(8)); // _Myend         (ref, 8)
    c.cmp(Operand::reg(r0), Operand::reg(r1));
    c.jump(Opcode::Je, slow);
    // Fast path: *(_Mylast) = x; _Mylast += 4.
    c.mov(Operand::mem_reg(r0, 0), val);
    c.add(Operand::reg(r0), Operand::imm(4));
    c.mov(f.at(4), Operand::reg(r0));
    c.jump(Opcode::Jmp, done);
    // Slow path: _Emplace_realloc(&v, x).
    c.bind(slow);
    c.push(val);
    c.push(ctx.addr());
    c.call(EMPLACE_REALLOC);
    c.clean_args(2);
    c.bind(done);
    vec![c]
}

/// `x = v[i]` — load `_Myfirst`, index off it.
pub fn index_read(ctx: &VarCtx, rng: &mut StdRng) -> Vec<Chunk> {
    let (r0, _) = ctx.scratch();
    let idx = rng.random_range(0..16i64);
    let mut c = Chunk::new();
    let f = ctx.fields(&mut c);
    c.mov(Operand::reg(r0), f.at(0)); // _Myfirst       (ref, 0)
    c.mov(Operand::reg(Reg::Eax), Operand::mem_reg(r0, idx * 4));
    c.add(Operand::reg(Reg::Eax), Operand::imm(1));
    vec![c]
}

/// `v[i] = x` — store through `_Myfirst`.
pub fn index_write(ctx: &VarCtx, rng: &mut StdRng) -> Vec<Chunk> {
    let (r0, _) = ctx.scratch();
    let idx = rng.random_range(0..16i64);
    let mut c = Chunk::new();
    let f = ctx.fields(&mut c);
    c.mov(Operand::reg(r0), f.at(0));
    c.mov(Operand::mem_reg(r0, idx * 4), small_imm(rng));
    vec![c]
}

/// `n = v.size()` — `(_Mylast - _Myfirst) >> 2`.
pub fn size(ctx: &VarCtx, _rng: &mut StdRng) -> Vec<Chunk> {
    let (r0, r1) = ctx.scratch();
    let mut c = Chunk::new();
    let f = ctx.fields(&mut c);
    c.mov(Operand::reg(r0), f.at(4)); // _Mylast
    c.mov(Operand::reg(r1), f.at(0)); // _Myfirst
    c.sub(Operand::reg(r0), Operand::reg(r1));
    c.op(Opcode::Sar, tiara_ir::BinOp::Shr, Operand::reg(r0), Operand::imm(2));
    vec![c]
}

/// `v.pop_back()` — `_Mylast -= 4`.
pub fn pop_back(ctx: &VarCtx, _rng: &mut StdRng) -> Vec<Chunk> {
    let (r0, _) = ctx.scratch();
    let mut c = Chunk::new();
    let f = ctx.fields(&mut c);
    c.mov(Operand::reg(r0), f.at(4));
    c.sub(Operand::reg(r0), Operand::imm(4));
    c.mov(f.at(4), Operand::reg(r0));
    vec![c]
}

/// `for (auto &x : v) …` — pointer-walk from `_Myfirst` to `_Mylast`.
pub fn iterate(ctx: &VarCtx, style: &Style) -> Vec<Chunk> {
    let (r0, r1) = ctx.scratch();
    let mut c = Chunk::new();
    let f = ctx.fields(&mut c);
    c.mov(Operand::reg(r0), f.at(0)); // cursor = _Myfirst
    c.mov(Operand::reg(r1), f.at(4)); // _Mylast
    let top = c.label();
    let done = c.label();
    c.bind(top);
    c.cmp(Operand::reg(r0), Operand::reg(r1));
    c.jump(Opcode::Jae, done);
    c.mov(Operand::reg(Reg::Eax), Operand::mem_reg(r0, 0));
    if style.loop_down {
        c.test(Operand::reg(Reg::Eax), Operand::reg(Reg::Eax));
    } else {
        c.add(Operand::reg(Reg::Eax), Operand::imm(3));
    }
    c.add(Operand::reg(r0), Operand::imm(4));
    c.jump(Opcode::Jmp, top);
    c.bind(done);
    vec![c]
}

/// `v.reserve(n)` — capacity check then the reallocation helper.
pub fn reserve(ctx: &VarCtx, rng: &mut StdRng) -> Vec<Chunk> {
    let (r0, r1) = ctx.scratch();
    let n = rng.random_range(8..64i64);
    let mut c = Chunk::new();
    let f = ctx.fields(&mut c);
    let enough = c.label();
    c.mov(Operand::reg(r0), f.at(8)); // _Myend
    c.mov(Operand::reg(r1), f.at(0)); // _Myfirst
    c.sub(Operand::reg(r0), Operand::reg(r1));
    c.cmp(Operand::reg(r0), Operand::imm(n * 4));
    c.jump(Opcode::Jae, enough);
    c.push(Operand::imm(n));
    c.push(ctx.addr());
    c.call(EMPLACE_REALLOC);
    c.clean_args(2);
    c.bind(enough);
    vec![c]
}

/// `v.clear()` — `_Mylast = _Myfirst`, guarded by the already-empty check
/// (reading `_Mylast` first also keeps the preceding op's header store live,
/// as a real optimizer's DSE would otherwise delete it).
pub fn clear(ctx: &VarCtx, _rng: &mut StdRng) -> Vec<Chunk> {
    let (r0, r1) = ctx.scratch();
    let mut c = Chunk::new();
    let f = ctx.fields(&mut c);
    let skip = c.label();
    c.mov(Operand::reg(r0), f.at(4)); // _Mylast       (ref, 4)
    c.mov(Operand::reg(r1), f.at(0)); // _Myfirst      (ref, 0)
    c.cmp(Operand::reg(r0), Operand::reg(r1));
    c.jump(Opcode::Je, skip);
    c.mov(f.at(4), Operand::reg(r1));
    c.bind(skip);
    vec![c]
}

/// `~vector()` — free the buffer, zero the header.
pub fn dtor(ctx: &VarCtx, _rng: &mut StdRng) -> Vec<Chunk> {
    let (r0, _) = ctx.scratch();
    let mut c = Chunk::new();
    let f = ctx.fields(&mut c);
    c.push(f.at(0));
    c.call_extern(tiara_ir::ExternKind::Free);
    c.clean_args(1);
    c.zero(r0);
    c.mov(f.at(0), Operand::reg(r0));
    c.mov(f.at(4), Operand::reg(r0));
    c.mov(f.at(8), Operand::reg(r0));
    vec![c]
}

/// `v.insert(v.begin() + i, x)` — shift the tail right by one element
/// (the memmove loop), then store. Contiguity is the signature: no other
/// container moves elements on insert.
pub fn insert_mid(ctx: &VarCtx, rng: &mut StdRng, style: &Style) -> Vec<Chunk> {
    let (r0, r1) = ctx.scratch();
    let idx = rng.random_range(0..8i64);
    let mut c = Chunk::new();
    let f = ctx.fields(&mut c);
    c.mov(Operand::reg(r0), f.at(4)); // cursor = _Mylast       (ref, 4)
    c.mov(Operand::reg(r1), f.at(0)); // _Myfirst               (ref, 0)
    c.add(Operand::reg(r1), Operand::imm(idx * 4)); // insertion point
    let top = c.label();
    let done = c.label();
    c.bind(top);
    c.cmp(Operand::reg(r0), Operand::reg(r1));
    c.jump(Opcode::Jbe, done);
    // *cursor = *(cursor - 1); --cursor (element shift).
    c.mov(Operand::reg(Reg::Eax), Operand::mem_reg(r0, -4));
    c.mov(Operand::mem_reg(r0, 0), Operand::reg(Reg::Eax));
    c.sub(Operand::reg(r0), Operand::imm(4));
    c.jump(Opcode::Jmp, top);
    c.bind(done);
    c.mov(Operand::mem_reg(r1, 0), small_imm(rng));
    // _Mylast += 4.
    let mut c2 = Chunk::new();
    let f2 = ctx.fields(&mut c2);
    c2.mov(Operand::reg(r0), f2.at(4));
    c2.add(Operand::reg(r0), Operand::imm(4));
    c2.mov(f2.at(4), Operand::reg(r0));
    let _ = style;
    vec![c, c2]
}

/// `v = w;` — copy assignment: free the old buffer, malloc a fresh one,
/// copy the source elements (heap churn like the growth path, but reading
/// another object).
pub fn assign_from(ctx: &VarCtx, rng: &mut StdRng) -> Vec<Chunk> {
    let (r0, r1) = ctx.scratch();
    let other = 0x7C800u64 + (rng.random_range(0..64u64) << 5);
    let mut c = Chunk::new();
    let f = ctx.fields(&mut c);
    c.push(f.at(0));
    c.call_extern(tiara_ir::ExternKind::Free);
    c.clean_args(1);
    c.push(Operand::imm(64));
    c.call_extern(tiara_ir::ExternKind::Malloc);
    c.clean_args(1);
    c.mov(f.at(0), Operand::reg(Reg::Eax));
    c.mov(Operand::reg(r0), Operand::reg(Reg::Eax));
    // Copy from the source vector's buffer.
    c.mov(Operand::reg(r1), Operand::mem_abs(other, 0));
    let top = c.label();
    let done = c.label();
    c.bind(top);
    c.cmp(Operand::reg(r1), Operand::mem_abs(other, 4));
    c.jump(Opcode::Jae, done);
    c.mov(Operand::reg(Reg::Edx), Operand::mem_reg(r1, 0));
    c.mov(Operand::mem_reg(r0, 0), Operand::reg(Reg::Edx));
    c.add(Operand::reg(r0), Operand::imm(4));
    c.add(Operand::reg(r1), Operand::imm(4));
    c.jump(Opcode::Jmp, top);
    c.bind(done);
    c.mov(f.at(4), Operand::reg(r0));
    vec![c]
}

/// Picks a random vector operation, weighted towards `push_back`, biased
/// further by the project's habits.
pub fn random_op(ctx: &VarCtx, rng: &mut StdRng, style: &Style) -> Vec<Chunk> {
    let w = super::op_weights(style, 2, &[5, 1, 1, 2, 1, 1, 1, 1, 1, 1]);
    match super::weighted_pick(rng, &w) {
        0 => push_back(ctx, rng),
        1 => index_read(ctx, rng),
        2 => index_write(ctx, rng),
        3 => size(ctx, rng),
        4 => pop_back(ctx, rng),
        5 => iterate(ctx, style),
        6 => reserve(ctx, rng),
        7 => insert_mid(ctx, rng, style),
        8 => assign_from(ctx, rng),
        _ => clear(ctx, rng),
    }
}
