//! `std::list<T>` operation templates.
//!
//! MSVC x86 layout: `{ _Myhead: _Nodeptr @ +0, _Mysize: size_t @ +4 }`;
//! nodes are `{ _Next @ +0, _Prev @ +4, _Myval @ +8 }`, all heap-allocated
//! through `_Buynode` (which is where the `malloc` lives — a list never
//! frees on insertion, the behavioral signature the paper contrasts with
//! `std::vector`).

use super::{small_imm, VarCtx};
use crate::chunk::Chunk;
use crate::style::Style;
use rand::rngs::StdRng;
use rand::Rng;
use tiara_ir::{Opcode, Operand};

/// The shared out-of-line node allocator (see `helpers.rs`).
pub const BUYNODE: &str = "std::_List_buynode";
/// The import slot of `_Xlength_error`, called indirectly on overflow.
pub const XLENGTH_SLOT: u64 = 0x73034;

/// `std::list<T> l;` — buy the sentinel node, zero the size.
pub fn ctor(ctx: &VarCtx, rng: &mut StdRng, style: &Style) -> Vec<Chunk> {
    let (r0, _) = ctx.scratch();
    let mut c = Chunk::new();
    let f = ctx.fields(&mut c);
    if style.inline_allocators {
        // Inlined _Buynode0: malloc the sentinel, self-link it.
        c.push(Operand::imm(12));
        c.call_extern(tiara_ir::ExternKind::Malloc);
        c.clean_args(1);
        let eax = Operand::reg(tiara_ir::Reg::Eax);
        c.mov(Operand::mem_reg(tiara_ir::Reg::Eax, 0), eax);
        c.mov(Operand::mem_reg(tiara_ir::Reg::Eax, 4), eax);
    } else {
        // _Myhead = _Buynode0(0, 0);
        c.push(Operand::imm(0));
        c.push(Operand::imm(0));
        c.call(BUYNODE);
        c.clean_args(2);
    }
    c.mov(f.at(0), Operand::reg(tiara_ir::Reg::Eax));
    // _Mysize = 0;
    if rng.random_bool(0.5) {
        c.zero(r0);
        c.mov(f.at(4), Operand::reg(r0));
    } else {
        c.mov(f.at(4), Operand::imm(0));
    }
    vec![c]
}

/// `l.push_back(v)` — the paper's running example: buy a node linked after
/// `_Myhead->_Prev`, increment `_Mysize` with an `_Xlength_error` overflow
/// check, then relink the neighbors.
pub fn push_back(ctx: &VarCtx, rng: &mut StdRng, style: &Style) -> Vec<Chunk> {
    let (r0, r1) = ctx.scratch();
    let val = small_imm(rng);

    // Chunk 1: node allocation — a _Buynode call, or its inlined body under
    // aggressive-inlining styles.
    let mut c1 = Chunk::new();
    let f = ctx.fields(&mut c1);
    c1.mov(Operand::reg(r0), f.at(0)); // esi <- _Myhead        (ref, 0)
    if style.inline_allocators {
        let edx = Operand::reg(tiara_ir::Reg::Edx);
        c1.push(Operand::imm(12));
        c1.call_extern(tiara_ir::ExternKind::Malloc);
        c1.clean_args(1);
        c1.mov(edx, Operand::mem_reg(r0, 4)); // _Myhead->_Prev (other, *)
        c1.mov(Operand::mem_reg(tiara_ir::Reg::Eax, 0), Operand::reg(r0));
        c1.mov(Operand::mem_reg(tiara_ir::Reg::Eax, 4), edx);
        c1.mov(Operand::mem_reg(tiara_ir::Reg::Eax, 8), val);
    } else {
        c1.push(val); // the value
        c1.push(Operand::mem_reg(r0, 4)); // _Myhead->_Prev     (other, *)
        c1.push(Operand::reg(r0)); // _Myhead                   (ref, 0)
        c1.call(BUYNODE);
        c1.clean_args(3);
    }
    c1.mov(ctx.spill_slot(), Operand::reg(tiara_ir::Reg::Eax)); // spill node*

    // Chunk 2: _Incsize(1) with overflow check.
    let mut c2 = Chunk::new();
    let f2 = ctx.fields(&mut c2);
    c2.mov(Operand::reg(r1), f2.at(4)); // ecx <- _Mysize        (ref, 4)
    let ok = c2.label();
    c2.cmp(Operand::reg(r1), Operand::imm(0x0FFF_FFFF));
    c2.jump(Opcode::Jb, ok);
    c2.push(Operand::addr_of(0x7A000u64 + (rng.random_range(0..64) << 4), 0)); // offset string
    c2.call_indirect(Operand::mem_abs(XLENGTH_SLOT, 0));
    c2.bind(ok);
    c2.inc(Operand::reg(r1));
    c2.mov(f2.at(4), Operand::reg(r1)); // _Mysize stored back

    // Chunk 3: relink — _Myhead->_Prev = node; node->_Next = _Myhead.
    let mut c3 = Chunk::new();
    let f3 = ctx.fields(&mut c3);
    c3.mov(Operand::reg(tiara_ir::Reg::Edx), ctx.spill_slot()); // edx <- new node
    c3.mov(Operand::reg(r0), f3.at(0)); // reload _Myhead        (ref, 0)
    c3.mov(Operand::mem_reg(r0, 4), Operand::reg(tiara_ir::Reg::Edx)); // via dep ptr
    c3.mov(Operand::mem_reg(tiara_ir::Reg::Edx, 0), Operand::reg(r0)); // node->_Next: through a non-dep reg (the paper's I18/I19)

    vec![c1, c2, c3]
}

/// `l.push_front(v)` — same shape with the mirror offsets.
pub fn push_front(ctx: &VarCtx, rng: &mut StdRng) -> Vec<Chunk> {
    let (r0, r1) = ctx.scratch();
    let val = small_imm(rng);
    let mut c1 = Chunk::new();
    let f = ctx.fields(&mut c1);
    c1.mov(Operand::reg(r0), f.at(0));
    c1.push(val);
    c1.push(Operand::reg(r0));
    c1.push(Operand::mem_reg(r0, 0)); // _Myhead->_Next
    c1.call(BUYNODE);
    c1.clean_args(3);
    c1.mov(ctx.spill_slot(), Operand::reg(tiara_ir::Reg::Eax));

    let mut c2 = Chunk::new();
    let f2 = ctx.fields(&mut c2);
    c2.mov(Operand::reg(r1), f2.at(4));
    c2.add(Operand::reg(r1), Operand::imm(1));
    c2.mov(f2.at(4), Operand::reg(r1));

    let mut c3 = Chunk::new();
    let f3 = ctx.fields(&mut c3);
    c3.mov(Operand::reg(tiara_ir::Reg::Eax), ctx.spill_slot());
    c3.mov(Operand::reg(r0), f3.at(0));
    c3.mov(Operand::mem_reg(r0, 0), Operand::reg(tiara_ir::Reg::Eax));
    vec![c1, c2, c3]
}

/// `l.pop_back()` — unlink the tail node and free it; `_Mysize -= 1`.
pub fn pop_back(ctx: &VarCtx, _rng: &mut StdRng) -> Vec<Chunk> {
    let (r0, r1) = ctx.scratch();
    let mut c1 = Chunk::new();
    let f = ctx.fields(&mut c1);
    c1.mov(Operand::reg(r0), f.at(0)); // _Myhead       (ref, 0)
    c1.mov(Operand::reg(r1), Operand::mem_reg(r0, 4)); // tail  (other)
    c1.mov(Operand::reg(tiara_ir::Reg::Eax), Operand::mem_reg(r1, 4)); // tail->_Prev
    c1.mov(Operand::mem_reg(r0, 4), Operand::reg(tiara_ir::Reg::Eax)); // relink via dep ptr
    c1.push(Operand::reg(r1));
    c1.call_extern(tiara_ir::ExternKind::Free);
    c1.clean_args(1);

    let mut c2 = Chunk::new();
    let f2 = ctx.fields(&mut c2);
    c2.mov(Operand::reg(r1), f2.at(4));
    c2.dec(Operand::reg(r1));
    c2.mov(f2.at(4), Operand::reg(r1));
    vec![c1, c2]
}

/// `if (l.size() > k) …` — a size check.
pub fn size_check(ctx: &VarCtx, rng: &mut StdRng) -> Vec<Chunk> {
    let (r0, _) = ctx.scratch();
    let mut c = Chunk::new();
    let f = ctx.fields(&mut c);
    c.mov(Operand::reg(r0), f.at(4)); // _Mysize        (ref, 4)
    let skip = c.label();
    c.cmp(Operand::reg(r0), small_imm(rng));
    c.jump(Opcode::Jae, skip);
    c.mov(Operand::reg(tiara_ir::Reg::Eax), Operand::reg(r0));
    c.bind(skip);
    vec![c]
}

/// `for (auto &x : l) …` — sentinel-terminated traversal.
pub fn iterate(ctx: &VarCtx, style: &Style) -> Vec<Chunk> {
    let (r0, r1) = ctx.scratch();
    let mut c = Chunk::new();
    let f = ctx.fields(&mut c);
    c.mov(Operand::reg(r0), f.at(0)); // _Myhead        (ref, 0)
    c.mov(Operand::reg(r1), Operand::mem_reg(r0, 0)); // first real node
    let top = c.label();
    let done = c.label();
    c.bind(top);
    c.cmp(Operand::reg(r1), Operand::reg(r0));
    c.jump(Opcode::Je, done);
    // touch the payload
    c.mov(Operand::reg(tiara_ir::Reg::Eax), Operand::mem_reg(r1, 8));
    if style.loop_down {
        c.test(Operand::reg(tiara_ir::Reg::Eax), Operand::reg(tiara_ir::Reg::Eax));
    } else {
        c.add(Operand::reg(tiara_ir::Reg::Eax), Operand::imm(1));
    }
    c.mov(Operand::reg(r1), Operand::mem_reg(r1, 0)); // next
    c.jump(Opcode::Jmp, top);
    c.bind(done);
    vec![c]
}

/// `l.clear()` — walk the nodes calling `free`, reset head/size.
pub fn clear(ctx: &VarCtx, _rng: &mut StdRng) -> Vec<Chunk> {
    let (r0, r1) = ctx.scratch();
    let mut c = Chunk::new();
    let f = ctx.fields(&mut c);
    c.mov(Operand::reg(r0), f.at(0));
    c.mov(Operand::reg(r1), Operand::mem_reg(r0, 0));
    let top = c.label();
    let done = c.label();
    c.bind(top);
    c.cmp(Operand::reg(r1), Operand::reg(r0));
    c.jump(Opcode::Je, done);
    c.push(Operand::mem_reg(r1, 0)); // save next
    c.push(Operand::reg(r1));
    c.call_extern(tiara_ir::ExternKind::Free);
    c.clean_args(1);
    c.pop(Operand::reg(r1));
    c.jump(Opcode::Jmp, top);
    c.bind(done);

    let mut c2 = Chunk::new();
    let f2 = ctx.fields(&mut c2);
    c2.mov(f2.at(4), Operand::imm(0));
    vec![c, c2]
}

/// Picks a random list operation, weighted towards `push_back` as in real
/// code, biased further by the project's habits.
pub fn random_op(ctx: &VarCtx, rng: &mut StdRng, style: &Style) -> Vec<Chunk> {
    let w = super::op_weights(style, 1, &[5, 1, 1, 2, 1, 1]);
    match super::weighted_pick(rng, &w) {
        0 => push_back(ctx, rng, style),
        1 => push_front(ctx, rng),
        2 => pop_back(ctx, rng),
        3 => size_check(ctx, rng),
        4 => iterate(ctx, style),
        _ => clear(ctx, rng),
    }
}
