//! Escape-through-call scenarios: labeled containers whose address crosses
//! a call boundary.
//!
//! Each scenario emits a *caller* that constructs a container in a frame
//! slot, passes its address to a dedicated *helper* (`lea` + `push` +
//! `call`, cdecl cleanup), and then keeps operating on the container after
//! the call returns. The helper mutates the container through the escaped
//! pointer and ends in an indirect call through an import slot — the shape
//! real logging/validation shims have — so an intra-procedural slice that
//! cuts at indirect calls ([`TsliceConfig::cut_indirect_calls`]) dies inside
//! the helper and never reaches the caller's far side. A slice driven by
//! mod-ref summaries (`TsliceConfig::use_call_summaries`) steps over the
//! call and keeps going, making these scenarios the ground truth for the
//! "with vs. without summaries" evaluation axis.
//!
//! Every third helper is self-recursive (guarded by a value loaded through
//! the escaped pointer), which exercises the summary analysis' SCC widening
//! on code the slicer actually consumes.
//!
//! Scenario count is [`TypeCounts::escape`](crate::TypeCounts). When it is
//! zero this module draws nothing from the RNG, so pre-existing specs
//! generate bit-identical binaries.
//!
//! [`TsliceConfig::cut_indirect_calls`]: ../tiara_slice/struct.TsliceConfig.html
//! [`TsliceConfig::use_call_summaries`]: ../tiara_slice/struct.TsliceConfig.html

use crate::style::Style;
use crate::templates::{ctor, random_op, VarCtx, VarPlace};
use rand::rngs::StdRng;
use rand::Rng;
use tiara_ir::{
    BinOp, ContainerClass, DebugInfo, InstKind, Opcode, Operand, ProgramBuilder, Reg, VarAddr,
};

/// Import slot of the opaque callback every escape helper tail-calls
/// (disjoint from `_Xlength_error` at `0x73034` and the string pool at
/// `0x7A000`).
pub const ESCAPE_IMPORT_SLOT: u64 = 0x7304C;

/// The container classes scenarios cycle through (primitives never take the
/// escape-through-call shape in the MSVC output the generator models).
pub const ESCAPE_CLASSES: [ContainerClass; 5] = [
    ContainerClass::List,
    ContainerClass::Vector,
    ContainerClass::Map,
    ContainerClass::Deque,
    ContainerClass::Set,
];

/// Frame offset of the escaping container in each scenario caller.
pub fn escape_slot_offset(style: &Style) -> i64 {
    if style.negative_locals {
        -0x20
    } else {
        8
    }
}

/// Emits `count` escape scenarios (one caller + one helper each), records
/// their labeled variables in `debug`, and appends the caller names to
/// `func_names` so `main` reaches them. Draws from `rng` only when
/// `count > 0`.
pub(crate) fn emit_scenarios(
    b: &mut ProgramBuilder,
    debug: &mut DebugInfo,
    rng: &mut StdRng,
    style: &Style,
    count: usize,
    func_names: &mut Vec<String>,
) {
    for i in 0..count {
        let class = ESCAPE_CLASSES[i % ESCAPE_CLASSES.len()];
        let recursive = i % 3 == 2;
        let caller = format!("esc_caller_{i:03}");
        let helper = format!("esc_helper_{i:03}");
        emit_caller(b, debug, rng, style, class, &caller, &helper);
        emit_helper(b, style, &helper, recursive);
        func_names.push(caller);
    }
}

/// The caller: construct the container, escape its address into `helper`,
/// then keep using it (the far side only a summary-driven slice reaches).
fn emit_caller(
    b: &mut ProgramBuilder,
    debug: &mut DebugInfo,
    rng: &mut StdRng,
    style: &Style,
    class: ContainerClass,
    caller: &str,
    helper: &str,
) {
    let func = b.begin_func(caller);
    b.inst(Opcode::Push, InstKind::Push { src: Operand::reg(Reg::Ebp) });
    b.inst(Opcode::Mov, InstKind::Mov { dst: Operand::reg(Reg::Ebp), src: Operand::reg(Reg::Esp) });
    b.inst(
        Opcode::Sub,
        InstKind::Op { op: BinOp::Sub, dst: Operand::reg(Reg::Esp), src: Operand::imm(0x40) },
    );

    let off = escape_slot_offset(style);
    debug.record(VarAddr::Stack { func, offset: off }, class, 0);
    let ctx = VarCtx {
        place: VarPlace::Stack(off),
        ptr_level: 0,
        bank: [Reg::Esi, Reg::Ebx, Reg::Edi],
        fold_global_offsets: style.fold_global_offsets,
        spill: -4,
    };

    // Near side: construct and touch the container before it escapes.
    for c in ctor(class, &ctx, rng, style) {
        c.emit(b);
    }
    for c in random_op(class, &ctx, rng, style) {
        c.emit(b);
    }

    // The escape: `lea eax, [v]; push eax; call helper; add esp, 4`.
    b.inst(Opcode::Lea, InstKind::Mov { dst: Operand::reg(Reg::Eax), src: ctx.addr() });
    b.inst(Opcode::Push, InstKind::Push { src: Operand::reg(Reg::Eax) });
    b.call_named(helper);
    b.inst(
        Opcode::Add,
        InstKind::Op { op: BinOp::Add, dst: Operand::reg(Reg::Esp), src: Operand::imm(4) },
    );

    // Far side: at least one more operation on the container. An
    // intra-procedural slice that died inside the helper never marks these.
    let far_ops = rng.random_range(style.ops_per_var.0..=style.ops_per_var.1).max(1);
    for _ in 0..far_ops {
        for c in random_op(class, &ctx, rng, style) {
            c.emit(b);
        }
    }

    if style.use_leave_epilogue {
        b.inst(
            Opcode::Leave,
            InstKind::Mov { dst: Operand::reg(Reg::Esp), src: Operand::reg(Reg::Ebp) },
        );
    } else {
        b.inst(
            Opcode::Mov,
            InstKind::Mov { dst: Operand::reg(Reg::Esp), src: Operand::reg(Reg::Ebp) },
        );
    }
    b.inst(Opcode::Pop, InstKind::Pop { dst: Operand::reg(Reg::Ebp) });
    b.ret();
    b.end_func();
}

/// The helper: mutate the container through the escaped pointer, optionally
/// recurse on it, then disappear into an indirect import call.
fn emit_helper(b: &mut ProgramBuilder, style: &Style, helper: &str, recursive: bool) {
    b.begin_func(helper);
    b.inst(Opcode::Push, InstKind::Push { src: Operand::reg(Reg::Ebp) });
    b.inst(Opcode::Mov, InstKind::Mov { dst: Operand::reg(Reg::Ebp), src: Operand::reg(Reg::Esp) });

    // Load the escaped pointer and bump a size-like header field through it.
    let ptr = if style.seed.is_multiple_of(2) { Reg::Ecx } else { Reg::Edx };
    b.inst(
        Opcode::Mov,
        InstKind::Mov { dst: Operand::reg(ptr), src: Operand::mem_reg(Reg::Ebp, 8) },
    );
    b.inst(
        Opcode::Mov,
        InstKind::Mov { dst: Operand::reg(Reg::Eax), src: Operand::mem_reg(ptr, 4) },
    );
    b.inst(
        Opcode::Add,
        InstKind::Op { op: BinOp::Add, dst: Operand::reg(Reg::Eax), src: Operand::imm(1) },
    );
    b.inst(
        Opcode::Mov,
        InstKind::Mov { dst: Operand::mem_reg(ptr, 4), src: Operand::reg(Reg::Eax) },
    );

    if recursive {
        // Re-escape the same pointer into ourselves, guarded by the header
        // value so the recursion is not statically unbounded.
        let done = b.new_label();
        b.inst(
            Opcode::Cmp,
            InstKind::Use { oprs: vec![Operand::reg(Reg::Eax), Operand::imm(0x40)] },
        );
        b.jump(Opcode::Jge, done);
        b.inst(Opcode::Push, InstKind::Push { src: Operand::reg(ptr) });
        b.call_named(helper);
        b.inst(
            Opcode::Add,
            InstKind::Op { op: BinOp::Add, dst: Operand::reg(Reg::Esp), src: Operand::imm(4) },
        );
        b.bind_label(done);
    }

    // The opaque tail every real logging shim has; with
    // `cut_indirect_calls` this is where an unsummarized slice dies.
    b.call_indirect(Operand::mem_abs(ESCAPE_IMPORT_SLOT, 0));

    b.inst(Opcode::Pop, InstKind::Pop { dst: Operand::reg(Reg::Ebp) });
    b.ret();
    b.end_func();
}
