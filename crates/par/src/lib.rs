//! # tiara-par
//!
//! The shared parallel executor of the TIARA workspace: one place that
//! decides how many worker threads the process uses (`--threads`,
//! `TIARA_THREADS`, or `available_parallelism`) and a small set of
//! data-parallel primitives that every hot path — TSLICE slicing, feature
//! encoding, and the GCN kernels — runs on.
//!
//! Built entirely on `std::thread::scope`: no external dependencies, no
//! unsafe code, no persistent pool to manage. Workers steal blocks of work
//! from a shared queue, so uneven block costs balance dynamically, and every
//! primitive is *deterministic*: results are a pure function of the input,
//! independent of the thread count (see [`Executor`]).
//!
//! ## Example
//!
//! ```
//! use tiara_par::Executor;
//!
//! // Order-preserving parallel map (the slicing pipeline's shape).
//! let lengths = Executor::new(4).par_map(&["ab", "c", "def"], |_, s| s.len());
//! assert_eq!(lengths, vec![2, 1, 3]);
//!
//! // Disjoint mutable blocks (the kernels' shape): each output row block is
//! // written by exactly one worker.
//! let mut out = vec![0.0f32; 6];
//! Executor::new(2).par_blocks_mut(&mut out, 3, |offset, block| {
//!     for (k, v) in block.iter_mut().enumerate() {
//!         *v = (offset + k) as f32;
//!     }
//! });
//! assert_eq!(out, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod executor;

pub use executor::{global, set_global_threads, Executor, MIN_PARALLEL_WORK};
