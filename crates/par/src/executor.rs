//! The executor: scoped worker threads pulling blocks of work from a shared
//! queue.
//!
//! Every parallel primitive here preserves *determinism*: work is split into
//! blocks whose results depend only on the block, never on which worker ran
//! it or in what order blocks were claimed. Callers that need bitwise
//! reproducibility (the GCN kernels, seeded training) get it for free — the
//! same inputs produce the same bits at any thread count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// Minimum amount of work (in rough "multiply-accumulate" units) below which
/// parallel dispatch is not worth the thread-coordination overhead.
///
/// Spawning and joining a scoped worker costs tens of microseconds; at
/// ~1 GFLOP/s scalar throughput this threshold keeps parallelism restricted
/// to regions of at least a few hundred microseconds.
pub const MIN_PARALLEL_WORK: usize = 1 << 19;

/// A handle describing how many worker threads parallel regions may use.
///
/// The executor itself is just a thread count: parallel regions are executed
/// with `std::thread::scope`, with workers *stealing* blocks of work from a
/// shared queue until it drains. This gives dynamic load balancing (a worker
/// that finishes its block early takes the next unclaimed one) without any
/// unsafe code or persistent pool state.
///
/// # Examples
///
/// ```
/// use tiara_par::Executor;
///
/// let exec = Executor::new(4);
/// let squares = exec.par_map(&[1u64, 2, 3, 4, 5], |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    threads: usize,
}

impl Default for Executor {
    fn default() -> Executor {
        global()
    }
}

impl Executor {
    /// An executor with exactly `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Executor {
        Executor { threads: threads.max(1) }
    }

    /// The single-threaded executor: every primitive degenerates to a plain
    /// sequential loop on the calling thread.
    pub fn sequential() -> Executor {
        Executor { threads: 1 }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Downgrades to the sequential executor when the region's total work is
    /// below [`MIN_PARALLEL_WORK`] (thread coordination would dominate).
    pub fn for_work(&self, work: usize) -> Executor {
        if work < MIN_PARALLEL_WORK {
            Executor::sequential()
        } else {
            *self
        }
    }

    /// Maps `f` over `items`, returning results in item order.
    ///
    /// Workers claim one index at a time from a shared cursor, so uneven
    /// per-item cost (e.g. slicing different variable addresses) balances
    /// automatically. The output order is always the input order.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let threads = self.threads.min(items.len());
        if threads <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let cursor = AtomicUsize::new(0);
        let mut indexed: Vec<(usize, R)> = Vec::with_capacity(items.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(item) = items.get(i) else { break };
                            local.push((i, f(i, item)));
                        }
                        local
                    })
                })
                .collect();
            for h in handles {
                indexed.extend(h.join().expect("parallel worker panicked"));
            }
        });
        indexed.sort_unstable_by_key(|&(i, _)| i);
        indexed.into_iter().map(|(_, r)| r).collect()
    }

    /// Splits `data` at the element offsets in `cuts` (ascending, each
    /// `< data.len()`) and runs `f(start_offset, part)` for every part, in
    /// parallel. Each part is owned by exactly one worker — disjoint `&mut`
    /// access with no synchronization on the data itself.
    ///
    /// An empty `cuts` runs `f(0, data)` on the calling thread.
    ///
    /// # Panics
    ///
    /// Panics if `cuts` is not strictly ascending or a cut is out of range.
    pub fn par_partitions<T, F>(&self, data: &mut [T], cuts: &[usize], f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        // Materialize the disjoint mutable parts up front.
        let mut parts: Vec<(usize, &mut [T])> = Vec::with_capacity(cuts.len() + 1);
        let mut rest = data;
        let mut consumed = 0usize;
        for &cut in cuts {
            assert!(
                cut > consumed && cut < consumed + rest.len(),
                "cuts must be ascending and in range"
            );
            let (head, tail) = rest.split_at_mut(cut - consumed);
            parts.push((consumed, head));
            consumed = cut;
            rest = tail;
        }
        parts.push((consumed, rest));

        let threads = self.threads.min(parts.len());
        if threads <= 1 {
            for (off, part) in parts {
                f(off, part);
            }
            return;
        }
        // Workers steal the next unclaimed part until the queue drains.
        parts.reverse();
        let queue = Mutex::new(parts);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let next = queue.lock().unwrap_or_else(PoisonError::into_inner).pop();
                    match next {
                        Some((off, part)) => f(off, part),
                        None => break,
                    }
                });
            }
        });
    }

    /// [`Executor::par_partitions`] with uniform blocks of `block_len`
    /// elements (the last block may be shorter).
    pub fn par_blocks_mut<T, F>(&self, data: &mut [T], block_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        let block_len = block_len.max(1);
        let cuts: Vec<usize> = (block_len..data.len()).step_by(block_len).collect();
        self.par_partitions(data, &cuts, f);
    }
}

/// The explicitly configured global thread count; 0 means "not configured,
/// fall back to the environment default".
static CONFIGURED_THREADS: AtomicUsize = AtomicUsize::new(0);

fn env_default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("TIARA_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
    })
}

/// Sets the process-wide worker count used by [`global`] (the `--threads`
/// flag of the CLIs). Overrides `TIARA_THREADS`.
pub fn set_global_threads(threads: usize) {
    CONFIGURED_THREADS.store(threads.max(1), Ordering::SeqCst);
}

/// The shared executor: `--threads` if set via [`set_global_threads`], else
/// `TIARA_THREADS`, else `std::thread::available_parallelism()`.
pub fn global() -> Executor {
    let n = CONFIGURED_THREADS.load(Ordering::SeqCst);
    Executor::new(if n == 0 { env_default_threads() } else { n })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order_at_any_thread_count() {
        let items: Vec<usize> = (0..257).collect();
        for t in [1, 2, 3, 8, 64] {
            let out = Executor::new(t).par_map(&items, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let exec = Executor::new(8);
        assert_eq!(exec.par_map(&[] as &[u8], |_, &x| x), Vec::<u8>::new());
        assert_eq!(exec.par_map(&[7u8], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn par_blocks_cover_every_element_exactly_once() {
        let mut data = vec![0u32; 1003];
        Executor::new(4).par_blocks_mut(&mut data, 64, |off, part| {
            for (k, v) in part.iter_mut().enumerate() {
                *v = (off + k) as u32 + 1;
            }
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u32 + 1));
    }

    #[test]
    fn par_partitions_respects_cuts() {
        let mut data = vec![0u8; 10];
        Executor::new(3).par_partitions(&mut data, &[3, 4], |off, part| {
            for v in part.iter_mut() {
                *v = off as u8;
            }
        });
        assert_eq!(data, vec![0, 0, 0, 3, 4, 4, 4, 4, 4, 4]);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn out_of_range_cut_panics() {
        let mut data = vec![0u8; 4];
        Executor::new(2).par_partitions(&mut data, &[5], |_, _| {});
    }

    #[test]
    fn for_work_downgrades_small_regions() {
        let exec = Executor::new(8);
        assert_eq!(exec.for_work(10).threads(), 1);
        assert_eq!(exec.for_work(MIN_PARALLEL_WORK).threads(), 8);
    }

    #[test]
    fn threads_clamp_to_one() {
        assert_eq!(Executor::new(0).threads(), 1);
        assert_eq!(Executor::sequential().threads(), 1);
    }

    #[test]
    fn global_reflects_explicit_configuration() {
        // Note: mutates process state; other tests only read the thread
        // count, and every primitive is deterministic at any count.
        set_global_threads(3);
        assert_eq!(global().threads(), 3);
        set_global_threads(1);
        assert_eq!(global().threads(), 1);
    }
}
