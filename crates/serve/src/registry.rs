//! The multi-model registry behind protocol v2.
//!
//! One daemon holds many trained models at once, each keyed by its
//! content [`Tiara::model_digest`] and reachable through any number of
//! string aliases (`model_load`, `model_alias`, `model_unload`,
//! `model_list` ops). The registry is the single source of truth for which
//! models exist; the server resolves every predict against it.
//!
//! ## Lifecycle and refcounting
//!
//! ```text
//!   model_load ──▶ [alias ──▶ digest ──▶ Arc<ModelEntry>]
//!                     │                        ▲
//!   model_alias ──────┘ (many aliases,         │ in_flight guard per
//!                        one entry)            │ running predict
//!   model_unload ─▶ drop alias; drop entry when the last alias goes
//!                   (refused with ModelBusy while in_flight > 0,
//!                    unless forced — in-flight jobs keep their own
//!                    Arc, so even a forced unload never invalidates
//!                    running work)
//! ```
//!
//! Loading the same `.tc` file under two aliases stores ONE entry: the
//! digest dedups, so both aliases share weights, stats, and the process-wide
//! slice cache keyed by the model's slicer fingerprint.

use crate::metrics::Histogram;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use tiara::{Error, Tiara};

/// Fallback cost estimate (slicer steps per address) for a model that has
/// not answered anything yet. Roughly one median TSLICE run.
const DEFAULT_STEPS_PER_ADDR: u64 = 1024;

/// Per-model serving counters, updated lock-free by workers.
pub struct ModelStats {
    /// Predict batches answered by this model.
    pub requests: AtomicU64,
    /// Addresses classified by this model.
    pub addrs: AtomicU64,
    /// Slicer steps spent on this model's addresses (cache hits contribute
    /// zero — they really are that cheap, and the cost estimator should
    /// learn that).
    pub slice_steps: AtomicU64,
    /// Per-batch end-to-end latency.
    pub latency: Histogram,
}

impl ModelStats {
    fn new() -> ModelStats {
        ModelStats {
            requests: AtomicU64::new(0),
            addrs: AtomicU64::new(0),
            slice_steps: AtomicU64::new(0),
            latency: Histogram::new(),
        }
    }

    /// Records one answered batch.
    pub fn record(&self, addrs: u64, slice_steps: u64, latency_us: u64) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.addrs.fetch_add(addrs, Ordering::Relaxed);
        self.slice_steps.fetch_add(slice_steps, Ordering::Relaxed);
        self.latency.observe_us(latency_us);
    }
}

/// One resident model: weights, identity, counters, and the in-flight
/// refcount that guards unload.
pub struct ModelEntry {
    tiara: Tiara,
    digest: u64,
    source: Option<String>,
    stats: ModelStats,
    in_flight: AtomicU64,
}

impl ModelEntry {
    /// The trained model.
    pub fn tiara(&self) -> &Tiara {
        &self.tiara
    }

    /// The content digest this entry is keyed by.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// The filesystem path this model was loaded from, when it has one
    /// (used by the CLI to persist slice caches on drain).
    pub fn source(&self) -> Option<&str> {
        self.source.as_deref()
    }

    /// Serving counters for this model.
    pub fn stats(&self) -> &ModelStats {
        &self.stats
    }

    /// Predict batches currently running against this model.
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::SeqCst)
    }

    /// Admission-cost estimate: observed slicer steps per address, or a
    /// fixed prior before any traffic. Cache-heavy models converge toward
    /// cheap; cold models start pessimistic.
    pub fn est_steps_per_addr(&self) -> u64 {
        let addrs = self.stats.addrs.load(Ordering::Relaxed);
        if addrs == 0 {
            return DEFAULT_STEPS_PER_ADDR;
        }
        (self.stats.slice_steps.load(Ordering::Relaxed) / addrs).max(1)
    }
}

/// An RAII in-flight guard: holding one keeps the model's refcount up (so a
/// non-forced unload is refused) and keeps the entry alive outright (so even
/// a forced unload cannot invalidate running work).
pub struct ModelHandle {
    entry: Arc<ModelEntry>,
}

impl ModelHandle {
    fn acquire(entry: Arc<ModelEntry>) -> ModelHandle {
        entry.in_flight.fetch_add(1, Ordering::SeqCst);
        ModelHandle { entry }
    }

    /// The guarded entry.
    pub fn entry(&self) -> &Arc<ModelEntry> {
        &self.entry
    }
}

impl std::ops::Deref for ModelHandle {
    type Target = ModelEntry;
    fn deref(&self) -> &ModelEntry {
        &self.entry
    }
}

impl Drop for ModelHandle {
    fn drop(&mut self) {
        self.entry.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// What `model_unload` did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnloadOutcome {
    /// Digest of the model the alias pointed at.
    pub digest: u64,
    /// Whether the entry itself was dropped (last alias removed).
    pub dropped: bool,
    /// Aliases still pointing at the entry after this unload.
    pub aliases_left: usize,
}

struct RegistryInner {
    models: HashMap<u64, Arc<ModelEntry>>,
    aliases: BTreeMap<String, u64>,
}

/// A shared, thread-safe alias → model map. Cloning is cheap (one `Arc`);
/// the server and the CLI hold clones of the same registry.
#[derive(Clone)]
pub struct Registry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

impl Registry {
    /// An empty registry: the daemon starts and models arrive via
    /// `model_load`.
    pub fn new() -> Registry {
        Registry {
            inner: Arc::new(Mutex::new(RegistryInner {
                models: HashMap::new(),
                aliases: BTreeMap::new(),
            })),
        }
    }

    /// A registry holding one model under the v1-compat `default` alias.
    ///
    /// # Errors
    ///
    /// [`Error::Untrained`] if the model cannot answer queries.
    pub fn with_default(tiara: Tiara) -> Result<Registry, Error> {
        let reg = Registry::new();
        reg.insert("default", tiara, None)?;
        Ok(reg)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers `tiara` under `alias`. Models dedup by digest: loading the
    /// same weights under a second alias shares the existing entry (and its
    /// stats). Returns the entry and whether it was newly inserted.
    ///
    /// # Errors
    ///
    /// [`Error::Untrained`] for a model that cannot answer queries.
    pub fn insert(
        &self,
        alias: &str,
        tiara: Tiara,
        source: Option<String>,
    ) -> Result<(Arc<ModelEntry>, bool), Error> {
        if !tiara.is_trained() {
            return Err(Error::Untrained);
        }
        let digest = tiara.model_digest();
        let mut g = self.lock();
        let (entry, fresh) = match g.models.get(&digest) {
            Some(existing) => (Arc::clone(existing), false),
            None => {
                let entry = Arc::new(ModelEntry {
                    tiara,
                    digest,
                    source,
                    stats: ModelStats::new(),
                    in_flight: AtomicU64::new(0),
                });
                g.models.insert(digest, Arc::clone(&entry));
                (entry, true)
            }
        };
        g.aliases.insert(alias.to_owned(), digest);
        // An alias retarget may have orphaned the model it used to name.
        sweep_orphans(&mut g);
        Ok((entry, fresh))
    }

    /// Points `alias` at the model `existing` already names.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownModel`] if `existing` is not a registered alias.
    pub fn alias(&self, alias: &str, existing: &str) -> Result<Arc<ModelEntry>, Error> {
        let mut g = self.lock();
        let digest =
            *g.aliases.get(existing).ok_or_else(|| Error::UnknownModel(existing.to_owned()))?;
        g.aliases.insert(alias.to_owned(), digest);
        sweep_orphans(&mut g);
        Ok(Arc::clone(&g.models[&digest]))
    }

    /// Resolves an alias into an in-flight guard for one predict batch.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownModel`] for an unregistered alias.
    pub fn resolve(&self, alias: &str) -> Result<ModelHandle, Error> {
        let g = self.lock();
        let digest = g.aliases.get(alias).ok_or_else(|| Error::UnknownModel(alias.to_owned()))?;
        Ok(ModelHandle::acquire(Arc::clone(&g.models[digest])))
    }

    /// Looks an alias up without taking an in-flight guard (stats, CLI).
    pub fn get(&self, alias: &str) -> Option<Arc<ModelEntry>> {
        let g = self.lock();
        g.aliases.get(alias).map(|d| Arc::clone(&g.models[d]))
    }

    /// Removes `alias`. Dropping the LAST alias of a model drops the model —
    /// refused while requests are in flight unless `force` (in-flight jobs
    /// hold their own `Arc` and finish safely either way).
    ///
    /// # Errors
    ///
    /// [`Error::UnknownModel`] for an unregistered alias,
    /// [`Error::ModelBusy`] for a non-forced unload with work in flight.
    pub fn unload(&self, alias: &str, force: bool) -> Result<UnloadOutcome, Error> {
        let mut g = self.lock();
        let digest = *g.aliases.get(alias).ok_or_else(|| Error::UnknownModel(alias.to_owned()))?;
        let aliases_left = g.aliases.values().filter(|&&d| d == digest).count() - 1;
        if aliases_left == 0 {
            let busy = g.models[&digest].in_flight.load(Ordering::SeqCst);
            if busy > 0 && !force {
                return Err(Error::ModelBusy(format!("{alias} ({busy} in flight)")));
            }
        }
        g.aliases.remove(alias);
        let dropped = aliases_left == 0;
        if dropped {
            g.models.remove(&digest);
        }
        Ok(UnloadOutcome { digest, dropped, aliases_left })
    }

    /// Every `(alias, entry)` pair, sorted by alias.
    pub fn list(&self) -> Vec<(String, Arc<ModelEntry>)> {
        let g = self.lock();
        g.aliases.iter().map(|(a, d)| (a.clone(), Arc::clone(&g.models[d]))).collect()
    }

    /// Every distinct model entry (one per digest, aliases collapsed),
    /// sorted by digest for determinism.
    pub fn entries(&self) -> Vec<Arc<ModelEntry>> {
        let g = self.lock();
        let mut out: Vec<_> = g.models.values().map(Arc::clone).collect();
        out.sort_by_key(|e| e.digest);
        out
    }

    /// Number of registered aliases.
    pub fn alias_count(&self) -> usize {
        self.lock().aliases.len()
    }

    /// Number of distinct resident models.
    pub fn model_count(&self) -> usize {
        self.lock().models.len()
    }
}

/// Drops models no alias points at anymore (after an alias retarget).
/// In-flight work is unaffected: jobs hold their own `Arc<ModelEntry>`.
fn sweep_orphans(g: &mut RegistryInner) {
    g.models.retain(|digest, _| g.aliases.values().any(|d| d == digest));
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiara::{ClassifierConfig, TiaraConfig};
    use tiara_synth::{generate, ProjectSpec, TypeCounts};

    fn trained(seed: u64) -> Tiara {
        let bin = generate(&ProjectSpec {
            name: format!("reg{seed}"),
            index: 1,
            seed,
            counts: TypeCounts { list: 2, vector: 2, map: 2, primitive: 4, ..Default::default() },
        });
        let mut t = Tiara::new(TiaraConfig::new().with_classifier(ClassifierConfig {
            epochs: 2,
            batch_size: 8,
            ..Default::default()
        }));
        t.train(&[("reg", &bin.program, &bin.debug)]).unwrap();
        t
    }

    #[test]
    fn untrained_models_are_refused() {
        let reg = Registry::new();
        let err = match reg.insert("m", Tiara::new(TiaraConfig::new()), None) {
            Err(e) => e,
            Ok(_) => panic!("untrained model must be refused"),
        };
        assert!(matches!(err, Error::Untrained));
        assert_eq!(reg.alias_count(), 0);
    }

    #[test]
    fn aliases_dedup_by_digest() {
        let reg = Registry::new();
        let t = trained(7);
        let digest = t.model_digest();
        let (_, fresh) = reg.insert("a", t, None).unwrap();
        assert!(fresh);
        let (entry, fresh) = reg.insert("b", trained(7), None).unwrap();
        assert!(!fresh, "same digest reuses the entry");
        assert_eq!(entry.digest(), digest);
        assert_eq!(reg.alias_count(), 2);
        assert_eq!(reg.model_count(), 1);
        let listed: Vec<String> = reg.list().into_iter().map(|(a, _)| a).collect();
        assert_eq!(listed, ["a", "b"], "list is alias-sorted");
    }

    #[test]
    fn unload_respects_in_flight_refcounts() {
        let reg = Registry::new();
        reg.insert("m", trained(9), None).unwrap();
        let handle = reg.resolve("m").unwrap();
        assert_eq!(handle.in_flight(), 1);
        let err = reg.unload("m", false).unwrap_err();
        assert!(matches!(err, Error::ModelBusy(_)));
        assert_eq!(reg.model_count(), 1, "refused unload keeps the model");
        // Forced unload succeeds; the handle's Arc keeps the entry alive.
        let out = reg.unload("m", true).unwrap();
        assert!(out.dropped);
        assert_eq!(reg.model_count(), 0);
        assert!(handle.tiara().is_trained(), "in-flight work still has its model");
        drop(handle);

        // With no work in flight, a plain unload drops the entry.
        reg.insert("n", trained(9), None).unwrap();
        let out = reg.unload("n", false).unwrap();
        assert!(out.dropped);
        assert!(matches!(reg.unload("n", false), Err(Error::UnknownModel(_))));
    }

    #[test]
    fn unloading_one_of_two_aliases_keeps_the_model() {
        let reg = Registry::new();
        reg.insert("a", trained(11), None).unwrap();
        reg.alias("b", "a").unwrap();
        let handle = reg.resolve("a").unwrap();
        // `a` is not the last alias, so unload succeeds even while busy.
        let out = reg.unload("a", false).unwrap();
        assert!(!out.dropped);
        assert_eq!(out.aliases_left, 1);
        assert_eq!(reg.model_count(), 1);
        assert!(reg.resolve("b").is_ok());
        drop(handle);
    }

    #[test]
    fn alias_retarget_sweeps_orphaned_models() {
        let reg = Registry::new();
        reg.insert("a", trained(13), None).unwrap();
        reg.insert("b", trained(17), None).unwrap();
        assert_eq!(reg.model_count(), 2);
        // Point `b` at `a`'s model: the old `b` model has no alias left.
        reg.alias("b", "a").unwrap();
        assert_eq!(reg.model_count(), 1);
        assert_eq!(reg.get("b").unwrap().digest(), reg.get("a").unwrap().digest());
    }

    #[test]
    fn cost_estimates_start_at_the_prior_and_track_traffic() {
        let reg = Registry::new();
        let (entry, _) = reg.insert("m", trained(19), None).unwrap();
        assert_eq!(entry.est_steps_per_addr(), DEFAULT_STEPS_PER_ADDR);
        entry.stats().record(10, 500, 1_000);
        assert_eq!(entry.est_steps_per_addr(), 50);
        entry.stats().record(10, 0, 10); // all cache hits
        assert_eq!(entry.est_steps_per_addr(), 25);
        assert_eq!(entry.stats().requests.load(Ordering::Relaxed), 2);
        assert_eq!(entry.stats().latency.count(), 2);
    }
}
