//! Daemon-side counters and a latency histogram for the `stats` endpoint.
//!
//! Everything here is lock-free (`AtomicU64` with relaxed ordering): the
//! counters sit on the request hot path and must never serialize concurrent
//! connections. Quantiles come from a fixed log2-bucketed histogram —
//! microsecond-exact percentiles are not worth a mutex around a sorted
//! vector, and bucket resolution (~2× per step) is plenty to tell a healthy
//! daemon from a drowning one.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 latency buckets. Bucket `i` holds latencies in
/// `[2^i, 2^(i+1))` µs; 40 buckets cover up to ~2^40 µs ≈ 12 days.
const BUCKETS: usize = 40;

/// Atomic counter set for one server instance.
pub struct Metrics {
    /// Every protocol line handled (including malformed ones).
    pub requests_total: AtomicU64,
    /// `predict` requests accepted into the queue.
    pub predict_requests: AtomicU64,
    /// Addresses across all accepted predict batches.
    pub addrs_total: AtomicU64,
    /// Programs stored via `upload`.
    pub uploads: AtomicU64,
    /// Predict requests rejected with `queue_full`.
    pub rejected_queue_full: AtomicU64,
    /// Predict requests rejected with `oversized_batch`.
    pub rejected_oversized: AtomicU64,
    /// Predict requests rejected because the server was draining.
    pub rejected_shutting_down: AtomicU64,
    /// Lines that failed to parse or validate.
    pub malformed: AtomicU64,
    /// Predict responses cut short by their deadline.
    pub deadline_partial: AtomicU64,
    latency_buckets: [AtomicU64; BUCKETS],
    latency_count: AtomicU64,
}

impl Default for Metrics {
    fn default() -> Metrics {
        Metrics::new()
    }
}

impl Metrics {
    /// Creates a zeroed counter set.
    pub fn new() -> Metrics {
        Metrics {
            requests_total: AtomicU64::new(0),
            predict_requests: AtomicU64::new(0),
            addrs_total: AtomicU64::new(0),
            uploads: AtomicU64::new(0),
            rejected_queue_full: AtomicU64::new(0),
            rejected_oversized: AtomicU64::new(0),
            rejected_shutting_down: AtomicU64::new(0),
            malformed: AtomicU64::new(0),
            deadline_partial: AtomicU64::new(0),
            latency_buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            latency_count: AtomicU64::new(0),
        }
    }

    /// Increments a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` to a counter.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one predict request's end-to-end latency.
    pub fn observe_latency_us(&self, us: u64) {
        let bucket = (63 - us.max(1).leading_zeros()) as usize;
        self.latency_buckets[bucket.min(BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        self.latency_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded latencies.
    pub fn latency_count(&self) -> u64 {
        self.latency_count.load(Ordering::Relaxed)
    }

    /// The upper bound (µs) of the bucket containing quantile `q` (0..=1),
    /// or 0 with no observations. An upper bound so the report errs
    /// pessimistic.
    pub fn latency_quantile_us(&self, q: f64) -> u64 {
        let total = self.latency_count();
        if total == 0 {
            return 0;
        }
        // ceil(q * total), clamped into 1..=total.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.latency_buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return 1u64 << (i + 1);
            }
        }
        1u64 << BUCKETS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_from_log_buckets() {
        let m = Metrics::new();
        assert_eq!(m.latency_quantile_us(0.5), 0, "no data yet");
        // 99 fast requests (~10µs bucket [8,16)) and one slow (~10ms).
        for _ in 0..99 {
            m.observe_latency_us(10);
        }
        m.observe_latency_us(10_000);
        assert_eq!(m.latency_count(), 100);
        assert_eq!(m.latency_quantile_us(0.5), 16, "p50 in the fast bucket");
        assert_eq!(m.latency_quantile_us(0.98), 16);
        assert_eq!(m.latency_quantile_us(0.99), 16, "rank 99 is still fast");
        assert!(m.latency_quantile_us(1.0) >= 8192, "max hits the slow bucket");
    }

    #[test]
    fn zero_latency_lands_in_the_first_bucket() {
        let m = Metrics::new();
        m.observe_latency_us(0);
        m.observe_latency_us(1);
        assert_eq!(m.latency_quantile_us(1.0), 2);
    }

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        Metrics::bump(&m.requests_total);
        Metrics::add(&m.addrs_total, 7);
        assert_eq!(m.requests_total.load(Ordering::Relaxed), 1);
        assert_eq!(m.addrs_total.load(Ordering::Relaxed), 7);
    }
}
