//! Daemon-side counters and latency histograms for the `stats` endpoint.
//!
//! Everything here is lock-free (`AtomicU64` with relaxed ordering): the
//! counters sit on the request hot path and must never serialize concurrent
//! connections. Quantiles come from a fixed log2-bucketed [`Histogram`] —
//! microsecond-exact percentiles are not worth a mutex around a sorted
//! vector, and bucket resolution (~2× per step) is plenty to tell a healthy
//! daemon from a drowning one. The registry embeds one `Histogram` per model
//! so `stats` can report per-model p50/p99 alongside the server-wide view.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 latency buckets. Bucket `i` holds latencies in
/// `[2^i, 2^(i+1))` µs; 40 buckets cover up to ~2^40 µs ≈ 12 days.
const BUCKETS: usize = 40;

/// A lock-free log2-bucketed latency histogram.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram { buckets: std::array::from_fn(|_| AtomicU64::new(0)), count: AtomicU64::new(0) }
    }

    /// Records one latency observation in microseconds.
    pub fn observe_us(&self, us: u64) {
        let bucket = (63 - us.max(1).leading_zeros()) as usize;
        self.buckets[bucket.min(BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The upper bound (µs) of the bucket containing quantile `q` (0..=1),
    /// or 0 with no observations. An upper bound so the report errs
    /// pessimistic.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        // ceil(q * total), clamped into 1..=total.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return 1u64 << (i + 1);
            }
        }
        1u64 << BUCKETS
    }
}

/// Atomic counter set for one server instance.
pub struct Metrics {
    /// Every protocol line handled (including malformed ones).
    pub requests_total: AtomicU64,
    /// `predict` requests accepted into the queue.
    pub predict_requests: AtomicU64,
    /// Addresses across all accepted predict batches.
    pub addrs_total: AtomicU64,
    /// Programs stored via `upload`.
    pub uploads: AtomicU64,
    /// Models loaded via `model_load` (startup loads included).
    pub model_loads: AtomicU64,
    /// Models dropped via `model_unload`.
    pub model_unloads: AtomicU64,
    /// Predict requests rejected with `queue_full`.
    pub rejected_queue_full: AtomicU64,
    /// Predict requests shed with `overloaded`.
    pub rejected_overloaded: AtomicU64,
    /// Predict requests rejected with `oversized_batch`.
    pub rejected_oversized: AtomicU64,
    /// Predict requests rejected because the server was draining.
    pub rejected_shutting_down: AtomicU64,
    /// Requests naming a model alias the registry does not hold.
    pub rejected_unknown_model: AtomicU64,
    /// Lines that failed to parse or validate.
    pub malformed: AtomicU64,
    /// Predict responses cut short by their deadline.
    pub deadline_partial: AtomicU64,
    /// Currently open reactor connections (gauge).
    pub conns_open: AtomicU64,
    /// High-water mark of simultaneously open connections.
    pub conns_peak: AtomicU64,
    /// Connections refused at the connection cap.
    pub conn_limit_rejects: AtomicU64,
    /// Connections closed by the idle timeout.
    pub idle_disconnects: AtomicU64,
    latency: Histogram,
}

impl Default for Metrics {
    fn default() -> Metrics {
        Metrics::new()
    }
}

impl Metrics {
    /// Creates a zeroed counter set.
    pub fn new() -> Metrics {
        Metrics {
            requests_total: AtomicU64::new(0),
            predict_requests: AtomicU64::new(0),
            addrs_total: AtomicU64::new(0),
            uploads: AtomicU64::new(0),
            model_loads: AtomicU64::new(0),
            model_unloads: AtomicU64::new(0),
            rejected_queue_full: AtomicU64::new(0),
            rejected_overloaded: AtomicU64::new(0),
            rejected_oversized: AtomicU64::new(0),
            rejected_shutting_down: AtomicU64::new(0),
            rejected_unknown_model: AtomicU64::new(0),
            malformed: AtomicU64::new(0),
            deadline_partial: AtomicU64::new(0),
            conns_open: AtomicU64::new(0),
            conns_peak: AtomicU64::new(0),
            conn_limit_rejects: AtomicU64::new(0),
            idle_disconnects: AtomicU64::new(0),
            latency: Histogram::new(),
        }
    }

    /// Increments a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` to a counter.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Raises the connection gauge and updates its high-water mark.
    pub fn conn_opened(&self) {
        let now = self.conns_open.fetch_add(1, Ordering::Relaxed) + 1;
        self.conns_peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Lowers the connection gauge.
    pub fn conn_closed(&self) {
        self.conns_open.fetch_sub(1, Ordering::Relaxed);
    }

    /// Records one predict request's end-to-end latency.
    pub fn observe_latency_us(&self, us: u64) {
        self.latency.observe_us(us);
    }

    /// Number of recorded latencies.
    pub fn latency_count(&self) -> u64 {
        self.latency.count()
    }

    /// The upper bound (µs) of the latency bucket containing quantile `q`.
    pub fn latency_quantile_us(&self, q: f64) -> u64 {
        self.latency.quantile_us(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_from_log_buckets() {
        let m = Metrics::new();
        assert_eq!(m.latency_quantile_us(0.5), 0, "no data yet");
        // 99 fast requests (~10µs bucket [8,16)) and one slow (~10ms).
        for _ in 0..99 {
            m.observe_latency_us(10);
        }
        m.observe_latency_us(10_000);
        assert_eq!(m.latency_count(), 100);
        assert_eq!(m.latency_quantile_us(0.5), 16, "p50 in the fast bucket");
        assert_eq!(m.latency_quantile_us(0.98), 16);
        assert_eq!(m.latency_quantile_us(0.99), 16, "rank 99 is still fast");
        assert!(m.latency_quantile_us(1.0) >= 8192, "max hits the slow bucket");
    }

    #[test]
    fn zero_latency_lands_in_the_first_bucket() {
        let m = Metrics::new();
        m.observe_latency_us(0);
        m.observe_latency_us(1);
        assert_eq!(m.latency_quantile_us(1.0), 2);
    }

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        Metrics::bump(&m.requests_total);
        Metrics::add(&m.addrs_total, 7);
        assert_eq!(m.requests_total.load(Ordering::Relaxed), 1);
        assert_eq!(m.addrs_total.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn connection_gauge_tracks_peak() {
        let m = Metrics::new();
        m.conn_opened();
        m.conn_opened();
        m.conn_closed();
        m.conn_opened();
        assert_eq!(m.conns_open.load(Ordering::Relaxed), 2);
        assert_eq!(m.conns_peak.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn standalone_histogram_matches_metrics_behavior() {
        let h = Histogram::new();
        assert_eq!(h.quantile_us(0.99), 0);
        h.observe_us(100);
        h.observe_us(100);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile_us(1.0), 128);
    }
}
