//! A minimal, dependency-free JSON codec for the wire protocol.
//!
//! The daemon's protocol needs exactly three properties from its codec:
//!
//! 1. **Determinism** — the same [`Value`] always renders to the same bytes
//!    (objects keep insertion order; numbers render via Rust's shortest
//!    round-trip `Display`), which is what makes the protocol's
//!    byte-identical-response contract testable.
//! 2. **Robustness** — malformed input is an `Err` with a position, never a
//!    panic; the parser has an explicit recursion-depth limit so hostile
//!    nesting cannot blow the stack.
//! 3. **Zero registry dependencies** — the daemon builds and its tests run
//!    in offline environments where `serde_json` is unavailable (model
//!    persistence in `tiara` core still uses serde; the wire layer does
//!    not).

use std::fmt::Write as _;

/// Maximum nesting depth the parser accepts. Protocol messages are at most
/// ~4 levels deep; 64 leaves headroom without risking stack exhaustion.
const MAX_DEPTH: usize = 64;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// A float (serialized via shortest-round-trip `Display`).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. Pairs keep insertion order; duplicate keys keep the last
    /// value on lookup (like serde_json's map behavior).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (last duplicate wins).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload (also accepts floats with zero fraction).
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 9e15 => Some(f as i64),
            _ => None,
        }
    }

    /// The numeric payload as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The array payload.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Serializes to a compact JSON string (no whitespace), byte-for-byte
    /// deterministic for a given value.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::Float(f) => {
                if f.is_finite() {
                    // Shortest round-trip representation; force a marker so
                    // the value re-parses as a float.
                    let s = format!("{f}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    // JSON has no NaN/Inf; the protocol never produces them,
                    // but render defensively instead of emitting garbage.
                    out.push_str("null");
                }
            }
            Value::Str(s) => render_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Value::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document, rejecting trailing non-whitespace.
///
/// # Errors
///
/// Returns `(byte_offset, message)` for malformed input.
pub fn parse(input: &str) -> Result<Value, (usize, String)> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err((p.pos, "trailing characters after document".into()));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: &str) -> Result<T, (usize, String)> {
        Err((self.pos, msg.to_owned()))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), (usize, String)> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected `{}`", b as char))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, (usize, String)> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            self.err(&format!("expected `{lit}`"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, (usize, String)> {
        if depth > MAX_DEPTH {
            return self.err("nesting too deep");
        }
        match self.peek() {
            None => self.err("unexpected end of input"),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return self.err("expected `,` or `]`"),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.value(depth + 1)?;
                    pairs.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(pairs));
                        }
                        _ => return self.err("expected `,` or `}`"),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => self.err(&format!("unexpected character `{}`", c as char)),
        }
    }

    fn string(&mut self) -> Result<String, (usize, String)> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or((self.pos, "truncated \\u escape".to_owned()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| (self.pos, "bad \\u escape".to_owned()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| (self.pos, "bad \\u escape".to_owned()))?;
                            // Surrogates render as the replacement char; the
                            // protocol never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // One multi-byte UTF-8 scalar. The input is a &str and
                    // this position starts a scalar, so a 4-byte window holds
                    // it completely; `valid_up_to` trims a trailing scalar
                    // the window may have cut.
                    let end = (self.pos + 4).min(self.bytes.len());
                    let window = &self.bytes[self.pos..end];
                    let valid = match std::str::from_utf8(window) {
                        Ok(s) => s,
                        Err(e) => {
                            std::str::from_utf8(&window[..e.valid_up_to()]).expect("valid prefix")
                        }
                    };
                    let c = valid.chars().next().expect("window holds one scalar");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, (usize, String)> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| (start, format!("bad number `{text}`")))
        } else {
            text.parse::<i64>().map(Value::Int).map_err(|_| (start, format!("bad number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_basic_documents() {
        for src in [
            "null",
            "true",
            "false",
            "42",
            "-7",
            "\"hi\"",
            "[1,2,3]",
            "{\"a\":1,\"b\":[true,null]}",
            "{}",
            "[]",
        ] {
            let v = parse(src).unwrap();
            assert_eq!(v.render(), src, "canonical form round-trips");
        }
    }

    #[test]
    fn floats_round_trip_with_marker() {
        let v = parse("1.5").unwrap();
        assert_eq!(v, Value::Float(1.5));
        assert_eq!(v.render(), "1.5");
        assert_eq!(Value::Float(2.0).render(), "2.0");
        assert_eq!(parse("1e3").unwrap().as_f64(), Some(1000.0));
    }

    #[test]
    fn strings_escape_and_unescape() {
        let v = Value::Str("a\"b\\c\nd\u{1}".into());
        let s = v.render();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
        assert_eq!(parse(&s).unwrap(), v);
        assert_eq!(parse("\"\\u0041\"").unwrap(), Value::Str("A".into()));
    }

    #[test]
    fn object_lookup_and_duplicates() {
        let v = parse("{\"a\":1,\"a\":2,\"b\":\"x\"}").unwrap();
        assert_eq!(v.get("a").and_then(Value::as_i64), Some(2), "last duplicate wins");
        assert_eq!(v.get("b").and_then(Value::as_str), Some("x"));
        assert!(v.get("c").is_none());
    }

    #[test]
    fn malformed_inputs_error_with_position() {
        for bad in ["", "{", "[1,", "\"abc", "{\"a\"}", "tru", "1.2.3", "[1] extra", "{'a':1}"] {
            assert!(parse(bad).is_err(), "`{bad}` must not parse");
        }
        let (pos, _) = parse("[1, @]").unwrap_err();
        assert_eq!(pos, 4);
    }

    #[test]
    fn deep_nesting_is_rejected_not_a_stack_overflow() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn rendering_is_deterministic_and_ordered() {
        let v = Value::obj([
            ("z", Value::Int(1)),
            ("a", Value::Float(0.25)),
            ("m", Value::Array(vec![Value::Bool(false), Value::Null])),
        ]);
        let expect = "{\"z\":1,\"a\":0.25,\"m\":[false,null]}";
        assert_eq!(v.render(), expect);
        assert_eq!(v.render(), parse(expect).unwrap().render());
    }
}
