//! # tiara-serve
//!
//! A long-running inference daemon for the TIARA reproduction: load a
//! trained model once, then answer container-type queries over a
//! newline-delimited JSON protocol — on TCP for real clients, on
//! stdin/stdout for tests and shell pipelines.
//!
//! ## Protocol
//!
//! One JSON object per line in, one per line out (see [`protocol`]):
//!
//! ```text
//! → {"op":"upload","handle":"app","program_hex":"544952..."}
//! ← {"ok":true,"op":"upload","handle":"app","funcs":12,"insts":340,"fingerprint":"9f..."}
//! → {"op":"predict","program":"app","addrs":["0x74404","func:fn_0003:-0x18"],"id":1}
//! ← {"ok":true,"op":"predict","complete":true,"answered":2,"requested":2,
//!    "results":[{"addr":"0x74404","class":"std::vector",...},...],"id":1}
//! ```
//!
//! ## Production shape
//!
//! * **Backpressure** — predict batches land in a bounded queue
//!   ([`queue::BoundedQueue`]); at capacity the server answers `queue_full`
//!   with a `retry_after_ms` hint instead of buffering unboundedly.
//! * **Deadlines** — each request may carry `deadline_ms`; work is chunked
//!   so an expired deadline returns the answered prefix with
//!   `"complete":false` rather than nothing.
//! * **Graceful shutdown** — a `shutdown` request (or stdio EOF) drains
//!   queued and in-flight work, refuses new work with `shutting_down`, and
//!   stops the workers.
//! * **Observability** — a `stats` request reports request counters, queue
//!   depth, latency quantiles, slice-cache hits, and the slicer's hot-loop
//!   counter rollups.
//! * **Determinism** — the same predict request always renders the same
//!   bytes: classification is bitwise thread-invariant
//!   ([`tiara::Tiara::predict_batch`]), responses are rendered by an
//!   order-preserving JSON codec ([`json`]), and cache-dependent counters
//!   stay out of predict responses.
//!
//! The codec is hand-rolled and dependency-free on purpose: the daemon and
//! its tests must run in offline environments where no JSON crate is
//! available at runtime.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod json;
pub mod metrics;
pub mod protocol;
pub mod queue;
mod server;

pub use server::{ServeConfig, Server};
