//! # tiara-serve
//!
//! A long-running multi-model inference daemon for the TIARA reproduction:
//! load one or more trained model containers, then answer container-type
//! queries over a newline-delimited JSON protocol — on TCP (a nonblocking
//! reactor multiplexing thousands of connections) for real clients, on
//! stdin/stdout for tests and shell pipelines.
//!
//! ## Protocol (v2)
//!
//! One JSON object per line in, one per line out (see [`protocol`]). Every
//! request may address a model by alias; requests that omit `model` resolve
//! against the `default` alias, so v1 clients keep working unchanged:
//!
//! ```text
//! → {"op":"hello"}
//! ← {"ok":true,"proto":2,"op":"hello","server":"tiara-serve","version":"0.1.0",
//!    "models":["default"],"capabilities":[...],"max_batch":4096}
//! → {"op":"model_load","model":"v2","path":"models/v2.tc"}
//! ← {"ok":true,"proto":2,"op":"model_load","model":"v2","digest":"9f...","fresh":true,...}
//! → {"op":"upload","handle":"app","program_hex":"544952..."}
//! ← {"ok":true,"proto":2,"op":"upload","handle":"app","funcs":12,"insts":340,...}
//! → {"op":"predict","program":"app","addrs":["0x74404"],"model":"v2","id":1}
//! ← {"ok":true,"proto":2,"op":"predict","complete":true,"answered":1,"requested":1,
//!    "results":[{"addr":"0x74404","class":"std::vector",...}],"id":1}
//! ```
//!
//! ## Production shape
//!
//! * **Multiplexed connections** — the TCP front end is a single-threaded
//!   nonblocking reactor (`reactor`, internal): per-connection read/write
//!   buffers, an idle timeout, and a connection cap, with predict work
//!   executed by a fixed worker pool. Idle connections cost a buffer, not a
//!   thread.
//! * **Model registry** — models live in a [`registry::Registry`] keyed by
//!   content digest with aliases on top; `model_load` / `model_unload` /
//!   `model_alias` / `model_list` manage them at runtime, and refcounts make
//!   unload safe while requests are in flight.
//! * **Admission control** — predict batches land in a cost-aware,
//!   per-client weighted-round-robin queue ([`admission::AdmissionQueue`]):
//!   per-client lane caps answer `queue_full`, and a slice-step cost budget
//!   sheds probabilistically (`overloaded`) before hard-rejecting.
//! * **Deadlines** — each request may carry `deadline_ms`; work is chunked
//!   so an expired deadline returns the answered prefix with
//!   `"complete":false` rather than nothing.
//! * **Graceful shutdown** — a `shutdown` request (or stdio EOF) drains
//!   queued and in-flight work, refuses new work with `shutting_down`, and
//!   stops the workers; the reactor then flushes and closes every
//!   connection.
//! * **Observability** — a `stats` request reports request counters,
//!   per-model stats, queue and admission state, connection gauges, latency
//!   quantiles, slice-cache hits, and the slicer's hot-loop counter rollups.
//! * **Determinism** — the same predict request always renders the same
//!   bytes: classification is bitwise thread-invariant
//!   ([`tiara::Tiara::predict_batch`]), responses are rendered by an
//!   order-preserving JSON codec ([`json`]), and cache-dependent counters
//!   stay out of predict responses.
//!
//! The codec is hand-rolled and dependency-free on purpose: the daemon and
//! its tests must run in offline environments where no JSON crate is
//! available at runtime — the reactor likewise sticks to `std` nonblocking
//! sockets rather than a platform poller.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod admission;
pub mod json;
pub mod metrics;
pub mod protocol;
mod reactor;
pub mod registry;
mod server;

pub use registry::{ModelEntry, ModelHandle, Registry, UnloadOutcome};
pub use server::{ServeConfig, Server, DEFAULT_ALIAS};
