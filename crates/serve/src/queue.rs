//! A bounded MPMC work queue with explicit rejection.
//!
//! The daemon's backpressure contract is *reject, don't buffer*: when the
//! queue is at capacity, [`BoundedQueue::try_push`] fails immediately and the
//! protocol layer answers `queue_full` with a `retry_after_ms` hint, instead
//! of letting latency grow without bound. Workers block on
//! [`BoundedQueue::pop`]; closing the queue wakes them all up with `None`
//! once it drains.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};

/// Why [`BoundedQueue::try_push`] refused a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; the caller should retry later.
    Full,
    /// The queue was closed (the server is shutting down).
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
    /// High-water mark of `items.len()`, for the `stats` endpoint.
    max_depth: usize,
}

/// A fixed-capacity FIFO shared between request handlers (producers) and
/// worker threads (consumers).
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` pending jobs.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (a zero-capacity queue would reject
    /// everything).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            inner: Mutex::new(Inner { items: VecDeque::new(), closed: false, max_depth: 0 }),
            ready: Condvar::new(),
            capacity,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueues a job, or rejects it when the queue is full or closed.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`BoundedQueue::close`].
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut g = self.lock();
        if g.closed {
            return Err(PushError::Closed);
        }
        if g.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        g.items.push_back(item);
        g.max_depth = g.max_depth.max(g.items.len());
        drop(g);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until a job is available, returning `None` once the queue is
    /// closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut g = self.lock();
        loop {
            if let Some(item) = g.items.pop_front() {
                return Some(item);
            }
            if g.closed {
                return None;
            }
            g = self.ready.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: future pushes fail, and blocked poppers return
    /// `None` once the remaining jobs drain.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Jobs currently waiting (not counting in-flight work).
    pub fn depth(&self) -> usize {
        self.lock().items.len()
    }

    /// The deepest the queue has ever been.
    pub fn max_depth(&self) -> usize {
        self.lock().max_depth
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_capacity_rejection() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.max_depth(), 2);
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.depth(), 0);
        assert_eq!(q.capacity(), 2);
    }

    #[test]
    fn close_rejects_pushes_but_drains_remaining_jobs() {
        let q = BoundedQueue::new(4);
        q.try_push("a").unwrap();
        q.close();
        assert_eq!(q.try_push("b"), Err(PushError::Closed));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "closed + empty stays None");
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        // Give the waiter a moment to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(waiter.join().unwrap(), None);
    }

    #[test]
    fn many_producers_many_consumers_deliver_everything_once() {
        let q = Arc::new(BoundedQueue::new(8));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..50 {
                        let v = p * 1000 + i;
                        loop {
                            match q.try_push(v) {
                                Ok(()) => break,
                                Err(PushError::Full) => std::thread::yield_now(),
                                Err(PushError::Closed) => panic!("closed early"),
                            }
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u32> = consumers.into_iter().flat_map(|c| c.join().unwrap()).collect();
        all.sort_unstable();
        let want: Vec<u32> = (0..4).flat_map(|p| (0..50).map(move |i| p * 1000 + i)).collect();
        assert_eq!(all, want, "every job delivered exactly once");
        assert!(q.max_depth() <= 8, "bounded queue never exceeds capacity");
    }
}
