//! The daemon itself: program store, worker pool, request dispatch, and the
//! stdio/TCP front ends.
//!
//! One [`Server`] owns a trained [`Tiara`] and a pool of worker threads
//! behind a bounded job queue. Every front end funnels through
//! [`Server::handle_line`] — one request line in, one response line out —
//! so protocol behavior is identical (and testable) without sockets.
//!
//! Shutdown discipline: a `shutdown` request (or stdio EOF) moves the server
//! `Running → Draining` (new predict work is refused with `shutting_down`,
//! queued and in-flight work completes), then `Draining → Stopped` once the
//! queue and in-flight counters hit zero. TCP stops accepting as soon as the
//! server leaves `Running`.

use crate::json::Value;
use crate::metrics::Metrics;
use crate::protocol::{
    error_reply, hex_decode, ok_reply_base, parse_request, Envelope, ErrorKind, ProgramRef, Request,
};
use crate::queue::{BoundedQueue, PushError};
use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};
use tiara::{slice_cache, Error, Tiara};
use tiara_ir::{parse_var_addr, Program, VarAddr, MAGIC};
use tiara_slice::SliceStats;

/// Server lifecycle states (stored in an `AtomicU8`).
const RUNNING: u8 = 0;
const DRAINING: u8 = 1;
const STOPPED: u8 = 2;

/// Tuning knobs for one server instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Maximum predict jobs waiting in the queue; further requests are
    /// rejected with `queue_full`.
    pub queue_capacity: usize,
    /// Worker threads draining the queue. Each worker answers one batch at a
    /// time; within a batch, slicing runs on the shared `tiara_par`
    /// executor.
    pub workers: usize,
    /// Maximum addresses per predict request.
    pub max_batch: usize,
    /// Deadline applied to requests that do not carry their own
    /// `deadline_ms`. `None` means no default deadline.
    pub default_deadline_ms: Option<u64>,
    /// The retry hint attached to `queue_full` rejections.
    pub retry_after_ms: u64,
    /// Addresses classified between deadline checks. Smaller chunks honor
    /// deadlines more precisely at slightly more scheduling overhead.
    pub chunk: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            queue_capacity: 32,
            workers: 2,
            max_batch: 4096,
            default_deadline_ms: None,
            retry_after_ms: 50,
            chunk: 8,
        }
    }
}

/// A resident program: decoded once, fingerprinted once, shared by every
/// request that names its handle.
struct StoredProgram {
    prog: Program,
    fingerprint: u64,
}

impl StoredProgram {
    fn new(prog: Program) -> StoredProgram {
        let fingerprint = slice_cache::program_fingerprint(&prog);
        StoredProgram { prog, fingerprint }
    }
}

/// One queued predict batch. The handler thread blocks on `reply` while a
/// worker classifies.
struct Job {
    prog: Arc<StoredProgram>,
    /// `(input notation, parsed address)` pairs — responses echo the
    /// client's own notation.
    addrs: Vec<(String, VarAddr)>,
    deadline: Option<Instant>,
    id: Option<Value>,
    reply: mpsc::Sender<String>,
}

struct Inner {
    tiara: Tiara,
    config: ServeConfig,
    programs: Mutex<HashMap<String, Arc<StoredProgram>>>,
    queue: BoundedQueue<Job>,
    metrics: Metrics,
    state: AtomicU8,
    in_flight: AtomicU64,
    /// Field-wise rollup of every slice computed by this server (cache hits
    /// contribute zeros — no slicing ran).
    slice_rollup: Mutex<SliceStats>,
}

/// A running inference daemon.
pub struct Server {
    inner: Arc<Inner>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Server {
    /// Builds a server around a trained system and spawns its worker pool.
    ///
    /// # Errors
    ///
    /// [`Error::Untrained`] if the model cannot answer queries, or
    /// [`Error::Serve`] for a zero-worker configuration.
    pub fn new(tiara: Tiara, config: ServeConfig) -> Result<Server, Error> {
        if !tiara.is_trained() {
            return Err(Error::Untrained);
        }
        if config.workers == 0 {
            return Err(Error::Serve("server needs at least one worker".into()));
        }
        let inner = Arc::new(Inner {
            queue: BoundedQueue::new(config.queue_capacity.max(1)),
            tiara,
            config,
            programs: Mutex::new(HashMap::new()),
            metrics: Metrics::new(),
            state: AtomicU8::new(RUNNING),
            in_flight: AtomicU64::new(0),
            slice_rollup: Mutex::new(SliceStats::default()),
        });
        let workers = (0..inner.config.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("tiara-serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker thread")
            })
            .collect();
        Ok(Server { inner, workers: Mutex::new(workers) })
    }

    /// Answers one protocol line. The returned string is a complete response
    /// line (no trailing newline). Never panics on client input.
    pub fn handle_line(&self, line: &str) -> String {
        let inner = &self.inner;
        Metrics::bump(&inner.metrics.requests_total);
        let started = Instant::now();
        let Envelope { request, id } = match parse_request(line) {
            Ok(env) => env,
            Err((kind, msg, id)) => {
                Metrics::bump(&inner.metrics.malformed);
                return error_reply(kind, &msg, id.as_ref(), []);
            }
        };
        match request {
            Request::Ping => render_ok("ping", [], id.as_ref()),
            Request::Stats => self.stats_reply(id.as_ref()),
            Request::Shutdown => {
                self.drain();
                render_ok("shutdown", [], id.as_ref())
            }
            Request::Upload { handle, source } => self.handle_upload(&handle, &source, id.as_ref()),
            Request::Predict { program, addrs, deadline_ms } => {
                self.handle_predict(&program, &addrs, deadline_ms, id.as_ref(), started)
            }
        }
    }

    fn handle_upload(&self, handle: &str, source: &ProgramRef, id: Option<&Value>) -> String {
        let inner = &self.inner;
        if inner.state.load(Ordering::SeqCst) != RUNNING {
            Metrics::bump(&inner.metrics.rejected_shutting_down);
            return error_reply(ErrorKind::ShuttingDown, "server is draining", id, []);
        }
        let stored = match load_program(source) {
            Ok(p) => Arc::new(p),
            Err((kind, msg)) => {
                Metrics::bump(&inner.metrics.malformed);
                return error_reply(kind, &msg, id, []);
            }
        };
        let funcs = stored.prog.funcs().len();
        let insts = stored.prog.num_insts();
        let fingerprint = format!("{:016x}", stored.fingerprint);
        inner
            .programs
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(handle.to_owned(), stored);
        Metrics::bump(&inner.metrics.uploads);
        render_ok(
            "upload",
            [
                ("handle", Value::Str(handle.to_owned())),
                ("funcs", Value::Int(funcs as i64)),
                ("insts", Value::Int(insts as i64)),
                ("fingerprint", Value::Str(fingerprint)),
            ],
            id,
        )
    }

    fn handle_predict(
        &self,
        program: &ProgramRef,
        addrs: &[String],
        deadline_ms: Option<u64>,
        id: Option<&Value>,
        started: Instant,
    ) -> String {
        let inner = &self.inner;
        if inner.state.load(Ordering::SeqCst) != RUNNING {
            Metrics::bump(&inner.metrics.rejected_shutting_down);
            return error_reply(ErrorKind::ShuttingDown, "server is draining", id, []);
        }
        if addrs.len() > inner.config.max_batch {
            Metrics::bump(&inner.metrics.rejected_oversized);
            return error_reply(
                ErrorKind::OversizedBatch,
                &format!("batch of {} exceeds max_batch {}", addrs.len(), inner.config.max_batch),
                id,
                [("max_batch", Value::Int(inner.config.max_batch as i64))],
            );
        }
        let stored = match program {
            ProgramRef::Handle(h) => {
                let got =
                    inner.programs.lock().unwrap_or_else(PoisonError::into_inner).get(h).cloned();
                match got {
                    Some(p) => p,
                    None => {
                        return error_reply(
                            ErrorKind::UnknownProgram,
                            &format!("no uploaded program `{h}`"),
                            id,
                            [],
                        )
                    }
                }
            }
            other => match load_program(other) {
                Ok(p) => Arc::new(p),
                Err((kind, msg)) => {
                    Metrics::bump(&inner.metrics.malformed);
                    return error_reply(kind, &msg, id, []);
                }
            },
        };
        let mut parsed = Vec::with_capacity(addrs.len());
        for a in addrs {
            match parse_var_addr(&stored.prog, a) {
                Ok(addr) => parsed.push((a.clone(), addr)),
                Err(msg) => {
                    Metrics::bump(&inner.metrics.malformed);
                    return error_reply(
                        ErrorKind::BadAddress,
                        &format!("bad address `{a}`: {msg}"),
                        id,
                        [("addr", Value::Str(a.clone()))],
                    );
                }
            }
        }
        let deadline = deadline_ms
            .or(inner.config.default_deadline_ms)
            .map(|ms| started + Duration::from_millis(ms));
        let (tx, rx) = mpsc::channel();
        let n_addrs = parsed.len() as u64;
        let job = Job { prog: stored, addrs: parsed, deadline, id: id.cloned(), reply: tx };
        match inner.queue.try_push(job) {
            Ok(()) => {}
            Err(PushError::Full) => {
                Metrics::bump(&inner.metrics.rejected_queue_full);
                return error_reply(
                    ErrorKind::QueueFull,
                    "request queue at capacity",
                    id,
                    [("retry_after_ms", Value::Int(inner.config.retry_after_ms as i64))],
                );
            }
            Err(PushError::Closed) => {
                Metrics::bump(&inner.metrics.rejected_shutting_down);
                return error_reply(ErrorKind::ShuttingDown, "server is draining", id, []);
            }
        }
        Metrics::bump(&inner.metrics.predict_requests);
        Metrics::add(&inner.metrics.addrs_total, n_addrs);
        let response = rx.recv().unwrap_or_else(|_| {
            error_reply(ErrorKind::Internal, "worker dropped the request", id, [])
        });
        inner
            .metrics
            .observe_latency_us(started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        response
    }

    fn stats_reply(&self, id: Option<&Value>) -> String {
        let inner = &self.inner;
        let m = &inner.metrics;
        let cache = slice_cache::stats();
        let rollup = *inner.slice_rollup.lock().unwrap_or_else(PoisonError::into_inner);
        let load = |c: &AtomicU64| Value::Int(c.load(Ordering::Relaxed) as i64);
        render_ok(
            "stats",
            [
                ("requests_total", load(&m.requests_total)),
                ("predict_requests", load(&m.predict_requests)),
                ("addrs_total", load(&m.addrs_total)),
                ("uploads", load(&m.uploads)),
                ("programs", {
                    let n = inner.programs.lock().unwrap_or_else(PoisonError::into_inner).len();
                    Value::Int(n as i64)
                }),
                ("quantized_inference", Value::Bool(inner.tiara.quantized_inference_active())),
                (
                    "rejected",
                    Value::obj([
                        ("queue_full", load(&m.rejected_queue_full)),
                        ("oversized_batch", load(&m.rejected_oversized)),
                        ("shutting_down", load(&m.rejected_shutting_down)),
                        ("malformed", load(&m.malformed)),
                    ]),
                ),
                ("deadline_partial", load(&m.deadline_partial)),
                (
                    "queue",
                    Value::obj([
                        ("depth", Value::Int(inner.queue.depth() as i64)),
                        ("max_depth", Value::Int(inner.queue.max_depth() as i64)),
                        ("capacity", Value::Int(inner.queue.capacity() as i64)),
                        ("in_flight", Value::Int(inner.in_flight.load(Ordering::SeqCst) as i64)),
                    ]),
                ),
                (
                    "latency_us",
                    Value::obj([
                        ("count", Value::Int(m.latency_count() as i64)),
                        ("p50", Value::Int(m.latency_quantile_us(0.5) as i64)),
                        ("p99", Value::Int(m.latency_quantile_us(0.99) as i64)),
                    ]),
                ),
                (
                    "slice_cache",
                    Value::obj([
                        ("hits", Value::Int(cache.hits as i64)),
                        ("misses", Value::Int(cache.misses as i64)),
                        ("entries", Value::Int(cache.entries as i64)),
                    ]),
                ),
                (
                    "slice_stats",
                    Value::obj([
                        ("steps", Value::Int(rollup.steps as i64)),
                        ("faith_cut_pops", Value::Int(rollup.faith_cut_pops as i64)),
                        ("merges_skipped", Value::Int(rollup.merges_skipped as i64)),
                        (
                            "snapshot_bytes_avoided",
                            Value::Int(rollup.snapshot_bytes_avoided as i64),
                        ),
                        ("set_spills", Value::Int(rollup.set_spills as i64)),
                        ("worklist_hits", Value::Int(rollup.worklist_hits as i64)),
                    ]),
                ),
            ],
            id,
        )
    }

    /// `Running → Draining → Stopped`: refuse new predict work, let queued
    /// and in-flight batches finish, stop the workers. Idempotent;
    /// concurrent callers all block until the drain completes.
    pub fn drain(&self) {
        let inner = &self.inner;
        let _ = inner.state.compare_exchange(RUNNING, DRAINING, Ordering::SeqCst, Ordering::SeqCst);
        while inner.queue.depth() > 0 || inner.in_flight.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        inner.queue.close();
        inner.state.store(STOPPED, Ordering::SeqCst);
        let handles: Vec<_> =
            self.workers.lock().unwrap_or_else(PoisonError::into_inner).drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }

    /// Whether the server still accepts new predict work.
    pub fn is_running(&self) -> bool {
        self.inner.state.load(Ordering::SeqCst) == RUNNING
    }

    /// Whether the server has fully stopped (drained and workers joined).
    pub fn is_stopped(&self) -> bool {
        self.inner.state.load(Ordering::SeqCst) == STOPPED
    }

    /// Serves newline-delimited requests from `reader`, writing one response
    /// line per request to `writer`. EOF triggers a graceful drain; an
    /// explicit `shutdown` request drains and then returns after its reply.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the transport.
    pub fn run_stdio(&self, reader: impl BufRead, mut writer: impl Write) -> std::io::Result<()> {
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let response = self.handle_line(&line);
            writer.write_all(response.as_bytes())?;
            writer.write_all(b"\n")?;
            writer.flush()?;
            if self.is_stopped() {
                return Ok(());
            }
        }
        self.drain();
        Ok(())
    }

    /// Accepts TCP connections until a `shutdown` request arrives, running
    /// the line protocol on each connection in its own thread. Returns once
    /// the server has drained and every connection thread exited.
    ///
    /// # Errors
    ///
    /// Propagates accept errors other than the nonblocking poll's
    /// `WouldBlock`.
    pub fn run_tcp(self: &Arc<Self>, listener: TcpListener) -> std::io::Result<()> {
        listener.set_nonblocking(true)?;
        let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let server = Arc::clone(self);
                    conns.push(std::thread::spawn(move || {
                        let _ = serve_connection(&server, stream);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if !self.is_running() {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(e),
            }
            if !self.is_running() {
                break;
            }
        }
        self.drain();
        for c in conns {
            let _ = c.join();
        }
        Ok(())
    }
}

/// One TCP connection: blocking reads with a poll timeout so the thread
/// notices a server-wide shutdown even under an idle client.
fn serve_connection(server: &Server, stream: std::net::TcpStream) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let mut reader = std::io::BufReader::new(stream.try_clone()?);
    let mut writer = std::io::BufWriter::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // client hung up
            Ok(_) => {
                if line.trim().is_empty() {
                    continue;
                }
                let response = server.handle_line(line.trim_end());
                writer.write_all(response.as_bytes())?;
                writer.write_all(b"\n")?;
                writer.flush()?;
                if server.is_stopped() {
                    return Ok(());
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if server.is_stopped() {
                    return Ok(());
                }
            }
            Err(e) => return Err(e),
        }
    }
}

fn worker_loop(inner: &Inner) {
    while let Some(job) = inner.queue.pop() {
        inner.in_flight.fetch_add(1, Ordering::SeqCst);
        let response = answer(inner, &job);
        // A handler that gave up (it never does today) just drops the
        // receiver; losing the send is fine.
        let _ = job.reply.send(response);
        inner.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Classifies one batch, honoring its deadline between fixed-size chunks.
fn answer(inner: &Inner, job: &Job) -> String {
    let chunk = inner.config.chunk.max(1);
    let exec = tiara_par::global();
    let mut results = Vec::with_capacity(job.addrs.len());
    let mut expired = false;
    for slab in job.addrs.chunks(chunk) {
        if let Some(deadline) = job.deadline {
            if Instant::now() >= deadline {
                expired = true;
                break;
            }
        }
        let addrs: Vec<VarAddr> = slab.iter().map(|(_, a)| *a).collect();
        let preds = match inner.tiara.predict_batch_fingerprinted(
            &job.prog.prog,
            job.prog.fingerprint,
            &addrs,
            &exec,
        ) {
            Ok(p) => p,
            Err(e) => {
                return error_reply(
                    ErrorKind::Internal,
                    &format!("prediction failed: {e}"),
                    job.id.as_ref(),
                    [],
                )
            }
        };
        let mut rollup = inner.slice_rollup.lock().unwrap_or_else(PoisonError::into_inner);
        for p in &preds {
            rollup.absorb(&p.stats);
        }
        drop(rollup);
        for ((text, _), p) in slab.iter().zip(preds) {
            // SliceStats are deliberately NOT serialized per result: a cache
            // hit zeroes them, which would make the same request render
            // differently on repeat. Everything below is cache-invariant.
            results.push(Value::obj([
                ("addr", Value::Str(text.clone())),
                ("class", Value::Str(p.class.to_string())),
                ("class_index", Value::Int(p.class.index() as i64)),
                (
                    "probs",
                    Value::Array(p.probs.iter().map(|&f| Value::Float(f64::from(f))).collect()),
                ),
                ("slice_nodes", Value::Int(p.slice_nodes as i64)),
                ("slice_edges", Value::Int(p.slice_edges as i64)),
            ]));
        }
    }
    if expired {
        Metrics::bump(&inner.metrics.deadline_partial);
    }
    let answered = results.len();
    let mut pairs = ok_reply_base("predict");
    pairs.push(("complete".to_owned(), Value::Bool(!expired)));
    pairs.push(("answered".to_owned(), Value::Int(answered as i64)));
    pairs.push(("requested".to_owned(), Value::Int(job.addrs.len() as i64)));
    if expired {
        pairs.push(("deadline_exceeded".to_owned(), Value::Bool(true)));
    }
    pairs.push(("results".to_owned(), Value::Array(results)));
    if let Some(id) = &job.id {
        pairs.push(("id".to_owned(), id.clone()));
    }
    Value::Object(pairs).render()
}

fn render_ok(
    op: &str,
    fields: impl IntoIterator<Item = (&'static str, Value)>,
    id: Option<&Value>,
) -> String {
    let mut pairs = ok_reply_base(op);
    for (k, v) in fields {
        pairs.push((k.to_owned(), v));
    }
    if let Some(id) = id {
        pairs.push(("id".to_owned(), id.clone()));
    }
    Value::Object(pairs).render()
}

/// Decodes a program from a request's inline hex or a server-side path
/// (assembled `TIRA` image, or textual assembly as a fallback).
fn load_program(source: &ProgramRef) -> Result<StoredProgram, (ErrorKind, String)> {
    match source {
        ProgramRef::Handle(h) => Err((
            ErrorKind::Malformed,
            format!("`{h}` is a handle; upload needs `program_hex` or `program_path`"),
        )),
        ProgramRef::InlineHex(hex) => {
            let bytes = hex_decode(hex).map_err(|e| (ErrorKind::BadProgram, e))?;
            let prog = tiara_ir::disassemble(&bytes)
                .map_err(|e| (ErrorKind::BadProgram, format!("bad TIRA image: {e}")))?;
            Ok(StoredProgram::new(prog))
        }
        ProgramRef::Path(path) => {
            let bytes = std::fs::read(path)
                .map_err(|e| (ErrorKind::BadProgram, format!("cannot read `{path}`: {e}")))?;
            let prog = if bytes.starts_with(MAGIC) {
                tiara_ir::disassemble(&bytes)
                    .map_err(|e| (ErrorKind::BadProgram, format!("bad TIRA image: {e}")))?
            } else {
                let text = String::from_utf8(bytes).map_err(|_| {
                    (ErrorKind::BadProgram, "file is neither TIRA nor UTF-8 asm".to_owned())
                })?;
                tiara_ir::parse_program(&text)
                    .map_err(|e| (ErrorKind::BadProgram, format!("bad asm: {e}")))?
            };
            Ok(StoredProgram::new(prog))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use tiara::{ClassifierConfig, TiaraConfig};
    use tiara_synth::{generate, ProjectSpec, TypeCounts};

    fn trained() -> (Tiara, tiara_synth::Binary) {
        let bin = generate(&ProjectSpec {
            name: "srv".into(),
            index: 3,
            seed: 41,
            counts: TypeCounts { list: 3, vector: 4, map: 3, primitive: 8, ..Default::default() },
        });
        let mut tiara = Tiara::new(TiaraConfig::new().with_classifier(ClassifierConfig {
            epochs: 3,
            batch_size: 8,
            ..Default::default()
        }));
        tiara.train(&[("srv", &bin.program, &bin.debug)]).unwrap();
        (tiara, bin)
    }

    fn upload_line(bin: &tiara_synth::Binary, handle: &str) -> String {
        let hex = crate::protocol::hex_encode(&tiara_ir::assemble(&bin.program));
        format!("{{\"op\":\"upload\",\"handle\":\"{handle}\",\"program_hex\":\"{hex}\"}}")
    }

    fn addr_strings(bin: &tiara_synth::Binary, n: usize) -> Vec<String> {
        bin.debug
            .vars
            .iter()
            .take(n)
            .map(|v| match v.addr {
                VarAddr::Global(m) => format!("0x{:x}", m.0),
                VarAddr::Stack { func, offset } => {
                    let name = &bin.program.funcs()[func.0 as usize].name;
                    if offset < 0 {
                        format!("func:{name}:-0x{:x}", -offset)
                    } else {
                        format!("func:{name}:0x{offset:x}")
                    }
                }
                VarAddr::Heap { site } => format!("heap:0x{:x}", site.0),
            })
            .collect()
    }

    #[test]
    fn untrained_models_cannot_serve() {
        let t = Tiara::new(TiaraConfig::new());
        assert!(matches!(Server::new(t, ServeConfig::default()), Err(Error::Untrained)));
    }

    #[test]
    fn upload_predict_and_handle_reuse() {
        let (tiara, bin) = trained();
        let server = Server::new(tiara, ServeConfig::default()).unwrap();

        let up = server.handle_line(&upload_line(&bin, "p"));
        let up = parse(&up).unwrap();
        assert_eq!(up.get("ok").and_then(Value::as_bool), Some(true));
        assert!(up.get("insts").and_then(Value::as_i64).unwrap() > 0);

        let addrs = addr_strings(&bin, 4);
        let req = format!(
            "{{\"op\":\"predict\",\"program\":\"p\",\"addrs\":[{}],\"id\":1}}",
            addrs.iter().map(|a| format!("\"{a}\"")).collect::<Vec<_>>().join(",")
        );
        let resp = server.handle_line(&req);
        let v = parse(&resp).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("complete").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("answered").and_then(Value::as_i64), Some(4));
        let results = v.get("results").and_then(Value::as_array).unwrap();
        assert_eq!(results.len(), 4);
        for (r, a) in results.iter().zip(&addrs) {
            assert_eq!(r.get("addr").and_then(Value::as_str), Some(a.as_str()));
            assert!(
                r.get("class").and_then(Value::as_str).unwrap().starts_with("std::")
                    || r.get("class").and_then(Value::as_str).is_some()
            );
            let probs = r.get("probs").and_then(Value::as_array).unwrap();
            let sum: f64 = probs.iter().map(|p| p.as_f64().unwrap()).sum();
            assert!((sum - 1.0).abs() < 1e-4, "probs sum to 1, got {sum}");
        }

        // Same request twice: byte-identical (cache hits must not leak into
        // the response).
        let again = server.handle_line(&req);
        assert_eq!(resp, again, "repeat responses must be byte-identical");

        server.drain();
    }

    #[test]
    fn unknown_handles_bad_addresses_and_oversized_batches_are_structured_errors() {
        let (tiara, bin) = trained();
        let server =
            Server::new(tiara, ServeConfig { max_batch: 2, ..ServeConfig::default() }).unwrap();
        server.handle_line(&upload_line(&bin, "p"));

        let resp = server.handle_line("{\"op\":\"predict\",\"program\":\"ghost\",\"addrs\":[]}");
        let v = parse(&resp).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        assert_eq!(
            v.get("error").unwrap().get("kind").and_then(Value::as_str),
            Some("unknown_program")
        );

        let resp = server
            .handle_line("{\"op\":\"predict\",\"program\":\"p\",\"addrs\":[\"func:nope:8\"]}");
        let v = parse(&resp).unwrap();
        assert_eq!(
            v.get("error").unwrap().get("kind").and_then(Value::as_str),
            Some("bad_address")
        );

        let resp = server.handle_line(
            "{\"op\":\"predict\",\"program\":\"p\",\"addrs\":[\"0x1\",\"0x2\",\"0x3\"]}",
        );
        let v = parse(&resp).unwrap();
        assert_eq!(
            v.get("error").unwrap().get("kind").and_then(Value::as_str),
            Some("oversized_batch")
        );
        assert_eq!(v.get("max_batch").and_then(Value::as_i64), Some(2));
        server.drain();
    }

    #[test]
    fn expired_deadline_yields_a_deterministic_partial_response() {
        let (tiara, bin) = trained();
        let server = Server::new(tiara, ServeConfig::default()).unwrap();
        server.handle_line(&upload_line(&bin, "p"));
        let addrs = addr_strings(&bin, 3);
        let req = format!(
            "{{\"op\":\"predict\",\"program\":\"p\",\"addrs\":[{}],\"deadline_ms\":0}}",
            addrs.iter().map(|a| format!("\"{a}\"")).collect::<Vec<_>>().join(",")
        );
        let resp = server.handle_line(&req);
        let v = parse(&resp).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("complete").and_then(Value::as_bool), Some(false));
        assert_eq!(v.get("deadline_exceeded").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("answered").and_then(Value::as_i64), Some(0));
        assert_eq!(v.get("requested").and_then(Value::as_i64), Some(3));
        assert_eq!(resp, server.handle_line(&req), "expired responses are deterministic too");
        server.drain();
    }

    #[test]
    fn shutdown_drains_and_refuses_new_work() {
        let (tiara, bin) = trained();
        let server = Server::new(tiara, ServeConfig::default()).unwrap();
        server.handle_line(&upload_line(&bin, "p"));
        let resp = server.handle_line("{\"op\":\"shutdown\",\"id\":\"bye\"}");
        let v = parse(&resp).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert!(server.is_stopped());
        let resp = server.handle_line("{\"op\":\"predict\",\"program\":\"p\",\"addrs\":[\"0x1\"]}");
        let v = parse(&resp).unwrap();
        assert_eq!(
            v.get("error").unwrap().get("kind").and_then(Value::as_str),
            Some("shutting_down")
        );
        // Shutdown is idempotent.
        let resp = server.handle_line("{\"op\":\"shutdown\"}");
        assert_eq!(parse(&resp).unwrap().get("ok").and_then(Value::as_bool), Some(true));
    }

    #[test]
    fn stats_reports_counters_and_queue_shape() {
        let (tiara, bin) = trained();
        let server = Server::new(tiara, ServeConfig::default()).unwrap();
        server.handle_line(&upload_line(&bin, "p"));
        let addrs = addr_strings(&bin, 2);
        let req = format!(
            "{{\"op\":\"predict\",\"program\":\"p\",\"addrs\":[{}]}}",
            addrs.iter().map(|a| format!("\"{a}\"")).collect::<Vec<_>>().join(",")
        );
        server.handle_line(&req);
        server.handle_line("definitely not json");
        let v = parse(&server.handle_line("{\"op\":\"stats\"}")).unwrap();
        assert_eq!(v.get("predict_requests").and_then(Value::as_i64), Some(1));
        assert_eq!(v.get("addrs_total").and_then(Value::as_i64), Some(2));
        assert_eq!(v.get("uploads").and_then(Value::as_i64), Some(1));
        assert_eq!(v.get("programs").and_then(Value::as_i64), Some(1));
        let rejected = v.get("rejected").unwrap();
        assert_eq!(rejected.get("malformed").and_then(Value::as_i64), Some(1));
        let queue = v.get("queue").unwrap();
        assert_eq!(queue.get("capacity").and_then(Value::as_i64), Some(32));
        assert_eq!(queue.get("depth").and_then(Value::as_i64), Some(0));
        let lat = v.get("latency_us").unwrap();
        assert_eq!(lat.get("count").and_then(Value::as_i64), Some(1));
        assert!(v.get("slice_stats").unwrap().get("steps").and_then(Value::as_i64).is_some());
        server.drain();
    }

    #[test]
    fn quantized_serving_answers_with_parity_labels() {
        let (mut tiara, bin) = trained();
        // Labels from the f32 model, for the parity check below.
        let addrs = addr_strings(&bin, 4);
        let parsed: Vec<VarAddr> =
            addrs.iter().map(|a| parse_var_addr(&bin.program, a).unwrap()).collect();
        let f32_preds = tiara.predict_batch(&bin.program, &parsed).unwrap();

        tiara.set_quantized_inference(true);
        let server = Server::new(tiara, ServeConfig::default()).unwrap();
        let v = parse(&server.handle_line("{\"op\":\"stats\"}")).unwrap();
        assert_eq!(v.get("quantized_inference").and_then(Value::as_bool), Some(true));

        server.handle_line(&upload_line(&bin, "p"));
        let req = format!(
            "{{\"op\":\"predict\",\"program\":\"p\",\"addrs\":[{}]}}",
            addrs.iter().map(|a| format!("\"{a}\"")).collect::<Vec<_>>().join(",")
        );
        let resp = server.handle_line(&req);
        let v = parse(&resp).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        let results = v.get("results").and_then(Value::as_array).unwrap();
        assert_eq!(results.len(), 4);
        for (r, p) in results.iter().zip(&f32_preds) {
            assert_eq!(
                r.get("class").and_then(Value::as_str),
                Some(p.class.to_string().as_str()),
                "quantized serving must agree with f32 labels"
            );
        }
        assert_eq!(resp, server.handle_line(&req), "quantized responses are deterministic");
        server.drain();
    }

    #[test]
    fn stdio_loop_answers_and_drains_on_eof() {
        let (tiara, bin) = trained();
        let server = Server::new(tiara, ServeConfig::default()).unwrap();
        let input = format!("{}\n{}\n", upload_line(&bin, "p"), "{\"op\":\"ping\",\"id\":9}");
        let mut out = Vec::new();
        server.run_stdio(std::io::BufReader::new(input.as_bytes()), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[1], "{\"ok\":true,\"op\":\"ping\",\"id\":9}");
        assert!(server.is_stopped(), "EOF drains the server");
    }
}
