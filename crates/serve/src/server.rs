//! The daemon itself: model registry, program store, worker pool, admission
//! control, and the stdio/TCP front ends.
//!
//! One [`Server`] owns a [`Registry`] of trained models and a pool of worker
//! threads behind a cost-aware [`AdmissionQueue`]. Every front end funnels
//! through [`Server::process`] — one request line in, one response line out
//! — so protocol behavior is identical (and testable) without sockets.
//! [`Server::handle_line`] is the synchronous wrapper (stdio, tests); the
//! TCP front end is the nonblocking reactor in `crate::reactor`, which
//! parks queued predicts and delivers their responses when workers finish.
//!
//! Shutdown discipline: a `shutdown` request (or stdio EOF) moves the server
//! `Running → Draining` (new predict work is refused with `shutting_down`,
//! queued and in-flight work completes), then `Draining → Stopped` once the
//! queue and in-flight counters hit zero. The reactor stops accepting as
//! soon as the server leaves `Running`, flushes buffered responses, and
//! closes every connection.

use crate::admission::{AdmissionQueue, AdmitError};
use crate::json::Value;
use crate::metrics::Metrics;
use crate::protocol::{
    error_reply, hex_decode, ok_reply_base, parse_request, Envelope, ErrorKind, ProgramRef, Request,
};
use crate::registry::{ModelEntry, ModelHandle, Registry};
use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};
use tiara::{slice_cache, Error, Tiara};
use tiara_ir::{parse_var_addr, Program, VarAddr, MAGIC};
use tiara_slice::SliceStats;

/// Server lifecycle states (stored in an `AtomicU8`).
const RUNNING: u8 = 0;
const DRAINING: u8 = 1;
const STOPPED: u8 = 2;

/// The alias v1 requests (no `model` field) resolve against.
pub const DEFAULT_ALIAS: &str = "default";

/// Tuning knobs for one server instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Maximum predict jobs waiting per client lane; further requests from
    /// that client are rejected with `queue_full` (other clients are
    /// unaffected).
    pub queue_capacity: usize,
    /// Worker threads draining the queue. Each worker answers one batch at a
    /// time; within a batch, slicing runs on the shared `tiara_par`
    /// executor.
    pub workers: usize,
    /// Maximum addresses per predict request.
    pub max_batch: usize,
    /// Deadline applied to requests that do not carry their own
    /// `deadline_ms`. `None` means no default deadline.
    pub default_deadline_ms: Option<u64>,
    /// The retry hint attached to `queue_full` and `overloaded` rejections.
    pub retry_after_ms: u64,
    /// Addresses classified between deadline checks. Smaller chunks honor
    /// deadlines more precisely at slightly more scheduling overhead.
    pub chunk: usize,
    /// Maximum simultaneously open reactor connections; further accepts are
    /// answered with a `conn_limit` error line and closed.
    pub max_conns: usize,
    /// Idle reactor connections (no pending work, empty buffers) are closed
    /// after this long. Zero disables the idle timeout.
    pub idle_timeout_ms: u64,
    /// Total queued admission cost (estimated slicer steps) where
    /// probabilistic shedding starts.
    pub soft_cost: u64,
    /// Total queued admission cost where every request is rejected.
    pub hard_cost: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            queue_capacity: 32,
            workers: 2,
            max_batch: 4096,
            default_deadline_ms: None,
            retry_after_ms: 50,
            chunk: 8,
            max_conns: 1024,
            idle_timeout_ms: 30_000,
            soft_cost: 32 << 20,
            hard_cost: 64 << 20,
        }
    }
}

/// A resident program: decoded once, fingerprinted once, shared by every
/// request that names its handle.
struct StoredProgram {
    prog: Program,
    fingerprint: u64,
}

impl StoredProgram {
    fn new(prog: Program) -> StoredProgram {
        let fingerprint = slice_cache::program_fingerprint(&prog);
        StoredProgram { prog, fingerprint }
    }
}

/// Where a worker delivers a finished response.
pub(crate) enum ReplySink {
    /// A synchronous caller blocked on the receiving end (stdio, tests).
    Channel(mpsc::Sender<String>),
    /// A reactor connection: the completion lands in the reactor's inbox
    /// tagged with the connection id.
    Conn {
        /// Reactor connection id.
        conn: u64,
        /// The reactor's completion inbox.
        tx: mpsc::Sender<(u64, String)>,
    },
}

impl ReplySink {
    fn send(&self, response: String) {
        // A receiver that gave up (reactor shut down, caller dropped) just
        // loses the line; nothing to do.
        match self {
            ReplySink::Channel(tx) => drop(tx.send(response)),
            ReplySink::Conn { conn, tx } => drop(tx.send((*conn, response))),
        }
    }
}

/// How [`Server::process`] answered a request line.
pub(crate) enum Dispatch {
    /// The response is ready now.
    Immediate(String),
    /// A predict batch was queued; the response arrives through the
    /// [`ReplySink`] when a worker finishes.
    Queued,
}

/// One queued predict batch.
struct Job {
    /// In-flight guard: keeps the model resident and its refcount up.
    model: ModelHandle,
    prog: Arc<StoredProgram>,
    /// `(input notation, parsed address)` pairs — responses echo the
    /// client's own notation.
    addrs: Vec<(String, VarAddr)>,
    deadline: Option<Instant>,
    started: Instant,
    id: Option<Value>,
    reply: ReplySink,
}

struct Inner {
    registry: Registry,
    config: ServeConfig,
    programs: Mutex<HashMap<String, Arc<StoredProgram>>>,
    queue: AdmissionQueue<Job>,
    metrics: Metrics,
    state: AtomicU8,
    in_flight: AtomicU64,
    /// Field-wise rollup of every slice computed by this server (cache hits
    /// contribute zeros — no slicing ran).
    slice_rollup: Mutex<SliceStats>,
}

/// A running inference daemon.
pub struct Server {
    inner: Arc<Inner>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Server {
    /// Builds a server around a model registry and spawns its worker pool.
    /// The registry may start empty — models arrive via `model_load`.
    ///
    /// # Errors
    ///
    /// [`Error::Serve`] for a zero-worker configuration or an inverted cost
    /// budget.
    pub fn new(registry: Registry, config: ServeConfig) -> Result<Server, Error> {
        if config.workers == 0 {
            return Err(Error::Serve("server needs at least one worker".into()));
        }
        if config.hard_cost <= config.soft_cost {
            return Err(Error::Serve("hard_cost must exceed soft_cost".into()));
        }
        let inner = Arc::new(Inner {
            queue: AdmissionQueue::new(
                config.queue_capacity.max(1),
                config.soft_cost,
                config.hard_cost,
            ),
            registry,
            config,
            programs: Mutex::new(HashMap::new()),
            metrics: Metrics::new(),
            state: AtomicU8::new(RUNNING),
            in_flight: AtomicU64::new(0),
            slice_rollup: Mutex::new(SliceStats::default()),
        });
        let workers = (0..inner.config.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("tiara-serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker thread")
            })
            .collect();
        Ok(Server { inner, workers: Mutex::new(workers) })
    }

    /// Convenience: a server whose registry holds one model under the
    /// `default` alias — the v1 single-model shape.
    ///
    /// # Errors
    ///
    /// [`Error::Untrained`] if the model cannot answer queries, plus
    /// everything [`Server::new`] rejects.
    pub fn with_model(tiara: Tiara, config: ServeConfig) -> Result<Server, Error> {
        Server::new(Registry::with_default(tiara)?, config)
    }

    /// The model registry this server answers from. The CLI holds a clone
    /// of the same registry to persist slice caches after a drain.
    pub fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    pub(crate) fn config(&self) -> &ServeConfig {
        &self.inner.config
    }

    pub(crate) fn metrics(&self) -> &Metrics {
        &self.inner.metrics
    }

    /// Answers one protocol line synchronously. The returned string is a
    /// complete response line (no trailing newline). Never panics on client
    /// input.
    pub fn handle_line(&self, line: &str) -> String {
        let (tx, rx) = mpsc::channel();
        match self.process(line, "local", ReplySink::Channel(tx)) {
            Dispatch::Immediate(response) => response,
            Dispatch::Queued => rx.recv().unwrap_or_else(|_| {
                error_reply(ErrorKind::Internal, "worker dropped the request", None, [])
            }),
        }
    }

    /// Dispatches one request line for `client` (the fairness key). Predict
    /// batches queue and answer through `sink`; everything else answers
    /// immediately.
    pub(crate) fn process(&self, line: &str, client: &str, sink: ReplySink) -> Dispatch {
        let inner = &self.inner;
        Metrics::bump(&inner.metrics.requests_total);
        let started = Instant::now();
        let Envelope { request, id } = match parse_request(line) {
            Ok(env) => env,
            Err((kind, msg, id)) => {
                Metrics::bump(&inner.metrics.malformed);
                return Dispatch::Immediate(error_reply(kind, &msg, id.as_ref(), []));
            }
        };
        let reply = match request {
            Request::Hello => self.hello_reply(id.as_ref()),
            Request::Ping => render_ok("ping", [], id.as_ref()),
            Request::Stats => self.stats_reply(id.as_ref()),
            Request::Shutdown => {
                self.drain();
                render_ok("shutdown", [], id.as_ref())
            }
            Request::Upload { handle, source } => self.handle_upload(&handle, &source, id.as_ref()),
            Request::ModelLoad { model, path } => {
                self.handle_model_load(&model, &path, id.as_ref())
            }
            Request::ModelUnload { model, force } => {
                self.handle_model_unload(&model, force, id.as_ref())
            }
            Request::ModelAlias { alias, model } => {
                self.handle_model_alias(&alias, &model, id.as_ref())
            }
            Request::ModelList => self.model_list_reply(id.as_ref()),
            Request::Predict { program, addrs, model, deadline_ms } => {
                return self.handle_predict(
                    &program,
                    &addrs,
                    model.as_deref(),
                    deadline_ms,
                    id.as_ref(),
                    client,
                    sink,
                    started,
                )
            }
        };
        Dispatch::Immediate(reply)
    }

    fn hello_reply(&self, id: Option<&Value>) -> String {
        let models: Vec<Value> =
            self.inner.registry.list().into_iter().map(|(alias, _)| Value::Str(alias)).collect();
        // Keep this list sorted: it is part of the wire fixture.
        let capabilities = [
            "admission_control",
            "deadlines",
            "model_registry",
            "multiplexed_tcp",
            "predict_batch",
            "slice_cache",
        ];
        render_ok(
            "hello",
            [
                ("server", Value::Str("tiara-serve".to_owned())),
                ("version", Value::Str(env!("CARGO_PKG_VERSION").to_owned())),
                ("models", Value::Array(models)),
                (
                    "capabilities",
                    Value::Array(
                        capabilities.iter().map(|c| Value::Str((*c).to_owned())).collect(),
                    ),
                ),
                ("max_batch", Value::Int(self.inner.config.max_batch as i64)),
            ],
            id,
        )
    }

    fn handle_upload(&self, handle: &str, source: &ProgramRef, id: Option<&Value>) -> String {
        let inner = &self.inner;
        if inner.state.load(Ordering::SeqCst) != RUNNING {
            Metrics::bump(&inner.metrics.rejected_shutting_down);
            return error_reply(ErrorKind::ShuttingDown, "server is draining", id, []);
        }
        let stored = match load_program(source) {
            Ok(p) => Arc::new(p),
            Err((kind, msg)) => {
                Metrics::bump(&inner.metrics.malformed);
                return error_reply(kind, &msg, id, []);
            }
        };
        let funcs = stored.prog.funcs().len();
        let insts = stored.prog.num_insts();
        let fingerprint = format!("{:016x}", stored.fingerprint);
        inner
            .programs
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(handle.to_owned(), stored);
        Metrics::bump(&inner.metrics.uploads);
        render_ok(
            "upload",
            [
                ("handle", Value::Str(handle.to_owned())),
                ("funcs", Value::Int(funcs as i64)),
                ("insts", Value::Int(insts as i64)),
                ("fingerprint", Value::Str(fingerprint)),
            ],
            id,
        )
    }

    fn handle_model_load(&self, alias: &str, path: &str, id: Option<&Value>) -> String {
        let inner = &self.inner;
        if inner.state.load(Ordering::SeqCst) != RUNNING {
            Metrics::bump(&inner.metrics.rejected_shutting_down);
            return error_reply(ErrorKind::ShuttingDown, "server is draining", id, []);
        }
        let tiara = match Tiara::load(std::path::Path::new(path)) {
            Ok(t) => t,
            Err(e) => {
                return error_reply(
                    ErrorKind::BadModel,
                    &format!("cannot load `{path}`: {e}"),
                    id,
                    [("path", Value::Str(path.to_owned()))],
                )
            }
        };
        let cached_slices = tiara.restored_cache_entries();
        match inner.registry.insert(alias, tiara, Some(path.to_owned())) {
            Ok((entry, fresh)) => {
                Metrics::bump(&inner.metrics.model_loads);
                render_ok(
                    "model_load",
                    [
                        ("model", Value::Str(alias.to_owned())),
                        ("digest", Value::Str(format!("{:016x}", entry.digest()))),
                        ("fresh", Value::Bool(fresh)),
                        ("cached_slices", Value::Int(cached_slices as i64)),
                    ],
                    id,
                )
            }
            Err(e) => {
                error_reply(ErrorKind::BadModel, &format!("cannot serve `{path}`: {e}"), id, [])
            }
        }
    }

    fn handle_model_unload(&self, alias: &str, force: bool, id: Option<&Value>) -> String {
        let inner = &self.inner;
        match inner.registry.unload(alias, force) {
            Ok(out) => {
                if out.dropped {
                    Metrics::bump(&inner.metrics.model_unloads);
                }
                render_ok(
                    "model_unload",
                    [
                        ("model", Value::Str(alias.to_owned())),
                        ("digest", Value::Str(format!("{:016x}", out.digest))),
                        ("dropped", Value::Bool(out.dropped)),
                        ("aliases_left", Value::Int(out.aliases_left as i64)),
                    ],
                    id,
                )
            }
            Err(Error::ModelBusy(msg)) => error_reply(
                ErrorKind::ModelBusy,
                &format!("model has requests in flight: {msg}"),
                id,
                [("model", Value::Str(alias.to_owned()))],
            ),
            Err(e) => {
                Metrics::bump(&inner.metrics.rejected_unknown_model);
                error_reply(
                    ErrorKind::UnknownModel,
                    &e.to_string(),
                    id,
                    [("model", Value::Str(alias.to_owned()))],
                )
            }
        }
    }

    fn handle_model_alias(&self, alias: &str, model: &str, id: Option<&Value>) -> String {
        match self.inner.registry.alias(alias, model) {
            Ok(entry) => render_ok(
                "model_alias",
                [
                    ("alias", Value::Str(alias.to_owned())),
                    ("model", Value::Str(model.to_owned())),
                    ("digest", Value::Str(format!("{:016x}", entry.digest()))),
                ],
                id,
            ),
            Err(e) => {
                Metrics::bump(&self.inner.metrics.rejected_unknown_model);
                error_reply(
                    ErrorKind::UnknownModel,
                    &e.to_string(),
                    id,
                    [("model", Value::Str(model.to_owned()))],
                )
            }
        }
    }

    fn model_list_reply(&self, id: Option<&Value>) -> String {
        let models: Vec<Value> = self
            .inner
            .registry
            .list()
            .into_iter()
            .map(|(alias, entry)| model_value(&alias, &entry))
            .collect();
        let count = models.len();
        render_ok(
            "model_list",
            [("count", Value::Int(count as i64)), ("models", Value::Array(models))],
            id,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_predict(
        &self,
        program: &ProgramRef,
        addrs: &[String],
        model: Option<&str>,
        deadline_ms: Option<u64>,
        id: Option<&Value>,
        client: &str,
        sink: ReplySink,
        started: Instant,
    ) -> Dispatch {
        let inner = &self.inner;
        let fail = |resp: String| Dispatch::Immediate(resp);
        if inner.state.load(Ordering::SeqCst) != RUNNING {
            Metrics::bump(&inner.metrics.rejected_shutting_down);
            return fail(error_reply(ErrorKind::ShuttingDown, "server is draining", id, []));
        }
        if addrs.len() > inner.config.max_batch {
            Metrics::bump(&inner.metrics.rejected_oversized);
            return fail(error_reply(
                ErrorKind::OversizedBatch,
                &format!("batch of {} exceeds max_batch {}", addrs.len(), inner.config.max_batch),
                id,
                [("max_batch", Value::Int(inner.config.max_batch as i64))],
            ));
        }
        let alias = model.unwrap_or(DEFAULT_ALIAS);
        let handle = match inner.registry.resolve(alias) {
            Ok(h) => h,
            Err(e) => {
                Metrics::bump(&inner.metrics.rejected_unknown_model);
                return fail(error_reply(
                    ErrorKind::UnknownModel,
                    &e.to_string(),
                    id,
                    [("model", Value::Str(alias.to_owned()))],
                ));
            }
        };
        let stored = match program {
            ProgramRef::Handle(h) => {
                let got =
                    inner.programs.lock().unwrap_or_else(PoisonError::into_inner).get(h).cloned();
                match got {
                    Some(p) => p,
                    None => {
                        return fail(error_reply(
                            ErrorKind::UnknownProgram,
                            &format!("no uploaded program `{h}`"),
                            id,
                            [],
                        ))
                    }
                }
            }
            other => match load_program(other) {
                Ok(p) => Arc::new(p),
                Err((kind, msg)) => {
                    Metrics::bump(&inner.metrics.malformed);
                    return fail(error_reply(kind, &msg, id, []));
                }
            },
        };
        let mut parsed = Vec::with_capacity(addrs.len());
        for a in addrs {
            match parse_var_addr(&stored.prog, a) {
                Ok(addr) => parsed.push((a.clone(), addr)),
                Err(msg) => {
                    Metrics::bump(&inner.metrics.malformed);
                    return fail(error_reply(
                        ErrorKind::BadAddress,
                        &format!("bad address `{a}`: {msg}"),
                        id,
                        [("addr", Value::Str(a.clone()))],
                    ));
                }
            }
        }
        let deadline = deadline_ms
            .or(inner.config.default_deadline_ms)
            .map(|ms| started + Duration::from_millis(ms));
        let n_addrs = parsed.len() as u64;
        let cost = n_addrs.max(1) * handle.est_steps_per_addr();
        let job = Job {
            model: handle,
            prog: stored,
            addrs: parsed,
            deadline,
            started,
            id: id.cloned(),
            reply: sink,
        };
        match inner.queue.try_push(client, cost, job) {
            Ok(()) => {}
            Err(AdmitError::QueueFull) => {
                Metrics::bump(&inner.metrics.rejected_queue_full);
                return fail(error_reply(
                    ErrorKind::QueueFull,
                    "client lane at capacity",
                    id,
                    [("retry_after_ms", Value::Int(inner.config.retry_after_ms as i64))],
                ));
            }
            Err(AdmitError::Overloaded { queued_cost }) => {
                Metrics::bump(&inner.metrics.rejected_overloaded);
                return fail(error_reply(
                    ErrorKind::Overloaded,
                    "admission cost budget exhausted",
                    id,
                    [
                        ("queued_cost", Value::Int(queued_cost as i64)),
                        ("retry_after_ms", Value::Int(inner.config.retry_after_ms as i64)),
                    ],
                ));
            }
            Err(AdmitError::Closed) => {
                Metrics::bump(&inner.metrics.rejected_shutting_down);
                return fail(error_reply(ErrorKind::ShuttingDown, "server is draining", id, []));
            }
        }
        Metrics::bump(&inner.metrics.predict_requests);
        Metrics::add(&inner.metrics.addrs_total, n_addrs);
        Dispatch::Queued
    }

    fn stats_reply(&self, id: Option<&Value>) -> String {
        let inner = &self.inner;
        let m = &inner.metrics;
        let cache = slice_cache::stats();
        let rollup = *inner.slice_rollup.lock().unwrap_or_else(PoisonError::into_inner);
        let load = |c: &AtomicU64| Value::Int(c.load(Ordering::Relaxed) as i64);
        let models: Vec<Value> = inner
            .registry
            .list()
            .into_iter()
            .map(|(alias, entry)| model_value(&alias, &entry))
            .collect();
        render_ok(
            "stats",
            [
                ("requests_total", load(&m.requests_total)),
                ("predict_requests", load(&m.predict_requests)),
                ("addrs_total", load(&m.addrs_total)),
                ("uploads", load(&m.uploads)),
                ("programs", {
                    let n = inner.programs.lock().unwrap_or_else(PoisonError::into_inner).len();
                    Value::Int(n as i64)
                }),
                ("models", Value::Array(models)),
                (
                    "rejected",
                    Value::obj([
                        ("queue_full", load(&m.rejected_queue_full)),
                        ("overloaded", load(&m.rejected_overloaded)),
                        ("oversized_batch", load(&m.rejected_oversized)),
                        ("shutting_down", load(&m.rejected_shutting_down)),
                        ("unknown_model", load(&m.rejected_unknown_model)),
                        ("malformed", load(&m.malformed)),
                    ]),
                ),
                ("deadline_partial", load(&m.deadline_partial)),
                (
                    "queue",
                    Value::obj([
                        ("depth", Value::Int(inner.queue.depth() as i64)),
                        ("max_depth", Value::Int(inner.queue.max_depth() as i64)),
                        ("capacity", Value::Int(inner.queue.capacity() as i64)),
                        ("in_flight", Value::Int(inner.in_flight.load(Ordering::SeqCst) as i64)),
                    ]),
                ),
                (
                    "admission",
                    Value::obj([
                        ("queued_cost", Value::Int(inner.queue.queued_cost() as i64)),
                        ("soft_cost", Value::Int(inner.queue.soft_cost() as i64)),
                        ("hard_cost", Value::Int(inner.queue.hard_cost() as i64)),
                        ("active_clients", Value::Int(inner.queue.active_clients() as i64)),
                    ]),
                ),
                (
                    "connections",
                    Value::obj([
                        ("open", load(&m.conns_open)),
                        ("peak", load(&m.conns_peak)),
                        ("idle_disconnects", load(&m.idle_disconnects)),
                        ("conn_limit_rejects", load(&m.conn_limit_rejects)),
                    ]),
                ),
                (
                    "latency_us",
                    Value::obj([
                        ("count", Value::Int(m.latency_count() as i64)),
                        ("p50", Value::Int(m.latency_quantile_us(0.5) as i64)),
                        ("p99", Value::Int(m.latency_quantile_us(0.99) as i64)),
                    ]),
                ),
                (
                    "slice_cache",
                    Value::obj([
                        ("hits", Value::Int(cache.hits as i64)),
                        ("misses", Value::Int(cache.misses as i64)),
                        ("entries", Value::Int(cache.entries as i64)),
                    ]),
                ),
                (
                    "slice_stats",
                    Value::obj([
                        ("steps", Value::Int(rollup.steps as i64)),
                        ("faith_cut_pops", Value::Int(rollup.faith_cut_pops as i64)),
                        ("merges_skipped", Value::Int(rollup.merges_skipped as i64)),
                        (
                            "snapshot_bytes_avoided",
                            Value::Int(rollup.snapshot_bytes_avoided as i64),
                        ),
                        ("set_spills", Value::Int(rollup.set_spills as i64)),
                        ("worklist_hits", Value::Int(rollup.worklist_hits as i64)),
                    ]),
                ),
            ],
            id,
        )
    }

    /// `Running → Draining → Stopped`: refuse new predict work, let queued
    /// and in-flight batches finish, stop the workers. Idempotent;
    /// concurrent callers all block until the drain completes.
    pub fn drain(&self) {
        let inner = &self.inner;
        let _ = inner.state.compare_exchange(RUNNING, DRAINING, Ordering::SeqCst, Ordering::SeqCst);
        while inner.queue.depth() > 0 || inner.in_flight.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        inner.queue.close();
        inner.state.store(STOPPED, Ordering::SeqCst);
        let handles: Vec<_> =
            self.workers.lock().unwrap_or_else(PoisonError::into_inner).drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }

    /// Whether the server still accepts new predict work.
    pub fn is_running(&self) -> bool {
        self.inner.state.load(Ordering::SeqCst) == RUNNING
    }

    /// Whether the server has fully stopped (drained and workers joined).
    pub fn is_stopped(&self) -> bool {
        self.inner.state.load(Ordering::SeqCst) == STOPPED
    }

    /// Serves newline-delimited requests from `reader`, writing one response
    /// line per request to `writer`. EOF triggers a graceful drain; an
    /// explicit `shutdown` request drains and then returns after its reply.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the transport.
    pub fn run_stdio(&self, reader: impl BufRead, mut writer: impl Write) -> std::io::Result<()> {
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let response = self.handle_line(&line);
            writer.write_all(response.as_bytes())?;
            writer.write_all(b"\n")?;
            writer.flush()?;
            if self.is_stopped() {
                return Ok(());
            }
        }
        self.drain();
        Ok(())
    }

    /// Runs the nonblocking reactor: accepts TCP connections and multiplexes
    /// them onto the worker pool until a `shutdown` request arrives (from
    /// any connection), then flushes and closes every connection. See
    /// `crate::reactor`.
    ///
    /// # Errors
    ///
    /// Propagates listener/socket errors other than the nonblocking poll's
    /// `WouldBlock`.
    pub fn run_tcp(self: &Arc<Self>, listener: TcpListener) -> std::io::Result<()> {
        crate::reactor::run(self, listener)
    }
}

/// The per-model object rendered into `stats` and `model_list` replies.
fn model_value(alias: &str, entry: &ModelEntry) -> Value {
    let stats = entry.stats();
    Value::obj([
        ("model", Value::Str(alias.to_owned())),
        ("digest", Value::Str(format!("{:016x}", entry.digest()))),
        ("quantized", Value::Bool(entry.tiara().quantized_inference_active())),
        ("requests", Value::Int(stats.requests.load(Ordering::Relaxed) as i64)),
        ("addrs", Value::Int(stats.addrs.load(Ordering::Relaxed) as i64)),
        ("in_flight", Value::Int(entry.in_flight() as i64)),
        ("est_steps_per_addr", Value::Int(entry.est_steps_per_addr() as i64)),
        (
            "latency_us",
            Value::obj([
                ("count", Value::Int(stats.latency.count() as i64)),
                ("p50", Value::Int(stats.latency.quantile_us(0.5) as i64)),
                ("p99", Value::Int(stats.latency.quantile_us(0.99) as i64)),
            ]),
        ),
    ])
}

fn worker_loop(inner: &Inner) {
    while let Some(job) = inner.queue.pop() {
        inner.in_flight.fetch_add(1, Ordering::SeqCst);
        let (response, slice_steps) = answer(inner, &job);
        let elapsed_us = job.started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        inner.metrics.observe_latency_us(elapsed_us);
        job.model.stats().record(job.addrs.len() as u64, slice_steps, elapsed_us);
        // Release the model handle and the in-flight slot BEFORE delivering
        // the response: a caller that sees its reply must also see the
        // counters settled (stats right after a predict reads in_flight 0).
        let Job { model, reply, .. } = job;
        drop(model);
        inner.in_flight.fetch_sub(1, Ordering::SeqCst);
        reply.send(response);
    }
}

/// Classifies one batch, honoring its deadline between fixed-size chunks.
/// Returns the response line and the slicer steps spent (for the model's
/// cost estimator).
fn answer(inner: &Inner, job: &Job) -> (String, u64) {
    let chunk = inner.config.chunk.max(1);
    let exec = tiara_par::global();
    let mut results = Vec::with_capacity(job.addrs.len());
    let mut expired = false;
    let mut slice_steps = 0u64;
    for slab in job.addrs.chunks(chunk) {
        if let Some(deadline) = job.deadline {
            if Instant::now() >= deadline {
                expired = true;
                break;
            }
        }
        let addrs: Vec<VarAddr> = slab.iter().map(|(_, a)| *a).collect();
        let preds = match job.model.tiara().predict_batch_fingerprinted(
            &job.prog.prog,
            job.prog.fingerprint,
            &addrs,
            &exec,
        ) {
            Ok(p) => p,
            Err(e) => {
                return (
                    error_reply(
                        ErrorKind::Internal,
                        &format!("prediction failed: {e}"),
                        job.id.as_ref(),
                        [],
                    ),
                    slice_steps,
                )
            }
        };
        let mut rollup = inner.slice_rollup.lock().unwrap_or_else(PoisonError::into_inner);
        for p in &preds {
            rollup.absorb(&p.stats);
            slice_steps += p.stats.steps;
        }
        drop(rollup);
        for ((text, _), p) in slab.iter().zip(preds) {
            // SliceStats are deliberately NOT serialized per result: a cache
            // hit zeroes them, which would make the same request render
            // differently on repeat. Everything below is cache-invariant.
            results.push(Value::obj([
                ("addr", Value::Str(text.clone())),
                ("class", Value::Str(p.class.to_string())),
                ("class_index", Value::Int(p.class.index() as i64)),
                (
                    "probs",
                    Value::Array(p.probs.iter().map(|&f| Value::Float(f64::from(f))).collect()),
                ),
                ("slice_nodes", Value::Int(p.slice_nodes as i64)),
                ("slice_edges", Value::Int(p.slice_edges as i64)),
            ]));
        }
    }
    if expired {
        Metrics::bump(&inner.metrics.deadline_partial);
    }
    let answered = results.len();
    let mut pairs = ok_reply_base("predict");
    pairs.push(("complete".to_owned(), Value::Bool(!expired)));
    pairs.push(("answered".to_owned(), Value::Int(answered as i64)));
    pairs.push(("requested".to_owned(), Value::Int(job.addrs.len() as i64)));
    if expired {
        pairs.push(("deadline_exceeded".to_owned(), Value::Bool(true)));
    }
    pairs.push(("results".to_owned(), Value::Array(results)));
    if let Some(id) = &job.id {
        pairs.push(("id".to_owned(), id.clone()));
    }
    (Value::Object(pairs).render(), slice_steps)
}

fn render_ok(
    op: &str,
    fields: impl IntoIterator<Item = (&'static str, Value)>,
    id: Option<&Value>,
) -> String {
    let mut pairs = ok_reply_base(op);
    for (k, v) in fields {
        pairs.push((k.to_owned(), v));
    }
    if let Some(id) = id {
        pairs.push(("id".to_owned(), id.clone()));
    }
    Value::Object(pairs).render()
}

/// Decodes a program from a request's inline hex or a server-side path
/// (assembled `TIRA` image, or textual assembly as a fallback).
fn load_program(source: &ProgramRef) -> Result<StoredProgram, (ErrorKind, String)> {
    match source {
        ProgramRef::Handle(h) => Err((
            ErrorKind::Malformed,
            format!("`{h}` is a handle; upload needs `program_hex` or `program_path`"),
        )),
        ProgramRef::InlineHex(hex) => {
            let bytes = hex_decode(hex).map_err(|e| (ErrorKind::BadProgram, e))?;
            let prog = tiara_ir::disassemble(&bytes)
                .map_err(|e| (ErrorKind::BadProgram, format!("bad TIRA image: {e}")))?;
            Ok(StoredProgram::new(prog))
        }
        ProgramRef::Path(path) => {
            let bytes = std::fs::read(path)
                .map_err(|e| (ErrorKind::BadProgram, format!("cannot read `{path}`: {e}")))?;
            let prog = if bytes.starts_with(MAGIC) {
                tiara_ir::disassemble(&bytes)
                    .map_err(|e| (ErrorKind::BadProgram, format!("bad TIRA image: {e}")))?
            } else {
                let text = String::from_utf8(bytes).map_err(|_| {
                    (ErrorKind::BadProgram, "file is neither TIRA nor UTF-8 asm".to_owned())
                })?;
                tiara_ir::parse_program(&text)
                    .map_err(|e| (ErrorKind::BadProgram, format!("bad asm: {e}")))?
            };
            Ok(StoredProgram::new(prog))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use tiara::{ClassifierConfig, TiaraConfig};
    use tiara_synth::{generate, ProjectSpec, TypeCounts};

    fn trained() -> (Tiara, tiara_synth::Binary) {
        let bin = generate(&ProjectSpec {
            name: "srv".into(),
            index: 3,
            seed: 41,
            counts: TypeCounts { list: 3, vector: 4, map: 3, primitive: 8, ..Default::default() },
        });
        let mut tiara = Tiara::new(TiaraConfig::new().with_classifier(ClassifierConfig {
            epochs: 3,
            batch_size: 8,
            ..Default::default()
        }));
        tiara.train(&[("srv", &bin.program, &bin.debug)]).unwrap();
        (tiara, bin)
    }

    fn upload_line(bin: &tiara_synth::Binary, handle: &str) -> String {
        let hex = crate::protocol::hex_encode(&tiara_ir::assemble(&bin.program));
        format!("{{\"op\":\"upload\",\"handle\":\"{handle}\",\"program_hex\":\"{hex}\"}}")
    }

    fn addr_strings(bin: &tiara_synth::Binary, n: usize) -> Vec<String> {
        bin.debug
            .vars
            .iter()
            .take(n)
            .map(|v| match v.addr {
                VarAddr::Global(m) => format!("0x{:x}", m.0),
                VarAddr::Stack { func, offset } => {
                    let name = &bin.program.funcs()[func.0 as usize].name;
                    if offset < 0 {
                        format!("func:{name}:-0x{:x}", -offset)
                    } else {
                        format!("func:{name}:0x{offset:x}")
                    }
                }
                VarAddr::Heap { site } => format!("heap:0x{:x}", site.0),
            })
            .collect()
    }

    #[test]
    fn untrained_models_cannot_serve() {
        let t = Tiara::new(TiaraConfig::new());
        assert!(matches!(Server::with_model(t, ServeConfig::default()), Err(Error::Untrained)));
    }

    #[test]
    fn empty_registries_answer_unknown_model() {
        let server = Server::new(Registry::new(), ServeConfig::default()).unwrap();
        let resp = server.handle_line("{\"op\":\"predict\",\"program_hex\":\"\",\"addrs\":[]}");
        let v = parse(&resp).unwrap();
        assert_eq!(
            v.get("error").unwrap().get("kind").and_then(Value::as_str),
            Some("unknown_model")
        );
        assert_eq!(v.get("model").and_then(Value::as_str), Some("default"));
        server.drain();
    }

    #[test]
    fn upload_predict_and_handle_reuse() {
        let (tiara, bin) = trained();
        let server = Server::with_model(tiara, ServeConfig::default()).unwrap();

        let up = server.handle_line(&upload_line(&bin, "p"));
        let up = parse(&up).unwrap();
        assert_eq!(up.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(up.get("proto").and_then(Value::as_i64), Some(2));
        assert!(up.get("insts").and_then(Value::as_i64).unwrap() > 0);

        let addrs = addr_strings(&bin, 4);
        let req = format!(
            "{{\"op\":\"predict\",\"program\":\"p\",\"addrs\":[{}],\"id\":1}}",
            addrs.iter().map(|a| format!("\"{a}\"")).collect::<Vec<_>>().join(",")
        );
        let resp = server.handle_line(&req);
        let v = parse(&resp).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("complete").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("answered").and_then(Value::as_i64), Some(4));
        let results = v.get("results").and_then(Value::as_array).unwrap();
        assert_eq!(results.len(), 4);
        for (r, a) in results.iter().zip(&addrs) {
            assert_eq!(r.get("addr").and_then(Value::as_str), Some(a.as_str()));
            assert!(
                r.get("class").and_then(Value::as_str).unwrap().starts_with("std::")
                    || r.get("class").and_then(Value::as_str).is_some()
            );
            let probs = r.get("probs").and_then(Value::as_array).unwrap();
            let sum: f64 = probs.iter().map(|p| p.as_f64().unwrap()).sum();
            assert!((sum - 1.0).abs() < 1e-4, "probs sum to 1, got {sum}");
        }

        // Same request twice: byte-identical (cache hits must not leak into
        // the response). Naming the default alias explicitly (a v2 request)
        // answers identically to the v1 request that omits it.
        let again = server.handle_line(&req);
        assert_eq!(resp, again, "repeat responses must be byte-identical");
        let v2_req = req.replace("\"id\":1", "\"model\":\"default\",\"id\":1");
        assert_eq!(resp, server.handle_line(&v2_req), "v1 and v2 requests answer identically");

        server.drain();
    }

    #[test]
    fn unknown_handles_bad_addresses_and_oversized_batches_are_structured_errors() {
        let (tiara, bin) = trained();
        let server =
            Server::with_model(tiara, ServeConfig { max_batch: 2, ..ServeConfig::default() })
                .unwrap();
        server.handle_line(&upload_line(&bin, "p"));

        let resp = server.handle_line("{\"op\":\"predict\",\"program\":\"ghost\",\"addrs\":[]}");
        let v = parse(&resp).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        assert_eq!(
            v.get("error").unwrap().get("kind").and_then(Value::as_str),
            Some("unknown_program")
        );

        let resp = server
            .handle_line("{\"op\":\"predict\",\"program\":\"p\",\"addrs\":[\"func:nope:8\"]}");
        let v = parse(&resp).unwrap();
        assert_eq!(
            v.get("error").unwrap().get("kind").and_then(Value::as_str),
            Some("bad_address")
        );

        let resp = server.handle_line(
            "{\"op\":\"predict\",\"program\":\"p\",\"addrs\":[\"0x1\",\"0x2\",\"0x3\"]}",
        );
        let v = parse(&resp).unwrap();
        assert_eq!(
            v.get("error").unwrap().get("kind").and_then(Value::as_str),
            Some("oversized_batch")
        );
        assert_eq!(v.get("max_batch").and_then(Value::as_i64), Some(2));

        let resp = server
            .handle_line("{\"op\":\"predict\",\"program\":\"p\",\"addrs\":[],\"model\":\"ghost\"}");
        let v = parse(&resp).unwrap();
        assert_eq!(
            v.get("error").unwrap().get("kind").and_then(Value::as_str),
            Some("unknown_model")
        );
        server.drain();
    }

    #[test]
    fn expired_deadline_yields_a_deterministic_partial_response() {
        let (tiara, bin) = trained();
        let server = Server::with_model(tiara, ServeConfig::default()).unwrap();
        server.handle_line(&upload_line(&bin, "p"));
        let addrs = addr_strings(&bin, 3);
        let req = format!(
            "{{\"op\":\"predict\",\"program\":\"p\",\"addrs\":[{}],\"deadline_ms\":0}}",
            addrs.iter().map(|a| format!("\"{a}\"")).collect::<Vec<_>>().join(",")
        );
        let resp = server.handle_line(&req);
        let v = parse(&resp).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("complete").and_then(Value::as_bool), Some(false));
        assert_eq!(v.get("deadline_exceeded").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("answered").and_then(Value::as_i64), Some(0));
        assert_eq!(v.get("requested").and_then(Value::as_i64), Some(3));
        assert_eq!(resp, server.handle_line(&req), "expired responses are deterministic too");
        server.drain();
    }

    #[test]
    fn shutdown_drains_and_refuses_new_work() {
        let (tiara, bin) = trained();
        let server = Server::with_model(tiara, ServeConfig::default()).unwrap();
        server.handle_line(&upload_line(&bin, "p"));
        let resp = server.handle_line("{\"op\":\"shutdown\",\"id\":\"bye\"}");
        let v = parse(&resp).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert!(server.is_stopped());
        let resp = server.handle_line("{\"op\":\"predict\",\"program\":\"p\",\"addrs\":[\"0x1\"]}");
        let v = parse(&resp).unwrap();
        assert_eq!(
            v.get("error").unwrap().get("kind").and_then(Value::as_str),
            Some("shutting_down")
        );
        // Shutdown is idempotent.
        let resp = server.handle_line("{\"op\":\"shutdown\"}");
        assert_eq!(parse(&resp).unwrap().get("ok").and_then(Value::as_bool), Some(true));
    }

    #[test]
    fn stats_reports_counters_queue_shape_and_models() {
        let (tiara, bin) = trained();
        let server = Server::with_model(tiara, ServeConfig::default()).unwrap();
        server.handle_line(&upload_line(&bin, "p"));
        let addrs = addr_strings(&bin, 2);
        let req = format!(
            "{{\"op\":\"predict\",\"program\":\"p\",\"addrs\":[{}]}}",
            addrs.iter().map(|a| format!("\"{a}\"")).collect::<Vec<_>>().join(",")
        );
        server.handle_line(&req);
        server.handle_line("definitely not json");
        let v = parse(&server.handle_line("{\"op\":\"stats\"}")).unwrap();
        assert_eq!(v.get("proto").and_then(Value::as_i64), Some(2));
        assert_eq!(v.get("predict_requests").and_then(Value::as_i64), Some(1));
        assert_eq!(v.get("addrs_total").and_then(Value::as_i64), Some(2));
        assert_eq!(v.get("uploads").and_then(Value::as_i64), Some(1));
        assert_eq!(v.get("programs").and_then(Value::as_i64), Some(1));
        let models = v.get("models").and_then(Value::as_array).unwrap();
        assert_eq!(models.len(), 1);
        assert_eq!(models[0].get("model").and_then(Value::as_str), Some("default"));
        assert_eq!(models[0].get("requests").and_then(Value::as_i64), Some(1));
        assert_eq!(models[0].get("addrs").and_then(Value::as_i64), Some(2));
        assert_eq!(models[0].get("in_flight").and_then(Value::as_i64), Some(0));
        let rejected = v.get("rejected").unwrap();
        assert_eq!(rejected.get("malformed").and_then(Value::as_i64), Some(1));
        let queue = v.get("queue").unwrap();
        assert_eq!(queue.get("capacity").and_then(Value::as_i64), Some(32));
        assert_eq!(queue.get("depth").and_then(Value::as_i64), Some(0));
        let admission = v.get("admission").unwrap();
        assert_eq!(admission.get("queued_cost").and_then(Value::as_i64), Some(0));
        assert!(admission.get("hard_cost").and_then(Value::as_i64).unwrap() > 0);
        let lat = v.get("latency_us").unwrap();
        assert_eq!(lat.get("count").and_then(Value::as_i64), Some(1));
        assert!(v.get("slice_stats").unwrap().get("steps").and_then(Value::as_i64).is_some());
        assert!(v.get("connections").unwrap().get("open").and_then(Value::as_i64).is_some());
        server.drain();
    }

    #[test]
    fn hello_reports_version_models_and_capabilities() {
        let (tiara, _) = trained();
        let server = Server::with_model(tiara, ServeConfig::default()).unwrap();
        let v = parse(&server.handle_line("{\"op\":\"hello\",\"id\":1}")).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("proto").and_then(Value::as_i64), Some(2));
        assert_eq!(v.get("server").and_then(Value::as_str), Some("tiara-serve"));
        assert_eq!(v.get("version").and_then(Value::as_str), Some(env!("CARGO_PKG_VERSION")));
        let models = v.get("models").and_then(Value::as_array).unwrap();
        assert_eq!(models.len(), 1);
        assert_eq!(models[0].as_str(), Some("default"));
        let caps: Vec<&str> = v
            .get("capabilities")
            .and_then(Value::as_array)
            .unwrap()
            .iter()
            .filter_map(Value::as_str)
            .collect();
        assert!(caps.contains(&"model_registry"));
        let mut sorted = caps.clone();
        sorted.sort_unstable();
        assert_eq!(caps, sorted, "capabilities stay sorted — they are a wire fixture");
        server.drain();
    }

    #[test]
    fn quantized_serving_answers_with_parity_labels() {
        let (mut tiara, bin) = trained();
        // Labels from the f32 model, for the parity check below.
        let addrs = addr_strings(&bin, 4);
        let parsed: Vec<VarAddr> =
            addrs.iter().map(|a| parse_var_addr(&bin.program, a).unwrap()).collect();
        let f32_preds = tiara.predict_batch(&bin.program, &parsed).unwrap();

        tiara.set_quantized_inference(true);
        let server = Server::with_model(tiara, ServeConfig::default()).unwrap();
        let v = parse(&server.handle_line("{\"op\":\"model_list\"}")).unwrap();
        let models = v.get("models").and_then(Value::as_array).unwrap();
        assert_eq!(models[0].get("quantized").and_then(Value::as_bool), Some(true));

        server.handle_line(&upload_line(&bin, "p"));
        let req = format!(
            "{{\"op\":\"predict\",\"program\":\"p\",\"addrs\":[{}]}}",
            addrs.iter().map(|a| format!("\"{a}\"")).collect::<Vec<_>>().join(",")
        );
        let resp = server.handle_line(&req);
        let v = parse(&resp).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        let results = v.get("results").and_then(Value::as_array).unwrap();
        assert_eq!(results.len(), 4);
        for (r, p) in results.iter().zip(&f32_preds) {
            assert_eq!(
                r.get("class").and_then(Value::as_str),
                Some(p.class.to_string().as_str()),
                "quantized serving must agree with f32 labels"
            );
        }
        assert_eq!(resp, server.handle_line(&req), "quantized responses are deterministic");
        server.drain();
    }

    #[test]
    fn stdio_loop_answers_and_drains_on_eof() {
        let (tiara, bin) = trained();
        let server = Server::with_model(tiara, ServeConfig::default()).unwrap();
        let input = format!("{}\n{}\n", upload_line(&bin, "p"), "{\"op\":\"ping\",\"id\":9}");
        let mut out = Vec::new();
        server.run_stdio(std::io::BufReader::new(input.as_bytes()), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[1], "{\"ok\":true,\"proto\":2,\"op\":\"ping\",\"id\":9}");
        assert!(server.is_stopped(), "EOF drains the server");
    }
}
