//! Cost-aware, per-client-fair admission control for the predict queue.
//!
//! Replaces the old single bounded FIFO with three coupled mechanisms:
//!
//! 1. **Per-client lanes** — jobs queue per client key (peer address), and
//!    workers dequeue by weighted round-robin across lanes, so one greedy
//!    client can saturate only its own lane, never another client's
//!    latency. Equal weights (the default) degenerate to plain round-robin.
//! 2. **Cost-aware budgeting** — every job carries a cost estimate (address
//!    count × the model's observed slicer steps per address), and the queue
//!    tracks total queued cost, not just job count: one 4096-address batch
//!    occupies the budget 4096 batches of one address would.
//! 3. **Tiered shedding** — a full client lane rejects with `queue_full`
//!    (that client should back off; others are unaffected). Total queued
//!    cost past the *soft* limit sheds probabilistically (a deterministic
//!    rotor, so tests and replays agree), ramping linearly until the *hard*
//!    limit rejects everything. `close()` wakes workers for shutdown.

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex, PoisonError};

/// Why [`AdmissionQueue::try_push`] refused a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// This client's lane is at capacity; the caller should retry later.
    QueueFull,
    /// The server-wide cost budget is exhausted (hard limit) or the request
    /// lost the shed lottery in the soft band. Carries the queued cost that
    /// triggered the shed.
    Overloaded {
        /// Total cost queued when the job was shed.
        queued_cost: u64,
    },
    /// The queue was closed (the server is shutting down).
    Closed,
}

struct Lane<T> {
    key: String,
    items: VecDeque<(u64, T)>,
    /// Dequeues left this round (replenished to the client's weight).
    credit: u32,
}

struct Inner<T> {
    lanes: Vec<Lane<T>>,
    /// WRR cursor into `lanes`.
    next: usize,
    weights: HashMap<String, u32>,
    queued: usize,
    queued_cost: u64,
    max_depth: usize,
    /// Deterministic shed rotor: job `n` in the soft band sheds iff
    /// `n % 100 < shed_pct`.
    shed_seq: u64,
    closed: bool,
}

/// A multi-lane admission queue shared between request handlers (producers)
/// and worker threads (consumers).
pub struct AdmissionQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    per_client_capacity: usize,
    soft_cost: u64,
    hard_cost: u64,
}

impl<T> AdmissionQueue<T> {
    /// Creates a queue: at most `per_client_capacity` jobs per client lane,
    /// probabilistic shedding past `soft_cost` total queued cost, hard
    /// rejection at `hard_cost`.
    ///
    /// # Panics
    ///
    /// Panics on a zero capacity or a budget with `hard_cost <= soft_cost`.
    pub fn new(per_client_capacity: usize, soft_cost: u64, hard_cost: u64) -> AdmissionQueue<T> {
        assert!(per_client_capacity > 0, "per-client capacity must be positive");
        assert!(hard_cost > soft_cost, "hard cost limit must exceed the soft limit");
        AdmissionQueue {
            inner: Mutex::new(Inner {
                lanes: Vec::new(),
                next: 0,
                weights: HashMap::new(),
                queued: 0,
                queued_cost: 0,
                max_depth: 0,
                shed_seq: 0,
                closed: false,
            }),
            ready: Condvar::new(),
            per_client_capacity,
            soft_cost,
            hard_cost,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Sets a client's WRR weight (dequeues per round; default 1).
    pub fn set_weight(&self, client: &str, weight: u32) {
        self.lock().weights.insert(client.to_owned(), weight.max(1));
    }

    /// Enqueues a job for `client` with admission cost `cost`.
    ///
    /// # Errors
    ///
    /// [`AdmitError::QueueFull`] when the client's lane is at capacity,
    /// [`AdmitError::Overloaded`] when the cost budget sheds the job,
    /// [`AdmitError::Closed`] after [`AdmissionQueue::close`].
    pub fn try_push(&self, client: &str, cost: u64, item: T) -> Result<(), AdmitError> {
        let mut g = self.lock();
        if g.closed {
            return Err(AdmitError::Closed);
        }
        let lane_depth = g.lanes.iter().find(|l| l.key == client).map_or(0, |l| l.items.len());
        if lane_depth >= self.per_client_capacity {
            return Err(AdmitError::QueueFull);
        }
        let queued_cost = g.queued_cost;
        if queued_cost >= self.hard_cost {
            return Err(AdmitError::Overloaded { queued_cost });
        }
        if queued_cost >= self.soft_cost {
            let band = self.hard_cost - self.soft_cost;
            let shed_pct = ((queued_cost - self.soft_cost) * 100 / band).clamp(1, 99);
            let seq = g.shed_seq;
            g.shed_seq += 1;
            if seq % 100 < shed_pct {
                return Err(AdmitError::Overloaded { queued_cost });
            }
        }
        match g.lanes.iter_mut().find(|l| l.key == client) {
            Some(lane) => lane.items.push_back((cost, item)),
            None => {
                let credit = g.weights.get(client).copied().unwrap_or(1);
                let mut items = VecDeque::new();
                items.push_back((cost, item));
                g.lanes.push(Lane { key: client.to_owned(), items, credit });
            }
        }
        g.queued += 1;
        g.queued_cost += cost;
        g.max_depth = g.max_depth.max(g.queued);
        drop(g);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until a job is available, returning `None` once the queue is
    /// closed *and* drained. Dequeue order is weighted round-robin across
    /// client lanes, FIFO within a lane.
    pub fn pop(&self) -> Option<T> {
        let mut g = self.lock();
        loop {
            if g.queued > 0 {
                return Some(dequeue_wrr(&mut g));
            }
            if g.closed {
                return None;
            }
            g = self.ready.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: future pushes fail, and blocked poppers return
    /// `None` once the remaining jobs drain.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Jobs currently waiting (not counting in-flight work).
    pub fn depth(&self) -> usize {
        self.lock().queued
    }

    /// The deepest the queue has ever been (jobs, across all lanes).
    pub fn max_depth(&self) -> usize {
        self.lock().max_depth
    }

    /// Total admission cost currently queued.
    pub fn queued_cost(&self) -> u64 {
        self.lock().queued_cost
    }

    /// Client lanes currently holding jobs.
    pub fn active_clients(&self) -> usize {
        self.lock().lanes.iter().filter(|l| !l.items.is_empty()).count()
    }

    /// The per-client lane capacity.
    pub fn capacity(&self) -> usize {
        self.per_client_capacity
    }

    /// The soft (shed-band start) cost limit.
    pub fn soft_cost(&self) -> u64 {
        self.soft_cost
    }

    /// The hard cost limit.
    pub fn hard_cost(&self) -> u64 {
        self.hard_cost
    }
}

/// Takes the next job by weighted round-robin. Caller guarantees
/// `g.queued > 0`.
fn dequeue_wrr<T>(g: &mut Inner<T>) -> T {
    loop {
        let n = g.lanes.len();
        for i in 0..n {
            let idx = (g.next + i) % n;
            let lane = &mut g.lanes[idx];
            if lane.credit > 0 && !lane.items.is_empty() {
                let (cost, item) = lane.items.pop_front().expect("lane checked non-empty");
                lane.credit -= 1;
                let spent = lane.credit == 0;
                g.queued -= 1;
                g.queued_cost -= cost;
                if g.lanes[idx].items.is_empty() {
                    // Drop the drained lane so rotation only covers live
                    // clients; weights persist in the map.
                    g.lanes.remove(idx);
                    g.next = if g.lanes.is_empty() { 0 } else { idx % g.lanes.len() };
                } else if spent {
                    g.next = (idx + 1) % n;
                } else {
                    // Credit remains: the cursor stays so a weight-w client
                    // really gets w consecutive dequeues per round.
                    g.next = idx;
                }
                return item;
            }
        }
        // Every lane with items is out of credit: start a new round.
        for lane in &mut g.lanes {
            lane.credit = g.weights.get(&lane.key).copied().unwrap_or(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_a_lane_and_capacity_rejection() {
        let q = AdmissionQueue::new(2, 1_000, 2_000);
        q.try_push("a", 1, 1).unwrap();
        q.try_push("a", 1, 2).unwrap();
        assert_eq!(q.try_push("a", 1, 3), Err(AdmitError::QueueFull));
        // Another client is unaffected by a's full lane.
        q.try_push("b", 1, 10).unwrap();
        assert_eq!(q.depth(), 3);
        assert_eq!(q.max_depth(), 3);
        let mut got = vec![q.pop().unwrap(), q.pop().unwrap(), q.pop().unwrap()];
        got.sort_unstable();
        assert_eq!(got, [1, 2, 10]);
        assert_eq!(q.depth(), 0);
        assert_eq!(q.capacity(), 2);
    }

    #[test]
    fn round_robin_interleaves_clients() {
        let q = AdmissionQueue::new(16, 1 << 40, 1 << 41);
        for i in 0..3 {
            q.try_push("a", 1, ("a", i)).unwrap();
        }
        for i in 0..3 {
            q.try_push("b", 1, ("b", i)).unwrap();
        }
        let order: Vec<_> = (0..6).map(|_| q.pop().unwrap()).collect();
        assert_eq!(
            order,
            [("a", 0), ("b", 0), ("a", 1), ("b", 1), ("a", 2), ("b", 2)],
            "equal weights alternate strictly"
        );
    }

    #[test]
    fn weights_skew_the_rotation() {
        let q = AdmissionQueue::new(16, 1 << 40, 1 << 41);
        q.set_weight("heavy", 2);
        for i in 0..4 {
            q.try_push("heavy", 1, ("h", i)).unwrap();
        }
        for i in 0..2 {
            q.try_push("light", 1, ("l", i)).unwrap();
        }
        let order: Vec<_> = (0..6).map(|_| q.pop().unwrap()).collect();
        // heavy gets two dequeues per round to light's one.
        assert_eq!(order, [("h", 0), ("h", 1), ("l", 0), ("h", 2), ("h", 3), ("l", 1)]);
    }

    #[test]
    fn cost_budget_sheds_deterministically() {
        // soft=100, hard=200: at queued_cost 150 the shed pct is 50.
        let q = AdmissionQueue::new(1_000, 100, 200);
        q.try_push("a", 150, 0).unwrap();
        let mut admitted = 0;
        let mut shed = 0;
        for i in 1..=100 {
            match q.try_push("b", 0, i) {
                Ok(()) => admitted += 1,
                Err(AdmitError::Overloaded { queued_cost }) => {
                    shed += 1;
                    assert_eq!(queued_cost, 150);
                }
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        assert_eq!((admitted, shed), (50, 50), "50% band sheds exactly half");
        // Past the hard limit everything is rejected.
        while q.pop().is_some() {
            if q.depth() == 0 {
                break;
            }
        }
        q.try_push("a", 250, 0).unwrap();
        assert!(matches!(q.try_push("b", 1, 1), Err(AdmitError::Overloaded { .. })));
    }

    #[test]
    fn close_rejects_pushes_but_drains_remaining_jobs() {
        let q = AdmissionQueue::new(4, 1_000, 2_000);
        q.try_push("a", 1, "x").unwrap();
        q.close();
        assert_eq!(q.try_push("a", 1, "y"), Err(AdmitError::Closed));
        assert_eq!(q.pop(), Some("x"));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "closed + empty stays None");
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(AdmissionQueue::<u32>::new(1, 100, 200));
        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(waiter.join().unwrap(), None);
    }

    #[test]
    fn many_producers_many_consumers_deliver_everything_once() {
        let q = Arc::new(AdmissionQueue::new(8, 1 << 40, 1 << 41));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let key = format!("client-{p}");
                    for i in 0..50u32 {
                        let v = p * 1000 + i;
                        loop {
                            match q.try_push(&key, 1, v) {
                                Ok(()) => break,
                                Err(AdmitError::QueueFull) => std::thread::yield_now(),
                                Err(e) => panic!("unexpected {e:?}"),
                            }
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u32> = consumers.into_iter().flat_map(|c| c.join().unwrap()).collect();
        all.sort_unstable();
        let want: Vec<u32> = (0..4).flat_map(|p| (0..50).map(move |i| p * 1000 + i)).collect();
        assert_eq!(all, want, "every job delivered exactly once");
        assert_eq!(q.queued_cost(), 0, "cost accounting drains to zero");
    }
}
