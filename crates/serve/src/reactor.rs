//! Nonblocking TCP front end: one reactor thread multiplexing every
//! connection onto the shared worker pool.
//!
//! The previous serving layer spent one OS thread per connection, blocked in
//! `read_line` — a few hundred mostly-idle clients meant a few hundred
//! parked threads and their stacks. The reactor replaces that with a single
//! loop over nonblocking sockets (`set_nonblocking` + `WouldBlock`, no
//! platform poll/epoll dependency): each tick accepts new connections,
//! drains completed predict responses from the workers' inbox, reads
//! whatever bytes are available per connection, dispatches complete lines
//! through [`Server::process`], and flushes pending writes. Connections
//! carry their own read/write buffers, so a slow reader never blocks the
//! reactor or a worker.
//!
//! Lifecycle rules:
//! - At `max_conns` open connections, a fresh accept is answered with a
//!   single `conn_limit` error line and closed immediately.
//! - A connection with no queued work and nothing buffered in either
//!   direction for `idle_timeout_ms` is closed (`idle_disconnects` metric).
//! - Peer EOF with predict batches still in flight keeps the connection
//!   until their responses are written out; only then is it reaped.
//! - Once the server leaves `Running` (a `shutdown` request on any
//!   connection — processed inline on the reactor thread, which makes the
//!   drain safe because workers deliver completions to an unbounded inbox
//!   and never block on the reactor), accepts stop, in-flight responses are
//!   flushed with a bounded grace period, and every connection is closed.

use crate::metrics::Metrics;
use crate::protocol::{error_reply, ErrorKind};
use crate::server::{Dispatch, ReplySink, Server};
use std::collections::HashMap;
use std::io::{ErrorKind as IoKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// How long the reactor keeps flushing buffered responses after the server
/// stops before giving up on unresponsive peers.
const STOP_GRACE: Duration = Duration::from_secs(5);

/// Reactor sleep when a tick made no progress (no readable bytes, no
/// completions, no accepts).
const IDLE_TICK: Duration = Duration::from_millis(1);

struct Conn {
    stream: TcpStream,
    /// Admission fairness key: the peer's `ip:port`.
    peer: String,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    /// Prefix of `write_buf` already written to the socket.
    written: usize,
    last_activity: Instant,
    /// Predict batches queued on this connection's behalf whose responses
    /// have not yet arrived from the workers.
    pending: usize,
    /// Peer closed its write half; serve out pending work, then reap.
    eof: bool,
    /// Socket error; reap at the next sweep.
    dead: bool,
}

impl Conn {
    fn flushed(&self) -> bool {
        self.pending == 0 && self.write_buf.is_empty()
    }
}

/// Runs the reactor until the server stops. See the module docs for the
/// event loop's phases.
pub(crate) fn run(server: &Arc<Server>, listener: TcpListener) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let (tx, rx) = mpsc::channel::<(u64, String)>();
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_id: u64 = 0;
    let max_conns = server.config().max_conns;
    let idle_timeout = match server.config().idle_timeout_ms {
        0 => None,
        ms => Some(Duration::from_millis(ms)),
    };
    let mut stop_deadline: Option<Instant> = None;

    loop {
        let mut progressed = false;

        if server.is_running() {
            progressed |= accept_new(server, &listener, &mut conns, &mut next_id, max_conns)?;
        } else if stop_deadline.is_none() {
            stop_deadline = Some(Instant::now() + STOP_GRACE);
        }

        // Deliver worker completions into their connections' write buffers.
        // A completion for an already-reaped connection is simply dropped.
        while let Ok((id, response)) = rx.try_recv() {
            progressed = true;
            if let Some(c) = conns.get_mut(&id) {
                c.write_buf.extend_from_slice(response.as_bytes());
                c.write_buf.push(b'\n');
                c.pending = c.pending.saturating_sub(1);
                c.last_activity = Instant::now();
            }
        }

        for (&id, c) in conns.iter_mut() {
            if !c.dead && !c.eof {
                progressed |= pump_reads(server, id, c, &tx);
            }
            if !c.dead {
                progressed |= pump_writes(c);
            }
        }

        let metrics = server.metrics();
        conns.retain(|_, c| {
            if c.dead || (c.eof && c.flushed()) {
                metrics.conn_closed();
                return false;
            }
            if let Some(limit) = idle_timeout {
                if c.flushed() && c.read_buf.is_empty() && c.last_activity.elapsed() >= limit {
                    Metrics::bump(&metrics.idle_disconnects);
                    metrics.conn_closed();
                    return false;
                }
            }
            true
        });

        if let Some(deadline) = stop_deadline {
            let all_flushed = conns.values().all(Conn::flushed);
            if (server.is_stopped() && all_flushed) || Instant::now() >= deadline {
                for (_, c) in conns.drain() {
                    let _ = c.stream.shutdown(std::net::Shutdown::Both);
                    metrics.conn_closed();
                }
                return Ok(());
            }
        }

        if !progressed {
            std::thread::sleep(IDLE_TICK);
        }
    }
}

/// Accepts until the listener would block. Connections past `max_conns` get
/// one `conn_limit` error line (best effort) and are closed.
fn accept_new(
    server: &Arc<Server>,
    listener: &TcpListener,
    conns: &mut HashMap<u64, Conn>,
    next_id: &mut u64,
    max_conns: usize,
) -> std::io::Result<bool> {
    let mut progressed = false;
    loop {
        match listener.accept() {
            Ok((stream, peer)) => {
                progressed = true;
                if conns.len() >= max_conns {
                    Metrics::bump(&server.metrics().conn_limit_rejects);
                    refuse(stream, max_conns, server.config().retry_after_ms);
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                server.metrics().conn_opened();
                conns.insert(
                    *next_id,
                    Conn {
                        stream,
                        peer: peer.to_string(),
                        read_buf: Vec::new(),
                        write_buf: Vec::new(),
                        written: 0,
                        last_activity: Instant::now(),
                        pending: 0,
                        eof: false,
                        dead: false,
                    },
                );
                *next_id += 1;
            }
            Err(e) if e.kind() == IoKind::WouldBlock => return Ok(progressed),
            Err(e) if e.kind() == IoKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// Tells a rejected peer why it was refused. The socket is still in its
/// default blocking mode; the payload is one short line, so this cannot
/// stall the reactor meaningfully.
fn refuse(mut stream: TcpStream, max_conns: usize, retry_after_ms: u64) {
    let line = error_reply(
        ErrorKind::ConnLimit,
        &format!("server at its {max_conns}-connection cap"),
        None,
        [("retry_after_ms", crate::json::Value::Int(retry_after_ms as i64))],
    );
    let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
    let _ = stream.write_all(line.as_bytes());
    let _ = stream.write_all(b"\n");
}

/// Reads available bytes and dispatches every complete line. Immediate
/// responses append to the write buffer; queued predicts bump `pending`.
fn pump_reads(
    server: &Arc<Server>,
    id: u64,
    c: &mut Conn,
    tx: &mpsc::Sender<(u64, String)>,
) -> bool {
    let mut progressed = false;
    let mut buf = [0u8; 4096];
    loop {
        match c.stream.read(&mut buf) {
            Ok(0) => {
                c.eof = true;
                progressed = true;
                break;
            }
            Ok(n) => {
                progressed = true;
                c.last_activity = Instant::now();
                c.read_buf.extend_from_slice(&buf[..n]);
            }
            Err(e) if e.kind() == IoKind::WouldBlock => break,
            Err(e) if e.kind() == IoKind::Interrupted => continue,
            Err(_) => {
                c.dead = true;
                return true;
            }
        }
    }
    while let Some(pos) = c.read_buf.iter().position(|&b| b == b'\n') {
        progressed = true;
        let rest = c.read_buf.split_off(pos + 1);
        let mut line_bytes = std::mem::replace(&mut c.read_buf, rest);
        line_bytes.pop();
        let line = String::from_utf8_lossy(&line_bytes);
        if line.trim().is_empty() {
            continue;
        }
        let sink = ReplySink::Conn { conn: id, tx: tx.clone() };
        match server.process(&line, &c.peer, sink) {
            Dispatch::Immediate(response) => {
                c.write_buf.extend_from_slice(response.as_bytes());
                c.write_buf.push(b'\n');
            }
            Dispatch::Queued => c.pending += 1,
        }
    }
    progressed
}

/// Writes as much of the buffered output as the socket accepts.
fn pump_writes(c: &mut Conn) -> bool {
    if c.write_buf.is_empty() {
        return false;
    }
    let mut progressed = false;
    loop {
        match c.stream.write(&c.write_buf[c.written..]) {
            Ok(0) => {
                c.dead = true;
                return true;
            }
            Ok(n) => {
                progressed = true;
                c.written += n;
                c.last_activity = Instant::now();
                if c.written == c.write_buf.len() {
                    c.write_buf.clear();
                    c.written = 0;
                    return true;
                }
            }
            Err(e) if e.kind() == IoKind::WouldBlock => return progressed,
            Err(e) if e.kind() == IoKind::Interrupted => continue,
            Err(_) => {
                c.dead = true;
                return true;
            }
        }
    }
}
