//! The newline-delimited JSON wire protocol (v2): request shapes,
//! structured error replies, and the hex transport encoding for program
//! images.
//!
//! Every request is one JSON object on one line with an `"op"` field; every
//! response is one JSON object on one line with `"ok"` and `"proto":2` plus
//! either the op-specific payload or an `"error"` object. An optional client
//! `"id"` (string or integer) is echoed back verbatim so clients can
//! pipeline requests over one connection.
//!
//! Operations:
//!
//! | op             | request fields                                           |
//! |----------------|----------------------------------------------------------|
//! | `hello`        | —                                                        |
//! | `ping`         | —                                                        |
//! | `upload`       | `handle`, and `program_hex` or `program_path`            |
//! | `predict`      | `program` (handle) or `program_hex`/`program_path`, `addrs`, optional `model`, optional `deadline_ms` |
//! | `model_load`   | `model` (alias), `path` (a `.tc` container)              |
//! | `model_unload` | `model`, optional `force`                                |
//! | `model_alias`  | `alias` (new name), `model` (existing alias)             |
//! | `model_list`   | —                                                        |
//! | `stats`        | —                                                        |
//! | `shutdown`     | —                                                        |
//!
//! **v1 compatibility:** requests without a `model` field run against the
//! `default` alias, so a v1 client pointed at a v2 daemon keeps working
//! unchanged (responses gain the `"proto":2` marker, which v1 clients
//! ignore by construction — they switch on `ok`/`error.kind`).
//!
//! Addresses use the notation of [`tiara_ir::parse_var_addr`]:
//! `0x74404` / `74404h` / decimal for globals, `func:<name>:<offset>` for
//! frame slots.

use crate::json::{parse, Value};

/// The protocol generation carried in every response's `"proto"` field.
pub const PROTO_VERSION: i64 = 2;

/// Machine-readable error kinds carried in `error.kind` of failure replies.
/// Stable protocol surface: clients switch on these strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The line was not valid JSON, or a required field was missing/mistyped.
    Malformed,
    /// `op` named no known operation.
    UnknownOp,
    /// The request queue is at capacity; retry after `retry_after_ms`.
    QueueFull,
    /// The batch exceeds the server's `max_batch`.
    OversizedBatch,
    /// The server is draining and accepts no new predict work.
    ShuttingDown,
    /// An address string failed to parse or named an unknown function.
    BadAddress,
    /// A `program` handle was never uploaded.
    UnknownProgram,
    /// A program image failed to decode (bad hex or corrupt `TIRA` bytes).
    BadProgram,
    /// A request named a model alias the registry does not hold.
    UnknownModel,
    /// `model_unload` was refused because requests are in flight.
    ModelBusy,
    /// The admission cost budget shed the request; back off harder than for
    /// `queue_full`.
    Overloaded,
    /// The connection was refused at the server's connection cap.
    ConnLimit,
    /// A `.tc` container failed to load as a servable model.
    BadModel,
    /// The model or filesystem failed mid-request.
    Internal,
}

impl ErrorKind {
    /// The wire string for this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Malformed => "malformed",
            ErrorKind::UnknownOp => "unknown_op",
            ErrorKind::QueueFull => "queue_full",
            ErrorKind::OversizedBatch => "oversized_batch",
            ErrorKind::ShuttingDown => "shutting_down",
            ErrorKind::BadAddress => "bad_address",
            ErrorKind::UnknownProgram => "unknown_program",
            ErrorKind::BadProgram => "bad_program",
            ErrorKind::UnknownModel => "unknown_model",
            ErrorKind::ModelBusy => "model_busy",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::ConnLimit => "conn_limit",
            ErrorKind::BadModel => "bad_model",
            ErrorKind::Internal => "internal",
        }
    }
}

/// How a predict/upload request identifies its program.
#[derive(Debug, Clone, PartialEq)]
pub enum ProgramRef {
    /// A handle previously registered with `upload`.
    Handle(String),
    /// A hex-encoded `TIRA` image inline in the request.
    InlineHex(String),
    /// A path on the server's filesystem (assembled image or textual asm).
    Path(String),
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Version/capability handshake.
    Hello,
    /// Liveness check.
    Ping,
    /// Registers a program under a handle for later predict calls.
    Upload {
        /// The name predict requests will use.
        handle: String,
        /// Where the program comes from (inline hex or a server-side path).
        source: ProgramRef,
    },
    /// Classifies a batch of variable addresses.
    Predict {
        /// The program to query.
        program: ProgramRef,
        /// Address strings, resolved against the program.
        addrs: Vec<String>,
        /// The model alias to answer with; `None` (a v1 request) means the
        /// `default` alias.
        model: Option<String>,
        /// Per-request deadline override (milliseconds).
        deadline_ms: Option<u64>,
    },
    /// Loads a `.tc` model container from a server-side path.
    ModelLoad {
        /// The alias the model will be reachable under.
        model: String,
        /// Filesystem path of the container.
        path: String,
    },
    /// Drops a model alias (and the model, when it was the last alias).
    ModelUnload {
        /// The alias to remove.
        model: String,
        /// Detach even with requests in flight (they finish safely).
        force: bool,
    },
    /// Points a new alias at an already-loaded model.
    ModelAlias {
        /// The new name.
        alias: String,
        /// The existing alias to share a model with.
        model: String,
    },
    /// Lists loaded models with their per-model stats.
    ModelList,
    /// Server counters.
    Stats,
    /// Graceful shutdown: drain in-flight work, refuse new work.
    Shutdown,
}

/// A request plus the client correlation id to echo.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// The operation.
    pub request: Request,
    /// The client's `id` field, echoed verbatim in the response.
    pub id: Option<Value>,
}

fn field_str(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("missing or non-string field `{key}`"))
}

fn program_ref(v: &Value, allow_handle: bool) -> Result<ProgramRef, String> {
    if allow_handle {
        if let Some(h) = v.get("program").and_then(Value::as_str) {
            return Ok(ProgramRef::Handle(h.to_owned()));
        }
    }
    if let Some(hex) = v.get("program_hex").and_then(Value::as_str) {
        return Ok(ProgramRef::InlineHex(hex.to_owned()));
    }
    if let Some(path) = v.get("program_path").and_then(Value::as_str) {
        return Ok(ProgramRef::Path(path.to_owned()));
    }
    Err(if allow_handle {
        "request needs `program` (a handle), `program_hex`, or `program_path`".to_owned()
    } else {
        "upload needs `program_hex` or `program_path`".to_owned()
    })
}

/// Parses one request line.
///
/// # Errors
///
/// `(kind, message)` — [`ErrorKind::Malformed`] for JSON/shape problems,
/// [`ErrorKind::UnknownOp`] for an unrecognized `op`. The id (when the line
/// parsed far enough to have one) comes back in the `Ok`/`Err` envelope so
/// error replies still correlate.
pub fn parse_request(line: &str) -> Result<Envelope, (ErrorKind, String, Option<Value>)> {
    let v = parse(line).map_err(|(pos, msg)| {
        (ErrorKind::Malformed, format!("bad JSON at byte {pos}: {msg}"), None)
    })?;
    let id = v.get("id").cloned();
    let malformed = |msg: String| (ErrorKind::Malformed, msg, id.clone());
    let Value::Object(_) = v else {
        return Err(malformed("request must be a JSON object".into()));
    };
    let op = v
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| malformed("missing or non-string field `op`".into()))?;
    let request = match op {
        "hello" => Request::Hello,
        "ping" => Request::Ping,
        "stats" => Request::Stats,
        "shutdown" => Request::Shutdown,
        "upload" => Request::Upload {
            handle: field_str(&v, "handle").map_err(&malformed)?,
            source: program_ref(&v, false).map_err(&malformed)?,
        },
        "model_load" => Request::ModelLoad {
            model: field_str(&v, "model").map_err(&malformed)?,
            path: field_str(&v, "path").map_err(&malformed)?,
        },
        "model_unload" => Request::ModelUnload {
            model: field_str(&v, "model").map_err(&malformed)?,
            force: match v.get("force") {
                None | Some(Value::Null) => false,
                Some(f) => {
                    f.as_bool().ok_or_else(|| malformed("`force` must be a boolean".into()))?
                }
            },
        },
        "model_alias" => Request::ModelAlias {
            alias: field_str(&v, "alias").map_err(&malformed)?,
            model: field_str(&v, "model").map_err(&malformed)?,
        },
        "model_list" => Request::ModelList,
        "predict" => {
            let addrs_val = v
                .get("addrs")
                .and_then(Value::as_array)
                .ok_or_else(|| malformed("missing or non-array field `addrs`".into()))?;
            let mut addrs = Vec::with_capacity(addrs_val.len());
            for a in addrs_val {
                addrs.push(
                    a.as_str()
                        .map(str::to_owned)
                        .ok_or_else(|| malformed("`addrs` entries must be strings".into()))?,
                );
            }
            let deadline_ms = match v.get("deadline_ms") {
                None | Some(Value::Null) => None,
                Some(d) => Some(d.as_i64().filter(|&ms| ms >= 0).ok_or_else(|| {
                    malformed("`deadline_ms` must be a non-negative integer".into())
                })? as u64),
            };
            let model = match v.get("model") {
                None | Some(Value::Null) => None,
                Some(m) => Some(
                    m.as_str()
                        .map(str::to_owned)
                        .ok_or_else(|| malformed("`model` must be a string".into()))?,
                ),
            };
            Request::Predict {
                program: program_ref(&v, true).map_err(&malformed)?,
                addrs,
                model,
                deadline_ms,
            }
        }
        other => return Err((ErrorKind::UnknownOp, format!("unknown op `{other}`"), id)),
    };
    Ok(Envelope { request, id })
}

/// Builds a failure reply line (without the trailing newline).
pub fn error_reply(
    kind: ErrorKind,
    message: &str,
    id: Option<&Value>,
    extra: impl IntoIterator<Item = (&'static str, Value)>,
) -> String {
    let mut pairs = vec![
        ("ok".to_owned(), Value::Bool(false)),
        ("proto".to_owned(), Value::Int(PROTO_VERSION)),
        (
            "error".to_owned(),
            Value::obj([
                ("kind", Value::Str(kind.as_str().to_owned())),
                ("message", Value::Str(message.to_owned())),
            ]),
        ),
    ];
    for (k, val) in extra {
        pairs.push((k.to_owned(), val));
    }
    if let Some(id) = id {
        pairs.push(("id".to_owned(), id.clone()));
    }
    Value::Object(pairs).render()
}

/// Starts a success reply: `{"ok":true,"proto":2,"op":<op>, ...}`. Callers
/// extend the pair list and render.
pub fn ok_reply_base(op: &str) -> Vec<(String, Value)> {
    vec![
        ("ok".to_owned(), Value::Bool(true)),
        ("proto".to_owned(), Value::Int(PROTO_VERSION)),
        ("op".to_owned(), Value::Str(op.to_owned())),
    ]
}

/// Lowercase hex encoding of a program image.
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(char::from_digit((b >> 4) as u32, 16).expect("nibble"));
        out.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble"));
    }
    out
}

/// Decodes the hex transport encoding.
///
/// # Errors
///
/// Describes odd length or a non-hex character.
pub fn hex_decode(s: &str) -> Result<Vec<u8>, String> {
    let s = s.trim();
    if !s.len().is_multiple_of(2) {
        return Err("hex image has odd length".into());
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let bytes = s.as_bytes();
    for pair in bytes.chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16).ok_or("non-hex character in image")?;
        let lo = (pair[1] as char).to_digit(16).ok_or("non-hex character in image")?;
        out.push(((hi << 4) | lo) as u8);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_op() {
        assert_eq!(parse_request("{\"op\":\"hello\"}").unwrap().request, Request::Hello);
        assert_eq!(parse_request("{\"op\":\"ping\"}").unwrap().request, Request::Ping);
        assert_eq!(parse_request("{\"op\":\"stats\"}").unwrap().request, Request::Stats);
        assert_eq!(parse_request("{\"op\":\"shutdown\"}").unwrap().request, Request::Shutdown);
        assert_eq!(parse_request("{\"op\":\"model_list\"}").unwrap().request, Request::ModelList);
        let up = parse_request("{\"op\":\"upload\",\"handle\":\"p\",\"program_hex\":\"aa\"}")
            .unwrap()
            .request;
        assert_eq!(
            up,
            Request::Upload { handle: "p".into(), source: ProgramRef::InlineHex("aa".into()) }
        );
        let pr = parse_request(
            "{\"op\":\"predict\",\"program\":\"p\",\"addrs\":[\"0x10\"],\"deadline_ms\":250,\"id\":7}",
        )
        .unwrap();
        assert_eq!(pr.id, Some(Value::Int(7)));
        assert_eq!(
            pr.request,
            Request::Predict {
                program: ProgramRef::Handle("p".into()),
                addrs: vec!["0x10".into()],
                model: None,
                deadline_ms: Some(250),
            }
        );
    }

    #[test]
    fn parses_model_ops() {
        let load = parse_request("{\"op\":\"model_load\",\"model\":\"a\",\"path\":\"/m.tc\"}")
            .unwrap()
            .request;
        assert_eq!(load, Request::ModelLoad { model: "a".into(), path: "/m.tc".into() });
        let un = parse_request("{\"op\":\"model_unload\",\"model\":\"a\"}").unwrap().request;
        assert_eq!(un, Request::ModelUnload { model: "a".into(), force: false });
        let un = parse_request("{\"op\":\"model_unload\",\"model\":\"a\",\"force\":true}")
            .unwrap()
            .request;
        assert_eq!(un, Request::ModelUnload { model: "a".into(), force: true });
        let al = parse_request("{\"op\":\"model_alias\",\"alias\":\"b\",\"model\":\"a\"}")
            .unwrap()
            .request;
        assert_eq!(al, Request::ModelAlias { alias: "b".into(), model: "a".into() });
        let pr =
            parse_request("{\"op\":\"predict\",\"program\":\"p\",\"addrs\":[],\"model\":\"b\"}")
                .unwrap()
                .request;
        assert!(matches!(pr, Request::Predict { model: Some(m), .. } if m == "b"));
        for bad in [
            "{\"op\":\"model_load\",\"model\":\"a\"}", // no path
            "{\"op\":\"model_unload\"}",               // no model
            "{\"op\":\"model_unload\",\"model\":\"a\",\"force\":1}",
            "{\"op\":\"model_alias\",\"alias\":\"b\"}",
            "{\"op\":\"predict\",\"program\":\"p\",\"addrs\":[],\"model\":3}",
        ] {
            let (kind, _, _) = parse_request(bad).unwrap_err();
            assert_eq!(kind, ErrorKind::Malformed, "{bad}");
        }
    }

    #[test]
    fn malformed_lines_keep_the_id_when_parseable() {
        let (kind, _, id) = parse_request("{\"op\":\"predict\",\"id\":\"q1\"}").unwrap_err();
        assert_eq!(kind, ErrorKind::Malformed);
        assert_eq!(id, Some(Value::Str("q1".into())));
        let (kind, _, id) = parse_request("not json at all").unwrap_err();
        assert_eq!(kind, ErrorKind::Malformed);
        assert_eq!(id, None);
        let (kind, _, _) = parse_request("{\"op\":\"fly\"}").unwrap_err();
        assert_eq!(kind, ErrorKind::UnknownOp);
    }

    #[test]
    fn predict_rejects_bad_shapes() {
        for bad in [
            "{\"op\":\"predict\",\"addrs\":[\"0x10\"]}", // no program
            "{\"op\":\"predict\",\"program\":\"p\"}",    // no addrs
            "{\"op\":\"predict\",\"program\":\"p\",\"addrs\":[1]}", // non-string addr
            "{\"op\":\"predict\",\"program\":\"p\",\"addrs\":[],\"deadline_ms\":-1}",
            "[1,2]", // not an object
        ] {
            let (kind, _, _) = parse_request(bad).unwrap_err();
            assert_eq!(kind, ErrorKind::Malformed, "{bad}");
        }
    }

    #[test]
    fn error_replies_are_structured() {
        let line = error_reply(
            ErrorKind::QueueFull,
            "queue at capacity",
            Some(&Value::Int(3)),
            [("retry_after_ms", Value::Int(50))],
        );
        assert_eq!(
            line,
            "{\"ok\":false,\"proto\":2,\"error\":{\"kind\":\"queue_full\",\
             \"message\":\"queue at capacity\"},\"retry_after_ms\":50,\"id\":3}"
        );
    }

    #[test]
    fn hex_round_trips_and_rejects_garbage() {
        let bytes = [0x00u8, 0x7f, 0xff, 0x12];
        let s = hex_encode(&bytes);
        assert_eq!(s, "007fff12");
        assert_eq!(hex_decode(&s).unwrap(), bytes);
        assert!(hex_decode("abc").is_err(), "odd length");
        assert!(hex_decode("zz").is_err(), "non-hex");
        assert_eq!(hex_decode("").unwrap(), Vec::<u8>::new());
    }
}
