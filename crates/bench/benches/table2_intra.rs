//! Bench E-T2-intra (Table II, RQ1/RQ3): one intra-project experiment end to
//! end — slice, train 4:1, evaluate — for both slicers. Regenerate the full
//! table with `cargo run -p tiara-eval -- table2-intra`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tiara::{ClassifierConfig, Slicer};
use tiara_eval::{build_suite, intra_experiments, run_experiment, SlicedSuite};

fn bench_intra_experiment(c: &mut Criterion) {
    let bins = build_suite(42, 0.05);
    let cfg = ClassifierConfig { epochs: 8, ..Default::default() };
    let spec = &intra_experiments()[0]; // I1: clang

    let mut group = c.benchmark_group("table2_intra/I1");
    group.sample_size(10);
    for slicer in [Slicer::default(), Slicer::Sslice] {
        let suite = SlicedSuite::build(&bins, &slicer, 2);
        group.bench_with_input(BenchmarkId::from_parameter(slicer.name()), &suite, |b, suite| {
            b.iter(|| black_box(run_experiment(suite, spec, &cfg, 1)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_intra_experiment);
criterion_main!(benches);
