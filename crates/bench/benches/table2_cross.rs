//! Bench E-T2-cross (Table II, RQ2): one cross-project experiment end to
//! end (train on all-minus-one, test on the held-out project). Regenerate
//! the full table with `cargo run -p tiara-eval -- table2-cross`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tiara::{ClassifierConfig, Slicer};
use tiara_eval::{build_suite, cross_experiments, run_experiment, SlicedSuite};

fn bench_cross_experiment(c: &mut Criterion) {
    let bins = build_suite(42, 0.05);
    let suite = SlicedSuite::build(&bins, &Slicer::default(), 2);
    let cfg = ClassifierConfig { epochs: 8, ..Default::default() };
    let spec = &cross_experiments()[1]; // C7: all - clang -> clang

    let mut group = c.benchmark_group("table2_cross");
    group.sample_size(10);
    group.bench_function("C7/TSLICE", |b| {
        b.iter(|| black_box(run_experiment(&suite, spec, &cfg, 1)));
    });
    group.finish();
}

criterion_group!(benches, bench_cross_experiment);
criterion_main!(benches);
