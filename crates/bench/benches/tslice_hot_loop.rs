//! Hot-loop microbench for the TSLICE traversal itself: the fast arena path
//! (inline small-set values, version-memoed merges, deduped worklist) against
//! the retained snapshot-per-edge reference path, on the same criteria.
//! The macro-level counterpart is `tiara-eval bench` → BENCH_PR5.json.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tiara_ir::VarAddr;
use tiara_slice::{tslice_with, TsliceConfig};
use tiara_synth::{generate, Binary, ProjectSpec, TypeCounts};

fn suite() -> (Binary, Vec<VarAddr>) {
    let bin = generate(&ProjectSpec {
        name: "hot".into(),
        index: 0,
        seed: 42,
        counts: TypeCounts {
            list: 3,
            vector: 8,
            map: 8,
            deque: 2,
            set: 2,
            primitive: 30,
            ..Default::default()
        },
    });
    let addrs: Vec<VarAddr> = bin.labeled_vars().map(|(a, _)| a).collect();
    (bin, addrs)
}

fn bench_hot_loop(c: &mut Criterion) {
    let (bin, addrs) = suite();
    let fast = TsliceConfig::default();
    let reference = TsliceConfig { reference_mode: true, ..TsliceConfig::default() };

    let mut group = c.benchmark_group("tslice_hot_loop");
    for (name, cfg) in [("fast", &fast), ("reference", &reference)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), cfg, |b, cfg| {
            b.iter(|| {
                for &addr in &addrs {
                    black_box(tslice_with(&bin.program, addr, cfg));
                }
            });
        });
    }
    group.finish();

    // One deep slice (a map variable reaches the most rules) isolates the
    // per-step cost from the per-slice setup cost amortized above.
    let deep = addrs
        .iter()
        .copied()
        .max_by_key(|&a| tslice_with(&bin.program, a, &fast).slice.steps)
        .expect("suite has labeled variables");
    let mut single = c.benchmark_group("tslice_hot_loop/deepest_slice");
    for (name, cfg) in [("fast", &fast), ("reference", &reference)] {
        single.bench_with_input(BenchmarkId::from_parameter(name), cfg, |b, cfg| {
            b.iter(|| black_box(tslice_with(&bin.program, deep, cfg)));
        });
    }
    single.finish();
}

criterion_group!(benches, bench_hot_loop);
criterion_main!(benches);
