//! Ablation bench: TSLICE slicing latency under the design-choice variants
//! DESIGN.md calls out (decay rate/shape, indirect-call cut, lea tracking).
//! The quality side of the ablation is `tiara-eval ablation`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tiara_eval::ablation::ablation_configs;
use tiara_ir::ContainerClass;
use tiara_slice::tslice_with;
use tiara_synth::{generate, ProjectSpec, TypeCounts};

fn bench_ablation(c: &mut Criterion) {
    let bin = generate(&ProjectSpec {
        name: "abl".into(),
        index: 0,
        seed: 42,
        counts: TypeCounts { list: 4, vector: 10, map: 10, primitive: 40, ..Default::default() },
    });
    let (addr, _) =
        bin.labeled_vars().find(|(_, k)| *k == ContainerClass::Map).expect("map variable exists");

    let mut group = c.benchmark_group("ablation/tslice_one_map_variable");
    for (name, cfg) in ablation_configs() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| black_box(tslice_with(&bin.program, addr, cfg)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
