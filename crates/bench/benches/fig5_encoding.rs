//! Bench E-F5 (Figure 5): the 42-dimensional instruction feature encoding
//! and the slice→graph conversion feeding the GCN.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tiara::features::encode;
use tiara::slice_to_graph;
use tiara_slice::tslice;
use tiara_synth::{generate, ProjectSpec, TypeCounts};

fn bench_encoding(c: &mut Criterion) {
    let bin = generate(&ProjectSpec {
        name: "enc".into(),
        index: 0,
        seed: 42,
        counts: TypeCounts { list: 2, vector: 4, map: 4, primitive: 10, ..Default::default() },
    });
    let (addr, _) = bin.labeled_vars().next().expect("has variables");
    let slice = tslice(&bin.program, addr);
    assert!(!slice.is_empty());

    c.bench_function("fig5/encode_one_instruction", |b| {
        b.iter(|| black_box(encode(&bin.program, &slice.nodes[0])));
    });
    c.bench_function("fig5/slice_to_graph", |b| {
        b.iter(|| black_box(slice_to_graph(&bin.program, &slice, 0)));
    });
}

criterion_group!(benches, bench_encoding);
criterion_main!(benches);
