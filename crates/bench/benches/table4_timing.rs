//! Bench E-T4 (Table IV): slicing throughput over a whole binary and GCN
//! training throughput per epoch, for both slicers. Regenerate the table
//! with `cargo run -p tiara-eval -- table4`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tiara::{Classifier, ClassifierConfig, Dataset, Slicer};
use tiara_synth::{generate, ProjectSpec, TypeCounts};

fn test_binary() -> tiara_synth::Binary {
    generate(&ProjectSpec {
        name: "timing".into(),
        index: 1,
        seed: 42,
        counts: TypeCounts { list: 3, vector: 10, map: 10, primitive: 40, ..Default::default() },
    })
}

fn bench_slicing_whole_binary(c: &mut Criterion) {
    let bin = test_binary();
    let mut group = c.benchmark_group("table4/slice_binary");
    group.sample_size(10);
    for slicer in [Slicer::default(), Slicer::Sslice] {
        group.bench_with_input(BenchmarkId::from_parameter(slicer.name()), &slicer, |b, slicer| {
            b.iter(|| black_box(Dataset::from_binary(&bin.program, &bin.debug, "t", slicer)));
        });
    }
    group.finish();
}

fn bench_training_epoch(c: &mut Criterion) {
    let bin = test_binary();
    let mut group = c.benchmark_group("table4/train_one_epoch");
    group.sample_size(10);
    for slicer in [Slicer::default(), Slicer::Sslice] {
        let ds = Dataset::from_binary(&bin.program, &bin.debug, "t", &slicer);
        let cfg = ClassifierConfig { epochs: 1, ..Default::default() };
        group.bench_with_input(BenchmarkId::from_parameter(slicer.name()), &ds, |b, ds| {
            b.iter(|| {
                let mut clf = Classifier::new(&cfg);
                black_box(clf.train(ds).expect("nonempty dataset"));
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_slicing_whole_binary, bench_training_epoch);
criterion_main!(benches);
