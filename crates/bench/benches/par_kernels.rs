//! Sequential vs parallel kernels and pipeline on the shared executor:
//! the microbenchmark behind the BENCH_PR*.json throughput numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tiara::{slice_cache, Dataset, Slicer};
use tiara_gnn::{Csr, Matrix};
use tiara_par::Executor;
use tiara_synth::{generate, ProjectSpec, TypeCounts};

fn filled(rows: usize, cols: usize, phase: f32) -> Matrix {
    Matrix::from_vec(
        rows,
        cols,
        (0..rows * cols).map(|i| (i as f32 * 0.193 + phase).sin()).collect(),
    )
}

fn ring_adjacency(n: usize) -> Csr {
    let n32 = n as u32;
    let mut edges = Vec::new();
    for v in 0..n32 {
        edges.push((v, (v + 1) % n32));
        if v % 5 == 0 {
            edges.push((v, (v + 17) % n32));
        }
    }
    Csr::mean_pool_adjacency(n, &edges)
}

fn bench_matmul(c: &mut Criterion) {
    let a = filled(1024, 42, 0.0);
    let b = filled(42, 64, 1.0);
    let mut g = c.benchmark_group("matmul_1024x42x64");
    for threads in [1usize, 4] {
        let exec = Executor::new(threads);
        g.bench_with_input(BenchmarkId::from_parameter(threads), &exec, |bench, exec| {
            bench.iter(|| a.matmul_with(&b, exec));
        });
    }
    g.finish();
}

fn bench_spmm(c: &mut Criterion) {
    let adj = ring_adjacency(4096);
    let x = filled(4096, 64, 0.5);
    let mut g = c.benchmark_group("spmm_4096x64");
    for threads in [1usize, 4] {
        let exec = Executor::new(threads);
        g.bench_with_input(BenchmarkId::from_parameter(threads), &exec, |bench, exec| {
            bench.iter(|| adj.spmm_with(&x, exec));
        });
        g.bench_with_input(BenchmarkId::new("t_spmm", threads), &exec, |bench, exec| {
            bench.iter(|| adj.t_spmm_with(&x, exec));
        });
    }
    g.finish();
}

fn bench_slicing(c: &mut Criterion) {
    let bin = generate(&ProjectSpec {
        name: "bench".into(),
        index: 0,
        seed: 9,
        counts: TypeCounts { list: 8, vector: 16, map: 16, primitive: 60, ..Default::default() },
    });
    let slicer = Slicer::default();
    slice_cache::set_enabled(false);
    let mut g = c.benchmark_group("slice_encode_100vars");
    g.sample_size(10);
    for threads in [1usize, 4] {
        let exec = Executor::new(threads);
        g.bench_with_input(BenchmarkId::from_parameter(threads), &exec, |bench, exec| {
            bench.iter(|| {
                Dataset::from_binary_with(&bin.program, &bin.debug, "bench", &slicer, exec)
            });
        });
    }
    g.finish();
    slice_cache::set_enabled(true);
}

criterion_group!(benches, bench_matmul, bench_spmm, bench_slicing);
criterion_main!(benches);
