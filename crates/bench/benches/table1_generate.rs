//! Bench E-T1 (Table I): generating the benchmark suite binaries and
//! collecting their statistics. Regenerate the table itself with
//! `cargo run -p tiara-eval -- table1`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tiara_eval::tables::table1;
use tiara_eval::{build_suite, scale_spec};
use tiara_synth::{benchmark_suite, generate};

fn bench_generate_projects(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/generate_project");
    group.sample_size(10);
    for spec in benchmark_suite(42) {
        let small = scale_spec(&spec, 0.1);
        group.bench_with_input(BenchmarkId::from_parameter(&spec.name), &small, |b, s| {
            b.iter(|| black_box(generate(s)));
        });
    }
    group.finish();
}

fn bench_table1_stats(c: &mut Criterion) {
    let bins = build_suite(42, 0.1);
    c.bench_function("table1/stats", |b| {
        b.iter(|| black_box(table1(black_box(&bins))));
    });
}

criterion_group!(benches, bench_generate_projects, bench_table1_stats);
criterion_main!(benches);
