//! Bench E-T3 (Table III): per-slice latency of TSLICE vs SSLICE for one
//! variable of each type — the "0.2 seconds per slice" claim of Section II.
//! Regenerate the size table with `cargo run -p tiara-eval -- table3`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tiara_ir::ContainerClass;
use tiara_slice::{sslice, tslice};
use tiara_synth::{generate, ProjectSpec, TypeCounts};

fn bench_per_slice(c: &mut Criterion) {
    let bin = generate(&ProjectSpec {
        name: "bench".into(),
        index: 0,
        seed: 42,
        counts: TypeCounts { list: 6, vector: 20, map: 20, primitive: 100, ..Default::default() },
    });

    let mut group = c.benchmark_group("table3/slice_one_variable");
    for class in ContainerClass::ALL {
        let (addr, _) =
            bin.labeled_vars().find(|(_, k)| *k == class).expect("variable of each class exists");
        group.bench_with_input(BenchmarkId::new("TSLICE", class), &addr, |b, &addr| {
            b.iter(|| black_box(tslice(&bin.program, addr)))
        });
        group.bench_with_input(BenchmarkId::new("SSLICE", class), &addr, |b, &addr| {
            b.iter(|| black_box(sslice(&bin.program, addr)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_per_slice);
criterion_main!(benches);
