//! Hot-loop microbench for the GNN training kernels (PR 8): block-diagonal
//! spmm over a batch of pooled adjacencies, the fused matmul+bias+ReLU
//! forward kernel against its unfused two-pass equivalent, the fused
//! softmax+cross-entropy, and a full training run on the batched engine vs
//! the retained per-sample reference tape. The macro-level counterpart is
//! `tiara-eval bench` → BENCH_PR9.json.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tiara_gnn::{fused, Csr, Gcn, GcnConfig, GraphSample, Matrix};

/// Deterministic pseudo-random matrix (xorshift; benches must not depend on
/// host entropy).
fn filled(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 40) as f32 / (1u64 << 24) as f32 - 0.5
    };
    let data: Vec<Vec<f32>> = (0..rows).map(|_| (0..cols).map(|_| next()).collect()).collect();
    let refs: Vec<&[f32]> = data.iter().map(Vec::as_slice).collect();
    Matrix::from_rows(&refs)
}

/// A batch of mean-pooled chain adjacencies, as the batched engine sees it.
fn pooled_blocks(graphs: usize, nodes: usize) -> Vec<Csr> {
    (0..graphs)
        .map(|g| {
            let edges: Vec<(u32, u32)> = (0..nodes as u32 - 1)
                .flat_map(|i| [(i, i + 1), (i + 1, (i + g as u32) % nodes as u32)])
                .collect();
            Csr::mean_pool_adjacency(nodes, &edges)
        })
        .collect()
}

fn training_set(samples: usize, nodes: usize, dim: usize) -> Vec<GraphSample> {
    (0..samples)
        .map(|i| {
            let feats = filled(nodes, dim, 0x9e37 + i as u64);
            let edges: Vec<(u32, u32)> =
                (0..nodes as u32 - 1).map(|j| (j, (j + 1 + i as u32 % 3) % nodes as u32)).collect();
            GraphSample::new(feats, &edges, (i % 5) as u32)
        })
        .collect()
}

fn bench_kernels(c: &mut Criterion) {
    // 32 graphs × 24 nodes ≈ one training batch of the Table I suite.
    let blocks = pooled_blocks(32, 24);
    let refs: Vec<&Csr> = blocks.iter().collect();
    let feats = filled(32 * 24, 42, 7);
    let mut adj = Csr::empty();
    let mut out = Matrix::zeros(0, 0);

    let mut group = c.benchmark_group("gnn_hot_loop");
    group.bench_function("block_diag_spmm", |b| {
        b.iter(|| {
            Csr::block_diag_into(black_box(&refs), &mut adj);
            adj.spmm_into(black_box(&feats), &mut out);
            black_box(out.rows());
        });
    });

    let a = filled(32 * 24, 64, 11);
    let w = filled(64, 64, 13);
    let bias = filled(1, 64, 17);
    group.bench_function("fused_matmul_bias_relu", |b| {
        b.iter(|| {
            fused::matmul_bias_relu_into(black_box(&a), black_box(&w), Some(bias.row(0)), &mut out);
            black_box(out.rows());
        });
    });
    group.bench_function("unfused_matmul_bias_relu", |b| {
        b.iter(|| {
            a.matmul_into(black_box(&w), &mut out);
            for r in 0..out.rows() {
                for cc in 0..out.cols() {
                    let v = (out.get(r, cc) + bias.get(0, cc)).max(0.0);
                    out.set(r, cc, v);
                }
            }
            black_box(out.rows());
        });
    });

    let logits = filled(512, 5, 19);
    let labels: Vec<u32> = (0..512).map(|i| (i % 5) as u32).collect();
    group.bench_function("softmax_ce_loss", |b| {
        b.iter(|| black_box(fused::softmax_ce_loss(black_box(&logits), black_box(&labels))));
    });
    group.finish();
}

fn bench_train(c: &mut Criterion) {
    let samples = training_set(64, 16, 42);
    let base = GcnConfig {
        input_dim: 42,
        hidden_dim: 64,
        num_classes: 5,
        epochs: 3,
        batch_size: 32,
        ..GcnConfig::default()
    };
    let mut group = c.benchmark_group("gnn_hot_loop/train");
    group.sample_size(10);
    for reference_mode in [false, true] {
        let name = if reference_mode { "reference" } else { "batched" };
        group.bench_with_input(BenchmarkId::from_parameter(name), &reference_mode, |b, &rm| {
            b.iter(|| {
                let mut gcn = Gcn::new(GcnConfig { reference_mode: rm, ..base.clone() });
                gcn.train(black_box(&samples));
                black_box(gcn.predict(&samples[0]))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels, bench_train);
criterion_main!(benches);
