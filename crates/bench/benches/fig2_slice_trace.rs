//! Bench E-F1/F2 (Figures 1–2): the motivating example — building the
//! inlined+interleaved binary, slicing the `std::list` variable (with and
//! without trace recording), and rendering the Figure 2(a) table.
//! Regenerate the figure with `cargo run -p tiara-eval -- fig2`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tiara_slice::{tslice, tslice_with, TsliceConfig};
use tiara_synth::motivating_example;

fn bench_fig2(c: &mut Criterion) {
    c.bench_function("fig2/build_example", |b| {
        b.iter(|| black_box(motivating_example()));
    });

    let ex = motivating_example();
    c.bench_function("fig2/tslice_l", |b| {
        b.iter(|| black_box(tslice(&ex.binary.program, ex.l)));
    });
    c.bench_function("fig2/tslice_l_traced", |b| {
        b.iter(|| black_box(tslice_with(&ex.binary.program, ex.l, &TsliceConfig::with_trace())));
    });
    c.bench_function("fig2/render_table", |b| {
        b.iter(|| black_box(tiara_eval::fig2::render_figure2()));
    });
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
