//! # tiara-bench
//!
//! Criterion benchmarks regenerating the TIARA paper's tables and figures.
//! Each bench target corresponds to one experiment in DESIGN.md's
//! per-experiment index:
//!
//! | target | artifact |
//! |---|---|
//! | `table1_generate` | Table I (suite generation + statistics) |
//! | `table2_intra` | Table II, rows I1a–I5b (RQ1, RQ3) |
//! | `table2_cross` | Table II, rows C6a–C9b (RQ2, RQ3) |
//! | `table3_slice_sizes` | Table III (per-slice latency, TSLICE vs SSLICE) |
//! | `table4_timing` | Table IV (slicing + training throughput) |
//! | `fig2_slice_trace` | Figure 2 (motivating example trace) |
//! | `fig5_encoding` | Figure 5 (feature encoding) |
//!
//! Benches use scaled-down inputs for feasible iteration counts; the
//! `tiara-eval` CLI regenerates the *full* tables with paper-shaped data.

#![forbid(unsafe_code)]
