//! Integration tests against the synthetic generator: every project the
//! generator can produce must pass the static passes with zero errors, the
//! slice oracle must accept real slicer output, and controlled mutations of
//! clean programs must trigger the expected diagnostics.

use proptest::prelude::*;
use std::fmt::Write as _;
use tiara_ir::{
    detect_frame_mode, parse_program, FrameMode, InstKind, Opcode, Operand, ProgramBuilder, Reg,
};
use tiara_synth::{benchmark_suite, extended_suite, generate, ProjectSpec, TypeCounts};
use tiara_verify::{verify, verify_with_slices, PassId, Severity};

/// Shrinks a benchmark spec's variable counts so the full project matrix
/// stays fast in a test run (the styles and templates are what matter, not
/// the variable volume).
fn shrink(spec: &ProjectSpec) -> ProjectSpec {
    let s = |n: usize| if n == 0 { 0 } else { (n / 25).max(1) };
    ProjectSpec {
        counts: TypeCounts {
            list: s(spec.counts.list),
            vector: s(spec.counts.vector),
            map: s(spec.counts.map),
            primitive: s(spec.counts.primitive),
            deque: s(spec.counts.deque),
            set: s(spec.counts.set),
            escape: s(spec.counts.escape),
            computed: s(spec.counts.computed),
        },
        ..spec.clone()
    }
}

#[test]
fn every_benchmark_project_lints_clean() {
    let specs: Vec<ProjectSpec> =
        benchmark_suite(42).iter().chain(extended_suite(42).iter()).map(shrink).collect();
    for spec in &specs {
        let bin = generate(spec);
        let report = verify(&bin.program);
        assert!(
            !report.has_errors(),
            "`{}` must lint clean:\n{}",
            bin.name,
            report.render_human(&bin.program)
        );
    }
}

#[test]
fn computed_address_scenarios_pass_the_vsa_soundness_oracle() {
    // The computed scenarios are all straight-line, so every one of them is
    // concretely executed by the `vsa-soundness` oracle; a VSA transfer bug
    // would surface as an error here before poisoning discovery or slicing.
    for seed in [3, 11, 29] {
        let bin = generate(&ProjectSpec {
            name: format!("computed-{seed}"),
            index: (seed % 8) as usize,
            seed,
            counts: TypeCounts { primitive: 2, computed: 8, ..Default::default() },
        });
        let report = verify(&bin.program);
        assert!(
            !report.has_errors(),
            "`{}` must lint clean under the VSA passes:\n{}",
            bin.name,
            report.render_human(&bin.program)
        );
    }
}

#[test]
fn slice_oracle_accepts_real_slicer_output() {
    let bin = generate(&shrink(&benchmark_suite(7)[0]));
    let criteria: Vec<_> = bin.debug.iter().take(6).map(|r| r.addr).collect();
    assert!(!criteria.is_empty(), "project must have labeled variables");
    let report = verify_with_slices(&bin.program, &criteria);
    assert!(!report.has_errors(), "{}", report.render_human(&bin.program));
}

#[test]
fn generated_frame_prologues_are_detected() {
    // Regression for the basic-block-wide `detect_frame_mode`: generated
    // prologues must classify as FramePointer in every style, even with
    // interleaved noise between the push and the capture.
    let bin = generate(&shrink(&benchmark_suite(3)[2]));
    let prog = &bin.program;
    let mut checked = 0;
    for f in prog.funcs() {
        let first = prog.inst(f.entry());
        let pushes_ebp =
            matches!(first.kind, InstKind::Push { src } if src.as_reg() == Some(Reg::Ebp));
        if pushes_ebp {
            assert_eq!(
                detect_frame_mode(prog, f.id),
                FrameMode::FramePointer,
                "function `{}` sets up a frame but was not detected",
                f.name
            );
            checked += 1;
        }
    }
    assert!(checked > 0, "suite project must contain framed functions");
}

/// A frameless straight-line `main` with `noise` moves and an optional
/// planted defect inserted before the move at position `at`.
fn straightline_program(
    noise: usize,
    plant: Option<(Opcode, InstKind)>,
    at: usize,
) -> tiara_ir::Program {
    let mut b = ProgramBuilder::new();
    b.begin_func("main");
    for i in 0..noise {
        if i == at {
            if let Some((op, kind)) = plant.clone() {
                b.inst(op, kind);
            }
        }
        b.inst(
            Opcode::Mov,
            InstKind::Mov { dst: Operand::reg(Reg::Eax), src: Operand::imm(i as i64) },
        );
    }
    b.ret();
    b.end_func();
    b.finish().expect("program builds")
}

/// Renders one randomly chosen well-formed statement into a listing body.
/// Every template is self-contained: it defines every register it reads,
/// balances its own pushes, and keeps any loop at a constant stack depth.
fn render_stmt(i: usize, choice: u8, k: u8, g: u8, out: &mut String) {
    let g = 0x74400u64 + 4 * u64::from(g % 8);
    match choice % 6 {
        0 => {
            let _ = writeln!(out, "    mov eax, {k}");
        }
        1 => {
            let _ = writeln!(out, "    mov ecx, dword ptr [{g:X}h]");
            let _ = writeln!(out, "    inc ecx");
            let _ = writeln!(out, "    mov dword ptr [{g:X}h], ecx");
        }
        2 => {
            let _ = writeln!(out, "    xor edx, edx");
            let _ = writeln!(out, "    mov dword ptr [{g:X}h], edx");
        }
        3 => {
            let _ = writeln!(out, "    mov eax, [ebp+8]");
            let _ = writeln!(out, "    add eax, {k}");
            let _ = writeln!(out, "    mov [ebp+8], eax");
        }
        4 => {
            let _ = writeln!(out, "    mov ecx, {k}");
            let _ = writeln!(out, "    push ecx");
            let _ = writeln!(out, "    pop edx");
        }
        _ => {
            // Counter must start ≥2: a one-trip loop makes the back-edge
            // `jne` provably never-taken and trips const-condition.
            let _ = writeln!(out, "    mov ecx, {}", (k % 3) + 2);
            let _ = writeln!(out, ".l{i}:");
            let _ = writeln!(out, "    dec ecx");
            let _ = writeln!(out, "    cmp ecx, 0");
            let _ = writeln!(out, "    jne .l{i}");
        }
    }
}

/// A random but well-formed listing: framed `main` calling a framed helper.
fn render_listing(stmts: &[(u8, u8, u8)]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "func helper {{");
    let _ = writeln!(s, "    push ebp");
    let _ = writeln!(s, "    mov ebp, esp");
    let _ = writeln!(s, "    mov eax, 1");
    let _ = writeln!(s, "    pop ebp");
    let _ = writeln!(s, "    ret");
    let _ = writeln!(s, "}}");
    let _ = writeln!(s, "func main {{");
    let _ = writeln!(s, "    push ebp");
    let _ = writeln!(s, "    mov ebp, esp");
    let _ = writeln!(s, "    sub esp, 32");
    for (i, &(choice, k, g)) in stmts.iter().enumerate() {
        render_stmt(i, choice, k, g, &mut s);
    }
    let _ = writeln!(s, "    call helper");
    let _ = writeln!(s, "    mov esp, ebp");
    let _ = writeln!(s, "    pop ebp");
    let _ = writeln!(s, "    ret");
    let _ = writeln!(s, "}}");
    let _ = writeln!(s, "entry main");
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Round trip: any well-formed listing parses with `parse_program` and
    /// then verifies with no diagnostics at all.
    #[test]
    fn parsed_listings_verify_clean(
        stmts in prop::collection::vec((0u8..6, 0u8..120, 0u8..8), 1..12),
    ) {
        let text = render_listing(&stmts);
        let prog = parse_program(&text).expect("well-formed listing parses");
        let report = verify(&prog);
        prop_assert!(
            report.is_clean(),
            "listing must verify clean:\n{text}\n{}",
            report.render_human(&prog)
        );
    }

    /// Planting an unmatched `push` into an otherwise balanced frameless
    /// function always trips the stack-balance pass.
    #[test]
    fn planted_push_trips_stack_balance(noise in 1usize..24, at in 0usize..24) {
        let at = at % noise;
        let plant = (Opcode::Push, InstKind::Push { src: Operand::reg(Reg::Eax) });
        let prog = straightline_program(noise, Some(plant), at);
        let report = verify(&prog);
        prop_assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.pass == PassId::StackBalance && d.severity == Severity::Error),
            "expected a stack-balance error:\n{}",
            report.render_human(&prog)
        );
    }

    /// Planting a read of a never-written register always trips the
    /// def-before-use pass.
    #[test]
    fn planted_undefined_read_trips_defuse(noise in 1usize..24, at in 0usize..24) {
        let at = at % noise;
        let plant = (
            Opcode::Mov,
            InstKind::Mov { dst: Operand::reg(Reg::Eax), src: Operand::reg(Reg::Esi) },
        );
        let prog = straightline_program(noise, Some(plant), at);
        let report = verify(&prog);
        prop_assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.pass == PassId::DefBeforeUse && d.severity == Severity::Error),
            "expected a def-before-use error:\n{}",
            report.render_human(&prog)
        );
    }

    /// The unplanted control: pure noise bodies lint clean.
    #[test]
    fn noise_bodies_lint_clean(noise in 1usize..24) {
        let prog = straightline_program(noise, None, 0);
        let report = verify(&prog);
        prop_assert!(report.is_clean(), "{}", report.render_human(&prog));
    }
}
