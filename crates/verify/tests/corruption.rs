//! Corruption tests: `Program` keeps its CFG invariants private, so these
//! tests use the `RawProgram` escape hatch — take a well-formed program
//! apart, damage one structural fact, reassemble it unchecked, and check
//! that the CFG pass rejects the result (and that the later passes are
//! skipped rather than panicking on the broken structure).

use tiara_ir::{
    FuncId, InstId, InstKind, Opcode, Operand, Program, ProgramBuilder, RawProgram, Reg,
};
use tiara_verify::{verify, PassId};

/// A small two-function program that verifies clean.
fn clean_program() -> Program {
    let mut b = ProgramBuilder::new();
    let callee = b.begin_func("callee");
    b.inst(Opcode::Mov, InstKind::Mov { dst: Operand::reg(Reg::Eax), src: Operand::imm(7) });
    b.ret();
    b.end_func();
    b.begin_func("main");
    b.call_direct(callee);
    b.inst(Opcode::Mov, InstKind::Mov { dst: Operand::reg(Reg::Ecx), src: Operand::reg(Reg::Eax) });
    b.ret();
    b.end_func();
    b.set_entry("main");
    b.finish().expect("program builds")
}

/// Applies `mutate` to the raw fields of a clean program and reassembles
/// the damaged program without validation.
fn corrupt(mutate: impl FnOnce(&mut RawProgram)) -> Program {
    let prog = clean_program();
    assert!(verify(&prog).is_clean(), "baseline program must be clean");
    let mut raw = prog.to_raw();
    mutate(&mut raw);
    Program::from_raw_unchecked(raw)
}

fn cfg_errors(prog: &Program) -> usize {
    let report = verify(prog);
    assert!(report.has_errors(), "corruption must be detected:\n{}", report.render_human(prog));
    assert!(
        report.diagnostics.iter().all(|d| d.pass == PassId::Cfg),
        "later passes must be skipped on structural damage:\n{}",
        report.render_human(prog)
    );
    report.num_errors()
}

#[test]
fn dangling_cfg_edge_is_rejected() {
    let prog = corrupt(|raw| {
        raw.cfg_succs[0].push(InstId(9999));
    });
    assert!(cfg_errors(&prog) >= 1);
}

#[test]
fn dangling_flow_edge_is_rejected() {
    let prog = corrupt(|raw| {
        raw.flow_succs[0].push(InstId(12345));
    });
    assert!(cfg_errors(&prog) >= 1);
}

#[test]
fn overlapping_function_table_is_rejected() {
    // Stretch callee's range into main: the table no longer tiles the
    // instruction list.
    let prog = corrupt(|raw| {
        raw.funcs[0].end = InstId(3);
    });
    assert!(cfg_errors(&prog) >= 1);
}

#[test]
fn inconsistent_inst_func_map_is_rejected() {
    // Claim main's ret belongs to callee while the table says otherwise.
    let prog = corrupt(|raw| {
        let last = raw.inst_func.len() - 1;
        raw.inst_func[last] = FuncId(0);
    });
    assert!(cfg_errors(&prog) >= 1);
}

#[test]
fn cross_function_flow_edge_is_rejected() {
    // A flow edge from callee's mov straight into main's body: flow is an
    // intra-procedural relation, so this must be flagged.
    let prog = corrupt(|raw| {
        raw.flow_succs[0].push(InstId(3));
    });
    assert!(cfg_errors(&prog) >= 1);
}

#[test]
fn raw_round_trip_of_an_undamaged_program_stays_clean() {
    let prog = clean_program();
    let rebuilt = Program::from_raw_unchecked(prog.to_raw());
    assert!(verify(&rebuilt).is_clean(), "an unmutated raw round-trip must stay clean");
    assert_eq!(rebuilt.num_insts(), prog.num_insts());
    assert_eq!(rebuilt.funcs().len(), prog.funcs().len());
}
