//! Corruption tests: `Program` keeps its CFG invariants private, so these
//! tests go through its serde representation — serialize a well-formed
//! program, damage one structural fact in the JSON, deserialize, and check
//! that the CFG pass rejects the result (and that the later passes are
//! skipped rather than panicking on the broken structure).

use serde_json::Value;
use tiara_ir::{InstKind, Opcode, Operand, Program, ProgramBuilder, Reg};
use tiara_verify::{verify, PassId};

/// A small two-function program that verifies clean.
fn clean_program() -> Program {
    let mut b = ProgramBuilder::new();
    let callee = b.begin_func("callee");
    b.inst(Opcode::Mov, InstKind::Mov { dst: Operand::reg(Reg::Eax), src: Operand::imm(7) });
    b.ret();
    b.end_func();
    b.begin_func("main");
    b.call_direct(callee);
    b.inst(Opcode::Mov, InstKind::Mov { dst: Operand::reg(Reg::Ecx), src: Operand::reg(Reg::Eax) });
    b.ret();
    b.end_func();
    b.set_entry("main");
    b.finish().expect("program builds")
}

/// Applies `mutate` to the serde representation of a clean program and
/// returns the re-deserialized, damaged program.
fn corrupt(mutate: impl FnOnce(&mut Value)) -> Program {
    let prog = clean_program();
    assert!(verify(&prog).is_clean(), "baseline program must be clean");
    let mut v = serde_json::to_value(&prog).expect("program serializes");
    mutate(&mut v);
    serde_json::from_value(v).expect("mutated program deserializes")
}

fn cfg_errors(prog: &Program) -> usize {
    let report = verify(prog);
    assert!(report.has_errors(), "corruption must be detected:\n{}", report.render_human(prog));
    assert!(
        report.diagnostics.iter().all(|d| d.pass == PassId::Cfg),
        "later passes must be skipped on structural damage:\n{}",
        report.render_human(prog)
    );
    report.num_errors()
}

#[test]
fn dangling_cfg_edge_is_rejected() {
    let prog = corrupt(|v| {
        let succs = v["cfg_succs"][0].as_array_mut().expect("edge list");
        succs.push(Value::from(9999));
    });
    assert!(cfg_errors(&prog) >= 1);
}

#[test]
fn dangling_flow_edge_is_rejected() {
    let prog = corrupt(|v| {
        let succs = v["flow_succs"][0].as_array_mut().expect("edge list");
        succs.push(Value::from(12345));
    });
    assert!(cfg_errors(&prog) >= 1);
}

#[test]
fn overlapping_function_table_is_rejected() {
    // Stretch callee's range into main: the table no longer tiles the
    // instruction list.
    let prog = corrupt(|v| {
        v["funcs"][0]["end"] = Value::from(3);
    });
    assert!(cfg_errors(&prog) >= 1);
}

#[test]
fn inconsistent_inst_func_map_is_rejected() {
    // Claim main's ret belongs to callee while the table says otherwise.
    let prog = corrupt(|v| {
        let map = v["inst_func"].as_array_mut().expect("inst_func map");
        let last = map.len() - 1;
        map[last] = Value::from(0);
    });
    assert!(cfg_errors(&prog) >= 1);
}

#[test]
fn cross_function_flow_edge_is_rejected() {
    // A flow edge from callee's mov straight into main's body: flow is an
    // intra-procedural relation, so this must be flagged.
    let prog = corrupt(|v| {
        let succs = v["flow_succs"][0].as_array_mut().expect("edge list");
        succs.push(Value::from(3));
    });
    assert!(cfg_errors(&prog) >= 1);
}
