//! Slice-soundness oracles for TSLICE and SSLICE.
//!
//! Three machine-checkable properties back the claims DESIGN.md makes about
//! the slicers:
//!
//! 1. **Structure** — a slice is a well-formed, *connected* sub-CFG: nodes
//!    are unique instructions in program order with faith in `[0, 1]`, edge
//!    endpoints are in bounds, the criterion's first access is a node, and
//!    every node is reachable from it along slice edges.
//! 2. **Monotonicity** — along TSLICE's recorded trace, the faith of any
//!    one instruction never increases (faith only decays).
//! 3. **Containment** — differential check: TSLICE explores the first-access
//!    function and its direct callees, so its node set must be contained in
//!    SSLICE's for the same criterion.
//! 4. **Kill soundness** — differential check against the reaching-defs
//!    engine in `tiara-dataflow`: every strong update (`[Mov-*-kill]`) in
//!    the trace must be a genuine killing definition of its register.

use crate::{Diagnostic, PassId};
use std::collections::HashSet;
use tiara_ir::{Program, VarAddr};
use tiara_slice::{
    check_kill_rules, first_access, sslice, tslice_with, Slice, TraceEvent, TsliceConfig,
};

/// Faith comparisons tolerate accumulated floating-point error up to this.
const FAITH_EPS: f64 = 1e-9;

/// Checks that `slice` is a well-formed, connected sub-CFG of `prog`.
pub fn check_slice(prog: &Program, slice: &Slice) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let n = prog.num_insts();

    let mut ok = true;
    for (i, node) in slice.nodes.iter().enumerate() {
        if node.inst.index() >= n {
            diags.push(Diagnostic::error(
                PassId::SliceOracle,
                format!("slice node {} refers to dead instruction {}", i, node.inst.index()),
            ));
            ok = false;
        }
        if i > 0 && slice.nodes[i - 1].inst >= node.inst {
            diags.push(Diagnostic::error(
                PassId::SliceOracle,
                format!("slice nodes out of program order at index {i}"),
            ));
            ok = false;
        }
        if !(node.faith >= 0.0 && node.faith <= 1.0) {
            diags.push(
                Diagnostic::error(
                    PassId::SliceOracle,
                    format!("slice node {} has faith {} outside [0, 1]", i, node.faith),
                )
                .at(node.inst),
            );
        }
    }
    let count = slice.nodes.len() as u32;
    for &(u, v) in &slice.edges {
        if u >= count || v >= count {
            diags.push(Diagnostic::error(
                PassId::SliceOracle,
                format!("slice edge ({u}, {v}) is out of bounds for {count} nodes"),
            ));
            ok = false;
        }
    }
    if !ok {
        return diags;
    }

    let entry = match first_access(prog, slice.criterion) {
        Some(e) => e,
        None => {
            if !slice.is_empty() {
                diags.push(Diagnostic::error(
                    PassId::SliceOracle,
                    "non-empty slice for a criterion that is never accessed".to_string(),
                ));
            }
            return diags;
        }
    };
    if slice.is_empty() {
        return diags;
    }
    let Some(start) = slice.node_index(entry) else {
        diags.push(
            Diagnostic::error(
                PassId::SliceOracle,
                "the criterion's first access is not a slice node".to_string(),
            )
            .at(entry),
        );
        return diags;
    };

    // Connectivity: every node must be reachable from the first access
    // along slice edges (the contraction of the CFG onto the slice).
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); slice.nodes.len()];
    for &(u, v) in &slice.edges {
        succs[u as usize].push(v as usize);
    }
    let mut seen = vec![false; slice.nodes.len()];
    let mut stack = vec![start];
    seen[start] = true;
    while let Some(u) = stack.pop() {
        for &v in &succs[u] {
            if !seen[v] {
                seen[v] = true;
                stack.push(v);
            }
        }
    }
    for (i, reached) in seen.iter().enumerate() {
        if !reached {
            diags.push(
                Diagnostic::error(
                    PassId::SliceOracle,
                    format!("slice is not connected: node {i} unreachable from the criterion"),
                )
                .at(slice.nodes[i].inst),
            );
        }
    }
    diags
}

/// Checks that along `trace` the faith of each instruction never increases.
pub fn check_trace_monotone(trace: &[TraceEvent]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut last: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
    for ev in trace {
        if let Some(&prev) = last.get(&ev.inst.0) {
            if ev.faith > prev + FAITH_EPS {
                diags.push(
                    Diagnostic::error(
                        PassId::SliceOracle,
                        format!("trace faith increased from {} to {}", prev, ev.faith),
                    )
                    .at(ev.inst),
                );
            }
        }
        last.insert(ev.inst.0, ev.faith);
    }
    diags
}

/// Differential check: every TSLICE node must also be an SSLICE node for
/// the same criterion (TSLICE ⊆ SSLICE).
pub fn check_tslice_in_sslice(tslice: &Slice, sslice: &Slice) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let in_sslice: HashSet<u32> = sslice.nodes.iter().map(|n| n.inst.0).collect();
    for node in &tslice.nodes {
        if !in_sslice.contains(&node.inst.0) {
            diags.push(
                Diagnostic::error(
                    PassId::SliceOracle,
                    format!(
                        "TSLICE ⊄ SSLICE: instruction {} is in TSLICE but not SSLICE",
                        node.inst.index()
                    ),
                )
                .at(node.inst),
            );
        }
    }
    diags
}

/// Runs the full oracle for each criterion: slices with TSLICE (tracing on)
/// and SSLICE, then checks structure, monotonicity, containment, and kill
/// soundness.
pub fn verify_slices(prog: &Program, criteria: &[VarAddr]) -> Vec<Diagnostic> {
    verify_slices_with(prog, criteria, &TsliceConfig::with_trace())
}

/// [`verify_slices`] under an explicit slicer configuration — the gate for
/// non-default modes such as
/// [`use_call_summaries`](TsliceConfig::use_call_summaries). Tracing is
/// forced on (the monotonicity oracle needs the event stream).
pub fn verify_slices_with(
    prog: &Program,
    criteria: &[VarAddr],
    cfg: &TsliceConfig,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let cfg = TsliceConfig { trace: true, ..cfg.clone() };
    for &v0 in criteria {
        let out = tslice_with(prog, v0, &cfg);
        let base = sslice(prog, v0);
        diags.extend(check_slice(prog, &out.slice));
        diags.extend(check_trace_monotone(&out.trace));
        diags.extend(check_tslice_in_sslice(&out.slice, &base));
        for v in check_kill_rules(prog, v0).violations {
            let mut d = Diagnostic::error(
                PassId::SliceOracle,
                format!("kill-rule/reaching-defs disagreement: {}", v.message),
            )
            .at(v.inst);
            d.func = Some(prog.func_of(v.inst));
            diags.push(d);
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiara_ir::{InstId, InstKind, MemAddr, Opcode, Operand, ProgramBuilder, Reg};
    use tiara_slice::SliceNode;

    const V0: u64 = 0x100000;

    /// A function that touches the global at `V0` a few times.
    fn touching_program() -> Program {
        let mut b = ProgramBuilder::new();
        b.begin_func("main");
        b.inst(
            Opcode::Mov,
            InstKind::Mov { dst: Operand::reg(Reg::Eax), src: Operand::mem_abs(V0, 0) },
        );
        b.inst(
            Opcode::Mov,
            InstKind::Mov { dst: Operand::reg(Reg::Ecx), src: Operand::mem_reg(Reg::Eax, 4) },
        );
        b.inst(
            Opcode::Mov,
            InstKind::Mov { dst: Operand::mem_abs(V0, 0), src: Operand::reg(Reg::Ecx) },
        );
        b.ret();
        b.end_func();
        b.finish().unwrap()
    }

    fn criterion() -> VarAddr {
        VarAddr::Global(MemAddr(V0))
    }

    #[test]
    fn real_slices_pass_the_oracle() {
        let p = touching_program();
        let diags = verify_slices(&p, &[criterion()]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn disconnected_slice_is_an_error() {
        let p = touching_program();
        let mut slice = tiara_slice::tslice(&p, criterion());
        assert!(slice.num_nodes() >= 2);
        // Sever every edge: all non-entry nodes become unreachable.
        slice.edges.clear();
        let diags = check_slice(&p, &slice);
        assert!(diags.iter().any(|d| d.message.contains("not connected")));
    }

    #[test]
    fn faith_above_one_is_an_error() {
        let p = touching_program();
        let mut slice = tiara_slice::tslice(&p, criterion());
        slice.nodes[0].faith = 1.5;
        let diags = check_slice(&p, &slice);
        assert!(diags.iter().any(|d| d.message.contains("outside [0, 1]")));
    }

    #[test]
    fn non_monotone_trace_is_an_error() {
        let trace = vec![
            TraceEvent { inst: InstId(0), rules: vec![], faith: 0.5, dep: true },
            TraceEvent { inst: InstId(0), rules: vec![], faith: 0.9, dep: true },
        ];
        let diags = check_trace_monotone(&trace);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("increased"));
    }

    #[test]
    fn monotone_trace_is_clean() {
        let trace = vec![
            TraceEvent { inst: InstId(0), rules: vec![], faith: 1.0, dep: true },
            TraceEvent { inst: InstId(1), rules: vec![], faith: 0.9, dep: false },
            TraceEvent { inst: InstId(0), rules: vec![], faith: 1.0, dep: true },
        ];
        assert!(check_trace_monotone(&trace).is_empty());
    }

    #[test]
    fn tslice_escaping_sslice_is_a_differential_error() {
        // Corrupt a genuine TSLICE output with a node SSLICE cannot contain
        // (an instruction past the root function and its callees).
        let mut b = ProgramBuilder::new();
        b.begin_func("main");
        b.inst(
            Opcode::Mov,
            InstKind::Mov { dst: Operand::reg(Reg::Eax), src: Operand::mem_abs(V0, 0) },
        );
        b.inst(
            Opcode::Mov,
            InstKind::Mov { dst: Operand::mem_abs(V0, 0), src: Operand::reg(Reg::Eax) },
        );
        b.ret();
        b.end_func();
        b.begin_func("stranger");
        b.inst(Opcode::Mov, InstKind::Mov { dst: Operand::reg(Reg::Edx), src: Operand::imm(1) });
        b.ret();
        b.end_func();
        b.set_entry("main");
        let p = b.finish().unwrap();

        let mut t = tiara_slice::tslice(&p, criterion());
        let s = sslice(&p, criterion());
        assert!(check_tslice_in_sslice(&t, &s).is_empty());

        let stranger = p.func_by_name("stranger").unwrap().entry();
        t.nodes.push(SliceNode { inst: stranger, faith: 1.0, indirection: 0 });
        let diags = check_tslice_in_sslice(&t, &s);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("TSLICE ⊄ SSLICE"));
    }
}
