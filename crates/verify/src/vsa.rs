//! VSA-backed lint passes.
//!
//! Four passes consume the value-set analysis of [`tiara_dataflow::vsa`]:
//!
//! * `vsa-out-of-frame` — a memory access whose abstract address is a
//!   provable frame slot must stay inside the live frame: below the current
//!   stack pointer is an error (the slot can be clobbered by any push or
//!   call), implausibly far above the return-address slot is a warning.
//! * `vsa-esp-balance` — at every `ret` the stack pointer must provably sit
//!   back at the return-address slot (`Frame(f) + 0`). A provably different
//!   singleton is an error; a value VSA cannot pin down is a warning. This
//!   subsumes the push/pop depth counting of `stack-balance` for code that
//!   moves `esp` through registers.
//! * `vsa-overlap` — two provable frame-slot accesses of the same function
//!   whose offsets are distinct but closer than a machine word overlap;
//!   that is legal x86 but almost always a generator or slicer-model bug,
//!   so it warns.
//! * `vsa-soundness` — an executable oracle for the analysis itself: every
//!   straight-line (single-basic-block) function is run on a tiny concrete
//!   machine, and every concrete memory-operand address must be a member of
//!   the abstract value set VSA computed for that operand. A miss is an
//!   error — it means the abstract transfer lost a concrete behavior, which
//!   would silently poison discovery and the slicer's must-alias kills.
//!
//! The oracle deliberately mirrors VSA's call model (callee clobbers
//! general registers, allocation sites return fresh heap pointers) and uses
//! fixed, documented constants for everything VSA treats as ⊤, so a clean
//! run is reproducible bit for bit.

use crate::{Diagnostic, PassId};
use std::collections::HashMap;
use tiara_dataflow::vsa::{vsa_function, Region, VsaResult, Vsv};
use tiara_dataflow::BlockCfg;
use tiara_ir::{FuncId, InstId, InstKind, Loc, Operand, Program, Reg};

/// Frame-slot accesses above `entry esp + frame allocation + ARG_WINDOW`
/// draw a warning: no generated calling convention passes arguments deeper
/// than this past the slots the function explicitly reserved. (The
/// generator addresses locals at *positive* `ebp` offsets — the paper's `v`
/// lives at `[ebp+8]` — so the plausible ceiling scales with the `sub esp`
/// allocation rather than being a fixed argument window.)
const ARG_WINDOW: i64 = 0x48;

/// Concrete entry `esp` of the oracle machine.
const ESP0: i64 = 0x7000_0000;

/// Concrete addresses within `ESP0 ± FRAME_SPAN` classify as frame slots.
const FRAME_SPAN: i64 = 1 << 20;

/// Base of the oracle's heap; allocation site `k` gets the block
/// `HEAP0 + k·HEAP_BLOCK`.
const HEAP0: i64 = 0x6000_0000;

/// Size of one oracle heap block.
const HEAP_BLOCK: i64 = 0x1000;

/// Value of a never-written oracle memory cell (also the post-call clobber
/// seed); classifies as a global, far from stack and heap.
const FILL: i64 = 0x0090_0000;

/// Initial value of the oracle's `ebp` (VSA models it as ⊤ at entry).
const EBP0: i64 = 0x5000_0000;

pub(crate) fn run(prog: &Program) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for f in prog.funcs() {
        let res = vsa_function(prog, f.id);
        check_frame_accesses(prog, &res, &mut diags);
        check_esp_balance(prog, &res, &mut diags);
        check_soundness(prog, &res, &mut diags);
    }
    diags
}

/// Total bytes the function explicitly reserves with `sub esp, imm`.
fn frame_alloc(prog: &Program, func: FuncId) -> i64 {
    prog.func(func)
        .inst_ids()
        .filter_map(|id| match &prog.inst(id).kind {
            InstKind::Op { op: tiara_ir::BinOp::Sub, dst, src: Operand::Imm(c) }
                if dst.as_reg() == Some(Reg::Esp) =>
            {
                Some(*c)
            }
            _ => None,
        })
        .sum()
}

/// `vsa-out-of-frame` and `vsa-overlap` over one function's resolved
/// memory operands.
fn check_frame_accesses(prog: &Program, res: &VsaResult, diags: &mut Vec<Diagnostic>) {
    let frame = Region::Frame(res.func);
    let ceiling = frame_alloc(prog, res.func) + ARG_WINDOW;
    let mut slots: Vec<(i64, InstId)> = Vec::new();
    for op in res.mem_ops(prog) {
        let Some(off) = op.addr.singleton_in(frame) else { continue };
        slots.push((off, op.inst));
        let esp = res.before(op.inst).reg(Reg::Esp).singleton_in(frame);
        if let Some(esp) = esp {
            if off < esp {
                diags.push(
                    Diagnostic::error(
                        PassId::VsaOutOfFrame,
                        format!(
                            "access to frame slot {off:#x} below the stack pointer ({esp:#x}) \
                             in `{}`",
                            prog.func(res.func).name
                        ),
                    )
                    .in_func(res.func)
                    .at(op.inst),
                );
            }
        }
        if off > ceiling {
            diags.push(
                Diagnostic::warning(
                    PassId::VsaOutOfFrame,
                    format!(
                        "access to frame slot {off:#x} implausibly far above the frame of `{}`",
                        prog.func(res.func).name
                    ),
                )
                .in_func(res.func)
                .at(op.inst),
            );
        }
    }
    slots.sort_unstable();
    slots.dedup_by_key(|(off, _)| *off);
    for w in slots.windows(2) {
        let ((a, _), (b, id)) = (w[0], w[1]);
        if b - a < 4 {
            diags.push(
                Diagnostic::warning(
                    PassId::VsaOverlap,
                    format!(
                        "frame slots {a:#x} and {b:#x} of `{}` overlap within one word",
                        prog.func(res.func).name
                    ),
                )
                .in_func(res.func)
                .at(id),
            );
            break; // one finding per function is enough to flag it
        }
    }
}

/// `vsa-esp-balance`: at each reached `ret`, `esp` must provably be back at
/// the return-address slot.
fn check_esp_balance(prog: &Program, res: &VsaResult, diags: &mut Vec<Diagnostic>) {
    let frame = Region::Frame(res.func);
    for id in prog.func(res.func).inst_ids() {
        if !matches!(prog.inst(id).kind, InstKind::Ret) || !res.reached(id) {
            continue;
        }
        match res.before(id).reg(Reg::Esp).singleton_in(frame) {
            Some(0) => {}
            Some(off) => diags.push(
                Diagnostic::error(
                    PassId::VsaEspBalance,
                    format!(
                        "`{}` returns with esp at frame offset {off:#x} instead of the \
                         return-address slot",
                        prog.func(res.func).name
                    ),
                )
                .in_func(res.func)
                .at(id),
            ),
            None => diags.push(
                Diagnostic::warning(
                    PassId::VsaEspBalance,
                    format!(
                        "cannot prove esp is balanced at this `ret` of `{}` (value set: {})",
                        prog.func(res.func).name,
                        res.before(id).reg(Reg::Esp)
                    ),
                )
                .in_func(res.func)
                .at(id),
            ),
        }
    }
}

/// The oracle's concrete machine: eight registers and a sparse memory.
struct Machine {
    regs: [i64; 8],
    mem: HashMap<i64, i64>,
    /// Allocation sites in first-execution order; the index fixes the
    /// concrete block address.
    sites: Vec<InstId>,
}

impl Machine {
    fn new() -> Machine {
        let mut regs = [0i64; 8];
        for (i, r) in Reg::ALL.iter().enumerate() {
            // Distinct, deterministic junk for every general register.
            regs[r.index()] = FILL + (i as i64 + 1) * 0x100;
        }
        regs[Reg::Esp.index()] = ESP0;
        regs[Reg::Ebp.index()] = EBP0;
        Machine { regs, mem: HashMap::new(), sites: Vec::new() }
    }

    fn read(&self, addr: i64) -> i64 {
        *self.mem.get(&addr).unwrap_or(&FILL)
    }

    fn loc_addr(&self, loc: Loc) -> i64 {
        match loc.base {
            tiara_ir::Addr::Reg(r) => self.regs[r.index()].wrapping_add(loc.offset),
            tiara_ir::Addr::Mem(m) => (m.value() as i64).wrapping_add(loc.offset),
        }
    }

    /// Classifies a concrete address into the abstract region model.
    fn classify(&self, func: FuncId, addr: i64) -> (Region, i64) {
        if (ESP0 - FRAME_SPAN..ESP0 + FRAME_SPAN).contains(&addr) {
            return (Region::Frame(func), addr - ESP0);
        }
        let heap_end = HEAP0 + self.sites.len() as i64 * HEAP_BLOCK;
        if (HEAP0..heap_end).contains(&addr) {
            let k = (addr - HEAP0) / HEAP_BLOCK;
            return (Region::Heap(self.sites[k as usize]), addr - HEAP0 - k * HEAP_BLOCK);
        }
        (Region::Global, addr)
    }
}

/// `vsa-soundness`: concretely executes every single-basic-block function
/// and checks each observed memory-operand address against the abstract
/// value set at that point.
fn check_soundness(prog: &Program, res: &VsaResult, diags: &mut Vec<Diagnostic>) {
    if BlockCfg::intra(prog, res.func).num_blocks() != 1 {
        return;
    }
    let mut m = Machine::new();
    for id in prog.func(res.func).inst_ids() {
        if !res.reached(id) {
            break;
        }
        // Checks one memory operand: the concrete address must be a member
        // of the abstract address set computed for it (⊤ trivially covers).
        let mut check = |m: &Machine, opr: Operand, addr: i64| {
            let Operand::Deref(loc) = opr else { return };
            let abs = res.before(id).eval_addr(loc);
            let (region, off) = m.classify(res.func, addr);
            let covered = match &abs {
                Vsv::Top => true,
                Vsv::Set(map) => map.get(&region).is_some_and(|si| si.contains(off)),
            };
            if !covered {
                diags.push(
                    Diagnostic::error(
                        PassId::VsaSoundness,
                        format!(
                            "concrete address {addr:#x} ({region}+{off:#x}) of operand `{opr}` \
                             escapes its computed value set {abs}"
                        ),
                    )
                    .in_func(res.func)
                    .at(id),
                );
            }
        };
        // One step of the concrete machine, mirroring the VSA transfer.
        let eval = |m: &Machine, o: Operand| -> i64 {
            match o {
                Operand::Imm(c) => c,
                Operand::Loc(loc) => m.loc_addr(loc),
                Operand::Deref(loc) => m.read(m.loc_addr(loc)),
            }
        };
        match &prog.inst(id).kind {
            InstKind::Mov { dst, src } => {
                if let Operand::Deref(loc) = src {
                    check(&m, *src, m.loc_addr(*loc));
                }
                let v = eval(&m, *src);
                match dst {
                    Operand::Deref(loc) => {
                        let a = m.loc_addr(*loc);
                        check(&m, *dst, a);
                        m.mem.insert(a, v);
                    }
                    _ => {
                        if let Some(r) = dst.as_reg() {
                            m.regs[r.index()] = v;
                        }
                    }
                }
            }
            InstKind::Op { op, dst, src } => {
                if let Operand::Deref(loc) = src {
                    check(&m, *src, m.loc_addr(*loc));
                }
                let v = op.apply(eval(&m, *dst), eval(&m, *src));
                match dst {
                    Operand::Deref(loc) => {
                        let a = m.loc_addr(*loc);
                        check(&m, *dst, a);
                        m.mem.insert(a, v);
                    }
                    _ => {
                        if let Some(r) = dst.as_reg() {
                            m.regs[r.index()] = v;
                        }
                    }
                }
            }
            InstKind::Use { oprs } => {
                for o in oprs {
                    if let Operand::Deref(loc) = o {
                        check(&m, *o, m.loc_addr(*loc));
                    }
                }
            }
            InstKind::Push { src } => {
                if let Operand::Deref(loc) = src {
                    check(&m, *src, m.loc_addr(*loc));
                }
                let v = eval(&m, *src);
                let esp = m.regs[Reg::Esp.index()] - 4;
                m.regs[Reg::Esp.index()] = esp;
                m.mem.insert(esp, v);
            }
            InstKind::Pop { dst } => {
                if let Operand::Deref(loc) = dst {
                    // The address convention matches the before-fact (esp
                    // prior to the increment).
                    check(&m, *dst, m.loc_addr(*loc));
                }
                let esp = m.regs[Reg::Esp.index()];
                let v = m.read(esp);
                m.regs[Reg::Esp.index()] = esp + 4;
                match dst {
                    Operand::Deref(loc) => {
                        let a = m.loc_addr(*loc);
                        m.mem.insert(a, v);
                    }
                    _ => {
                        if let Some(r) = dst.as_reg() {
                            m.regs[r.index()] = v;
                        }
                    }
                }
            }
            InstKind::Call { target } => {
                if let tiara_ir::CallTarget::Indirect(o) = target {
                    if let Operand::Deref(loc) = o {
                        check(&m, *o, m.loc_addr(*loc));
                    }
                }
                for (i, r) in Reg::GENERAL.iter().enumerate() {
                    m.regs[r.index()] = FILL + 0x10_000 + (i as i64 + 1) * 0x100;
                }
                if prog.call_allocates(id) {
                    let k = m.sites.len() as i64;
                    m.sites.push(id);
                    m.regs[Reg::Eax.index()] = HEAP0 + k * HEAP_BLOCK;
                }
            }
            InstKind::Ret => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiara_ir::{BinOp, ExternKind, Opcode, ProgramBuilder};

    fn rr(r: Reg) -> Operand {
        Operand::reg(r)
    }

    #[test]
    fn access_below_esp_is_out_of_frame() {
        let mut b = ProgramBuilder::new();
        b.begin_func("red_zone");
        b.inst(
            Opcode::Mov,
            InstKind::Mov { dst: Operand::mem_reg(Reg::Esp, -8), src: Operand::imm(1) },
        );
        b.ret();
        b.end_func();
        let p = b.finish().unwrap();
        let diags = run(&p);
        assert!(
            diags.iter().any(|d| d.pass == PassId::VsaOutOfFrame
                && d.severity == crate::Severity::Error
                && d.message.contains("below the stack pointer")),
            "{diags:?}"
        );
    }

    #[test]
    fn far_above_ceiling_scales_with_the_frame_allocation() {
        // The generator addresses locals at positive ebp offsets, so a slot
        // inside `alloc + ARG_WINDOW` is plausible; one past it warns.
        let build = |off: i64| {
            let mut b = ProgramBuilder::new();
            b.begin_func("deep");
            b.inst(Opcode::Push, InstKind::Push { src: rr(Reg::Ebp) });
            b.inst(Opcode::Mov, InstKind::Mov { dst: rr(Reg::Ebp), src: rr(Reg::Esp) });
            b.inst(
                Opcode::Sub,
                InstKind::Op { op: BinOp::Sub, dst: rr(Reg::Esp), src: Operand::imm(0x40) },
            );
            b.inst(
                Opcode::Mov,
                InstKind::Mov { dst: Operand::mem_reg(Reg::Ebp, off), src: Operand::imm(1) },
            );
            b.inst(
                Opcode::Add,
                InstKind::Op { op: BinOp::Add, dst: rr(Reg::Esp), src: Operand::imm(0x40) },
            );
            b.inst(Opcode::Pop, InstKind::Pop { dst: rr(Reg::Ebp) });
            b.ret();
            b.end_func();
            b.finish().unwrap()
        };
        let far_above = |p: &Program| {
            run(p)
                .into_iter()
                .any(|d| d.pass == PassId::VsaOutOfFrame && d.message.contains("far above"))
        };
        // ebp = Frame[-4]: slot = off - 4. Ceiling is 0x40 + ARG_WINDOW.
        assert!(!far_above(&build(0x40 + ARG_WINDOW)), "inside the allocated frame + window");
        assert!(far_above(&build(0x40 + ARG_WINDOW + 12)), "past the plausible ceiling");
    }

    #[test]
    fn unbalanced_esp_at_ret_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.begin_func("leaky");
        b.inst(Opcode::Push, InstKind::Push { src: rr(Reg::Ebp) });
        b.ret(); // returns with the push still on the stack
        b.end_func();
        let p = b.finish().unwrap();
        let diags = run(&p);
        assert!(
            diags
                .iter()
                .any(|d| d.pass == PassId::VsaEspBalance && d.severity == crate::Severity::Error),
            "{diags:?}"
        );
    }

    #[test]
    fn overlapping_slots_warn() {
        let mut b = ProgramBuilder::new();
        b.begin_func("overlap");
        b.inst(Opcode::Push, InstKind::Push { src: rr(Reg::Ebp) });
        b.inst(Opcode::Mov, InstKind::Mov { dst: rr(Reg::Ebp), src: rr(Reg::Esp) });
        b.inst(
            Opcode::Sub,
            InstKind::Op { op: BinOp::Sub, dst: rr(Reg::Esp), src: Operand::imm(0x10) },
        );
        b.inst(
            Opcode::Mov,
            InstKind::Mov { dst: Operand::mem_reg(Reg::Ebp, -8), src: Operand::imm(1) },
        );
        b.inst(
            Opcode::Mov,
            InstKind::Mov { dst: Operand::mem_reg(Reg::Ebp, -5), src: Operand::imm(2) },
        );
        b.inst(
            Opcode::Add,
            InstKind::Op { op: BinOp::Add, dst: rr(Reg::Esp), src: Operand::imm(0x10) },
        );
        b.inst(Opcode::Pop, InstKind::Pop { dst: rr(Reg::Ebp) });
        b.ret();
        b.end_func();
        let p = b.finish().unwrap();
        let diags = run(&p);
        assert!(
            diags.iter().any(|d| d.pass == PassId::VsaOverlap && d.message.contains("overlap")),
            "{diags:?}"
        );
        assert!(diags.iter().all(|d| d.severity == crate::Severity::Warning));
    }

    #[test]
    fn soundness_oracle_accepts_computed_address_shapes() {
        // lea-base, esp-arithmetic and heap traffic in straight-line
        // functions — the oracle must execute all of them without a miss.
        let mut b = ProgramBuilder::new();
        b.begin_func("lea_shape");
        b.inst(
            Opcode::Sub,
            InstKind::Op { op: BinOp::Sub, dst: rr(Reg::Esp), src: Operand::imm(0x40) },
        );
        b.inst(
            Opcode::Lea,
            InstKind::Mov {
                dst: rr(Reg::Esi),
                src: Operand::Loc(Loc::with_offset(Reg::Esp, 0x10)),
            },
        );
        b.inst(
            Opcode::Mov,
            InstKind::Mov { dst: Operand::mem_reg(Reg::Esi, 4), src: Operand::imm(7) },
        );
        b.inst(
            Opcode::Mov,
            InstKind::Mov { dst: rr(Reg::Eax), src: Operand::mem_reg(Reg::Esi, 4) },
        );
        b.inst(
            Opcode::Add,
            InstKind::Op { op: BinOp::Add, dst: rr(Reg::Esp), src: Operand::imm(0x40) },
        );
        b.ret();
        b.end_func();
        b.begin_func("heap_shape");
        b.inst(Opcode::Push, InstKind::Push { src: Operand::imm(0x20) });
        b.call_extern(ExternKind::Malloc);
        b.inst(
            Opcode::Add,
            InstKind::Op { op: BinOp::Add, dst: rr(Reg::Esp), src: Operand::imm(4) },
        );
        b.inst(
            Opcode::Mov,
            InstKind::Mov { dst: Operand::mem_reg(Reg::Eax, 8), src: Operand::imm(3) },
        );
        b.ret();
        b.end_func();
        let p = b.finish().unwrap();
        let diags = run(&p);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn soundness_oracle_skips_branching_functions() {
        let mut b = ProgramBuilder::new();
        b.begin_func("branchy");
        let l = b.new_label();
        b.inst(
            Opcode::Sub,
            InstKind::Op { op: BinOp::Sub, dst: rr(Reg::Ecx), src: Operand::imm(1) },
        );
        b.jump(Opcode::Jne, l);
        b.bind_label(l);
        b.ret();
        b.end_func();
        let p = b.finish().unwrap();
        assert!(run(&p).is_empty());
    }
}
