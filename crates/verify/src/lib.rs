//! # tiara-verify
//!
//! A multi-pass static-analysis verifier for [`tiara_ir`] programs, plus
//! slice-soundness oracles for the TSLICE/SSLICE slicers.
//!
//! TSLICE's correctness silently depends on invariants nobody else checks:
//! the synthetic generator must emit well-formed CFGs, stack traffic must
//! balance for the stack map `S` to be meaningful, and every TSLICE output
//! must be a connected sub-CFG contained in its SSLICE counterpart. This
//! crate makes those invariants machine-checkable so generator and slicer
//! regressions are caught before they poison training data.
//!
//! ## Passes
//!
//! | pass | checks |
//! |------|--------|
//! | `cfg` | edges target live instructions, call/return edges pair up, function table tiles the program, jump targets are marked, every function entry is reachable |
//! | `stack-balance` | push/pop depth balances on every path through a function |
//! | `def-before-use` | no register is read before it is defined on every path |
//! | `heap-discipline` | malloc results are not freed twice, used after free, or trivially leaked |
//! | `frame-mode` | no `ebp`-relative accesses inside frame-pointer-omitted functions |
//! | `dead-store` | no frame-slot store is overwritten on every path before being read |
//! | `unreachable-code` | no instruction is dead under conditional constant propagation |
//! | `uninit-stack-read` | no local slot is read before any path initializes it |
//! | `const-condition` | no conditional branch is decided by compile-time-constant flags |
//! | `escaped-slot-never-read` | no frame slot escapes its function without the function ever reading it |
//! | `callee-clobbers-live-caller-reg` | no register live across a direct call sits in the callee's transitive clobber set |
//! | `dead-argument` | no call site pushes an argument its callee provably ignores |
//! | `mod-ref-violation` | the escape/mod-ref summaries absorb independently re-derived per-instruction effects and call-edge flows |
//! | `vsa-out-of-frame` | no provable frame-slot access lands below the stack pointer or implausibly far above the frame (VSA-based) |
//! | `vsa-esp-balance` | `esp` provably sits at the return-address slot at every `ret` (VSA-based) |
//! | `vsa-overlap` | no two provable frame-slot accesses overlap within one machine word (VSA-based) |
//! | `vsa-soundness` | concrete execution of every straight-line function stays inside the VSA value sets (oracle for the analysis itself) |
//! | `slice-oracle` | TSLICE outputs are connected sub-CFGs, trace faith is monotone, TSLICE ⊆ SSLICE, kill rules agree with reaching definitions |
//!
//! The `dead-store` through `const-condition` passes are built on the
//! fixpoint dataflow engine in [`tiara_dataflow`] (liveness, reaching
//! definitions, conditional constant propagation) rather than the ad-hoc
//! walks of the earlier passes; the four passes after them consume the
//! bottom-up inter-procedural summaries of [`tiara_dataflow`]'s `escape`
//! module — see `DESIGN.md`, "Dataflow substrate" and "Inter-procedural
//! analysis".
//!
//! ## Example
//!
//! ```
//! use tiara_ir::{InstKind, Opcode, Operand, ProgramBuilder, Reg};
//!
//! let mut b = ProgramBuilder::new();
//! b.begin_func("f");
//! b.inst(Opcode::Push, InstKind::Push { src: Operand::reg(Reg::Ebp) });
//! b.ret(); // returns with one word still pushed
//! b.end_func();
//! let prog = b.finish().unwrap();
//!
//! let report = tiara_verify::verify(&prog);
//! assert!(report.has_errors());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cfg;
mod constcond;
mod deadstore;
mod defuse;
mod frame;
mod heap;
mod interproc;
mod oracle;
mod stack;
mod uninit;
mod unreachable;
mod vsa;

pub use oracle::{
    check_slice, check_trace_monotone, check_tslice_in_sslice, verify_slices, verify_slices_with,
};

use tiara_ir::{FuncId, InstId, Program, VarAddr};

/// Identifies the verifier pass that produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PassId {
    /// CFG well-formedness.
    Cfg,
    /// Per-function stack-balance analysis.
    StackBalance,
    /// Def-before-use register analysis.
    DefBeforeUse,
    /// Heap-discipline type-state check.
    HeapDiscipline,
    /// Frame-mode consistency.
    FrameMode,
    /// Dead frame-slot stores (dataflow-based).
    DeadStore,
    /// Code unreachable under constant propagation (dataflow-based).
    UnreachableCode,
    /// Local stack slots read before initialization (dataflow-based).
    UninitStackRead,
    /// Conditional branches with compile-time-constant outcome (dataflow-based).
    ConstCondition,
    /// Escaped frame slots the owning function never reads (summary-based).
    EscapedSlotNeverRead,
    /// Caller registers live across a call the callee may clobber
    /// (summary-based).
    CalleeClobbersLiveReg,
    /// Pushed call arguments the callee provably ignores (summary-based).
    DeadArgument,
    /// Mod-ref summary self-check: per-instruction effects and call-edge
    /// monotonicity re-derived independently must be absorbed by the stored
    /// summaries.
    ModRefViolation,
    /// Provable frame-slot accesses outside the live frame (VSA-based).
    VsaOutOfFrame,
    /// `esp` not provably at the return-address slot at a `ret` (VSA-based).
    VsaEspBalance,
    /// Provable frame-slot accesses that overlap within one word (VSA-based).
    VsaOverlap,
    /// Concrete-execution soundness oracle for the VSA value sets.
    VsaSoundness,
    /// Slice-soundness oracle.
    SliceOracle,
}

impl PassId {
    /// Stable, kebab-case pass name used in human and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            PassId::Cfg => "cfg",
            PassId::StackBalance => "stack-balance",
            PassId::DefBeforeUse => "def-before-use",
            PassId::HeapDiscipline => "heap-discipline",
            PassId::FrameMode => "frame-mode",
            PassId::DeadStore => "dead-store",
            PassId::UnreachableCode => "unreachable-code",
            PassId::UninitStackRead => "uninit-stack-read",
            PassId::ConstCondition => "const-condition",
            PassId::EscapedSlotNeverRead => "escaped-slot-never-read",
            PassId::CalleeClobbersLiveReg => "callee-clobbers-live-caller-reg",
            PassId::DeadArgument => "dead-argument",
            PassId::ModRefViolation => "mod-ref-violation",
            PassId::VsaOutOfFrame => "vsa-out-of-frame",
            PassId::VsaEspBalance => "vsa-esp-balance",
            PassId::VsaOverlap => "vsa-overlap",
            PassId::VsaSoundness => "vsa-soundness",
            PassId::SliceOracle => "slice-oracle",
        }
    }
}

/// How severe a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but not necessarily wrong (e.g. an unreachable function).
    Warning,
    /// A violated invariant: the program or slice is malformed.
    Error,
}

impl Severity {
    /// `"warning"` or `"error"`.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One finding of a verifier pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The pass that found it.
    pub pass: PassId,
    /// Error or warning.
    pub severity: Severity,
    /// The function it is located in, if any.
    pub func: Option<FuncId>,
    /// The instruction it is located at, if any.
    pub inst: Option<InstId>,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// Creates an error diagnostic with no location.
    pub fn error(pass: PassId, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            pass,
            severity: Severity::Error,
            func: None,
            inst: None,
            message: message.into(),
        }
    }

    /// Creates a warning diagnostic with no location.
    pub fn warning(pass: PassId, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            pass,
            severity: Severity::Warning,
            func: None,
            inst: None,
            message: message.into(),
        }
    }

    /// Attaches a function location.
    pub fn in_func(mut self, func: FuncId) -> Diagnostic {
        self.func = Some(func);
        self
    }

    /// Attaches an instruction location.
    pub fn at(mut self, inst: InstId) -> Diagnostic {
        self.inst = Some(inst);
        self
    }
}

/// The result of running the verifier: every diagnostic found, in pass order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// All diagnostics, grouped by pass in the order the passes ran.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Number of error-severity diagnostics.
    pub fn num_errors(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error).count()
    }

    /// Number of warning-severity diagnostics.
    pub fn num_warnings(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Warning).count()
    }

    /// `true` if any error was found.
    pub fn has_errors(&self) -> bool {
        self.num_errors() > 0
    }

    /// `true` if nothing at all was found.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Renders the report as human-readable text, one diagnostic per line,
    /// resolving function names and instruction addresses against `prog`.
    pub fn render_human(&self, prog: &Program) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(d.severity.name());
            out.push('[');
            out.push_str(d.pass.name());
            out.push(']');
            if let Some(f) = d.func {
                if f.index() < prog.funcs().len() {
                    out.push_str(&format!(" {}", prog.func(f).name));
                } else {
                    out.push_str(&format!(" <func {}>", f.index()));
                }
            }
            if let Some(i) = d.inst {
                if i.index() < prog.num_insts() {
                    out.push_str(&format!(" @ {:#010x}", prog.inst(i).addr));
                } else {
                    out.push_str(&format!(" @ inst {}", i.index()));
                }
            }
            out.push_str(": ");
            out.push_str(&d.message);
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s)\n",
            self.num_errors(),
            self.num_warnings()
        ));
        out
    }

    /// Renders the report as a JSON object (no external dependencies — the
    /// output is plain, escaped JSON suitable for machine consumption).
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"errors\":{},\"warnings\":{},\"diagnostics\":[",
            self.num_errors(),
            self.num_warnings()
        ));
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"pass\":\"{}\",\"severity\":\"{}\",",
                d.pass.name(),
                d.severity.name()
            ));
            match d.func {
                Some(f) => out.push_str(&format!("\"func\":{},", f.index())),
                None => out.push_str("\"func\":null,"),
            }
            match d.inst {
                Some(i) => out.push_str(&format!("\"inst\":{},", i.index())),
                None => out.push_str("\"inst\":null,"),
            }
            out.push_str(&format!("\"message\":\"{}\"}}", escape_json(&d.message)));
        }
        out.push_str("]}");
        out
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Runs the static passes over a program.
///
/// If the CFG pass finds structural errors the remaining passes are skipped:
/// they assume a sane instruction/function layout and would either panic or
/// produce noise on a malformed program.
pub fn verify(prog: &Program) -> Report {
    let mut diagnostics = cfg::run(prog);
    let structural = diagnostics.iter().any(|d| d.severity == Severity::Error);
    if !structural {
        diagnostics.extend(stack::run(prog));
        diagnostics.extend(defuse::run(prog));
        diagnostics.extend(heap::run(prog));
        diagnostics.extend(frame::run(prog));
        diagnostics.extend(deadstore::run(prog));
        diagnostics.extend(unreachable::run(prog));
        diagnostics.extend(uninit::run(prog));
        diagnostics.extend(constcond::run(prog));
        diagnostics.extend(interproc::run(prog));
        diagnostics.extend(vsa::run(prog));
    }
    Report { diagnostics }
}

/// Runs the static passes, then the slice-soundness oracle for each
/// criterion in `criteria` (skipped when the static passes already found
/// errors — slicing a malformed program proves nothing).
pub fn verify_with_slices(prog: &Program, criteria: &[VarAddr]) -> Report {
    let mut report = verify(prog);
    if !report.has_errors() {
        report.diagnostics.extend(oracle::verify_slices(prog, criteria));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiara_ir::{InstKind, Opcode, Operand, ProgramBuilder, Reg};

    fn balanced_func(b: &mut ProgramBuilder, name: &str) {
        b.begin_func(name);
        b.inst(Opcode::Push, InstKind::Push { src: Operand::reg(Reg::Ebp) });
        b.inst(
            Opcode::Mov,
            InstKind::Mov { dst: Operand::reg(Reg::Ebp), src: Operand::reg(Reg::Esp) },
        );
        b.inst(
            Opcode::Mov,
            InstKind::Mov { dst: Operand::reg(Reg::Esp), src: Operand::reg(Reg::Ebp) },
        );
        b.inst(Opcode::Pop, InstKind::Pop { dst: Operand::reg(Reg::Ebp) });
        b.ret();
        b.end_func();
    }

    #[test]
    fn clean_program_produces_clean_report() {
        let mut b = ProgramBuilder::new();
        balanced_func(&mut b, "main");
        let p = b.finish().unwrap();
        let report = verify(&p);
        assert!(report.is_clean(), "{}", report.render_human(&p));
    }

    #[test]
    fn report_renders_both_formats() {
        let mut b = ProgramBuilder::new();
        b.begin_func("bad");
        b.inst(Opcode::Push, InstKind::Push { src: Operand::reg(Reg::Eax) });
        b.ret();
        b.end_func();
        let p = b.finish().unwrap();
        let report = verify(&p);
        assert!(report.has_errors());
        let human = report.render_human(&p);
        assert!(human.contains("error[stack-balance]"));
        assert!(human.contains("bad"));
        let json = report.render_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"pass\":\"stack-balance\""));
        assert!(json.contains("\"severity\":\"error\""));
    }

    #[test]
    fn json_escaping_handles_quotes_and_controls() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
