//! Frame-mode consistency.
//!
//! [`tiara_ir::detect_frame_mode`] classifies every function as
//! frame-pointer, frame-pointer-omitted (`/Oy`), or unknown. In an omitted
//! function `ebp` holds no frame, so an `ebp`-relative memory access (a
//! dereference through `ebp`, or taking the address `ebp + offset`) is
//! either a generator bug or a misclassification — both poison TSLICE's
//! frame tracking, which strongly trusts `fp`.

use crate::{Diagnostic, PassId};
use tiara_ir::{detect_frame_mode, FrameMode, Operand, Program, Reg};

pub(crate) fn run(prog: &Program) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for f in prog.funcs() {
        if detect_frame_mode(prog, f.id) != FrameMode::Omitted {
            continue;
        }
        'insts: for id in f.inst_ids() {
            for o in prog.inst(id).kind.operands() {
                let frame_relative = match o {
                    Operand::Deref(loc) => loc.base_reg() == Some(Reg::Ebp),
                    Operand::Loc(loc) => loc.base_reg() == Some(Reg::Ebp) && loc.offset != 0,
                    Operand::Imm(_) => false,
                };
                if frame_relative {
                    diags.push(
                        Diagnostic::error(
                            PassId::FrameMode,
                            format!(
                                "ebp-relative access inside frame-pointer-omitted function `{}`",
                                f.name
                            ),
                        )
                        .in_func(f.id)
                        .at(id),
                    );
                    // One finding per function is enough to flag it.
                    break 'insts;
                }
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiara_ir::{BinOp, InstKind, Opcode, ProgramBuilder};

    #[test]
    fn fpo_function_with_ebp_access_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.begin_func("fpo");
        b.inst(
            Opcode::Sub,
            InstKind::Op { op: BinOp::Sub, dst: Operand::reg(Reg::Esp), src: Operand::imm(0x10) },
        );
        b.inst(
            Opcode::Mov,
            InstKind::Mov {
                dst: Operand::reg(Reg::Eax),
                src: Operand::mem_reg(Reg::Ebp, 8), // bug: no ebp frame exists
            },
        );
        b.inst(
            Opcode::Add,
            InstKind::Op { op: BinOp::Add, dst: Operand::reg(Reg::Esp), src: Operand::imm(0x10) },
        );
        b.ret();
        b.end_func();
        let p = b.finish().unwrap();
        let diags = run(&p);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("fpo"));
    }

    #[test]
    fn fpo_function_with_esp_accesses_is_clean() {
        let mut b = ProgramBuilder::new();
        b.begin_func("fpo");
        b.inst(
            Opcode::Sub,
            InstKind::Op { op: BinOp::Sub, dst: Operand::reg(Reg::Esp), src: Operand::imm(0x10) },
        );
        b.inst(
            Opcode::Mov,
            InstKind::Mov { dst: Operand::reg(Reg::Eax), src: Operand::mem_reg(Reg::Esp, 4) },
        );
        b.inst(
            Opcode::Add,
            InstKind::Op { op: BinOp::Add, dst: Operand::reg(Reg::Esp), src: Operand::imm(0x10) },
        );
        b.ret();
        b.end_func();
        let p = b.finish().unwrap();
        assert!(run(&p).is_empty());
    }

    #[test]
    fn framed_function_may_use_ebp_freely() {
        let mut b = ProgramBuilder::new();
        b.begin_func("framed");
        b.inst(Opcode::Push, InstKind::Push { src: Operand::reg(Reg::Ebp) });
        b.inst(
            Opcode::Mov,
            InstKind::Mov { dst: Operand::reg(Reg::Ebp), src: Operand::reg(Reg::Esp) },
        );
        b.inst(
            Opcode::Mov,
            InstKind::Mov { dst: Operand::reg(Reg::Eax), src: Operand::mem_reg(Reg::Ebp, 8) },
        );
        b.inst(
            Opcode::Mov,
            InstKind::Mov { dst: Operand::reg(Reg::Esp), src: Operand::reg(Reg::Ebp) },
        );
        b.inst(Opcode::Pop, InstKind::Pop { dst: Operand::reg(Reg::Ebp) });
        b.ret();
        b.end_func();
        let p = b.finish().unwrap();
        assert!(run(&p).is_empty());
    }
}
