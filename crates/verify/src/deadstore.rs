//! Dead-store pass: frame-slot stores that are provably clobbered.
//!
//! A store to `[ebp+c]` is reported when **every** path from the store
//! reaches another store to the same slot before any instruction that could
//! read it — where "read it" includes any `call` (the callee is outside the
//! model) and the function exit (a trailing store dies with the frame, which
//! is normal codegen). That is a must-overwrite property, deliberately
//! stricter than "never read again": a store that is always clobbered within
//! its own call-free window can never matter and indicates a lost update in
//! the emitter.
//!
//! Implemented as a backward may-analysis over the function's frame slots:
//! the fact at a point is the set of slots that, on *some* path onward, are
//! read before being overwritten or survive to the exit un-overwritten.
//! A store to `c` with `c` absent from that set is definitely clobbered.
//!
//! Functions whose frame address escapes — any `lea`-style operand
//! `ebp + c` with `c ≠ 0`, which is the only way this IR materializes a
//! slot's address — are skipped wholesale: once the address escapes, loads
//! through general registers and callees may read any slot.

use crate::{Diagnostic, PassId};
use std::collections::BTreeSet;
use tiara_dataflow::solver::{solve, Direction, Lattice, Transfer};
use tiara_ir::{FuncId, InstId, InstKind, Operand, Program, Reg};

/// A set of `ebp` offsets.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct SlotSet(BTreeSet<i64>);

impl Lattice for SlotSet {
    fn join(&mut self, other: &Self) -> bool {
        let before = self.0.len();
        self.0.extend(other.0.iter().copied());
        self.0.len() != before
    }
}

/// The frame slot a memory operand addresses, if it is an `ebp` slot.
fn slot_of(o: Operand) -> Option<i64> {
    match o {
        Operand::Deref(loc) if loc.base_reg() == Some(Reg::Ebp) => Some(loc.offset),
        _ => None,
    }
}

/// `true` if the operand materializes a frame-slot *address* (`lea`-style
/// `ebp + c`, `c ≠ 0`) — the only way a slot address can escape.
fn escapes_frame(o: Operand) -> bool {
    matches!(o, Operand::Loc(loc) if loc.base_reg() == Some(Reg::Ebp) && loc.offset != 0)
}

fn operands(kind: &InstKind) -> Vec<Operand> {
    match kind {
        InstKind::Mov { dst, src } | InstKind::Op { dst, src, .. } => vec![*dst, *src],
        InstKind::Use { oprs } => oprs.clone(),
        InstKind::Push { src } => vec![*src],
        InstKind::Pop { dst } => vec![*dst],
        InstKind::Call { .. } | InstKind::Ret => Vec::new(),
    }
}

/// The backward "may be read before overwritten (or escape to the exit)"
/// analysis.
struct SlotObservers {
    universe: SlotSet,
}

impl Transfer for SlotObservers {
    type Fact = SlotSet;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn bottom(&self) -> SlotSet {
        SlotSet::default()
    }

    fn boundary(&self) -> SlotSet {
        // At the exit every slot counts as observed: a trailing store is
        // not a dead store.
        self.universe.clone()
    }

    fn apply(&self, prog: &Program, id: InstId, fact: &mut SlotSet) {
        match &prog.inst(id).kind {
            InstKind::Mov { dst, src } => {
                if let Some(c) = slot_of(*dst) {
                    fact.0.remove(&c); // pure overwrite
                }
                if let Some(c) = slot_of(*src) {
                    fact.0.insert(c);
                }
            }
            InstKind::Op { dst, src, .. } => {
                // A read-modify-write observes the slot before rewriting it.
                if let Some(c) = slot_of(*dst) {
                    fact.0.insert(c);
                }
                if let Some(c) = slot_of(*src) {
                    fact.0.insert(c);
                }
            }
            InstKind::Use { oprs } => {
                for o in oprs {
                    if let Some(c) = slot_of(*o) {
                        fact.0.insert(c);
                    }
                }
            }
            InstKind::Push { src } => {
                if let Some(c) = slot_of(*src) {
                    fact.0.insert(c);
                }
            }
            InstKind::Pop { dst } => {
                if let Some(c) = slot_of(*dst) {
                    fact.0.remove(&c);
                }
            }
            // A call is an observation horizon: the IR does not model what
            // the callee reads, and real codegen keeps frame stores live
            // across calls. Treat every slot as observed at the call.
            InstKind::Call { .. } => {
                fact.0.extend(self.universe.0.iter().copied());
            }
            InstKind::Ret => {}
        }
    }
}

fn run_func(prog: &Program, func: FuncId, diags: &mut Vec<Diagnostic>) {
    let f = prog.func(func);
    let mut universe = SlotSet::default();
    for id in f.inst_ids() {
        for o in operands(&prog.inst(id).kind) {
            if escapes_frame(o) {
                return; // address escapes: every slot may be read anywhere
            }
            if let Some(c) = slot_of(o) {
                universe.0.insert(c);
            }
        }
    }
    if universe.0.is_empty() {
        return;
    }

    let sol = solve(prog, func, &SlotObservers { universe });
    for id in f.inst_ids() {
        if !sol.reached(id) {
            continue;
        }
        let store = match &prog.inst(id).kind {
            InstKind::Mov { dst, .. } => slot_of(*dst),
            InstKind::Pop { dst } => slot_of(*dst),
            _ => None,
        };
        if let Some(c) = store {
            // `after` in program order is the fact downstream of the store.
            if !sol.after(id).0.contains(&c) {
                diags.push(
                    Diagnostic::warning(
                        PassId::DeadStore,
                        format!(
                            "store to [ebp{c:+#x}] is overwritten on every path \
                             before being read"
                        ),
                    )
                    .in_func(func)
                    .at(id),
                );
            }
        }
    }
}

/// Runs the dead-store pass over every function.
pub fn run(prog: &Program) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for f in prog.funcs() {
        run_func(prog, f.id, &mut diags);
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiara_ir::{Opcode, Operand, ProgramBuilder};

    fn slot(c: i64) -> Operand {
        Operand::mem_reg(Reg::Ebp, c)
    }

    #[test]
    fn clobbered_store_is_flagged() {
        // mov [ebp-8], 1; mov [ebp-8], 2; mov eax, [ebp-8]
        let mut b = ProgramBuilder::new();
        b.begin_func("f");
        b.inst(Opcode::Mov, InstKind::Mov { dst: slot(-8), src: Operand::imm(1) });
        b.inst(Opcode::Mov, InstKind::Mov { dst: slot(-8), src: Operand::imm(2) });
        b.inst(Opcode::Mov, InstKind::Mov { dst: Operand::reg(Reg::Eax), src: slot(-8) });
        b.ret();
        b.end_func();
        let p = b.finish().unwrap();
        let diags = run(&p);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].inst, Some(InstId(0)));
    }

    #[test]
    fn trailing_store_and_read_before_overwrite_are_clean() {
        // mov [ebp-8], 1; mov eax, [ebp-8]; mov [ebp-8], 2; ret — the first
        // store is read, the second dies with the frame: both fine.
        let mut b = ProgramBuilder::new();
        b.begin_func("f");
        b.inst(Opcode::Mov, InstKind::Mov { dst: slot(-8), src: Operand::imm(1) });
        b.inst(Opcode::Mov, InstKind::Mov { dst: Operand::reg(Reg::Eax), src: slot(-8) });
        b.inst(Opcode::Mov, InstKind::Mov { dst: slot(-8), src: Operand::imm(2) });
        b.ret();
        b.end_func();
        let p = b.finish().unwrap();
        assert!(run(&p).is_empty());
    }

    #[test]
    fn one_reading_path_saves_the_store() {
        // The slot is read on the fall-through arm only; a may-read on some
        // path means the store is not definitely clobbered.
        let mut b = ProgramBuilder::new();
        b.begin_func("f");
        let l = b.new_label();
        b.inst(Opcode::Mov, InstKind::Mov { dst: slot(-4), src: Operand::imm(1) });
        b.inst(Opcode::Cmp, InstKind::Use { oprs: vec![slot(-12), Operand::imm(0)] });
        b.jump(Opcode::Je, l);
        b.inst(Opcode::Mov, InstKind::Mov { dst: Operand::reg(Reg::Ecx), src: slot(-4) });
        b.bind_label(l);
        b.inst(Opcode::Mov, InstKind::Mov { dst: slot(-4), src: Operand::imm(2) });
        b.ret();
        b.end_func();
        let p = b.finish().unwrap();
        assert!(run(&p).is_empty(), "{:?}", run(&p));
    }

    #[test]
    fn an_intervening_call_saves_the_store() {
        // mov [ebp-8], 1; call g; mov [ebp-8], 2; ret — the callee is an
        // observation horizon, so the first store is not reported.
        let mut b = ProgramBuilder::new();
        b.begin_func("g");
        b.ret();
        b.end_func();
        b.begin_func("f");
        b.inst(Opcode::Mov, InstKind::Mov { dst: slot(-8), src: Operand::imm(1) });
        b.call_named("g");
        b.inst(Opcode::Mov, InstKind::Mov { dst: slot(-8), src: Operand::imm(2) });
        b.ret();
        b.end_func();
        b.set_entry("f");
        let p = b.finish().unwrap();
        assert!(run(&p).is_empty(), "{:?}", run(&p));
    }

    #[test]
    fn frame_escape_disables_the_function() {
        // lea esi, [ebp-8] escapes the frame; the clobbered store pattern
        // must not be flagged anymore.
        let mut b = ProgramBuilder::new();
        b.begin_func("f");
        b.inst(
            Opcode::Lea,
            InstKind::Mov {
                dst: Operand::reg(Reg::Esi),
                src: Operand::Loc(tiara_ir::Loc::with_offset(Reg::Ebp, -8)),
            },
        );
        b.inst(Opcode::Mov, InstKind::Mov { dst: slot(-8), src: Operand::imm(1) });
        b.inst(Opcode::Mov, InstKind::Mov { dst: slot(-8), src: Operand::imm(2) });
        b.ret();
        b.end_func();
        let p = b.finish().unwrap();
        assert!(run(&p).is_empty());
    }
}
