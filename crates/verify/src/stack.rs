//! Per-function stack-balance analysis.
//!
//! TSLICE's stack map `S` keys abstract stack slots off the depth of `esp`
//! relative to the function entry, so unbalanced push/pop traffic silently
//! corrupts slices. This pass runs a forward worklist over the
//! intra-procedural flow relation tracking the byte depth pushed since the
//! function entry, and reports:
//!
//! * a `ret` reached at non-zero depth (unbalanced push/pop),
//! * a `pop` below the entry depth (stack underflow),
//! * two paths meeting at one instruction with different depths.
//!
//! The analysis cuts at indirect calls (the generator uses them for noreturn
//! error paths such as `_Xlength_error`, so the fall-through may be dead)
//! and at any write to `esp` it cannot model.

use crate::{Diagnostic, PassId};
use std::collections::HashMap;
use tiara_ir::{BinOp, CallTarget, InstKind, Operand, Program, Reg};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct St {
    /// Bytes pushed since function entry.
    depth: i64,
    /// Depth captured by `mov ebp, esp`, restored by `mov esp, ebp`.
    captured: Option<i64>,
}

pub(crate) fn run(prog: &Program) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for f in prog.funcs() {
        let mut states: HashMap<u32, St> = HashMap::new();
        let mut work = vec![(f.entry(), St { depth: 0, captured: None })];
        let mut merge_reported = false;

        while let Some((id, st)) = work.pop() {
            match states.get(&id.0) {
                Some(prev) => {
                    if *prev != st && !merge_reported {
                        diags.push(
                            Diagnostic::error(
                                PassId::StackBalance,
                                format!(
                                    "paths meet with different stack depths ({} vs {})",
                                    prev.depth, st.depth
                                ),
                            )
                            .in_func(f.id)
                            .at(id),
                        );
                        merge_reported = true;
                    }
                    continue;
                }
                None => {
                    states.insert(id.0, st);
                }
            }

            let inst = prog.inst(id);
            let mut st = st;
            match &inst.kind {
                InstKind::Push { .. } => st.depth += 4,
                InstKind::Pop { .. } => {
                    st.depth -= 4;
                    if st.depth < 0 {
                        diags.push(
                            Diagnostic::error(
                                PassId::StackBalance,
                                "pop below the function entry depth".to_string(),
                            )
                            .in_func(f.id)
                            .at(id),
                        );
                        continue;
                    }
                }
                InstKind::Op { op, dst, src } if dst.as_reg() == Some(Reg::Esp) => {
                    match (op, src) {
                        (BinOp::Sub, Operand::Imm(k)) => st.depth += *k,
                        (BinOp::Add, Operand::Imm(k)) => st.depth -= *k,
                        // Any other arithmetic on esp is beyond the model.
                        _ => continue,
                    }
                }
                InstKind::Mov { dst, src }
                    if dst.as_reg() == Some(Reg::Ebp) && src.as_reg() == Some(Reg::Esp) =>
                {
                    st.captured = Some(st.depth);
                }
                InstKind::Mov { dst, src }
                    if dst.as_reg() == Some(Reg::Esp) && src.as_reg() == Some(Reg::Ebp) =>
                {
                    match st.captured {
                        Some(d) => st.depth = d,
                        // Restoring esp from an uncaptured ebp: cut.
                        None => continue,
                    }
                }
                InstKind::Mov { dst, .. } if dst.as_reg() == Some(Reg::Esp) => {
                    // Unknown esp write: cut.
                    continue;
                }
                InstKind::Call { target: CallTarget::Indirect(_) } => {
                    // May be a noreturn error path; the fall-through can be
                    // dead, so do not constrain it.
                    continue;
                }
                InstKind::Call { .. } => {
                    // cdecl: the callee pops only the return address; args
                    // are cleaned by the caller after the call.
                }
                InstKind::Ret => {
                    if st.depth != 0 {
                        diags.push(
                            Diagnostic::error(
                                PassId::StackBalance,
                                format!("returns with unbalanced stack (depth {})", st.depth),
                            )
                            .in_func(f.id)
                            .at(id),
                        );
                    }
                    continue;
                }
                _ => {}
            }

            for &s in prog.flow_succs(id) {
                if f.contains(s) {
                    work.push((s, st));
                }
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;
    use tiara_ir::{Opcode, ProgramBuilder};

    fn push(b: &mut ProgramBuilder, r: Reg) {
        b.inst(Opcode::Push, InstKind::Push { src: Operand::reg(r) });
    }

    fn pop(b: &mut ProgramBuilder, r: Reg) {
        b.inst(Opcode::Pop, InstKind::Pop { dst: Operand::reg(r) });
    }

    #[test]
    fn prologue_epilogue_balances() {
        let mut b = ProgramBuilder::new();
        b.begin_func("f");
        push(&mut b, Reg::Ebp);
        b.inst(
            Opcode::Mov,
            InstKind::Mov { dst: Operand::reg(Reg::Ebp), src: Operand::reg(Reg::Esp) },
        );
        b.inst(
            Opcode::Sub,
            InstKind::Op { op: BinOp::Sub, dst: Operand::reg(Reg::Esp), src: Operand::imm(0x20) },
        );
        push(&mut b, Reg::Esi);
        pop(&mut b, Reg::Esi);
        // `leave`-style epilogue: esp restored from ebp, then pop.
        b.inst(
            Opcode::Leave,
            InstKind::Mov { dst: Operand::reg(Reg::Esp), src: Operand::reg(Reg::Ebp) },
        );
        pop(&mut b, Reg::Ebp);
        b.ret();
        b.end_func();
        let p = b.finish().unwrap();
        assert!(run(&p).is_empty());
    }

    #[test]
    fn unbalanced_push_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.begin_func("f");
        push(&mut b, Reg::Ebp);
        b.ret();
        b.end_func();
        let p = b.finish().unwrap();
        let diags = run(&p);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Error);
        assert!(diags[0].message.contains("unbalanced"));
    }

    #[test]
    fn underflow_pop_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.begin_func("f");
        pop(&mut b, Reg::Eax);
        b.ret();
        b.end_func();
        let p = b.finish().unwrap();
        let diags = run(&p);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("below the function entry"));
    }

    #[test]
    fn depth_mismatch_at_join_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.begin_func("f");
        let merge = b.new_label();
        b.inst(Opcode::Cmp, InstKind::Use { oprs: vec![Operand::imm(1), Operand::imm(2)] });
        b.jump(Opcode::Je, merge);
        push(&mut b, Reg::Eax); // fall path arrives 4 bytes deeper
        b.bind_label(merge);
        b.ret();
        b.end_func();
        let p = b.finish().unwrap();
        let diags = run(&p);
        assert!(diags.iter().any(|d| d.message.contains("different stack depths")));
    }

    #[test]
    fn noreturn_indirect_call_path_is_cut() {
        // The generator's `_Xlength_error` idiom: a pushed argument is never
        // cleaned because the indirect call does not return. The balanced
        // path and the dead fall-through meet without a diagnostic.
        let mut b = ProgramBuilder::new();
        b.begin_func("f");
        let ok = b.new_label();
        b.inst(Opcode::Cmp, InstKind::Use { oprs: vec![Operand::imm(1), Operand::imm(2)] });
        b.jump(Opcode::Jb, ok);
        push(&mut b, Reg::Eax);
        b.call_indirect(Operand::mem_abs(0x73034u64, 0));
        b.bind_label(ok);
        b.ret();
        b.end_func();
        let p = b.finish().unwrap();
        assert!(run(&p).is_empty());
    }
}
