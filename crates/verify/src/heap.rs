//! Heap-discipline type-state check.
//!
//! Tracks allocation "tokens" — the `eax` results of calls that allocate
//! (`malloc`/`realloc` externs and generated allocator helpers such as
//! `_List_buynode`) — through register moves along straight-line code, and
//! reports:
//!
//! * **double free** (error): a token passed to `free` twice,
//! * **use after free** (error): a dereference through a freed token,
//! * **leak** (warning): the sole register holding a token that never
//!   escaped to memory and was never dereferenced is overwritten.
//!
//! The analysis is deliberately straight-line: all state is dropped at every
//! join point (jump/call target) and after unconditional jumps, so it never
//! has to reason about merges — which keeps it free of false positives on
//! the generator's output, where allocation and escape happen inside one
//! basic block. The cdecl argument of a `free` call is recovered as the
//! nearest preceding `push` of a plain register.

use crate::{Diagnostic, PassId};
use tiara_ir::{FuncId, InstKind, Opcode, Program, Reg};

#[derive(Debug, Clone, Copy)]
struct Token {
    freed: bool,
    escaped: bool,
    used: bool,
}

#[derive(Debug, Default)]
struct State {
    tokens: Vec<Token>,
    /// Register → token index.
    regs: [Option<usize>; 8],
    /// Pending cdecl argument pushes (token index if a token was pushed).
    pushes: Vec<Option<usize>>,
}

impl State {
    fn reset(&mut self) {
        self.tokens.clear();
        self.regs = [None; 8];
        self.pushes.clear();
    }

    /// Leak check before the binding of `r` is destroyed.
    fn overwrite(
        &mut self,
        r: Reg,
        diags: &mut Vec<Diagnostic>,
        func: FuncId,
        at: tiara_ir::InstId,
    ) {
        if let Some(t) = self.regs[r.index()] {
            let tok = self.tokens[t];
            let sole = self.regs.iter().filter(|b| **b == Some(t)).count() == 1
                && !self.pushes.contains(&Some(t));
            if sole && !tok.freed && !tok.escaped && !tok.used {
                diags.push(
                    Diagnostic::warning(
                        PassId::HeapDiscipline,
                        format!("allocation leaked: sole pointer in {r} overwritten unused"),
                    )
                    .in_func(func)
                    .at(at),
                );
            }
        }
        self.regs[r.index()] = None;
    }
}

pub(crate) fn run(prog: &Program) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for f in prog.funcs() {
        let mut st = State::default();
        for id in f.inst_ids() {
            // Joins invalidate everything: state from one straight-line
            // window must not leak into a merge of several paths.
            if prog.is_call_jump_target(id) {
                st.reset();
            }
            let inst = prog.inst(id);

            // Dereferences through tracked registers: use-after-free check,
            // and mark the token as used.
            for o in inst.kind.operands() {
                if let Some((r, _)) = o.deref_reg() {
                    if let Some(t) = st.regs[r.index()] {
                        if st.tokens[t].freed {
                            diags.push(
                                Diagnostic::error(
                                    PassId::HeapDiscipline,
                                    format!("use after free: dereference through {r}"),
                                )
                                .in_func(f.id)
                                .at(id),
                            );
                        } else {
                            st.tokens[t].used = true;
                        }
                    }
                }
            }

            match &inst.kind {
                InstKind::Push { src } => {
                    let t = src.as_reg().and_then(|r| st.regs[r.index()]);
                    if let Some(t) = t {
                        // Passed as an argument: treat as escaped.
                        st.tokens[t].escaped = true;
                    }
                    st.pushes.push(t);
                }
                InstKind::Pop { dst } => {
                    st.pushes.pop();
                    if let Some(r) = dst.as_reg() {
                        st.regs[r.index()] = None;
                    }
                }
                InstKind::Mov { dst, src } => {
                    match (dst.as_reg(), src.as_reg()) {
                        (Some(rd), Some(rs)) => {
                            let t = st.regs[rs.index()];
                            if st.regs[rd.index()] != t {
                                st.overwrite(rd, &mut diags, f.id, id);
                            }
                            st.regs[rd.index()] = t;
                        }
                        (Some(rd), None) => {
                            st.overwrite(rd, &mut diags, f.id, id);
                        }
                        (None, Some(rs)) => {
                            // Store of a token into memory: it escaped.
                            if let Some(t) = st.regs[rs.index()] {
                                st.tokens[t].escaped = true;
                            }
                        }
                        (None, None) => {}
                    }
                }
                InstKind::Op { op, dst, src } => {
                    if let Some(rd) = dst.as_reg() {
                        let zeroing = matches!(op, tiara_ir::BinOp::Xor | tiara_ir::BinOp::Sub)
                            && dst.as_reg() == src.as_reg();
                        if zeroing {
                            st.overwrite(rd, &mut diags, f.id, id);
                        } else if let Some(t) = st.regs[rd.index()] {
                            // Pointer arithmetic keeps the binding.
                            st.tokens[t].used = true;
                        }
                    }
                }
                InstKind::Call { .. } => {
                    if prog.call_frees(id) {
                        if let Some(&Some(t)) = st.pushes.last() {
                            if st.tokens[t].freed {
                                diags.push(
                                    Diagnostic::error(
                                        PassId::HeapDiscipline,
                                        "double free of the same allocation".to_string(),
                                    )
                                    .in_func(f.id)
                                    .at(id),
                                );
                            } else {
                                st.tokens[t].freed = true;
                            }
                        }
                    }
                    // Caller-saved registers are clobbered by any call.
                    for r in [Reg::Eax, Reg::Ecx, Reg::Edx] {
                        st.regs[r.index()] = None;
                    }
                    if prog.call_allocates(id) {
                        st.tokens.push(Token { freed: false, escaped: false, used: false });
                        st.regs[Reg::Eax.index()] = Some(st.tokens.len() - 1);
                    }
                    // The pending pushes were consumed (or are about to be
                    // cleaned by the caller); bindings past a call are stale.
                    st.pushes.clear();
                }
                InstKind::Ret | InstKind::Use { .. } => {}
            }

            // Leaving straight-line code: an unconditional jump's textual
            // successor is a different path.
            if inst.opcode == Opcode::Jmp || matches!(inst.kind, InstKind::Ret) {
                st.reset();
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;
    use tiara_ir::{BinOp, ExternKind, Operand, ProgramBuilder};

    /// `push <size>; call malloc; add esp, 4` — result token in eax.
    fn malloc(b: &mut ProgramBuilder, size: i64) {
        b.inst(Opcode::Push, InstKind::Push { src: Operand::imm(size) });
        b.call_extern(ExternKind::Malloc);
        b.inst(
            Opcode::Add,
            InstKind::Op { op: BinOp::Add, dst: Operand::reg(Reg::Esp), src: Operand::imm(4) },
        );
    }

    /// `push r; call free; add esp, 4`.
    fn free_reg(b: &mut ProgramBuilder, r: Reg) {
        b.inst(Opcode::Push, InstKind::Push { src: Operand::reg(r) });
        b.call_extern(ExternKind::Free);
        b.inst(
            Opcode::Add,
            InstKind::Op { op: BinOp::Add, dst: Operand::reg(Reg::Esp), src: Operand::imm(4) },
        );
    }

    #[test]
    fn double_free_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.begin_func("f");
        malloc(&mut b, 12);
        b.inst(
            Opcode::Mov,
            InstKind::Mov { dst: Operand::reg(Reg::Ebx), src: Operand::reg(Reg::Eax) },
        );
        free_reg(&mut b, Reg::Ebx);
        free_reg(&mut b, Reg::Ebx);
        b.ret();
        b.end_func();
        let p = b.finish().unwrap();
        let diags = run(&p);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Error);
        assert!(diags[0].message.contains("double free"));
    }

    #[test]
    fn use_after_free_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.begin_func("f");
        malloc(&mut b, 12);
        b.inst(
            Opcode::Mov,
            InstKind::Mov { dst: Operand::reg(Reg::Ebx), src: Operand::reg(Reg::Eax) },
        );
        free_reg(&mut b, Reg::Ebx);
        b.inst(
            Opcode::Mov,
            InstKind::Mov { dst: Operand::reg(Reg::Ecx), src: Operand::mem_reg(Reg::Ebx, 0) },
        );
        b.ret();
        b.end_func();
        let p = b.finish().unwrap();
        let diags = run(&p);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("use after free"));
    }

    #[test]
    fn discarded_allocation_is_a_leak_warning() {
        let mut b = ProgramBuilder::new();
        b.begin_func("f");
        malloc(&mut b, 8);
        b.inst(Opcode::Mov, InstKind::Mov { dst: Operand::reg(Reg::Eax), src: Operand::imm(0) });
        b.ret();
        b.end_func();
        let p = b.finish().unwrap();
        let diags = run(&p);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Warning);
        assert!(diags[0].message.contains("leaked"));
    }

    #[test]
    fn escaped_allocation_is_clean() {
        let mut b = ProgramBuilder::new();
        b.begin_func("f");
        malloc(&mut b, 8);
        b.inst(
            Opcode::Mov,
            InstKind::Mov { dst: Operand::mem_abs(0x100000u64, 0), src: Operand::reg(Reg::Eax) },
        );
        b.inst(Opcode::Mov, InstKind::Mov { dst: Operand::reg(Reg::Eax), src: Operand::imm(0) });
        b.ret();
        b.end_func();
        let p = b.finish().unwrap();
        assert!(run(&p).is_empty());
    }

    #[test]
    fn malloc_store_free_roundtrip_is_clean() {
        let mut b = ProgramBuilder::new();
        b.begin_func("f");
        malloc(&mut b, 16);
        b.inst(
            Opcode::Mov,
            InstKind::Mov { dst: Operand::mem_reg(Reg::Eax, 0), src: Operand::imm(1) },
        );
        b.inst(
            Opcode::Mov,
            InstKind::Mov { dst: Operand::reg(Reg::Esi), src: Operand::reg(Reg::Eax) },
        );
        free_reg(&mut b, Reg::Esi);
        b.ret();
        b.end_func();
        let p = b.finish().unwrap();
        assert!(run(&p).is_empty());
    }
}
