//! Constant-condition pass: conditional branches that always go one way.
//!
//! Runs the conditional constant propagation from `tiara-dataflow` over each
//! function and warns on every conditional jump whose outcome is decided by
//! constant flags on all reachable paths. In generator output every
//! conditional is supposed to depend on memory the analysis cannot see
//! (globals, frame slots), so a decided branch means a template degenerated
//! into straight-line code wearing a branch costume — noise that slicers and
//! the GCN would learn to exploit.

use crate::{Diagnostic, PassId};
use tiara_dataflow::constprop::const_conditions;
use tiara_ir::Program;

/// Runs the constant-condition pass over every function.
pub fn run(prog: &Program) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for f in prog.funcs() {
        let (branches, _unreached) = const_conditions(prog, f.id);
        for br in branches {
            let dir = if br.taken { "always taken" } else { "never taken" };
            diags.push(
                Diagnostic::warning(
                    PassId::ConstCondition,
                    format!(
                        "{} is {dir}: its flags are compile-time constant",
                        prog.inst(br.inst).opcode
                    ),
                )
                .in_func(f.id)
                .at(br.inst),
            );
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiara_ir::{InstKind, Opcode, Operand, ProgramBuilder, Reg};

    #[test]
    fn decided_branch_is_flagged() {
        // mov eax, 0; test eax, eax; je L  — always taken.
        let mut b = ProgramBuilder::new();
        b.begin_func("f");
        let l = b.new_label();
        b.inst(Opcode::Mov, InstKind::Mov { dst: Operand::reg(Reg::Eax), src: Operand::imm(0) });
        b.inst(
            Opcode::Test,
            InstKind::Use { oprs: vec![Operand::reg(Reg::Eax), Operand::reg(Reg::Eax)] },
        );
        let j = b.jump(Opcode::Je, l);
        b.inst(Opcode::Mov, InstKind::Mov { dst: Operand::reg(Reg::Ecx), src: Operand::imm(1) });
        b.bind_label(l);
        b.ret();
        b.end_func();
        let p = b.finish().unwrap();
        let diags = run(&p);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].inst, Some(j));
        assert!(diags[0].message.contains("always taken"));
    }

    #[test]
    fn memory_dependent_branch_is_clean() {
        // The branch depends on a global load — undecidable, no warning.
        let mut b = ProgramBuilder::new();
        b.begin_func("f");
        let l = b.new_label();
        b.inst(
            Opcode::Mov,
            InstKind::Mov { dst: Operand::reg(Reg::Eax), src: Operand::mem_abs(0x7D000, 0) },
        );
        b.inst(
            Opcode::Test,
            InstKind::Use { oprs: vec![Operand::reg(Reg::Eax), Operand::reg(Reg::Eax)] },
        );
        b.jump(Opcode::Je, l);
        b.inst(Opcode::Mov, InstKind::Mov { dst: Operand::reg(Reg::Ecx), src: Operand::imm(1) });
        b.bind_label(l);
        b.ret();
        b.end_func();
        let p = b.finish().unwrap();
        assert!(run(&p).is_empty());
    }
}
