//! Def-before-use register analysis over the intra-procedural CFG.
//!
//! A forward *must* dataflow: a register counts as defined at an instruction
//! only if it is defined along **every** path reaching it from the function
//! entry. Reads of must-undefined registers — the signature of interleaving
//! or noise bugs in the generator — are errors.
//!
//! Modeling choices:
//!
//! * `ebp` and `esp` are defined at function entry (the ABI guarantees
//!   both); all other registers start undefined.
//! * calls define `eax`, `ecx`, `edx` (the x86 caller-saved set — callees
//!   may clobber them, and `eax` carries return values).
//! * `xor r, r` / `sub r, r` zero idioms define `r` without reading it.

use crate::{Diagnostic, PassId};
use std::collections::{HashMap, HashSet};
use tiara_ir::{BinOp, CallTarget, InstKind, Operand, Program, Reg};

type Mask = u8;

fn bit(r: Reg) -> Mask {
    1 << r.index()
}

fn operand_reads(o: Operand, out: &mut Vec<Reg>) {
    match o {
        Operand::Imm(_) => {}
        Operand::Loc(loc) | Operand::Deref(loc) => {
            if let Some(r) = loc.base_reg() {
                out.push(r);
            }
        }
    }
}

/// The registers `inst` reads and the mask of registers it defines.
fn effects(kind: &InstKind) -> (Vec<Reg>, Mask) {
    let mut reads = Vec::new();
    let mut writes: Mask = 0;
    match kind {
        InstKind::Mov { dst, src } => {
            operand_reads(*src, &mut reads);
            match dst.as_reg() {
                Some(r) => writes |= bit(r),
                None => operand_reads(*dst, &mut reads),
            }
        }
        InstKind::Op { op, dst, src } => {
            let zeroing = matches!(op, BinOp::Xor | BinOp::Sub)
                && dst.as_reg().is_some()
                && dst.as_reg() == src.as_reg();
            if !zeroing {
                operand_reads(*src, &mut reads);
                operand_reads(*dst, &mut reads); // read-modify-write
            }
            if let Some(r) = dst.as_reg() {
                writes |= bit(r);
            }
        }
        InstKind::Use { oprs } => {
            for o in oprs {
                operand_reads(*o, &mut reads);
            }
        }
        InstKind::Push { src } => operand_reads(*src, &mut reads),
        InstKind::Pop { dst } => match dst.as_reg() {
            Some(r) => writes |= bit(r),
            None => operand_reads(*dst, &mut reads),
        },
        InstKind::Call { target } => {
            if let CallTarget::Indirect(o) = target {
                operand_reads(*o, &mut reads);
            }
            writes |= bit(Reg::Eax) | bit(Reg::Ecx) | bit(Reg::Edx);
        }
        InstKind::Ret => {}
    }
    (reads, writes)
}

pub(crate) fn run(prog: &Program) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let entry_mask = bit(Reg::Ebp) | bit(Reg::Esp);

    for f in prog.funcs() {
        // Fixpoint: in_mask[i] = intersection over all reaching paths of the
        // registers defined before i.
        let mut in_mask: HashMap<u32, Mask> = HashMap::new();
        let mut work = vec![(f.entry(), entry_mask)];
        while let Some((id, incoming)) = work.pop() {
            let cur = match in_mask.get(&id.0) {
                Some(&old) => {
                    let joined = old & incoming;
                    if joined == old {
                        continue;
                    }
                    in_mask.insert(id.0, joined);
                    joined
                }
                None => {
                    in_mask.insert(id.0, incoming);
                    incoming
                }
            };
            let (_, writes) = effects(&prog.inst(id).kind);
            let out = cur | writes;
            for &s in prog.flow_succs(id) {
                if f.contains(s) {
                    work.push((s, out));
                }
            }
        }

        // Report each (instruction, register) violation once.
        let mut reported: HashSet<(u32, u8)> = HashSet::new();
        for id in f.inst_ids() {
            let Some(&mask) = in_mask.get(&id.0) else {
                continue;
            };
            let (reads, _) = effects(&prog.inst(id).kind);
            for r in reads {
                if mask & bit(r) == 0 && reported.insert((id.0, r.index() as u8)) {
                    diags.push(
                        Diagnostic::error(
                            PassId::DefBeforeUse,
                            format!("register {r} may be read before it is defined"),
                        )
                        .in_func(f.id)
                        .at(id),
                    );
                }
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiara_ir::{Opcode, ProgramBuilder};

    #[test]
    fn read_of_undefined_register_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.begin_func("f");
        b.inst(
            Opcode::Mov,
            InstKind::Mov {
                dst: Operand::reg(Reg::Ebx),
                src: Operand::reg(Reg::Eax), // eax never defined
            },
        );
        b.ret();
        b.end_func();
        let p = b.finish().unwrap();
        let diags = run(&p);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("eax"));
    }

    #[test]
    fn defs_cover_later_reads() {
        let mut b = ProgramBuilder::new();
        b.begin_func("f");
        b.inst(Opcode::Mov, InstKind::Mov { dst: Operand::reg(Reg::Eax), src: Operand::imm(3) });
        b.inst(
            Opcode::Mov,
            InstKind::Mov { dst: Operand::reg(Reg::Ebx), src: Operand::mem_reg(Reg::Eax, 4) },
        );
        b.ret();
        b.end_func();
        let p = b.finish().unwrap();
        assert!(run(&p).is_empty());
    }

    #[test]
    fn zero_idiom_defines_without_reading() {
        let mut b = ProgramBuilder::new();
        b.begin_func("f");
        b.inst(
            Opcode::Xor,
            InstKind::Op {
                op: BinOp::Xor,
                dst: Operand::reg(Reg::Ecx),
                src: Operand::reg(Reg::Ecx),
            },
        );
        b.inst(
            Opcode::Mov,
            InstKind::Mov { dst: Operand::reg(Reg::Edx), src: Operand::reg(Reg::Ecx) },
        );
        b.ret();
        b.end_func();
        let p = b.finish().unwrap();
        assert!(run(&p).is_empty());
    }

    #[test]
    fn one_armed_def_does_not_survive_the_join() {
        // esi is defined on the fall path only; reading it after the merge
        // is a must-undefined read.
        let mut b = ProgramBuilder::new();
        b.begin_func("f");
        let merge = b.new_label();
        b.inst(Opcode::Cmp, InstKind::Use { oprs: vec![Operand::imm(1), Operand::imm(2)] });
        b.jump(Opcode::Je, merge);
        b.inst(Opcode::Mov, InstKind::Mov { dst: Operand::reg(Reg::Esi), src: Operand::imm(7) });
        b.bind_label(merge);
        b.inst(Opcode::Push, InstKind::Push { src: Operand::reg(Reg::Esi) });
        b.inst(Opcode::Pop, InstKind::Pop { dst: Operand::reg(Reg::Esi) });
        b.ret();
        b.end_func();
        let p = b.finish().unwrap();
        let diags = run(&p);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("esi"));
    }

    #[test]
    fn calls_define_the_caller_saved_set() {
        let mut b = ProgramBuilder::new();
        b.begin_func("f");
        b.call_extern(tiara_ir::ExternKind::Malloc);
        b.inst(
            Opcode::Mov,
            InstKind::Mov { dst: Operand::reg(Reg::Ebx), src: Operand::reg(Reg::Eax) },
        );
        b.ret();
        b.end_func();
        let p = b.finish().unwrap();
        assert!(run(&p).is_empty());
    }
}
