//! Unreachable-code pass: instructions no executable path can reach.
//!
//! Uses the executable-block tracking of the conditional constant
//! propagation in `tiara-dataflow`: a block is reachable only if some chain
//! of decided/undecided branch edges leads to it from the function entry.
//! This subsumes plain graph reachability (which the structural CFG pass
//! already implies) — code behind an always-taken branch is structurally
//! connected yet can never execute.
//!
//! Unreached instructions are reported as one warning per contiguous range
//! so a skipped region does not flood the report.

use crate::{Diagnostic, PassId};
use tiara_dataflow::constprop::const_conditions;
use tiara_ir::Program;

/// Runs the unreachable-code pass over every function.
pub fn run(prog: &Program) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for f in prog.funcs() {
        let (_branches, mut unreached) = const_conditions(prog, f.id);
        unreached.sort();
        let mut i = 0;
        while i < unreached.len() {
            let start = unreached[i];
            let mut end = start;
            while i + 1 < unreached.len() && unreached[i + 1].0 == end.0 + 1 {
                i += 1;
                end = unreached[i];
            }
            let span = (end.0 - start.0 + 1) as usize;
            let msg = if span == 1 {
                "instruction is unreachable under constant propagation".to_owned()
            } else {
                format!("{span} instructions are unreachable under constant propagation")
            };
            diags.push(Diagnostic::warning(PassId::UnreachableCode, msg).in_func(f.id).at(start));
            i += 1;
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiara_ir::{InstId, InstKind, Opcode, Operand, ProgramBuilder, Reg};

    #[test]
    fn code_behind_an_always_taken_branch_is_flagged_once() {
        // mov eax, 0; test; je L; mov ecx, 1; mov edx, 2; L: ret — the two
        // fall-through movs form one unreachable range → one warning.
        let mut b = ProgramBuilder::new();
        b.begin_func("f");
        let l = b.new_label();
        b.inst(Opcode::Mov, InstKind::Mov { dst: Operand::reg(Reg::Eax), src: Operand::imm(0) });
        b.inst(
            Opcode::Test,
            InstKind::Use { oprs: vec![Operand::reg(Reg::Eax), Operand::reg(Reg::Eax)] },
        );
        b.jump(Opcode::Je, l);
        b.inst(Opcode::Mov, InstKind::Mov { dst: Operand::reg(Reg::Ecx), src: Operand::imm(1) });
        b.inst(Opcode::Mov, InstKind::Mov { dst: Operand::reg(Reg::Edx), src: Operand::imm(2) });
        b.bind_label(l);
        b.ret();
        b.end_func();
        let p = b.finish().unwrap();
        let diags = run(&p);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].inst, Some(InstId(3)));
        assert!(diags[0].message.contains("2 instructions"));
    }

    #[test]
    fn fully_live_function_is_clean() {
        let mut b = ProgramBuilder::new();
        b.begin_func("f");
        let l = b.new_label();
        b.inst(
            Opcode::Mov,
            InstKind::Mov { dst: Operand::reg(Reg::Eax), src: Operand::mem_abs(0x7D000, 0) },
        );
        b.inst(
            Opcode::Test,
            InstKind::Use { oprs: vec![Operand::reg(Reg::Eax), Operand::reg(Reg::Eax)] },
        );
        b.jump(Opcode::Je, l);
        b.inst(Opcode::Mov, InstKind::Mov { dst: Operand::reg(Reg::Ecx), src: Operand::imm(1) });
        b.bind_label(l);
        b.ret();
        b.end_func();
        let p = b.finish().unwrap();
        assert!(run(&p).is_empty());
    }
}
