//! Inter-procedural lint passes over the escape & mod-ref summaries.
//!
//! All three lints and the oracle consume one [`summarize_program`] run:
//!
//! * **escaped-slot-never-read** (warning) — a frame slot's address escapes
//!   the function, but no instruction of the function ever reads the slot
//!   directly: its value is observable only through the escaped pointer,
//!   which usually indicates a lost read or a pointless address-of.
//! * **callee-clobbers-live-caller-reg** (warning) — a register that is
//!   live in the caller across a direct call sits in the callee's
//!   transitive clobber set. `eax` is exempt (it carries the return value
//!   by convention), as is `esp` (never summarized as clobbered).
//! * **dead-argument** (warning) — a call site pushes an argument that the
//!   callee (per its summary) never reads or writes. Only emitted for
//!   frame-disciplined callees with no unknown-callee taint, where the
//!   `[ebp + 8 + 4k]` access idiom is the sole way to reach an argument.
//! * **mod-ref-violation** (error) — the oracle: re-derives per-instruction
//!   effects and call-edge monotonicity independently and checks the stored
//!   summaries absorb them. Any finding is a bug in the summary computation
//!   itself, never in the analyzed program, so the severity is `Error`.

use crate::{Diagnostic, PassId};
use tiara_dataflow::escape::TRACKED_ARGS;
use tiara_dataflow::{
    reg_effects, solve, summarize_program, FuncSummary, Liveness, ProgramSummaries,
};
use tiara_ir::{CallTarget, FuncId, InstKind, Operand, Program, Reg};

/// Runs the four inter-procedural passes.
pub(crate) fn run(prog: &Program) -> Vec<Diagnostic> {
    let summaries = summarize_program(prog);
    let mut out = Vec::new();
    escaped_slot_never_read(prog, &summaries, &mut out);
    callee_clobbers_live_reg(prog, &summaries, &mut out);
    dead_argument(prog, &summaries, &mut out);
    modref_oracle(prog, &summaries, &mut out);
    out
}

/// Renders an `ebp`-relative slot for messages.
fn slot_name(off: i64) -> String {
    if off >= 0 {
        format!("[ebp+{off:#x}]")
    } else {
        format!("[ebp-{:#x}]", -off)
    }
}

fn escaped_slot_never_read(prog: &Program, sums: &ProgramSummaries, out: &mut Vec<Diagnostic>) {
    for f in prog.funcs() {
        let s = sums.of(f.id);
        for &z in &s.escaped {
            if !s.slot_reads.contains(&z) {
                out.push(
                    Diagnostic::warning(
                        PassId::EscapedSlotNeverRead,
                        format!(
                            "address of frame slot {} escapes `{}`, but the function never \
                             reads the slot; its value is visible only through the escaped \
                             pointer",
                            slot_name(z),
                            f.name
                        ),
                    )
                    .in_func(f.id),
                );
            }
        }
    }
}

fn callee_clobbers_live_reg(prog: &Program, sums: &ProgramSummaries, out: &mut Vec<Diagnostic>) {
    for f in prog.funcs() {
        // One liveness solve per function that makes direct calls.
        let mut live = None;
        for id in f.inst_ids() {
            let InstKind::Call { target: CallTarget::Direct(g) } = &prog.inst(id).kind else {
                continue;
            };
            let Some(ret) = prog.return_site(id) else {
                continue;
            };
            let cs = sums.of(*g);
            let live = live.get_or_insert_with(|| solve(prog, f.id, &Liveness::new()));
            for r in cs.clobbered.iter() {
                if r == Reg::Eax || r == Reg::Esp {
                    continue;
                }
                if live.before(ret).contains(r) {
                    out.push(
                        Diagnostic::warning(
                            PassId::CalleeClobbersLiveReg,
                            format!(
                                "`{}` holds {r} live across a call to `{}`, which may \
                                 clobber it",
                                f.name, cs.name
                            ),
                        )
                        .in_func(f.id)
                        .at(id),
                    );
                }
            }
        }
    }
}

/// The number of contiguous `push` instructions immediately before `call`,
/// i.e. the cdecl argument setup this IR's generators emit.
fn args_pushed(prog: &Program, func: FuncId, call: tiara_ir::InstId) -> usize {
    let start = prog.func(func).start;
    let mut n = 0usize;
    let mut j = call.0;
    while j > start.0 {
        j -= 1;
        if matches!(prog.inst(tiara_ir::InstId(j)).kind, InstKind::Push { .. }) {
            n += 1;
        } else {
            break;
        }
    }
    n
}

fn dead_argument(prog: &Program, sums: &ProgramSummaries, out: &mut Vec<Diagnostic>) {
    for f in prog.funcs() {
        for id in f.inst_ids() {
            let InstKind::Call { target: CallTarget::Direct(g) } = &prog.inst(id).kind else {
                continue;
            };
            let cs = sums.of(*g);
            // Only frame-disciplined callees reach their arguments through
            // the `[ebp + 8 + 4k]` idiom the summary tracks; unknown callees
            // may consume anything.
            if !cs.preserves_frame || cs.has_unknown_callee {
                continue;
            }
            let pushed = args_pushed(prog, f.id, id);
            for k in 0..pushed.min(TRACKED_ARGS) {
                if !cs.uses_arg(k) {
                    out.push(
                        Diagnostic::warning(
                            PassId::DeadArgument,
                            format!(
                                "argument {k} pushed by `{}` is never read or written by \
                                 `{}`",
                                f.name, cs.name
                            ),
                        )
                        .in_func(f.id)
                        .at(id),
                    );
                }
            }
        }
    }
}

/// Is `inner` absorbed by `outer` (set containment via join-idempotence)?
fn globals_contained(
    outer: &tiara_dataflow::GlobalsEffect,
    inner: &tiara_dataflow::GlobalsEffect,
) -> bool {
    let mut joined = outer.clone();
    joined.join(inner);
    joined == *outer
}

/// The mod-ref oracle: independently re-derives what each summary must at
/// least contain and reports any gap as an error. Two obligation families:
///
/// 1. **per-instruction coverage** — every register write in `f`'s body is
///    in `clobbered` (modulo `esp`, and `ebp` when the frame is preserved),
///    every direct `[ebp+c]` store is in `slot_writes`, every absolute store
///    is within `globals_written`;
/// 2. **call-edge monotonicity** — a caller's summary absorbs each direct
///    callee's clobbers, arg-memory flags, global effects, allocator
///    reachability, and unknown-callee taint.
fn modref_oracle(prog: &Program, sums: &ProgramSummaries, out: &mut Vec<Diagnostic>) {
    let mut report = |func: FuncId, id: Option<tiara_ir::InstId>, msg: String| {
        let mut d = Diagnostic::error(PassId::ModRefViolation, msg).in_func(func);
        if let Some(id) = id {
            d = d.at(id);
        }
        out.push(d);
    };
    for f in prog.funcs() {
        let s = sums.of(f.id);
        for id in f.inst_ids() {
            let kind = &prog.inst(id).kind;
            // Obligation 1a: register writes are summarized.
            let mut allowed = s.clobbered.with(Reg::Esp);
            if s.preserves_frame {
                allowed = allowed.with(Reg::Ebp);
            }
            for r in reg_effects(kind).writes.iter() {
                if !allowed.contains(r) {
                    report(
                        f.id,
                        Some(id),
                        format!("`{}` writes {r} but its summary does not clobber it", f.name),
                    );
                }
            }
            // Obligation 1b: direct memory stores are summarized.
            let store = match kind {
                InstKind::Mov { dst, src: _ } => Some(*dst),
                InstKind::Op { dst, .. } => Some(*dst),
                InstKind::Pop { dst } => Some(*dst),
                _ => None,
            };
            if let Some(Operand::Deref(loc)) = store {
                match (loc.base_reg(), loc.base_mem()) {
                    (Some(Reg::Ebp), _) if !s.slot_writes.contains(&loc.offset) => {
                        report(
                            f.id,
                            Some(id),
                            format!(
                                "`{}` stores to {} but the slot is not in `slot_writes`",
                                f.name,
                                slot_name(loc.offset)
                            ),
                        );
                    }
                    (None, Some(m)) if !s.globals_written.may_touch(m) => {
                        report(
                            f.id,
                            Some(id),
                            format!(
                                "`{}` stores to global {:#x} outside `globals_written`",
                                f.name,
                                m.value()
                            ),
                        );
                    }
                    _ => {}
                }
            }
            // Obligation 2: callee effects are absorbed.
            if let InstKind::Call { target: CallTarget::Direct(g) } = kind {
                check_edge_monotone(f.id, &f.name, s, sums.of(*g), id, &mut report);
            }
        }
    }
}

/// Checks one direct call edge's summary containment.
fn check_edge_monotone(
    func: FuncId,
    caller: &str,
    s: &FuncSummary,
    cs: &FuncSummary,
    id: tiara_ir::InstId,
    report: &mut impl FnMut(FuncId, Option<tiara_ir::InstId>, String),
) {
    let mut inherited = cs.clobbered.without(Reg::Esp);
    if s.preserves_frame {
        inherited = inherited.without(Reg::Ebp);
    }
    if s.clobbered.union(inherited) != s.clobbered {
        report(
            func,
            Some(id),
            format!("`{caller}` does not absorb the clobber set of callee `{}`", cs.name),
        );
    }
    let flags_ok = (s.reads_arg_mem || !cs.reads_arg_mem)
        && (s.writes_arg_mem || !cs.writes_arg_mem)
        && (s.allocates || !cs.allocates)
        && (s.frees || !cs.frees)
        && (s.has_unknown_callee || !cs.has_unknown_callee);
    if !flags_ok {
        report(
            func,
            Some(id),
            format!("`{caller}` does not absorb the effect flags of callee `{}`", cs.name),
        );
    }
    if !globals_contained(&s.globals_read, &cs.globals_read)
        || !globals_contained(&s.globals_written, &cs.globals_written)
    {
        report(
            func,
            Some(id),
            format!("`{caller}` does not absorb the global effects of callee `{}`", cs.name),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;
    use tiara_ir::{Opcode, ProgramBuilder};

    fn prologue(b: &mut ProgramBuilder) {
        b.inst(Opcode::Push, InstKind::Push { src: Operand::reg(Reg::Ebp) });
        b.inst(
            Opcode::Mov,
            InstKind::Mov { dst: Operand::reg(Reg::Ebp), src: Operand::reg(Reg::Esp) },
        );
    }

    fn epilogue(b: &mut ProgramBuilder) {
        b.inst(Opcode::Pop, InstKind::Pop { dst: Operand::reg(Reg::Ebp) });
        b.ret();
    }

    /// main takes `&local`, passes it to a helper that ignores it, and
    /// never reads the local itself: trips escaped-slot-never-read and
    /// dead-argument, but never the oracle.
    fn escape_no_read_program() -> Program {
        let mut b = ProgramBuilder::new();
        b.begin_func("main");
        prologue(&mut b);
        b.inst(
            Opcode::Lea,
            InstKind::Mov {
                dst: Operand::reg(Reg::Esi),
                src: Operand::Loc(tiara_ir::Loc::with_offset(Reg::Ebp, -8)),
            },
        );
        b.inst(Opcode::Push, InstKind::Push { src: Operand::reg(Reg::Esi) });
        b.call_named("ignorer");
        b.inst(
            Opcode::Add,
            InstKind::Op {
                op: tiara_ir::BinOp::Add,
                dst: Operand::reg(Reg::Esp),
                src: Operand::imm(4),
            },
        );
        epilogue(&mut b);
        b.end_func();
        b.begin_func("ignorer");
        prologue(&mut b);
        b.inst(Opcode::Mov, InstKind::Mov { dst: Operand::reg(Reg::Eax), src: Operand::imm(0) });
        epilogue(&mut b);
        b.end_func();
        b.set_entry("main");
        b.finish().unwrap()
    }

    #[test]
    fn escaped_but_unread_slot_and_dead_argument_warn() {
        let p = escape_no_read_program();
        let diags = run(&p);
        assert!(
            diags
                .iter()
                .any(|d| d.pass == PassId::EscapedSlotNeverRead && d.severity == Severity::Warning),
            "{diags:?}"
        );
        assert!(
            diags.iter().any(|d| d.pass == PassId::DeadArgument),
            "ignorer never touches its argument: {diags:?}"
        );
        assert!(
            !diags.iter().any(|d| d.pass == PassId::ModRefViolation),
            "the oracle must never fire on summaries it is checking: {diags:?}"
        );
    }

    #[test]
    fn consumed_escape_is_not_flagged() {
        // Same shape, but main reads the local back after the call and the
        // helper dereferences its argument: both warnings disappear.
        let mut b = ProgramBuilder::new();
        b.begin_func("main");
        prologue(&mut b);
        b.inst(
            Opcode::Lea,
            InstKind::Mov {
                dst: Operand::reg(Reg::Esi),
                src: Operand::Loc(tiara_ir::Loc::with_offset(Reg::Ebp, -8)),
            },
        );
        b.inst(Opcode::Push, InstKind::Push { src: Operand::reg(Reg::Esi) });
        b.call_named("consumer");
        b.inst(
            Opcode::Add,
            InstKind::Op {
                op: tiara_ir::BinOp::Add,
                dst: Operand::reg(Reg::Esp),
                src: Operand::imm(4),
            },
        );
        b.inst(
            Opcode::Mov,
            InstKind::Mov { dst: Operand::reg(Reg::Eax), src: Operand::mem_reg(Reg::Ebp, -8) },
        );
        epilogue(&mut b);
        b.end_func();
        b.begin_func("consumer");
        prologue(&mut b);
        b.inst(
            Opcode::Mov,
            InstKind::Mov { dst: Operand::reg(Reg::Ecx), src: Operand::mem_reg(Reg::Ebp, 8) },
        );
        b.inst(
            Opcode::Mov,
            InstKind::Mov { dst: Operand::mem_reg(Reg::Ecx, 0), src: Operand::imm(1) },
        );
        epilogue(&mut b);
        b.end_func();
        b.set_entry("main");
        let p = b.finish().unwrap();
        let diags = run(&p);
        assert!(!diags.iter().any(|d| d.pass == PassId::EscapedSlotNeverRead), "{diags:?}");
        assert!(!diags.iter().any(|d| d.pass == PassId::DeadArgument), "{diags:?}");
    }

    #[test]
    fn live_register_clobbered_by_callee_warns() {
        let mut b = ProgramBuilder::new();
        b.begin_func("main");
        prologue(&mut b);
        // esi gets a value, survives a call to a helper that writes esi,
        // and is read afterwards.
        b.inst(Opcode::Mov, InstKind::Mov { dst: Operand::reg(Reg::Esi), src: Operand::imm(3) });
        b.call_named("smasher");
        b.inst(
            Opcode::Mov,
            InstKind::Mov { dst: Operand::reg(Reg::Eax), src: Operand::reg(Reg::Esi) },
        );
        epilogue(&mut b);
        b.end_func();
        b.begin_func("smasher");
        prologue(&mut b);
        b.inst(Opcode::Mov, InstKind::Mov { dst: Operand::reg(Reg::Esi), src: Operand::imm(0) });
        epilogue(&mut b);
        b.end_func();
        b.set_entry("main");
        let p = b.finish().unwrap();
        let diags = run(&p);
        assert!(
            diags
                .iter()
                .any(|d| d.pass == PassId::CalleeClobbersLiveReg && d.message.contains("esi")),
            "{diags:?}"
        );
    }

    #[test]
    fn eax_as_return_value_is_exempt() {
        let mut b = ProgramBuilder::new();
        b.begin_func("main");
        prologue(&mut b);
        b.call_named("producer");
        b.inst(
            Opcode::Mov,
            InstKind::Mov { dst: Operand::reg(Reg::Ebx), src: Operand::reg(Reg::Eax) },
        );
        epilogue(&mut b);
        b.end_func();
        b.begin_func("producer");
        prologue(&mut b);
        b.inst(Opcode::Mov, InstKind::Mov { dst: Operand::reg(Reg::Eax), src: Operand::imm(9) });
        epilogue(&mut b);
        b.end_func();
        b.set_entry("main");
        let p = b.finish().unwrap();
        let diags = run(&p);
        assert!(
            !diags.iter().any(|d| d.pass == PassId::CalleeClobbersLiveReg),
            "reading the return value is the point of calling: {diags:?}"
        );
    }
}
