//! CFG well-formedness: the structural pass every other pass depends on.
//!
//! Checks that the function table tiles the instruction list, that every
//! flow/CFG edge targets a live instruction, that call and return edges pair
//! up (a direct call's CFG edge goes to the callee entry, a `ret` edge goes
//! back to a recorded call site of the function), that non-fall-through
//! targets carry the jump-target mark, and that every function entry is
//! reachable from the program entry.

use crate::{Diagnostic, PassId};
use std::collections::{HashMap, HashSet, VecDeque};
use tiara_ir::{CallTarget, InstId, InstKind, Opcode, Program};

pub(crate) fn run(prog: &Program) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let n = prog.num_insts();
    let funcs = prog.funcs();

    if funcs.is_empty() || n == 0 {
        diags.push(Diagnostic::error(PassId::Cfg, "program has no functions or instructions"));
        return diags;
    }

    // Function table: sorted, contiguous, non-empty ranges covering [0, n).
    let mut expected = InstId(0);
    let mut table_ok = true;
    for (i, f) in funcs.iter().enumerate() {
        if f.id.index() != i {
            diags.push(Diagnostic::error(
                PassId::Cfg,
                format!("function table id mismatch: slot {} holds id {}", i, f.id.index()),
            ));
            table_ok = false;
        }
        if f.start != expected {
            diags.push(
                Diagnostic::error(
                    PassId::Cfg,
                    format!(
                        "function table gap or overlap: `{}` starts at {} but {} was expected",
                        f.name,
                        f.start.index(),
                        expected.index()
                    ),
                )
                .in_func(f.id),
            );
            table_ok = false;
        }
        if f.end <= f.start {
            diags.push(
                Diagnostic::error(PassId::Cfg, format!("function `{}` is empty", f.name))
                    .in_func(f.id),
            );
            table_ok = false;
        }
        expected = f.end;
    }
    if expected.index() != n {
        diags.push(Diagnostic::error(
            PassId::Cfg,
            format!("function table covers {} of {} instructions", expected.index(), n),
        ));
        table_ok = false;
    }
    if !table_ok {
        // Everything below walks functions' instruction ranges; bail out.
        return diags;
    }

    // Every edge must target a live instruction. If any edge is out of
    // bounds, bail before dereferencing successor ids below.
    let mut bounds_ok = true;
    for i in 0..n {
        let id = InstId(i as u32);
        for &s in prog.flow_succs(id).iter().chain(prog.cfg_succs(id)) {
            if s.index() >= n {
                diags.push(
                    Diagnostic::error(
                        PassId::Cfg,
                        format!("edge targets dead instruction {} (program has {})", s.index(), n),
                    )
                    .in_func(prog.func_of(id))
                    .at(id),
                );
                bounds_ok = false;
            }
        }
    }
    if !bounds_ok {
        return diags;
    }

    // Valid return sites per callee: a `ret` in function F may only flow to
    // the recorded return site of a direct call to F.
    let mut ret_sites: HashMap<u32, HashSet<InstId>> = HashMap::new();
    for i in 0..n {
        let id = InstId(i as u32);
        if let InstKind::Call { target: CallTarget::Direct(callee) } = &prog.inst(id).kind {
            if let Some(site) = prog.return_site(id) {
                ret_sites.entry(callee.0).or_default().insert(site);
            }
        }
    }

    for f in funcs {
        for id in f.inst_ids() {
            if prog.func_of(id) != f.id {
                diags.push(
                    Diagnostic::error(
                        PassId::Cfg,
                        format!(
                            "instruction maps to function {} in func_of",
                            prog.func_of(id).index()
                        ),
                    )
                    .in_func(f.id)
                    .at(id),
                );
                continue;
            }
            let inst = prog.inst(id);
            match &inst.kind {
                InstKind::Call { target: CallTarget::Direct(callee) } => {
                    if callee.index() >= funcs.len() {
                        diags.push(
                            Diagnostic::error(
                                PassId::Cfg,
                                format!("direct call to unknown function {}", callee.index()),
                            )
                            .in_func(f.id)
                            .at(id),
                        );
                        continue;
                    }
                    let entry = prog.func(*callee).entry();
                    if !prog.cfg_succs(id).contains(&entry) {
                        diags.push(
                            Diagnostic::error(
                                PassId::Cfg,
                                format!(
                                    "direct call lacks a CFG edge to `{}`'s entry",
                                    prog.func(*callee).name
                                ),
                            )
                            .in_func(f.id)
                            .at(id),
                        );
                    }
                }
                InstKind::Ret => {
                    let valid = ret_sites.get(&f.id.0);
                    for &s in prog.cfg_succs(id) {
                        if valid.is_none_or(|set| !set.contains(&s)) {
                            diags.push(
                                Diagnostic::error(
                                    PassId::Cfg,
                                    format!(
                                        "return edge to {} does not match any call site of `{}`",
                                        s.index(),
                                        f.name
                                    ),
                                )
                                .in_func(f.id)
                                .at(id),
                            );
                        }
                    }
                }
                _ => {
                    // Intra-function flow only, and every non-fall-through
                    // target must carry the jump-target mark (no dangling
                    // labels).
                    let next = InstId(id.0 + 1);
                    for &s in prog.flow_succs(id) {
                        if !f.contains(s) {
                            diags.push(
                                Diagnostic::error(
                                    PassId::Cfg,
                                    format!("control flow crosses out of `{}`", f.name),
                                )
                                .in_func(f.id)
                                .at(id),
                            );
                        } else if s != next && !prog.is_call_jump_target(s) {
                            diags.push(
                                Diagnostic::error(
                                    PassId::Cfg,
                                    format!("jump target {} is not marked as one", s.index()),
                                )
                                .in_func(f.id)
                                .at(id),
                            );
                        }
                    }
                }
            }
        }

        // A function whose last instruction can fall through runs off its
        // own end. Calls are exempt: a trailing call to a noreturn routine
        // is legal in real code.
        let last = InstId(f.end.0 - 1);
        let inst = prog.inst(last);
        let terminates = matches!(inst.kind, InstKind::Ret | InstKind::Call { .. })
            || inst.opcode == Opcode::Jmp;
        if !terminates {
            diags.push(
                Diagnostic::warning(
                    PassId::Cfg,
                    format!("function `{}` may fall off its end", f.name),
                )
                .in_func(f.id)
                .at(last),
            );
        }
    }

    // Reachability of function entries from the program entry, over the
    // single CFG (call edges enter callees, ret edges return to call sites).
    let mut seen = vec![false; n];
    let mut queue = VecDeque::new();
    let start = prog.entry();
    if start.index() < n {
        seen[start.index()] = true;
        queue.push_back(start);
    }
    while let Some(id) = queue.pop_front() {
        for &s in prog.cfg_succs(id) {
            if !seen[s.index()] {
                seen[s.index()] = true;
                queue.push_back(s);
            }
        }
    }
    for f in funcs {
        if !seen[f.entry().index()] {
            diags.push(
                Diagnostic::warning(
                    PassId::Cfg,
                    format!("function `{}` is unreachable from the entry point", f.name),
                )
                .in_func(f.id),
            );
        }
    }

    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiara_ir::{Opcode, Operand, ProgramBuilder, Reg};

    fn ret_only(b: &mut ProgramBuilder, name: &str) {
        b.begin_func(name);
        b.inst(Opcode::Mov, InstKind::Mov { dst: Operand::reg(Reg::Eax), src: Operand::imm(0) });
        b.ret();
        b.end_func();
    }

    #[test]
    fn well_formed_program_is_clean() {
        let mut b = ProgramBuilder::new();
        b.begin_func("main");
        b.call_named("callee");
        b.ret();
        b.end_func();
        ret_only(&mut b, "callee");
        b.set_entry("main");
        let p = b.finish().unwrap();
        assert!(run(&p).is_empty());
    }

    #[test]
    fn unreachable_function_is_a_warning() {
        let mut b = ProgramBuilder::new();
        ret_only(&mut b, "main");
        ret_only(&mut b, "orphan");
        b.set_entry("main");
        let p = b.finish().unwrap();
        let diags = run(&p);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, crate::Severity::Warning);
        assert!(diags[0].message.contains("orphan"));
    }

    #[test]
    fn jumps_and_loops_are_well_formed() {
        let mut b = ProgramBuilder::new();
        b.begin_func("loopy");
        let top = b.new_label();
        let done = b.new_label();
        b.bind_label(top);
        b.inst(Opcode::Cmp, InstKind::Use { oprs: vec![Operand::imm(1), Operand::imm(2)] });
        b.jump(Opcode::Je, done);
        b.jump(Opcode::Jmp, top);
        b.bind_label(done);
        b.ret();
        b.end_func();
        let p = b.finish().unwrap();
        assert!(run(&p).is_empty());
    }
}
