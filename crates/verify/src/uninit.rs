//! Uninitialized-stack-read pass.
//!
//! A load from a *negative* `ebp` offset reads a local variable slot; if no
//! path from the function entry stores to that slot first, the read sees
//! garbage. This pass runs a forward "may be initialized" union analysis
//! over the frame slots (a slot is in the fact if **some** path has stored
//! to it) and reports, as an **error**, every reachable read of a negative
//! slot that is absent from the fact — i.e. provably uninitialized on every
//! path. The may-join makes the check deliberately conservative: a slot
//! initialized on one arm of a diamond and read after the join is not
//! flagged, because dataflow cannot see path correlations.
//!
//! Positive offsets are exempt — they address incoming arguments (or the
//! saved frame linkage), which the caller initializes. Functions whose frame
//! address escapes (`lea r, [ebp+c]`) are skipped, exactly as in the
//! dead-store pass: an escaped slot can be written through any register or
//! callee.

use crate::{Diagnostic, PassId};
use std::collections::BTreeSet;
use tiara_dataflow::solver::{solve, Direction, Lattice, Transfer};
use tiara_ir::{FuncId, InstId, InstKind, Operand, Program, Reg};

/// A set of `ebp` offsets (the may-initialized slots).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct InitSet(BTreeSet<i64>);

impl Lattice for InitSet {
    fn join(&mut self, other: &Self) -> bool {
        let before = self.0.len();
        self.0.extend(other.0.iter().copied());
        self.0.len() != before
    }
}

fn slot_of(o: Operand) -> Option<i64> {
    match o {
        Operand::Deref(loc) if loc.base_reg() == Some(Reg::Ebp) => Some(loc.offset),
        _ => None,
    }
}

fn escapes_frame(o: Operand) -> bool {
    matches!(o, Operand::Loc(loc) if loc.base_reg() == Some(Reg::Ebp) && loc.offset != 0)
}

/// Slots this instruction reads, in evaluation order before its write.
fn slot_reads(kind: &InstKind) -> Vec<i64> {
    match kind {
        InstKind::Mov { src, .. } => slot_of(*src).into_iter().collect(),
        // A read-modify-write reads its destination slot too.
        InstKind::Op { dst, src, .. } => slot_of(*dst).into_iter().chain(slot_of(*src)).collect(),
        InstKind::Use { oprs } => oprs.iter().filter_map(|o| slot_of(*o)).collect(),
        InstKind::Push { src } => slot_of(*src).into_iter().collect(),
        InstKind::Pop { .. } | InstKind::Call { .. } | InstKind::Ret => Vec::new(),
    }
}

/// The slot this instruction stores to, if any.
fn slot_write(kind: &InstKind) -> Option<i64> {
    match kind {
        InstKind::Mov { dst, .. } | InstKind::Op { dst, .. } => slot_of(*dst),
        InstKind::Pop { dst } => slot_of(*dst),
        _ => None,
    }
}

struct MayInit;

impl Transfer for MayInit {
    type Fact = InitSet;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn bottom(&self) -> InitSet {
        InitSet::default()
    }

    fn boundary(&self) -> InitSet {
        InitSet::default() // nothing is initialized at the function entry
    }

    fn apply(&self, prog: &Program, id: InstId, fact: &mut InitSet) {
        if let Some(c) = slot_write(&prog.inst(id).kind) {
            fact.0.insert(c);
        }
    }
}

fn run_func(prog: &Program, func: FuncId, diags: &mut Vec<Diagnostic>) {
    let f = prog.func(func);
    let mut touches_frame = false;
    for id in f.inst_ids() {
        let kind = &prog.inst(id).kind;
        let oprs: Vec<Operand> = match kind {
            InstKind::Mov { dst, src } | InstKind::Op { dst, src, .. } => vec![*dst, *src],
            InstKind::Use { oprs } => oprs.clone(),
            InstKind::Push { src } => vec![*src],
            InstKind::Pop { dst } => vec![*dst],
            InstKind::Call { .. } | InstKind::Ret => Vec::new(),
        };
        for o in oprs {
            if escapes_frame(o) {
                return;
            }
            if slot_of(o).is_some() {
                touches_frame = true;
            }
        }
    }
    if !touches_frame {
        return;
    }

    let sol = solve(prog, func, &MayInit);
    for id in f.inst_ids() {
        if !sol.reached(id) {
            continue;
        }
        let init = sol.before(id);
        for c in slot_reads(&prog.inst(id).kind) {
            if c < 0 && !init.0.contains(&c) {
                diags.push(
                    Diagnostic::error(
                        PassId::UninitStackRead,
                        format!("read of [ebp{c:+#x}] before any path initializes it"),
                    )
                    .in_func(func)
                    .at(id),
                );
            }
        }
    }
}

/// Runs the uninitialized-stack-read pass over every function.
pub fn run(prog: &Program) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for f in prog.funcs() {
        run_func(prog, f.id, &mut diags);
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiara_ir::{Opcode, ProgramBuilder};

    fn slot(c: i64) -> Operand {
        Operand::mem_reg(Reg::Ebp, c)
    }

    #[test]
    fn read_before_any_store_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.begin_func("f");
        b.inst(Opcode::Mov, InstKind::Mov { dst: Operand::reg(Reg::Eax), src: slot(-8) });
        b.ret();
        b.end_func();
        let p = b.finish().unwrap();
        let diags = run(&p);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].inst, Some(InstId(0)));
    }

    #[test]
    fn store_then_read_is_clean_and_arg_reads_are_exempt() {
        // [ebp-8] is stored then read; [ebp+8] is an argument read.
        let mut b = ProgramBuilder::new();
        b.begin_func("f");
        b.inst(Opcode::Mov, InstKind::Mov { dst: slot(-8), src: Operand::imm(1) });
        b.inst(Opcode::Mov, InstKind::Mov { dst: Operand::reg(Reg::Eax), src: slot(-8) });
        b.inst(Opcode::Mov, InstKind::Mov { dst: Operand::reg(Reg::Ecx), src: slot(8) });
        b.ret();
        b.end_func();
        let p = b.finish().unwrap();
        assert!(run(&p).is_empty(), "{:?}", run(&p));
    }

    #[test]
    fn one_initializing_arm_suppresses_the_report() {
        // The slot is stored on one arm of a diamond; the read after the
        // join is not *provably* uninitialized, so the may-analysis stays
        // quiet.
        let mut b = ProgramBuilder::new();
        b.begin_func("f");
        let l = b.new_label();
        b.inst(Opcode::Cmp, InstKind::Use { oprs: vec![slot(8), Operand::imm(0)] });
        b.jump(Opcode::Je, l);
        b.inst(Opcode::Mov, InstKind::Mov { dst: slot(-4), src: Operand::imm(1) });
        b.bind_label(l);
        b.inst(Opcode::Mov, InstKind::Mov { dst: Operand::reg(Reg::Eax), src: slot(-4) });
        b.ret();
        b.end_func();
        let p = b.finish().unwrap();
        assert!(run(&p).is_empty(), "{:?}", run(&p));
    }

    #[test]
    fn frame_escape_disables_the_function() {
        let mut b = ProgramBuilder::new();
        b.begin_func("f");
        b.inst(
            Opcode::Lea,
            InstKind::Mov {
                dst: Operand::reg(Reg::Esi),
                src: Operand::Loc(tiara_ir::Loc::with_offset(Reg::Ebp, -8)),
            },
        );
        b.inst(Opcode::Mov, InstKind::Mov { dst: Operand::reg(Reg::Eax), src: slot(-8) });
        b.ret();
        b.end_func();
        let p = b.finish().unwrap();
        assert!(run(&p).is_empty());
    }
}
