//! Property-based tests for the IR: builder/program invariants and
//! serialization round-trips over randomly shaped programs.

use proptest::prelude::*;
use tiara_ir::{
    BinOp, CallGraph, ExternKind, InstKind, Opcode, Operand, Program, ProgramBuilder, Reg,
};

/// Strategy: instructions for one function body (no control flow — jumps are
/// exercised separately so label scoping stays valid).
fn body_inst() -> impl Strategy<Value = (Opcode, InstKind)> {
    let reg = prop::sample::select(Reg::GENERAL.to_vec());
    prop_oneof![
        (reg.clone(), reg.clone()).prop_map(|(a, b)| (
            Opcode::Mov,
            InstKind::Mov { dst: Operand::reg(a), src: Operand::reg(b) }
        )),
        (reg.clone(), -64i64..64).prop_map(|(a, c)| (
            Opcode::Add,
            InstKind::Op { op: BinOp::Add, dst: Operand::reg(a), src: Operand::imm(c) }
        )),
        (reg.clone(), 0x70000u64..0x80000).prop_map(|(a, m)| (
            Opcode::Mov,
            InstKind::Mov { dst: Operand::reg(a), src: Operand::mem_abs(m, 0) }
        )),
        reg.prop_map(|a| (Opcode::Push, InstKind::Push { src: Operand::reg(a) })),
    ]
}

/// Builds a program with `nf` functions, each with the given body, where
/// every function calls the next one.
fn chained_program(bodies: Vec<Vec<(Opcode, InstKind)>>) -> Program {
    let mut b = ProgramBuilder::new();
    let n = bodies.len();
    for (k, body) in bodies.into_iter().enumerate() {
        b.begin_func(&format!("f{k}"));
        for (op, kind) in body {
            b.inst(op, kind);
        }
        if k + 1 < n {
            b.call_named(&format!("f{}", k + 1));
        } else {
            b.call_extern(ExternKind::Malloc);
        }
        b.ret();
        b.end_func();
    }
    b.finish().expect("well-formed chained program")
}

/// Builds a program of `nf` empty functions wired with the given directed
/// call edges (taken modulo `nf`, deduplicated by the builder).
fn callgraph_program(nf: usize, edges: &[(usize, usize)]) -> Program {
    let mut b = ProgramBuilder::new();
    for k in 0..nf {
        b.begin_func(&format!("g{k}"));
        for &(from, to) in edges {
            if from % nf == k {
                b.call_named(&format!("g{}", to % nf));
            }
        }
        b.ret();
        b.end_func();
    }
    b.finish().expect("well-formed call-graph program")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Tarjan's SCC output is a valid bottom-up summarization order: the
    /// components partition the function set, and every call edge leaving
    /// its component lands in an *earlier* component — so by the time the
    /// inter-procedural analysis (`tiara-dataflow`) visits a component,
    /// all outside callees are already summarized.
    #[test]
    fn scc_order_is_a_valid_bottom_up_order(
        nf in 1usize..10,
        edges in prop::collection::vec((0usize..10, 0usize..10), 0..30)
    ) {
        let p = callgraph_program(nf, &edges);
        let g = CallGraph::build(&p);
        let sccs = g.sccs();

        let mut pos = vec![usize::MAX; nf];
        for (i, comp) in sccs.iter().enumerate() {
            prop_assert!(!comp.is_empty());
            for f in comp {
                prop_assert_eq!(pos[f.index()], usize::MAX, "{} in two components", f.index());
                pos[f.index()] = i;
            }
        }
        prop_assert!(pos.iter().all(|&i| i != usize::MAX), "components must partition");

        for f in p.funcs() {
            for &c in g.callees(f.id) {
                if pos[c.index()] != pos[f.id.index()] {
                    prop_assert!(
                        pos[c.index()] < pos[f.id.index()],
                        "callee {} summarized after caller {}",
                        c.index(),
                        f.id.index()
                    );
                }
            }
        }

        // Recursion groups are exactly the cyclic components.
        for comp in g.recursion_groups() {
            prop_assert!(
                comp.len() > 1 || g.callees(comp[0]).contains(&comp[0]),
                "acyclic singleton reported as recursive"
            );
        }
    }

    /// CFG successors and predecessors are mutually consistent and in range.
    #[test]
    fn cfg_edges_are_consistent(
        bodies in prop::collection::vec(prop::collection::vec(body_inst(), 0..10), 1..5)
    ) {
        let p = chained_program(bodies);
        let n = p.num_insts() as u32;
        for i in 0..n {
            let id = tiara_ir::InstId(i);
            for &s in p.cfg_succs(id) {
                prop_assert!(s.0 < n);
                prop_assert!(
                    p.cfg_preds(s).contains(&id),
                    "succ edge {id} -> {s} missing the reverse pred edge"
                );
            }
            for &pr in p.cfg_preds(id) {
                prop_assert!(p.cfg_succs(pr).contains(&id));
            }
        }
    }

    /// Every instruction belongs to exactly one function, and function
    /// ranges tile the program.
    #[test]
    fn functions_tile_the_program(
        bodies in prop::collection::vec(prop::collection::vec(body_inst(), 0..8), 1..5)
    ) {
        let p = chained_program(bodies);
        let mut covered = 0u32;
        for f in p.funcs() {
            prop_assert_eq!(f.start.0, covered, "functions are contiguous");
            covered = f.end.0;
            for id in f.inst_ids() {
                prop_assert_eq!(p.func_of(id), f.id);
            }
        }
        prop_assert_eq!(covered as usize, p.num_insts());
    }

    /// Heap reachability is transitive along the call chain: every function
    /// in the chain reaches the final malloc.
    #[test]
    fn malloc_reachability_spans_the_chain(
        bodies in prop::collection::vec(prop::collection::vec(body_inst(), 0..6), 1..5)
    ) {
        let p = chained_program(bodies);
        for f in p.funcs() {
            prop_assert!(p.func_allocates(f.id), "{} must reach malloc", f.name);
            prop_assert!(!p.func_frees(f.id));
        }
    }

    /// Programs survive a serde JSON round-trip and a raw-field round-trip
    /// unchanged. (The offline serde stub cannot deserialize, so the serde
    /// half only runs against real serde; the `RawProgram` half always
    /// runs.)
    #[test]
    fn program_serde_round_trip(
        bodies in prop::collection::vec(prop::collection::vec(body_inst(), 0..6), 1..4)
    ) {
        let p = chained_program(bodies);
        let json = serde_json::to_string(&p).expect("serialize");
        let parsed: Option<Program> = serde_json::from_str(&json).ok();
        let raw = Program::from_raw_unchecked(p.to_raw());
        for q in parsed.iter().chain(std::iter::once(&raw)) {
            prop_assert_eq!(p.num_insts(), q.num_insts());
            for i in 0..p.num_insts() as u32 {
                let id = tiara_ir::InstId(i);
                prop_assert_eq!(p.inst(id), q.inst(id));
                prop_assert_eq!(p.cfg_succs(id), q.cfg_succs(id));
                prop_assert_eq!(p.is_call_jump_target(id), q.is_call_jump_target(id));
            }
        }
    }
}
