//! Operands of the paper's small language (Section III-A, eq. 1):
//!
//! ```text
//! opr  := c | loc | [loc]
//! loc  := addr | addr + c
//! addr := r | m
//! ```
//!
//! An operand is a constant, a reference to a location (the location's own
//! value — a register read, or the *address* of a memory location as produced
//! by `lea`/`offset`), or an indirect reference `[loc]` (a memory load or
//! store through the location).

use crate::Reg;
use serde::{Deserialize, Serialize};

/// An absolute memory address `m` (e.g. the address of a global variable such
/// as the paper's `v0 = 074404h`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MemAddr(pub u64);

impl MemAddr {
    /// The raw address value.
    #[inline]
    pub fn value(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for MemAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:06X}h", self.0)
    }
}

impl From<u64> for MemAddr {
    fn from(v: u64) -> Self {
        MemAddr(v)
    }
}

/// A base address `addr := r | m`: a register or an absolute memory address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Addr {
    /// A register base.
    Reg(Reg),
    /// An absolute memory address base.
    Mem(MemAddr),
}

impl Addr {
    /// The register, if this base is a register.
    #[inline]
    pub fn as_reg(self) -> Option<Reg> {
        match self {
            Addr::Reg(r) => Some(r),
            Addr::Mem(_) => None,
        }
    }

    /// The memory address, if this base is absolute.
    #[inline]
    pub fn as_mem(self) -> Option<MemAddr> {
        match self {
            Addr::Mem(m) => Some(m),
            Addr::Reg(_) => None,
        }
    }
}

impl From<Reg> for Addr {
    fn from(r: Reg) -> Self {
        Addr::Reg(r)
    }
}

impl From<MemAddr> for Addr {
    fn from(m: MemAddr) -> Self {
        Addr::Mem(m)
    }
}

/// A location `loc := addr + c`: a base with a constant byte offset
/// (offset 0 encodes the plain `addr` form).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Loc {
    /// Base register or absolute address.
    pub base: Addr,
    /// Constant byte offset `c`.
    pub offset: i64,
}

impl Loc {
    /// A location with zero offset.
    #[inline]
    pub fn new(base: impl Into<Addr>) -> Loc {
        Loc { base: base.into(), offset: 0 }
    }

    /// A location `base + offset`.
    #[inline]
    pub fn with_offset(base: impl Into<Addr>, offset: i64) -> Loc {
        Loc { base: base.into(), offset }
    }

    /// Returns the register base, if any.
    #[inline]
    pub fn base_reg(self) -> Option<Reg> {
        self.base.as_reg()
    }

    /// Returns the absolute base address, if any.
    #[inline]
    pub fn base_mem(self) -> Option<MemAddr> {
        self.base.as_mem()
    }
}

impl std::fmt::Display for Loc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.base {
            Addr::Reg(r) => {
                if self.offset == 0 {
                    write!(f, "{r}")
                } else if self.offset > 0 {
                    write!(f, "{r}+{:X}h", self.offset)
                } else {
                    write!(f, "{r}-{:X}h", -self.offset)
                }
            }
            Addr::Mem(m) => {
                if self.offset == 0 {
                    write!(f, "{m}")
                } else if self.offset > 0 {
                    write!(f, "{m}+{:X}h", self.offset)
                } else {
                    write!(f, "{m}-{:X}h", -self.offset)
                }
            }
        }
    }
}

/// An operand `opr := c | loc | [loc]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// An immediate constant `c`.
    Imm(i64),
    /// A direct reference to a location: a register read/write, or the
    /// *address* of a memory location (`lea r, [m]` / `push offset m`).
    Loc(Loc),
    /// An indirect reference `[loc]`: a memory access through the location.
    Deref(Loc),
}

impl Operand {
    /// A register operand.
    #[inline]
    pub fn reg(r: Reg) -> Operand {
        Operand::Loc(Loc::new(r))
    }

    /// An immediate operand.
    #[inline]
    pub fn imm(c: i64) -> Operand {
        Operand::Imm(c)
    }

    /// A memory load/store `[r + offset]`.
    #[inline]
    pub fn mem_reg(r: Reg, offset: i64) -> Operand {
        Operand::Deref(Loc::with_offset(r, offset))
    }

    /// A memory load/store at an absolute address `[m + offset]`.
    #[inline]
    pub fn mem_abs(m: impl Into<MemAddr>, offset: i64) -> Operand {
        Operand::Deref(Loc::with_offset(m.into(), offset))
    }

    /// The *address* of a global, as in `push offset m` or `lea`.
    #[inline]
    pub fn addr_of(m: impl Into<MemAddr>, offset: i64) -> Operand {
        Operand::Loc(Loc::with_offset(m.into(), offset))
    }

    /// Returns the register if this operand is a plain register reference.
    #[inline]
    pub fn as_reg(self) -> Option<Reg> {
        match self {
            Operand::Loc(Loc { base: Addr::Reg(r), offset: 0 }) => Some(r),
            _ => None,
        }
    }

    /// Returns `true` if the operand reads memory through an indirection.
    #[inline]
    pub fn is_indirect(self) -> bool {
        matches!(self, Operand::Deref(_))
    }

    /// The register this operand dereferences through, if any (`[r+c]`).
    #[inline]
    pub fn deref_reg(self) -> Option<(Reg, i64)> {
        match self {
            Operand::Deref(Loc { base: Addr::Reg(r), offset }) => Some((r, offset)),
            _ => None,
        }
    }

    /// The absolute address this operand dereferences, if any (`[m+c]`).
    #[inline]
    pub fn deref_mem(self) -> Option<(MemAddr, i64)> {
        match self {
            Operand::Deref(Loc { base: Addr::Mem(m), offset }) => Some((m, offset)),
            _ => None,
        }
    }

    /// The IDA-style operand type classification used by feature `F3`/`F4`.
    pub fn operand_type(self) -> OperandType {
        match self {
            Operand::Imm(_) => OperandType::Immediate,
            Operand::Loc(Loc { base: Addr::Reg(_), offset: 0 }) => OperandType::Register,
            // `lea`-style address computations over a register frame.
            Operand::Loc(Loc { base: Addr::Reg(_), .. }) => OperandType::Displacement,
            // `offset m` immediates naming a global.
            Operand::Loc(Loc { base: Addr::Mem(_), .. }) => OperandType::ImmediateNear,
            Operand::Deref(Loc { base: Addr::Mem(_), .. }) => OperandType::MemoryDirect,
            Operand::Deref(Loc { base: Addr::Reg(_), offset: 0 }) => OperandType::Phrase,
            Operand::Deref(Loc { base: Addr::Reg(_), .. }) => OperandType::Displacement,
        }
    }
}

impl std::fmt::Display for Operand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Operand::Imm(c) => {
                if *c >= 0 {
                    write!(f, "{:X}h", c)
                } else {
                    write!(f, "-{:X}h", -c)
                }
            }
            Operand::Loc(loc) => match loc.base {
                Addr::Reg(_) => write!(f, "{loc}"),
                Addr::Mem(_) => write!(f, "offset {loc}"),
            },
            Operand::Deref(loc) => write!(f, "dword ptr [{loc}]"),
        }
    }
}

/// The 13 operand types IDA Pro distinguishes, used for the one-hot encoding
/// of features `F3` and `F4` (Section III-B1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum OperandType {
    /// No operand (`o_void`).
    Nil = 0,
    /// General register (`o_reg`).
    Register = 1,
    /// Direct memory reference (`o_mem`).
    MemoryDirect = 2,
    /// Memory reference with base and index registers (`o_phrase`).
    Phrase = 3,
    /// Base + index + displacement (`o_displ`).
    Displacement = 4,
    /// Immediate value (`o_imm`).
    Immediate = 5,
    /// Immediate far address (`o_far`).
    ImmediateFar = 6,
    /// Immediate near address (`o_near`).
    ImmediateNear = 7,
    /// Processor-specific type 1 (`o_idpspec0`).
    Spec0 = 8,
    /// Processor-specific type 2.
    Spec1 = 9,
    /// Processor-specific type 3.
    Spec2 = 10,
    /// Processor-specific type 4.
    Spec3 = 11,
    /// Processor-specific type 5.
    Spec4 = 12,
}

impl OperandType {
    /// Number of distinct operand types (the width of the one-hot encoding).
    pub const COUNT: usize = 13;

    /// Dense index in `0..13` for one-hot encoding.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_type_of_common_forms() {
        assert_eq!(Operand::reg(Reg::Eax).operand_type(), OperandType::Register);
        assert_eq!(Operand::imm(10).operand_type(), OperandType::Immediate);
        assert_eq!(Operand::mem_abs(0x74404u64, 0).operand_type(), OperandType::MemoryDirect);
        assert_eq!(Operand::mem_reg(Reg::Esi, 4).operand_type(), OperandType::Displacement);
        assert_eq!(Operand::mem_reg(Reg::Esi, 0).operand_type(), OperandType::Phrase);
        assert_eq!(Operand::addr_of(0x73034u64, 0).operand_type(), OperandType::ImmediateNear);
    }

    #[test]
    fn as_reg_only_for_plain_registers() {
        assert_eq!(Operand::reg(Reg::Ecx).as_reg(), Some(Reg::Ecx));
        assert_eq!(Operand::mem_reg(Reg::Ecx, 0).as_reg(), None);
        assert_eq!(Operand::imm(1).as_reg(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Operand::reg(Reg::Esi).to_string(), "esi");
        assert_eq!(Operand::imm(0x14).to_string(), "14h");
        assert_eq!(Operand::mem_reg(Reg::Ebp, 8).to_string(), "dword ptr [ebp+8h]");
        assert_eq!(Operand::mem_abs(0x74404u64, 0).to_string(), "dword ptr [074404h]");
    }

    #[test]
    fn deref_accessors() {
        assert_eq!(Operand::mem_reg(Reg::Esi, 4).deref_reg(), Some((Reg::Esi, 4)));
        assert_eq!(Operand::mem_abs(0x100u64, -4).deref_mem(), Some((MemAddr(0x100), -4)));
        assert_eq!(Operand::reg(Reg::Esi).deref_reg(), None);
    }
}
