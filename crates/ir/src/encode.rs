//! A byte-level binary image format for programs, with an encoder
//! ("assembler") and decoder ("disassembler").
//!
//! The paper's pipeline starts from an on-disk PE binary that IDA Pro
//! disassembles; this module provides the equivalent boundary for the
//! reproduction: a [`Program`] can be assembled into a flat byte image
//! (`TIRA` format) and disassembled back, so binaries can be stored,
//! shipped between machines (as the paper's artifact ships slice files),
//! and re-analyzed without the generator.
//!
//! ## Image layout (all little-endian)
//!
//! ```text
//! "TIRA" magic | u16 version | u32 entry-function index | u32 #functions
//! per function: u16 name-len | name bytes | u32 #instructions
//! instruction stream (variable length, see `encode_inst`)
//! ```
//!
//! Jump targets and call targets are encoded as instruction/function
//! *indices*, so the image is position-independent.

use crate::{
    BinOp, CallTarget, ExternKind, FuncId, InstId, InstKind, Opcode, Operand, Program,
    ProgramBuilder, Reg,
};
use std::collections::HashMap;

/// Magic bytes of the image format.
pub const MAGIC: &[u8; 4] = b"TIRA";
/// Current format version.
pub const VERSION: u16 = 1;

/// A decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The image does not start with the `TIRA` magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// The image ended in the middle of a structure.
    Truncated,
    /// An enum tag was out of range.
    BadTag(&'static str, u8),
    /// An index pointed outside the image's tables.
    BadIndex(&'static str, u32),
    /// The decoded structures failed program construction.
    Malformed(String),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "missing TIRA magic"),
            DecodeError::BadVersion(v) => write!(f, "unsupported image version {v}"),
            DecodeError::Truncated => write!(f, "truncated image"),
            DecodeError::BadTag(what, t) => write!(f, "invalid {what} tag {t}"),
            DecodeError::BadIndex(what, i) => write!(f, "{what} index {i} out of range"),
            DecodeError::Malformed(m) => write!(f, "malformed program: {m}"),
        }
    }
}

impl std::error::Error for DecodeError {}

// ---------------------------------------------------------------- encoding

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
}

fn encode_operand(w: &mut Writer, o: Operand) {
    match o {
        Operand::Imm(c) => {
            w.u8(0);
            w.i64(c);
        }
        Operand::Loc(loc) => match loc.base {
            crate::Addr::Reg(r) => {
                w.u8(1);
                w.u8(r.index() as u8);
                w.i32(loc.offset as i32);
            }
            crate::Addr::Mem(m) => {
                w.u8(2);
                w.u64(m.value());
                w.i32(loc.offset as i32);
            }
        },
        Operand::Deref(loc) => match loc.base {
            crate::Addr::Reg(r) => {
                w.u8(3);
                w.u8(r.index() as u8);
                w.i32(loc.offset as i32);
            }
            crate::Addr::Mem(m) => {
                w.u8(4);
                w.u64(m.value());
                w.i32(loc.offset as i32);
            }
        },
    }
}

fn binop_tag(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::And => 3,
        BinOp::Or => 4,
        BinOp::Xor => 5,
        BinOp::Shl => 6,
        BinOp::Shr => 7,
    }
}

fn extern_tag(k: ExternKind) -> u8 {
    match k {
        ExternKind::Malloc => 0,
        ExternKind::Free => 1,
        ExternKind::Realloc => 2,
        ExternKind::Other => 3,
    }
}

/// Assembles a program into a flat byte image.
pub fn assemble(prog: &Program) -> Vec<u8> {
    let mut w = Writer { buf: Vec::with_capacity(prog.num_insts() * 8 + 64) };
    w.bytes(MAGIC);
    w.u16(VERSION);
    w.u32(prog.entry_func().0);
    w.u32(prog.funcs().len() as u32);
    for f in prog.funcs() {
        let name = f.name.as_bytes();
        w.u16(name.len() as u16);
        w.bytes(name);
        w.u32(f.len() as u32);
    }

    // Address → instruction index, for jump target resolution.
    let addr_index: HashMap<u64, u32> =
        prog.insts().iter().enumerate().map(|(k, inst)| (inst.addr, k as u32)).collect();

    for (idx, inst) in prog.insts().iter().enumerate() {
        w.u16(inst.opcode.id());
        match &inst.kind {
            InstKind::Use { oprs } if is_encoded_jump(prog, InstId(idx as u32), &addr_index) => {
                // A resolved jump: encode the target instruction index.
                let target = match oprs.first() {
                    Some(Operand::Imm(a)) => addr_index[&(*a as u64)],
                    _ => unreachable!("is_encoded_jump checked the shape"),
                };
                w.u8(7);
                w.u32(target);
            }
            InstKind::Mov { dst, src } => {
                w.u8(0);
                encode_operand(&mut w, *dst);
                encode_operand(&mut w, *src);
            }
            InstKind::Op { op, dst, src } => {
                w.u8(1);
                w.u8(binop_tag(*op));
                encode_operand(&mut w, *dst);
                encode_operand(&mut w, *src);
            }
            InstKind::Use { oprs } => {
                w.u8(2);
                w.u8(oprs.len() as u8);
                for &o in oprs {
                    encode_operand(&mut w, o);
                }
            }
            InstKind::Push { src } => {
                w.u8(3);
                encode_operand(&mut w, *src);
            }
            InstKind::Pop { dst } => {
                w.u8(4);
                encode_operand(&mut w, *dst);
            }
            InstKind::Call { target } => {
                w.u8(5);
                match target {
                    CallTarget::Direct(f) => {
                        w.u8(0);
                        w.u32(f.0);
                    }
                    CallTarget::External(k) => {
                        w.u8(1);
                        w.u8(extern_tag(*k));
                    }
                    CallTarget::Indirect(o) => {
                        w.u8(2);
                        encode_operand(&mut w, *o);
                    }
                }
            }
            InstKind::Ret => {
                w.u8(6);
            }
        }
    }
    w.buf
}

/// Is this `Use` a jump whose single immediate operand resolves to a known
/// instruction address (the form the builder produces for label jumps)?
fn is_encoded_jump(prog: &Program, id: InstId, addr_index: &HashMap<u64, u32>) -> bool {
    let inst = prog.inst(id);
    let is_jump = inst.opcode == Opcode::Jmp || inst.opcode.is_conditional_jump();
    if !is_jump {
        return false;
    }
    match &inst.kind {
        InstKind::Use { oprs } => match oprs.as_slice() {
            [Operand::Imm(a)] => addr_index.contains_key(&(*a as u64)),
            _ => false,
        },
        _ => false,
    }
}

// ---------------------------------------------------------------- decoding

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }
    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }
    fn i32(&mut self) -> Result<i32, DecodeError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }
    fn i64(&mut self) -> Result<i64, DecodeError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
}

fn decode_operand(r: &mut Reader) -> Result<Operand, DecodeError> {
    match r.u8()? {
        0 => Ok(Operand::Imm(r.i64()?)),
        1 => {
            let reg = decode_reg(r.u8()?)?;
            let off = r.i32()? as i64;
            Ok(Operand::Loc(crate::Loc::with_offset(reg, off)))
        }
        2 => {
            let m = r.u64()?;
            let off = r.i32()? as i64;
            Ok(Operand::addr_of(m, off))
        }
        3 => {
            let reg = decode_reg(r.u8()?)?;
            let off = r.i32()? as i64;
            Ok(Operand::mem_reg(reg, off))
        }
        4 => {
            let m = r.u64()?;
            let off = r.i32()? as i64;
            Ok(Operand::mem_abs(m, off))
        }
        t => Err(DecodeError::BadTag("operand", t)),
    }
}

fn decode_reg(idx: u8) -> Result<Reg, DecodeError> {
    if (idx as usize) < Reg::ALL.len() {
        Ok(Reg::from_index(idx as usize))
    } else {
        Err(DecodeError::BadTag("register", idx))
    }
}

fn decode_binop(t: u8) -> Result<BinOp, DecodeError> {
    Ok(match t {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::And,
        4 => BinOp::Or,
        5 => BinOp::Xor,
        6 => BinOp::Shl,
        7 => BinOp::Shr,
        other => return Err(DecodeError::BadTag("binop", other)),
    })
}

fn decode_extern(t: u8) -> Result<ExternKind, DecodeError> {
    Ok(match t {
        0 => ExternKind::Malloc,
        1 => ExternKind::Free,
        2 => ExternKind::Realloc,
        3 => ExternKind::Other,
        other => return Err(DecodeError::BadTag("extern", other)),
    })
}

fn opcode_by_id(id: u16) -> Option<Opcode> {
    // ALL misses a few tail opcodes by construction; extend the search over
    // the fixed table.
    Opcode::ALL.into_iter().find(|o| o.id() == id).or(match id {
        401 => Some(Opcode::Cdq),
        402 => Some(Opcode::Sete),
        403 => Some(Opcode::Setne),
        404 => Some(Opcode::Int3),
        _ => None,
    })
}

/// One decoded instruction before program reconstruction.
enum Decoded {
    Plain(Opcode, InstKind),
    Jump(Opcode, u32),
    CallDirect(u32),
    CallExtern(ExternKind),
    CallIndirect(Operand),
    Ret,
}

/// Disassembles a byte image back into a [`Program`].
///
/// # Errors
///
/// Returns a [`DecodeError`] on magic/version mismatch, truncation, invalid
/// tags, out-of-range indices, or if the decoded structures cannot form a
/// well-formed program.
pub fn disassemble(image: &[u8]) -> Result<Program, DecodeError> {
    let mut r = Reader { buf: image, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let entry = r.u32()?;
    let nfuncs = r.u32()? as usize;
    // Counts come from untrusted bytes: bound them by what the remaining
    // image could possibly hold (a function header is ≥ 6 bytes, an
    // instruction ≥ 3) before allocating anything.
    let remaining = image.len().saturating_sub(r.pos);
    if nfuncs > remaining / 6 + 1 {
        return Err(DecodeError::Truncated);
    }
    let mut names: Vec<String> = Vec::with_capacity(nfuncs);
    let mut lens: Vec<u32> = Vec::with_capacity(nfuncs);
    for _ in 0..nfuncs {
        let nlen = r.u16()? as usize;
        let name = String::from_utf8(r.take(nlen)?.to_vec())
            .map_err(|_| DecodeError::Malformed("non-utf8 function name".into()))?;
        names.push(name);
        lens.push(r.u32()?);
    }
    if entry as usize >= nfuncs {
        return Err(DecodeError::BadIndex("entry function", entry));
    }
    let total: u64 = lens.iter().map(|&l| u64::from(l)).sum();
    let remaining = image.len().saturating_sub(r.pos);
    if total > remaining as u64 / 3 + 1 {
        return Err(DecodeError::Truncated);
    }
    let total = total as u32;

    let mut decoded: Vec<Decoded> = Vec::with_capacity(total as usize);
    for _ in 0..total {
        let opcode = opcode_by_id(r.u16()?).ok_or(DecodeError::BadTag("opcode", 0))?;
        let d = match r.u8()? {
            0 => {
                let dst = decode_operand(&mut r)?;
                let src = decode_operand(&mut r)?;
                Decoded::Plain(opcode, InstKind::Mov { dst, src })
            }
            1 => {
                let op = decode_binop(r.u8()?)?;
                let dst = decode_operand(&mut r)?;
                let src = decode_operand(&mut r)?;
                Decoded::Plain(opcode, InstKind::Op { op, dst, src })
            }
            2 => {
                let n = r.u8()? as usize;
                let mut oprs = Vec::with_capacity(n);
                for _ in 0..n {
                    oprs.push(decode_operand(&mut r)?);
                }
                Decoded::Plain(opcode, InstKind::Use { oprs })
            }
            3 => Decoded::Plain(opcode, InstKind::Push { src: decode_operand(&mut r)? }),
            4 => Decoded::Plain(opcode, InstKind::Pop { dst: decode_operand(&mut r)? }),
            5 => match r.u8()? {
                0 => {
                    let f = r.u32()?;
                    if f as usize >= nfuncs {
                        return Err(DecodeError::BadIndex("callee", f));
                    }
                    Decoded::CallDirect(f)
                }
                1 => Decoded::CallExtern(decode_extern(r.u8()?)?),
                2 => Decoded::CallIndirect(decode_operand(&mut r)?),
                t => return Err(DecodeError::BadTag("call target", t)),
            },
            6 => Decoded::Ret,
            7 => {
                let target = r.u32()?;
                if target >= total {
                    return Err(DecodeError::BadIndex("jump target", target));
                }
                Decoded::Jump(opcode, target)
            }
            t => return Err(DecodeError::BadTag("instruction kind", t)),
        };
        decoded.push(d);
    }

    // Rebuild through the program builder, re-deriving labels and callees.
    let mut b = ProgramBuilder::new();
    let mut labels: HashMap<u32, crate::Label> = HashMap::new();
    for d in &decoded {
        if let Decoded::Jump(_, target) = d {
            labels.entry(*target).or_insert_with(|| b.new_label());
        }
    }
    let mut idx = 0u32;
    for (k, name) in names.iter().enumerate() {
        b.begin_func(name);
        for _ in 0..lens[k] {
            if let Some(label) = labels.get(&idx) {
                b.bind_label(*label);
            }
            match &decoded[idx as usize] {
                Decoded::Plain(op, kind) => {
                    b.inst(*op, kind.clone());
                }
                Decoded::Jump(op, target) => {
                    b.jump(*op, labels[target]);
                }
                Decoded::CallDirect(f) => {
                    b.call_direct(FuncId(*f));
                }
                Decoded::CallExtern(k) => {
                    b.call_extern(*k);
                }
                Decoded::CallIndirect(o) => {
                    b.call_indirect(*o);
                }
                Decoded::Ret => {
                    b.ret();
                }
            }
            idx += 1;
        }
        b.end_func();
    }
    b.set_entry(&names[entry as usize]);
    b.finish().map_err(|e| DecodeError::Malformed(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Program {
        crate::parse_program(
            "func main {\n\
                 mov esi, [74404h]\n\
                 cmp esi, 1\n\
                 jae .skip\n\
                 push esi\n\
                 call helper\n\
             .skip:\n\
                 ret\n\
             }\n\
             func helper {\n\
                 call malloc\n\
                 ret\n\
             }\n\
             entry main",
        )
        .expect("sample parses")
    }

    #[test]
    fn image_round_trip_preserves_everything() {
        let p = sample();
        let image = assemble(&p);
        assert_eq!(&image[..4], MAGIC);
        let q = disassemble(&image).expect("decodes");
        assert_eq!(p.num_insts(), q.num_insts());
        assert_eq!(p.funcs().len(), q.funcs().len());
        assert_eq!(p.func(p.entry_func()).name, q.func(q.entry_func()).name);
        for i in 0..p.num_insts() as u32 {
            let id = InstId(i);
            assert_eq!(p.inst(id).opcode, q.inst(id).opcode, "opcode of I{i}");
            assert_eq!(p.inst(id).kind, q.inst(id).kind, "kind of I{i}");
            assert_eq!(p.cfg_succs(id), q.cfg_succs(id), "edges of I{i}");
        }
        assert!(q.func_allocates(q.func_by_name("helper").unwrap().id));
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert!(matches!(disassemble(b"NOPE"), Err(DecodeError::BadMagic)));
        assert!(matches!(disassemble(b"TI"), Err(DecodeError::Truncated)));
    }

    #[test]
    fn bad_version_is_rejected() {
        let mut image = assemble(&sample());
        image[4] = 0xFF;
        assert!(matches!(disassemble(&image), Err(DecodeError::BadVersion(_))));
    }

    #[test]
    fn truncation_is_detected() {
        let image = assemble(&sample());
        for cut in [5, 12, 20, image.len() - 1] {
            let e = disassemble(&image[..cut]);
            assert!(e.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn corrupted_tags_are_rejected_not_panicking() {
        let image = assemble(&sample());
        // Flip every byte one at a time; decoding must never panic.
        for k in 0..image.len() {
            let mut bad = image.clone();
            bad[k] ^= 0xA5;
            let _ = disassemble(&bad);
        }
    }
}
