//! x86 general-purpose registers.
//!
//! The paper's language (Section III-A, eq. 1) distinguishes the frame pointer
//! `fp` and stack pointer `sp` from every other register; on x86 these are
//! `ebp` and `esp`. We model the eight 32-bit general-purpose registers, which
//! is the register file the MSVC x86 code in the paper's Figures 1 and 2 uses.

use serde::{Deserialize, Serialize};

/// A 32-bit x86 general-purpose register.
///
/// `Ebp` plays the role of the paper's `fp` and `Esp` of `sp` (see
/// [`Reg::is_frame`] / [`Reg::is_stack`]). All other registers are "ordinary"
/// registers `r ∉ {fp, sp}` in the inference rules of Figure 4.
///
/// # Examples
///
/// ```
/// use tiara_ir::Reg;
///
/// assert!(Reg::Ebp.is_frame());
/// assert!(Reg::Esp.is_stack());
/// assert!(!Reg::Eax.is_pointer_reg());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Reg {
    /// Accumulator; holds return values.
    Eax,
    /// Base register.
    Ebx,
    /// Counter register.
    Ecx,
    /// Data register.
    Edx,
    /// Source index.
    Esi,
    /// Destination index.
    Edi,
    /// Frame pointer (`fp` in the paper).
    Ebp,
    /// Stack pointer (`sp` in the paper).
    Esp,
}

impl Reg {
    /// All registers, in encoding order.
    pub const ALL: [Reg; 8] =
        [Reg::Eax, Reg::Ebx, Reg::Ecx, Reg::Edx, Reg::Esi, Reg::Edi, Reg::Ebp, Reg::Esp];

    /// The ordinary (non-`fp`/`sp`) registers usable for value computation.
    pub const GENERAL: [Reg; 6] = [Reg::Eax, Reg::Ebx, Reg::Ecx, Reg::Edx, Reg::Esi, Reg::Edi];

    /// Returns `true` if this is the frame pointer `fp` (`ebp`).
    #[inline]
    pub fn is_frame(self) -> bool {
        self == Reg::Ebp
    }

    /// Returns `true` if this is the stack pointer `sp` (`esp`).
    #[inline]
    pub fn is_stack(self) -> bool {
        self == Reg::Esp
    }

    /// Returns `true` if this register is `fp` or `sp`, i.e. the registers the
    /// rules of Figure 4 strongly update (`r ∈ {fp, sp}`).
    #[inline]
    pub fn is_pointer_reg(self) -> bool {
        self.is_frame() || self.is_stack()
    }

    /// A dense index in `0..8`, used to key per-register tables.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The inverse of [`Reg::index`].
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 8`.
    #[inline]
    pub fn from_index(idx: usize) -> Reg {
        Self::ALL[idx]
    }

    /// The conventional assembly mnemonic, lowercase.
    pub fn name(self) -> &'static str {
        match self {
            Reg::Eax => "eax",
            Reg::Ebx => "ebx",
            Reg::Ecx => "ecx",
            Reg::Edx => "edx",
            Reg::Esi => "esi",
            Reg::Edi => "edi",
            Reg::Ebp => "ebp",
            Reg::Esp => "esp",
        }
    }
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for r in Reg::ALL {
            assert_eq!(Reg::from_index(r.index()), r);
        }
    }

    #[test]
    fn pointer_regs_are_exactly_ebp_esp() {
        let ptrs: Vec<Reg> = Reg::ALL.into_iter().filter(|r| r.is_pointer_reg()).collect();
        assert_eq!(ptrs, vec![Reg::Ebp, Reg::Esp]);
    }

    #[test]
    fn general_excludes_pointer_regs() {
        for r in Reg::GENERAL {
            assert!(!r.is_pointer_reg(), "{r} must not be fp/sp");
        }
        assert_eq!(Reg::GENERAL.len() + 2, Reg::ALL.len());
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Reg::Eax.to_string(), "eax");
        assert_eq!(Reg::Ebp.to_string(), "ebp");
    }
}
