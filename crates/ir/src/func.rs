//! Functions: contiguous instruction ranges with an entry point.

use crate::{FuncId, InstId};
use serde::{Deserialize, Serialize};

/// A function in a binary program.
///
/// Instructions of a function occupy a contiguous index range in the owning
/// [`crate::Program`]; the entry is the first instruction of the range.
/// In a stripped COTS binary function names are not available — the name here
/// is the *synthetic* symbol kept for diagnostics and tests (IDA Pro shows
/// recovered names like `std::_List_buy<int>::_Buynode` for statically-linked
/// template code, which is how the paper's Figure 1 displays them).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Function {
    /// This function's id.
    pub id: FuncId,
    /// Diagnostic symbol name.
    pub name: String,
    /// First instruction index (the entry point).
    pub start: InstId,
    /// One past the last instruction index.
    pub end: InstId,
}

impl Function {
    /// The entry instruction.
    #[inline]
    pub fn entry(&self) -> InstId {
        self.start
    }

    /// Number of instructions in the function.
    #[inline]
    pub fn len(&self) -> usize {
        (self.end.0 - self.start.0) as usize
    }

    /// Returns `true` if the function has no instructions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Iterates over the instruction ids of this function.
    pub fn inst_ids(&self) -> impl Iterator<Item = InstId> + '_ {
        (self.start.0..self.end.0).map(InstId)
    }

    /// Returns `true` if `id` belongs to this function.
    #[inline]
    pub fn contains(&self, id: InstId) -> bool {
        self.start <= id && id < self.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Function {
        Function { id: FuncId(0), name: "main".to_owned(), start: InstId(3), end: InstId(7) }
    }

    #[test]
    fn len_and_contains() {
        let f = sample();
        assert_eq!(f.len(), 4);
        assert!(!f.is_empty());
        assert!(f.contains(InstId(3)));
        assert!(f.contains(InstId(6)));
        assert!(!f.contains(InstId(7)));
        assert!(!f.contains(InstId(2)));
    }

    #[test]
    fn inst_ids_cover_range() {
        let f = sample();
        let ids: Vec<u32> = f.inst_ids().map(|i| i.0).collect();
        assert_eq!(ids, vec![3, 4, 5, 6]);
    }
}
