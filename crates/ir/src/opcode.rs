//! Concrete x86 opcodes carried by IR instructions.
//!
//! The slicer works over the *semantic* instruction forms of the paper's small
//! language ([`crate::InstKind`]), but the GCN feature encoding (Section
//! III-B1, feature `F2`) needs the concrete opcode: a 12-bit binary
//! representation of the opcode's numeric id, assigned so that "opcodes with
//! similar semantics are close together (e.g. push/pushaw/pusha assigned with
//! 143/144/145)". We follow the same design: mnemonics are grouped by family
//! and family members get adjacent ids.

use serde::{Deserialize, Serialize};

/// A concrete x86 mnemonic.
///
/// The numeric id ([`Opcode::id`]) feeds feature `F2` of the instruction
/// encoding; ids are stable and grouped by semantic family, mirroring IDA
/// Pro's opcode-id layout that the paper relies on.
///
/// # Examples
///
/// ```
/// use tiara_ir::Opcode;
///
/// // Family members have adjacent ids, like IDA's push/pusha/pushaw.
/// assert_eq!(Opcode::Pusha.id(), Opcode::Push.id() + 1);
/// assert!(Opcode::Call.id() < (1 << 12), "must fit in 12 bits");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[non_exhaustive]
#[allow(missing_docs)] // variants are the standard x86 mnemonics
pub enum Opcode {
    // --- data movement family (ids 20..) ---
    Mov,
    Movzx,
    Movsx,
    Lea,
    Xchg,
    Cmovcc,
    // --- stack family (ids 143.., matching the paper's example ids) ---
    Push,
    Pusha,
    Pushaw,
    Pop,
    Popa,
    Popaw,
    // --- arithmetic family (ids 200..) ---
    Add,
    Adc,
    Sub,
    Sbb,
    Inc,
    Dec,
    Neg,
    Mul,
    Imul,
    Div,
    Idiv,
    // --- bitwise family (ids 230..) ---
    And,
    Or,
    Xor,
    Not,
    Shl,
    Shr,
    Sar,
    Rol,
    Ror,
    // --- comparison / test family (ids 260..) ---
    Cmp,
    Test,
    // --- control flow family (ids 300..) ---
    Jmp,
    Je,
    Jne,
    Jb,
    Jae,
    Jbe,
    Ja,
    Jl,
    Jge,
    Jle,
    Jg,
    Js,
    Jns,
    Call,
    Ret,
    Leave,
    // --- misc family (ids 400..) ---
    Nop,
    Cdq,
    Sete,
    Setne,
    Int3,
}

impl Opcode {
    /// Every opcode, in id order.
    pub const ALL: [Opcode; 51] = [
        Opcode::Mov,
        Opcode::Movzx,
        Opcode::Movsx,
        Opcode::Lea,
        Opcode::Xchg,
        Opcode::Cmovcc,
        Opcode::Push,
        Opcode::Pusha,
        Opcode::Pushaw,
        Opcode::Pop,
        Opcode::Popa,
        Opcode::Popaw,
        Opcode::Add,
        Opcode::Adc,
        Opcode::Sub,
        Opcode::Sbb,
        Opcode::Inc,
        Opcode::Dec,
        Opcode::Neg,
        Opcode::Mul,
        Opcode::Imul,
        Opcode::Div,
        Opcode::Idiv,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Not,
        Opcode::Shl,
        Opcode::Shr,
        Opcode::Sar,
        Opcode::Rol,
        Opcode::Ror,
        Opcode::Cmp,
        Opcode::Test,
        Opcode::Jmp,
        Opcode::Je,
        Opcode::Jne,
        Opcode::Jb,
        Opcode::Jae,
        Opcode::Jbe,
        Opcode::Ja,
        Opcode::Jl,
        Opcode::Jge,
        Opcode::Jle,
        Opcode::Jg,
        Opcode::Js,
        Opcode::Jns,
        Opcode::Call,
        Opcode::Ret,
        Opcode::Leave,
        Opcode::Nop,
    ];

    /// The IDA-style numeric id of this opcode. Fits in 12 bits; family
    /// members are adjacent.
    pub fn id(self) -> u16 {
        match self {
            Opcode::Mov => 20,
            Opcode::Movzx => 21,
            Opcode::Movsx => 22,
            Opcode::Lea => 23,
            Opcode::Xchg => 24,
            Opcode::Cmovcc => 25,
            Opcode::Push => 143,
            Opcode::Pusha => 144,
            Opcode::Pushaw => 145,
            Opcode::Pop => 146,
            Opcode::Popa => 147,
            Opcode::Popaw => 148,
            Opcode::Add => 200,
            Opcode::Adc => 201,
            Opcode::Sub => 202,
            Opcode::Sbb => 203,
            Opcode::Inc => 204,
            Opcode::Dec => 205,
            Opcode::Neg => 206,
            Opcode::Mul => 207,
            Opcode::Imul => 208,
            Opcode::Div => 209,
            Opcode::Idiv => 210,
            Opcode::And => 230,
            Opcode::Or => 231,
            Opcode::Xor => 232,
            Opcode::Not => 233,
            Opcode::Shl => 234,
            Opcode::Shr => 235,
            Opcode::Sar => 236,
            Opcode::Rol => 237,
            Opcode::Ror => 238,
            Opcode::Cmp => 260,
            Opcode::Test => 261,
            Opcode::Jmp => 300,
            Opcode::Je => 301,
            Opcode::Jne => 302,
            Opcode::Jb => 303,
            Opcode::Jae => 304,
            Opcode::Jbe => 305,
            Opcode::Ja => 306,
            Opcode::Jl => 307,
            Opcode::Jge => 308,
            Opcode::Jle => 309,
            Opcode::Jg => 310,
            Opcode::Js => 311,
            Opcode::Jns => 312,
            Opcode::Call => 340,
            Opcode::Ret => 341,
            Opcode::Leave => 342,
            Opcode::Nop => 400,
            Opcode::Cdq => 401,
            Opcode::Sete => 402,
            Opcode::Setne => 403,
            Opcode::Int3 => 404,
        }
    }

    /// The assembly mnemonic, lowercase.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::Mov => "mov",
            Opcode::Movzx => "movzx",
            Opcode::Movsx => "movsx",
            Opcode::Lea => "lea",
            Opcode::Xchg => "xchg",
            Opcode::Cmovcc => "cmov",
            Opcode::Push => "push",
            Opcode::Pusha => "pusha",
            Opcode::Pushaw => "pushaw",
            Opcode::Pop => "pop",
            Opcode::Popa => "popa",
            Opcode::Popaw => "popaw",
            Opcode::Add => "add",
            Opcode::Adc => "adc",
            Opcode::Sub => "sub",
            Opcode::Sbb => "sbb",
            Opcode::Inc => "inc",
            Opcode::Dec => "dec",
            Opcode::Neg => "neg",
            Opcode::Mul => "mul",
            Opcode::Imul => "imul",
            Opcode::Div => "div",
            Opcode::Idiv => "idiv",
            Opcode::And => "and",
            Opcode::Or => "or",
            Opcode::Xor => "xor",
            Opcode::Not => "not",
            Opcode::Shl => "shl",
            Opcode::Shr => "shr",
            Opcode::Sar => "sar",
            Opcode::Rol => "rol",
            Opcode::Ror => "ror",
            Opcode::Cmp => "cmp",
            Opcode::Test => "test",
            Opcode::Jmp => "jmp",
            Opcode::Je => "je",
            Opcode::Jne => "jne",
            Opcode::Jb => "jb",
            Opcode::Jae => "jae",
            Opcode::Jbe => "jbe",
            Opcode::Ja => "ja",
            Opcode::Jl => "jl",
            Opcode::Jge => "jge",
            Opcode::Jle => "jle",
            Opcode::Jg => "jg",
            Opcode::Js => "js",
            Opcode::Jns => "jns",
            Opcode::Call => "call",
            Opcode::Ret => "ret",
            Opcode::Leave => "leave",
            Opcode::Nop => "nop",
            Opcode::Cdq => "cdq",
            Opcode::Sete => "sete",
            Opcode::Setne => "setne",
            Opcode::Int3 => "int3",
        }
    }

    /// Returns `true` for conditional jump opcodes (`je`, `jne`, …).
    pub fn is_conditional_jump(self) -> bool {
        matches!(
            self,
            Opcode::Je
                | Opcode::Jne
                | Opcode::Jb
                | Opcode::Jae
                | Opcode::Jbe
                | Opcode::Ja
                | Opcode::Jl
                | Opcode::Jge
                | Opcode::Jle
                | Opcode::Jg
                | Opcode::Js
                | Opcode::Jns
        )
    }
}

impl std::fmt::Display for Opcode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn ids_fit_in_twelve_bits() {
        for op in Opcode::ALL {
            assert!(op.id() < (1 << 12), "{op} id {} exceeds 12 bits", op.id());
        }
    }

    #[test]
    fn ids_are_unique() {
        let ids: BTreeSet<u16> = Opcode::ALL.iter().map(|o| o.id()).collect();
        assert_eq!(ids.len(), Opcode::ALL.len());
    }

    #[test]
    fn push_family_matches_paper_ids() {
        // Section III-B1 example: push/pushaw/pusha assigned 143/144/145.
        assert_eq!(Opcode::Push.id(), 143);
        assert_eq!(Opcode::Pusha.id(), 144);
        assert_eq!(Opcode::Pushaw.id(), 145);
    }

    #[test]
    fn conditional_jumps_classified() {
        assert!(Opcode::Jae.is_conditional_jump());
        assert!(!Opcode::Jmp.is_conditional_jump());
        assert!(!Opcode::Call.is_conditional_jump());
    }
}
