//! Instructions of the paper's small language (Section III-A, eq. 1):
//!
//! ```text
//! I := mov opr1, opr2 | op⊕ opr1, opr2 | use ... oprk ... | push r | pop r
//! ```
//!
//! plus explicit `call`/`ret` markers. The paper models a call as a `push`
//! followed by a `use` (jmp) and a return as a `pop` followed by a `use`, but
//! notes that call instructions are *flagged* (by IDA Pro) so that the slicer
//! can record return addresses and proceed context-sensitively. We keep the
//! flags as first-class instruction kinds; the slicer implements the
//! push+jmp / pop+jmp semantics itself.

use crate::{Opcode, Operand};
use serde::{Deserialize, Serialize};

/// A dense instruction identifier: the index of the instruction in its
/// [`crate::Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InstId(pub u32);

impl InstId {
    /// The index as `usize`, for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for InstId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "I{}", self.0)
    }
}

/// A dense function identifier: the index of the function in its
/// [`crate::Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FuncId(pub u32);

impl FuncId {
    /// The index as `usize`, for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for FuncId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "F{}", self.0)
    }
}

/// The binary arithmetic operator `⊕` of an `op⊕` instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// Addition (`add`, `inc`).
    Add,
    /// Subtraction (`sub`, `dec`).
    Sub,
    /// Multiplication (`imul`).
    Mul,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift.
    Shl,
    /// Logical right shift.
    Shr,
}

impl BinOp {
    /// Applies the operator to two concrete constants, wrapping on overflow
    /// (matching two's-complement machine arithmetic).
    pub fn apply(self, a: i64, b: i64) -> i64 {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl((b & 31) as u32),
            BinOp::Shr => ((a as u64).wrapping_shr((b & 31) as u32)) as i64,
        }
    }
}

/// The target of a `call` instruction.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CallTarget {
    /// A direct call to a function in the same binary.
    Direct(FuncId),
    /// A call to a named external routine (an import), e.g. `malloc`.
    External(ExternKind),
    /// An indirect call through an operand, e.g.
    /// `call dword ptr [_Xlength_error (073034h)]`.
    Indirect(Operand),
}

/// The class of an external routine, as resolved from the import table.
///
/// The feature encoding (Section III-B1) cares about heap allocation
/// (`F5`) and heap free (`F6`) routines; everything else is opaque.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExternKind {
    /// `malloc` / `operator new` style heap allocation.
    Malloc,
    /// `free` / `operator delete` style heap release.
    Free,
    /// `realloc`: both allocates and frees.
    Realloc,
    /// Any other external (`memcpy`, `_Xlength_error`, …).
    Other,
}

impl ExternKind {
    /// Returns `true` if the routine allocates heap memory.
    #[inline]
    pub fn allocates(self) -> bool {
        matches!(self, ExternKind::Malloc | ExternKind::Realloc)
    }

    /// Returns `true` if the routine frees heap memory.
    #[inline]
    pub fn frees(self) -> bool {
        matches!(self, ExternKind::Free | ExternKind::Realloc)
    }
}

/// The semantic form of an instruction in the paper's language.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstKind {
    /// `mov opr1, opr2`: moves a value from `opr2` to `opr1`.
    Mov {
        /// Destination operand.
        dst: Operand,
        /// Source operand.
        src: Operand,
    },
    /// `op⊕ opr1, opr2`: computes `opr1 ⊕ opr2` and stores it in `opr1`.
    Op {
        /// The arithmetic operator.
        op: BinOp,
        /// Destination (and left) operand.
        dst: Operand,
        /// Right operand.
        src: Operand,
    },
    /// `use ... oprk ...`: reads the operands without side effects
    /// (conditional jumps, `cmp`, `test`, …).
    Use {
        /// The operands read.
        oprs: Vec<Operand>,
    },
    /// `push opr`: pushes a value onto the call stack.
    Push {
        /// The value pushed.
        src: Operand,
    },
    /// `pop opr`: pops the top of the call stack into the operand.
    Pop {
        /// The destination.
        dst: Operand,
    },
    /// A call, modeled as push-return-address + jmp.
    Call {
        /// The callee.
        target: CallTarget,
    },
    /// A return, modeled as pop-return-address + jmp.
    Ret,
}

impl InstKind {
    /// The operands of the instruction, in (dst, src) order where applicable.
    pub fn operands(&self) -> Vec<Operand> {
        match self {
            InstKind::Mov { dst, src } | InstKind::Op { dst, src, .. } => vec![*dst, *src],
            InstKind::Use { oprs } => oprs.clone(),
            InstKind::Push { src } => vec![*src],
            InstKind::Pop { dst } => vec![*dst],
            InstKind::Call { target } => match target {
                CallTarget::Indirect(opr) => vec![*opr],
                CallTarget::Direct(_) | CallTarget::External(_) => Vec::new(),
            },
            InstKind::Ret => Vec::new(),
        }
    }

    /// Returns `true` if any operand is an indirect memory access (`[loc]`);
    /// such instructions decay faith faster (Algorithm 1, line 5).
    pub fn uses_indirect_addressing(&self) -> bool {
        self.operands().iter().any(|o| o.is_indirect())
    }

    /// Returns `true` for `push`/`pop` (including the implicit push/pop of
    /// `call`/`ret`), the middle decay tier of Algorithm 1.
    pub fn is_stack_op(&self) -> bool {
        matches!(
            self,
            InstKind::Push { .. } | InstKind::Pop { .. } | InstKind::Call { .. } | InstKind::Ret
        )
    }
}

/// One instruction of a binary program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Inst {
    /// The virtual address of the instruction in the binary.
    pub addr: u64,
    /// The concrete x86 mnemonic (for feature `F2`).
    pub opcode: Opcode,
    /// The semantic form consumed by the slicer.
    pub kind: InstKind,
}

impl Inst {
    /// Creates an instruction.
    pub fn new(addr: u64, opcode: Opcode, kind: InstKind) -> Inst {
        Inst { addr, opcode, kind }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reg;

    #[test]
    fn binop_apply_wraps() {
        assert_eq!(BinOp::Add.apply(i64::MAX, 1), i64::MIN);
        assert_eq!(BinOp::Sub.apply(3, 5), -2);
        assert_eq!(BinOp::Shl.apply(1, 4), 16);
        assert_eq!(BinOp::Shr.apply(16, 4), 1);
        assert_eq!(BinOp::Xor.apply(0b1100, 0b1010), 0b0110);
    }

    #[test]
    fn extern_kind_classification() {
        assert!(ExternKind::Malloc.allocates());
        assert!(!ExternKind::Malloc.frees());
        assert!(ExternKind::Realloc.allocates() && ExternKind::Realloc.frees());
        assert!(!ExternKind::Other.allocates() && !ExternKind::Other.frees());
    }

    #[test]
    fn indirect_addressing_detection() {
        let direct = InstKind::Mov { dst: Operand::reg(Reg::Eax), src: Operand::reg(Reg::Ebx) };
        assert!(!direct.uses_indirect_addressing());
        let indirect =
            InstKind::Mov { dst: Operand::reg(Reg::Eax), src: Operand::mem_reg(Reg::Esi, 4) };
        assert!(indirect.uses_indirect_addressing());
    }

    #[test]
    fn stack_ops_include_call_ret() {
        assert!(InstKind::Push { src: Operand::reg(Reg::Eax) }.is_stack_op());
        assert!(InstKind::Ret.is_stack_op());
        assert!(!InstKind::Use { oprs: vec![] }.is_stack_op());
    }

    #[test]
    fn operand_lists() {
        let k = InstKind::Op {
            op: BinOp::Sub,
            dst: Operand::reg(Reg::Ebx),
            src: Operand::reg(Reg::Ecx),
        };
        assert_eq!(k.operands().len(), 2);
        let call = InstKind::Call { target: CallTarget::Indirect(Operand::mem_abs(0x73034u64, 0)) };
        assert_eq!(call.operands().len(), 1);
    }
}
