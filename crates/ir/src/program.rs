//! Whole binary programs: instructions, functions, and the single CFG
//! `G = (I, E)` of Section III-A, plus the auxiliary facts IDA Pro provides
//! in the paper's pipeline (call/jump targets, heap-routine reachability).

use crate::{CallTarget, ExternKind, FuncId, Function, Inst, InstId, InstKind, Opcode, Operand};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A label used by [`ProgramBuilder`] for forward jump references.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Errors produced by [`ProgramBuilder::finish`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A jump referenced a label that was never bound.
    UnboundLabel {
        /// The instruction with the dangling jump.
        inst: InstId,
    },
    /// A call referenced a function name that does not exist.
    UnknownCallee {
        /// The instruction with the dangling call.
        inst: InstId,
        /// The unresolved name.
        name: String,
    },
    /// `begin_func` was called while another function was still open.
    NestedFunction {
        /// The name of the function being opened.
        name: String,
    },
    /// An instruction was emitted outside of any function.
    InstOutsideFunction,
    /// `finish` was called with a function still open.
    UnclosedFunction,
    /// Two functions share a name so named calls would be ambiguous.
    DuplicateFunctionName {
        /// The duplicated name.
        name: String,
    },
    /// The program has no functions.
    EmptyProgram,
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::UnboundLabel { inst } => {
                write!(f, "jump at {inst} targets an unbound label")
            }
            BuildError::UnknownCallee { inst, name } => {
                write!(f, "call at {inst} targets unknown function `{name}`")
            }
            BuildError::NestedFunction { name } => {
                write!(f, "begin_func(`{name}`) while another function is open")
            }
            BuildError::InstOutsideFunction => write!(f, "instruction emitted outside a function"),
            BuildError::UnclosedFunction => write!(f, "finish called with an open function"),
            BuildError::DuplicateFunctionName { name } => {
                write!(f, "duplicate function name `{name}`")
            }
            BuildError::EmptyProgram => write!(f, "program has no functions"),
        }
    }
}

impl std::error::Error for BuildError {}

/// A complete binary program.
///
/// Holds the instruction list, the function table, and two successor
/// relations:
///
/// * the **flow** relation: intra-procedural control flow where a `call`
///   falls through to its return site (what a source-level CFG looks like);
/// * the **cfg** relation: the paper's single CFG `G = (I, E)` in which a
///   direct `call` has an edge to the callee entry and `ret` has edges to
///   every return site. The slicer traverses this relation but replaces the
///   `ret` edges with the context-sensitive recorded return address.
///
/// # Examples
///
/// ```
/// use tiara_ir::{InstKind, Opcode, Operand, ProgramBuilder, Reg};
///
/// let mut b = ProgramBuilder::new();
/// b.begin_func("main");
/// b.inst(
///     Opcode::Mov,
///     InstKind::Mov { dst: Operand::reg(Reg::Eax), src: Operand::imm(1) },
/// );
/// b.ret();
/// b.end_func();
/// let prog = b.finish()?;
/// assert_eq!(prog.num_insts(), 2);
/// # Ok::<(), tiara_ir::BuildError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Program {
    insts: Vec<Inst>,
    funcs: Vec<Function>,
    inst_func: Vec<FuncId>,
    flow_succs: Vec<Vec<InstId>>,
    cfg_succs: Vec<Vec<InstId>>,
    cfg_preds: Vec<Vec<InstId>>,
    call_jump_target: Vec<bool>,
    fn_allocates: Vec<bool>,
    fn_frees: Vec<bool>,
    entry_func: FuncId,
}

impl Program {
    /// The instructions of the program.
    #[inline]
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// The instruction with the given id.
    #[inline]
    pub fn inst(&self, id: InstId) -> &Inst {
        &self.insts[id.index()]
    }

    /// Number of instructions.
    #[inline]
    pub fn num_insts(&self) -> usize {
        self.insts.len()
    }

    /// The function table.
    #[inline]
    pub fn funcs(&self) -> &[Function] {
        &self.funcs
    }

    /// The function with the given id.
    #[inline]
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.index()]
    }

    /// The function containing an instruction.
    #[inline]
    pub fn func_of(&self, id: InstId) -> FuncId {
        self.inst_func[id.index()]
    }

    /// Looks up a function by its diagnostic name.
    pub fn func_by_name(&self, name: &str) -> Option<&Function> {
        self.funcs.iter().find(|f| f.name == name)
    }

    /// The program entry function (`main`).
    #[inline]
    pub fn entry_func(&self) -> FuncId {
        self.entry_func
    }

    /// The program entry instruction `I0`.
    #[inline]
    pub fn entry(&self) -> InstId {
        self.funcs[self.entry_func.index()].entry()
    }

    /// Intra-procedural successors where a call falls through to its return
    /// site.
    #[inline]
    pub fn flow_succs(&self, id: InstId) -> &[InstId] {
        &self.flow_succs[id.index()]
    }

    /// Successors in the paper's single CFG `G = (I, E)`.
    #[inline]
    pub fn cfg_succs(&self, id: InstId) -> &[InstId] {
        &self.cfg_succs[id.index()]
    }

    /// Predecessors in the paper's single CFG.
    #[inline]
    pub fn cfg_preds(&self, id: InstId) -> &[InstId] {
        &self.cfg_preds[id.index()]
    }

    /// Whether the instruction is a direct target of a call or jump
    /// (feature `F1` of the encoding).
    #[inline]
    pub fn is_call_jump_target(&self, id: InstId) -> bool {
        self.call_jump_target[id.index()]
    }

    /// Whether a function calls a heap allocation routine, directly or along
    /// any call chain (feature `F5`).
    #[inline]
    pub fn func_allocates(&self, id: FuncId) -> bool {
        self.fn_allocates[id.index()]
    }

    /// Whether a function calls a heap free routine, directly or along any
    /// call chain (feature `F6`).
    #[inline]
    pub fn func_frees(&self, id: FuncId) -> bool {
        self.fn_frees[id.index()]
    }

    /// Whether a *call instruction* reaches a heap allocation routine.
    ///
    /// Returns `false` for non-call instructions and for indirect calls
    /// (IDA provides no information there; the paper uses the default 0).
    pub fn call_allocates(&self, id: InstId) -> bool {
        match &self.inst(id).kind {
            InstKind::Call { target } => match target {
                CallTarget::External(k) => k.allocates(),
                CallTarget::Direct(f) => self.func_allocates(*f),
                CallTarget::Indirect(_) => false,
            },
            _ => false,
        }
    }

    /// Whether a *call instruction* reaches a heap free routine.
    pub fn call_frees(&self, id: InstId) -> bool {
        match &self.inst(id).kind {
            InstKind::Call { target } => match target {
                CallTarget::External(k) => k.frees(),
                CallTarget::Direct(f) => self.func_frees(*f),
                CallTarget::Indirect(_) => false,
            },
            _ => false,
        }
    }

    /// The return site of a call instruction: the next instruction in the
    /// same function, if any.
    pub fn return_site(&self, call: InstId) -> Option<InstId> {
        let f = self.func(self.func_of(call));
        let next = InstId(call.0 + 1);
        f.contains(next).then_some(next)
    }

    /// Total number of CFG edges.
    pub fn num_cfg_edges(&self) -> usize {
        self.cfg_succs.iter().map(Vec::len).sum()
    }

    /// The program's structural fields, exposed for mutation.
    ///
    /// Pair with [`Program::from_raw_unchecked`] to build deliberately
    /// damaged programs for verifier tests (the one thing a `Program` whose
    /// invariants were upheld at construction can never become).
    pub fn to_raw(&self) -> RawProgram {
        RawProgram {
            insts: self.insts.clone(),
            funcs: self.funcs.clone(),
            inst_func: self.inst_func.clone(),
            flow_succs: self.flow_succs.clone(),
            cfg_succs: self.cfg_succs.clone(),
            cfg_preds: self.cfg_preds.clone(),
            call_jump_target: self.call_jump_target.clone(),
            fn_allocates: self.fn_allocates.clone(),
            fn_frees: self.fn_frees.clone(),
            entry_func: self.entry_func,
        }
    }

    /// Reassembles a program from raw fields **without any validation** —
    /// the structural equivalent of deserializing hand-edited JSON. The
    /// result may violate every CFG invariant; feed it only to
    /// `tiara_verify` (which must reject it), never to the pipeline.
    pub fn from_raw_unchecked(raw: RawProgram) -> Program {
        Program {
            insts: raw.insts,
            funcs: raw.funcs,
            inst_func: raw.inst_func,
            flow_succs: raw.flow_succs,
            cfg_succs: raw.cfg_succs,
            cfg_preds: raw.cfg_preds,
            call_jump_target: raw.call_jump_target,
            fn_allocates: raw.fn_allocates,
            fn_frees: raw.fn_frees,
            entry_func: raw.entry_func,
        }
    }
}

/// The public mirror of [`Program`]'s private fields (see
/// [`Program::to_raw`]). Field meanings match the originals one-to-one;
/// nothing here is checked.
#[derive(Debug, Clone)]
pub struct RawProgram {
    /// The instruction list.
    pub insts: Vec<Inst>,
    /// The function table (ranges should tile `insts`).
    pub funcs: Vec<Function>,
    /// Owning function of each instruction.
    pub inst_func: Vec<FuncId>,
    /// Intra-procedural flow successors per instruction.
    pub flow_succs: Vec<Vec<InstId>>,
    /// CFG successors per instruction.
    pub cfg_succs: Vec<Vec<InstId>>,
    /// CFG predecessors per instruction.
    pub cfg_preds: Vec<Vec<InstId>>,
    /// Whether each instruction is a call/jump target.
    pub call_jump_target: Vec<bool>,
    /// Whether each function allocates.
    pub fn_allocates: Vec<bool>,
    /// Whether each function frees.
    pub fn_frees: Vec<bool>,
    /// The entry function.
    pub entry_func: FuncId,
}

#[derive(Debug)]
struct OpenFunc {
    start: u32,
}

#[derive(Debug, Clone, Copy)]
struct PendingJump {
    inst: u32,
    label: Label,
    conditional: bool,
}

/// Incremental builder for [`Program`].
///
/// Functions are emitted one at a time; jumps use [`Label`]s that may be bound
/// before or after the jump is emitted, and calls may reference functions by
/// name before they are built.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    insts: Vec<Inst>,
    funcs: Vec<Function>,
    inst_func: Vec<FuncId>,
    open: Option<OpenFunc>,
    labels: Vec<Option<u32>>,
    jumps: Vec<PendingJump>,
    named_calls: Vec<(u32, String)>,
    entry_name: Option<String>,
    addr_base: u64,
}

impl ProgramBuilder {
    /// Creates an empty builder with the default address base `0x71000`.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder { addr_base: 0x71000, ..Default::default() }
    }

    /// Sets the virtual address of the first instruction.
    pub fn with_addr_base(mut self, base: u64) -> ProgramBuilder {
        self.addr_base = base;
        self
    }

    /// Marks the named function as the program entry. Defaults to the first
    /// function built.
    pub fn set_entry(&mut self, name: &str) {
        self.entry_name = Some(name.to_owned());
    }

    /// Opens a new function. Its id is returned immediately so recursive and
    /// forward calls can be expressed.
    ///
    /// # Panics
    ///
    /// Panics if a function is already open (a [`BuildError::NestedFunction`]
    /// condition; this is a programming error in the generator).
    pub fn begin_func(&mut self, name: &str) -> FuncId {
        assert!(self.open.is_none(), "begin_func(`{name}`) while another function is open");
        let id = FuncId(self.funcs.len() as u32);
        self.open = Some(OpenFunc { start: self.insts.len() as u32 });
        // Reserve the slot so ids handed out stay stable.
        self.funcs.push(Function {
            id,
            name: name.to_owned(),
            start: InstId(self.insts.len() as u32),
            end: InstId(self.insts.len() as u32),
        });
        id
    }

    /// Closes the currently open function.
    ///
    /// # Panics
    ///
    /// Panics if no function is open.
    pub fn end_func(&mut self) {
        let open = self.open.take().expect("end_func with no open function");
        let id = self.funcs.len() - 1;
        self.funcs[id].start = InstId(open.start);
        self.funcs[id].end = InstId(self.insts.len() as u32);
    }

    /// The id the *next* emitted instruction will get.
    pub fn next_inst_id(&self) -> InstId {
        InstId(self.insts.len() as u32)
    }

    /// The virtual address instruction `id` was (or will be) assigned.
    pub fn inst_addr(&self, id: InstId) -> u64 {
        self.addr_base + 4 * id.0 as u64
    }

    /// Emits an instruction in the open function.
    ///
    /// # Panics
    ///
    /// Panics if no function is open.
    pub fn inst(&mut self, opcode: Opcode, kind: InstKind) -> InstId {
        assert!(self.open.is_some(), "instruction emitted outside a function");
        let id = InstId(self.insts.len() as u32);
        let addr = self.addr_base + 4 * id.0 as u64;
        self.insts.push(Inst::new(addr, opcode, kind));
        self.inst_func.push(FuncId(self.funcs.len() as u32 - 1));
        id
    }

    /// Creates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds a label to the next emitted instruction.
    pub fn bind_label(&mut self, label: Label) {
        self.labels[label.0] = Some(self.insts.len() as u32);
    }

    /// Emits a jump to `label`. Conditional opcodes (`je`, `jae`, …) keep
    /// their fall-through edge; `jmp` does not.
    pub fn jump(&mut self, opcode: Opcode, label: Label) -> InstId {
        // The target operand is patched to the resolved address in `finish`.
        let id = self.inst(opcode, InstKind::Use { oprs: vec![Operand::imm(0)] });
        self.jumps.push(PendingJump {
            inst: id.0,
            label,
            conditional: opcode.is_conditional_jump(),
        });
        id
    }

    /// Emits a direct call to a function by id.
    pub fn call_direct(&mut self, callee: FuncId) -> InstId {
        self.inst(Opcode::Call, InstKind::Call { target: CallTarget::Direct(callee) })
    }

    /// Emits a direct call to a function by name, resolved at
    /// [`ProgramBuilder::finish`].
    pub fn call_named(&mut self, name: &str) -> InstId {
        let id = self
            .inst(Opcode::Call, InstKind::Call { target: CallTarget::External(ExternKind::Other) });
        self.named_calls.push((id.0, name.to_owned()));
        id
    }

    /// Emits a call to an external routine.
    pub fn call_extern(&mut self, kind: ExternKind) -> InstId {
        self.inst(Opcode::Call, InstKind::Call { target: CallTarget::External(kind) })
    }

    /// Emits an indirect call through an operand.
    pub fn call_indirect(&mut self, opr: Operand) -> InstId {
        self.inst(Opcode::Call, InstKind::Call { target: CallTarget::Indirect(opr) })
    }

    /// Emits a `ret`.
    pub fn ret(&mut self) -> InstId {
        self.inst(Opcode::Ret, InstKind::Ret)
    }

    /// Resolves labels and named calls, builds both successor relations and
    /// the auxiliary tables, and returns the finished program.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] if a label is unbound, a named call cannot be
    /// resolved, function names are ambiguous, a function is still open, or
    /// the program is empty.
    pub fn finish(mut self) -> Result<Program, BuildError> {
        if self.open.is_some() {
            return Err(BuildError::UnclosedFunction);
        }
        if self.funcs.is_empty() {
            return Err(BuildError::EmptyProgram);
        }

        let mut by_name: HashMap<String, FuncId> = HashMap::new();
        for f in &self.funcs {
            if by_name.insert(f.name.clone(), f.id).is_some() {
                return Err(BuildError::DuplicateFunctionName { name: f.name.clone() });
            }
        }

        // Resolve named calls.
        let resolved: Vec<(u32, FuncId)> = {
            let mut v = Vec::with_capacity(self.named_calls.len());
            for (inst, name) in &self.named_calls {
                let id = *by_name.get(name).ok_or_else(|| BuildError::UnknownCallee {
                    inst: InstId(*inst),
                    name: name.clone(),
                })?;
                v.push((*inst, id));
            }
            v
        };
        for (inst, callee) in resolved {
            self.insts[inst as usize].kind = InstKind::Call { target: CallTarget::Direct(callee) };
        }

        // Resolve jumps and patch their display operand.
        let mut jump_edges: Vec<(u32, u32, bool)> = Vec::with_capacity(self.jumps.len());
        for j in &self.jumps {
            let target =
                self.labels[j.label.0].ok_or(BuildError::UnboundLabel { inst: InstId(j.inst) })?;
            // A label may be bound at function end; clamp to a real instruction
            // only if one exists.
            if (target as usize) < self.insts.len() {
                jump_edges.push((j.inst, target, j.conditional));
                let addr = self.insts[target as usize].addr;
                self.insts[j.inst as usize].kind =
                    InstKind::Use { oprs: vec![Operand::imm(addr as i64)] };
            }
        }

        let n = self.insts.len();
        let mut flow_succs: Vec<Vec<InstId>> = vec![Vec::new(); n];
        let mut cfg_succs: Vec<Vec<InstId>> = vec![Vec::new(); n];
        let mut call_jump_target = vec![false; n];

        let funcs = std::mem::take(&mut self.funcs);
        // Fall-through edges within each function.
        for f in &funcs {
            for id in f.inst_ids() {
                let i = id.index();
                let next = InstId(id.0 + 1);
                let falls_through = match &self.insts[i].kind {
                    InstKind::Ret => false,
                    InstKind::Use { .. } if self.insts[i].opcode == Opcode::Jmp => false,
                    _ => true,
                };
                if falls_through && f.contains(next) {
                    flow_succs[i].push(next);
                    // In the single CFG, a direct call's edge goes to the
                    // callee instead of the return site.
                    let is_direct_call = matches!(
                        &self.insts[i].kind,
                        InstKind::Call { target: CallTarget::Direct(_) }
                    );
                    if !is_direct_call {
                        cfg_succs[i].push(next);
                    }
                }
            }
        }
        // Jump edges.
        for (src, dst, conditional) in jump_edges {
            let s = src as usize;
            flow_succs[s].push(InstId(dst));
            cfg_succs[s].push(InstId(dst));
            call_jump_target[dst as usize] = true;
            if !conditional {
                // already excluded fall-through above via Jmp opcode check
            }
        }
        // Call and return edges in the single CFG.
        let mut return_sites: Vec<Vec<InstId>> = vec![Vec::new(); funcs.len()];
        for (i, inst) in self.insts.iter().enumerate() {
            if let InstKind::Call { target: CallTarget::Direct(callee) } = &inst.kind {
                let entry = funcs[callee.index()].entry();
                cfg_succs[i].push(entry);
                call_jump_target[entry.index()] = true;
                let next = InstId(i as u32 + 1);
                if funcs[self.inst_func[i].index()].contains(next) {
                    return_sites[callee.index()].push(next);
                }
            }
        }
        for f in &funcs {
            for id in f.inst_ids() {
                if matches!(self.insts[id.index()].kind, InstKind::Ret) {
                    for &site in &return_sites[f.id.index()] {
                        cfg_succs[id.index()].push(site);
                    }
                }
            }
        }

        let mut cfg_preds: Vec<Vec<InstId>> = vec![Vec::new(); n];
        for (i, succs) in cfg_succs.iter().enumerate() {
            for &s in succs {
                cfg_preds[s.index()].push(InstId(i as u32));
            }
        }

        // Heap-routine reachability fixpoint over the direct call graph.
        let nf = funcs.len();
        let mut fn_allocates = vec![false; nf];
        let mut fn_frees = vec![false; nf];
        let mut callees: Vec<Vec<FuncId>> = vec![Vec::new(); nf];
        for (i, inst) in self.insts.iter().enumerate() {
            let owner = self.inst_func[i];
            if let InstKind::Call { target } = &inst.kind {
                match target {
                    CallTarget::External(k) => {
                        fn_allocates[owner.index()] |= k.allocates();
                        fn_frees[owner.index()] |= k.frees();
                    }
                    CallTarget::Direct(f) => callees[owner.index()].push(*f),
                    CallTarget::Indirect(_) => {}
                }
            }
        }
        let mut changed = true;
        while changed {
            changed = false;
            for f in 0..nf {
                for c in &callees[f] {
                    if fn_allocates[c.index()] && !fn_allocates[f] {
                        fn_allocates[f] = true;
                        changed = true;
                    }
                    if fn_frees[c.index()] && !fn_frees[f] {
                        fn_frees[f] = true;
                        changed = true;
                    }
                }
            }
        }

        let entry_func = match &self.entry_name {
            Some(name) => *by_name
                .get(name)
                .ok_or_else(|| BuildError::UnknownCallee { inst: InstId(0), name: name.clone() })?,
            None => FuncId(0),
        };

        Ok(Program {
            insts: self.insts,
            funcs,
            inst_func: self.inst_func,
            flow_succs,
            cfg_succs,
            cfg_preds,
            call_jump_target,
            fn_allocates,
            fn_frees,
            entry_func,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reg;

    fn mov_rr(dst: Reg, src: Reg) -> InstKind {
        InstKind::Mov { dst: Operand::reg(dst), src: Operand::reg(src) }
    }

    #[test]
    fn straight_line_flow() {
        let mut b = ProgramBuilder::new();
        b.begin_func("main");
        let i0 = b.inst(Opcode::Mov, mov_rr(Reg::Eax, Reg::Ebx));
        let i1 = b.inst(Opcode::Mov, mov_rr(Reg::Ecx, Reg::Eax));
        b.ret();
        b.end_func();
        let p = b.finish().unwrap();
        assert_eq!(p.flow_succs(i0), &[i1]);
        assert_eq!(p.cfg_succs(i1), &[InstId(2)]);
        assert!(p.cfg_succs(InstId(2)).is_empty(), "ret with no callers");
    }

    #[test]
    fn conditional_jump_has_two_successors() {
        let mut b = ProgramBuilder::new();
        b.begin_func("main");
        let skip = b.new_label();
        let j = b.jump(Opcode::Jae, skip);
        let mid = b.inst(Opcode::Mov, mov_rr(Reg::Eax, Reg::Ebx));
        b.bind_label(skip);
        let end = b.inst(Opcode::Mov, mov_rr(Reg::Ecx, Reg::Eax));
        b.ret();
        b.end_func();
        let p = b.finish().unwrap();
        let mut succs = p.cfg_succs(j).to_vec();
        succs.sort();
        assert_eq!(succs, vec![mid, end]);
        assert!(p.is_call_jump_target(end));
        assert!(!p.is_call_jump_target(mid));
    }

    #[test]
    fn unconditional_jump_has_no_fallthrough() {
        let mut b = ProgramBuilder::new();
        b.begin_func("main");
        let end_l = b.new_label();
        let j = b.jump(Opcode::Jmp, end_l);
        b.inst(Opcode::Mov, mov_rr(Reg::Eax, Reg::Ebx));
        b.bind_label(end_l);
        let end = b.inst(Opcode::Mov, mov_rr(Reg::Ecx, Reg::Eax));
        b.ret();
        b.end_func();
        let p = b.finish().unwrap();
        assert_eq!(p.cfg_succs(j), &[end]);
    }

    #[test]
    fn call_edges_and_return_edges() {
        let mut b = ProgramBuilder::new();
        b.begin_func("main");
        let call = b.call_named("callee");
        let site = b.inst(Opcode::Mov, mov_rr(Reg::Eax, Reg::Ebx));
        b.ret();
        b.end_func();
        b.begin_func("callee");
        let ce = b.inst(Opcode::Mov, mov_rr(Reg::Edx, Reg::Eax));
        let ret = b.ret();
        b.end_func();
        let p = b.finish().unwrap();
        // Single CFG: call -> callee entry, ret -> return site.
        assert_eq!(p.cfg_succs(call), &[ce]);
        assert_eq!(p.cfg_succs(ret), &[site]);
        // Flow relation: call falls through.
        assert_eq!(p.flow_succs(call), &[site]);
        assert!(p.is_call_jump_target(ce));
        assert_eq!(p.return_site(call), Some(site));
    }

    #[test]
    fn malloc_reachability_is_transitive() {
        let mut b = ProgramBuilder::new();
        b.begin_func("main");
        let c = b.call_named("wrapper");
        b.ret();
        b.end_func();
        b.begin_func("wrapper");
        b.call_extern(ExternKind::Malloc);
        b.ret();
        b.end_func();
        b.begin_func("pure");
        b.ret();
        b.end_func();
        let p = b.finish().unwrap();
        assert!(p.func_allocates(FuncId(0)));
        assert!(p.func_allocates(FuncId(1)));
        assert!(!p.func_allocates(FuncId(2)));
        assert!(!p.func_frees(FuncId(0)));
        assert!(p.call_allocates(c));
        assert!(!p.call_frees(c));
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.begin_func("main");
        let l = b.new_label();
        b.jump(Opcode::Je, l);
        b.ret();
        b.end_func();
        assert!(matches!(b.finish(), Err(BuildError::UnboundLabel { .. })));
    }

    #[test]
    fn unknown_callee_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.begin_func("main");
        b.call_named("nope");
        b.ret();
        b.end_func();
        assert!(matches!(b.finish(), Err(BuildError::UnknownCallee { .. })));
    }

    #[test]
    fn duplicate_function_name_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.begin_func("f");
        b.ret();
        b.end_func();
        b.begin_func("f");
        b.ret();
        b.end_func();
        assert!(matches!(b.finish(), Err(BuildError::DuplicateFunctionName { .. })));
    }

    #[test]
    fn entry_selection() {
        let mut b = ProgramBuilder::new();
        b.begin_func("helper");
        b.ret();
        b.end_func();
        b.begin_func("main");
        b.ret();
        b.end_func();
        b.set_entry("main");
        let p = b.finish().unwrap();
        assert_eq!(p.entry_func(), FuncId(1));
        assert_eq!(p.entry(), InstId(1));
    }

    #[test]
    fn empty_program_is_an_error() {
        let b = ProgramBuilder::new();
        assert!(matches!(b.finish(), Err(BuildError::EmptyProgram)));
    }

    #[test]
    fn addresses_are_monotonic() {
        let mut b = ProgramBuilder::new();
        b.begin_func("main");
        b.inst(Opcode::Mov, mov_rr(Reg::Eax, Reg::Ebx));
        b.inst(Opcode::Mov, mov_rr(Reg::Ebx, Reg::Ecx));
        b.ret();
        b.end_func();
        let p = b.finish().unwrap();
        let addrs: Vec<u64> = p.insts().iter().map(|i| i.addr).collect();
        assert!(addrs.windows(2).all(|w| w[0] < w[1]));
    }
}
