//! Ground-truth type labels: the synthetic equivalent of the PDB debugging
//! information the paper extracts with the Microsoft DIA SDK.
//!
//! The paper labels each variable address with a type
//! `t ∈ T = {t_list, t_vector, t_map, t_primitive}`, "implying that the
//! variable is of type `t` or a pointer to `t` (with one or more levels of
//! indirections)" (Section III-B). All primitive types are deliberately
//! collapsed into one label (Section II).

use crate::{FuncId, MemAddr};
use serde::{Deserialize, Serialize};

/// The set of type labels `T` the classifier predicts.
///
/// The paper evaluates on `{list, vector, map, primitive}` — the
/// representatives of the non-contiguous sequential, contiguous sequential
/// and associative container categories. `Deque` and `Set` extend the label
/// set (the extension experiment; the paper's benchmark suite contains none
/// of them, and the macro-averaged metrics skip classes without test
/// support, so the Table II reproduction is unaffected).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ContainerClass {
    /// `std::list<T>`: non-contiguous sequential container.
    List,
    /// `std::vector<T>`: contiguous sequential container.
    Vector,
    /// `std::map<K, V>`: associative container (red-black tree).
    Map,
    /// `std::deque<T>`: blocked contiguous container (extension label).
    Deque,
    /// `std::set<T>`: keyed red-black tree without values (extension label).
    Set,
    /// Any primitive type (all primitives are one label).
    Primitive,
}

impl ContainerClass {
    /// All labels, in the order used for class indices.
    pub const ALL: [ContainerClass; 6] = [
        ContainerClass::List,
        ContainerClass::Vector,
        ContainerClass::Map,
        ContainerClass::Deque,
        ContainerClass::Set,
        ContainerClass::Primitive,
    ];

    /// The paper's label set (Section IV): the three container categories
    /// plus the collapsed primitive label.
    pub const PAPER: [ContainerClass; 4] = [
        ContainerClass::List,
        ContainerClass::Vector,
        ContainerClass::Map,
        ContainerClass::Primitive,
    ];

    /// Number of classes.
    pub const COUNT: usize = 6;

    /// Dense class index in `0..6`.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            ContainerClass::List => 0,
            ContainerClass::Vector => 1,
            ContainerClass::Map => 2,
            ContainerClass::Deque => 3,
            ContainerClass::Set => 4,
            ContainerClass::Primitive => 5,
        }
    }

    /// The inverse of [`ContainerClass::index`].
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 6`.
    #[inline]
    pub fn from_index(idx: usize) -> ContainerClass {
        Self::ALL[idx]
    }

    /// The C++ name of the label.
    pub fn name(self) -> &'static str {
        match self {
            ContainerClass::List => "std::list",
            ContainerClass::Vector => "std::vector",
            ContainerClass::Map => "std::map",
            ContainerClass::Deque => "std::deque",
            ContainerClass::Set => "std::set",
            ContainerClass::Primitive => "primitive",
        }
    }
}

impl std::fmt::Display for ContainerClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The address of a variable: the slicing criterion `v0`.
///
/// The DIA SDK reports variables either at absolute addresses (globals and
/// statics, like the paper's `l` at `074404h`) or as frame-relative slots
/// (locals, like the paper's `v` at `[ebp+8]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VarAddr {
    /// A global/static at an absolute memory address.
    Global(MemAddr),
    /// A local in a function frame at a fixed `fp`-relative offset.
    Stack {
        /// The function owning the frame.
        func: FuncId,
        /// Byte offset from the frame pointer.
        offset: i64,
    },
    /// A heap object named by its allocation site (the address of the
    /// allocating call instruction). Real PDBs have no such records — this
    /// is the criterion class value-set analysis adds for variables that
    /// never live at a fixed address.
    Heap {
        /// Address of the allocating call instruction.
        site: MemAddr,
    },
}

impl std::fmt::Display for VarAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VarAddr::Global(m) => write!(f, "{m}"),
            VarAddr::Stack { func, offset } => {
                if *offset >= 0 {
                    write!(f, "{func}:[ebp+{offset:X}h]")
                } else {
                    write!(f, "{func}:[ebp-{:X}h]", -offset)
                }
            }
            VarAddr::Heap { site } => write!(f, "heap:{site}"),
        }
    }
}

/// One labeled variable: an address, its ground-truth class, and the pointer
/// indirection depth (0 for a value of type `t`, 1 for `t*`, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VarRecord {
    /// Where the variable lives.
    pub addr: VarAddr,
    /// Its ground-truth label.
    pub class: ContainerClass,
    /// Pointer indirection levels (`0` = the value itself).
    pub ptr_levels: u8,
}

/// The synthetic PDB: the table of labeled variable addresses for a binary.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DebugInfo {
    /// All labeled variables, in generation order.
    pub vars: Vec<VarRecord>,
}

impl DebugInfo {
    /// Creates an empty table.
    pub fn new() -> DebugInfo {
        DebugInfo::default()
    }

    /// Records a labeled variable.
    pub fn record(&mut self, addr: VarAddr, class: ContainerClass, ptr_levels: u8) {
        self.vars.push(VarRecord { addr, class, ptr_levels });
    }

    /// Looks up the label of an address, if known.
    pub fn class_of(&self, addr: VarAddr) -> Option<ContainerClass> {
        self.vars.iter().find(|v| v.addr == addr).map(|v| v.class)
    }

    /// Number of variables with the given label.
    pub fn count_of(&self, class: ContainerClass) -> usize {
        self.vars.iter().filter(|v| v.class == class).count()
    }

    /// Iterates over the records.
    pub fn iter(&self) -> impl Iterator<Item = &VarRecord> {
        self.vars.iter()
    }

    /// Number of labeled variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Returns `true` if no variables are recorded.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_index_roundtrip() {
        for c in ContainerClass::ALL {
            assert_eq!(ContainerClass::from_index(c.index()), c);
        }
    }

    #[test]
    fn debug_info_lookup() {
        let mut di = DebugInfo::new();
        let a = VarAddr::Global(MemAddr(0x74404));
        let b = VarAddr::Stack { func: FuncId(0), offset: 8 };
        di.record(a, ContainerClass::List, 0);
        di.record(b, ContainerClass::Vector, 0);
        assert_eq!(di.class_of(a), Some(ContainerClass::List));
        assert_eq!(di.class_of(b), Some(ContainerClass::Vector));
        assert_eq!(di.class_of(VarAddr::Global(MemAddr(1))), None);
        assert_eq!(di.count_of(ContainerClass::List), 1);
        assert_eq!(di.count_of(ContainerClass::Map), 0);
        assert_eq!(di.len(), 2);
    }

    #[test]
    fn display_forms() {
        assert_eq!(ContainerClass::Map.to_string(), "std::map");
        let v = VarAddr::Stack { func: FuncId(2), offset: -12 };
        assert_eq!(v.to_string(), "F2:[ebp-Ch]");
    }
}
