//! Light-weight program analyses mirroring checks the paper performs on real
//! binaries.
//!
//! The paper (Section III-A) notes that TSLICE's frame tracking assumes the
//! MSVC frame-pointer-omission flag (`/Oy`) is **off**, "which can be checked
//! easily": a prologue of the form `push ebp; mov ebp, esp` (with a matching
//! `mov esp, ebp; pop ebp; ret` or `leave; ret` epilogue) means `/Oy` is
//! off; a bare `sub esp, …` prologue with `add esp, …; ret` means it is on.

use crate::{FuncId, InstKind, Opcode, Operand, Program, Reg};
use serde::{Deserialize, Serialize};

/// How a function addresses its frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FrameMode {
    /// `/Oy` off: `ebp` is the frame pointer (`push ebp; mov ebp, esp`).
    FramePointer,
    /// `/Oy` on: no `ebp` frame; locals addressed off `esp`.
    Omitted,
    /// Neither pattern found (leaf functions with no locals, thunks, …).
    Unknown,
}

/// Detects the frame mode of one function from its prologue, as the paper
/// describes.
pub fn detect_frame_mode(prog: &Program, func: FuncId) -> FrameMode {
    let f = prog.func(func);
    // Scan the whole first basic block: instruction scheduling and
    // interleaving noise can push `mov ebp, esp` past any fixed-size
    // window, but a compiler never moves prologue setup across a
    // control-flow boundary.
    let mut insts = Vec::new();
    for id in f.inst_ids() {
        if id != f.entry() && prog.is_call_jump_target(id) {
            break;
        }
        let inst = prog.inst(id);
        insts.push(inst);
        let ends_block = matches!(inst.kind, InstKind::Ret | InstKind::Call { .. })
            || inst.opcode == Opcode::Jmp
            || inst.opcode.is_conditional_jump();
        if ends_block {
            break;
        }
    }

    // `push ebp` followed (possibly after a scheduling gap) by `mov ebp, esp`.
    let mut saw_push_ebp = false;
    for inst in &insts {
        match &inst.kind {
            InstKind::Push { src } if src.as_reg() == Some(Reg::Ebp) => {
                saw_push_ebp = true;
            }
            InstKind::Mov { dst, src }
                if saw_push_ebp
                    && dst.as_reg() == Some(Reg::Ebp)
                    && src.as_reg() == Some(Reg::Esp) =>
            {
                return FrameMode::FramePointer;
            }
            _ => {}
        }
    }

    // Epilogue corroboration: `mov esp, ebp; pop ebp; ret` (or `leave;
    // pop ebp; ret` — this IR gives `leave` the same `mov esp, ebp` kind)
    // proves an `ebp` frame was torn down even when scheduling noise or an
    // early branch kept the `mov ebp, esp` out of the first basic block.
    let ids: Vec<_> = f.inst_ids().collect();
    for w in ids.windows(3) {
        let tear_down = matches!(
            &prog.inst(w[0]).kind,
            InstKind::Mov { dst, src }
                if dst.as_reg() == Some(Reg::Esp) && src.as_reg() == Some(Reg::Ebp)
        );
        let pop_ebp = matches!(
            &prog.inst(w[1]).kind,
            InstKind::Pop { dst } if dst.as_reg() == Some(Reg::Ebp)
        );
        if tear_down && pop_ebp && matches!(prog.inst(w[2]).kind, InstKind::Ret) {
            return FrameMode::FramePointer;
        }
    }

    // A bare `sub esp, imm` near the entry without an ebp frame.
    for inst in &insts {
        if inst.opcode == Opcode::Sub {
            if let InstKind::Op { dst, src: Operand::Imm(_), .. } = &inst.kind {
                if dst.as_reg() == Some(Reg::Esp) {
                    return FrameMode::Omitted;
                }
            }
        }
    }
    FrameMode::Unknown
}

/// Detects the frame mode of every function.
pub fn detect_frame_modes(prog: &Program) -> Vec<FrameMode> {
    prog.funcs().iter().map(|f| detect_frame_mode(prog, f.id)).collect()
}

/// Returns `true` if every non-trivial function keeps its frame pointer —
/// the precondition under which TSLICE's default rule set (which strongly
/// tracks both `fp` and `sp`) is applicable.
pub fn frame_pointers_preserved(prog: &Program) -> bool {
    detect_frame_modes(prog).iter().all(|m| !matches!(m, FrameMode::Omitted))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BinOp, ProgramBuilder};

    fn framed_func(b: &mut ProgramBuilder, name: &str) {
        b.begin_func(name);
        b.inst(Opcode::Push, InstKind::Push { src: Operand::reg(Reg::Ebp) });
        b.inst(
            Opcode::Mov,
            InstKind::Mov { dst: Operand::reg(Reg::Ebp), src: Operand::reg(Reg::Esp) },
        );
        b.inst(
            Opcode::Sub,
            InstKind::Op { op: BinOp::Sub, dst: Operand::reg(Reg::Esp), src: Operand::imm(0x20) },
        );
        b.ret();
        b.end_func();
    }

    fn fpo_func(b: &mut ProgramBuilder, name: &str) {
        b.begin_func(name);
        b.inst(
            Opcode::Sub,
            InstKind::Op { op: BinOp::Sub, dst: Operand::reg(Reg::Esp), src: Operand::imm(0x10) },
        );
        b.inst(
            Opcode::Mov,
            InstKind::Mov { dst: Operand::reg(Reg::Eax), src: Operand::mem_reg(Reg::Esp, 4) },
        );
        b.inst(
            Opcode::Add,
            InstKind::Op { op: BinOp::Add, dst: Operand::reg(Reg::Esp), src: Operand::imm(0x10) },
        );
        b.ret();
        b.end_func();
    }

    fn leaf_func(b: &mut ProgramBuilder, name: &str) {
        b.begin_func(name);
        b.inst(Opcode::Mov, InstKind::Mov { dst: Operand::reg(Reg::Eax), src: Operand::imm(1) });
        b.ret();
        b.end_func();
    }

    #[test]
    fn detects_all_three_modes() {
        let mut b = ProgramBuilder::new();
        framed_func(&mut b, "framed");
        fpo_func(&mut b, "fpo");
        leaf_func(&mut b, "leaf");
        let p = b.finish().unwrap();
        assert_eq!(detect_frame_mode(&p, FuncId(0)), FrameMode::FramePointer);
        assert_eq!(detect_frame_mode(&p, FuncId(1)), FrameMode::Omitted);
        assert_eq!(detect_frame_mode(&p, FuncId(2)), FrameMode::Unknown);
        assert_eq!(
            detect_frame_modes(&p),
            vec![FrameMode::FramePointer, FrameMode::Omitted, FrameMode::Unknown]
        );
        assert!(!frame_pointers_preserved(&p));
    }

    #[test]
    fn framed_only_program_preserves_frame_pointers() {
        let mut b = ProgramBuilder::new();
        framed_func(&mut b, "a");
        leaf_func(&mut b, "b");
        let p = b.finish().unwrap();
        assert!(frame_pointers_preserved(&p));
    }

    #[test]
    fn frame_setup_is_found_past_a_fixed_window() {
        // Interleaving noise between `push ebp` and `mov ebp, esp` used to
        // defeat a 4-instruction scan; the first-basic-block scan does not
        // care how far the scheduler pushed the frame setup.
        let mut b = ProgramBuilder::new();
        b.begin_func("noisy");
        b.inst(Opcode::Push, InstKind::Push { src: Operand::reg(Reg::Ebp) });
        for i in 0..5 {
            b.inst(
                Opcode::Mov,
                InstKind::Mov { dst: Operand::reg(Reg::Eax), src: Operand::imm(i) },
            );
        }
        b.inst(
            Opcode::Mov,
            InstKind::Mov { dst: Operand::reg(Reg::Ebp), src: Operand::reg(Reg::Esp) },
        );
        b.ret();
        b.end_func();
        let p = b.finish().unwrap();
        assert_eq!(detect_frame_mode(&p, FuncId(0)), FrameMode::FramePointer);
    }

    #[test]
    fn sub_esp_scheduled_before_the_frame_setup_is_not_fpo() {
        // Scheduling noise can hoist the frame allocation above the frame
        // setup: `push ebp; sub esp, N; mov ebp, esp`. The bare-`sub esp`
        // FPO heuristic must not win over the completed prologue.
        let mut b = ProgramBuilder::new();
        b.begin_func("hoisted");
        b.inst(Opcode::Push, InstKind::Push { src: Operand::reg(Reg::Ebp) });
        b.inst(
            Opcode::Sub,
            InstKind::Op { op: BinOp::Sub, dst: Operand::reg(Reg::Esp), src: Operand::imm(0x20) },
        );
        b.inst(
            Opcode::Mov,
            InstKind::Mov { dst: Operand::reg(Reg::Ebp), src: Operand::reg(Reg::Esp) },
        );
        b.inst(
            Opcode::Mov,
            InstKind::Mov { dst: Operand::reg(Reg::Esp), src: Operand::reg(Reg::Ebp) },
        );
        b.inst(Opcode::Pop, InstKind::Pop { dst: Operand::reg(Reg::Ebp) });
        b.ret();
        b.end_func();
        let p = b.finish().unwrap();
        assert_eq!(detect_frame_mode(&p, FuncId(0)), FrameMode::FramePointer);
    }

    #[test]
    fn epilogue_corroborates_when_the_first_block_is_inconclusive() {
        // An early branch ends the first basic block before `mov ebp, esp`,
        // leaving only `push ebp; sub esp` in prologue view — which the FPO
        // heuristic would misread. The `mov esp, ebp; pop ebp; ret` epilogue
        // settles it.
        let mut b = ProgramBuilder::new();
        b.begin_func("branchy");
        let l = b.new_label();
        b.inst(Opcode::Push, InstKind::Push { src: Operand::reg(Reg::Ebp) });
        b.inst(
            Opcode::Sub,
            InstKind::Op { op: BinOp::Sub, dst: Operand::reg(Reg::Esp), src: Operand::imm(0x20) },
        );
        b.inst(
            Opcode::Test,
            InstKind::Use { oprs: vec![Operand::reg(Reg::Eax), Operand::reg(Reg::Eax)] },
        );
        b.jump(Opcode::Je, l);
        b.bind_label(l);
        b.inst(
            Opcode::Mov,
            InstKind::Mov { dst: Operand::reg(Reg::Ebp), src: Operand::reg(Reg::Esp) },
        );
        b.inst(
            Opcode::Mov,
            InstKind::Mov { dst: Operand::reg(Reg::Esp), src: Operand::reg(Reg::Ebp) },
        );
        b.inst(Opcode::Pop, InstKind::Pop { dst: Operand::reg(Reg::Ebp) });
        b.ret();
        b.end_func();
        let p = b.finish().unwrap();
        assert_eq!(detect_frame_mode(&p, FuncId(0)), FrameMode::FramePointer);
    }

    #[test]
    fn the_sub_after_an_ebp_frame_is_not_fpo() {
        // `push ebp; mov ebp, esp; sub esp, N` is a framed function even
        // though it contains the `sub esp` pattern.
        let mut b = ProgramBuilder::new();
        framed_func(&mut b, "f");
        let p = b.finish().unwrap();
        assert_eq!(detect_frame_mode(&p, FuncId(0)), FrameMode::FramePointer);
    }
}
