//! The direct call graph of a program: adjacency, reachability, strongly
//! connected components (recursion groups), and a Graphviz export.
//!
//! The slicer's context-sensitive descent and the `malloc`/`free`
//! reachability features both walk this structure implicitly; this module
//! exposes it for tooling (and mirrors what IDA Pro's call-graph view
//! provides in the paper's workflow).

use crate::{CallTarget, FuncId, InstKind, Program};
use std::collections::VecDeque;

/// The direct call graph of a program.
#[derive(Debug, Clone)]
pub struct CallGraph {
    callees: Vec<Vec<FuncId>>,
    callers: Vec<Vec<FuncId>>,
}

impl CallGraph {
    /// Builds the call graph from every direct call instruction.
    pub fn build(prog: &Program) -> CallGraph {
        let n = prog.funcs().len();
        let mut callees: Vec<Vec<FuncId>> = vec![Vec::new(); n];
        for f in prog.funcs() {
            for id in f.inst_ids() {
                if let InstKind::Call { target: CallTarget::Direct(callee) } = &prog.inst(id).kind {
                    callees[f.id.index()].push(*callee);
                }
            }
        }
        for c in &mut callees {
            c.sort_unstable_by_key(|f| f.0);
            c.dedup();
        }
        let mut callers: Vec<Vec<FuncId>> = vec![Vec::new(); n];
        for (from, cs) in callees.iter().enumerate() {
            for c in cs {
                callers[c.index()].push(FuncId(from as u32));
            }
        }
        CallGraph { callees, callers }
    }

    /// Number of functions.
    pub fn len(&self) -> usize {
        self.callees.len()
    }

    /// Returns `true` if the graph has no functions.
    pub fn is_empty(&self) -> bool {
        self.callees.is_empty()
    }

    /// Functions directly called by `f`.
    pub fn callees(&self, f: FuncId) -> &[FuncId] {
        &self.callees[f.index()]
    }

    /// Functions directly calling `f`.
    pub fn callers(&self, f: FuncId) -> &[FuncId] {
        &self.callers[f.index()]
    }

    /// All functions reachable from `from` (inclusive), in BFS order.
    pub fn reachable_from(&self, from: FuncId) -> Vec<FuncId> {
        let mut seen = vec![false; self.len()];
        let mut out = Vec::new();
        let mut queue = VecDeque::new();
        queue.push_back(from);
        seen[from.index()] = true;
        while let Some(f) = queue.pop_front() {
            out.push(f);
            for &c in self.callees(f) {
                if !seen[c.index()] {
                    seen[c.index()] = true;
                    queue.push_back(c);
                }
            }
        }
        out
    }

    /// Strongly connected components in reverse topological order
    /// (Tarjan's algorithm, iterative). Components with more than one
    /// member — or a self-loop — are recursion groups.
    pub fn sccs(&self) -> Vec<Vec<FuncId>> {
        let n = self.len();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut out: Vec<Vec<FuncId>> = Vec::new();

        // Iterative Tarjan: (node, next child position).
        for root in 0..n {
            if index[root] != usize::MAX {
                continue;
            }
            let mut call: Vec<(usize, usize)> = vec![(root, 0)];
            while let Some(&mut (v, ref mut child)) = call.last_mut() {
                if *child == 0 {
                    index[v] = next_index;
                    low[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                let succs = &self.callees[v];
                if *child < succs.len() {
                    let w = succs[*child].index();
                    *child += 1;
                    if index[w] == usize::MAX {
                        call.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack nonempty");
                            on_stack[w] = false;
                            comp.push(FuncId(w as u32));
                            if w == v {
                                break;
                            }
                        }
                        comp.sort_unstable_by_key(|f| f.0);
                        out.push(comp);
                    }
                    call.pop();
                    if let Some(&mut (parent, _)) = call.last_mut() {
                        low[parent] = low[parent].min(low[v]);
                    }
                }
            }
        }
        out
    }

    /// The recursion groups: SCCs with more than one member, plus
    /// self-recursive singletons.
    pub fn recursion_groups(&self) -> Vec<Vec<FuncId>> {
        self.sccs()
            .into_iter()
            .filter(|c| c.len() > 1 || self.callees(c[0]).contains(&c[0]))
            .collect()
    }

    /// Renders the call graph as a Graphviz `dot` digraph.
    pub fn to_dot(&self, prog: &Program) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "digraph callgraph {{");
        let _ = writeln!(s, "  node [shape=box, fontname=\"monospace\"];");
        for f in prog.funcs() {
            let _ = writeln!(s, "  f{} [label=\"{}\"];", f.id.0, f.name.replace('"', "\\\""));
        }
        for (from, cs) in self.callees.iter().enumerate() {
            for c in cs {
                let _ = writeln!(s, "  f{from} -> f{};", c.0);
            }
        }
        let _ = writeln!(s, "}}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgramBuilder;

    /// main -> a -> b -> a (recursion pair), main -> c, d unreachable.
    fn sample() -> Program {
        let mut b = ProgramBuilder::new();
        b.begin_func("main");
        b.call_named("a");
        b.call_named("c");
        b.ret();
        b.end_func();
        b.begin_func("a");
        b.call_named("b");
        b.ret();
        b.end_func();
        b.begin_func("b");
        b.call_named("a");
        b.ret();
        b.end_func();
        b.begin_func("c");
        b.ret();
        b.end_func();
        b.begin_func("d");
        b.call_named("d");
        b.ret();
        b.end_func();
        b.finish().unwrap()
    }

    #[test]
    fn adjacency_is_consistent() {
        let p = sample();
        let g = CallGraph::build(&p);
        assert_eq!(g.len(), 5);
        assert_eq!(g.callees(FuncId(0)), &[FuncId(1), FuncId(3)]);
        assert_eq!(g.callers(FuncId(1)), &[FuncId(0), FuncId(2)]);
        for f in 0..5u32 {
            for &c in g.callees(FuncId(f)) {
                assert!(g.callers(c).contains(&FuncId(f)));
            }
        }
    }

    #[test]
    fn reachability_excludes_disconnected_functions() {
        let p = sample();
        let g = CallGraph::build(&p);
        let reach = g.reachable_from(FuncId(0));
        assert_eq!(reach.len(), 4, "d is unreachable from main");
        assert!(!reach.contains(&FuncId(4)));
        assert_eq!(reach[0], FuncId(0), "BFS starts at the root");
    }

    #[test]
    fn sccs_find_the_recursion_groups() {
        let p = sample();
        let g = CallGraph::build(&p);
        let sccs = g.sccs();
        // Every function appears in exactly one component.
        let total: usize = sccs.iter().map(Vec::len).sum();
        assert_eq!(total, 5);
        let groups = g.recursion_groups();
        assert_eq!(groups.len(), 2, "a<->b and the self-recursive d");
        assert!(groups.iter().any(|c| c == &vec![FuncId(1), FuncId(2)]));
        assert!(groups.iter().any(|c| c == &vec![FuncId(4)]));
    }

    #[test]
    fn sccs_are_in_reverse_topological_order() {
        let p = sample();
        let g = CallGraph::build(&p);
        let sccs = g.sccs();
        let pos = |f: FuncId| sccs.iter().position(|c| c.contains(&f)).unwrap();
        // Callees' components come before their callers'.
        assert!(pos(FuncId(1)) < pos(FuncId(0)), "a/b before main");
        assert!(pos(FuncId(3)) < pos(FuncId(0)), "c before main");
    }

    /// ring3 -> r0 -> r1 -> r2 -> r0: one three-member recursion group.
    #[test]
    fn three_cycle_is_a_single_recursion_group() {
        let mut b = ProgramBuilder::new();
        for (name, callee) in [("r0", "r1"), ("r1", "r2"), ("r2", "r0")] {
            b.begin_func(name);
            b.call_named(callee);
            b.ret();
            b.end_func();
        }
        let p = b.finish().unwrap();
        let g = CallGraph::build(&p);
        let groups = g.recursion_groups();
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0], vec![FuncId(0), FuncId(1), FuncId(2)]);
        assert_eq!(g.sccs().len(), 1, "the whole ring is one component");
    }

    /// A diamond (main -> {l, r} -> leaf) is acyclic: every SCC is a
    /// singleton, no recursion groups, and the order is bottom-up.
    #[test]
    fn acyclic_diamond_has_no_recursion_groups() {
        let mut b = ProgramBuilder::new();
        b.begin_func("main");
        b.call_named("l");
        b.call_named("r");
        b.ret();
        b.end_func();
        for side in ["l", "r"] {
            b.begin_func(side);
            b.call_named("leaf");
            b.ret();
            b.end_func();
        }
        b.begin_func("leaf");
        b.ret();
        b.end_func();
        let p = b.finish().unwrap();
        let g = CallGraph::build(&p);
        let sccs = g.sccs();
        assert_eq!(sccs.len(), 4);
        assert!(sccs.iter().all(|c| c.len() == 1));
        assert!(g.recursion_groups().is_empty());
        let pos = |f: FuncId| sccs.iter().position(|c| c.contains(&f)).unwrap();
        assert_eq!(pos(FuncId(0)), 3, "main is summarized last");
        assert_eq!(pos(FuncId(3)), 0, "the shared leaf comes first");
    }

    /// Duplicate call sites collapse to one adjacency edge.
    #[test]
    fn repeated_calls_are_deduplicated() {
        let mut b = ProgramBuilder::new();
        b.begin_func("main");
        b.call_named("f");
        b.call_named("f");
        b.call_named("f");
        b.ret();
        b.end_func();
        b.begin_func("f");
        b.ret();
        b.end_func();
        let p = b.finish().unwrap();
        let g = CallGraph::build(&p);
        assert_eq!(g.callees(FuncId(0)), &[FuncId(1)]);
        assert_eq!(g.callers(FuncId(1)), &[FuncId(0)]);
    }

    #[test]
    fn dot_export_names_functions() {
        let p = sample();
        let g = CallGraph::build(&p);
        let dot = g.to_dot(&p);
        assert!(dot.contains("label=\"main\""));
        assert!(dot.contains("f0 -> f1;"));
        assert!(dot.contains("f4 -> f4;"));
    }
}
