//! # tiara-ir
//!
//! The binary intermediate representation underlying the TIARA reproduction
//! (Wang et al., *Recovering Container Class Types in C++ Binaries*,
//! CGO 2022).
//!
//! This crate models the paper's small language (Section III-A, eq. 1):
//!
//! ```text
//! I    := mov opr1, opr2 | op⊕ opr1, opr2 | use ... oprk ... | push r | pop r
//! opr  := c | loc | [loc]
//! loc  := addr | addr + c
//! addr := r | m
//! ```
//!
//! together with the facts the paper obtains from IDA Pro and the Microsoft
//! DIA SDK: concrete opcodes and operand types (for the GCN feature
//! encoding), call/jump targets, transitive `malloc`/`free` reachability, and
//! ground-truth variable type labels.
//!
//! A program is a single CFG `G = (I, E)` over all instructions
//! ([`Program::cfg_succs`]), with functions as contiguous instruction ranges.
//!
//! Around the core IR, the crate provides the boundaries a binary-analysis
//! pipeline needs:
//!
//! * [`parse_program`] — a textual assembly parser for Figure-1-style
//!   listings;
//! * [`assemble`] / [`disassemble`] — a byte-level `TIRA` image format
//!   (hardened against corrupt inputs);
//! * [`detect_frame_mode`] — the paper's `/Oy` frame-pointer-omission check;
//! * [`CallGraph`] — reachability, recursion groups (SCCs), and Graphviz
//!   export;
//! * [`format_program`] — a disassembly pretty-printer.
//!
//! ## Example
//!
//! ```
//! use tiara_ir::{ExternKind, InstKind, Opcode, Operand, ProgramBuilder, Reg};
//!
//! let mut b = ProgramBuilder::new();
//! b.begin_func("main");
//! b.inst(
//!     Opcode::Mov,
//!     InstKind::Mov {
//!         dst: Operand::reg(Reg::Esi),
//!         src: Operand::mem_abs(0x74404u64, 0),
//!     },
//! );
//! b.call_extern(ExternKind::Malloc);
//! b.ret();
//! b.end_func();
//! let prog = b.finish()?;
//! assert_eq!(prog.num_insts(), 3);
//! # Ok::<(), tiara_ir::BuildError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod addr;
mod analysis;
mod callgraph;
mod display;
mod encode;
mod func;
mod inst;
mod label;
mod opcode;
mod operand;
mod parse;
mod program;
mod reg;

pub use addr::{parse_hex, parse_var_addr};
pub use analysis::{detect_frame_mode, detect_frame_modes, frame_pointers_preserved, FrameMode};
pub use callgraph::CallGraph;
pub use display::{format_inst, format_program};
pub use encode::{assemble, disassemble, DecodeError, MAGIC, VERSION};
pub use func::Function;
pub use inst::{BinOp, CallTarget, ExternKind, FuncId, Inst, InstId, InstKind};
pub use label::{ContainerClass, DebugInfo, VarAddr, VarRecord};
pub use opcode::Opcode;
pub use operand::{Addr, Loc, MemAddr, Operand, OperandType};
pub use parse::{parse_program, ParseError};
pub use program::{BuildError, Label, Program, ProgramBuilder, RawProgram};
pub use reg::Reg;
