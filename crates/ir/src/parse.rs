//! A textual assembly parser: builds [`Program`]s from human-readable
//! listings, so externally produced disassembly (in the style of the paper's
//! Figure 1) can be fed to the slicer directly.
//!
//! # Syntax
//!
//! ```text
//! func main {
//!     mov esi, dword ptr [74404h]
//!     push esi
//!     call std::_List_buynode
//!     cmp ebx, 1
//!     jae .done
//!     push offset 7A010h
//!     call dword ptr [73034h]
//! .done:
//!     inc ecx
//!     ret
//! }
//!
//! func std::_List_buynode {
//!     push ebp
//!     mov ebp, esp
//!     call malloc
//!     ret
//! }
//! ```
//!
//! * one instruction per line; `;` starts a comment;
//! * labels are `.name:` on their own line, referenced as `.name`;
//! * numbers are decimal, or hex with an `h` suffix (`74404h`) or `0x`
//!   prefix;
//! * memory operands: `[74404h]`, `[esi+4]`, `[ebp-18h]`, optionally
//!   prefixed with `dword ptr`;
//! * `offset 74404h` is an address-of immediate;
//! * `call` targets: a function name, one of the known externs
//!   (`malloc`, `free`, `realloc`), or an indirect `dword ptr […]` operand;
//! * the first function is the entry unless a line `entry <name>` appears.

use crate::{BinOp, ExternKind, InstKind, Label, Opcode, Operand, Program, ProgramBuilder, Reg};
use std::collections::HashMap;

/// A parse failure, with a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the failure.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError { line, message: message.into() }
}

/// Parses a textual listing into a [`Program`].
///
/// # Errors
///
/// Returns a [`ParseError`] with the offending line on any syntax problem,
/// and converts [`crate::BuildError`]s (unknown callee, unbound label, …)
/// into errors on the closing line.
pub fn parse_program(text: &str) -> Result<Program, ParseError> {
    let mut b = ProgramBuilder::new();
    let mut in_func = false;
    let mut labels: HashMap<String, Label> = HashMap::new();
    let mut entry: Option<String> = None;
    let mut last_line = 0usize;

    for (idx, raw) in text.lines().enumerate() {
        let ln = idx + 1;
        last_line = ln;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }

        if let Some(rest) = line.strip_prefix("entry ") {
            entry = Some(rest.trim().to_owned());
            continue;
        }
        if let Some(rest) = line.strip_prefix("func ") {
            if in_func {
                return Err(err(ln, "`func` before the previous `}`"));
            }
            let name = rest.trim_end_matches('{').trim();
            if name.is_empty() {
                return Err(err(ln, "missing function name"));
            }
            b.begin_func(name);
            labels.clear();
            in_func = true;
            continue;
        }
        if line == "}" {
            if !in_func {
                return Err(err(ln, "`}` outside a function"));
            }
            b.end_func();
            in_func = false;
            continue;
        }
        if !in_func {
            return Err(err(ln, format!("instruction outside a function: `{line}`")));
        }
        if let Some(name) = line.strip_prefix('.').and_then(|l| l.strip_suffix(':')) {
            let label = *labels.entry(name.to_owned()).or_insert_with(|| b.new_label());
            b.bind_label(label);
            continue;
        }
        parse_inst(&mut b, &mut labels, line, ln)?;
    }
    if in_func {
        return Err(err(last_line, "unterminated function (missing `}`)"));
    }

    if let Some(name) = entry {
        b.set_entry(&name);
    }
    b.finish().map_err(|e| err(last_line, e.to_string()))
}

fn strip_comment(line: &str) -> &str {
    match line.find(';') {
        Some(k) => &line[..k],
        None => line,
    }
}

/// Splits `mov esi, dword ptr [74404h]` into mnemonic and operand strings.
fn split_operands(rest: &str) -> Vec<String> {
    rest.split(',').map(|s| s.trim().to_owned()).filter(|s| !s.is_empty()).collect()
}

fn parse_inst(
    b: &mut ProgramBuilder,
    labels: &mut HashMap<String, Label>,
    line: &str,
    ln: usize,
) -> Result<(), ParseError> {
    let (mn, rest) = match line.find(char::is_whitespace) {
        Some(k) => (&line[..k], line[k..].trim()),
        None => (line, ""),
    };
    let mnemonic = mn.to_ascii_lowercase();

    // Control flow first.
    match mnemonic.as_str() {
        "ret" => {
            b.ret();
            return Ok(());
        }
        "call" => {
            return parse_call(b, rest, ln);
        }
        "jmp" | "je" | "jne" | "jb" | "jae" | "jbe" | "ja" | "jl" | "jge" | "jle" | "jg" | "js"
        | "jns" => {
            let opcode = jump_opcode(&mnemonic).expect("matched above");
            let Some(name) = rest.strip_prefix('.') else {
                return Err(err(ln, format!("jump target must be a `.label`, got `{rest}`")));
            };
            let label = *labels.entry(name.trim().to_owned()).or_insert_with(|| b.new_label());
            b.jump(opcode, label);
            return Ok(());
        }
        _ => {}
    }

    let oprs = split_operands(rest);
    let parsed: Result<Vec<Operand>, ParseError> =
        oprs.iter().map(|o| parse_operand(o, ln)).collect();
    let parsed = parsed?;

    let two = |ln: usize| -> Result<(Operand, Operand), ParseError> {
        if parsed.len() != 2 {
            return Err(err(ln, format!("`{mnemonic}` expects 2 operands, got {}", parsed.len())));
        }
        Ok((parsed[0], parsed[1]))
    };

    match mnemonic.as_str() {
        "mov" | "movzx" | "movsx" | "lea" => {
            let (dst, src) = two(ln)?;
            let opcode = match mnemonic.as_str() {
                "lea" => Opcode::Lea,
                "movzx" => Opcode::Movzx,
                "movsx" => Opcode::Movsx,
                _ => Opcode::Mov,
            };
            // `lea r, [x]` takes the address: re-express the deref as a Loc.
            let src = if opcode == Opcode::Lea {
                match src {
                    Operand::Deref(loc) => Operand::Loc(loc),
                    other => other,
                }
            } else {
                src
            };
            b.inst(opcode, InstKind::Mov { dst, src });
        }
        "add" | "sub" | "and" | "or" | "xor" | "shl" | "shr" | "sar" | "imul" => {
            let (dst, src) = two(ln)?;
            let (opcode, op) = match mnemonic.as_str() {
                "add" => (Opcode::Add, BinOp::Add),
                "sub" => (Opcode::Sub, BinOp::Sub),
                "and" => (Opcode::And, BinOp::And),
                "or" => (Opcode::Or, BinOp::Or),
                "xor" => (Opcode::Xor, BinOp::Xor),
                "shl" => (Opcode::Shl, BinOp::Shl),
                "sar" => (Opcode::Sar, BinOp::Shr),
                "shr" => (Opcode::Shr, BinOp::Shr),
                _ => (Opcode::Imul, BinOp::Mul),
            };
            b.inst(opcode, InstKind::Op { op, dst, src });
        }
        "inc" | "dec" => {
            if parsed.len() != 1 {
                return Err(err(ln, format!("`{mnemonic}` expects 1 operand")));
            }
            let (opcode, op) = if mnemonic == "inc" {
                (Opcode::Inc, BinOp::Add)
            } else {
                (Opcode::Dec, BinOp::Sub)
            };
            b.inst(opcode, InstKind::Op { op, dst: parsed[0], src: Operand::imm(1) });
        }
        "cmp" | "test" => {
            let (a, s) = two(ln)?;
            let opcode = if mnemonic == "cmp" { Opcode::Cmp } else { Opcode::Test };
            b.inst(opcode, InstKind::Use { oprs: vec![a, s] });
        }
        "push" => {
            if parsed.len() != 1 {
                return Err(err(ln, "`push` expects 1 operand"));
            }
            b.inst(Opcode::Push, InstKind::Push { src: parsed[0] });
        }
        "pop" => {
            if parsed.len() != 1 {
                return Err(err(ln, "`pop` expects 1 operand"));
            }
            b.inst(Opcode::Pop, InstKind::Pop { dst: parsed[0] });
        }
        "nop" => {
            b.inst(Opcode::Nop, InstKind::Use { oprs: Vec::new() });
        }
        other => return Err(err(ln, format!("unknown mnemonic `{other}`"))),
    }
    Ok(())
}

fn jump_opcode(mnemonic: &str) -> Option<Opcode> {
    Some(match mnemonic {
        "jmp" => Opcode::Jmp,
        "je" => Opcode::Je,
        "jne" => Opcode::Jne,
        "jb" => Opcode::Jb,
        "jae" => Opcode::Jae,
        "jbe" => Opcode::Jbe,
        "ja" => Opcode::Ja,
        "jl" => Opcode::Jl,
        "jge" => Opcode::Jge,
        "jle" => Opcode::Jle,
        "jg" => Opcode::Jg,
        "js" => Opcode::Js,
        "jns" => Opcode::Jns,
        _ => return None,
    })
}

fn parse_call(b: &mut ProgramBuilder, rest: &str, ln: usize) -> Result<(), ParseError> {
    let target = rest.trim();
    if target.is_empty() {
        return Err(err(ln, "`call` needs a target"));
    }
    match target.to_ascii_lowercase().as_str() {
        "malloc" | "operator_new" => {
            b.call_extern(ExternKind::Malloc);
            return Ok(());
        }
        "free" | "operator_delete" => {
            b.call_extern(ExternKind::Free);
            return Ok(());
        }
        "realloc" => {
            b.call_extern(ExternKind::Realloc);
            return Ok(());
        }
        "extern" => {
            b.call_extern(ExternKind::Other);
            return Ok(());
        }
        _ => {}
    }
    if target.starts_with('[') || target.starts_with("dword ptr") {
        let opr = parse_operand(target, ln)?;
        b.call_indirect(opr);
        return Ok(());
    }
    b.call_named(target);
    Ok(())
}

/// Parses a number: decimal, `0x…`, or trailing-`h` hex.
fn parse_number(s: &str, ln: usize) -> Result<i64, ParseError> {
    let s = s.trim();
    let (neg, s) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let value = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else if let Some(hex) = s.strip_suffix('h').or_else(|| s.strip_suffix('H')) {
        i64::from_str_radix(hex, 16)
    } else {
        s.parse::<i64>()
    }
    .map_err(|_| err(ln, format!("invalid number `{s}`")))?;
    Ok(if neg { -value } else { value })
}

fn parse_reg(s: &str) -> Option<Reg> {
    Reg::ALL.into_iter().find(|r| r.name() == s.to_ascii_lowercase())
}

/// Parses one operand.
fn parse_operand(s: &str, ln: usize) -> Result<Operand, ParseError> {
    let s = s.trim();
    let s = s
        .strip_prefix("dword ptr")
        .or_else(|| s.strip_prefix("byte ptr"))
        .or_else(|| s.strip_prefix("word ptr"))
        .map(str::trim)
        .unwrap_or(s);
    // ds: segment prefixes as in `ds:[74408h]`.
    let s = s.strip_prefix("ds:").map(str::trim).unwrap_or(s);

    if let Some(rest) = s.strip_prefix("offset ") {
        let addr = parse_number(rest, ln)?;
        if addr < 0 {
            return Err(err(ln, "negative address in `offset`"));
        }
        return Ok(Operand::addr_of(addr as u64, 0));
    }
    if let Some(inner) = s.strip_prefix('[').and_then(|x| x.strip_suffix(']')) {
        return parse_mem(inner, ln);
    }
    if let Some(r) = parse_reg(s) {
        return Ok(Operand::reg(r));
    }
    Ok(Operand::imm(parse_number(s, ln)?))
}

/// Parses the inside of a memory operand: `74404h`, `esi+4`, `ebp-18h`.
fn parse_mem(inner: &str, ln: usize) -> Result<Operand, ParseError> {
    let inner = inner.trim();
    // Find a +/- separator after the base token.
    let split_at =
        inner.char_indices().skip(1).find(|(_, c)| *c == '+' || *c == '-').map(|(k, _)| k);
    let (base_str, off) = match split_at {
        Some(k) => {
            let (b, rest) = inner.split_at(k);
            let sign = if rest.starts_with('-') { -1 } else { 1 };
            let num = parse_number(&rest[1..], ln)?;
            (b.trim(), sign * num)
        }
        None => (inner, 0),
    };
    if let Some(r) = parse_reg(base_str) {
        return Ok(Operand::mem_reg(r, off));
    }
    let addr = parse_number(base_str, ln)?;
    if addr < 0 {
        return Err(err(ln, "negative absolute address"));
    }
    Ok(Operand::mem_abs(addr as u64, off))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemAddr;

    const FIG1: &str = r"
        ; the paper's Figure 1, abridged
        func main {
            mov esi, dword ptr [74404h]
            lea eax, [ebp-20h]
            push eax
            mov dword ptr [ebp-20h], 0Ah
            push dword ptr [esi+4]
            push esi
            call std::_List_buynode
            add esp, 12
            mov ecx, dword ptr ds:[74408h]
            mov edx, eax
            sub ebx, ecx
            cmp ebx, 1
            jae .ok
            push offset 7A010h
            call dword ptr [73034h]
        .ok:
            inc ecx
            mov dword ptr [ebp+8], 14h
            ret
        }

        func std::_List_buynode {
            push ebp
            mov ebp, esp
            call malloc
            pop ebp
            ret
        }
    ";

    #[test]
    fn parses_the_figure1_listing() {
        let p = parse_program(FIG1).expect("parses");
        assert_eq!(p.funcs().len(), 2);
        let main = p.func_by_name("main").unwrap();
        assert!(main.len() >= 17);
        // First instruction loads the list header.
        let first = p.inst(main.entry());
        match &first.kind {
            InstKind::Mov { src, .. } => {
                assert_eq!(src.deref_mem(), Some((MemAddr(0x74404), 0)));
            }
            other => panic!("unexpected {other:?}"),
        }
        // The callee is resolved and reaches malloc.
        let buynode = p.func_by_name("std::_List_buynode").unwrap();
        assert!(p.func_allocates(buynode.id));
    }

    #[test]
    fn parsed_program_is_sliceable() {
        use crate::VarAddr;
        let p = parse_program(FIG1).unwrap();
        // Slicing lives in tiara-slice; here we only check the CFG shape the
        // slicer depends on: the conditional jump has two successors.
        let main = p.func_by_name("main").unwrap();
        let jae =
            main.inst_ids().find(|&id| p.inst(id).opcode == Opcode::Jae).expect("has the jae");
        assert_eq!(p.cfg_succs(jae).len(), 2);
        let _ = VarAddr::Global(MemAddr(0x74404));
    }

    #[test]
    fn numbers_in_all_notations() {
        assert_eq!(parse_number("10", 1).unwrap(), 10);
        assert_eq!(parse_number("0x1A", 1).unwrap(), 26);
        assert_eq!(parse_number("1Ah", 1).unwrap(), 26);
        assert_eq!(parse_number("-8", 1).unwrap(), -8);
        assert_eq!(parse_number("-18h", 1).unwrap(), -24);
        assert!(parse_number("zz", 1).is_err());
    }

    #[test]
    fn operand_forms() {
        assert_eq!(parse_operand("esi", 1).unwrap(), Operand::reg(Reg::Esi));
        assert_eq!(parse_operand("42", 1).unwrap(), Operand::imm(42));
        assert_eq!(parse_operand("dword ptr [esi+4]", 1).unwrap(), Operand::mem_reg(Reg::Esi, 4));
        assert_eq!(parse_operand("[ebp-18h]", 1).unwrap(), Operand::mem_reg(Reg::Ebp, -0x18));
        assert_eq!(parse_operand("ds:[74408h]", 1).unwrap(), Operand::mem_abs(0x74408u64, 0));
        assert_eq!(parse_operand("offset 7A010h", 1).unwrap(), Operand::addr_of(0x7A010u64, 0));
    }

    #[test]
    fn error_reporting_has_line_numbers() {
        let bad = "func f {\n    bogus eax, ebx\n}";
        let e = parse_program(bad).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));

        let outside = "mov eax, ebx";
        let e = parse_program(outside).unwrap_err();
        assert!(e.message.contains("outside a function"));

        let unterminated = "func f {\n    ret";
        let e = parse_program(unterminated).unwrap_err();
        assert!(e.message.contains("unterminated"));

        let unknown_callee = "func f {\n    call nowhere\n    ret\n}";
        let e = parse_program(unknown_callee).unwrap_err();
        assert!(e.message.contains("unknown function"));
    }

    #[test]
    fn entry_directive_selects_entry() {
        let text = "func helper {\n ret\n}\nfunc main {\n ret\n}\nentry main";
        let p = parse_program(text).unwrap();
        assert_eq!(p.func(p.entry_func()).name, "main");
    }

    #[test]
    fn forward_label_references_work() {
        let text = "func f {\n    jmp .end\n    mov eax, 1\n.end:\n    ret\n}";
        let p = parse_program(text).unwrap();
        // jmp goes straight to ret.
        let succs = p.cfg_succs(crate::InstId(0));
        assert_eq!(succs.len(), 1);
        assert!(matches!(p.inst(succs[0]).kind, InstKind::Ret));
    }
}
