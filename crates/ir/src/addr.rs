//! Textual variable-address notation, shared by every user-facing surface
//! (the `tiara` CLI flags and the `tiara serve` wire protocol).
//!
//! Three forms:
//!
//! * a global: `0x74404`, `74404h`, or plain decimal;
//! * a frame slot: `func:<name>:<offset>` where the offset is hex/decimal
//!   with an optional leading `-` (e.g. `func:fn_0000:-0x18`);
//! * a heap allocation site: `heap:<addr>` where the address names the
//!   allocating call instruction (e.g. `heap:0x71010`).

use crate::label::VarAddr;
use crate::operand::MemAddr;
use crate::program::Program;

/// Parses `0x…`, `…h`, or decimal into a raw integer.
///
/// # Errors
///
/// Returns a description of the malformed digit string.
pub fn parse_hex(s: &str) -> Result<u64, String> {
    let s = s.trim();
    if let Some(h) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(h, 16).map_err(|e| e.to_string())
    } else if let Some(h) = s.strip_suffix('h').or_else(|| s.strip_suffix('H')) {
        u64::from_str_radix(h, 16).map_err(|e| e.to_string())
    } else {
        s.parse::<u64>().map_err(|e| e.to_string())
    }
}

/// Parses the CLI/wire notation for a variable address against a program
/// (frame slots name functions, which must exist).
///
/// # Errors
///
/// Returns a human-readable description: malformed notation, or a frame slot
/// naming a function the program does not contain.
pub fn parse_var_addr(prog: &Program, s: &str) -> Result<VarAddr, String> {
    if let Some(rest) = s.strip_prefix("func:") {
        let (name, off) =
            rest.rsplit_once(':').ok_or("frame address must be func:<name>:<offset>")?;
        let func = prog.func_by_name(name).ok_or(format!("no function named `{name}`"))?.id;
        let offset = if let Some(neg) = off.strip_prefix('-') {
            -(parse_hex(neg)? as i64)
        } else {
            parse_hex(off)? as i64
        };
        Ok(VarAddr::Stack { func, offset })
    } else if let Some(site) = s.strip_prefix("heap:") {
        Ok(VarAddr::Heap { site: MemAddr(parse_hex(site)?) })
    } else {
        Ok(VarAddr::Global(MemAddr(parse_hex(s)?)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::InstKind;
    use crate::opcode::Opcode;
    use crate::operand::Operand;
    use crate::program::ProgramBuilder;
    use crate::reg::Reg;

    fn tiny_program() -> Program {
        let mut b = ProgramBuilder::new();
        b.begin_func("fn_0000");
        b.inst(Opcode::Mov, InstKind::Mov { dst: Operand::reg(Reg::Eax), src: Operand::imm(1) });
        b.ret();
        b.end_func();
        b.finish().unwrap()
    }

    #[test]
    fn hex_notations() {
        assert_eq!(parse_hex("0x74404").unwrap(), 0x74404);
        assert_eq!(parse_hex("74404h").unwrap(), 0x74404);
        assert_eq!(parse_hex("1234").unwrap(), 1234);
        assert!(parse_hex("xyz").is_err());
    }

    #[test]
    fn address_forms() {
        let p = tiny_program();
        assert_eq!(parse_var_addr(&p, "0x74404").unwrap(), VarAddr::Global(MemAddr(0x74404)));
        match parse_var_addr(&p, "func:fn_0000:-0x18").unwrap() {
            VarAddr::Stack { offset, .. } => assert_eq!(offset, -0x18),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_var_addr(&p, "func:nope:8").is_err());
        assert!(parse_var_addr(&p, "func:fn_0000").is_err());
        assert_eq!(
            parse_var_addr(&p, "heap:0x71010").unwrap(),
            VarAddr::Heap { site: MemAddr(0x71010) }
        );
        assert!(parse_var_addr(&p, "heap:zz").is_err());
    }
}
