//! Disassembly-style pretty-printing, in the format of the paper's Figure 1.

use crate::{CallTarget, InstKind, Program};
use std::fmt::Write as _;

/// Renders one instruction in disassembly style, e.g.
/// `00071164  mov esi, dword ptr [074404h]`.
pub fn format_inst(prog: &Program, id: crate::InstId) -> String {
    let inst = prog.inst(id);
    let mut s = String::new();
    let _ = write!(s, "{:08X}  ", inst.addr);
    match &inst.kind {
        InstKind::Mov { dst, src } => {
            let _ = write!(s, "{} {dst}, {src}", inst.opcode);
        }
        InstKind::Op { dst, src, .. } => {
            // `inc`/`dec` carry an implicit immediate; print them unary.
            if matches!(inst.opcode, crate::Opcode::Inc | crate::Opcode::Dec) {
                let _ = write!(s, "{} {dst}", inst.opcode);
            } else {
                let _ = write!(s, "{} {dst}, {src}", inst.opcode);
            }
        }
        InstKind::Use { oprs } => {
            let _ = write!(s, "{}", inst.opcode);
            for (k, o) in oprs.iter().enumerate() {
                let sep = if k == 0 { " " } else { ", " };
                let _ = write!(s, "{sep}{o}");
            }
        }
        InstKind::Push { src } => {
            let _ = write!(s, "push {src}");
        }
        InstKind::Pop { dst } => {
            let _ = write!(s, "pop {dst}");
        }
        InstKind::Call { target } => match target {
            CallTarget::Direct(f) => {
                let _ = write!(s, "call {}", prog.func(*f).name);
            }
            CallTarget::External(k) => {
                let _ = write!(s, "call {k:?}");
            }
            CallTarget::Indirect(o) => {
                let _ = write!(s, "call {o}");
            }
        },
        InstKind::Ret => {
            let _ = write!(s, "ret");
        }
    }
    s
}

/// Renders a whole program as a disassembly listing with function headers.
pub fn format_program(prog: &Program) -> String {
    let mut s = String::new();
    for f in prog.funcs() {
        let _ = writeln!(s, "; ---- {} ({}) ----", f.name, f.id);
        for id in f.inst_ids() {
            let _ = writeln!(s, "{}", format_inst(prog, id));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExternKind, Opcode, Operand, ProgramBuilder, Reg};

    #[test]
    fn listing_contains_functions_and_mnemonics() {
        let mut b = ProgramBuilder::new();
        b.begin_func("main");
        b.inst(
            Opcode::Mov,
            InstKind::Mov { dst: Operand::reg(Reg::Esi), src: Operand::mem_abs(0x74404u64, 0) },
        );
        b.call_extern(ExternKind::Malloc);
        b.ret();
        b.end_func();
        let p = b.finish().unwrap();
        let text = format_program(&p);
        assert!(text.contains("; ---- main"));
        assert!(text.contains("mov esi, dword ptr [074404h]"));
        assert!(text.contains("call Malloc"));
        assert!(text.contains("ret"));
    }
}
