//! Integration tests of the experiment harness public API on a micro suite.

use tiara::{ClassifierConfig, Slicer};
use tiara_eval::report::{render_table1, render_table2_rows, render_table3};
use tiara_eval::tables::{table1, table3};
use tiara_eval::{build_suite, cross_experiments, intra_experiments, run_experiment, SlicedSuite};

fn micro() -> Vec<tiara_synth::Binary> {
    build_suite(19, 0.03)
}

#[test]
fn full_intra_row_pair_runs_and_reports() {
    let bins = micro();
    let t = SlicedSuite::build(&bins, &Slicer::default(), 2);
    let s = SlicedSuite::build(&bins, &Slicer::Sslice, 2);
    let cfg = ClassifierConfig { epochs: 8, ..Default::default() };
    let spec = &intra_experiments()[0];
    let ra = run_experiment(&t, spec, &cfg, 3);
    let rb = run_experiment(&s, spec, &cfg, 3);
    assert_eq!(ra.id, "I1a");
    assert_eq!(rb.id, "I1b");
    assert_eq!(ra.train_size + ra.test_size, rb.train_size + rb.test_size);
    assert!(ra.train_secs > 0.0);
    let text = render_table2_rows(&[ra, rb]);
    assert!(text.contains("I1a") && text.contains("I1b"));
}

#[test]
fn cross_experiment_train_and_test_are_disjoint_projects() {
    let bins = micro();
    let t = SlicedSuite::build(&bins, &Slicer::default(), 2);
    let cfg = ClassifierConfig { epochs: 4, ..Default::default() };
    let spec = &cross_experiments()[1]; // all - clang -> clang
    let res = run_experiment(&t, spec, &cfg, 1);
    let clang_total = t.dataset("clang").len();
    assert_eq!(res.test_size, clang_total, "tests exactly the held-out project");
    let all_total: usize = t.datasets.iter().map(|d| d.len()).sum();
    assert_eq!(res.train_size, all_total - clang_total);
}

#[test]
fn tables_render_from_a_real_suite() {
    let bins = micro();
    let t1 = render_table1(&table1(&bins));
    for name in ["clang", "cmake", "bitcoind", "spdlog", "soci", "re2", "arduinojson", "list_ext"] {
        assert!(t1.contains(name), "{name} missing from Table I:\n{t1}");
    }
    let t = SlicedSuite::build(&bins, &Slicer::default(), 2);
    let s = SlicedSuite::build(&bins, &Slicer::Sslice, 2);
    let t3 = render_table3(&table3(&t, &s));
    assert!(t3.contains("std::vector"));
    assert!(t3.contains("primitive"));
}

#[test]
fn sliced_suite_lookup_and_merge() {
    let bins = micro();
    let t = SlicedSuite::build(&bins, &Slicer::default(), 2);
    assert_eq!(t.project_names().len(), 8);
    let merged = t.merged(&["re2", "list_ext"]);
    assert_eq!(merged.len(), t.dataset("re2").len() + t.dataset("list_ext").len());
    assert!(t.total_slice_secs() > 0.0);
}
