//! The `tiara-eval bench` mode: measured slicing/encoding/training
//! throughput at 1 vs N threads, emitted as text or as `BENCH_PR4.json`.
//!
//! Every later perf PR regenerates this file and compares: the report
//! carries slices/sec, graphs/sec (slice→graph + feature encoding with a
//! warm slice cache), mean epoch wall-time, and end-to-end wall-time per
//! thread count, plus the derived speedups and a bitwise model-equality
//! check across thread counts (the determinism contract of `tiara-par`).
//! Each run also carries the slicer's own hot-loop counters
//! ([`SliceStats`]) aggregated over the cold pass, so throughput changes
//! can be attributed: how many steps ran, how many merges the version memo
//! skipped, how many snapshot bytes the arena avoided copying.
//!
//! JSON is rendered by hand (no serde round-trip) so the output is a plain
//! artifact of the harness itself.

use std::fmt::Write as _;
use std::hash::{DefaultHasher, Hash, Hasher};
use tiara::{slice_cache, Classifier, ClassifierConfig, Dataset, Slicer};
use tiara_par::Executor;
use tiara_slice::SliceStats;
use tiara_synth::Binary;

/// Bench parameters (mirrors the CLI flags).
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Suite scale factor (as `--scale`).
    pub scale: f64,
    /// Training epochs per measured run.
    pub epochs: usize,
    /// Suite + classifier seed.
    pub seed: u64,
    /// The "N" in "1 vs N threads".
    pub threads: usize,
}

/// Measurements for one thread count.
#[derive(Debug, Clone)]
pub struct ThreadBench {
    /// Worker threads used.
    pub threads: usize,
    /// Cold slicing+encoding wall time over the whole suite, seconds.
    pub slice_secs: f64,
    /// Labeled variables sliced.
    pub slices: usize,
    /// Cold pipeline throughput.
    pub slices_per_sec: f64,
    /// Warm-cache pass wall time (slice→graph conversion + 42-dim feature
    /// encoding only), seconds.
    pub graph_secs: f64,
    /// Warm-cache conversion throughput.
    pub graphs_per_sec: f64,
    /// Training wall time, seconds.
    pub train_secs: f64,
    /// Mean epoch wall time, seconds.
    pub epoch_secs: f64,
    /// Slice + train wall time, seconds.
    pub end_to_end_secs: f64,
    /// Hash of the trained model's prediction bits over a probe set.
    pub model_digest: u64,
    /// Slicer hot-loop counters aggregated over the cold pass.
    pub slice_stats: SliceStats,
}

/// The full bench report.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// The configuration measured.
    pub config: BenchConfig,
    /// One row per thread count (first row is always 1 thread).
    pub runs: Vec<ThreadBench>,
    /// `slices_per_sec(N) / slices_per_sec(1)`.
    pub slicing_speedup: f64,
    /// `epoch_secs(1) / epoch_secs(N)`.
    pub epoch_speedup: f64,
    /// `end_to_end_secs(1) / end_to_end_secs(N)`.
    pub end_to_end_speedup: f64,
    /// Whether every run produced a bitwise-identical trained model.
    pub models_identical: bool,
    /// Cores available to this process: speedups saturate here, so a report
    /// generated on a 1-core host legitimately shows ~1x.
    pub host_cpus: usize,
}

/// How many samples the model digest probes. Any diverging weight shows up
/// in the probability bits almost surely.
const DIGEST_PROBE: usize = 64;

fn model_digest(clf: &Classifier, ds: &Dataset) -> u64 {
    let mut h = DefaultHasher::new();
    for s in ds.samples.iter().take(DIGEST_PROBE) {
        for p in clf.predict_proba(&s.graph) {
            p.to_bits().hash(&mut h);
        }
    }
    h.finish()
}

fn bench_at(bins: &[Binary], cfg: &BenchConfig, threads: usize) -> ThreadBench {
    let exec = Executor::new(threads);
    let slicer = Slicer::default();
    // The kernels inside training dispatch on the global executor.
    tiara_par::set_global_threads(threads);

    // Cold pass: true slicing+encoding throughput, nothing cached. The
    // global slicer counters are reset around it so `slice_stats` reflects
    // exactly this pass.
    slice_cache::clear();
    slice_cache::set_enabled(false);
    tiara_slice::reset_global_stats();
    let t0 = std::time::Instant::now();
    let mut datasets: Vec<Dataset> = bins
        .iter()
        .map(|b| Dataset::from_binary_with(&b.program, &b.debug, &b.name, &slicer, &exec))
        .collect();
    let slice_secs = t0.elapsed().as_secs_f64();
    let slice_stats = tiara_slice::global_stats();
    let slices: usize = datasets.iter().map(|d| d.len()).sum();

    // Warm pass: fill the cache once (unmeasured), then time a pass whose
    // slicing is pure cache hits — what remains is graph conversion and
    // feature encoding.
    slice_cache::set_enabled(true);
    for b in bins {
        let _ = Dataset::from_binary_with(&b.program, &b.debug, &b.name, &slicer, &exec);
    }
    let t1 = std::time::Instant::now();
    for b in bins {
        let _ = Dataset::from_binary_with(&b.program, &b.debug, &b.name, &slicer, &exec);
    }
    let graph_secs = t1.elapsed().as_secs_f64();
    slice_cache::clear();

    let mut merged = Dataset::new();
    for d in datasets.drain(..) {
        merged.merge(d);
    }
    let mut clf =
        Classifier::new(&ClassifierConfig { epochs: cfg.epochs, seed: cfg.seed, ..Default::default() });
    let t2 = std::time::Instant::now();
    clf.train(&merged).expect("bench suite is nonempty");
    let train_secs = t2.elapsed().as_secs_f64();

    ThreadBench {
        threads,
        slice_secs,
        slices,
        slices_per_sec: slices as f64 / slice_secs.max(1e-9),
        graph_secs,
        graphs_per_sec: slices as f64 / graph_secs.max(1e-9),
        train_secs,
        epoch_secs: train_secs / cfg.epochs.max(1) as f64,
        end_to_end_secs: slice_secs + train_secs,
        model_digest: model_digest(&clf, &merged),
        slice_stats,
    }
}

/// Runs the bench: the Table I suite at `scale`, sliced and trained at
/// 1 thread and at `config.threads` threads.
pub fn run_bench(config: &BenchConfig) -> BenchReport {
    let bins = crate::build_suite(config.seed, config.scale);
    let n = config.threads.max(2);
    let prev_threads = tiara_par::global().threads();
    let mut runs = vec![bench_at(&bins, config, 1)];
    runs.push(bench_at(&bins, config, n));
    // Restore the executor configuration for whatever runs next.
    tiara_par::set_global_threads(prev_threads);

    let (one, nthr) = (&runs[0], &runs[runs.len() - 1]);
    BenchReport {
        config: config.clone(),
        slicing_speedup: nthr.slices_per_sec / one.slices_per_sec.max(1e-9),
        epoch_speedup: one.epoch_secs / nthr.epoch_secs.max(1e-9),
        end_to_end_speedup: one.end_to_end_secs / nthr.end_to_end_secs.max(1e-9),
        models_identical: runs.iter().all(|r| r.model_digest == runs[0].model_digest),
        host_cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
        runs,
    }
}

/// Renders the report as JSON (hand-rolled; schema is stable for artifact
/// diffing across PRs).
pub fn render_json(r: &BenchReport) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\n  \"bench\": \"PR4\",\n  \"scale\": {},\n  \"epochs\": {},\n  \"seed\": {},\n  \"host_cpus\": {},\n  \"runs\": [",
        r.config.scale, r.config.epochs, r.config.seed, r.host_cpus
    );
    for (i, run) in r.runs.iter().enumerate() {
        let st = &run.slice_stats;
        let _ = write!(
            s,
            "{}\n    {{\"threads\": {}, \"slices\": {}, \"slice_secs\": {:.6}, \
             \"slices_per_sec\": {:.2}, \"graph_secs\": {:.6}, \"graphs_per_sec\": {:.2}, \
             \"train_secs\": {:.6}, \"epoch_secs\": {:.6}, \"end_to_end_secs\": {:.6}, \
             \"model_digest\": \"{:016x}\",\n     \"slice_stats\": {{\"steps\": {}, \
             \"faith_cut_pops\": {}, \"merges_skipped\": {}, \"snapshot_bytes_avoided\": {}, \
             \"set_spills\": {}, \"worklist_hits\": {}}}}}",
            if i == 0 { "" } else { "," },
            run.threads,
            run.slices,
            run.slice_secs,
            run.slices_per_sec,
            run.graph_secs,
            run.graphs_per_sec,
            run.train_secs,
            run.epoch_secs,
            run.end_to_end_secs,
            run.model_digest,
            st.steps,
            st.faith_cut_pops,
            st.merges_skipped,
            st.snapshot_bytes_avoided,
            st.set_spills,
            st.worklist_hits
        );
    }
    let _ = write!(
        s,
        "\n  ],\n  \"slicing_speedup\": {:.3},\n  \"epoch_speedup\": {:.3},\n  \
         \"end_to_end_speedup\": {:.3},\n  \"models_identical\": {}\n}}\n",
        r.slicing_speedup, r.epoch_speedup, r.end_to_end_speedup, r.models_identical
    );
    s
}

/// Renders the report as a human-readable table.
pub fn render_text(r: &BenchReport) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "BENCH — parallel pipeline at 1 vs {} threads (scale {}, {} epochs)",
        r.runs.last().map_or(0, |x| x.threads),
        r.config.scale,
        r.config.epochs
    );
    let _ = writeln!(
        s,
        "{:>8} {:>10} {:>12} {:>12} {:>11} {:>13}",
        "threads", "slices", "slices/s", "graphs/s", "epoch (s)", "end-to-end (s)"
    );
    for run in &r.runs {
        let _ = writeln!(
            s,
            "{:>8} {:>10} {:>12.1} {:>12.1} {:>11.4} {:>13.2}",
            run.threads,
            run.slices,
            run.slices_per_sec,
            run.graphs_per_sec,
            run.epoch_secs,
            run.end_to_end_secs
        );
    }
    let _ = writeln!(
        s,
        "speedups: slicing {:.2}x, epoch {:.2}x, end-to-end {:.2}x; models identical: {} ({} host cpus)",
        r.slicing_speedup, r.epoch_speedup, r.end_to_end_speedup, r.models_identical, r.host_cpus
    );
    if let Some(run) = r.runs.first() {
        let _ = writeln!(s, "slicer counters (cold pass, 1 thread): {}", run.slice_stats);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_small_and_reports_identical_models() {
        let report = run_bench(&BenchConfig { scale: 0.02, epochs: 2, seed: 3, threads: 2 });
        assert_eq!(report.runs.len(), 2);
        assert_eq!(report.runs[0].threads, 1);
        assert_eq!(report.runs[1].threads, 2);
        assert!(report.runs.iter().all(|r| r.slices > 0));
        assert!(
            report.models_identical,
            "training must be bitwise deterministic across thread counts"
        );
        let json = render_json(&report);
        assert!(json.contains("\"bench\": \"PR4\""));
        assert!(json.contains("\"models_identical\": true"));
        assert!(json.contains("\"slice_stats\""));
        assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'));
        let text = render_text(&report);
        assert!(text.contains("speedups"));
        assert!(text.contains("slicer counters"));
        // The fast path did real work on a real suite: steps were taken and
        // per-edge snapshots were avoided.
        let st = &report.runs[0].slice_stats;
        assert!(st.steps > 0);
        assert!(st.snapshot_bytes_avoided > 0);
    }
}
