//! The `tiara-eval bench` mode: measured slicing/encoding/training
//! throughput at 1 vs N threads, emitted as text or as `BENCH_PR10.json`.
//!
//! Every later perf PR regenerates this file and compares: the report
//! carries slices/sec, graphs/sec (slice→graph + feature encoding with a
//! warm slice cache), mean epoch wall-time, and end-to-end wall-time per
//! thread count, plus the derived speedups and a bitwise model-equality
//! check across thread counts (the determinism contract of `tiara-par`).
//! Each run also carries the slicer's own hot-loop counters
//! ([`SliceStats`]) aggregated over the cold pass, so throughput changes
//! can be attributed: how many steps ran, how many merges the version memo
//! skipped, how many snapshot bytes the arena avoided copying.
//!
//! Since PR 5 the report also measures the **serving path**: an in-process
//! `tiara-serve` [`Server`] answers predict batches through the full wire
//! codec (`handle_line`), cold (empty slice cache) and warm (pure cache
//! hits), with a byte-identical-response check — the daemon's determinism
//! contract.
//!
//! Since PR 8 each run additionally carries the trainer's own hot-loop
//! counters ([`TrainStats`]): wall time split into forward/backward/
//! optimizer, batches run, fused-kernel invocations, and workspace bytes
//! reused instead of reallocated. The report also cross-checks the batched
//! engine against the retained per-sample reference tape
//! (`reference_digest_match`) and measures a quantized (int8 conv) warm
//! serving pass with a label-parity check against the f32 responses.
//!
//! Since PR 9 the report also measures **cold start**: a trained system plus
//! its warm slice cache is persisted as a `.tc` container
//! (`tiara-container`), the process-wide cache is dropped, and the timed
//! region covers `Tiara::load` (weights mapped zero-copy, cache shards
//! restored) plus the first predict batch. The same batch is then answered
//! through the legacy JSON path (parse + cold slicing) for the speedup
//! baseline, with bitwise response and model-digest equality checks between
//! the two paths.
//!
//! Since PR 10 the report also measures the **multiplexed serving path**: a
//! real TCP daemon (the nonblocking reactor) holding two distinct models,
//! driven by N concurrent clients that interleave model-addressed predict
//! batches, plus a connection-scaling sweep (ping round-trip with 1, 64,
//! and 256 idle connections held open). The daemon's own latency histogram
//! provides p50/p99, and per-client wall times give a fairness ratio.
//!
//! JSON is rendered by hand (no serde round-trip) so the output is a plain
//! artifact of the harness itself.

use std::fmt::Write as _;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::io::{BufRead as _, BufReader, Write as _};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use tiara::{slice_cache, Classifier, ClassifierConfig, Dataset, Slicer, Tiara, TiaraConfig};
use tiara_gnn::TrainStats;
use tiara_ir::VarAddr;
use tiara_par::Executor;
use tiara_serve::{Registry, ServeConfig, Server};
use tiara_slice::SliceStats;
use tiara_synth::Binary;

/// Bench parameters (mirrors the CLI flags).
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Suite scale factor (as `--scale`).
    pub scale: f64,
    /// Training epochs per measured run.
    pub epochs: usize,
    /// Suite + classifier seed.
    pub seed: u64,
    /// The "N" in "1 vs N threads".
    pub threads: usize,
}

/// Measurements for one thread count.
#[derive(Debug, Clone)]
pub struct ThreadBench {
    /// Worker threads used.
    pub threads: usize,
    /// Cold slicing+encoding wall time over the whole suite, seconds.
    pub slice_secs: f64,
    /// Labeled variables sliced.
    pub slices: usize,
    /// Cold pipeline throughput.
    pub slices_per_sec: f64,
    /// Warm-cache pass wall time (slice→graph conversion + 42-dim feature
    /// encoding only), seconds.
    pub graph_secs: f64,
    /// Warm-cache conversion throughput.
    pub graphs_per_sec: f64,
    /// Training wall time, seconds.
    pub train_secs: f64,
    /// Mean epoch wall time, seconds.
    pub epoch_secs: f64,
    /// Slice + train wall time, seconds.
    pub end_to_end_secs: f64,
    /// Hash of the trained model's prediction bits over a probe set.
    pub model_digest: u64,
    /// Slicer hot-loop counters aggregated over the cold pass.
    pub slice_stats: SliceStats,
    /// Trainer hot-loop counters for the measured training run.
    pub train_stats: TrainStats,
}

/// Measurements of the serving path: predict batches answered by an
/// in-process `tiara-serve` server through the full wire codec.
#[derive(Debug, Clone)]
pub struct ServeBench {
    /// Addresses served per pass.
    pub addrs: usize,
    /// Addresses per predict request.
    pub batch: usize,
    /// Cold pass (empty slice cache) wall time, seconds.
    pub cold_secs: f64,
    /// Cold served throughput, addresses/second.
    pub cold_addrs_per_sec: f64,
    /// Warm pass (all slices cached) wall time, seconds.
    pub warm_secs: f64,
    /// Warm served throughput, addresses/second.
    pub warm_addrs_per_sec: f64,
    /// Whether the warm pass produced byte-identical responses to the cold
    /// pass — the daemon's determinism contract.
    pub responses_identical: bool,
    /// Warm pass through a quantized (int8 conv) server, seconds.
    pub quantized_warm_secs: f64,
    /// Quantized warm throughput, addresses/second.
    pub quantized_warm_addrs_per_sec: f64,
    /// Whether the quantized server predicted the same class labels as the
    /// f32 server on every address.
    pub quantized_labels_match: bool,
}

/// Measurements of the cold-start path: container load + first batch vs
/// the legacy JSON path on the same addresses.
#[derive(Debug, Clone)]
pub struct ColdStartBench {
    /// Size of the persisted `.tc` container, bytes.
    pub container_bytes: usize,
    /// Weight bytes the loaded system consumes zero-copy from the mapped
    /// container (the reused-bytes stat; 0 would mean weights were copied).
    pub mapped_weight_bytes: usize,
    /// Persisted slice-cache entries restored by the load.
    pub restored_cache_entries: usize,
    /// Addresses in the first predict batch.
    pub addrs: usize,
    /// Container path: `Tiara::load` + first batch, seconds.
    pub cold_start_secs: f64,
    /// Container-path first-batch throughput, addresses/second.
    pub cold_addrs_per_sec: f64,
    /// JSON path: parse + cold first batch (slices recomputed), seconds.
    pub json_cold_start_secs: f64,
    /// JSON-path first-batch throughput, addresses/second.
    pub json_cold_addrs_per_sec: f64,
    /// Whether the legacy JSON parse itself succeeded. False under the
    /// offline serde stub; the baseline then reuses the in-memory system
    /// and still pays the full cold slicing cost.
    pub legacy_parse_ok: bool,
    /// `json_cold_start_secs / cold_start_secs`.
    pub speedup: f64,
    /// First-batch predictions bitwise identical between the two paths.
    pub responses_identical: bool,
    /// Model digests equal between the container-loaded and JSON-path
    /// systems.
    pub digests_equal: bool,
}

/// One point in the connection-scaling sweep: `conns` idle connections are
/// held open against the reactor, then a ping round-trip is measured
/// through one more connection — idle connections must not tax latency.
#[derive(Debug, Clone)]
pub struct ConnScalePoint {
    /// Idle connections held open during the probe.
    pub conns: usize,
    /// Wall time to open them all, seconds.
    pub connect_secs: f64,
    /// Best-of-several ping round-trip through a fresh connection while the
    /// idle connections stay open, microseconds.
    pub ping_us: u64,
}

/// Measurements of the multiplexed multi-model serving path: a real TCP
/// daemon (the nonblocking reactor) holding two distinct models, driven by
/// N concurrent clients interleaving model-addressed predict batches.
#[derive(Debug, Clone)]
pub struct MultiplexBench {
    /// Concurrent predicting clients.
    pub clients: usize,
    /// Distinct models served (distinct digests).
    pub models: usize,
    /// Predict requests per client.
    pub requests_per_client: usize,
    /// Addresses per predict request.
    pub batch: usize,
    /// Total addresses answered in the timed region.
    pub total_addrs: usize,
    /// Timed-region wall time, seconds.
    pub wall_secs: f64,
    /// Served throughput across all clients, addresses/second.
    pub addrs_per_sec: f64,
    /// Daemon-side p50 request latency (queue wait + inference), µs.
    pub p50_us: u64,
    /// Daemon-side p99 request latency, µs.
    pub p99_us: u64,
    /// Slowest client wall time / fastest client wall time — the WRR
    /// admission queue should keep this near 1.
    pub fairness_ratio: f64,
    /// Every client got byte-identical responses for the same request on
    /// the same model, and a post-run repeat reproduced them.
    pub responses_identical: bool,
    /// Peak simultaneously-open connections the daemon observed.
    pub conns_peak: u64,
    /// Predict requests each model answered (alias order).
    pub per_model_requests: Vec<u64>,
    /// The connection-scaling sweep.
    pub scaling: Vec<ConnScalePoint>,
}

/// The full bench report.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// The configuration measured.
    pub config: BenchConfig,
    /// One row per thread count (first row is always 1 thread).
    pub runs: Vec<ThreadBench>,
    /// The serving-path measurements.
    pub serve: ServeBench,
    /// The cold-start measurements (container vs legacy JSON).
    pub cold_start: ColdStartBench,
    /// The multiplexed multi-model serving measurements.
    pub multiplex: MultiplexBench,
    /// `slices_per_sec(N) / slices_per_sec(1)`.
    pub slicing_speedup: f64,
    /// `epoch_secs(1) / epoch_secs(N)`.
    pub epoch_speedup: f64,
    /// `end_to_end_secs(1) / end_to_end_secs(N)`.
    pub end_to_end_speedup: f64,
    /// Whether every run produced a bitwise-identical trained model.
    pub models_identical: bool,
    /// Whether the batched engine's model is bitwise identical to one
    /// trained through the retained per-sample reference tape
    /// (`ClassifierConfig::reference_mode`).
    pub reference_digest_match: bool,
    /// Cores available to this process: speedups saturate here, so a report
    /// generated on a 1-core host legitimately shows ~1x.
    pub host_cpus: usize,
}

/// How many samples the model digest probes. Any diverging weight shows up
/// in the probability bits almost surely.
const DIGEST_PROBE: usize = 64;

fn model_digest(clf: &Classifier, ds: &Dataset) -> u64 {
    let mut h = DefaultHasher::new();
    for s in ds.samples.iter().take(DIGEST_PROBE) {
        for p in clf.predict_proba(&s.graph) {
            p.to_bits().hash(&mut h);
        }
    }
    h.finish()
}

fn bench_at(bins: &[Binary], cfg: &BenchConfig, threads: usize) -> ThreadBench {
    let exec = Executor::new(threads);
    let slicer = Slicer::default();
    // The kernels inside training dispatch on the global executor.
    tiara_par::set_global_threads(threads);

    // Cold pass: true slicing+encoding throughput, nothing cached. The
    // global slicer counters are reset around it so `slice_stats` reflects
    // exactly this pass.
    slice_cache::clear();
    slice_cache::set_enabled(false);
    tiara_slice::reset_global_stats();
    let t0 = std::time::Instant::now();
    let mut datasets: Vec<Dataset> = bins
        .iter()
        .map(|b| Dataset::from_binary_with(&b.program, &b.debug, &b.name, &slicer, &exec))
        .collect();
    let slice_secs = t0.elapsed().as_secs_f64();
    let slice_stats = tiara_slice::global_stats();
    let slices: usize = datasets.iter().map(|d| d.len()).sum();

    // Warm pass: fill the cache once (unmeasured), then time a pass whose
    // slicing is pure cache hits — what remains is graph conversion and
    // feature encoding.
    slice_cache::set_enabled(true);
    for b in bins {
        let _ = Dataset::from_binary_with(&b.program, &b.debug, &b.name, &slicer, &exec);
    }
    let t1 = std::time::Instant::now();
    for b in bins {
        let _ = Dataset::from_binary_with(&b.program, &b.debug, &b.name, &slicer, &exec);
    }
    let graph_secs = t1.elapsed().as_secs_f64();
    slice_cache::clear();

    let mut merged = Dataset::new();
    for d in datasets.drain(..) {
        merged.merge(d);
    }
    let mut clf = Classifier::new(&ClassifierConfig {
        epochs: cfg.epochs,
        seed: cfg.seed,
        ..Default::default()
    });
    let t2 = std::time::Instant::now();
    clf.train(&merged).expect("bench suite is nonempty");
    let train_secs = t2.elapsed().as_secs_f64();

    ThreadBench {
        threads,
        slice_secs,
        slices,
        slices_per_sec: slices as f64 / slice_secs.max(1e-9),
        graph_secs,
        graphs_per_sec: slices as f64 / graph_secs.max(1e-9),
        train_secs,
        epoch_secs: train_secs / cfg.epochs.max(1) as f64,
        end_to_end_secs: slice_secs + train_secs,
        model_digest: model_digest(&clf, &merged),
        slice_stats,
        train_stats: clf.train_stats(),
    }
}

/// Trains once through the retained per-sample reference tape at 1 thread
/// and digests the model — the batched engine must reproduce it bitwise.
fn reference_digest(bins: &[Binary], cfg: &BenchConfig) -> u64 {
    let exec = Executor::new(1);
    let slicer = Slicer::default();
    tiara_par::set_global_threads(1);
    slice_cache::clear();
    let mut merged = Dataset::new();
    for b in bins {
        merged.merge(Dataset::from_binary_with(&b.program, &b.debug, &b.name, &slicer, &exec));
    }
    let mut clf = Classifier::new(&ClassifierConfig {
        epochs: cfg.epochs,
        seed: cfg.seed,
        reference_mode: true,
        ..Default::default()
    });
    clf.train(&merged).expect("bench suite is nonempty");
    model_digest(&clf, &merged)
}

/// The wire notation of an address (see `tiara_ir::parse_var_addr`).
fn addr_notation(bin: &Binary, addr: VarAddr) -> String {
    match addr {
        VarAddr::Global(m) => format!("0x{:x}", m.0),
        VarAddr::Stack { func, offset } => {
            let name = &bin.program.funcs()[func.0 as usize].name;
            if offset < 0 {
                format!("func:{name}:-0x{:x}", -offset)
            } else {
                format!("func:{name}:0x{offset:x}")
            }
        }
        VarAddr::Heap { site } => format!("heap:0x{:x}", site.0),
    }
}

/// Pulls every `"class":"…"` value, in order, out of a batch of wire
/// responses — enough to compare predicted labels across servers without
/// re-parsing the whole payload.
fn class_labels(responses: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    for r in responses {
        let mut rest = r.as_str();
        while let Some(i) = rest.find("\"class\":\"") {
            let tail = &rest[i + "\"class\":\"".len()..];
            let end = tail.find('"').unwrap_or(tail.len());
            out.push(tail[..end].to_owned());
            rest = &tail[end..];
        }
    }
    out
}

fn bench_tiara(bin: &Binary, cfg: &BenchConfig) -> Tiara {
    let mut tiara = Tiara::new(TiaraConfig::new().with_classifier(ClassifierConfig {
        epochs: cfg.epochs,
        seed: cfg.seed,
        ..Default::default()
    }));
    tiara.train(&[(bin.name.as_str(), &bin.program, &bin.debug)]).expect("bench suite is nonempty");
    tiara
}

fn upload(server: &Server, bin: &Binary) {
    let hex = tiara_serve::protocol::hex_encode(&tiara_ir::assemble(&bin.program));
    let up = server
        .handle_line(&format!("{{\"op\":\"upload\",\"handle\":\"b\",\"program_hex\":\"{hex}\"}}"));
    assert!(up.contains("\"ok\":true"), "bench upload failed: {up}");
}

fn bench_serve(bins: &[Binary], cfg: &BenchConfig) -> ServeBench {
    let bin = &bins[0];
    let server = Server::with_model(bench_tiara(bin, cfg), ServeConfig::default())
        .expect("trained model serves");
    upload(&server, bin);

    const BATCH: usize = 16;
    let addrs: Vec<String> = bin.debug.vars.iter().map(|v| addr_notation(bin, v.addr)).collect();
    let requests: Vec<String> = addrs
        .chunks(BATCH)
        .map(|chunk| {
            format!(
                "{{\"op\":\"predict\",\"program\":\"b\",\"addrs\":[{}]}}",
                chunk.iter().map(|a| format!("\"{a}\"")).collect::<Vec<_>>().join(",")
            )
        })
        .collect();

    // Cold: every slice computed. Warm: every slice a cache hit; responses
    // must come back byte-identical regardless.
    slice_cache::clear();
    let t0 = std::time::Instant::now();
    let cold: Vec<String> = requests.iter().map(|r| server.handle_line(r)).collect();
    let cold_secs = t0.elapsed().as_secs_f64();
    let t1 = std::time::Instant::now();
    let warm: Vec<String> = requests.iter().map(|r| server.handle_line(r)).collect();
    let warm_secs = t1.elapsed().as_secs_f64();
    server.drain();

    // Quantized pass: a second server over the identically-trained model
    // with int8 conv inference enabled, run against the already-warm slice
    // cache so the delta is pure inference. Labels must agree with f32.
    let mut qtiara = bench_tiara(bin, cfg);
    qtiara.set_quantized_inference(true);
    let qserver =
        Server::with_model(qtiara, ServeConfig::default()).expect("quantized model serves");
    upload(&qserver, bin);
    for r in &requests {
        let _ = qserver.handle_line(r); // prime caches
    }
    let t2 = std::time::Instant::now();
    let quant: Vec<String> = requests.iter().map(|r| qserver.handle_line(r)).collect();
    let quantized_warm_secs = t2.elapsed().as_secs_f64();
    qserver.drain();
    slice_cache::clear();

    ServeBench {
        addrs: addrs.len(),
        batch: BATCH,
        cold_secs,
        cold_addrs_per_sec: addrs.len() as f64 / cold_secs.max(1e-9),
        warm_secs,
        warm_addrs_per_sec: addrs.len() as f64 / warm_secs.max(1e-9),
        responses_identical: cold == warm,
        quantized_warm_secs,
        quantized_warm_addrs_per_sec: addrs.len() as f64 / quantized_warm_secs.max(1e-9),
        quantized_labels_match: {
            let (f32_labels, q_labels) = (class_labels(&warm), class_labels(&quant));
            !f32_labels.is_empty() && f32_labels == q_labels
        },
    }
}

/// Measures cold start: persist a trained system + warm slice cache as a
/// `.tc` container, drop the in-process cache, then time `Tiara::load` plus
/// the first predict batch — against the legacy JSON path on the same batch.
fn bench_cold_start(bins: &[Binary], cfg: &BenchConfig) -> ColdStartBench {
    let bin = &bins[0];
    let tiara = bench_tiara(bin, cfg);
    let addrs: Vec<VarAddr> = bin.debug.vars.iter().map(|v| v.addr).collect();

    // Warm the slice cache (unmeasured), then persist system + cache.
    slice_cache::clear();
    let warm_preds = tiara.predict_batch(&bin.program, &addrs).expect("bench model predicts");
    let path = std::env::temp_dir().join(format!("tiara-bench-cold-{}.tc", std::process::id()));
    tiara.save_with_cache(&path).expect("bench container saves");
    let container_bytes = std::fs::metadata(&path).map(|m| m.len() as usize).unwrap_or(0);
    let json = tiara.to_json().expect("bench model serializes");

    // Container path: load (maps weights, restores cache shards) + first
    // batch, all inside the timed region.
    slice_cache::clear();
    let t0 = std::time::Instant::now();
    let loaded = Tiara::load(&path).expect("bench container loads");
    let cold_preds = loaded.predict_batch(&bin.program, &addrs).expect("loaded model predicts");
    let cold_start_secs = t0.elapsed().as_secs_f64();
    let _ = std::fs::remove_file(&path);

    // JSON path: parse + cold first batch (every slice recomputed). Under
    // the offline serde stub the parse fails fast; the baseline then reuses
    // the in-memory system but still pays the full cold slicing cost.
    slice_cache::clear();
    let t1 = std::time::Instant::now();
    let (json_tiara, legacy_parse_ok) = match Tiara::from_json(&json) {
        Ok(t) => (t, true),
        Err(_) => (tiara.clone(), false),
    };
    let json_preds = json_tiara.predict_batch(&bin.program, &addrs).expect("json model predicts");
    let json_cold_start_secs = t1.elapsed().as_secs_f64();
    slice_cache::clear();

    let bitwise = |a: &[tiara::Prediction], b: &[tiara::Prediction]| {
        a.len() == b.len()
            && a.iter().zip(b).all(|(x, y)| {
                x.class == y.class
                    && x.probs.len() == y.probs.len()
                    && x.probs.iter().zip(&y.probs).all(|(p, q)| p.to_bits() == q.to_bits())
            })
    };
    ColdStartBench {
        container_bytes,
        mapped_weight_bytes: loaded.mapped_weight_bytes(),
        restored_cache_entries: loaded.restored_cache_entries(),
        addrs: addrs.len(),
        cold_start_secs,
        cold_addrs_per_sec: addrs.len() as f64 / cold_start_secs.max(1e-9),
        json_cold_start_secs,
        json_cold_addrs_per_sec: addrs.len() as f64 / json_cold_start_secs.max(1e-9),
        legacy_parse_ok,
        speedup: json_cold_start_secs / cold_start_secs.max(1e-9),
        responses_identical: bitwise(&cold_preds, &json_preds) && bitwise(&cold_preds, &warm_preds),
        digests_equal: loaded.model_digest() == json_tiara.model_digest(),
    }
}

/// A blocking line-protocol client for the multiplex bench: one socket,
/// one buffered reader, strict request/response lockstep.
struct MuxClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl MuxClient {
    fn connect(addr: std::net::SocketAddr) -> MuxClient {
        let stream = TcpStream::connect(addr).expect("bench client connects");
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(stream.try_clone().expect("bench stream clones"));
        MuxClient { stream, reader }
    }

    fn roundtrip(&mut self, line: &str) -> String {
        self.stream.write_all(line.as_bytes()).expect("bench request writes");
        self.stream.write_all(b"\n").expect("bench request writes");
        let mut resp = String::new();
        self.reader.read_line(&mut resp).expect("bench response reads");
        resp.truncate(resp.trim_end().len());
        resp
    }
}

/// Concurrent clients in the multiplex bench's timed region.
const MUX_CLIENTS: usize = 6;
/// Distinct models (distinct digests) the daemon serves.
const MUX_MODELS: usize = 2;
/// Predict requests per client, rotating across models.
const MUX_REQUESTS: usize = 12;
/// Addresses per predict request.
const MUX_BATCH: usize = 8;
/// Idle-connection counts for the scaling sweep.
const MUX_SCALING: &[usize] = &[1, 64, 256];

/// Measures the multiplexed multi-model serving path over real TCP: two
/// distinct models behind one reactor, a connection-scaling sweep, then
/// N concurrent clients interleaving model-addressed batches.
fn bench_multiplex(bins: &[Binary], cfg: &BenchConfig) -> MultiplexBench {
    use tiara_serve::json::Value;
    let bin = &bins[0];
    let registry = Registry::new();
    for m in 0..MUX_MODELS {
        // Different seeds, same suite: genuinely different weights/digests.
        let mcfg = BenchConfig { seed: cfg.seed + m as u64, ..cfg.clone() };
        registry
            .insert(&format!("m{m}"), bench_tiara(bin, &mcfg), None)
            .expect("trained model registers");
    }
    let server = Arc::new(Server::new(registry, ServeConfig::default()).expect("registry serves"));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bench listener binds");
    let addr = listener.local_addr().expect("bench listener has an addr");
    let reactor = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.run_tcp(listener))
    };

    let mut main = MuxClient::connect(addr);
    // One upload serves every connection: the program store is shared.
    let hex = tiara_serve::protocol::hex_encode(&tiara_ir::assemble(&bin.program));
    let up = main
        .roundtrip(&format!("{{\"op\":\"upload\",\"handle\":\"b\",\"program_hex\":\"{hex}\"}}"));
    assert!(up.contains("\"ok\":true"), "bench upload failed: {up}");

    // Connection scaling: hold N idle connections open, then measure a ping
    // round-trip through a fresh one — idle connections are buffers, not
    // threads, and must not tax latency.
    let mut scaling = Vec::new();
    for &n in MUX_SCALING {
        let t0 = std::time::Instant::now();
        let idle: Vec<MuxClient> = (0..n).map(|_| MuxClient::connect(addr)).collect();
        let connect_secs = t0.elapsed().as_secs_f64();
        let mut probe = MuxClient::connect(addr);
        let mut ping_us = u64::MAX;
        for _ in 0..5 {
            let t = std::time::Instant::now();
            let pong = probe.roundtrip("{\"op\":\"ping\"}");
            assert!(pong.contains("\"ok\":true"), "ping failed under {n} idle conns: {pong}");
            ping_us = ping_us.min(t.elapsed().as_micros() as u64);
        }
        scaling.push(ConnScalePoint { conns: n, connect_secs, ping_us });
        drop(idle);
    }

    // Every client sends the same rotation of (model, address-chunk) pairs,
    // so responses for the same request index must agree byte-for-byte
    // across clients.
    let notations: Vec<String> =
        bin.debug.vars.iter().map(|v| addr_notation(bin, v.addr)).collect();
    let chunks: Vec<(String, usize)> = notations
        .chunks(MUX_BATCH)
        .map(|c| (c.iter().map(|a| format!("\"{a}\"")).collect::<Vec<_>>().join(","), c.len()))
        .collect();
    let mut per_client_addrs = 0usize;
    let requests: Arc<Vec<String>> = Arc::new(
        (0..MUX_REQUESTS)
            .map(|i| {
                let (chunk, len) = &chunks[i % chunks.len()];
                per_client_addrs += len;
                format!(
                    "{{\"op\":\"predict\",\"program\":\"b\",\"addrs\":[{chunk}],\"model\":\"m{}\"}}",
                    i % MUX_MODELS
                )
            })
            .collect(),
    );
    // Prime the slice cache so the timed region measures serving throughput,
    // not first-touch slicing.
    for r in requests.iter() {
        let resp = main.roundtrip(r);
        assert!(resp.contains("\"ok\":true"), "bench prime failed: {resp}");
    }

    let t0 = std::time::Instant::now();
    let clients: Vec<_> = (0..MUX_CLIENTS)
        .map(|_| {
            let requests = Arc::clone(&requests);
            std::thread::spawn(move || {
                let mut client = MuxClient::connect(addr);
                let t = std::time::Instant::now();
                let mut firsts = Vec::new();
                for (i, r) in requests.iter().enumerate() {
                    let resp = client.roundtrip(r);
                    assert!(resp.contains("\"ok\":true"), "bench predict failed: {resp}");
                    if i < MUX_MODELS {
                        firsts.push(resp);
                    }
                }
                (t.elapsed().as_secs_f64(), firsts)
            })
        })
        .collect();
    let results: Vec<(f64, Vec<String>)> =
        clients.into_iter().map(|c| c.join().expect("bench client thread")).collect();
    let wall_secs = t0.elapsed().as_secs_f64();

    let mut responses_identical = results.windows(2).all(|w| w[0].1 == w[1].1);
    for (i, r) in requests.iter().take(MUX_MODELS).enumerate() {
        responses_identical &= main.roundtrip(r) == results[0].1[i];
    }
    let fastest = results.iter().map(|r| r.0).fold(f64::MAX, f64::min);
    let slowest = results.iter().map(|r| r.0).fold(0.0f64, f64::max);

    let stats = tiara_serve::json::parse(&main.roundtrip("{\"op\":\"stats\"}"))
        .expect("stats reply parses");
    let quant = |q: &str| {
        stats.get("latency_us").and_then(|l| l.get(q)).and_then(Value::as_i64).unwrap_or(0) as u64
    };
    let conns_peak =
        stats.get("connections").and_then(|c| c.get("peak")).and_then(Value::as_i64).unwrap_or(0)
            as u64;
    let per_model_requests: Vec<u64> = stats
        .get("models")
        .and_then(Value::as_array)
        .map(|ms| {
            ms.iter()
                .map(|m| m.get("requests").and_then(Value::as_i64).unwrap_or(0) as u64)
                .collect()
        })
        .unwrap_or_default();

    let bye = main.roundtrip("{\"op\":\"shutdown\"}");
    assert!(bye.contains("\"ok\":true"), "bench shutdown failed: {bye}");
    reactor.join().expect("reactor thread").expect("reactor io");
    slice_cache::clear();

    let total_addrs = per_client_addrs * MUX_CLIENTS;
    MultiplexBench {
        clients: MUX_CLIENTS,
        models: MUX_MODELS,
        requests_per_client: MUX_REQUESTS,
        batch: MUX_BATCH,
        total_addrs,
        wall_secs,
        addrs_per_sec: total_addrs as f64 / wall_secs.max(1e-9),
        p50_us: quant("p50"),
        p99_us: quant("p99"),
        fairness_ratio: slowest / fastest.max(1e-9),
        responses_identical,
        conns_peak,
        per_model_requests,
        scaling,
    }
}

/// Runs the bench: the Table I suite at `scale`, sliced and trained at
/// 1 thread and at `config.threads` threads, then the serving path.
pub fn run_bench(config: &BenchConfig) -> BenchReport {
    let bins = crate::build_suite(config.seed, config.scale);
    let n = config.threads.max(2);
    let prev_threads = tiara_par::global().threads();
    let mut runs = vec![bench_at(&bins, config, 1)];
    runs.push(bench_at(&bins, config, n));
    let reference_digest_match = reference_digest(&bins, config) == runs[0].model_digest;
    let serve = bench_serve(&bins, config);
    let cold_start = bench_cold_start(&bins, config);
    let multiplex = bench_multiplex(&bins, config);
    // Restore the executor configuration for whatever runs next.
    tiara_par::set_global_threads(prev_threads);

    let (one, nthr) = (&runs[0], &runs[runs.len() - 1]);
    BenchReport {
        config: config.clone(),
        slicing_speedup: nthr.slices_per_sec / one.slices_per_sec.max(1e-9),
        epoch_speedup: one.epoch_secs / nthr.epoch_secs.max(1e-9),
        end_to_end_speedup: one.end_to_end_secs / nthr.end_to_end_secs.max(1e-9),
        models_identical: runs.iter().all(|r| r.model_digest == runs[0].model_digest),
        reference_digest_match,
        host_cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
        runs,
        serve,
        cold_start,
        multiplex,
    }
}

/// Renders the report as JSON (hand-rolled; schema is stable for artifact
/// diffing across PRs).
pub fn render_json(r: &BenchReport) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\n  \"bench\": \"PR10\",\n  \"scale\": {},\n  \"epochs\": {},\n  \"seed\": {},\n  \"host_cpus\": {},\n  \"runs\": [",
        r.config.scale, r.config.epochs, r.config.seed, r.host_cpus
    );
    for (i, run) in r.runs.iter().enumerate() {
        let st = &run.slice_stats;
        let _ = write!(
            s,
            "{}\n    {{\"threads\": {}, \"slices\": {}, \"slice_secs\": {:.6}, \
             \"slices_per_sec\": {:.2}, \"graph_secs\": {:.6}, \"graphs_per_sec\": {:.2}, \
             \"train_secs\": {:.6}, \"epoch_secs\": {:.6}, \"end_to_end_secs\": {:.6}, \
             \"model_digest\": \"{:016x}\",\n     \"slice_stats\": {{\"steps\": {}, \
             \"faith_cut_pops\": {}, \"merges_skipped\": {}, \"snapshot_bytes_avoided\": {}, \
             \"set_spills\": {}, \"worklist_hits\": {}}},\n     \
             \"train_stats\": {{\"forward_secs\": {:.6}, \"backward_secs\": {:.6}, \
             \"optimizer_secs\": {:.6}, \"batches\": {}, \"fused_kernel_calls\": {}, \
             \"bytes_reused\": {}}}}}",
            if i == 0 { "" } else { "," },
            run.threads,
            run.slices,
            run.slice_secs,
            run.slices_per_sec,
            run.graph_secs,
            run.graphs_per_sec,
            run.train_secs,
            run.epoch_secs,
            run.end_to_end_secs,
            run.model_digest,
            st.steps,
            st.faith_cut_pops,
            st.merges_skipped,
            st.snapshot_bytes_avoided,
            st.set_spills,
            st.worklist_hits,
            run.train_stats.forward_secs,
            run.train_stats.backward_secs,
            run.train_stats.optimizer_secs,
            run.train_stats.batches,
            run.train_stats.fused_kernel_calls,
            run.train_stats.bytes_reused
        );
    }
    let sv = &r.serve;
    let _ = write!(
        s,
        "\n  ],\n  \"serve\": {{\"addrs\": {}, \"batch\": {}, \"cold_secs\": {:.6}, \
         \"cold_addrs_per_sec\": {:.2}, \"warm_secs\": {:.6}, \"warm_addrs_per_sec\": {:.2}, \
         \"responses_identical\": {},\n            \"quantized_warm_secs\": {:.6}, \
         \"quantized_warm_addrs_per_sec\": {:.2}, \"quantized_labels_match\": {}}},\n",
        sv.addrs,
        sv.batch,
        sv.cold_secs,
        sv.cold_addrs_per_sec,
        sv.warm_secs,
        sv.warm_addrs_per_sec,
        sv.responses_identical,
        sv.quantized_warm_secs,
        sv.quantized_warm_addrs_per_sec,
        sv.quantized_labels_match
    );
    let cs = &r.cold_start;
    let _ = write!(
        s,
        "  \"cold_start\": {{\"container_bytes\": {}, \"mapped_weight_bytes\": {}, \
         \"restored_cache_entries\": {}, \"addrs\": {},\n                 \
         \"cold_start_secs\": {:.6}, \"cold_addrs_per_sec\": {:.2}, \
         \"json_cold_start_secs\": {:.6}, \"json_cold_addrs_per_sec\": {:.2},\n                 \
         \"legacy_parse_ok\": {}, \"speedup\": {:.3}, \"responses_identical\": {}, \
         \"digests_equal\": {}}},\n",
        cs.container_bytes,
        cs.mapped_weight_bytes,
        cs.restored_cache_entries,
        cs.addrs,
        cs.cold_start_secs,
        cs.cold_addrs_per_sec,
        cs.json_cold_start_secs,
        cs.json_cold_addrs_per_sec,
        cs.legacy_parse_ok,
        cs.speedup,
        cs.responses_identical,
        cs.digests_equal
    );
    let mx = &r.multiplex;
    let _ = write!(
        s,
        "  \"multiplex\": {{\"clients\": {}, \"models\": {}, \"requests_per_client\": {}, \
         \"batch\": {}, \"total_addrs\": {},\n                \"wall_secs\": {:.6}, \
         \"addrs_per_sec\": {:.2}, \"p50_us\": {}, \"p99_us\": {}, \"fairness_ratio\": {:.3},\n                \
         \"responses_identical\": {}, \"conns_peak\": {}, \"per_model_requests\": [{}],\n                \
         \"scaling\": [",
        mx.clients,
        mx.models,
        mx.requests_per_client,
        mx.batch,
        mx.total_addrs,
        mx.wall_secs,
        mx.addrs_per_sec,
        mx.p50_us,
        mx.p99_us,
        mx.fairness_ratio,
        mx.responses_identical,
        mx.conns_peak,
        mx.per_model_requests.iter().map(u64::to_string).collect::<Vec<_>>().join(", ")
    );
    for (i, p) in mx.scaling.iter().enumerate() {
        let _ = write!(
            s,
            "{}{{\"conns\": {}, \"connect_secs\": {:.6}, \"ping_us\": {}}}",
            if i == 0 { "" } else { ", " },
            p.conns,
            p.connect_secs,
            p.ping_us
        );
    }
    s.push_str("]},\n");
    let _ = write!(
        s,
        "  \"slicing_speedup\": {:.3},\n  \"epoch_speedup\": {:.3},\n  \
         \"end_to_end_speedup\": {:.3},\n  \"models_identical\": {},\n  \
         \"reference_digest_match\": {}\n}}\n",
        r.slicing_speedup,
        r.epoch_speedup,
        r.end_to_end_speedup,
        r.models_identical,
        r.reference_digest_match
    );
    s
}

/// Renders the report as a human-readable table.
pub fn render_text(r: &BenchReport) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "BENCH — parallel pipeline at 1 vs {} threads (scale {}, {} epochs)",
        r.runs.last().map_or(0, |x| x.threads),
        r.config.scale,
        r.config.epochs
    );
    let _ = writeln!(
        s,
        "{:>8} {:>10} {:>12} {:>12} {:>11} {:>13}",
        "threads", "slices", "slices/s", "graphs/s", "epoch (s)", "end-to-end (s)"
    );
    for run in &r.runs {
        let _ = writeln!(
            s,
            "{:>8} {:>10} {:>12.1} {:>12.1} {:>11.4} {:>13.2}",
            run.threads,
            run.slices,
            run.slices_per_sec,
            run.graphs_per_sec,
            run.epoch_secs,
            run.end_to_end_secs
        );
    }
    let _ = writeln!(
        s,
        "speedups: slicing {:.2}x, epoch {:.2}x, end-to-end {:.2}x; models identical: {} ({} host cpus)",
        r.slicing_speedup, r.epoch_speedup, r.end_to_end_speedup, r.models_identical, r.host_cpus
    );
    if let Some(run) = r.runs.first() {
        let _ = writeln!(s, "slicer counters (cold pass, 1 thread): {}", run.slice_stats);
        let ts = &run.train_stats;
        let _ = writeln!(
            s,
            "trainer counters (1 thread): fwd {:.3}s, bwd {:.3}s, opt {:.3}s over {} batches; \
             {} fused kernel calls, {} workspace bytes reused",
            ts.forward_secs,
            ts.backward_secs,
            ts.optimizer_secs,
            ts.batches,
            ts.fused_kernel_calls,
            ts.bytes_reused
        );
    }
    let _ =
        writeln!(s, "batched engine matches reference tape bitwise: {}", r.reference_digest_match);
    let _ = writeln!(
        s,
        "served: {} addrs in batches of {} — cold {:.1} addrs/s, warm {:.1} addrs/s; responses identical: {}",
        r.serve.addrs,
        r.serve.batch,
        r.serve.cold_addrs_per_sec,
        r.serve.warm_addrs_per_sec,
        r.serve.responses_identical
    );
    let _ = writeln!(
        s,
        "quantized (int8 conv) warm: {:.1} addrs/s; labels match f32: {}",
        r.serve.quantized_warm_addrs_per_sec, r.serve.quantized_labels_match
    );
    let cs = &r.cold_start;
    let _ = writeln!(
        s,
        "cold start ({} addrs): container {:.4}s ({:.1} addrs/s) vs json {:.4}s ({:.1} addrs/s) \
         — {:.1}x; responses identical: {}, digests equal: {}",
        cs.addrs,
        cs.cold_start_secs,
        cs.cold_addrs_per_sec,
        cs.json_cold_start_secs,
        cs.json_cold_addrs_per_sec,
        cs.speedup,
        cs.responses_identical,
        cs.digests_equal
    );
    let _ = writeln!(
        s,
        "container: {} bytes on disk, {} weight bytes mapped zero-copy, {} cached slices \
         restored (legacy json parse ok: {})",
        cs.container_bytes, cs.mapped_weight_bytes, cs.restored_cache_entries, cs.legacy_parse_ok
    );
    let mx = &r.multiplex;
    let _ = writeln!(
        s,
        "multiplex: {} clients x {} models, {} addrs in {:.3}s ({:.1} addrs/s); p50 {}us, \
         p99 {}us; fairness {:.2}x; identical: {}; peak conns {}",
        mx.clients,
        mx.models,
        mx.total_addrs,
        mx.wall_secs,
        mx.addrs_per_sec,
        mx.p50_us,
        mx.p99_us,
        mx.fairness_ratio,
        mx.responses_identical,
        mx.conns_peak
    );
    for p in &mx.scaling {
        let _ = writeln!(
            s,
            "  {} idle conns: connect {:.4}s, ping {}us",
            p.conns, p.connect_secs, p.ping_us
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_small_and_reports_identical_models() {
        let report = run_bench(&BenchConfig { scale: 0.02, epochs: 2, seed: 3, threads: 2 });
        assert_eq!(report.runs.len(), 2);
        assert_eq!(report.runs[0].threads, 1);
        assert_eq!(report.runs[1].threads, 2);
        assert!(report.runs.iter().all(|r| r.slices > 0));
        assert!(
            report.models_identical,
            "training must be bitwise deterministic across thread counts"
        );
        assert!(report.serve.addrs > 0, "serving path answered no addresses");
        assert!(
            report.serve.responses_identical,
            "served responses must be byte-identical cold vs warm"
        );
        assert!(
            report.reference_digest_match,
            "batched training must match the reference tape bitwise"
        );
        assert!(
            report.serve.quantized_labels_match,
            "quantized serving must agree with f32 labels"
        );
        assert!(report.runs[0].train_stats.batches > 0);
        assert!(report.runs[0].train_stats.fused_kernel_calls > 0);
        assert!(report.runs[0].train_stats.bytes_reused > 0);
        let cs = &report.cold_start;
        assert!(cs.container_bytes > 0, "container was written");
        assert!(cs.mapped_weight_bytes > 0, "weights must be consumed zero-copy from the map");
        assert!(cs.restored_cache_entries > 0, "persisted slice-cache shards must restore");
        assert!(cs.responses_identical, "container path must answer bitwise-identically");
        assert!(cs.digests_equal, "loaded model digests must match the json path");
        let mx = &report.multiplex;
        assert_eq!(mx.models, 2);
        assert!(mx.total_addrs > 0, "multiplex bench served no addresses");
        assert!(mx.responses_identical, "multiplexed responses must be byte-identical");
        assert!(mx.conns_peak >= 256, "scaling sweep must actually hold 256 connections");
        assert_eq!(mx.per_model_requests.len(), 2);
        assert!(mx.per_model_requests.iter().all(|&n| n > 0), "both models must see traffic");
        assert_eq!(mx.scaling.len(), 3);
        let json = render_json(&report);
        assert!(json.contains("\"bench\": \"PR10\""));
        assert!(json.contains("\"multiplex\""));
        assert!(json.contains("\"p99_us\""));
        assert!(json.contains("\"scaling\""));
        assert!(json.contains("\"conns_peak\""));
        assert!(json.contains("\"cold_start\""));
        assert!(json.contains("\"cold_start_secs\""));
        assert!(json.contains("\"cold_addrs_per_sec\""));
        assert!(json.contains("\"digests_equal\": true"));
        assert!(json.contains("\"models_identical\": true"));
        assert!(json.contains("\"reference_digest_match\": true"));
        assert!(json.contains("\"slice_stats\""));
        assert!(json.contains("\"train_stats\""));
        assert!(json.contains("\"fused_kernel_calls\""));
        assert!(json.contains("\"serve\""));
        assert!(json.contains("\"responses_identical\": true"));
        assert!(json.contains("\"quantized_labels_match\": true"));
        assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'));
        let text = render_text(&report);
        assert!(text.contains("cold start"));
        assert!(text.contains("speedups"));
        assert!(text.contains("slicer counters"));
        assert!(text.contains("trainer counters"));
        assert!(text.contains("served:"));
        assert!(text.contains("quantized"));
        assert!(text.contains("multiplex:"));
        assert!(text.contains("idle conns"));
        // The fast path did real work on a real suite: steps were taken and
        // per-edge snapshots were avoided.
        let st = &report.runs[0].slice_stats;
        assert!(st.steps > 0);
        assert!(st.snapshot_bytes_avoided > 0);
    }
}
