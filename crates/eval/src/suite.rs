//! Suite construction: generating the eight benchmark binaries of Table I
//! and slicing every labeled variable with both slicers.

use tiara::{Dataset, Slicer};
use tiara_par::Executor;
use tiara_synth::{benchmark_suite, generate, Binary, ProjectSpec};

/// Scales a project spec's variable counts (for quick runs and tests).
pub fn scale_spec(spec: &ProjectSpec, scale: f64) -> ProjectSpec {
    let s = |n: usize| -> usize {
        if n == 0 {
            0
        } else {
            ((n as f64 * scale).round() as usize).max(1)
        }
    };
    ProjectSpec {
        counts: tiara_synth::TypeCounts {
            list: s(spec.counts.list),
            vector: s(spec.counts.vector),
            map: s(spec.counts.map),
            primitive: s(spec.counts.primitive),
            deque: s(spec.counts.deque),
            set: s(spec.counts.set),
            escape: s(spec.counts.escape),
            computed: s(spec.counts.computed),
        },
        ..spec.clone()
    }
}

/// Generates the full benchmark suite, optionally scaled.
pub fn build_suite(seed: u64, scale: f64) -> Vec<Binary> {
    benchmark_suite(seed).iter().map(|spec| generate(&scale_spec(spec, scale))).collect()
}

/// Generates the three-project extension suite (with `std::deque` and
/// `std::set` variables), optionally scaled.
pub fn build_extended_suite(seed: u64, scale: f64) -> Vec<Binary> {
    tiara_synth::extended_suite(seed)
        .iter()
        .map(|spec| generate(&scale_spec(spec, scale)))
        .collect()
}

/// How many labeled variables per binary the gate runs the slice-soundness
/// oracle on (slicing twice per criterion is not free; a fixed prefix is
/// enough to catch slicer regressions before a full run).
const ORACLE_SAMPLE: usize = 8;

/// Verifier gate: rejects a suite whose binaries fail the static verifier
/// or whose slices violate the soundness oracle.
///
/// Run this before slicing/training — a malformed binary or an unsound
/// slicer silently poisons every downstream table.
///
/// # Errors
///
/// Returns the rendered report of the first binary with verifier errors.
pub fn verify_suite(binaries: &[Binary]) -> Result<(), String> {
    for bin in binaries {
        let criteria: Vec<tiara_ir::VarAddr> =
            bin.debug.iter().take(ORACLE_SAMPLE).map(|r| r.addr).collect();
        let report = tiara_verify::verify_with_slices(&bin.program, &criteria);
        if report.has_errors() {
            return Err(format!(
                "verifier gate failed for `{}`:\n{}",
                bin.name,
                report.render_human(&bin.program)
            ));
        }
    }
    Ok(())
}

/// Builds the labeled dataset of one binary, slicing variables in parallel
/// across `threads` worker threads (the paper slices >100k addresses; even
/// scaled down, parallel slicing keeps the harness responsive).
///
/// A thin wrapper over [`Dataset::from_binary_with`] on the shared
/// [`tiara_par`] executor — the harness no longer carries its own
/// thread-pool code.
pub fn parallel_dataset(bin: &Binary, slicer: &Slicer, threads: usize) -> Dataset {
    Dataset::from_binary_with(&bin.program, &bin.debug, &bin.name, slicer, &Executor::new(threads))
}

/// Per-(project, slicer) datasets for the whole suite, with wall-clock
/// slicing time per project.
#[derive(Debug)]
pub struct SlicedSuite {
    /// The generated binaries.
    pub binaries: Vec<Binary>,
    /// One dataset per binary, same order.
    pub datasets: Vec<Dataset>,
    /// Slicing wall time per binary, in seconds.
    pub slice_secs: Vec<f64>,
    /// The slicer used.
    pub slicer_name: &'static str,
}

impl SlicedSuite {
    /// Slices every binary of the suite with the given slicer.
    pub fn build(binaries: &[Binary], slicer: &Slicer, threads: usize) -> SlicedSuite {
        let mut datasets = Vec::with_capacity(binaries.len());
        let mut slice_secs = Vec::with_capacity(binaries.len());
        for bin in binaries {
            let t0 = std::time::Instant::now();
            datasets.push(parallel_dataset(bin, slicer, threads));
            slice_secs.push(t0.elapsed().as_secs_f64());
        }
        SlicedSuite {
            binaries: binaries.to_vec(),
            datasets,
            slice_secs,
            slicer_name: slicer.name(),
        }
    }

    /// The dataset of a project by name.
    ///
    /// # Panics
    ///
    /// Panics if the project is not in the suite.
    pub fn dataset(&self, project: &str) -> &Dataset {
        let idx = self
            .binaries
            .iter()
            .position(|b| b.name == project)
            .unwrap_or_else(|| panic!("unknown project `{project}`"));
        &self.datasets[idx]
    }

    /// Merges the datasets of several projects.
    pub fn merged(&self, projects: &[&str]) -> Dataset {
        let mut out = Dataset::new();
        for p in projects {
            let mut d = Dataset::new();
            d.samples.extend(self.dataset(p).samples.iter().cloned());
            out.merge(d);
        }
        out
    }

    /// All project names.
    pub fn project_names(&self) -> Vec<&str> {
        self.binaries.iter().map(|b| b.name.as_str()).collect()
    }

    /// Total slicing time in seconds.
    pub fn total_slice_secs(&self) -> f64 {
        self.slice_secs.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_keeps_zeros_and_minimums() {
        let spec = ProjectSpec {
            name: "x".into(),
            index: 0,
            seed: 1,
            counts: tiara_synth::TypeCounts {
                list: 0,
                vector: 10,
                map: 3,
                primitive: 100,
                ..Default::default()
            },
        };
        let s = scale_spec(&spec, 0.1);
        assert_eq!(s.counts.list, 0, "zero stays zero");
        assert_eq!(s.counts.vector, 1);
        assert_eq!(s.counts.map, 1, "nonzero floors at 1");
        assert_eq!(s.counts.primitive, 10);
    }

    #[test]
    fn parallel_dataset_matches_sequential() {
        let bin = generate(&ProjectSpec {
            name: "p".into(),
            index: 3,
            seed: 4,
            counts: tiara_synth::TypeCounts {
                list: 2,
                vector: 3,
                map: 2,
                primitive: 6,
                ..Default::default()
            },
        });
        let slicer = Slicer::default();
        let par = parallel_dataset(&bin, &slicer, 4);
        let seq = Dataset::from_binary(&bin.program, &bin.debug, "p", &slicer);
        assert_eq!(par.len(), seq.len());
        let pa: Vec<_> = par.samples.iter().map(|s| (s.addr, s.slice_nodes)).collect();
        let sa: Vec<_> = seq.samples.iter().map(|s| (s.addr, s.slice_nodes)).collect();
        assert_eq!(pa, sa, "same slices in the same order");
    }

    #[test]
    fn suite_builds_scaled() {
        let bins = build_suite(5, 0.02);
        assert_eq!(bins.len(), 8);
        assert_eq!(bins[0].name, "clang");
        assert!(bins.iter().all(|b| b.program.num_insts() > 0));
    }

    #[test]
    fn verifier_gate_accepts_generated_suites() {
        let bins = build_suite(7, 0.02);
        verify_suite(&bins).expect("generated suite must pass the gate");
        let ext = build_extended_suite(7, 0.05);
        verify_suite(&ext).expect("extended suite must pass the gate");
    }
}
