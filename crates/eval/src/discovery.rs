//! The variable-discovery experiment: what value-set analysis buys over the
//! syntactic operand heuristic.
//!
//! The generator's computed-address scenarios ([`tiara_synth::computed`])
//! access every variable through `lea`-materialized pointers, `esp`
//! arithmetic, frame slots of FPO functions, and heap allocation sites —
//! exactly the operand shapes the syntactic heuristic
//! ([`tiara::discovery::discover_variables`]) is blind to. VSA-backed
//! discovery ([`tiara::discovery::discover_variables_vsa`]) resolves the
//! same accesses through abstract a-locs and must close the recall gap.
//!
//! Each mode is scored twice per project: strictly (exact base match) and
//! with the slicing criterion's window tolerance
//! ([`score_discovery_windowed`]). Heap-site proposals are reported
//! separately — the ground-truth tables label globals and frame slots only,
//! so counting a (correct) allocation-site criterion as "spurious" would
//! misstate precision. The VSA soundness oracle (`tiara-verify`'s
//! `vsa-soundness` pass) runs over every generated binary as part of the
//! experiment; its error count is part of the result.

use tiara::discovery::{
    discover_variables, discover_variables_vsa, score_discovery, score_discovery_windowed,
    DiscoveryConfig, DiscoveryScore,
};
use tiara_ir::VarAddr;
use tiara_synth::{generate, Binary, ProjectSpec, TypeCounts};

/// Three computed-address-heavy projects across distinct styles. Ordinary
/// variables keep the heuristic honest; the computed scenarios carry the
/// recall gap VSA must close.
pub fn discovery_suite(seed: u64) -> Vec<ProjectSpec> {
    let mk = |name: &str, index: usize, counts: TypeCounts| ProjectSpec {
        name: name.to_owned(),
        index,
        seed,
        counts,
    };
    vec![
        mk(
            "disc_app",
            2,
            TypeCounts {
                list: 3,
                vector: 6,
                map: 6,
                deque: 2,
                set: 2,
                primitive: 16,
                computed: 8,
                ..Default::default()
            },
        ),
        mk(
            "disc_svc",
            5,
            TypeCounts {
                list: 2,
                vector: 5,
                map: 5,
                primitive: 12,
                computed: 6,
                ..Default::default()
            },
        ),
        mk(
            "disc_kit",
            7,
            TypeCounts {
                list: 2,
                vector: 4,
                map: 4,
                deque: 2,
                primitive: 10,
                computed: 8,
                ..Default::default()
            },
        ),
    ]
}

/// Generates the discovery suite, optionally scaled (see
/// [`crate::suite::scale_spec`]). `computed` counts are preserved by the
/// scaler's at-least-one rule, so the recall gap never vanishes.
pub fn build_discovery_suite(seed: u64, scale: f64) -> Vec<Binary> {
    discovery_suite(seed)
        .iter()
        .map(|spec| generate(&crate::suite::scale_spec(spec, scale)))
        .collect()
}

/// Both scoring views of one discovery mode on one project.
#[derive(Debug, Clone, Copy)]
pub struct ModeScore {
    /// Exact-base scoring.
    pub strict: DiscoveryScore,
    /// Window-tolerant scoring (the slicer's `Criterion` semantics).
    pub windowed: DiscoveryScore,
}

/// One project's discovery outcome under both modes.
#[derive(Debug, Clone)]
pub struct DiscoveryProjectRow {
    /// Project name.
    pub project: String,
    /// Ground-truth labeled variables.
    pub labeled: usize,
    /// The syntactic operand heuristic.
    pub heuristic: ModeScore,
    /// VSA-backed discovery.
    pub vsa: ModeScore,
    /// Heap allocation-site criteria proposed by VSA (a criterion class the
    /// heuristic cannot produce; excluded from the scores above).
    pub vsa_heap_sites: usize,
}

/// The full result of the discovery experiment.
#[derive(Debug, Clone)]
pub struct DiscoveryResult {
    /// Per-project rows.
    pub rows: Vec<DiscoveryProjectRow>,
    /// `Severity::Error` diagnostics across the suite under `tiara-verify`
    /// (which includes the VSA soundness oracle). Must be zero.
    pub oracle_errors: usize,
}

fn fold(scores: impl Iterator<Item = DiscoveryScore>) -> DiscoveryScore {
    let mut total = DiscoveryScore { found: 0, missed: 0, spurious: 0, proposed: 0 };
    for s in scores {
        total.found += s.found;
        total.missed += s.missed;
        total.spurious += s.spurious;
        total.proposed += s.proposed;
    }
    total
}

impl DiscoveryResult {
    /// Suite-wide heuristic score.
    pub fn total_heuristic(&self, windowed: bool) -> DiscoveryScore {
        fold(
            self.rows
                .iter()
                .map(|r| if windowed { r.heuristic.windowed } else { r.heuristic.strict }),
        )
    }

    /// Suite-wide VSA score.
    pub fn total_vsa(&self, windowed: bool) -> DiscoveryScore {
        fold(self.rows.iter().map(|r| if windowed { r.vsa.windowed } else { r.vsa.strict }))
    }
}

/// Scores one proposal list both ways, with heap proposals split out.
fn score_mode(discovered: &[VarAddr], bin: &Binary, window: i64) -> (ModeScore, usize) {
    let heap = discovered.iter().filter(|a| matches!(a, VarAddr::Heap { .. })).count();
    let scored: Vec<VarAddr> =
        discovered.iter().copied().filter(|a| !matches!(a, VarAddr::Heap { .. })).collect();
    (
        ModeScore {
            strict: score_discovery(&scored, &bin.debug),
            windowed: score_discovery_windowed(&scored, &bin.debug, window),
        },
        heap,
    )
}

/// Runs the discovery experiment: generate the suite, propose criteria with
/// both discoverers, score strictly and window-tolerantly, and run the
/// verifier (including the VSA soundness oracle) over every binary.
pub fn run_discovery_experiment(seed: u64, scale: f64) -> DiscoveryResult {
    let bins = build_discovery_suite(seed, scale);
    let cfg = DiscoveryConfig::default();
    let mut rows = Vec::new();
    let mut oracle_errors = 0usize;
    for bin in &bins {
        let (heuristic, _) = score_mode(&discover_variables(&bin.program, &cfg), bin, cfg.window);
        let (vsa, vsa_heap_sites) =
            score_mode(&discover_variables_vsa(&bin.program, &cfg), bin, cfg.window);
        oracle_errors += tiara_verify::verify(&bin.program).num_errors();
        rows.push(DiscoveryProjectRow {
            project: bin.name.clone(),
            labeled: bin.debug.len(),
            heuristic,
            vsa,
            vsa_heap_sites,
        });
    }
    DiscoveryResult { rows, oracle_errors }
}

fn pct(x: f64) -> f64 {
    100.0 * x
}

/// Renders the experiment as a report table.
pub fn render_discovery_report(r: &DiscoveryResult) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "Variable-discovery experiment (heuristic vs. VSA)");
    let _ = writeln!(s, "  oracle errors across the suite: {}", r.oracle_errors);
    let _ = writeln!(
        s,
        "  {:<10} {:>7} {:>6}  {:>23}  {:>23}  {:>5}",
        "project", "labeled", "mode", "strict R/P/F1", "windowed R/P/F1", "heap"
    );
    for row in &r.rows {
        for (mode, score, heap) in
            [("heur", &row.heuristic, 0), ("vsa", &row.vsa, row.vsa_heap_sites)]
        {
            let _ = writeln!(
                s,
                "  {:<10} {:>7} {:>6}  {:>6.1}/{:>6.1}/{:>6.1}%  {:>6.1}/{:>6.1}/{:>6.1}%  {:>5}",
                row.project,
                row.labeled,
                mode,
                pct(score.strict.recall()),
                pct(score.strict.precision()),
                pct(score.strict.f1()),
                pct(score.windowed.recall()),
                pct(score.windowed.precision()),
                pct(score.windowed.f1()),
                heap
            );
        }
    }
    for (mode, t_strict, t_win) in [
        ("heur", r.total_heuristic(false), r.total_heuristic(true)),
        ("vsa", r.total_vsa(false), r.total_vsa(true)),
    ] {
        let _ = writeln!(
            s,
            "  {:<10} {:>7} {:>6}  {:>6.1}/{:>6.1}/{:>6.1}%  {:>6.1}/{:>6.1}/{:>6.1}%  {:>5}",
            "overall",
            r.rows.iter().map(|w| w.labeled).sum::<usize>(),
            mode,
            pct(t_strict.recall()),
            pct(t_strict.precision()),
            pct(t_strict.f1()),
            pct(t_win.recall()),
            pct(t_win.precision()),
            pct(t_win.f1()),
            if mode == "vsa" { r.rows.iter().map(|w| w.vsa_heap_sites).sum() } else { 0 }
        );
    }
    s
}

fn write_score(s: &mut String, key: &str, score: &DiscoveryScore) {
    use std::fmt::Write as _;
    let _ = write!(
        s,
        "\"{key}\": {{\"found\": {}, \"missed\": {}, \"spurious\": {}, \"proposed\": {}, \
         \"recall\": {:.6}, \"precision\": {:.6}, \"f1\": {:.6}}}",
        score.found,
        score.missed,
        score.spurious,
        score.proposed,
        score.recall(),
        score.precision(),
        score.f1()
    );
}

/// Renders the experiment as JSON (the `DISCOVERY_PR7.json` artifact).
pub fn render_discovery_json(r: &DiscoveryResult, seed: u64, scale: f64) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\n  \"experiment\": \"discovery\",\n  \"seed\": {seed},\n  \"scale\": {scale},\n  \
         \"oracle_errors\": {},\n  \"totals\": {{",
        r.oracle_errors
    );
    for (i, (key, score)) in [
        ("heuristic_strict", r.total_heuristic(false)),
        ("heuristic_windowed", r.total_heuristic(true)),
        ("vsa_strict", r.total_vsa(false)),
        ("vsa_windowed", r.total_vsa(true)),
    ]
    .iter()
    .enumerate()
    {
        s.push_str(if i == 0 { "\n    " } else { ",\n    " });
        write_score(&mut s, key, score);
    }
    s.push_str("\n  },\n  \"projects\": [");
    for (i, row) in r.rows.iter().enumerate() {
        let _ = write!(
            s,
            "{}\n    {{\"project\": \"{}\", \"labeled\": {}, \"vsa_heap_sites\": {}, ",
            if i == 0 { "" } else { "," },
            row.project,
            row.labeled,
            row.vsa_heap_sites
        );
        for (j, (key, score)) in [
            ("heuristic_strict", &row.heuristic.strict),
            ("heuristic_windowed", &row.heuristic.windowed),
            ("vsa_strict", &row.vsa.strict),
            ("vsa_windowed", &row.vsa.windowed),
        ]
        .iter()
        .enumerate()
        {
            if j > 0 {
                s.push_str(", ");
            }
            write_score(&mut s, key, score);
        }
        s.push('}');
    }
    s.push_str("\n  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discovery_suite_has_computed_counts_everywhere() {
        for spec in discovery_suite(3) {
            assert!(spec.counts.computed > 0, "{}", spec.name);
        }
    }

    #[test]
    fn vsa_beats_the_heuristic_and_the_oracle_stays_clean() {
        let r = run_discovery_experiment(23, 0.5);
        assert_eq!(r.oracle_errors, 0, "the VSA soundness oracle must accept every binary");
        for windowed in [false, true] {
            let h = r.total_heuristic(windowed);
            let v = r.total_vsa(windowed);
            assert!(
                v.recall() > h.recall(),
                "VSA recall must strictly beat the heuristic (windowed={windowed}): \
                 {} vs {}",
                v.recall(),
                h.recall()
            );
        }
        assert!(r.rows.iter().any(|row| row.vsa_heap_sites > 0), "heap criteria are VSA-only");
    }

    #[test]
    fn report_and_json_have_the_expected_shape() {
        let r = run_discovery_experiment(7, 0.4);
        let report = render_discovery_report(&r);
        assert!(report.contains("overall"));
        assert!(report.contains("vsa"));
        let json = render_discovery_json(&r, 7, 0.4);
        assert!(json.contains("\"experiment\": \"discovery\""));
        assert!(json.contains("\"vsa_strict\""));
        assert!(json.contains("\"recall\""));
        assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'));
    }
}
