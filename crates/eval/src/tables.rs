//! Computation of the paper's Tables I, III and IV from suite data.

use crate::experiments::{ExperimentResult, ExperimentSpec, TestSelection};
use crate::suite::SlicedSuite;
use tiara_ir::ContainerClass;
use tiara_synth::Binary;

/// One row of Table I: benchmark statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Project name.
    pub name: String,
    /// Number of instructions in the generated binary.
    pub instructions: usize,
    /// Estimated binary size in bytes (x86 instructions average ~3.7 bytes).
    pub est_bytes: u64,
    /// Variable counts per label.
    pub counts: [usize; ContainerClass::COUNT],
}

/// Computes Table I from the generated binaries.
pub fn table1(binaries: &[Binary]) -> Vec<Table1Row> {
    binaries
        .iter()
        .map(|b| {
            let mut counts = [0usize; ContainerClass::COUNT];
            for c in ContainerClass::ALL {
                counts[c.index()] = b.debug.count_of(c);
            }
            Table1Row {
                name: b.name.clone(),
                instructions: b.program.num_insts(),
                est_bytes: (b.program.num_insts() as f64 * 3.7) as u64,
                counts,
            }
        })
        .collect()
}

/// One row of Table III: average slice sizes per type, per slicer.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// The type label.
    pub class: ContainerClass,
    /// Mean SSLICE (nodes, edges).
    pub sslice: (f64, f64),
    /// Mean TSLICE (nodes, edges).
    pub tslice: (f64, f64),
}

/// Computes Table III from the two sliced suites.
///
/// # Panics
///
/// Panics if the suites are not a (TSLICE, SSLICE) pair over the same
/// binaries.
pub fn table3(tslice_suite: &SlicedSuite, sslice_suite: &SlicedSuite) -> Vec<Table3Row> {
    assert_eq!(tslice_suite.slicer_name, "TSLICE");
    assert_eq!(sslice_suite.slicer_name, "SSLICE");
    let mean_for = |suite: &SlicedSuite, class: ContainerClass| -> (f64, f64) {
        let mut nodes = 0usize;
        let mut edges = 0usize;
        let mut n = 0usize;
        for ds in &suite.datasets {
            for s in ds.samples.iter().filter(|s| s.label == class) {
                nodes += s.slice_nodes;
                edges += s.slice_edges;
                n += 1;
            }
        }
        if n == 0 {
            (0.0, 0.0)
        } else {
            (nodes as f64 / n as f64, edges as f64 / n as f64)
        }
    };
    ContainerClass::ALL
        .into_iter()
        .filter(|&class| {
            tslice_suite.datasets.iter().any(|ds| ds.samples.iter().any(|s| s.label == class))
        })
        .map(|class| Table3Row {
            class,
            sslice: mean_for(sslice_suite, class),
            tslice: mean_for(tslice_suite, class),
        })
        .collect()
}

/// One row of Table IV: per-experiment slicing and training times.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Experiment id (e.g. `"I1a"`).
    pub id: String,
    /// Slicing wall time for the projects the experiment touches, seconds.
    pub slice_secs: f64,
    /// Training wall time, seconds.
    pub train_secs: f64,
}

/// Computes the slicing time attributable to one experiment: the sum over
/// every project it touches (training and testing), following the paper's
/// convention that each cross-project experiment pays for slicing all
/// programs.
pub fn experiment_slice_secs(suite: &SlicedSuite, spec: &ExperimentSpec) -> f64 {
    let mut projects: Vec<&str> = spec.train_projects.clone();
    if let TestSelection::Projects(test) = &spec.selection {
        projects.extend(test.iter().copied());
    }
    projects.sort_unstable();
    projects.dedup();
    projects
        .iter()
        .map(|p| {
            let idx = suite
                .binaries
                .iter()
                .position(|b| b.name == *p)
                .unwrap_or_else(|| panic!("unknown project `{p}`"));
            suite.slice_secs[idx]
        })
        .sum()
}

/// Assembles Table IV rows from experiment results.
pub fn table4(
    suite: &SlicedSuite,
    specs: &[ExperimentSpec],
    results: &[ExperimentResult],
) -> Vec<Table4Row> {
    specs
        .iter()
        .zip(results)
        .map(|(spec, res)| Table4Row {
            id: res.id.clone(),
            slice_secs: experiment_slice_secs(suite, spec),
            train_secs: res.train_secs,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{build_suite, SlicedSuite};
    use tiara::Slicer;

    fn tiny_suites() -> (Vec<Binary>, SlicedSuite, SlicedSuite) {
        let bins = build_suite(3, 0.015);
        let t = SlicedSuite::build(&bins, &Slicer::default(), 4);
        let s = SlicedSuite::build(&bins, &Slicer::Sslice, 4);
        (bins, t, s)
    }

    #[test]
    fn table1_counts_match_debug_info() {
        let (bins, _, _) = tiny_suites();
        let rows = table1(&bins);
        assert_eq!(rows.len(), 8);
        for (row, bin) in rows.iter().zip(&bins) {
            assert_eq!(row.name, bin.name);
            assert_eq!(
                row.counts[ContainerClass::Primitive.index()],
                bin.debug.count_of(ContainerClass::Primitive)
            );
            assert!(row.instructions > 0);
            assert!(row.est_bytes > row.instructions as u64);
        }
    }

    #[test]
    fn table3_shows_tslice_smaller_for_containers() {
        let (_, t, s) = tiny_suites();
        let rows = table3(&t, &s);
        assert_eq!(rows.len(), 4);
        for row in &rows {
            if row.sslice.0 > 0.0 && row.class != ContainerClass::Primitive {
                assert!(
                    row.tslice.0 < row.sslice.0,
                    "{}: TSLICE {} !< SSLICE {}",
                    row.class,
                    row.tslice.0,
                    row.sslice.0
                );
            }
        }
    }

    #[test]
    fn experiment_slice_time_covers_train_and_test_projects() {
        let (_, t, _) = tiny_suites();
        let cross = crate::experiments::cross_experiments();
        // C7 touches all 8 projects.
        let total = experiment_slice_secs(&t, &cross[1]);
        let expected: f64 = t.slice_secs.iter().sum();
        assert!((total - expected).abs() < 1e-9);
        // I1 touches only clang.
        let intra = crate::experiments::intra_experiments();
        let i1 = experiment_slice_secs(&t, &intra[0]);
        assert!((i1 - t.slice_secs[0]).abs() < 1e-9);
    }
}
