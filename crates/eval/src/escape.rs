//! The escape-through-call experiment: what inter-procedural mod-ref
//! summaries buy the classifier.
//!
//! The generator's escape scenarios ([`tiara_synth::escape`]) construct a
//! container in a caller, pass its address through an opaque helper, and
//! keep using it afterwards. An intra-procedural slice dies at the helper's
//! indirect call, so the classifier sees only the near side of each escaped
//! variable; summary-driven slicing
//! ([`TsliceConfig::use_call_summaries`]) carries the slice past the call.
//!
//! The experiment holds the *escaped* variables out entirely: the
//! classifier trains on the ordinary (non-escape) variables of an
//! escape-heavy suite and is tested on the escape criteria only, once per
//! slicing mode. It reports per-label accuracy for the scenario class,
//! plus the slice-size evidence (how many escape slices grew strictly).

use crate::suite::parallel_dataset;
use std::collections::{HashMap, HashSet};
use tiara::{Classifier, ClassifierConfig, Dataset, Sample, Slicer};
use tiara_ir::{ContainerClass, VarAddr};
use tiara_slice::TsliceConfig;
use tiara_synth::{generate, Binary, ProjectSpec, TypeCounts};

/// Three escape-heavy projects across distinct styles. Every container
/// class appears both as ordinary variables (training signal) and as
/// escape scenarios (held-out test criteria).
pub fn escape_suite(seed: u64) -> Vec<ProjectSpec> {
    let mk = |name: &str, index: usize, counts: TypeCounts| ProjectSpec {
        name: name.to_owned(),
        index,
        seed,
        counts,
    };
    vec![
        mk(
            "esc_app",
            1,
            TypeCounts {
                list: 6,
                vector: 10,
                map: 10,
                deque: 6,
                set: 6,
                primitive: 30,
                escape: 10,
                computed: 0,
            },
        ),
        mk(
            "esc_svc",
            4,
            TypeCounts {
                list: 5,
                vector: 8,
                map: 8,
                deque: 5,
                set: 5,
                primitive: 24,
                escape: 10,
                computed: 0,
            },
        ),
        mk(
            "esc_kit",
            7,
            TypeCounts {
                list: 4,
                vector: 8,
                map: 8,
                deque: 4,
                set: 4,
                primitive: 20,
                escape: 10,
                computed: 0,
            },
        ),
    ]
}

/// Generates the escape suite, optionally scaled (see
/// [`crate::suite::scale_spec`]).
pub fn build_escape_suite(seed: u64, scale: f64) -> Vec<Binary> {
    escape_suite(seed).iter().map(|spec| generate(&crate::suite::scale_spec(spec, scale))).collect()
}

/// The escape-scenario criteria of one binary: the labeled stack slots
/// living in `esc_caller_*` functions.
pub fn escape_criteria(bin: &Binary) -> HashSet<VarAddr> {
    bin.debug
        .iter()
        .filter(|r| match r.addr {
            VarAddr::Stack { func, .. } => bin.program.func(func).name.starts_with("esc_caller_"),
            _ => false,
        })
        .map(|r| r.addr)
        .collect()
}

/// Per-label accuracy on the held-out escape criteria.
#[derive(Debug, Clone)]
pub struct EscapeLabelRow {
    /// Ground-truth container class.
    pub class: ContainerClass,
    /// Held-out escape variables with this label.
    pub n: usize,
    /// Correct predictions with intra-procedural slicing.
    pub baseline_correct: usize,
    /// Correct predictions with summary-driven slicing.
    pub summary_correct: usize,
}

impl EscapeLabelRow {
    /// Accuracy of the intra-procedural baseline on this label.
    pub fn baseline_accuracy(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.baseline_correct as f64 / self.n as f64
        }
    }

    /// Accuracy of summary-driven slicing on this label.
    pub fn summary_accuracy(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.summary_correct as f64 / self.n as f64
        }
    }
}

/// The full result of the escape experiment.
#[derive(Debug, Clone)]
pub struct EscapeResult {
    /// Per-label rows (only labels that occur among the escape criteria).
    pub rows: Vec<EscapeLabelRow>,
    /// Number of held-out escape criteria.
    pub escape_criteria: usize,
    /// Escape slices that grew strictly under summary-driven slicing.
    pub strictly_larger: usize,
    /// Mean escape-slice size (nodes), intra-procedural baseline.
    pub mean_nodes_baseline: f64,
    /// Mean escape-slice size (nodes), summary-driven.
    pub mean_nodes_summary: f64,
}

impl EscapeResult {
    /// Overall accuracy on the escape criteria, baseline slicing.
    pub fn baseline_accuracy(&self) -> f64 {
        let (c, n) = self.totals();
        if n == 0 {
            0.0
        } else {
            c.0 as f64 / n as f64
        }
    }

    /// Overall accuracy on the escape criteria, summary-driven slicing.
    pub fn summary_accuracy(&self) -> f64 {
        let (c, n) = self.totals();
        if n == 0 {
            0.0
        } else {
            c.1 as f64 / n as f64
        }
    }

    fn totals(&self) -> ((usize, usize), usize) {
        let base = self.rows.iter().map(|r| r.baseline_correct).sum();
        let summ = self.rows.iter().map(|r| r.summary_correct).sum();
        let n = self.rows.iter().map(|r| r.n).sum();
        ((base, summ), n)
    }
}

/// One slicing mode's view of the suite: training samples (everything that
/// is not an escape criterion) and the held-out escape samples.
struct ModeData {
    train: Dataset,
    test: Vec<Sample>,
}

fn slice_mode(bins: &[Binary], slicer: &Slicer, threads: usize) -> ModeData {
    let mut train = Dataset::new();
    let mut test = Vec::new();
    for bin in bins {
        let esc = escape_criteria(bin);
        let ds = parallel_dataset(bin, slicer, threads);
        for s in ds.samples {
            if esc.contains(&s.addr) {
                test.push(s);
            } else {
                train.samples.push(s);
            }
        }
    }
    ModeData { train, test }
}

/// Runs the escape experiment: slice the suite once per mode, train on the
/// ordinary variables, test on the held-out escape criteria.
pub fn run_escape_experiment(
    seed: u64,
    scale: f64,
    classifier: &ClassifierConfig,
    threads: usize,
) -> EscapeResult {
    let bins = build_escape_suite(seed, scale);
    let baseline = slice_mode(&bins, &Slicer::Tslice(TsliceConfig::default()), threads);
    let summary = slice_mode(&bins, &Slicer::Tslice(TsliceConfig::with_call_summaries()), threads);

    // Slice-size evidence, paired by criterion address.
    let base_nodes: HashMap<(String, String), usize> = baseline
        .test
        .iter()
        .map(|s| ((s.project.clone(), s.addr.to_string()), s.slice_nodes))
        .collect();
    let mut strictly_larger = 0usize;
    let mut sum_base = 0usize;
    let mut sum_summ = 0usize;
    for s in &summary.test {
        let base = base_nodes.get(&(s.project.clone(), s.addr.to_string())).copied().unwrap_or(0);
        sum_base += base;
        sum_summ += s.slice_nodes;
        if s.slice_nodes > base {
            strictly_larger += 1;
        }
    }
    let n_esc = summary.test.len();

    // One classifier per mode, trained on that mode's ordinary variables.
    let predict = |mode: &ModeData| -> Vec<(ContainerClass, ContainerClass)> {
        let mut clf = Classifier::new(classifier);
        clf.train(&mode.train).expect("escape suite has training samples");
        mode.test.iter().map(|s| (s.label, clf.predict(&s.graph))).collect()
    };
    let base_pred = predict(&baseline);
    let summ_pred = predict(&summary);

    let mut rows: Vec<EscapeLabelRow> = ContainerClass::ALL
        .iter()
        .map(|&class| EscapeLabelRow { class, n: 0, baseline_correct: 0, summary_correct: 0 })
        .collect();
    for &(label, pred) in &base_pred {
        let row = rows.iter_mut().find(|r| r.class == label).expect("known class");
        row.n += 1;
        row.baseline_correct += usize::from(pred == label);
    }
    for &(label, pred) in &summ_pred {
        let row = rows.iter_mut().find(|r| r.class == label).expect("known class");
        row.summary_correct += usize::from(pred == label);
    }
    rows.retain(|r| r.n > 0);

    EscapeResult {
        rows,
        escape_criteria: n_esc,
        strictly_larger,
        mean_nodes_baseline: if n_esc == 0 { 0.0 } else { sum_base as f64 / n_esc as f64 },
        mean_nodes_summary: if n_esc == 0 { 0.0 } else { sum_summ as f64 / n_esc as f64 },
    }
}

/// Renders the experiment as a report table.
pub fn render_escape_report(r: &EscapeResult) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "Escape-through-call experiment (held-out escape criteria)");
    let _ = writeln!(
        s,
        "  criteria: {}   slices grown strictly by summaries: {}   \
         mean nodes: {:.1} -> {:.1}",
        r.escape_criteria, r.strictly_larger, r.mean_nodes_baseline, r.mean_nodes_summary
    );
    let _ =
        writeln!(s, "  {:<12} {:>4} {:>18} {:>18}", "label", "n", "baseline acc", "summary acc");
    for row in &r.rows {
        let _ = writeln!(
            s,
            "  {:<12} {:>4} {:>17.1}% {:>17.1}%",
            row.class.to_string(),
            row.n,
            100.0 * row.baseline_accuracy(),
            100.0 * row.summary_accuracy()
        );
    }
    let _ = writeln!(
        s,
        "  {:<12} {:>4} {:>17.1}% {:>17.1}%",
        "overall",
        r.escape_criteria,
        100.0 * r.baseline_accuracy(),
        100.0 * r.summary_accuracy()
    );
    s
}

/// Renders the experiment as JSON (the `ESCAPE_PR6.json` artifact).
pub fn render_escape_json(r: &EscapeResult, seed: u64, scale: f64) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\n  \"experiment\": \"escape\",\n  \"seed\": {seed},\n  \"scale\": {scale},\n  \
         \"escape_criteria\": {},\n  \"strictly_larger\": {},\n  \
         \"mean_nodes_baseline\": {:.3},\n  \"mean_nodes_summary\": {:.3},\n  \
         \"baseline_accuracy\": {:.6},\n  \"summary_accuracy\": {:.6},\n  \"labels\": [",
        r.escape_criteria,
        r.strictly_larger,
        r.mean_nodes_baseline,
        r.mean_nodes_summary,
        r.baseline_accuracy(),
        r.summary_accuracy()
    );
    for (i, row) in r.rows.iter().enumerate() {
        let _ = write!(
            s,
            "{}\n    {{\"label\": \"{}\", \"n\": {}, \"baseline_correct\": {}, \
             \"summary_correct\": {}}}",
            if i == 0 { "" } else { "," },
            row.class,
            row.n,
            row.baseline_correct,
            row.summary_correct
        );
    }
    s.push_str("\n  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_suite_has_escape_counts_everywhere() {
        for spec in escape_suite(3) {
            assert!(spec.counts.escape > 0, "{}", spec.name);
        }
    }

    #[test]
    fn criteria_extraction_matches_the_spec() {
        let bin = generate(&ProjectSpec {
            name: "esc".into(),
            index: 2,
            seed: 19,
            counts: TypeCounts { vector: 2, primitive: 4, escape: 5, ..Default::default() },
        });
        let esc = escape_criteria(&bin);
        assert_eq!(esc.len(), 5);
        assert_eq!(bin.debug.len(), 2 + 4 + 5);
    }

    #[test]
    fn experiment_runs_and_reports_growth() {
        let cfg = ClassifierConfig { epochs: 4, seed: 7, ..Default::default() };
        let r = run_escape_experiment(23, 0.5, &cfg, 2);
        assert!(r.escape_criteria > 0);
        assert_eq!(
            r.strictly_larger, r.escape_criteria,
            "every escape slice must grow strictly under summaries"
        );
        assert!(r.mean_nodes_summary > r.mean_nodes_baseline);
        assert_eq!(r.rows.iter().map(|w| w.n).sum::<usize>(), r.escape_criteria);
        let report = render_escape_report(&r);
        assert!(report.contains("overall"));
        let json = render_escape_json(&r, 23, 0.5);
        assert!(json.contains("\"experiment\": \"escape\""));
        assert!(json.contains("\"labels\": ["));
        assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'));
    }
}
