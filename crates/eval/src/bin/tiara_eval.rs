//! The `tiara-eval` CLI: regenerates every table and figure of the paper's
//! evaluation section on the synthetic benchmark suite.
//!
//! ```text
//! tiara-eval <command> [--scale F] [--epochs N] [--seed N] [--threads N]
//!
//! commands:
//!   table1        benchmark statistics (Table I)
//!   table2-intra  intra-project prediction, rows I1a–I5b (Table II, RQ1+RQ3)
//!   table2-cross  cross-project prediction, rows C6a–C9b (Table II, RQ2+RQ3)
//!   table3        average slice sizes (Table III)
//!   table4        efficiency (Table IV; implied by running table2)
//!   fig2          the motivating example's slicing trace (Figure 2)
//!   ablation      TSLICE design-choice + classifier-architecture ablations
//!   escape        escape-through-call accuracy with vs. without call
//!                 summaries (`--json [--out FILE]` writes ESCAPE_PR6.json)
//!   discovery     variable-discovery recall/precision/F1, heuristic vs. VSA
//!                 (`--json [--out FILE]` writes DISCOVERY_PR7.json)
//!   extended      six-class extension (std::deque and std::set added)
//!   bench         pipeline throughput at 1 vs N threads
//!                 (`--json [--out FILE]` writes BENCH_PR10.json)
//!   all           everything above
//! ```

use std::process::ExitCode;
use tiara::{ClassifierConfig, Slicer};
use tiara_eval::report::{
    render_table1, render_table2_rows, render_table2_summary, render_table3, render_table4,
};
use tiara_eval::tables::{table1, table3, Table4Row};
use tiara_eval::{
    build_suite, cross_experiments, intra_experiments, run_experiment, ExperimentResult,
    SlicedSuite,
};

#[derive(Debug, Clone)]
struct Options {
    command: String,
    scale: f64,
    epochs: usize,
    seed: u64,
    threads: usize,
    json: bool,
    out: Option<String>,
}

fn usage() -> String {
    "usage: tiara-eval <table1|table2-intra|table2-cross|table3|table4|fig2|ablation|escape|discovery|extended|bench|all> \
     [--scale F] [--epochs N] [--seed N] [--threads N] [--json] [--out FILE]"
        .to_owned()
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or_else(usage)?;
    let mut opts = Options {
        command,
        scale: 1.0,
        epochs: 60,
        seed: 42,
        threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
        json: false,
        out: None,
    };
    while let Some(flag) = args.next() {
        let mut value = || args.next().ok_or(format!("missing value for {flag}"));
        match flag.as_str() {
            "--scale" => opts.scale = value()?.parse().map_err(|e| format!("--scale: {e}"))?,
            "--epochs" => opts.epochs = value()?.parse().map_err(|e| format!("--epochs: {e}"))?,
            "--seed" => opts.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--threads" => {
                opts.threads = value()?.parse().map_err(|e| format!("--threads: {e}"))?;
            }
            "--json" => opts.json = true,
            "--out" => opts.out = Some(value()?),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    if opts.threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    Ok(opts)
}

fn classifier_config(opts: &Options) -> ClassifierConfig {
    ClassifierConfig { epochs: opts.epochs, seed: opts.seed, ..ClassifierConfig::default() }
}

fn build_suites(opts: &Options) -> (SlicedSuite, SlicedSuite) {
    eprintln!(
        "[tiara-eval] generating the 8-project suite (scale {}, seed {}) …",
        opts.scale, opts.seed
    );
    let bins = build_suite(opts.seed, opts.scale);
    eprintln!("[tiara-eval] verifying the suite …");
    if let Err(e) = tiara_eval::verify_suite(&bins) {
        panic!("{e}");
    }
    eprintln!("[tiara-eval] slicing with TSLICE ({} threads) …", opts.threads);
    let t = SlicedSuite::build(&bins, &Slicer::default(), opts.threads);
    eprintln!(
        "[tiara-eval]   TSLICE done in {:.1}s ({} slices)",
        t.total_slice_secs(),
        t.datasets.iter().map(|d| d.len()).sum::<usize>()
    );
    eprintln!("[tiara-eval] slicing with SSLICE …");
    let s = SlicedSuite::build(&bins, &Slicer::Sslice, opts.threads);
    eprintln!("[tiara-eval]   SSLICE done in {:.1}s", s.total_slice_secs());
    (t, s)
}

fn run_rows(
    suites: &(SlicedSuite, SlicedSuite),
    specs: &[tiara_eval::ExperimentSpec],
    opts: &Options,
) -> (Vec<ExperimentResult>, Vec<Table4Row>, Vec<Table4Row>) {
    let cfg = classifier_config(opts);
    let mut results = Vec::new();
    let mut t_rows = Vec::new();
    let mut s_rows = Vec::new();
    for spec in specs {
        for suite in [&suites.0, &suites.1] {
            let suffix = if suite.slicer_name == "TSLICE" { "a" } else { "b" };
            eprintln!("[tiara-eval] running {}{} …", spec.id, suffix);
            let res = run_experiment(suite, spec, &cfg, opts.seed);
            let row = Table4Row {
                id: res.id.clone(),
                slice_secs: tiara_eval::tables::experiment_slice_secs(suite, spec),
                train_secs: res.train_secs,
            };
            if suite.slicer_name == "TSLICE" {
                t_rows.push(row);
            } else {
                s_rows.push(row);
            }
            results.push(res);
        }
    }
    (results, t_rows, s_rows)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    // Kernels inside training dispatch on the shared executor; honor
    // `--threads` everywhere, not just in the slicing fan-out.
    tiara_par::set_global_threads(opts.threads);

    match opts.command.as_str() {
        "fig2" => {
            println!("{}", tiara_eval::fig2::render_figure2());
        }
        "bench" => {
            let cfg = tiara_eval::bench::BenchConfig {
                scale: opts.scale,
                epochs: opts.epochs,
                seed: opts.seed,
                threads: opts.threads,
            };
            eprintln!(
                "[tiara-eval] benching at 1 vs {} threads (scale {}, {} epochs) …",
                cfg.threads.max(2),
                cfg.scale,
                cfg.epochs
            );
            let report = tiara_eval::bench::run_bench(&cfg);
            print!("{}", tiara_eval::bench::render_text(&report));
            if opts.json {
                let path = opts.out.clone().unwrap_or_else(|| "BENCH_PR10.json".to_owned());
                std::fs::write(&path, tiara_eval::bench::render_json(&report))
                    .unwrap_or_else(|e| panic!("writing {path}: {e}"));
                eprintln!("[tiara-eval] wrote {path}");
            }
            if !report.models_identical {
                eprintln!("[tiara-eval] ERROR: models diverged across thread counts");
                return ExitCode::FAILURE;
            }
        }
        "ablation" => {
            let bins = build_suite(opts.seed, opts.scale);
            let clang = bins.into_iter().next().expect("suite is nonempty");
            eprintln!("[tiara-eval] ablating TSLICE configurations on `{}` …", clang.name);
            let rows = tiara_eval::ablation::run_ablation(
                &clang,
                &classifier_config(&opts),
                opts.seed,
                opts.threads,
            );
            println!("{}", tiara_eval::ablation::render_ablation(&rows));
            eprintln!("[tiara-eval] ablating classifier architectures …");
            let model_rows = tiara_eval::ablation::run_model_ablation(
                &clang,
                opts.epochs,
                opts.seed,
                opts.threads,
            );
            println!("{}", tiara_eval::ablation::render_model_ablation(&model_rows));
        }
        "escape" => {
            eprintln!(
                "[tiara-eval] escape-through-call experiment (scale {}, seed {}, {} epochs) …",
                opts.scale, opts.seed, opts.epochs
            );
            let r = tiara_eval::run_escape_experiment(
                opts.seed,
                opts.scale,
                &classifier_config(&opts),
                opts.threads,
            );
            print!("{}", tiara_eval::render_escape_report(&r));
            if opts.json {
                let path = opts.out.clone().unwrap_or_else(|| "ESCAPE_PR6.json".to_owned());
                std::fs::write(&path, tiara_eval::render_escape_json(&r, opts.seed, opts.scale))
                    .unwrap_or_else(|e| panic!("writing {path}: {e}"));
                eprintln!("[tiara-eval] wrote {path}");
            }
        }
        "discovery" => {
            eprintln!(
                "[tiara-eval] variable-discovery experiment (scale {}, seed {}) …",
                opts.scale, opts.seed
            );
            let r = tiara_eval::run_discovery_experiment(opts.seed, opts.scale);
            print!("{}", tiara_eval::render_discovery_report(&r));
            if opts.json {
                let path = opts.out.clone().unwrap_or_else(|| "DISCOVERY_PR7.json".to_owned());
                std::fs::write(&path, tiara_eval::render_discovery_json(&r, opts.seed, opts.scale))
                    .unwrap_or_else(|e| panic!("writing {path}: {e}"));
                eprintln!("[tiara-eval] wrote {path}");
            }
            if r.oracle_errors > 0 {
                eprintln!(
                    "[tiara-eval] ERROR: {} verifier errors across the discovery suite",
                    r.oracle_errors
                );
                return ExitCode::FAILURE;
            }
        }
        "extended" => {
            eprintln!("[tiara-eval] building the 6-class extension suite (scale {}) …", opts.scale);
            let bins = tiara_eval::build_extended_suite(opts.seed, opts.scale);
            eprintln!("[tiara-eval] verifying the suite …");
            if let Err(e) = tiara_eval::verify_suite(&bins) {
                panic!("{e}");
            }
            let suite = SlicedSuite::build(&bins, &Slicer::default(), opts.threads);
            let cfg = classifier_config(&opts);
            let results: Vec<_> = tiara_eval::extended_experiments()
                .iter()
                .map(|spec| {
                    eprintln!("[tiara-eval] running {}a …", spec.id);
                    run_experiment(&suite, spec, &cfg, opts.seed)
                })
                .collect();
            println!("\nEXTENSION — SIX-CLASS TYPE RECOVERY (deque + set added)");
            println!("{}", render_table2_rows(&results));
            println!("{}", render_table2_summary(&results));
        }
        "table1" => {
            let bins = build_suite(opts.seed, opts.scale);
            println!("{}", render_table1(&table1(&bins)));
        }
        "table3" => {
            let (t, s) = build_suites(&opts);
            println!("{}", render_table3(&table3(&t, &s)));
        }
        "table2-intra" | "table2-cross" | "table4" | "all" => {
            let suites = build_suites(&opts);
            let intra = intra_experiments();
            let cross = cross_experiments();
            let mut t4_t = Vec::new();
            let mut t4_s = Vec::new();

            if opts.command != "table2-cross" {
                let (res, tt, ts) = run_rows(&suites, &intra, &opts);
                println!("\nTABLE II — INTRA-PROJECT (RQ1, RQ3)");
                println!("{}", render_table2_rows(&res));
                println!("{}", render_table2_summary(&res));
                t4_t.extend(tt);
                t4_s.extend(ts);
            }
            if opts.command != "table2-intra" {
                let (res, tt, ts) = run_rows(&suites, &cross, &opts);
                println!("\nTABLE II — CROSS-PROJECT (RQ2, RQ3)");
                println!("{}", render_table2_rows(&res));
                println!("{}", render_table2_summary(&res));
                t4_t.extend(tt);
                t4_s.extend(ts);
            }
            println!("\n{}", render_table4(&t4_t, &t4_s));
            if opts.command == "all" {
                println!("{}", render_table1(&table1(&suites.0.binaries)));
                println!("{}", render_table3(&table3(&suites.0, &suites.1)));
                println!("{}", tiara_eval::fig2::render_figure2());
            }
        }
        other => {
            eprintln!("unknown command `{other}`\n{}", usage());
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
