//! Reproduction of Figure 2(a): the slicing trace table for the motivating
//! example, and Figure 2(b): the resulting slice CFG.

use std::collections::HashMap;
use std::fmt::Write as _;
use tiara_ir::format_inst;
use tiara_slice::{tslice_with, TsliceConfig};
use tiara_synth::motivating_example;

/// Runs TSLICE on the motivating example's `std::list` variable and renders
/// the Figure 2(a)-style table: disassembly, rules fired, final faith, and
/// the dependence verdict per instruction.
pub fn render_figure2() -> String {
    let ex = motivating_example();
    let out = tslice_with(&ex.binary.program, ex.l, &TsliceConfig::with_trace());

    // Final faith/dep/rules per instruction (the last trace event wins for
    // faith; rules accumulate).
    let mut rules: HashMap<u32, Vec<String>> = HashMap::new();
    let mut faith: HashMap<u32, f64> = HashMap::new();
    let mut dep: HashMap<u32, bool> = HashMap::new();
    for e in &out.trace {
        let r = rules.entry(e.inst.0).or_default();
        for rule in &e.rules {
            let name = rule.to_string();
            if !r.contains(&name) {
                r.push(name);
            }
        }
        faith.insert(e.inst.0, e.faith);
        dep.insert(e.inst.0, e.dep);
    }

    let mut s = String::new();
    let _ = writeln!(s, "Figure 2(a) — slicing trace for v0 = {} (std::list l)", ex.l);
    let _ =
        writeln!(s, "{:<4} {:<44} {:<32} {:>6} {:>4}", "I", "Disassembly", "Rules", "Faith", "Dep");
    let main = ex.binary.program.func(ex.binary.program.entry_func());
    for id in main.inst_ids() {
        if !faith.contains_key(&id.0) {
            continue;
        }
        let f = faith.get(&id.0).copied().unwrap_or(1.0);
        let d = dep.get(&id.0).copied().unwrap_or(false);
        let r = rules.get(&id.0).map(|v| v.join(";")).unwrap_or_default();
        let _ = writeln!(
            s,
            "{:<4} {:<44} {:<32} {:>6.3} {:>4}",
            format!("I{}", id.0),
            format_inst(&ex.binary.program, id),
            r,
            f,
            if d { "T" } else { "F" }
        );
    }

    let _ = writeln!(s, "\nFigure 2(b) — the slice CFG fed to the GCN:");
    let _ = writeln!(
        s,
        "{} nodes, {} edges: {:?}",
        out.slice.num_nodes(),
        out.slice.num_edges(),
        out.slice.nodes.iter().map(|n| format!("I{}", n.inst.0)).collect::<Vec<_>>()
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_render_shows_rules_and_verdicts() {
        let text = render_figure2();
        assert!(text.contains("[Mov-riv]"), "I0's rule appears:\n{text}");
        assert!(text.contains("[Stk-Push]"));
        assert!(text.contains("[Use-dep]"));
        assert!(text.contains(" T"), "some instruction is dependent");
        assert!(text.contains(" F"), "some instruction is independent");
        assert!(text.contains("Figure 2(b)"));
    }
}
