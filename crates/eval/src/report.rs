//! Text rendering of the reproduced tables, in the layout of the paper.

use crate::experiments::ExperimentResult;
use crate::tables::{Table1Row, Table3Row, Table4Row};
use std::fmt::Write as _;
use tiara_ir::ContainerClass;

fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.2}"),
        None => "N/A ".to_owned(),
    }
}

/// The classes that actually occur in a set of Table I rows (the paper
/// suite has four; the extension suite has six).
fn active_classes_t1(rows: &[Table1Row]) -> Vec<ContainerClass> {
    ContainerClass::ALL
        .into_iter()
        .filter(|c| rows.iter().any(|r| r.counts[c.index()] > 0))
        .collect()
}

/// Renders Table I.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let classes = active_classes_t1(rows);
    let mut s = String::new();
    let _ = writeln!(
        s,
        "TABLE I — BENCHMARK STATISTICS (synthetic suite; counts scaled from the paper)"
    );
    let mut header = format!("{:<14} {:>8} {:>10}", "Program", "#insts", "est. size");
    for c in &classes {
        let _ = write!(header, " {:>13}", format!("#{c}"));
    }
    let _ = writeln!(s, "{header}");
    for r in rows {
        let mut line = format!("{:<14} {:>8} {:>9}K", r.name, r.instructions, r.est_bytes / 1024);
        for c in &classes {
            let _ = write!(line, " {:>13}", r.counts[c.index()]);
        }
        let _ = writeln!(s, "{line}");
    }
    s
}

/// Renders one Table II row group (per-class P/R/F1 + macro average).
pub fn render_table2_rows(results: &[ExperimentResult]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<5} {:<24} {:<7} {}  Macro Avg (Pr/Re/F1)",
        "#",
        "Training Data",
        "Slicer",
        ContainerClass::ALL.iter().map(|c| format!("{:<17}", format!("{c}"))).collect::<String>()
    );
    let _ = writeln!(
        s,
        "{:<5} {:<24} {:<7} {}",
        "",
        "",
        "",
        ContainerClass::ALL.iter().map(|_| format!("{:<17}", "Pr/Re/F1")).collect::<String>(),
    );
    for r in results {
        let mut cells = String::new();
        for c in ContainerClass::ALL {
            let cell = format!(
                "{}/{}/{}",
                fmt_opt(r.eval.precision(c)),
                fmt_opt(r.eval.recall(c)),
                fmt_opt(r.eval.f1(c))
            );
            let _ = write!(cells, "{cell:<17}");
        }
        let _ = writeln!(
            s,
            "{:<5} {:<24} {:<7} {} {:.2}/{:.2}/{:.2}",
            r.id,
            r.training_label,
            r.slicer,
            cells,
            r.eval.macro_precision(),
            r.eval.macro_recall(),
            r.eval.macro_f1(),
        );
    }
    s
}

/// Renders the Table II macro-average summary comparing TIARA vs
/// TIARA_SSLICE over a set of experiment rows.
pub fn render_table2_summary(results: &[ExperimentResult]) -> String {
    let mut s = String::new();
    for slicer in ["TSLICE", "SSLICE"] {
        let sel: Vec<&ExperimentResult> = results.iter().filter(|r| r.slicer == slicer).collect();
        if sel.is_empty() {
            continue;
        }
        let n = sel.len() as f64;
        let p: f64 = sel.iter().map(|r| r.eval.macro_precision()).sum::<f64>() / n;
        let re: f64 = sel.iter().map(|r| r.eval.macro_recall()).sum::<f64>() / n;
        let f1: f64 = sel.iter().map(|r| r.eval.macro_f1()).sum::<f64>() / n;
        let name = if slicer == "TSLICE" { "Average (TIARA)" } else { "Average (TIARA_SSLICE)" };
        let _ = writeln!(s, "{name:<26} Pr {p:.2}  Re {re:.2}  F1 {f1:.2}");
    }
    s
}

/// Renders Table III.
pub fn render_table3(rows: &[Table3Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "TABLE III — AVERAGE SLICE SIZES (TSLICE vs SSLICE)");
    let _ = writeln!(
        s,
        "{:<14} {:>14} {:>14} {:>14} {:>14}",
        "Type", "SSLICE #nodes", "SSLICE #edges", "TSLICE #nodes", "TSLICE #edges"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<14} {:>14.2} {:>14.2} {:>14.2} {:>14.2}",
            r.class.to_string(),
            r.sslice.0,
            r.sslice.1,
            r.tslice.0,
            r.tslice.1
        );
    }
    s
}

/// Renders Table IV.
pub fn render_table4(tslice: &[Table4Row], sslice: &[Table4Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "TABLE IV — EFFICIENCY (wall-clock seconds)");
    let _ = writeln!(s, "{:<8} {:>16} {:>16}", "Row", "Slicing (s)", "Training (s)");
    for r in tslice.iter().chain(sslice) {
        let _ = writeln!(s, "{:<8} {:>16.2} {:>16.2}", r.id, r.slice_secs, r.train_secs);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiara::Evaluation;
    use ContainerClass::{List, Vector};

    #[test]
    fn table2_rendering_contains_metrics() {
        let eval = Evaluation::from_pairs([(List, List), (Vector, Vector), (List, Vector)]);
        let r = ExperimentResult {
            id: "I1a".into(),
            training_label: "clang".into(),
            slicer: "TSLICE",
            eval,
            train_secs: 1.0,
            train_size: 3,
            test_size: 3,
        };
        let text = render_table2_rows(std::slice::from_ref(&r));
        assert!(text.contains("I1a"));
        assert!(text.contains("clang"));
        assert!(text.contains("1.00/0.50/0.67"), "list P/R/F1 cell:\n{text}");
        let summary = render_table2_summary(&[r]);
        assert!(summary.contains("Average (TIARA)"));
        assert!(!summary.contains("TIARA_SSLICE"), "no SSLICE rows given");
    }

    #[test]
    fn table1_and_3_and_4_render() {
        let t1 = render_table1(&[Table1Row {
            name: "clang".into(),
            instructions: 1000,
            est_bytes: 3700,
            counts: [1, 2, 3, 0, 0, 4],
        }]);
        assert!(t1.contains("clang"));
        let t3 = render_table3(&[Table3Row {
            class: List,
            sslice: (1873.41, 2055.12),
            tslice: (68.39, 95.53),
        }]);
        assert!(t3.contains("std::list"));
        assert!(t3.contains("68.39"));
        let t4 = render_table4(
            &[Table4Row { id: "I1a".into(), slice_secs: 10.0, train_secs: 20.0 }],
            &[],
        );
        assert!(t4.contains("I1a"));
    }

    #[test]
    fn undefined_metrics_render_as_na() {
        assert_eq!(fmt_opt(None), "N/A ");
        assert_eq!(fmt_opt(Some(0.5)), "0.50");
    }
}
