//! # tiara-eval
//!
//! The experiment harness reproducing the evaluation section of the TIARA
//! paper (CGO 2022) on the synthetic benchmark suite:
//!
//! * **Table I** — benchmark statistics ([`tables::table1`]);
//! * **Table II** — intra-project (RQ1) and cross-project (RQ2) prediction
//!   quality for TIARA and the TIARA_SSLICE baseline (RQ3)
//!   ([`experiments`]);
//! * **Table III** — average slice sizes ([`tables::table3`]);
//! * **Table IV** — slicing/training efficiency ([`tables::table4`]);
//! * **Figure 2** — the motivating example's slicing trace
//!   ([`fig2::render_figure2`]).
//!
//! The `tiara-eval` binary drives everything; see `tiara-eval --help`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablation;
pub mod bench;
pub mod discovery;
pub mod escape;
pub mod experiments;
pub mod fig2;
pub mod report;
pub mod suite;
pub mod tables;

pub use discovery::{
    build_discovery_suite, discovery_suite, render_discovery_json, render_discovery_report,
    run_discovery_experiment, DiscoveryProjectRow, DiscoveryResult, ModeScore,
};
pub use escape::{
    build_escape_suite, escape_suite, render_escape_json, render_escape_report,
    run_escape_experiment, EscapeLabelRow, EscapeResult,
};
pub use experiments::{
    cross_experiments, extended_experiments, intra_experiments, run_experiment, ExperimentResult,
    ExperimentSpec, TestSelection,
};
pub use suite::{
    build_extended_suite, build_suite, parallel_dataset, scale_spec, verify_suite, SlicedSuite,
};
