//! The experiment matrix of Table II: five intra-project experiments
//! (I1–I5) and four cross-project experiments (C6–C9), each run with TSLICE
//! (`a` rows, TIARA) and SSLICE (`b` rows, TIARA_SSLICE).

use crate::suite::SlicedSuite;
use tiara::{Classifier, ClassifierConfig, Dataset, Evaluation};

/// How the test set is chosen.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestSelection {
    /// Random 4:1 split of the training projects' own samples (RQ1).
    HoldOut,
    /// Test on these projects, train on the `train_projects` (RQ2).
    Projects(Vec<&'static str>),
}

/// One experiment definition.
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    /// Row id without the slicer suffix, e.g. `"I1"` or `"C7"`.
    pub id: &'static str,
    /// Human-readable training-data description (the paper's column).
    pub training_label: &'static str,
    /// Projects whose samples form the training pool.
    pub train_projects: Vec<&'static str>,
    /// Test selection.
    pub selection: TestSelection,
}

/// The five intra-project experiments (I1–I5).
pub fn intra_experiments() -> Vec<ExperimentSpec> {
    vec![
        ExperimentSpec {
            id: "I1",
            training_label: "clang",
            train_projects: vec!["clang"],
            selection: TestSelection::HoldOut,
        },
        ExperimentSpec {
            id: "I2",
            training_label: "cmake + list_ext",
            train_projects: vec!["cmake", "list_ext"],
            selection: TestSelection::HoldOut,
        },
        ExperimentSpec {
            id: "I3",
            training_label: "bitcoind + list_ext",
            train_projects: vec!["bitcoind", "list_ext"],
            selection: TestSelection::HoldOut,
        },
        ExperimentSpec {
            id: "I4",
            training_label: "spdlog + list_ext",
            train_projects: vec!["spdlog", "list_ext"],
            selection: TestSelection::HoldOut,
        },
        ExperimentSpec {
            id: "I5",
            training_label: "soci + list_ext",
            train_projects: vec!["soci", "list_ext"],
            selection: TestSelection::HoldOut,
        },
    ]
}

/// The four cross-project experiments (C6–C9).
pub fn cross_experiments() -> Vec<ExperimentSpec> {
    let all = ["clang", "cmake", "bitcoind", "spdlog", "soci", "re2", "arduinojson", "list_ext"];
    let minus = |ex: &[&'static str]| -> Vec<&'static str> {
        all.iter().copied().filter(|p| !ex.contains(p)).collect()
    };
    vec![
        ExperimentSpec {
            id: "C6",
            training_label: "clang+cmake+bitcoind",
            train_projects: vec!["clang", "cmake", "bitcoind"],
            selection: TestSelection::Projects(minus(&["clang", "cmake", "bitcoind"])),
        },
        ExperimentSpec {
            id: "C7",
            training_label: "all - clang",
            train_projects: minus(&["clang"]),
            selection: TestSelection::Projects(vec!["clang"]),
        },
        ExperimentSpec {
            id: "C8",
            training_label: "all - cmake",
            train_projects: minus(&["cmake"]),
            selection: TestSelection::Projects(vec!["cmake"]),
        },
        ExperimentSpec {
            id: "C9",
            training_label: "all - bitcoind",
            train_projects: minus(&["bitcoind"]),
            selection: TestSelection::Projects(vec!["bitcoind"]),
        },
    ]
}

/// The extension experiments over the six-class label set (the paper's four
/// labels plus `std::deque` and `std::set`): an intra-suite 4:1 split and a
/// cross-project split within the extension suite.
pub fn extended_experiments() -> Vec<ExperimentSpec> {
    vec![
        ExperimentSpec {
            id: "X1",
            training_label: "ext suite (6 classes)",
            train_projects: vec!["ext_app", "ext_svc", "ext_kit"],
            selection: TestSelection::HoldOut,
        },
        ExperimentSpec {
            id: "X2",
            training_label: "ext_app+ext_svc",
            train_projects: vec!["ext_app", "ext_svc"],
            selection: TestSelection::Projects(vec!["ext_kit"]),
        },
    ]
}

/// The outcome of one experiment row.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Full row id, e.g. `"I1a"`.
    pub id: String,
    /// Training-data description.
    pub training_label: String,
    /// Slicer name (`TSLICE` / `SSLICE`).
    pub slicer: &'static str,
    /// The confusion-matrix evaluation.
    pub eval: Evaluation,
    /// Training wall time in seconds (a Table IV column).
    pub train_secs: f64,
    /// Training set size.
    pub train_size: usize,
    /// Test set size.
    pub test_size: usize,
}

/// Runs one experiment against a sliced suite.
///
/// # Panics
///
/// Panics if a referenced project is missing from the suite or the training
/// pool ends up empty.
pub fn run_experiment(
    suite: &SlicedSuite,
    spec: &ExperimentSpec,
    config: &ClassifierConfig,
    split_seed: u64,
) -> ExperimentResult {
    let pool = suite.merged(&spec.train_projects);
    let (train, test): (Dataset, Dataset) = match &spec.selection {
        TestSelection::HoldOut => pool.split(0.8, split_seed),
        TestSelection::Projects(projects) => {
            let test = suite.merged(projects);
            (pool, test)
        }
    };
    assert!(!train.is_empty(), "experiment {} has an empty training pool", spec.id);

    let mut clf = Classifier::new(config);
    let t0 = std::time::Instant::now();
    clf.train(&train).expect("nonempty training set");
    let train_secs = t0.elapsed().as_secs_f64();
    let eval = clf.evaluate(&test);

    let suffix = if suite.slicer_name == "TSLICE" { "a" } else { "b" };
    ExperimentResult {
        id: format!("{}{}", spec.id, suffix),
        training_label: spec.training_label.to_owned(),
        slicer: suite.slicer_name,
        eval,
        train_secs,
        train_size: train.len(),
        test_size: test.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_matrix_matches_table2() {
        let intra = intra_experiments();
        assert_eq!(intra.len(), 5);
        assert!(intra.iter().all(|e| e.selection == TestSelection::HoldOut));
        assert_eq!(intra[0].train_projects, vec!["clang"]);
        // I2–I5 add list_ext to boost std::list samples, as the paper does.
        for e in &intra[1..] {
            assert!(e.train_projects.contains(&"list_ext"), "{} lacks list_ext", e.id);
        }

        let cross = cross_experiments();
        assert_eq!(cross.len(), 4);
        match &cross[1].selection {
            TestSelection::Projects(p) => assert_eq!(p, &vec!["clang"]),
            other => panic!("unexpected selection {other:?}"),
        }
        assert_eq!(cross[1].train_projects.len(), 7);
        assert!(!cross[1].train_projects.contains(&"clang"));
        // C6 tests on the five projects not trained on.
        match &cross[0].selection {
            TestSelection::Projects(p) => assert_eq!(p.len(), 5),
            other => panic!("unexpected selection {other:?}"),
        }
    }
}
