//! Ablation study over TSLICE's design choices: the decay constants and
//! shape (the paper: "other more sophisticated decay functions can also be
//! used"), the indirect-call cut, and `lea` pointer-arithmetic tracking.
//!
//! Each configuration re-slices one project, trains the classifier on a 4:1
//! split, and reports slice size + macro F1 — quantifying how much each
//! heuristic contributes.

use crate::suite::parallel_dataset;
use tiara::{Classifier, ClassifierConfig, Slicer};
use tiara_ir::ContainerClass;
use tiara_slice::{DecayFunction, TsliceConfig};
use tiara_synth::Binary;

/// The named slicer configurations of the ablation.
pub fn ablation_configs() -> Vec<(&'static str, TsliceConfig)> {
    let base = TsliceConfig::default();
    vec![
        ("paper (linear decay)", base.clone()),
        (
            "2x faster decay",
            TsliceConfig {
                decay_default: 0.002,
                decay_stack: 0.01,
                decay_indirect: 0.02,
                ..base.clone()
            },
        ),
        (
            "5x slower decay",
            TsliceConfig {
                decay_default: 0.0002,
                decay_stack: 0.001,
                decay_indirect: 0.002,
                ..base.clone()
            },
        ),
        (
            "exponential decay",
            TsliceConfig {
                decay_function: DecayFunction::Exponential { scale: 8.0, floor: 1e-3 },
                ..base.clone()
            },
        ),
        ("no indirect-call cut", TsliceConfig { cut_indirect_calls: false, ..base.clone() }),
        ("lea tracks pointer arith", TsliceConfig { lea_tracks_pointer_arith: true, ..base }),
    ]
}

/// One ablation row.
#[derive(Debug, Clone)]
pub struct AblationResult {
    /// Configuration name.
    pub name: &'static str,
    /// Mean container-slice size (nodes).
    pub mean_container_nodes: f64,
    /// Slicing wall time, seconds.
    pub slice_secs: f64,
    /// Macro F1 on the held-out 20%.
    pub macro_f1: f64,
    /// Accuracy on the held-out 20%.
    pub accuracy: f64,
}

/// Runs the ablation on one binary.
pub fn run_ablation(
    bin: &Binary,
    classifier: &ClassifierConfig,
    split_seed: u64,
    threads: usize,
) -> Vec<AblationResult> {
    ablation_configs()
        .into_iter()
        .map(|(name, cfg)| {
            let t0 = std::time::Instant::now();
            let ds = parallel_dataset(bin, &Slicer::Tslice(cfg), threads);
            let slice_secs = t0.elapsed().as_secs_f64();

            let containers: Vec<&tiara::Sample> =
                ds.samples.iter().filter(|s| s.label != ContainerClass::Primitive).collect();
            let mean_container_nodes = if containers.is_empty() {
                0.0
            } else {
                containers.iter().map(|s| s.slice_nodes).sum::<usize>() as f64
                    / containers.len() as f64
            };

            let (train, test) = ds.split(0.8, split_seed);
            let mut clf = Classifier::new(classifier);
            clf.train(&train).expect("nonempty training split");
            let eval = clf.evaluate(&test);

            AblationResult {
                name,
                mean_container_nodes,
                slice_secs,
                macro_f1: eval.macro_f1(),
                accuracy: eval.accuracy(),
            }
        })
        .collect()
}

/// One classifier-architecture ablation row.
#[derive(Debug, Clone)]
pub struct ModelAblationResult {
    /// Configuration name.
    pub name: &'static str,
    /// Macro F1 on the held-out 20%.
    pub macro_f1: f64,
    /// Accuracy on the held-out 20%.
    pub accuracy: f64,
    /// Training wall time, seconds.
    pub train_secs: f64,
}

/// The classifier-architecture variants: the paper's 2×64 mean-pooling GCN,
/// depth variants, GIN-style sum pooling, and the edge-blind MLP baseline.
pub fn model_ablation_configs() -> Vec<(&'static str, ClassifierConfig)> {
    use tiara::ModelKind;
    use tiara_gnn::Aggregation;
    let base = ClassifierConfig::default();
    vec![
        ("paper (GCN 2x64, mean)", base.clone()),
        ("GCN 1 layer", ClassifierConfig { num_layers: 1, ..base.clone() }),
        ("GCN 3 layers", ClassifierConfig { num_layers: 3, ..base.clone() }),
        (
            "GCN sum pooling (GIN)",
            ClassifierConfig { aggregation: Aggregation::Sum, ..base.clone() },
        ),
        ("MLP (no graph structure)", ClassifierConfig { model: ModelKind::Mlp, ..base }),
    ]
}

/// Runs the classifier-architecture ablation on one TSLICE-sliced binary.
pub fn run_model_ablation(
    bin: &Binary,
    epochs: usize,
    seed: u64,
    threads: usize,
) -> Vec<ModelAblationResult> {
    let ds = parallel_dataset(bin, &Slicer::default(), threads);
    let (train, test) = ds.split(0.8, seed);
    model_ablation_configs()
        .into_iter()
        .map(|(name, mut cfg)| {
            cfg.epochs = epochs;
            cfg.seed = seed;
            let mut clf = Classifier::new(&cfg);
            let t0 = std::time::Instant::now();
            clf.train(&train).expect("nonempty training split");
            let train_secs = t0.elapsed().as_secs_f64();
            let eval = clf.evaluate(&test);
            ModelAblationResult {
                name,
                macro_f1: eval.macro_f1(),
                accuracy: eval.accuracy(),
                train_secs,
            }
        })
        .collect()
}

/// Renders the model-ablation table.
pub fn render_model_ablation(rows: &[ModelAblationResult]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "MODEL ABLATION — classifier architectures (one project, 4:1 split)");
    let _ = writeln!(
        s,
        "{:<28} {:>9} {:>9} {:>13}",
        "Architecture", "macro F1", "accuracy", "training (s)"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<28} {:>9.2} {:>9.2} {:>13.2}",
            r.name, r.macro_f1, r.accuracy, r.train_secs
        );
    }
    s
}

/// Renders the ablation table.
pub fn render_ablation(rows: &[AblationResult]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "ABLATION — TSLICE design choices (one project, 4:1 split)");
    let _ = writeln!(
        s,
        "{:<28} {:>16} {:>12} {:>9} {:>9}",
        "Configuration", "container nodes", "slicing (s)", "macro F1", "accuracy"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<28} {:>16.1} {:>12.2} {:>9.2} {:>9.2}",
            r.name, r.mean_container_nodes, r.slice_secs, r.macro_f1, r.accuracy
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiara_synth::{generate, ProjectSpec, TypeCounts};

    #[test]
    fn ablation_covers_the_design_choices() {
        let names: Vec<&str> = ablation_configs().iter().map(|(n, _)| *n).collect();
        assert!(names.iter().any(|n| n.contains("linear")));
        assert!(names.iter().any(|n| n.contains("exponential")));
        assert!(names.iter().any(|n| n.contains("indirect")));
        assert!(names.iter().any(|n| n.contains("lea")));
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn model_ablation_includes_the_mlp_baseline() {
        let names: Vec<&str> = model_ablation_configs().iter().map(|(n, _)| *n).collect();
        assert!(names.iter().any(|n| n.contains("MLP")));
        assert!(names.iter().any(|n| n.contains("paper")));
        assert_eq!(names.len(), 5);

        let bin = generate(&ProjectSpec {
            name: "mabl".into(),
            index: 2,
            seed: 27,
            counts: TypeCounts { list: 3, vector: 5, map: 5, primitive: 12, ..Default::default() },
        });
        let rows = run_model_ablation(&bin, 6, 1, 2);
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().all(|r| r.macro_f1 >= 0.0 && r.accuracy <= 1.0));
        let text = render_model_ablation(&rows);
        assert!(text.contains("MLP"));
    }

    #[test]
    fn ablation_runs_and_faster_decay_shrinks_slices() {
        let bin = generate(&ProjectSpec {
            name: "abl".into(),
            index: 0,
            seed: 17,
            counts: TypeCounts { list: 3, vector: 5, map: 5, primitive: 12, ..Default::default() },
        });
        let cfg = ClassifierConfig { epochs: 5, ..Default::default() };
        let rows = run_ablation(&bin, &cfg, 1, 2);
        assert_eq!(rows.len(), 6);
        let base = rows.iter().find(|r| r.name.contains("linear")).unwrap();
        let fast = rows.iter().find(|r| r.name.contains("faster")).unwrap();
        let slow = rows.iter().find(|r| r.name.contains("slower")).unwrap();
        assert!(fast.mean_container_nodes <= base.mean_container_nodes);
        assert!(slow.mean_container_nodes >= base.mean_container_nodes);
        let text = render_ablation(&rows);
        assert!(text.contains("macro F1"));
    }
}
