//! Fast-path ↔ reference-path equivalence.
//!
//! The arena-based hot loop (`reference_mode: false`) must be observationally
//! identical to the snapshot-per-edge reference traversal: the same slice
//! nodes with the same faith and indirection, the same edges, the same step
//! count, and — under tracing — the same rule firings in the same order.
//! These tests drive both paths over synthetic binaries and compare outputs
//! structurally (`Slice` and `TraceEvent` are `PartialEq`).

use tiara_slice::{tslice_with, DecayFunction, TsliceConfig, TsliceOutput};
use tiara_synth::{generate, ProjectSpec, TypeCounts};

/// A small-but-varied project: every container class, a few dozen variables,
/// style knobs drawn from the style table via `index`.
fn small_spec(name: &str, index: usize, seed: u64) -> ProjectSpec {
    ProjectSpec {
        name: name.to_owned(),
        index,
        seed,
        counts: TypeCounts {
            list: 2,
            vector: 4,
            map: 4,
            deque: 1,
            set: 1,
            primitive: 10,
            escape: 2,
            computed: 0,
        },
    }
}

/// Like [`small_spec`] but with computed-address scenarios mixed in, so the
/// VSA must-write facts actually refine something.
fn computed_spec(name: &str, index: usize, seed: u64) -> ProjectSpec {
    let mut spec = small_spec(name, index, seed);
    spec.counts.computed = 4;
    spec
}

fn reference(cfg: &TsliceConfig) -> TsliceConfig {
    TsliceConfig { reference_mode: true, ..cfg.clone() }
}

/// Asserts full observational equivalence for one (binary, criterion, cfg).
fn assert_equivalent(
    bin: &tiara_synth::Binary,
    v0: tiara_ir::VarAddr,
    cfg: &TsliceConfig,
) -> (TsliceOutput, TsliceOutput) {
    let fast = tslice_with(&bin.program, v0, cfg);
    let refr = tslice_with(&bin.program, v0, &reference(cfg));
    assert_eq!(
        fast.slice, refr.slice,
        "slice mismatch for {} at {:?} (cfg: trace={}, decay={:?})",
        bin.name, v0, cfg.trace, cfg.decay_function
    );
    assert_eq!(fast.trace, refr.trace, "trace mismatch for {} at {:?}", bin.name, v0);
    assert_eq!(fast.stats.steps, refr.stats.steps, "step count must match");
    (fast, refr)
}

#[test]
fn fast_path_matches_reference_across_seeds_and_styles() {
    for seed in [1u64, 7, 42, 1234] {
        for index in [0usize, 3, 8] {
            let bin = generate(&small_spec("equiv", index, seed));
            let cfg = TsliceConfig::default();
            for (v0, _) in bin.labeled_vars() {
                assert_equivalent(&bin, v0, &cfg);
            }
        }
    }
}

#[test]
fn fast_path_matches_reference_with_tracing() {
    // Tracing disables the edge memo, so this exercises the pure
    // borrow-vs-snapshot difference, and checks rule firings event by event.
    let bin = generate(&small_spec("equiv_trace", 1, 99));
    let cfg = TsliceConfig::with_trace();
    for (v0, _) in bin.labeled_vars().take(12) {
        let (fast, _) = assert_equivalent(&bin, v0, &cfg);
        assert_eq!(fast.stats.merges_skipped, 0, "memo must be off under tracing");
    }
}

#[test]
fn fast_path_matches_reference_under_exponential_decay_and_tight_budget() {
    let bin = generate(&small_spec("equiv_cfg", 5, 2024));
    let variants = [
        TsliceConfig {
            decay_function: DecayFunction::Exponential { scale: 50.0, floor: 0.02 },
            ..TsliceConfig::default()
        },
        // A tight step budget must truncate both traversals identically.
        TsliceConfig { max_steps: 40, ..TsliceConfig::default() },
        TsliceConfig { cut_indirect_calls: false, ..TsliceConfig::default() },
        TsliceConfig { lea_tracks_pointer_arith: true, ..TsliceConfig::default() },
        TsliceConfig::with_call_summaries(),
        TsliceConfig { trace: true, ..TsliceConfig::with_call_summaries() },
        TsliceConfig::with_vsa(),
        TsliceConfig { trace: true, ..TsliceConfig::with_vsa() },
    ];
    for cfg in &variants {
        for (v0, _) in bin.labeled_vars().take(10) {
            assert_equivalent(&bin, v0, cfg);
        }
    }
}

#[test]
fn vsa_mode_stays_equivalent_on_computed_address_projects() {
    // Projects with computed-address scenarios are where the must-write map
    // is non-empty; fast and reference mode must still agree bit for bit,
    // and turning VSA on without any facts firing must change nothing.
    for seed in [5u64, 71] {
        let bin = generate(&computed_spec("equiv_vsa", (seed % 8) as usize, seed));
        for cfg in
            [TsliceConfig::with_vsa(), TsliceConfig { trace: true, ..TsliceConfig::with_vsa() }]
        {
            for (v0, _) in bin.labeled_vars().take(10) {
                assert_equivalent(&bin, v0, &cfg);
            }
        }
    }
}

#[test]
fn fast_path_does_real_work_savings() {
    // Sanity that the counters are live on realistic inputs: across a whole
    // project some slice must avoid snapshot bytes, and reference mode must
    // report zero savings.
    let bin = generate(&small_spec("equiv_stats", 2, 7));
    let cfg = TsliceConfig::default();
    let mut avoided = 0u64;
    for (v0, _) in bin.labeled_vars() {
        let (fast, refr) = assert_equivalent(&bin, v0, &cfg);
        avoided += fast.stats.snapshot_bytes_avoided;
        assert_eq!(refr.stats.snapshot_bytes_avoided, 0);
        assert_eq!(refr.stats.merges_skipped, 0);
        assert_eq!(refr.stats.worklist_hits, 0);
    }
    assert!(avoided > 0, "no snapshot bytes avoided across the whole project");
}

mod random_programs {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Node-for-node, faith-for-faith identical output on arbitrary
        /// synthetic projects and decay configurations.
        #[test]
        fn equivalence_over_random_projects(
            seed in 0u64..10_000,
            index in 0usize..11,
            trace in any::<bool>(),
            use_call_summaries in any::<bool>(),
            use_vsa in any::<bool>(),
            max_steps in 32usize..4096,
        ) {
            let bin = generate(&small_spec("equiv_prop", index, seed));
            let cfg = TsliceConfig {
                trace,
                max_steps,
                use_call_summaries,
                use_vsa,
                ..TsliceConfig::default()
            };
            for (v0, _) in bin.labeled_vars().take(6) {
                let fast = tslice_with(&bin.program, v0, &cfg);
                let refr = tslice_with(&bin.program, v0, &reference(&cfg));
                prop_assert_eq!(&fast.slice, &refr.slice);
                prop_assert_eq!(&fast.trace, &refr.trace);
            }
        }
    }
}
