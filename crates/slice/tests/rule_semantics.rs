//! Rule-level semantics tests: one minimal program per Figure 4 rule,
//! asserting exactly which instructions become dependent and which rules
//! fire. These pin the transfer function down instruction form by
//! instruction form.

use tiara_ir::{
    BinOp, ExternKind, InstId, InstKind, Loc, MemAddr, Opcode, Operand, Program, ProgramBuilder,
    Reg, VarAddr,
};
use tiara_slice::{tslice_with, RuleName, TsliceConfig, TsliceOutput};

const V0: u64 = 0x74404;

/// Builds a single-function program from instruction kinds and runs TSLICE
/// on the global criterion, returning the traced output.
fn run(insts: Vec<(Opcode, InstKind)>) -> (Program, TsliceOutput) {
    let mut b = ProgramBuilder::new();
    b.begin_func("main");
    for (op, kind) in insts {
        b.inst(op, kind);
    }
    b.ret();
    b.end_func();
    let prog = b.finish().unwrap();
    let out = tslice_with(&prog, VarAddr::Global(MemAddr(V0)), &TsliceConfig::with_trace());
    (prog, out)
}

fn dep(out: &TsliceOutput, i: u32) -> bool {
    out.slice.contains(InstId(i))
}

fn fired(out: &TsliceOutput, i: u32, rule: RuleName) -> bool {
    out.trace.iter().any(|e| e.inst == InstId(i) && e.rules.contains(&rule))
}

fn mov(dst: Operand, src: Operand) -> (Opcode, InstKind) {
    (Opcode::Mov, InstKind::Mov { dst, src })
}

fn add(dst: Operand, src: Operand) -> (Opcode, InstKind) {
    (Opcode::Add, InstKind::Op { op: BinOp::Add, dst, src })
}

fn reg(r: Reg) -> Operand {
    Operand::reg(r)
}

#[test]
fn mov_riv_loads_are_dependent_and_tracked() {
    // I0: mov esi, [v0]    -> dep, esi = (ref, 0)
    // I1: mov eax, esi     -> dep via [Mov-rr]
    let (_, out) =
        run(vec![mov(reg(Reg::Esi), Operand::mem_abs(V0, 0)), mov(reg(Reg::Eax), reg(Reg::Esi))]);
    assert!(dep(&out, 0) && fired(&out, 0, RuleName::MovRiv));
    assert!(dep(&out, 1) && fired(&out, 1, RuleName::MovRr));
}

#[test]
fn mov_rv_address_of_is_dependent() {
    // mov esi, offset v0 -> (ptr, 0), dep.
    let (_, out) =
        run(vec![mov(reg(Reg::Esi), Operand::addr_of(V0, 0)), mov(reg(Reg::Eax), reg(Reg::Esi))]);
    assert!(dep(&out, 0) && fired(&out, 0, RuleName::MovRv));
    assert!(dep(&out, 1));
}

#[test]
fn kill_rules_stop_tracking() {
    // I0: mov esi, [v0]        -> dep
    // I1: mov esi, [80000h]    -> [Mov-riv-kill]: esi cleared
    // I2: mov eax, esi         -> NOT dep
    let (_, out) = run(vec![
        mov(reg(Reg::Esi), Operand::mem_abs(V0, 0)),
        mov(reg(Reg::Esi), Operand::mem_abs(0x80000u64, 0)),
        mov(reg(Reg::Eax), reg(Reg::Esi)),
    ]);
    assert!(dep(&out, 0));
    assert!(fired(&out, 1, RuleName::MovRivKill));
    assert!(!dep(&out, 1));
    assert!(!dep(&out, 2), "killed register carries no dependence");
}

#[test]
fn mov_ri_turns_pointer_into_reference_and_reference_into_other() {
    // I0: mov esi, offset v0   -> esi = (ptr, 0)
    // I1: mov eax, [esi+4]     -> [Mov-ri]: eax = (ref, 4), dep
    // I2: mov ebx, [eax]       -> [Mov-ri] on a ref: ebx = (other, *), dep
    // I3: mov ecx, [ebx]       -> (other) not propagated: NOT dep
    let (_, out) = run(vec![
        mov(reg(Reg::Esi), Operand::addr_of(V0, 0)),
        mov(reg(Reg::Eax), Operand::mem_reg(Reg::Esi, 4)),
        mov(reg(Reg::Ebx), Operand::mem_reg(Reg::Eax, 0)),
        mov(reg(Reg::Ecx), Operand::mem_reg(Reg::Ebx, 0)),
    ]);
    assert!(dep(&out, 1) && fired(&out, 1, RuleName::MovRi));
    assert!(dep(&out, 2));
    assert!(!dep(&out, 3), "(other, *) must not flow through loads");
}

#[test]
fn mov_dr_writes_through_dependent_pointers() {
    // I0: mov esi, [v0]
    // I1: mov [esi+4], eax     -> [Mov-dr]: dep
    // I2: mov [edi+4], eax     -> edi untracked: NOT dep
    let (_, out) = run(vec![
        mov(reg(Reg::Esi), Operand::mem_abs(V0, 0)),
        mov(Operand::mem_reg(Reg::Esi, 4), reg(Reg::Eax)),
        mov(Operand::mem_reg(Reg::Edi, 4), reg(Reg::Eax)),
    ]);
    assert!(dep(&out, 1) && fired(&out, 1, RuleName::MovDr));
    assert!(!dep(&out, 2));
}

#[test]
fn mov_dv_stores_into_criterion_memory() {
    // mov [v0+4], ecx — the paper's I16 (pre-folded address form).
    let (_, out) = run(vec![mov(Operand::mem_abs(V0 + 4, 0), reg(Reg::Ecx))]);
    assert!(dep(&out, 0) && fired(&out, 0, RuleName::MovDv));
}

#[test]
fn op_rc_shifts_pointers_and_degrades_references() {
    // I0: mov esi, offset v0   -> (ptr, 0)
    // I1: add esi, 4           -> [Op-rc]: (ptr, 4), dep
    // I2: mov eax, [esi]       -> reads *(v0+4): (ref, 4), dep
    // I3: mov ecx, [v0]        -> (ref, 0)
    // I4: add ecx, 1           -> ref + const = (other, *), dep
    let (_, out) = run(vec![
        mov(reg(Reg::Esi), Operand::addr_of(V0, 0)),
        add(reg(Reg::Esi), Operand::imm(4)),
        mov(reg(Reg::Eax), Operand::mem_reg(Reg::Esi, 0)),
        mov(reg(Reg::Ecx), Operand::mem_abs(V0, 0)),
        add(reg(Reg::Ecx), Operand::imm(1)),
    ]);
    assert!(dep(&out, 1) && fired(&out, 1, RuleName::OpRc));
    assert!(dep(&out, 2), "pointer arithmetic preserved the field offset");
    assert!(dep(&out, 4) && fired(&out, 4, RuleName::OpRc));
}

#[test]
fn op_rr_and_rref_mark_arithmetic_with_dependent_operands() {
    // I0: mov ecx, [v0+4]      -> (ref, 4)
    // I1: sub ebx, ecx         -> [Op-rref]: ebx = (other, *), dep (Fig 2 I9)
    // I2: cmp ebx, 1           -> [Use-dep] via ebx (Fig 2 I10)
    let (_, out) = run(vec![
        mov(reg(Reg::Ecx), Operand::mem_abs(V0, 4)),
        (Opcode::Sub, InstKind::Op { op: BinOp::Sub, dst: reg(Reg::Ebx), src: reg(Reg::Ecx) }),
        (Opcode::Cmp, InstKind::Use { oprs: vec![reg(Reg::Ebx), Operand::imm(1)] }),
    ]);
    assert!(dep(&out, 1) && fired(&out, 1, RuleName::OpRref));
    assert!(dep(&out, 2) && fired(&out, 2, RuleName::UseDep));
}

#[test]
fn op_ri_reads_through_dependent_pointers() {
    // I0: mov esi, offset v0
    // I1: add eax, [esi+8]     -> [Op-ri]: dep, eax = (other, *)
    let (_, out) = run(vec![
        mov(reg(Reg::Esi), Operand::addr_of(V0, 0)),
        (
            Opcode::Add,
            InstKind::Op { op: BinOp::Add, dst: reg(Reg::Eax), src: Operand::mem_reg(Reg::Esi, 8) },
        ),
    ]);
    assert!(dep(&out, 1) && fired(&out, 1, RuleName::OpRi));
}

#[test]
fn op_riv_arithmetic_on_criterion_memory() {
    // add eax, [v0+4] — the op⊕ analogue of [Mov-riv].
    let (_, out) = run(vec![(
        Opcode::Add,
        InstKind::Op { op: BinOp::Add, dst: reg(Reg::Eax), src: Operand::mem_abs(V0 + 4, 0) },
    )]);
    assert!(dep(&out, 0) && fired(&out, 0, RuleName::OpRiv));
}

#[test]
fn stack_roundtrip_preserves_dependence() {
    // I0: mov esi, [v0]
    // I1: push esi             -> [Stk-Push], dep
    // I2: pop edi              -> [Stk-Pop], dep; edi = (ref, 0)
    // I3: mov eax, edi         -> dep via [Mov-rr]
    let (_, out) = run(vec![
        mov(reg(Reg::Esi), Operand::mem_abs(V0, 0)),
        (Opcode::Push, InstKind::Push { src: reg(Reg::Esi) }),
        (Opcode::Pop, InstKind::Pop { dst: reg(Reg::Edi) }),
        mov(reg(Reg::Eax), reg(Reg::Edi)),
    ]);
    assert!(dep(&out, 1) && fired(&out, 1, RuleName::StkPush));
    assert!(dep(&out, 2) && fired(&out, 2, RuleName::StkPop));
    assert!(dep(&out, 3), "dependence survives a push/pop roundtrip");
}

#[test]
fn push_of_constant_is_not_dependent() {
    let (_, out) = run(vec![
        mov(reg(Reg::Esi), Operand::mem_abs(V0, 0)), // anchor the criterion
        (Opcode::Push, InstKind::Push { src: Operand::imm(10) }),
    ]);
    assert!(!dep(&out, 1));
}

#[test]
fn frame_slot_store_and_load_track_dependence() {
    // I0: mov esi, [v0]
    // I1: mov [ebp-8], esi     -> [Mov-sr]: slot tainted, dep
    // I2: mov eax, [ebp-8]     -> [Mov-rs]: dep
    // I3: mov ebx, [ebp-16]    -> different slot: NOT dep
    let (_, out) = run(vec![
        mov(reg(Reg::Esi), Operand::mem_abs(V0, 0)),
        mov(Operand::mem_reg(Reg::Ebp, -8), reg(Reg::Esi)),
        mov(reg(Reg::Eax), Operand::mem_reg(Reg::Ebp, -8)),
        mov(reg(Reg::Ebx), Operand::mem_reg(Reg::Ebp, -16)),
    ]);
    assert!(dep(&out, 1) && fired(&out, 1, RuleName::MovSr));
    assert!(dep(&out, 2) && fired(&out, 2, RuleName::MovRs));
    assert!(!dep(&out, 3));
}

#[test]
fn op_sr_arithmetic_into_tainted_frame_slot() {
    // I0: mov esi, [v0]
    // I1: mov [ebp-8], esi
    // I2: add [ebp-8], 1       -> [Op-sr]: dep, slot degrades to (other, *)
    let (_, out) = run(vec![
        mov(reg(Reg::Esi), Operand::mem_abs(V0, 0)),
        mov(Operand::mem_reg(Reg::Ebp, -8), reg(Reg::Esi)),
        (
            Opcode::Add,
            InstKind::Op {
                op: BinOp::Add,
                dst: Operand::mem_reg(Reg::Ebp, -8),
                src: Operand::imm(1),
            },
        ),
    ]);
    assert!(dep(&out, 2));
}

#[test]
fn use_dep_checks_memory_operands_through_registers() {
    // I0: mov esi, [v0]
    // I1: cmp [esi+4], 0       -> [Use-dep] via the register's values
    let (_, out) = run(vec![
        mov(reg(Reg::Esi), Operand::mem_abs(V0, 0)),
        (Opcode::Cmp, InstKind::Use { oprs: vec![Operand::mem_reg(Reg::Esi, 4), Operand::imm(0)] }),
    ]);
    assert!(dep(&out, 1) && fired(&out, 1, RuleName::UseDep));
}

#[test]
fn call_with_dependent_argument_is_dependent() {
    // push [v0]; call free  — the call itself must be dependent (Fig 2 I6).
    let mut b = ProgramBuilder::new();
    b.begin_func("main");
    b.inst(Opcode::Push, InstKind::Push { src: Operand::mem_abs(V0, 0) });
    b.call_extern(ExternKind::Free);
    b.ret();
    b.end_func();
    let prog = b.finish().unwrap();
    let out = tslice_with(&prog, VarAddr::Global(MemAddr(V0)), &TsliceConfig::with_trace());
    assert!(out.slice.contains(InstId(1)), "call with dep arg is dep");
}

#[test]
fn external_calls_clobber_caller_save_registers() {
    // I0: mov ecx, [v0]
    // I1: call Other           -> clobbers eax/ecx/edx
    // I2: mov eax, ecx         -> NOT dep (ecx was clobbered)
    // but esi survives:
    // I3: mov esi, [v0]; I4: call Other; I5: mov eax, esi -> dep
    let mut b = ProgramBuilder::new();
    b.begin_func("main");
    b.inst(Opcode::Mov, InstKind::Mov { dst: reg(Reg::Ecx), src: Operand::mem_abs(V0, 0) });
    b.call_extern(ExternKind::Other);
    b.inst(Opcode::Mov, InstKind::Mov { dst: reg(Reg::Eax), src: reg(Reg::Ecx) });
    b.inst(Opcode::Mov, InstKind::Mov { dst: reg(Reg::Esi), src: Operand::mem_abs(V0, 0) });
    b.call_extern(ExternKind::Other);
    b.inst(Opcode::Mov, InstKind::Mov { dst: reg(Reg::Eax), src: reg(Reg::Esi) });
    b.ret();
    b.end_func();
    let prog = b.finish().unwrap();
    let out = tslice_with(&prog, VarAddr::Global(MemAddr(V0)), &TsliceConfig::default());
    assert!(!out.slice.contains(InstId(2)), "ecx clobbered by the call");
    assert!(out.slice.contains(InstId(5)), "esi is callee-save");
}

#[test]
fn lea_kills_by_default_but_tracks_with_the_ablation_flag() {
    let build = || {
        let mut b = ProgramBuilder::new();
        b.begin_func("main");
        // I0: mov esi, offset v0; I1: lea esi, [esi+4]; I2: mov eax, [esi]
        b.inst(Opcode::Mov, InstKind::Mov { dst: reg(Reg::Esi), src: Operand::addr_of(V0, 0) });
        b.inst(
            Opcode::Lea,
            InstKind::Mov { dst: reg(Reg::Esi), src: Operand::Loc(Loc::with_offset(Reg::Esi, 4)) },
        );
        b.inst(
            Opcode::Mov,
            InstKind::Mov { dst: reg(Reg::Eax), src: Operand::mem_reg(Reg::Esi, 0) },
        );
        b.ret();
        b.end_func();
        b.finish().unwrap()
    };
    let v0 = VarAddr::Global(MemAddr(V0));

    let paper = tslice_with(&build(), v0, &TsliceConfig::default());
    assert!(!paper.slice.contains(InstId(2)), "paper semantics: lea kills");

    let cfg = TsliceConfig { lea_tracks_pointer_arith: true, ..TsliceConfig::default() };
    let tracked = tslice_with(&build(), v0, &cfg);
    assert!(tracked.slice.contains(InstId(2)), "ablation: lea tracks (ptr, 4)");
}

#[test]
fn criterion_window_bounds_field_matching() {
    // Accesses inside the 16-byte window are the variable; outside are not.
    let (_, out) = run(vec![
        mov(reg(Reg::Esi), Operand::mem_abs(V0, 0)),
        mov(reg(Reg::Eax), Operand::mem_abs(V0 + 12, 0)),
        mov(reg(Reg::Ebx), Operand::mem_abs(V0 + 16, 0)),
    ]);
    assert!(dep(&out, 1), "v0+12 is inside the window");
    assert!(!dep(&out, 2), "v0+16 is the next variable");
}

#[test]
fn call_return_is_context_sensitive() {
    // `main` and `other` both call the helper `id`. Slicing starts in
    // `main`; a context-sensitive return must resume ONLY at `main`'s
    // return site, never at `other`'s (which the single-CFG ret edges would
    // also allow). `other` contains a blatant v0 access that would be
    // marked dependent if the traversal ever leaked into it.
    let mut b = ProgramBuilder::new();
    b.begin_func("main");
    // I0: mov esi, [v0]; I1: call id; I2: mov eax, esi (dep).
    b.inst(
        Opcode::Mov,
        InstKind::Mov { dst: Operand::reg(Reg::Esi), src: Operand::mem_abs(V0, 0) },
    );
    b.call_named("id");
    b.inst(Opcode::Mov, InstKind::Mov { dst: Operand::reg(Reg::Eax), src: Operand::reg(Reg::Esi) });
    b.ret();
    b.end_func();
    b.begin_func("other");
    // I4: call id; I5: mov ebx, [v0+4] — dependent IF ever visited.
    b.call_named("id");
    let leak = b.inst(
        Opcode::Mov,
        InstKind::Mov { dst: Operand::reg(Reg::Ebx), src: Operand::mem_abs(V0, 4) },
    );
    b.ret();
    b.end_func();
    b.begin_func("id");
    b.inst(Opcode::Mov, InstKind::Mov { dst: Operand::reg(Reg::Edx), src: Operand::reg(Reg::Edx) });
    b.ret();
    b.end_func();
    b.set_entry("main");
    let prog = b.finish().unwrap();
    let out = tslice_with(&prog, VarAddr::Global(MemAddr(V0)), &TsliceConfig::default());
    assert!(out.slice.contains(InstId(2)), "return resumes after main's call site");
    assert!(
        !out.slice.contains(leak),
        "traversal leaked through a ret edge into a function that never ran"
    );
}

#[test]
fn recursion_terminates_via_the_faith_bound() {
    // A self-recursive function touching v0: the analysis must terminate
    // (faith exhausts) and still find the dependent body instructions.
    let mut b = ProgramBuilder::new();
    b.begin_func("rec");
    b.inst(
        Opcode::Mov,
        InstKind::Mov { dst: Operand::reg(Reg::Esi), src: Operand::mem_abs(V0, 0) },
    );
    b.call_named("rec");
    b.ret();
    b.end_func();
    let prog = b.finish().unwrap();
    let out = tslice_with(&prog, VarAddr::Global(MemAddr(V0)), &TsliceConfig::default());
    assert!(out.slice.contains(InstId(0)));
    assert!(out.slice.steps < 1_000_000, "terminated well before the step cap");
}
