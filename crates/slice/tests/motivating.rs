//! Integration tests: TSLICE and SSLICE on the paper's motivating example
//! (Figures 1 and 2) and on generated projects.
//!
//! The paper's Figure 2 finds, for the `std::list` variable `l` at `v0`,
//! the slice `S_v0 = {I0, I4–I7, I9–I10, I14, I16, I17}` and explicitly
//! excludes `I1–I3`, `I8`, `I11–I13`, `I15`, and `I18–I20`.

use tiara_ir::InstId;
use tiara_slice::{sslice, tslice, tslice_with, TsliceConfig};
use tiara_synth::{benchmark_suite, generate, motivating_example, ProjectSpec, TypeCounts};

/// Maps a Figure 2 index (0-based from the paper's `I0`) to the real
/// instruction id: the example's `I0` sits after a 3-instruction prologue,
/// and the paper counts `call`+`add esp` cleanup as part of the flow (our
/// builder emits the cleanup as a separate instruction after `I6`).
fn fig2(ex: &tiara_synth::MotivatingExample, paper_index: u32) -> InstId {
    let base = ex.i0.0;
    // Paper indices 0..=6 map directly; 7.. are shifted by the `add esp, 12`
    // cleanup instruction emitted after the I6 call.
    if paper_index <= 6 {
        InstId(base + paper_index)
    } else {
        InstId(base + paper_index + 1)
    }
}

#[test]
fn figure2_slice_membership_for_l() {
    let ex = motivating_example();
    let slice = tslice(&ex.binary.program, ex.l);

    let expect_in = [0u32, 4, 5, 6, 7, 9, 10, 14, 16, 17];
    for k in expect_in {
        assert!(
            slice.contains(fig2(&ex, k)),
            "paper I{k} (inst {}) must be in the slice; slice nodes: {:?}",
            fig2(&ex, k),
            slice.nodes.iter().map(|n| n.inst.0).collect::<Vec<_>>()
        );
    }
    let expect_out = [1u32, 2, 3, 8, 11, 12, 13, 15, 18, 19, 20];
    for k in expect_out {
        assert!(
            !slice.contains(fig2(&ex, k)),
            "paper I{k} (inst {}) must NOT be in the slice",
            fig2(&ex, k)
        );
    }
}

#[test]
fn figure2_vector_variable_v_gets_its_own_slice() {
    let ex = motivating_example();
    let slice = tslice(&ex.binary.program, ex.v);
    // I15 (store to v's slot) and I20 (lea of v's slot) belong to v.
    assert!(slice.contains(fig2(&ex, 15)), "store into v's slot");
    assert!(slice.contains(fig2(&ex, 20)), "address-of v");
    // Nothing from l's stream.
    assert!(!slice.contains(fig2(&ex, 0)));
    assert!(!slice.contains(fig2(&ex, 16)));
}

#[test]
fn trace_reproduces_figure2_rules() {
    use tiara_slice::RuleName;
    let ex = motivating_example();
    let out = tslice_with(&ex.binary.program, ex.l, &TsliceConfig::with_trace());
    let rules_at = |paper: u32| -> Vec<RuleName> {
        let id = fig2(&ex, paper);
        out.trace.iter().filter(|e| e.inst == id).flat_map(|e| e.rules.iter().copied()).collect()
    };
    assert!(rules_at(0).contains(&RuleName::MovRiv), "I0 is [Mov-riv]");
    assert!(rules_at(1).contains(&RuleName::MovRivKill), "I1 lea kills");
    assert!(rules_at(4).contains(&RuleName::StkPush), "I4 pushes");
    assert!(rules_at(7).contains(&RuleName::MovRiv), "I7 loads *(v0+4)");
    assert!(rules_at(9).contains(&RuleName::OpRref), "I9 [Op-rref]");
    assert!(rules_at(10).contains(&RuleName::UseDep), "I10 [Use-dep]");
    assert!(rules_at(16).contains(&RuleName::MovDv), "I16 stores to v0+4");
    assert!(rules_at(17).contains(&RuleName::MovDr), "I17 writes via dep ptr");
}

#[test]
fn faith_decays_along_figure2() {
    let ex = motivating_example();
    let out = tslice_with(&ex.binary.program, ex.l, &TsliceConfig::with_trace());
    let final_faith = |paper: u32| -> f64 {
        let id = fig2(&ex, paper);
        out.trace.iter().filter(|e| e.inst == id).map(|e| e.faith).fold(f64::NAN, |_, f| f)
    };
    let f0 = final_faith(0);
    let f5 = final_faith(5);
    let f17 = final_faith(17);
    assert!(f0 > f5 && f5 > f17, "faith decreases along the flow: {f0} {f5} {f17}");
    assert!(f17 > 0.0, "the example never exhausts faith");
}

#[test]
fn tslice_is_much_smaller_than_sslice_on_generated_code() {
    let spec = ProjectSpec {
        name: "t".into(),
        index: 1,
        seed: 99,
        counts: TypeCounts { list: 4, vector: 6, map: 5, primitive: 20, ..Default::default() },
    };
    let bin = generate(&spec);
    let mut t_nodes = 0usize;
    let mut s_nodes = 0usize;
    let mut samples = 0usize;
    for (addr, class) in bin.labeled_vars() {
        if class == tiara_ir::ContainerClass::Primitive {
            continue;
        }
        let t = tslice(&bin.program, addr);
        let s = sslice(&bin.program, addr);
        assert!(!t.is_empty(), "container variable {addr} has a nonempty TSLICE");
        assert!(!s.is_empty());
        t_nodes += t.num_nodes();
        s_nodes += s.num_nodes();
        samples += 1;
    }
    assert!(samples > 0);
    let t_avg = t_nodes as f64 / samples as f64;
    let s_avg = s_nodes as f64 / samples as f64;
    assert!(
        t_avg * 2.0 < s_avg,
        "TSLICE ({t_avg:.1}) must be far smaller than SSLICE ({s_avg:.1})"
    );
}

#[test]
fn all_benchmark_variables_are_sliceable() {
    // A smoke pass over the smallest suite project: every labeled variable
    // yields a slice without panicking, and container slices are nonempty.
    let spec = {
        let mut s = benchmark_suite(7)[7].clone(); // list_ext, the smallest
        s.counts = TypeCounts { list: 6, vector: 2, map: 0, primitive: 12, ..Default::default() };
        s
    };
    let bin = generate(&spec);
    for (addr, class) in bin.labeled_vars() {
        let t = tslice(&bin.program, addr);
        if class != tiara_ir::ContainerClass::Primitive {
            assert!(!t.is_empty(), "{class} variable {addr} produced an empty slice");
        }
    }
}
